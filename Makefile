# Development workflow for kronbip.  Pure Go 1.22+, no dependencies.
#
#   make            - vet + build + full test suite
#   make race       - race-detector pass over the concurrent packages
#   make bench      - streaming + engine benchmarks
#   make bench-json - same benchmarks as a dated BENCH_<date>.json record
#   make bench-check- compare the last two BENCH_<date>.json records
#   make bench-trend- bench-check plus per-family delta roll-up
#   make serve-smoke- end-to-end smoke test of the kronbip serve service
#   make distgen-smoke - distributed generation smoke: 3-replica fleet + dist-gen
#   make check      - everything (what CI should run)

GO ?= go
# Timestamped so multiple same-day records coexist; 'T' sorts after '.'
# so a BENCH_<date>T<time>.json always follows a plain BENCH_<date>.json
# baseline in benchcheck's lexical ordering.
BENCH_DATE := $(shell date +%Y-%m-%dT%H%M%S)

# Packages with nontrivial concurrency: everything scheduled on the
# internal/exec engine plus the engine itself, the obs registry the
# instrumented paths hammer concurrently, and the serve job manager.
RACE_PKGS = ./internal/exec ./internal/core ./internal/count ./internal/grb ./internal/dist ./internal/obs ./internal/obs/timeline ./internal/audit ./internal/serve ./internal/distgen

.PHONY: all vet build test race bench bench-json bench-check bench-trend serve-smoke distgen-smoke check

all: vet build test

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

bench:
	$(GO) test -run XXX -bench 'BenchmarkStream_' -benchtime 10x .
	$(GO) test -bench . -benchtime 100x ./internal/exec
	$(GO) test -run XXX -bench 'BenchmarkServe' ./internal/serve
	$(GO) test -run XXX -bench 'BenchmarkStreamWire' -benchtime 10x ./internal/serve
	$(GO) test -run XXX -bench 'BenchmarkFlightRecorder' ./internal/obs
	$(GO) test -run XXX -bench 'BenchmarkDistGen' ./internal/distgen

# bench-json records the same runs in `go test -json` form, one dated
# file per day, for diffing throughput across PRs.
bench-json:
	{ $(GO) test -json -run XXX -bench 'BenchmarkStream_' -benchtime 10x . ; \
	  $(GO) test -json -run XXX -bench . -benchtime 100x ./internal/exec ; \
	  $(GO) test -json -run XXX -bench 'BenchmarkServe' ./internal/serve ; \
	  $(GO) test -json -run XXX -bench 'BenchmarkStreamWire' -benchtime 10x ./internal/serve ; \
	  $(GO) test -json -run XXX -bench 'BenchmarkFlightRecorder' ./internal/obs ; \
	  $(GO) test -json -run XXX -bench 'BenchmarkDistGen' ./internal/distgen ; } > BENCH_$(BENCH_DATE).json
	@echo wrote BENCH_$(BENCH_DATE).json

# bench-check compares the two most recent records: 2x threshold for
# engine microbenchmarks (catches lost parallelism or accidental
# quadratic blowups, not machine-to-machine noise), a tight 1.2x for
# the BenchmarkStream_* and BenchmarkStreamWire* families — a >20%
# slide in the edge-streaming or wire-encoding hot paths fails the
# build — and 1.5x for BenchmarkServe* (HTTP middleware
# per-request cost and per-job attribution overhead) and BenchmarkDistGen*
# (the dist-gen coordinator's parse/verify/merge path).  Results under the
# 500ns noise floor never fail: nanosecond ops at -benchtime 100x
# measure scheduler jitter, not the code.  Passes trivially with fewer
# than two records.  bench-trend wraps the same comparison with a
# per-family delta roll-up (scripts/bench_trend.sh); CI runs the trend
# non-blocking since its records span machines.
bench-check:
	$(GO) run ./cmd/benchcheck -dir .

bench-trend:
	scripts/bench_trend.sh

# serve-smoke runs the full service acceptance flow against a live
# server: submit → poll → stream, streamed count vs /v1/truth closed
# form, 429 backpressure, metrics, and a clean SIGINT drain.
serve-smoke:
	scripts/serve_smoke.sh

# distgen-smoke runs distributed generation against a live 3-replica
# fleet: dist-gen merges the leased blocks, the merged total matches
# the /v1/truth closed form, the run's request id correlates the lease
# traffic across every replica's access log, and a re-run is
# byte-identical.
distgen-smoke:
	scripts/distgen_smoke.sh

check: vet build test race serve-smoke distgen-smoke
