# Development workflow for kronbip.  Pure Go 1.22+, no dependencies.
#
#   make            - vet + build + full test suite
#   make race       - race-detector pass over the concurrent packages
#   make bench      - streaming + engine benchmarks
#   make check      - everything (what CI should run)

GO ?= go

# Packages with nontrivial concurrency: everything scheduled on the
# internal/exec engine plus the engine itself.
RACE_PKGS = ./internal/exec ./internal/core ./internal/count ./internal/grb ./internal/dist

.PHONY: all vet build test race bench check

all: vet build test

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

bench:
	$(GO) test -run XXX -bench 'BenchmarkStream_' -benchtime 10x .
	$(GO) test -bench . -benchtime 100x ./internal/exec

check: vet build test race
