#!/usr/bin/env bash
# bench_trend.sh — compare the two newest BENCH_<date>.json records
# (written by `make bench-json`) and print the trend: the per-benchmark
# verdicts from cmd/benchcheck (the same thresholds `make bench-check`
# enforces) followed by a per-family roll-up — mean/min/max ns/op ratio
# for the Stream, Serve and general benchmark families — so a reviewer
# sees at a glance which layer moved, not just which single benchmark.
#
# Exit status is benchcheck's: 0 in-bounds, 1 on a regression beyond a
# family limit.  CI runs this non-blocking (records come from different
# machines; the trend is advisory there), while `make bench-check`
# remains the blocking local gate.
set -euo pipefail
cd "$(dirname "$0")/.."

count=$(ls BENCH_*.json 2>/dev/null | wc -l)
if [ "$count" -lt 2 ]; then
    echo "bench_trend: fewer than two BENCH_*.json records; nothing to compare"
    exit 0
fi

status=0
out=$(go run ./cmd/benchcheck -dir . "$@") || status=$?
printf '%s\n' "$out"

printf '%s\n' "$out" | awk '
    # benchcheck BenchmarkX: old=N new=M ratio=R (limit Lx) verdict
    /^benchcheck Benchmark/ && /ratio=/ {
        name = $2; sub(/:$/, "", name)
        ratio = 0
        for (i = 1; i <= NF; i++)
            if ($i ~ /^ratio=/) { ratio = substr($i, 7) + 0 }
        fam = "general"
        if (name ~ /^BenchmarkStream_/) fam = "stream"
        else if (name ~ /^BenchmarkServe/) fam = "serve"
        n[fam]++; sum[fam] += ratio
        if (!(fam in min) || ratio < min[fam]) min[fam] = ratio
        if (!(fam in max) || ratio > max[fam]) max[fam] = ratio
    }
    END {
        print "bench_trend: family deltas (new/old ns/op; <1 is faster)"
        fams = "stream serve general"
        split(fams, order, " ")
        for (i = 1; i <= 3; i++) {
            f = order[i]
            if (n[f] > 0)
                printf "bench_trend:   %-8s n=%-3d mean=%.2f min=%.2f max=%.2f\n",
                    f, n[f], sum[f] / n[f], min[f], max[f]
        }
    }'

exit "$status"
