#!/usr/bin/env bash
# distgen_smoke.sh — end-to-end smoke test for `kronbip dist-gen`.
#
# Exercises distributed 2D-blocked generation against a real local
# fleet, with nothing but the binary, curl and a shell:
#   1. start three `kronbip serve` replicas on ephemeral ports
#   2. run `kronbip dist-gen` across them (explicit grid, audit on,
#      a pinned request id), merging to a file
#   3. the merged line count equals the closed-form |E_C| reported by
#      /v1/truth for the same spec, with no duplicate edges
#   4. a second dist-gen run produces a byte-identical merged file —
#      distribution is a deterministic permutation, not a race outcome
#   5. SIGINT drains every replica to a clean exit 0
#   6. every block was leased under the run's request id (the replicas'
#      access logs — flushed by the drain — carry route=leases lines
#      with req_id=<run id>), and all three replicas took part
#
# Usage: scripts/distgen_smoke.sh   (from anywhere inside the repo)
# Set SMOKE_DIR to keep the scratch dir (replica logs, merged output)
# for artifact collection instead of a throwaway mktemp.
set -euo pipefail

cd "$(dirname "$0")/.."
if [ -n "${SMOKE_DIR:-}" ]; then
  tmp=$SMOKE_DIR
  mkdir -p "$tmp"
  keep_tmp=1
else
  tmp=$(mktemp -d)
  keep_tmp=
fi
pids=()
cleanup() {
  for pid in "${pids[@]:-}"; do
    if [ -n "$pid" ] && kill -0 "$pid" 2>/dev/null; then
      kill "$pid" 2>/dev/null || true
      wait "$pid" 2>/dev/null || true
    fi
  done
  [ -n "$keep_tmp" ] || rm -rf "$tmp"
}
trap cleanup EXIT

fail() {
  echo "distgen-smoke: FAIL: $*" >&2
  echo "--- dist-gen log ---" >&2
  cat "$tmp/distgen.log" >&2 || true
  for i in 1 2 3; do
    echo "--- replica $i log ---" >&2
    cat "$tmp/serve$i.log" >&2 || true
  done
  exit 1
}

jfield() { # jfield <name> — prints the value of "name": <value>
  sed -n 's/.*"'"$1"'": *"\{0,1\}\([^",]*\)"\{0,1\}.*/\1/p' | head -1
}

echo "distgen-smoke: building kronbip"
go build -o "$tmp/kronbip" ./cmd/kronbip

# 1. Three replicas on ephemeral ports, each with an access log so the
# lease traffic is attributable per replica afterwards.
workers=()
for i in 1 2 3; do
  "$tmp/kronbip" serve -addr 127.0.0.1:0 -workers 1 \
    -access-log "$tmp/access$i.log" 2>"$tmp/serve$i.log" &
  pids+=($!)
done
for i in 1 2 3; do
  addr=
  for _ in $(seq 1 100); do
    addr=$(sed -n 's#.*listening on http://\([^ ]*\).*#\1#p' "$tmp/serve$i.log" | head -1)
    [ -n "$addr" ] && break
    kill -0 "${pids[$((i - 1))]}" 2>/dev/null || fail "replica $i died during startup"
    sleep 0.1
  done
  [ -n "$addr" ] || fail "replica $i never reported its listen address"
  workers+=("http://$addr")
done
echo "distgen-smoke: fleet up at ${workers[*]}"

# 2. Distributed run: crown6 selfloop square over a 4x2 grid (8 blocks
# across 3 replicas forces real distribution), online audit on.
spec_factor=crown6 spec_seed=7 req_id=smoke-dist-1
"$tmp/kronbip" dist-gen \
  -worker "${workers[0]}" -worker "${workers[1]}" -worker "${workers[2]}" \
  -factor "$spec_factor" -mode selfloop -seed "$spec_seed" \
  -rows 4 -cols 2 -audit -request-id "$req_id" \
  -edges-out "$tmp/merged.tsv" 2>"$tmp/distgen.log" \
  || fail "dist-gen exited non-zero"
grep -q 'dist-gen: merged' "$tmp/distgen.log" || fail "dist-gen printed no merge summary"
grep -q 'audit checks=' "$tmp/distgen.log" || fail "dist-gen printed no audit summary"
grep -q 'violations=0' "$tmp/distgen.log" || fail "audit reported violations"

# 3. Merged totals against the fleet's own closed form.
curl -fsS "${workers[0]}/v1/truth?factor=$spec_factor&mode=selfloop&seed=$spec_seed" >"$tmp/truth.json"
want=$(jfield num_edges <"$tmp/truth.json")
[ -n "$want" ] || fail "/v1/truth returned no num_edges"
got=$(wc -l <"$tmp/merged.tsv" | tr -d ' ')
[ "$got" = "$want" ] || fail "merged stream has $got lines, /v1/truth says $want"
dups=$(sort "$tmp/merged.tsv" | uniq -d | head -3)
[ -z "$dups" ] || fail "merged stream carries duplicate edges: $dups"
echo "distgen-smoke: $got merged edges match closed-form |E_C|=$want, no duplicates"

# 4. Determinism: a re-run merges to byte-identical output.
"$tmp/kronbip" dist-gen \
  -worker "${workers[0]}" -worker "${workers[1]}" -worker "${workers[2]}" \
  -factor "$spec_factor" -mode selfloop -seed "$spec_seed" \
  -rows 4 -cols 2 -edges-out "$tmp/merged2.tsv" 2>>"$tmp/distgen.log" \
  || fail "second dist-gen run exited non-zero"
cmp -s "$tmp/merged.tsv" "$tmp/merged2.tsv" \
  || fail "two dist-gen runs produced different merged bytes"
echo "distgen-smoke: re-run is byte-identical (deterministic merge order)"

# 5. Clean drain: every replica exits 0 on SIGINT (which also flushes
# the buffered access logs for the checks below).
for i in 1 2 3; do
  pid=${pids[$((i - 1))]}
  kill -INT "$pid"
  rc=0
  wait "$pid" || rc=$?
  [ "$rc" = 0 ] || fail "replica $i exited $rc after SIGINT"
  pids[$((i - 1))]=
done
echo "distgen-smoke: fleet drained clean"

# 6. Correlation + participation: all 8 blocks of the first run were
# leased under its request id, and every replica served at least one
# lease (three idle replicas all pull from an 8-block queue).
leases=$(cat "$tmp"/access?.log | grep -c "route=leases .*req_id=$req_id" || true)
[ "${leases:-0}" -ge 8 ] || fail "fleet logged $leases leases under req_id=$req_id, want >= 8"
for i in 1 2 3; do
  grep -q 'route=leases' "$tmp/access$i.log" \
    || fail "replica $i served no leases (scheduler left a replica idle)"
done
echo "distgen-smoke: $leases leases correlated under req_id=$req_id across all 3 replicas"

echo "distgen-smoke: PASS"
