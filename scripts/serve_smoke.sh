#!/usr/bin/env bash
# serve_smoke.sh — end-to-end smoke test for `kronbip serve`.
#
# Exercises the acceptance flow with nothing but curl and a shell:
#   1. start the server on an ephemeral port (scraped from the
#      load-bearing "listening on http://ADDR" stderr line)
#   2. /healthz answers ok and carries the version Server header;
#      /readyz answers ready; every response carries a request id and a
#      traceparent
#   3. submit a small selfloop⊗selfloop job (with a client traceparent,
#      which must propagate), poll it to done
#   4. stream the edge list as TSV and verify the line count against
#      the closed-form /v1/truth edge count for the same spec; kill a
#      stream mid-flight, resume from ?offset=, and the stitched file
#      is byte-identical to an uninterrupted fetch; the binary wire
#      format (format=bin / Accept negotiation) streams deterministically
#      and beats the text encoding on the wire
#   5. saturate the 1-worker/1-slot queue with big jobs and verify the
#      next submission bounces with 429 + Retry-After
#   6. /metrics exposes the serve counters (incl. a real cache hit), the
#      windowed SLO gauges (healthy, populated, p99 within target), the
#      runtime.* telemetry, and the per-job attribution histograms
#   7. SIGQUIT on the live server writes a flight-recorder dump carrying
#      the job lifecycle and http trails — and the server keeps serving
#   8. SIGINT drains and the process exits 0; -metrics-out is written;
#      the access log and timeline journal carry the request/trace ids;
#      a final flight dump lands at the -flight-dump path
#
# Usage: scripts/serve_smoke.sh   (from anywhere inside the repo)
# Set SMOKE_DIR to keep the scratch dir (server log, flight dump,
# access log) for artifact collection instead of a throwaway mktemp.
set -euo pipefail

cd "$(dirname "$0")/.."
if [ -n "${SMOKE_DIR:-}" ]; then
  tmp=$SMOKE_DIR
  mkdir -p "$tmp"
  keep_tmp=1
else
  tmp=$(mktemp -d)
  keep_tmp=
fi
srv_pid=
cleanup() {
  if [ -n "$srv_pid" ] && kill -0 "$srv_pid" 2>/dev/null; then
    kill "$srv_pid" 2>/dev/null || true
    wait "$srv_pid" 2>/dev/null || true
  fi
  [ -n "$keep_tmp" ] || rm -rf "$tmp"
}
trap cleanup EXIT

fail() {
  echo "serve-smoke: FAIL: $*" >&2
  echo "--- server log ---" >&2
  cat "$tmp/serve.log" >&2 || true
  exit 1
}

# jq-free field extraction from the server's indented JSON.
jfield() { # jfield <name> — prints the value of "name": <value>
  sed -n 's/.*"'"$1"'": *"\{0,1\}\([^",]*\)"\{0,1\}.*/\1/p' | head -1
}

echo "serve-smoke: building kronbip"
go build -o "$tmp/kronbip" ./cmd/kronbip

# 1. Start on an ephemeral port; 1 worker + 1 queue slot makes the
# saturation check deterministic.
"$tmp/kronbip" serve -addr 127.0.0.1:0 -workers 1 -queue 1 \
  -metrics-out "$tmp/metrics.json" -access-log "$tmp/access.log" \
  -journal-out "$tmp/journal.log" -flight-dump "$tmp/flight.dump" \
  2>"$tmp/serve.log" &
srv_pid=$!

addr=
for _ in $(seq 1 100); do
  addr=$(sed -n 's#.*listening on http://\([^ ]*\).*#\1#p' "$tmp/serve.log" | head -1)
  [ -n "$addr" ] && break
  kill -0 "$srv_pid" 2>/dev/null || fail "server died during startup"
  sleep 0.1
done
[ -n "$addr" ] || fail "server never reported its listen address"
base="http://$addr"
echo "serve-smoke: server up at $base"

# 2. Health + version header; readiness; request identity on every
# response.
curl -fsS -D "$tmp/hz.hdr" "$base/healthz" >"$tmp/hz.json"
grep -q '"status": "ok"' "$tmp/hz.json" || fail "/healthz not ok: $(cat "$tmp/hz.json")"
grep -qi '^Server: kronbip/' "$tmp/hz.hdr" || fail "missing kronbip Server header"
grep -qi '^X-Kronbip-Request-Id:' "$tmp/hz.hdr" || fail "response missing X-Kronbip-Request-Id"
grep -qi '^Traceparent: 00-' "$tmp/hz.hdr" || fail "response missing traceparent"
curl -fsS "$base/readyz" >"$tmp/rz.json"
grep -q '"status": "ready"' "$tmp/rz.json" || fail "/readyz not ready: $(cat "$tmp/rz.json")"
echo "serve-smoke: healthz ok, readyz ready, identity headers present"

# 3. Submit a small selfloop⊗selfloop job with a client trace context
# and poll it to done; the trace id must propagate to the response and
# into the job record.
spec_factor=crown6 spec_seed=7
trace_id=4bf92f3577b34da6a3ce929d0e0e4736
curl -fsS -X POST -H 'Content-Type: application/json' \
  -H "traceparent: 00-$trace_id-00f067aa0ba902b7-01" \
  -H 'X-Kronbip-Request-Id: smoke-req-1' \
  -D "$tmp/job.hdr" \
  -d "{\"factor\":\"$spec_factor\",\"mode\":\"selfloop\",\"seed\":$spec_seed,\"audit\":true}" \
  "$base/v1/jobs" >"$tmp/job.json"
job_id=$(jfield id <"$tmp/job.json")
[ -n "$job_id" ] || fail "submit returned no job id: $(cat "$tmp/job.json")"
grep -qi '^X-Kronbip-Request-Id: smoke-req-1' "$tmp/job.hdr" || fail "submit response did not echo the request id"
grep -qi "^Traceparent: 00-$trace_id-" "$tmp/job.hdr" || fail "submit response did not propagate the trace id"
grep -q "\"trace_id\": \"$trace_id\"" "$tmp/job.json" || fail "job record lacks the submitted trace id"
echo "serve-smoke: submitted $job_id (trace $trace_id propagated)"

state=
for _ in $(seq 1 100); do
  curl -fsS "$base/v1/jobs/$job_id" >"$tmp/poll.json"
  state=$(jfield state <"$tmp/poll.json")
  [ "$state" = done ] && break
  [ "$state" = failed ] && fail "job failed: $(cat "$tmp/poll.json")"
  sleep 0.1
done
[ "$state" = done ] || fail "job never finished (state=$state)"

# 4. Streamed edge count must equal the closed form — twice over: the
# job status agrees with /v1/truth, and the actual TSV stream agrees
# with both.
curl -fsS "$base/v1/truth?factor=$spec_factor&mode=selfloop&seed=$spec_seed" >"$tmp/truth.json"
want=$(jfield num_edges <"$tmp/truth.json")
[ -n "$want" ] || fail "/v1/truth returned no num_edges"
streamed=$(jfield edges_streamed <"$tmp/poll.json")
[ "$streamed" = "$want" ] || fail "job streamed $streamed edges, truth says $want"
got=$(curl -fsS "$base/v1/jobs/$job_id/edges?format=tsv" | wc -l | tr -d ' ')
[ "$got" = "$want" ] || fail "edge stream has $got lines, truth says $want"
echo "serve-smoke: $got streamed edges match closed-form |E_C|=$want"

# 4b. Mid-stream kill + resume: take the first half of the stream, drop
# the connection, fetch the rest with ?offset=, and the stitched file
# must match an uninterrupted fetch byte for byte.
curl -fsS "$base/v1/jobs/$job_id/edges?format=tsv" -o "$tmp/full.tsv"
cut=$((want / 2))
(curl -s "$base/v1/jobs/$job_id/edges?format=tsv" || true) \
  | head -n "$cut" >"$tmp/stitched.tsv"
curl -fsS "$base/v1/jobs/$job_id/edges?format=tsv&offset=$cut" >>"$tmp/stitched.tsv"
cmp -s "$tmp/full.tsv" "$tmp/stitched.tsv" \
  || fail "resumed stream (killed at $cut, resumed via ?offset=) differs from uninterrupted fetch"
echo "serve-smoke: stream killed at edge $cut resumed byte-identically"

# 4c. Binary wire format: format=bin and Accept negotiation produce the
# same deterministic byte stream, a past-the-end offset answers 416, and
# the wire encoding is smaller than the text one.
curl -fsS "$base/v1/jobs/$job_id/edges?format=bin" -o "$tmp/full.bin"
[ -s "$tmp/full.bin" ] || fail "bin stream is empty"
curl -fsS -H 'Accept: application/vnd.kronbip.edges' \
  "$base/v1/jobs/$job_id/edges" -o "$tmp/accept.bin"
cmp -s "$tmp/full.bin" "$tmp/accept.bin" \
  || fail "Accept-negotiated bin stream differs from ?format=bin"
code=$(curl -s -o /dev/null -w '%{http_code}' \
  "$base/v1/jobs/$job_id/edges?format=bin&offset=$((want + 1))")
[ "$code" = 416 ] || fail "offset past the end answered $code, want 416"
tsv_bytes=$(wc -c <"$tmp/full.tsv" | tr -d ' ')
bin_bytes=$(wc -c <"$tmp/full.bin" | tr -d ' ')
[ "$bin_bytes" -lt "$tsv_bytes" ] \
  || fail "bin stream ($bin_bytes B) not smaller than tsv ($tsv_bytes B)"
echo "serve-smoke: bin wire format deterministic ($bin_bytes B vs $tsv_bytes B tsv), 416 past the end"

# 5. Saturation → 429 + Retry-After.  Two long jobs occupy the single
# worker and the single queue slot; the probe must bounce.
curl -fsS -X POST -d '{"factor":"sf500x500x20000","seed":1}' "$base/v1/jobs" >"$tmp/b1.json"
curl -fsS -X POST -d '{"factor":"sf500x500x20000","seed":2}' "$base/v1/jobs" >"$tmp/b2.json"
code=$(curl -s -o "$tmp/probe.json" -D "$tmp/probe.hdr" -w '%{http_code}' \
  -X POST -d '{"factor":"crown4"}' "$base/v1/jobs")
[ "$code" = 429 ] || fail "saturated submit answered $code, want 429"
grep -qi '^Retry-After:' "$tmp/probe.hdr" || fail "429 without Retry-After"
echo "serve-smoke: saturation answered 429 with Retry-After"
for f in b1 b2; do
  bid=$(jfield id <"$tmp/$f.json")
  [ -n "$bid" ] && curl -fsS -X DELETE "$base/v1/jobs/$bid" >/dev/null
done

# 6. Serve metrics on /metrics, with a real cache hit first (the truth
# spec above is re-queried, so it must be warm).
curl -fsS "$base/v1/truth?factor=$spec_factor&mode=selfloop&seed=$spec_seed" >/dev/null
curl -fsS "$base/metrics" >"$tmp/metrics.prom"
for m in serve_http_requests serve_jobs_queue_depth serve_cache_hits; do
  grep -q "$m" "$tmp/metrics.prom" || fail "/metrics missing $m"
done
hits=$(awk '$1 == "serve_cache_hits" {print $2}' "$tmp/metrics.prom")
[ "${hits:-0}" -ge 1 ] || fail "no cache hit recorded after repeated /v1/truth (hits=$hits)"

# 6b. The windowed SLO gauges are populated (the scrape itself ticks the
# evaluator) and within objective: healthy, traffic in the window, and
# measured p99 at or under the target.
for m in serve_slo_healthy serve_slo_p99_us serve_slo_window_requests serve_slo_p99_target_us; do
  grep -q "^$m " "$tmp/metrics.prom" || fail "/metrics missing SLO gauge $m"
done
slo_healthy=$(awk '$1 == "serve_slo_healthy" {print $2}' "$tmp/metrics.prom")
[ "$slo_healthy" = 1 ] || fail "serve_slo_healthy=$slo_healthy, want 1 (SLO burning in smoke?)"
slo_reqs=$(awk '$1 == "serve_slo_window_requests" {print $2}' "$tmp/metrics.prom")
[ "${slo_reqs:-0}" -ge 1 ] || fail "SLO window saw no requests (serve_slo_window_requests=$slo_reqs)"
awk '$1 == "serve_slo_p99_us" {p99=$2} $1 == "serve_slo_p99_target_us" {t=$2}
     END {if (p99+0 > t+0) exit 1}' "$tmp/metrics.prom" \
  || fail "windowed p99 exceeds the SLO target: $(grep '^serve_slo_p99' "$tmp/metrics.prom")"
# Per-route RED series are live for the routes this script exercised.
grep -q 'serve_http_requests{route="truth"}' "$tmp/metrics.prom" || fail "/metrics missing per-route RED series"
echo "serve-smoke: SLO gauges populated and within objective (p99 ok, window_requests=$slo_reqs)"

# 6c. Runtime telemetry and per-job resource attribution: the scrape
# itself samples the runtime collector, and the finished job from step 3
# must have landed in the attribution histograms.
for m in runtime_heap_bytes runtime_goroutines serve_job_cpu_seconds; do
  grep -q "$m" "$tmp/metrics.prom" || fail "/metrics missing $m"
done
heap=$(awk '$1 == "runtime_heap_bytes" {print $2}' "$tmp/metrics.prom")
[ "${heap:-0}" -ge 1 ] || fail "runtime_heap_bytes=$heap, want > 0"
cpu_n=$(awk '$1 == "serve_job_cpu_seconds_count" {print $2}' "$tmp/metrics.prom")
[ "${cpu_n:-0}" -ge 1 ] || fail "serve_job_cpu_seconds_count=$cpu_n after a finished job"
echo "serve-smoke: runtime telemetry live, $cpu_n job(s) attributed (heap=${heap}B)"

# 7. SIGQUIT writes a flight-recorder dump — and the server survives it.
# The dump must carry the job lifecycle and http trails for the traffic
# above; afterwards the server still answers and still streams.
kill -QUIT "$srv_pid"
for _ in $(seq 1 100); do
  [ -s "$tmp/flight.dump" ] && break
  sleep 0.1
done
[ -s "$tmp/flight.dump" ] || fail "SIGQUIT produced no flight dump at -flight-dump path"
grep -q '^flightrec ' "$tmp/flight.dump" || fail "flight dump lacks its header"
grep -q 'cat=job ev="job submitted"' "$tmp/flight.dump" || fail "flight dump lacks job lifecycle events"
grep -q 'cat=job ev="job done"' "$tmp/flight.dump" || fail "flight dump lacks job completion"
grep -q 'cat=http ev="jobs.submit"' "$tmp/flight.dump" || fail "flight dump lacks http request records"
grep -q '^metrics {' "$tmp/flight.dump" || fail "flight dump lacks the metrics snapshot line"
kill -0 "$srv_pid" 2>/dev/null || fail "server died on SIGQUIT (dump should not be fatal)"
curl -fsS "$base/healthz" >/dev/null || fail "server stopped answering after SIGQUIT"
post_quit=$(curl -fsS "$base/v1/jobs/$job_id/edges?format=tsv" | wc -l | tr -d ' ')
[ "$post_quit" = "$want" ] || fail "post-SIGQUIT edge stream has $post_quit lines, want $want"
echo "serve-smoke: SIGQUIT dumped $(wc -l <"$tmp/flight.dump" | tr -d ' ') flight lines; server still serving"

# 8. SIGINT drains and exits 0; the -metrics-out snapshot lands.
kill -INT "$srv_pid"
rc=0
wait "$srv_pid" || rc=$?
srv_pid=
[ "$rc" = 0 ] || fail "server exited $rc after SIGINT"
[ -s "$tmp/metrics.json" ] || fail "-metrics-out snapshot missing or empty"
grep -q 'serve.http.requests' "$tmp/metrics.json" || fail "-metrics-out lacks serve metrics"

# 8b. The access log carries the correlation identity for every request
# (the buffered file sink must have been flushed on drain), and the
# timeline journal's job lane carries the submitted trace id.
[ -s "$tmp/access.log" ] || fail "access log missing or empty"
grep -q 'req_id=smoke-req-1' "$tmp/access.log" || fail "access log lacks the client request id"
grep -q "trace_id=$trace_id" "$tmp/access.log" || fail "access log lacks the client trace id"
grep -q 'route=jobs.submit' "$tmp/access.log" || fail "access log lacks route labels"
[ -s "$tmp/journal.log" ] || fail "timeline journal missing or empty"
grep -q "cat=job .*trace_id=$trace_id" "$tmp/journal.log" || fail "journal job lane lacks the trace id"
echo "serve-smoke: access log and journal carry request/trace ids"

# 8c. The drain left a final flight dump (overwriting the SIGQUIT one)
# that records the shutdown sequence itself.
grep -q 'cat=serve ev="drain begin"' "$tmp/flight.dump" || fail "final flight dump lacks the drain trail"
echo "serve-smoke: final flight dump records the drain"

echo "serve-smoke: PASS"
