// Package kronbip_test benchmarks every experiment of the paper's
// evaluation (DESIGN.md §4) plus ablations of the kernels that make the
// ground-truth pipeline fast.  Run with:
//
//	go test -bench=. -benchmem
//
// Naming: Benchmark<ExperimentID>_* matches the per-experiment index in
// DESIGN.md; the *_Ablation_* benches quantify individual design choices
// (parallel vs serial kernels, formula vs brute force).
package kronbip_test

import (
	"context"
	"runtime"
	"sync"
	"testing"

	"kronbip/internal/approx"
	"kronbip/internal/bter"
	"kronbip/internal/core"
	"kronbip/internal/count"
	"kronbip/internal/dist"
	"kronbip/internal/exec"
	"kronbip/internal/experiments"
	"kronbip/internal/gen"
	"kronbip/internal/grb"
	"kronbip/internal/obs"
	"kronbip/internal/rmat"
	"kronbip/internal/wing"
)

// unicodeProduct builds the Table I product once per benchmark.
func unicodeProduct(b *testing.B) *core.Product {
	b.Helper()
	a := gen.UnicodeLike(2020)
	p, err := core.NewRelaxedWithParts(a.Graph, a, core.ModeSelfLoopFactor)
	if err != nil {
		b.Fatal(err)
	}
	return p
}

// smallUnicodeProduct is a quarter-scale variant for benchmarks that must
// materialize and brute-force count inside the timed loop.
func smallUnicodeProduct(b *testing.B) *core.Product {
	b.Helper()
	a := gen.BipartiteScaleFree(64, 150, 320, 2020)
	p, err := core.NewRelaxedWithParts(a.Graph, a, core.ModeSelfLoopFactor)
	if err != nil {
		b.Fatal(err)
	}
	return p
}

// --- EXP-T1: Table I ---

// BenchmarkTableI_GroundTruth times the paper's headline operation: factor
// statistics plus the closed-form global 4-cycle count of the ~4.2M-edge
// product, with no materialization.
func BenchmarkTableI_GroundTruth(b *testing.B) {
	a := gen.UnicodeLike(2020)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := core.NewRelaxedWithParts(a.Graph, a, core.ModeSelfLoopFactor)
		if err != nil {
			b.Fatal(err)
		}
		_ = p.GlobalFourCycles()
	}
}

// BenchmarkTableI_DirectCount is the competing path at reduced scale:
// materialize the product and count butterflies by wedges.
func BenchmarkTableI_DirectCount(b *testing.B) {
	p := smallUnicodeProduct(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := p.Materialize(0)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := count.GlobalButterflies(g); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableI_Materialize isolates product materialization cost.
func BenchmarkTableI_Materialize(b *testing.B) {
	p := unicodeProduct(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Materialize(0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableI_EdgeStream times streaming all product edges with their
// per-edge 4-cycle ground truth (the "local quantities in linear time"
// claim) without materializing.
func BenchmarkTableI_EdgeStream(b *testing.B) {
	p := unicodeProduct(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var sink int64
		p.EachEdgeFourCycle(func(_, _ int, sq int64) bool {
			sink += sq
			return true
		})
		if sink == 0 {
			b.Fatal("no edges streamed")
		}
	}
}

// --- EXP-F5: Fig. 5 ---

// BenchmarkFig5_VertexVector times the full per-vertex ground-truth vector
// of the 753k-vertex product (the Fig. 5 scatter's y-axis).
func BenchmarkFig5_VertexVector(b *testing.B) {
	p := unicodeProduct(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if v := p.VertexFourCycles(); len(v) != p.N() {
			b.Fatal("short vector")
		}
	}
}

// BenchmarkFig5_Full regenerates the complete figure data (both scatters
// plus binning).
func BenchmarkFig5_Full(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig5(2020); err != nil {
			b.Fatal(err)
		}
	}
}

// --- EXP-F1: Fig. 1 ---

// BenchmarkFig1 regenerates the three small-product panels with
// connectivity/bipartiteness checks and 4-cycle inventories.
func BenchmarkFig1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig1()
		if err != nil || !res.Valid() {
			b.Fatal("fig1 failed")
		}
	}
}

// --- EXP-THM3/4/5 ---

// BenchmarkThm3_VertexGroundTruth times mode-(i) per-vertex formulas.
func BenchmarkThm3_VertexGroundTruth(b *testing.B) {
	p, err := core.New(gen.Petersen(), gen.Crown(6).Graph, core.ModeNonBipartiteFactor)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.VertexFourCycles()
	}
}

// BenchmarkThm4_VertexGroundTruth times mode-(ii) per-vertex formulas.
func BenchmarkThm4_VertexGroundTruth(b *testing.B) {
	p, err := core.New(gen.Hypercube(4), gen.Crown(6).Graph, core.ModeSelfLoopFactor)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.VertexFourCycles()
	}
}

// BenchmarkThm5_EdgePointQueries times O(1) per-edge ground-truth queries.
func BenchmarkThm5_EdgePointQueries(b *testing.B) {
	p := unicodeProduct(b)
	// Collect a query workload once.
	type q struct{ v, w int }
	var queries []q
	p.EachEdge(func(v, w int) bool {
		queries = append(queries, q{v, w})
		return len(queries) < 4096
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		qq := queries[i%len(queries)]
		if _, err := p.EdgeFourCyclesAt(qq.v, qq.w); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkThm345_FullValidationSweep runs the whole formula-vs-brute-force
// sweep (10 factor pairs, both modes).
func BenchmarkThm345_FullValidationSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFormulaValidation()
		if err != nil || !res.Valid() {
			b.Fatal("validation sweep failed")
		}
	}
}

// --- EXP-THM6 ---

// BenchmarkThm6_ClusteringLaw checks the scaling law on every edge of
// K5 ⊗ crown4.
func BenchmarkThm6_ClusteringLaw(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunClusteringLaw(1)
		if err != nil || !res.BoundOK {
			b.Fatal("thm6 failed")
		}
	}
}

// --- EXP-THM7 ---

// BenchmarkThm7_CommunityFormulas times the closed-form community edge
// counts against exact counting on the materialized product.
func BenchmarkThm7_CommunityFormulas(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunCommunity(3)
		if err != nil || !res.FormulasExact {
			b.Fatal("thm7 failed")
		}
	}
}

// --- EXP-REM1 ---

// BenchmarkRemark1_WingDecomposition times the 4-cycle-free-factor sweep
// including full wing decompositions of each product.
func BenchmarkRemark1_WingDecomposition(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunRemark1()
		if err != nil || !res.Valid() {
			b.Fatal("rem1 failed")
		}
	}
}

// --- EXP-SCALE ---

// BenchmarkScale_GroundTruthVsDirect runs a 3-step scaling comparison.
func BenchmarkScale_GroundTruthVsDirect(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunScaling(3, 5, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// --- EXP-BASE: §I baselines ---

// BenchmarkRMAT_Generate times the bipartite R-MAT baseline.
func BenchmarkRMAT_Generate(b *testing.B) {
	p := rmat.DefaultParams(10, 11, 8000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rmat.Generate(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBTER_Generate times the bipartite BTER baseline.
func BenchmarkBTER_Generate(b *testing.B) {
	p := bter.Params{
		DegreesU:      bter.HeavyTailDegrees(1024, 60, 2, 1),
		DegreesW:      bter.HeavyTailDegrees(2048, 40, 2, 2),
		BlockFraction: 0.6,
		BlockDensity:  0.8,
		Seed:          1,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bter.Generate(p); err != nil {
			b.Fatal(err)
		}
	}
}

// --- EXP-ECC: distance ground truth ---

// BenchmarkDistances_GroundTruth times exact diameter + all eccentricities
// from factor BFS tables on a mid-size product.
func BenchmarkDistances_GroundTruth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p, err := core.New(gen.Petersen(), gen.Grid(3, 5), core.ModeNonBipartiteFactor)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := p.Diameter(); err != nil {
			b.Fatal(err)
		}
		for v := 0; v < p.N(); v++ {
			if _, err := p.EccentricityAt(v); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkDistances_BFS is the competing all-pairs BFS on the
// materialized product.
func BenchmarkDistances_BFS(b *testing.B) {
	p, err := core.New(gen.Petersen(), gen.Grid(3, 5), core.ModeNonBipartiteFactor)
	if err != nil {
		b.Fatal(err)
	}
	g, err := p.Materialize(0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.Diameter()
	}
}

// --- EXP-DEG: degree-distribution ground truth ---

// BenchmarkDegrees_ClosedFormHistogram times the exact product degree
// histogram at full Table I scale (never touches the product).
func BenchmarkDegrees_ClosedFormHistogram(b *testing.B) {
	p := unicodeProduct(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if h := p.DegreeHistogram(); len(h) == 0 {
			b.Fatal("empty histogram")
		}
	}
}

// --- EXP-APPROX: estimator grading ---

// BenchmarkApprox_WedgeSample times the wedge estimator at 10k samples on
// a mid-scale product.
func BenchmarkApprox_WedgeSample(b *testing.B) {
	p := smallUnicodeProduct(b)
	g, err := p.Materialize(0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := approx.WedgeSample(g, 10000, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// --- EXP-DIST: distributed-generation simulation ---

// BenchmarkDist_Generate8Ranks times the simulated 8-rank generation with
// inline ground truth.
func BenchmarkDist_Generate8Ranks(b *testing.B) {
	a := gen.ConnectedBipartiteScaleFree(48, 96, 240, 4)
	p, err := core.NewRelaxedWithParts(a.Graph, a, core.ModeSelfLoopFactor)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := dist.Generate(p, 8)
		if err != nil || res.GlobalFour != p.GlobalFourCycles() {
			b.Fatal("distributed reduction wrong")
		}
	}
}

// --- Ablations: the kernels behind the pipeline ---

// BenchmarkAblation_KronSerial and ..._KronParallel quantify the parallel
// Kronecker materialization kernel.
func BenchmarkAblation_KronSerial(b *testing.B)   { benchKron(b, 1) }
func BenchmarkAblation_KronParallel(b *testing.B) { benchKron(b, 0) }

func benchKron(b *testing.B, workers int) {
	a := gen.UnicodeLike(2020)
	m := a.WithFullSelfLoops().Adjacency()
	bm := a.Adjacency()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := grb.KronParallel(m, bm, workers); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_WedgeCountSerial vs ..._Parallel: the validation-side
// butterfly counter.
func BenchmarkAblation_WedgeCountSerial(b *testing.B)   { benchWedge(b, 1) }
func BenchmarkAblation_WedgeCountParallel(b *testing.B) { benchWedge(b, 0) }

func benchWedge(b *testing.B, workers int) {
	p := smallUnicodeProduct(b)
	g, err := p.Materialize(0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := count.VertexButterfliesParallel(g, workers); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_MxMSerial vs ..._Parallel: the SpGEMM behind factor
// statistics.
func BenchmarkAblation_MxMSerial(b *testing.B)   { benchMxM(b, 1) }
func BenchmarkAblation_MxMParallel(b *testing.B) { benchMxM(b, 0) }

func benchMxM(b *testing.B, workers int) {
	a := gen.UnicodeLike(2020).Adjacency()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := grb.MxMParallel(a, a, workers); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_GlobalFormulaVsEdgeSum compares the O(n_A+n_B) global
// count against the O(|E_C|) edge-sum route (both exact).
func BenchmarkAblation_GlobalFormula(b *testing.B) {
	p := unicodeProduct(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.GlobalFourCycles()
	}
}

func BenchmarkAblation_GlobalViaEdgeSum(b *testing.B) {
	p := unicodeProduct(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.GlobalFourCyclesViaEdges()
	}
}

// BenchmarkAblation_FactorStats isolates the one-time factor preprocessing
// (degrees, two-walks, per-vertex and per-edge 4-cycles).
func BenchmarkAblation_FactorStats(b *testing.B) {
	a := gen.UnicodeLike(2020)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.NewFactor(a.Graph); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_WingPeeling times butterfly peeling on a dense-ish
// bipartite graph.
func BenchmarkAblation_WingPeeling(b *testing.B) {
	g := gen.Crown(12).Graph
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := wing.Decomposition(g); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_BFSCounter times the paper's O(|V||E|) reference
// algorithm for comparison with the wedge counter.
func BenchmarkAblation_BFSCounter(b *testing.B) {
	p := smallUnicodeProduct(b)
	g, err := p.Materialize(0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := count.GlobalButterfliesBFS(g); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Execution engine: streaming throughput (PR 1 tentpole) ---
//
// Before/after benches for the internal/exec refactor: the sharded pooled
// streaming path must be no slower than the serial seed path per edge, and
// the cancellable context plumbing must not tax the hot loop.

// BenchmarkStream_EachEdgeSerial is the seed-equivalent baseline: one
// goroutine walking the whole edge set.
func BenchmarkStream_EachEdgeSerial(b *testing.B) {
	p := unicodeProduct(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var n int64
		p.EachEdge(func(v, w int) bool { n++; return true })
		if n != p.NumEdges() {
			b.Fatalf("streamed %d edges, want %d", n, p.NumEdges())
		}
	}
	b.ReportMetric(float64(p.NumEdges()), "edges/op")
}

// BenchmarkStream_EachEdgeContext is the same walk through the cancellable
// context path with a background context — the plumbing overhead bench.
func BenchmarkStream_EachEdgeContext(b *testing.B) {
	p := unicodeProduct(b)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var n int64
		if err := p.EachEdgeContext(ctx, func(v, w int) bool { n++; return true }); err != nil {
			b.Fatal(err)
		}
		if n != p.NumEdges() {
			b.Fatalf("streamed %d edges, want %d", n, p.NumEdges())
		}
	}
	b.ReportMetric(float64(p.NumEdges()), "edges/op")
}

// seedEachEdgeShard reproduces the seed's EachEdgeShard loop exactly:
// `shard*rows/nshards` ranges and per-edge IndexOf arithmetic, with the
// yield called indirectly.  noinline keeps the machine-code structure of
// the seed binary, where EachEdgeShard was a non-inlinable method and
// nothing could be hoisted across the yield calls.
//
//go:noinline
func seedEachEdgeShard(p *core.Product, shard, nshards int, yield func(v, w int) bool) {
	ea := p.FactorA().G.Edges()
	eb := p.FactorB().G.Edges()
	rows := len(ea)
	if p.Mode() == core.ModeSelfLoopFactor {
		rows += p.FactorA().N()
	}
	lo, hi := shard*rows/nshards, (shard+1)*rows/nshards
	for r := lo; r < hi; r++ {
		if r < len(ea) {
			ae := ea[r]
			for _, be := range eb {
				if !yield(p.IndexOf(ae.U, be.U), p.IndexOf(ae.V, be.V)) {
					return
				}
				if !yield(p.IndexOf(ae.U, be.V), p.IndexOf(ae.V, be.U)) {
					return
				}
			}
			continue
		}
		i := r - len(ea)
		for _, be := range eb {
			if !yield(p.IndexOf(i, be.U), p.IndexOf(i, be.V)) {
				return
			}
		}
	}
}

// seedStreamEdgesParallel is a faithful reconstruction of the seed's
// pre-engine StreamEdgesParallel — hand-rolled WaitGroup pool, one
// goroutine per shard, and the seed's error-capturing yield adapter over
// seedEachEdgeShard.  Kept only as the "before" bound for the engine
// benches below.
func seedStreamEdgesParallel(p *core.Product, nshards int, sinkFor func(shard int) func(v, w int) error) error {
	errs := make([]error, nshards)
	var wg sync.WaitGroup
	for s := 0; s < nshards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			sink := sinkFor(s)
			var sinkErr error
			seedEachEdgeShard(p, s, nshards, func(v, w int) bool {
				if err := sink(v, w); err != nil {
					sinkErr = err
					return false
				}
				return true
			})
			errs[s] = sinkErr
		}(s)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// BenchmarkStream_SeedHandRolled runs the reconstructed seed
// implementation with plain per-shard counter sinks.
func BenchmarkStream_SeedHandRolled(b *testing.B) {
	p := unicodeProduct(b)
	nshards := runtime.GOMAXPROCS(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		counts := make([]int64, nshards)
		err := seedStreamEdgesParallel(p, nshards, func(s int) func(v, w int) error {
			return func(v, w int) error { counts[s]++; return nil }
		})
		if err != nil {
			b.Fatal(err)
		}
		var n int64
		for _, c := range counts {
			n += c
		}
		if n != p.NumEdges() {
			b.Fatalf("streamed %d edges, want %d", n, p.NumEdges())
		}
	}
	b.ReportMetric(float64(p.NumEdges()), "edges/op")
}

// BenchmarkStream_ShardedEngine streams all shards concurrently on the
// exec engine, each shard counting into its own plain local counter —
// the same sink shape the seed's StreamEdgesParallel callers used.
func BenchmarkStream_ShardedEngine(b *testing.B) {
	p := unicodeProduct(b)
	ctx := context.Background()
	nshards := runtime.GOMAXPROCS(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		counts := make([]int64, nshards)
		err := p.StreamEdgesParallelContext(ctx, nshards, func(s int) exec.Sink {
			return exec.SinkFunc(func(v, w int) error { counts[s]++; return nil })
		})
		if err != nil {
			b.Fatal(err)
		}
		var n int64
		for _, c := range counts {
			n += c
		}
		if n != p.NumEdges() {
			b.Fatalf("streamed %d edges, want %d", n, p.NumEdges())
		}
	}
	b.ReportMetric(float64(p.NumEdges()), "edges/op")
}

// batchCounter is a Sink+BatchSink pair counting edges without
// synchronization: the batch-capable analogue of the plain per-shard
// counter closures above.
type batchCounter struct{ n int64 }

func (c *batchCounter) Edge(v, w int) error { c.n++; return nil }

func (c *batchCounter) EdgeBatch(batch []exec.Edge) error {
	c.n += int64(len(batch))
	return nil
}

// BenchmarkStream_ShardedBatch is the tentpole number: the same sharded
// stream as BenchmarkStream_ShardedEngine, but through BatchSink-capable
// per-shard counters so the engine takes the batched hot loop (one
// dispatch per exec.BatchLen edges instead of one per edge).  The
// acceptance bar is beating BenchmarkStream_EachEdgeSerial.  At least
// 2 shards even on one core: the win under measure is batch dispatch
// amortization, which does not need OS parallelism to show.
func BenchmarkStream_ShardedBatch(b *testing.B) {
	p := unicodeProduct(b)
	ctx := context.Background()
	nshards := max(2, runtime.GOMAXPROCS(0))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		counters := make([]batchCounter, nshards)
		err := p.StreamEdgesParallelContext(ctx, nshards, func(s int) exec.Sink {
			return &counters[s]
		})
		if err != nil {
			b.Fatal(err)
		}
		var n int64
		for s := range counters {
			n += counters[s].n
		}
		if n != p.NumEdges() {
			b.Fatalf("streamed %d edges, want %d", n, p.NumEdges())
		}
	}
	b.ReportMetric(float64(p.NumEdges()), "edges/op")
}

// BenchmarkStream_ShardedInstrumented is the obs-enabled variant of
// BenchmarkStream_ShardedBatch: it guards the per-shard labeled counter
// cache — shard counters are resolved once per stream from a lock-free
// table, so enabling obs must cost atomics, not registry lookups.
func BenchmarkStream_ShardedInstrumented(b *testing.B) {
	p := unicodeProduct(b)
	ctx := context.Background()
	nshards := max(2, runtime.GOMAXPROCS(0))
	obs.SetEnabled(true)
	defer obs.SetEnabled(false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		counters := make([]batchCounter, nshards)
		err := p.StreamEdgesParallelContext(ctx, nshards, func(s int) exec.Sink {
			return &counters[s]
		})
		if err != nil {
			b.Fatal(err)
		}
		var n int64
		for s := range counters {
			n += counters[s].n
		}
		if n != p.NumEdges() {
			b.Fatalf("streamed %d edges, want %d", n, p.NumEdges())
		}
	}
	b.ReportMetric(float64(p.NumEdges()), "edges/op")
}

// BenchmarkStream_BatchFanIn is the rewritten many-writers-one-consumer
// shape: per-shard batch buffers handing whole pooled slices over a
// channel to a single consumer goroutine, replacing the lock-per-drain
// BufferedSink+LockedSink stack benchmarked below.
func BenchmarkStream_BatchFanIn(b *testing.B) {
	p := unicodeProduct(b)
	ctx := context.Background()
	nshards := max(2, runtime.GOMAXPROCS(0))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var total exec.CountingSink
		f := exec.NewFanIn(&total, 0)
		err := p.StreamEdgesParallelContext(ctx, nshards, func(s int) exec.Sink {
			return f.ForShard()
		})
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			b.Fatal(err)
		}
		if total.Count() != p.NumEdges() {
			b.Fatalf("streamed %d edges, want %d", total.Count(), p.NumEdges())
		}
	}
	b.ReportMetric(float64(p.NumEdges()), "edges/op")
}

// --- Chained products: streaming a k = 2 chain (3 factors) ---
//
// The chain hot loop walks the mixed-radix decomposition instead of the
// two-factor fast path; these benches hold it to the same bar — the
// sharded batched walk must not regress against the serial one, and
// neither may sit far off the two-factor per-edge cost.

// chainProduct builds a 3-factor chain at roughly Table I edge scale:
// ((sf48x96+I)⊗sf48x96 + I) ⊗ crown4, ~3.6M edges.
func chainProduct(b *testing.B) *core.Product {
	b.Helper()
	a := gen.ConnectedBipartiteScaleFree(48, 96, 240, 2020)
	p, err := core.NewChainWithParts(a.Graph, core.ModeSelfLoopFactor, a, gen.Crown(4))
	if err != nil {
		b.Fatal(err)
	}
	return p
}

// BenchmarkStream_Chain_Serial walks the whole chain edge set on one
// goroutine through the batched radix loop.
func BenchmarkStream_Chain_Serial(b *testing.B) {
	p := chainProduct(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var n int64
		p.EachEdge(func(v, w int) bool { n++; return true })
		if n != p.NumEdges() {
			b.Fatalf("streamed %d edges, want %d", n, p.NumEdges())
		}
	}
	b.ReportMetric(float64(p.NumEdges()), "edges/op")
}

// BenchmarkStream_Chain_ShardedBatch is the chain analogue of
// BenchmarkStream_ShardedBatch: all shards concurrently, batch-capable
// per-shard counters, closed-form shard ranges over the term expansion.
func BenchmarkStream_Chain_ShardedBatch(b *testing.B) {
	p := chainProduct(b)
	ctx := context.Background()
	nshards := max(2, runtime.GOMAXPROCS(0))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		counters := make([]batchCounter, nshards)
		err := p.StreamEdgesParallelContext(ctx, nshards, func(s int) exec.Sink {
			return &counters[s]
		})
		if err != nil {
			b.Fatal(err)
		}
		var n int64
		for s := range counters {
			n += counters[s].n
		}
		if n != p.NumEdges() {
			b.Fatalf("streamed %d edges, want %d", n, p.NumEdges())
		}
	}
	b.ReportMetric(float64(p.NumEdges()), "edges/op")
}

// BenchmarkStream_ShardedBufferedFanIn streams all shards through pooled
// per-shard buffers into one shared locked sink — the multi-writer shape
// cmd/kronbip uses when several shards feed one consumer.
func BenchmarkStream_ShardedBufferedFanIn(b *testing.B) {
	p := unicodeProduct(b)
	ctx := context.Background()
	nshards := runtime.GOMAXPROCS(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var total exec.CountingSink
		shared := exec.NewLockedSink(&total)
		err := p.StreamEdgesParallelContext(ctx, nshards, func(s int) exec.Sink {
			return exec.NewBufferedSink(shared)
		})
		if err != nil {
			b.Fatal(err)
		}
		if total.Count() != p.NumEdges() {
			b.Fatalf("streamed %d edges, want %d", total.Count(), p.NumEdges())
		}
	}
	b.ReportMetric(float64(p.NumEdges()), "edges/op")
}
