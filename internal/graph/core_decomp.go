package graph

// k-core decomposition and degeneracy.  The paper's introduction quotes
// the Alon–Yuster–Zwick bounds for 4-cycle detection, O(E·δ(G)) with δ the
// degeneracy, "an O(E^{1/2}) quantity" — this file provides δ and the core
// numbers so counting strategies can exploit them.

// CoreNumbers returns the k-core number of every vertex (the largest k
// such that the vertex survives in the k-core) and the graph's degeneracy
// (the maximum core number), via the linear-time bucket peeling of
// Matula–Beck.  Self loops are ignored by the peeling (a loop does not
// bind a vertex to any neighbor).
func (g *Graph) CoreNumbers() (core []int, degeneracy int) {
	n := g.N()
	deg := make([]int, n)
	maxDeg := 0
	for v := 0; v < n; v++ {
		d := 0
		for _, w := range g.Neighbors(v) {
			if w != v {
				d++
			}
		}
		deg[v] = d
		if d > maxDeg {
			maxDeg = d
		}
	}
	// Bucket sort vertices by degree.
	binStart := make([]int, maxDeg+2)
	for _, d := range deg {
		binStart[d+1]++
	}
	for d := 0; d <= maxDeg; d++ {
		binStart[d+1] += binStart[d]
	}
	order := make([]int, n) // vertices sorted by current degree
	pos := make([]int, n)   // position of each vertex in order
	fill := append([]int(nil), binStart[:maxDeg+1]...)
	for v := 0; v < n; v++ {
		order[fill[deg[v]]] = v
		pos[v] = fill[deg[v]]
		fill[deg[v]]++
	}

	core = append([]int(nil), deg...)
	for i := 0; i < n; i++ {
		v := order[i]
		if core[v] > degeneracy {
			degeneracy = core[v]
		}
		for _, w := range g.Neighbors(v) {
			if w == v || core[w] <= core[v] {
				continue
			}
			// Decrease w's current degree: swap w to the front of its bin.
			dw := core[w]
			pw := pos[w]
			front := binStart[dw]
			u := order[front]
			if u != w {
				order[front], order[pw] = w, u
				pos[w], pos[u] = front, pw
			}
			binStart[dw]++
			core[w]--
		}
	}
	return core, degeneracy
}

// Degeneracy returns δ(G), the maximum over subgraphs of the minimum
// degree.
func (g *Graph) Degeneracy() int {
	_, d := g.CoreNumbers()
	return d
}

// KCore returns the maximal subgraph in which every vertex has degree at
// least k (on the same vertex set; shed vertices become isolated).
func (g *Graph) KCore(k int) *Graph {
	core, _ := g.CoreNumbers()
	var edges []Edge
	g.EachEdge(func(u, v int) bool {
		if u != v && core[u] >= k && core[v] >= k {
			edges = append(edges, Edge{U: u, V: v})
		}
		return true
	})
	kc, err := New(g.N(), edges)
	if err != nil {
		panic(err) // edges come from a valid graph
	}
	return kc
}
