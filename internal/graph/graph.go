// Package graph provides an undirected simple-graph layer over the CSR
// matrices of package grb: construction from edge lists, traversal,
// connectivity, bipartiteness testing with odd-cycle witnesses, and the
// global metrics (eccentricity, diameter) whose ground-truth behaviour the
// paper inherits from prior Kronecker work.
package graph

import (
	"fmt"

	"kronbip/internal/grb"
)

// Edge is an undirected edge between vertices U and V.
type Edge struct {
	U, V int
}

// Graph is an undirected graph backed by a symmetric CSR adjacency matrix
// with unit weights.  Self loops are permitted (the paper's (A+I_A) factor
// uses them) but simple-graph constructors reject them unless noted.
type Graph struct {
	adj *grb.Matrix[int64]
}

// New builds a graph on n vertices from an undirected edge list.  Duplicate
// edges collapse to a single unit edge; self loops are rejected (add them
// later with WithFullSelfLoops if the (A+I) construction is needed).
func New(n int, edges []Edge) (*Graph, error) {
	b := grb.NewBuilder[int64](n, n)
	for _, e := range edges {
		if e.U < 0 || e.U >= n || e.V < 0 || e.V >= n {
			return nil, fmt.Errorf("graph: edge (%d,%d) out of range for %d vertices", e.U, e.V, n)
		}
		if e.U == e.V {
			return nil, fmt.Errorf("graph: self loop (%d,%d) not allowed in New", e.U, e.V)
		}
		b.AddSym(e.U, e.V, 1)
	}
	m, err := b.Build()
	if err != nil {
		return nil, err
	}
	// Clamp duplicate-summed weights back to 1: the builder sums duplicates.
	m, err = grb.Apply(m, func(int64) int64 { return 1 })
	if err != nil {
		return nil, err
	}
	return &Graph{adj: m}, nil
}

// MustNew is New that panics on error, for statically correct literals.
func MustNew(n int, edges []Edge) *Graph {
	g, err := New(n, edges)
	if err != nil {
		panic(err)
	}
	return g
}

// FromAdjacency wraps a symmetric 0/1 CSR matrix as a Graph.  The matrix is
// validated for symmetry and unit weights; diagonal entries are accepted
// (they represent self loops).
func FromAdjacency(a *grb.Matrix[int64]) (*Graph, error) {
	if a.NRows() != a.NCols() {
		return nil, fmt.Errorf("graph: adjacency must be square, got %dx%d", a.NRows(), a.NCols())
	}
	if !grb.IsSymmetric(a) {
		return nil, fmt.Errorf("graph: adjacency must be symmetric")
	}
	ok := true
	a.Iterate(func(i, j int, v int64) bool {
		if v != 1 {
			ok = false
			return false
		}
		return true
	})
	if !ok {
		return nil, fmt.Errorf("graph: adjacency must be 0/1 valued")
	}
	return &Graph{adj: a}, nil
}

// Adjacency returns the underlying CSR adjacency matrix (shared, not
// copied; treat as read-only).
func (g *Graph) Adjacency() *grb.Matrix[int64] { return g.adj }

// N returns the number of vertices.
func (g *Graph) N() int { return g.adj.NRows() }

// NumEdges returns the number of undirected edges; each self loop counts as
// one edge.
func (g *Graph) NumEdges() int {
	loops := 0
	for i := 0; i < g.N(); i++ {
		if g.adj.Has(i, i) {
			loops++
		}
	}
	return (g.adj.NNZ()-loops)/2 + loops
}

// NumSelfLoops returns the number of vertices with a self loop.
func (g *Graph) NumSelfLoops() int {
	loops := 0
	for i := 0; i < g.N(); i++ {
		if g.adj.Has(i, i) {
			loops++
		}
	}
	return loops
}

// HasEdge reports whether {u,v} is an edge.
func (g *Graph) HasEdge(u, v int) bool { return g.adj.Has(u, v) }

// Neighbors returns the sorted neighbor list of v (aliases internal
// storage; do not modify).
func (g *Graph) Neighbors(v int) []int {
	cols, _ := g.adj.Row(v)
	return cols
}

// Degree returns the degree of v; a self loop contributes 1 (row nnz), which
// matches d = A·1 on a 0/1 adjacency with a unit diagonal.
func (g *Graph) Degree(v int) int { return g.adj.RowNNZ(v) }

// Degrees returns the degree vector d_A = A·1 as int64.
func (g *Graph) Degrees() []int64 {
	return grb.ReduceRows(grb.PlusMonoid[int64](), g.adj)
}

// TwoWalks returns w^(2) = A²·1, the number of 2-hop walks leaving each
// vertex (the paper's w_A^{(2)}).
func (g *Graph) TwoWalks() []int64 {
	d := g.Degrees()
	w2, err := grb.MxV(g.adj, d)
	if err != nil {
		panic(err) // dimensions are consistent by construction
	}
	return w2
}

// Edges returns all undirected edges with U <= V, sorted lexicographically.
func (g *Graph) Edges() []Edge {
	var out []Edge
	g.adj.Iterate(func(i, j int, _ int64) bool {
		if i <= j {
			out = append(out, Edge{i, j})
		}
		return true
	})
	return out
}

// EachEdge calls fn once per undirected edge (u <= v); stops early if fn
// returns false.
func (g *Graph) EachEdge(fn func(u, v int) bool) {
	g.adj.Iterate(func(i, j int, _ int64) bool {
		if i <= j {
			return fn(i, j)
		}
		return true
	})
}

// WithFullSelfLoops returns the graph of A + I_A (the paper's Assump. 1(ii)
// factor).  Existing self loops are preserved, not doubled.
func (g *Graph) WithFullSelfLoops() *Graph {
	m, err := grb.PlusDiag(g.adj, int64(1))
	if err != nil {
		panic(err)
	}
	m, _ = grb.Apply(m, func(int64) int64 { return 1 })
	return &Graph{adj: m}
}

// WithoutSelfLoops returns the graph with all diagonal entries removed
// (the paper's C - C∘I_C).
func (g *Graph) WithoutSelfLoops() *Graph {
	return &Graph{adj: grb.OffDiagonal(g.adj)}
}

// InducedSubgraph returns the subgraph induced by the given vertex set,
// along with the mapping from new vertex ids to original ids.
func (g *Graph) InducedSubgraph(vertices []int) (*Graph, []int, error) {
	idx := make(map[int]int, len(vertices))
	orig := make([]int, len(vertices))
	for newID, v := range vertices {
		if v < 0 || v >= g.N() {
			return nil, nil, fmt.Errorf("graph: vertex %d out of range", v)
		}
		if _, dup := idx[v]; dup {
			return nil, nil, fmt.Errorf("graph: duplicate vertex %d in induced set", v)
		}
		idx[v] = newID
		orig[newID] = v
	}
	b := grb.NewBuilder[int64](len(vertices), len(vertices))
	for _, v := range vertices {
		for _, w := range g.Neighbors(v) {
			if nw, ok := idx[w]; ok {
				b.Add(idx[v], nw, 1)
			}
		}
	}
	m, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	m, _ = grb.Apply(m, func(int64) int64 { return 1 })
	return &Graph{adj: m}, orig, nil
}

// String summarizes the graph.
func (g *Graph) String() string {
	return fmt.Sprintf("Graph(n=%d, m=%d)", g.N(), g.NumEdges())
}
