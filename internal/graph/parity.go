package graph

// ParityDistances holds, for one source vertex, the length of the shortest
// even-length and shortest odd-length walks to every vertex (Unreached when
// no walk of that parity exists).  Because any walk can be extended by
// retracing an edge (+2 hops), a walk of parity p and length L exists for
// every length L' >= L with L' ≡ p (mod 2); these two arrays therefore
// characterize exactly which powers A^h have a nonzero (src, v) entry —
// the quantity the Kronecker distance formulas consume.
type ParityDistances struct {
	Even []int
	Odd  []int
}

// ParityBFS computes shortest even- and odd-length walk distances from src
// by breadth-first search on the bipartite double cover of g: state (v, p)
// is vertex v reached with walk parity p.  O(|V| + |E|).
//
// Self loops participate: a self loop at v allows a length-1 odd walk
// v→v, exactly as a nonzero diagonal of the adjacency matrix does in A^h.
func (g *Graph) ParityBFS(src int) ParityDistances {
	n := g.N()
	dist := [2][]int{make([]int, n), make([]int, n)}
	for p := 0; p < 2; p++ {
		for v := range dist[p] {
			dist[p][v] = Unreached
		}
	}
	dist[0][src] = 0
	type state struct {
		v, p int
	}
	queue := []state{{src, 0}}
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		d := dist[s.p][s.v]
		np := 1 - s.p
		for _, w := range g.Neighbors(s.v) {
			if dist[np][w] == Unreached {
				dist[np][w] = d + 1
				queue = append(queue, state{w, np})
			}
		}
	}
	return ParityDistances{Even: dist[0], Odd: dist[1]}
}

// MinWalk returns the shortest walk length from the ParityBFS source to v
// with the given parity (0 = even, 1 = odd), or Unreached.
func (pd ParityDistances) MinWalk(v, parity int) int {
	if parity%2 == 0 {
		return pd.Even[v]
	}
	return pd.Odd[v]
}

// AllParityBFS runs ParityBFS from every source; the result is indexed
// [src].  O(|V|·(|V|+|E|)) — intended for the small factor graphs.
func (g *Graph) AllParityBFS() []ParityDistances {
	out := make([]ParityDistances, g.N())
	for v := 0; v < g.N(); v++ {
		out[v] = g.ParityBFS(v)
	}
	return out
}
