package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// bruteCoreNumbers peels by repeated minimum-degree scans — O(n²) oracle.
func bruteCoreNumbers(g *Graph) []int {
	n := g.N()
	alive := make([]bool, n)
	deg := make([]int, n)
	for v := 0; v < n; v++ {
		alive[v] = true
		for _, w := range g.Neighbors(v) {
			if w != v {
				deg[v]++
			}
		}
	}
	core := make([]int, n)
	k := 0
	for remaining := n; remaining > 0; remaining-- {
		// Find the minimum-degree alive vertex.
		best := -1
		for v := 0; v < n; v++ {
			if alive[v] && (best == -1 || deg[v] < deg[best]) {
				best = v
			}
		}
		if deg[best] > k {
			k = deg[best]
		}
		core[best] = k
		alive[best] = false
		for _, w := range g.Neighbors(best) {
			if w != best && alive[w] {
				deg[w]--
			}
		}
	}
	return core
}

func TestCoreNumbersKnown(t *testing.T) {
	// K4: every vertex has core number 3.
	var edges []Edge
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			edges = append(edges, Edge{i, j})
		}
	}
	k4 := MustNew(4, edges)
	core, degen := k4.CoreNumbers()
	for v, c := range core {
		if c != 3 {
			t.Fatalf("K4 core[%d] = %d, want 3", v, c)
		}
	}
	if degen != 3 {
		t.Fatalf("K4 degeneracy = %d, want 3", degen)
	}
	// Trees have degeneracy 1.
	tree := MustNew(5, []Edge{{0, 1}, {0, 2}, {1, 3}, {1, 4}})
	if tree.Degeneracy() != 1 {
		t.Fatalf("tree degeneracy = %d, want 1", tree.Degeneracy())
	}
	// Star: center core 1, leaves core 1.
	star := MustNew(4, []Edge{{0, 1}, {0, 2}, {0, 3}})
	core, _ = star.CoreNumbers()
	for v, c := range core {
		if c != 1 {
			t.Fatalf("star core[%d] = %d, want 1", v, c)
		}
	}
}

func TestCoreNumbersAgainstBrute(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(14)
		var edges []Edge
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.3 {
					edges = append(edges, Edge{i, j})
				}
			}
		}
		g := MustNew(n, edges)
		fast, degen := g.CoreNumbers()
		slow := bruteCoreNumbers(g)
		maxSlow := 0
		for v := range slow {
			if fast[v] != slow[v] {
				return false
			}
			if slow[v] > maxSlow {
				maxSlow = slow[v]
			}
		}
		return degen == maxSlow
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestKCore(t *testing.T) {
	// Triangle with a pendant: 2-core is the triangle.
	g := MustNew(4, []Edge{{0, 1}, {1, 2}, {2, 0}, {2, 3}})
	kc := g.KCore(2)
	if kc.NumEdges() != 3 {
		t.Fatalf("2-core has %d edges, want 3", kc.NumEdges())
	}
	if kc.Degree(3) != 0 {
		t.Fatal("pendant survived the 2-core")
	}
	// k beyond degeneracy: empty.
	if g.KCore(3).NumEdges() != 0 {
		t.Fatal("3-core of a 2-degenerate graph not empty")
	}
	// Self loops ignored.
	loopy := g.WithFullSelfLoops()
	core, _ := loopy.CoreNumbers()
	plain, _ := g.CoreNumbers()
	for v := range core {
		if core[v] != plain[v] {
			t.Fatal("self loops changed core numbers")
		}
	}
}
