package graph

import (
	"math/rand"
	"testing"

	"kronbip/internal/grb"
)

func path(n int) *Graph {
	edges := make([]Edge, 0, n-1)
	for i := 0; i+1 < n; i++ {
		edges = append(edges, Edge{i, i + 1})
	}
	return MustNew(n, edges)
}

func cycle(n int) *Graph {
	edges := make([]Edge, 0, n)
	for i := 0; i < n; i++ {
		edges = append(edges, Edge{i, (i + 1) % n})
	}
	return MustNew(n, edges)
}

func TestNewValidation(t *testing.T) {
	if _, err := New(2, []Edge{{0, 2}}); err == nil {
		t.Fatal("New accepted out-of-range vertex")
	}
	if _, err := New(2, []Edge{{-1, 0}}); err == nil {
		t.Fatal("New accepted negative vertex")
	}
	if _, err := New(2, []Edge{{1, 1}}); err == nil {
		t.Fatal("New accepted self loop")
	}
}

func TestDuplicateEdgesCollapse(t *testing.T) {
	g := MustNew(3, []Edge{{0, 1}, {0, 1}, {1, 0}, {1, 2}})
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2", g.NumEdges())
	}
	if g.Degree(1) != 2 {
		t.Fatalf("Degree(1) = %d, want 2", g.Degree(1))
	}
	// Adjacency must stay 0/1 even though duplicates summed in the builder.
	if g.Adjacency().At(0, 1) != 1 {
		t.Fatalf("adjacency value = %d, want 1", g.Adjacency().At(0, 1))
	}
}

func TestFromAdjacencyValidation(t *testing.T) {
	asym, _ := grb.FromDense([][]int64{{0, 1}, {0, 0}})
	if _, err := FromAdjacency(asym); err == nil {
		t.Fatal("FromAdjacency accepted asymmetric matrix")
	}
	rect := grb.Zero[int64](2, 3)
	if _, err := FromAdjacency(rect); err == nil {
		t.Fatal("FromAdjacency accepted rectangular matrix")
	}
	weighted, _ := grb.FromDense([][]int64{{0, 2}, {2, 0}})
	if _, err := FromAdjacency(weighted); err == nil {
		t.Fatal("FromAdjacency accepted non-0/1 values")
	}
	loops, _ := grb.FromDense([][]int64{{1, 1}, {1, 0}})
	if _, err := FromAdjacency(loops); err != nil {
		t.Fatalf("FromAdjacency rejected self loops: %v", err)
	}
}

func TestDegreesAndTwoWalks(t *testing.T) {
	// Star with center 0 and 3 leaves.
	g := MustNew(4, []Edge{{0, 1}, {0, 2}, {0, 3}})
	if !grb.EqualVec(g.Degrees(), []int64{3, 1, 1, 1}) {
		t.Fatalf("Degrees = %v", g.Degrees())
	}
	// w2(center) = sum of leaf degrees = 3; w2(leaf) = center degree = 3.
	if !grb.EqualVec(g.TwoWalks(), []int64{3, 3, 3, 3}) {
		t.Fatalf("TwoWalks = %v", g.TwoWalks())
	}
}

func TestEdgesRoundTrip(t *testing.T) {
	in := []Edge{{0, 3}, {1, 2}, {2, 3}}
	g := MustNew(5, in)
	out := g.Edges()
	if len(out) != 3 {
		t.Fatalf("Edges returned %d edges, want 3", len(out))
	}
	for _, e := range out {
		if !g.HasEdge(e.U, e.V) || !g.HasEdge(e.V, e.U) {
			t.Fatalf("edge %v missing from adjacency", e)
		}
		if e.U > e.V {
			t.Fatalf("edge %v not canonical (U<=V)", e)
		}
	}
}

func TestEachEdgeEarlyStop(t *testing.T) {
	g := cycle(10)
	n := 0
	g.EachEdge(func(u, v int) bool {
		n++
		return n < 4
	})
	if n != 4 {
		t.Fatalf("EachEdge visited %d, want 4", n)
	}
}

func TestSelfLoopHelpers(t *testing.T) {
	g := path(3)
	l := g.WithFullSelfLoops()
	if l.NumSelfLoops() != 3 {
		t.Fatalf("NumSelfLoops = %d, want 3", l.NumSelfLoops())
	}
	if l.NumEdges() != g.NumEdges()+3 {
		t.Fatalf("NumEdges with loops = %d", l.NumEdges())
	}
	// Degree counts the loop once (row nnz), matching d = A·1 with unit diag.
	if l.Degree(1) != 3 {
		t.Fatalf("Degree with loop = %d, want 3", l.Degree(1))
	}
	// Adding loops twice must stay 0/1.
	ll := l.WithFullSelfLoops()
	if ll.Adjacency().At(0, 0) != 1 {
		t.Fatalf("double loop value = %d, want 1", ll.Adjacency().At(0, 0))
	}
	back := l.WithoutSelfLoops()
	if back.NumSelfLoops() != 0 || back.NumEdges() != g.NumEdges() {
		t.Fatal("WithoutSelfLoops did not restore the simple graph")
	}
}

func TestBFSPath(t *testing.T) {
	g := path(5)
	dist := g.BFS(0)
	for i, d := range dist {
		if d != i {
			t.Fatalf("BFS dist[%d] = %d, want %d", i, d, i)
		}
	}
}

func TestBFSDisconnected(t *testing.T) {
	g := MustNew(4, []Edge{{0, 1}})
	dist := g.BFS(0)
	if dist[2] != Unreached || dist[3] != Unreached {
		t.Fatalf("BFS reached separate component: %v", dist)
	}
}

func TestConnectedComponents(t *testing.T) {
	g := MustNew(6, []Edge{{0, 1}, {1, 2}, {3, 4}})
	label, count := g.ConnectedComponents()
	if count != 3 {
		t.Fatalf("components = %d, want 3", count)
	}
	if label[0] != label[1] || label[1] != label[2] {
		t.Fatal("first component labels differ")
	}
	if label[3] != label[4] || label[3] == label[0] || label[5] == label[0] || label[5] == label[3] {
		t.Fatal("component labels wrong")
	}
	if g.IsConnected() {
		t.Fatal("disconnected graph reported connected")
	}
	if !path(4).IsConnected() {
		t.Fatal("path reported disconnected")
	}
	if !MustNew(0, nil).IsConnected() {
		t.Fatal("empty graph should be connected")
	}
}

func TestHopsEccentricityDiameter(t *testing.T) {
	g := path(5)
	if g.Hops(0, 4) != 4 || g.Hops(2, 2) != 0 {
		t.Fatal("Hops wrong on path")
	}
	if g.Eccentricity(0) != 4 || g.Eccentricity(2) != 2 {
		t.Fatal("Eccentricity wrong on path")
	}
	if g.Diameter() != 4 {
		t.Fatalf("Diameter = %d, want 4", g.Diameter())
	}
	if cycle(6).Diameter() != 3 {
		t.Fatal("Diameter wrong on 6-cycle")
	}
}

func TestDegreeHistogramAndMaxDegree(t *testing.T) {
	g := MustNew(4, []Edge{{0, 1}, {0, 2}, {0, 3}})
	h := g.DegreeHistogram()
	if h[3] != 1 || h[1] != 3 {
		t.Fatalf("DegreeHistogram = %v", h)
	}
	if g.MaxDegree() != 3 {
		t.Fatalf("MaxDegree = %d, want 3", g.MaxDegree())
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := cycle(6)
	sub, orig, err := g.InducedSubgraph([]int{0, 1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if sub.N() != 4 {
		t.Fatalf("sub.N = %d", sub.N())
	}
	// Edges 0-1, 1-2 survive; 4 is isolated in the induced set.
	if sub.NumEdges() != 2 {
		t.Fatalf("sub edges = %d, want 2", sub.NumEdges())
	}
	if orig[3] != 4 {
		t.Fatalf("orig mapping = %v", orig)
	}
	if _, _, err := g.InducedSubgraph([]int{0, 0}); err == nil {
		t.Fatal("InducedSubgraph accepted duplicate vertex")
	}
	if _, _, err := g.InducedSubgraph([]int{99}); err == nil {
		t.Fatal("InducedSubgraph accepted out-of-range vertex")
	}
}

func TestBipartitionEvenCycle(t *testing.T) {
	bp, _, ok := cycle(8).Bipartition()
	if !ok {
		t.Fatal("even cycle reported non-bipartite")
	}
	if len(bp.U) != 4 || len(bp.W) != 4 {
		t.Fatalf("bipartition sizes %d/%d, want 4/4", len(bp.U), len(bp.W))
	}
}

func TestBipartitionOddCycleWitness(t *testing.T) {
	g := cycle(5)
	_, witness, ok := g.Bipartition()
	if ok {
		t.Fatal("odd cycle reported bipartite")
	}
	if len(witness)%2 == 0 {
		t.Fatalf("witness walk %v has even vertex count (even-length closed walk)", witness)
	}
	// Witness must be a closed walk in the graph.
	for i := 0; i+1 < len(witness); i++ {
		if !g.HasEdge(witness[i], witness[i+1]) {
			t.Fatalf("witness step (%d,%d) is not an edge", witness[i], witness[i+1])
		}
	}
	if !g.HasEdge(witness[len(witness)-1], witness[0]) {
		t.Fatal("witness walk does not close")
	}
}

func TestBipartitionSelfLoop(t *testing.T) {
	g := path(3).WithFullSelfLoops()
	_, witness, ok := g.Bipartition()
	if ok {
		t.Fatal("graph with self loops reported bipartite")
	}
	if len(witness) != 1 {
		t.Fatalf("self-loop witness %v, want single vertex", witness)
	}
}

func TestBipartitionRandomOddEven(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	for trial := 0; trial < 50; trial++ {
		n := 4 + rng.Intn(10)
		// Random bipartite graph.
		var pairs [][2]int
		nu := 1 + n/2
		nw := n - nu
		if nw == 0 {
			nw = 1
		}
		for u := 0; u < nu; u++ {
			for w := 0; w < nw; w++ {
				if rng.Float64() < 0.4 {
					pairs = append(pairs, [2]int{u, w})
				}
			}
		}
		b, err := NewBipartite(nu, nw, pairs)
		if err != nil {
			t.Fatal(err)
		}
		if !b.IsBipartite() {
			t.Fatal("constructed bipartite graph reported non-bipartite")
		}
	}
}

func TestNewBipartite(t *testing.T) {
	b, err := NewBipartite(2, 3, [][2]int{{0, 0}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if b.NU() != 2 || b.NW() != 3 {
		t.Fatalf("parts %d/%d, want 2/3", b.NU(), b.NW())
	}
	if !b.HasEdge(0, 2) || !b.HasEdge(1, 4) {
		t.Fatal("bipartite edges not at block offsets")
	}
	if _, err := NewBipartite(2, 2, [][2]int{{2, 0}}); err == nil {
		t.Fatal("NewBipartite accepted out-of-range pair")
	}
	// Isolated vertices keep their declared side.
	if b.Part.Color[1] != SideU || b.Part.Color[2+1] != SideW {
		t.Fatal("declared sides not preserved")
	}
}

func TestAsBipartite(t *testing.T) {
	if _, err := AsBipartite(cycle(6)); err != nil {
		t.Fatalf("AsBipartite rejected even cycle: %v", err)
	}
	if _, err := AsBipartite(cycle(5)); err == nil {
		t.Fatal("AsBipartite accepted odd cycle")
	}
}
