package graph

import "fmt"

// Side labels the two parts of a bipartition: SideU and SideW correspond to
// the paper's U_A and W_A.  SideNone marks vertices not yet colored.
type Side int8

// Bipartition sides.
const (
	SideNone Side = iota - 1
	SideU
	SideW
)

func (s Side) String() string {
	switch s {
	case SideU:
		return "U"
	case SideW:
		return "W"
	default:
		return "none"
	}
}

// Bipartition is the result of a successful 2-coloring.
type Bipartition struct {
	Color []Side // per-vertex side
	U, W  []int  // vertex ids per side, ascending
}

// Bipartition attempts to 2-color the graph.  On success it returns the
// coloring; on failure it returns an odd closed walk as a witness (a cycle
// through the offending edge).  Vertices with self loops make the graph
// non-bipartite.  For disconnected graphs every component is colored
// independently (isolated vertices land in SideU).
func (g *Graph) Bipartition() (*Bipartition, []int, bool) {
	color := make([]Side, g.N())
	for i := range color {
		color[i] = SideNone
	}
	parent := make([]int, g.N())
	for src := 0; src < g.N(); src++ {
		if color[src] != SideNone {
			continue
		}
		color[src] = SideU
		parent[src] = -1
		queue := []int{src}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, w := range g.Neighbors(v) {
				if w == v {
					// Self loop: odd cycle of length 1.
					return nil, []int{v}, false
				}
				if color[w] == SideNone {
					color[w] = SideU + SideW - color[v]
					parent[w] = v
					queue = append(queue, w)
				} else if color[w] == color[v] {
					return nil, oddWalkWitness(parent, v, w), false
				}
			}
		}
	}
	bp := &Bipartition{Color: color}
	for v := 0; v < g.N(); v++ {
		if color[v] == SideU {
			bp.U = append(bp.U, v)
		} else {
			bp.W = append(bp.W, v)
		}
	}
	return bp, nil, true
}

// oddWalkWitness builds an odd closed walk from the BFS parents when edge
// (v,w) connects two same-colored vertices: path(root..v) + edge + reversed
// path(w..root).  The walk has odd length and contains an odd cycle.
func oddWalkWitness(parent []int, v, w int) []int {
	pathTo := func(x int) []int {
		var p []int
		for x != -1 {
			p = append(p, x)
			x = parent[x]
		}
		// reverse to root-first order
		for i, j := 0, len(p)-1; i < j; i, j = i+1, j-1 {
			p[i], p[j] = p[j], p[i]
		}
		return p
	}
	pv, pw := pathTo(v), pathTo(w)
	// Drop the common prefix so the witness is a simple odd cycle.
	k := 0
	for k < len(pv) && k < len(pw) && pv[k] == pw[k] {
		k++
	}
	// Keep the last common ancestor once: the cycle is
	// lca → … → v → w → … → (child of lca), closing back to lca.
	walk := append([]int{}, pv[k-1:]...)
	for i := len(pw) - 1; i >= k; i-- {
		walk = append(walk, pw[i])
	}
	return walk
}

// IsBipartite reports whether the graph admits a 2-coloring.
func (g *Graph) IsBipartite() bool {
	_, _, ok := g.Bipartition()
	return ok
}

// Bipartite wraps a Graph together with a fixed bipartition; it is the
// factor type the paper's Assumption 1 speaks about.
type Bipartite struct {
	*Graph
	Part Bipartition
}

// AsBipartite checks bipartiteness and wraps the graph.
func AsBipartite(g *Graph) (*Bipartite, error) {
	bp, witness, ok := g.Bipartition()
	if !ok {
		return nil, fmt.Errorf("graph: not bipartite; odd closed walk %v", witness)
	}
	return &Bipartite{Graph: g, Part: *bp}, nil
}

// NewBipartite builds a bipartite graph from rectangular edge pairs
// (u in [0,nu), w in [0,nw)); vertex ids are u for the U side and nu+w for
// the W side, matching the paper's block anti-diagonal ordering
//
//	A = [ 0   X ]
//	    [ Xᵗ  0 ].
func NewBipartite(nu, nw int, pairs [][2]int) (*Bipartite, error) {
	edges := make([]Edge, 0, len(pairs))
	for _, p := range pairs {
		u, w := p[0], p[1]
		if u < 0 || u >= nu || w < 0 || w >= nw {
			return nil, fmt.Errorf("graph: bipartite pair (%d,%d) out of range %dx%d", u, w, nu, nw)
		}
		edges = append(edges, Edge{u, nu + w})
	}
	g, err := New(nu+nw, edges)
	if err != nil {
		return nil, err
	}
	// Construct the canonical bipartition directly: U = [0,nu), W = [nu,nu+nw).
	// This keeps isolated vertices on their intended side, which a fresh
	// 2-coloring cannot know.
	bp := Bipartition{Color: make([]Side, nu+nw)}
	for v := 0; v < nu; v++ {
		bp.Color[v] = SideU
		bp.U = append(bp.U, v)
	}
	for v := nu; v < nu+nw; v++ {
		bp.Color[v] = SideW
		bp.W = append(bp.W, v)
	}
	// Sanity: the declared bipartition must be consistent with the edges.
	for _, e := range edges {
		if bp.Color[e.U] == bp.Color[e.V] {
			return nil, fmt.Errorf("graph: internal error: edge (%d,%d) within one side", e.U, e.V)
		}
	}
	return &Bipartite{Graph: g, Part: bp}, nil
}

// NU returns |U|, the size of the first part.
func (b *Bipartite) NU() int { return len(b.Part.U) }

// NW returns |W|, the size of the second part.
func (b *Bipartite) NW() int { return len(b.Part.W) }
