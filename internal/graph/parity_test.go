package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// bruteParity computes min even/odd walk lengths by BFS over explicit
// (vertex, parity) states with a different implementation shape (layered
// frontier expansion) to cross-check ParityBFS.
func bruteParity(g *Graph, src int) ParityDistances {
	n := g.N()
	const maxLen = 1 << 10
	even := make([]int, n)
	odd := make([]int, n)
	for i := range even {
		even[i] = Unreached
		odd[i] = Unreached
	}
	reach := make([]bool, n)
	reach[src] = true
	even[src] = 0
	for length := 1; length < 2*n+2 && length < maxLen; length++ {
		next := make([]bool, n)
		for v := 0; v < n; v++ {
			if !reach[v] {
				continue
			}
			for _, w := range g.Neighbors(v) {
				next[w] = true
			}
		}
		for w := 0; w < n; w++ {
			if next[w] {
				if length%2 == 0 && even[w] == Unreached {
					even[w] = length
				}
				if length%2 == 1 && odd[w] == Unreached {
					odd[w] = length
				}
			}
		}
		reach = next
	}
	return ParityDistances{Even: even, Odd: odd}
}

func TestParityBFSPath(t *testing.T) {
	g := MustNew(4, []Edge{{0, 1}, {1, 2}, {2, 3}})
	pd := g.ParityBFS(0)
	if pd.Even[0] != 0 || pd.Odd[0] != Unreached {
		t.Fatalf("source parities wrong: even=%d odd=%d", pd.Even[0], pd.Odd[0])
	}
	// Bipartite: each target reachable in exactly one parity.
	if pd.Odd[1] != 1 || pd.Even[1] != Unreached {
		t.Fatalf("vertex 1: even=%d odd=%d", pd.Even[1], pd.Odd[1])
	}
	if pd.Even[2] != 2 || pd.Odd[2] != Unreached {
		t.Fatalf("vertex 2: even=%d odd=%d", pd.Even[2], pd.Odd[2])
	}
}

func TestParityBFSOddCycle(t *testing.T) {
	g := MustNew(5, []Edge{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}})
	pd := g.ParityBFS(0)
	// C5: vertex 1 at odd distance 1, even distance 4 (the long way).
	if pd.Odd[1] != 1 || pd.Even[1] != 4 {
		t.Fatalf("C5 vertex 1: even=%d odd=%d", pd.Even[1], pd.Odd[1])
	}
	// Odd closed walk back to source: girth 5.
	if pd.Odd[0] != 5 {
		t.Fatalf("C5 odd return = %d, want 5", pd.Odd[0])
	}
}

func TestParityBFSSelfLoop(t *testing.T) {
	g := MustNew(2, []Edge{{0, 1}}).WithFullSelfLoops()
	pd := g.ParityBFS(0)
	if pd.Odd[0] != 1 {
		t.Fatalf("self loop should give odd return of 1, got %d", pd.Odd[0])
	}
	if pd.Even[1] != 2 {
		t.Fatalf("loop-then-edge should give even 2, got %d", pd.Even[1])
	}
}

func TestParityBFSDisconnected(t *testing.T) {
	g := MustNew(3, []Edge{{0, 1}})
	pd := g.ParityBFS(0)
	if pd.Even[2] != Unreached || pd.Odd[2] != Unreached {
		t.Fatal("separate component should be unreached in both parities")
	}
}

func TestParityBFSAgainstBrute(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(9)
		var edges []Edge
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.3 {
					edges = append(edges, Edge{i, j})
				}
			}
		}
		g := MustNew(n, edges)
		for src := 0; src < n; src++ {
			fast := g.ParityBFS(src)
			slow := bruteParity(g, src)
			for v := 0; v < n; v++ {
				if fast.Even[v] != slow.Even[v] || fast.Odd[v] != slow.Odd[v] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestMinWalkAndAllParityBFS(t *testing.T) {
	g := MustNew(3, []Edge{{0, 1}, {1, 2}, {2, 0}})
	all := g.AllParityBFS()
	if len(all) != 3 {
		t.Fatal("AllParityBFS wrong length")
	}
	if all[0].MinWalk(1, 1) != 1 || all[0].MinWalk(1, 0) != 2 {
		t.Fatalf("MinWalk wrong: odd=%d even=%d", all[0].MinWalk(1, 1), all[0].MinWalk(1, 0))
	}
	// Parity argument is taken mod 2.
	if all[0].MinWalk(1, 3) != all[0].MinWalk(1, 1) {
		t.Fatal("MinWalk parity not normalized")
	}
}
