package graph

// Unreached marks vertices a BFS did not visit.
const Unreached = -1

// BFS returns the hop distance from src to every vertex, with Unreached (-1)
// for vertices in other components.  Self loops are ignored by traversal
// (they never shorten a path).
func (g *Graph) BFS(src int) []int {
	dist := make([]int, g.N())
	for i := range dist {
		dist[i] = Unreached
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range g.Neighbors(v) {
			if dist[w] == Unreached {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

// ConnectedComponents labels each vertex with a component id in [0, count)
// and returns the number of components.
func (g *Graph) ConnectedComponents() (label []int, count int) {
	label = make([]int, g.N())
	for i := range label {
		label[i] = Unreached
	}
	for src := 0; src < g.N(); src++ {
		if label[src] != Unreached {
			continue
		}
		label[src] = count
		queue := []int{src}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, w := range g.Neighbors(v) {
				if label[w] == Unreached {
					label[w] = count
					queue = append(queue, w)
				}
			}
		}
		count++
	}
	return label, count
}

// IsConnected reports whether the graph has exactly one connected component.
// The empty graph is considered connected.
func (g *Graph) IsConnected() bool {
	if g.N() == 0 {
		return true
	}
	_, count := g.ConnectedComponents()
	return count == 1
}

// Hops returns the minimum hop distance between u and v, or Unreached if
// they are in different components (the paper's hops_A(i,j)).
func (g *Graph) Hops(u, v int) int {
	return g.BFS(u)[v]
}

// Eccentricity returns the maximum BFS distance from v to any reachable
// vertex.  If the graph is disconnected, unreachable vertices are ignored.
func (g *Graph) Eccentricity(v int) int {
	ecc := 0
	for _, d := range g.BFS(v) {
		if d > ecc {
			ecc = d
		}
	}
	return ecc
}

// Diameter returns the maximum eccentricity over all vertices, computed by
// all-sources BFS in O(|V||E|); intended for the small factor graphs.
// Disconnected pairs are ignored; the empty graph has diameter 0.
func (g *Graph) Diameter() int {
	diam := 0
	for v := 0; v < g.N(); v++ {
		if e := g.Eccentricity(v); e > diam {
			diam = e
		}
	}
	return diam
}

// DegreeHistogram returns a map from degree to the number of vertices with
// that degree.
func (g *Graph) DegreeHistogram() map[int]int {
	h := make(map[int]int)
	for v := 0; v < g.N(); v++ {
		h[g.Degree(v)]++
	}
	return h
}

// MaxDegree returns the maximum vertex degree (0 for the empty graph).
func (g *Graph) MaxDegree() int {
	m := 0
	for v := 0; v < g.N(); v++ {
		if d := g.Degree(v); d > m {
			m = d
		}
	}
	return m
}
