// Package audit cross-checks generated output against the paper's
// theorem-derived ground truth while it is being produced.  The
// generator never stores the product, so every global statistic it
// reports is computed from factor-only state (Thm. 3–5, 7); this
// package closes the loop by re-deriving those statistics along
// independent routes and comparing:
//
//   - degree sums: 2·|E_C| must equal (Σ d_M)(Σ d_B), the factor
//     degree-product identity behind Thm. 3;
//   - dual-route 4-cycle counts: Σ s_v / 4 (Thm. 3/4 route) must equal
//     Σ ◊_e / 4 (Thm. 5 route) — two different formula families over
//     different index sets agreeing on one number;
//   - streamed edges: the stream must carry exactly NumEdges() edges,
//     each a real product edge crossing the bipartition (sampled
//     membership checks against HasEdge);
//   - sampled per-vertex spot checks: s_v from Thm. 3/4 against a
//     brute-force butterfly count assembled from raw factor adjacency,
//     bypassing every derived statistic;
//   - community densities (mode (ii)): Thm. 7's m_in/m_out formulas
//     against direct pair counting, plus the Cor. 1–2 density bounds.
//
// Violations surface three ways: obs counters (audit.checks,
// audit.violations), timeline events (cat "audit", one per check, OK
// false on violation), and a Report whose Err() wraps ErrViolation so
// `kronbip -audit` exits non-zero.
package audit

import (
	"errors"
	"fmt"
	"io"
	"math"

	"kronbip/internal/core"
	"kronbip/internal/dist"
	"kronbip/internal/obs"
	"kronbip/internal/obs/timeline"
)

// ErrViolation is wrapped by Report.Err when any invariant failed.
var ErrViolation = errors.New("audit: invariant violation")

// Audit metrics, published on obs.Default while instrumentation is
// enabled (check bookkeeping itself is unconditional — the auditor only
// runs when explicitly requested, so there is no disabled hot path to
// protect).
var (
	mChecks     = obs.Default.Counter("audit.checks")
	mViolations = obs.Default.Counter("audit.violations")
	mSampled    = obs.Default.Counter("audit.edges.sampled")
	mSpot       = obs.Default.Counter("audit.spot.vertices")
)

// Violation is one failed invariant check.
type Violation struct {
	Check  string // dotted check id, e.g. "stream.count"
	Detail string // what was expected vs. observed
}

func (v Violation) String() string { return v.Check + ": " + v.Detail }

// Report accumulates check outcomes from one audited run.
type Report struct {
	Checks     int // checks run, including skipped-as-ok sampling checks
	Violations []Violation
}

// OK reports whether every check passed.
func (r *Report) OK() bool { return len(r.Violations) == 0 }

// Err returns nil when all checks passed, or an error wrapping
// ErrViolation that names the first failure.
func (r *Report) Err() error {
	if r.OK() {
		return nil
	}
	return fmt.Errorf("%w: %d of %d checks failed; first: %s",
		ErrViolation, len(r.Violations), r.Checks, r.Violations[0])
}

// WriteSummary prints one line per check outcome class plus every
// violation:
//
//	audit checks=9 violations=0
func (r *Report) WriteSummary(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "audit checks=%d violations=%d\n", r.Checks, len(r.Violations)); err != nil {
		return err
	}
	for _, v := range r.Violations {
		if _, err := fmt.Fprintf(w, "audit VIOLATION %s\n", v); err != nil {
			return err
		}
	}
	return nil
}

// record books one check outcome into the report, the obs counters and
// the timeline.
func (r *Report) record(check string, ok bool, detail string) {
	r.Checks++
	mChecks.Inc()
	var end timeline.Done
	if timeline.Enabled() {
		end = timeline.Begin(timeline.CatAudit, "audit."+check, 0)
	}
	var err error
	if !ok {
		mViolations.Inc()
		r.Violations = append(r.Violations, Violation{Check: check, Detail: detail})
		err = ErrViolation
	}
	if end != nil {
		end(err)
	}
}

// Options tune the auditor's sampling rates; the zero value selects the
// defaults noted per field.
type Options struct {
	// SampleEvery checks every Nth streamed edge against HasEdge and
	// the bipartition (default 1024; 1 checks every edge).
	SampleEvery int
	// SpotVertices is how many product vertices get the brute-force
	// Thm. 3/4 spot check (default 8).
	SpotVertices int
	// SpotBudget caps the per-vertex brute-force work, measured in
	// two-walks (default 1<<20); over-budget vertices are skipped.
	SpotBudget int64
	// CommunityTop is how many top-degree vertices per factor side seed
	// the Thm. 7 community sets (default 2).
	CommunityTop int
}

func (o Options) withDefaults() Options {
	if o.SampleEvery <= 0 {
		o.SampleEvery = 1024
	}
	if o.SpotVertices <= 0 {
		o.SpotVertices = 8
	}
	if o.SpotBudget <= 0 {
		o.SpotBudget = 1 << 20
	}
	if o.CommunityTop <= 0 {
		o.CommunityTop = 2
	}
	return o
}

// Auditor audits one product's generation run: attach Stream() as an
// edge sink (optional), then call Finalize for the full check suite.
type Auditor struct {
	p      *core.Product
	opt    Options
	stream *StreamAuditor
}

// New builds an auditor for p.
func New(p *core.Product, opt Options) *Auditor {
	return &Auditor{p: p, opt: opt.withDefaults()}
}

// Stream returns the auditor's shared edge sink, creating it on first
// call.  Feed it every generated edge (compose with exec.MultiSink);
// for sharded streams give each shard its own ForShard child.
func (a *Auditor) Stream() *StreamAuditor {
	if a.stream == nil {
		a.stream = NewStream(a.p, a.opt.SampleEvery)
	}
	return a.stream
}

// Finalize runs every applicable check and returns the report.  The
// stream checks only run when Stream() was attached; the community
// check only applies to mode (ii) products.
func (a *Auditor) Finalize() *Report {
	r := &Report{}
	p := a.p

	// Degree-sum identity, folded level by level: Σ d_{C_1} = (Σ d_M)(Σ
	// d_{B_1}) and Σ d_{C_t} = (Σ d_{C_{t-1}} + N_{t-1})(Σ d_{B_t}) — the
	// +N is the I in (C_{t-1}+I) ⊗ B_t.  Computed from the raw factor
	// degree vectors and sizes only, independent of the NumEdges closed
	// form it is checked against.
	fs := p.Factors()
	var degSum int64
	for _, d := range fs[0].D {
		degSum += d
	}
	if p.Mode() == core.ModeSelfLoopFactor {
		degSum += int64(fs[0].N())
	}
	nPrefix := int64(fs[0].N())
	for t, f := range fs[1:] {
		if t > 0 {
			degSum += nPrefix
		}
		var sumB int64
		for _, d := range f.D {
			sumB += d
		}
		degSum *= sumB
		nPrefix *= int64(f.N())
	}
	r.record("theorem.degree_sum", 2*p.NumEdges() == degSum,
		fmt.Sprintf("2|E_C|=%d vs folded Σd_C=%d over %d factors", 2*p.NumEdges(), degSum, p.Arity()))

	// Dual-route global 4-cycles: Σ s_v/4 (vertex route, Thm. 3/4) vs
	// Σ ◊_e/4 (edge route, Thm. 5).
	v4, e4 := p.GlobalFourCycles(), p.GlobalFourCyclesViaEdges()
	r.record("theorem.four_dual", v4 == e4,
		fmt.Sprintf("Σs_v/4=%d vs Σ◊_e/4=%d", v4, e4))

	if a.stream != nil {
		a.stream.finalize(r)
	}

	spotCheckVertices(p, a.opt.SpotVertices, a.opt.SpotBudget, r)

	// Thm. 7 is stated for the two-factor mode-(ii) product; longer
	// chains have no community ground truth to audit (yet), so the check
	// is skipped rather than failed.
	if p.Mode() == core.ModeSelfLoopFactor && p.Arity() == 2 {
		checkCommunity(p, a.opt.CommunityTop, r)
	}
	return r
}

// CheckDistResult audits a distributed-generation reduction against the
// product's ground truth: shard ranges must partition [0, n), the
// reduced totals must match the closed forms, and both 4-cycle routes
// must agree with the factor-only global count.
func CheckDistResult(p *core.Product, res *dist.Result, r *Report) {
	lo := 0
	partitionOK := true
	for _, s := range res.Shards {
		if s.VertexLo != lo || s.VertexHi < s.VertexLo {
			partitionOK = false
			break
		}
		lo = s.VertexHi
	}
	if lo != p.N() {
		partitionOK = false
	}
	r.record("dist.partition", partitionOK,
		fmt.Sprintf("shard ranges do not partition [0,%d)", p.N()))
	r.record("dist.edges", res.TotalEdges == p.NumEdges(),
		fmt.Sprintf("reduced edges=%d vs closed form %d", res.TotalEdges, p.NumEdges()))
	r.record("dist.degree_sum", res.TotalDegree == 2*p.NumEdges(),
		fmt.Sprintf("reduced Σd=%d vs 2|E_C|=%d", res.TotalDegree, 2*p.NumEdges()))
	r.record("dist.four_dual", res.GlobalFour == res.GlobalFourE && res.GlobalFour == p.GlobalFourCycles(),
		fmt.Sprintf("Σs_v/4=%d Σ◊_e/4=%d factor-only=%d", res.GlobalFour, res.GlobalFourE, p.GlobalFourCycles()))
}

// feq compares densities with the same tolerance the Thm. 7 experiment
// uses for its bound checks.
func fgeq(a, b float64) bool { return a >= b-1e-12 }
func fleq(a, b float64) bool { return math.IsInf(b, 1) || a <= b+1e-12 }
