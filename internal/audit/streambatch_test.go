package audit

import (
	"context"
	"testing"

	"kronbip/internal/core"
	"kronbip/internal/exec"
)

// collectProductEdges materializes the edge stream once so batch tests
// can replay the identical sequence through both delivery vocabularies.
func collectProductEdges(t *testing.T, p *core.Product) []exec.Edge {
	t.Helper()
	var edges []exec.Edge
	p.EachEdge(func(v, w int) bool {
		edges = append(edges, exec.Edge{V: v, W: w})
		return true
	})
	return edges
}

// replayBatches slices edges at irregular boundaries (coprime to any
// power-of-two sampling cadence) and feeds them to bs.
func replayBatches(t *testing.T, bs exec.BatchSink, edges []exec.Edge) {
	t.Helper()
	sizes := []int{3, 7, 1, 13, 64, 5}
	for i, n := 0, 0; n < len(edges); i++ {
		take := sizes[i%len(sizes)]
		if take > len(edges)-n {
			take = len(edges) - n
		}
		if err := bs.EdgeBatch(edges[n : n+take]); err != nil {
			t.Fatal(err)
		}
		n += take
	}
}

// TestStreamAuditorBatchMatchesPerEdge: the batched auditor must land
// on the identical edge count, sampled count, and verdicts as per-edge
// delivery of the same stream, regardless of batch boundaries.
func TestStreamAuditorBatchMatchesPerEdge(t *testing.T) {
	for name, p := range products(t) {
		t.Run(name, func(t *testing.T) {
			edges := collectProductEdges(t, p)
			for _, sampleEvery := range []int{1, 5, 1024} {
				perEdge := NewStream(p, sampleEvery)
				for _, e := range edges {
					if err := perEdge.Edge(e.V, e.W); err != nil {
						t.Fatal(err)
					}
				}
				batched := NewStream(p, sampleEvery)
				replayBatches(t, batched, edges)
				if batched.edges.Load() != perEdge.edges.Load() {
					t.Fatalf("sampleEvery=%d: batched counted %d edges, per-edge %d",
						sampleEvery, batched.edges.Load(), perEdge.edges.Load())
				}
				if batched.sampled.Load() != perEdge.sampled.Load() {
					t.Fatalf("sampleEvery=%d: batched sampled %d, per-edge %d",
						sampleEvery, batched.sampled.Load(), perEdge.sampled.Load())
				}
				if batched.bad.Load() != 0 {
					t.Fatalf("sampleEvery=%d: clean stream flagged %d bad edges", sampleEvery, batched.bad.Load())
				}
			}
		})
	}
}

// TestStreamAuditorBatchCatchesForeignEdge: a fabricated edge planted
// at a sampled ordinal is flagged by batch delivery exactly as by
// per-edge delivery.
func TestStreamAuditorBatchCatchesForeignEdge(t *testing.T) {
	p := products(t)["mode2"]
	edges := collectProductEdges(t, p)
	const sampleEvery = 4
	// Plant the foreigner at 1-based ordinal 2*sampleEvery (sampled).
	edges[2*sampleEvery-1] = exec.Edge{V: 0, W: 0}
	s := NewStream(p, sampleEvery)
	replayBatches(t, s, edges)
	if s.bad.Load() != 1 {
		t.Fatalf("flagged %d bad edges, want exactly 1", s.bad.Load())
	}
}

// TestShardAuditorBatchMatchesPerEdge: same equivalence for the
// per-shard child, including the Flush merge into the parent.
func TestShardAuditorBatchMatchesPerEdge(t *testing.T) {
	p := products(t)["mode1"]
	edges := collectProductEdges(t, p)
	const sampleEvery = 7

	viaEdge := NewStream(p, sampleEvery)
	se := viaEdge.ForShard()
	for _, e := range edges {
		if err := se.Edge(e.V, e.W); err != nil {
			t.Fatal(err)
		}
	}
	if err := exec.Finish(se); err != nil {
		t.Fatal(err)
	}

	viaBatch := NewStream(p, sampleEvery)
	sb := viaBatch.ForShard()
	replayBatches(t, sb.(exec.BatchSink), edges)
	if err := exec.Finish(sb); err != nil {
		t.Fatal(err)
	}

	if viaBatch.edges.Load() != viaEdge.edges.Load() || viaBatch.sampled.Load() != viaEdge.sampled.Load() {
		t.Fatalf("batch shard merged (edges=%d sampled=%d), per-edge (edges=%d sampled=%d)",
			viaBatch.edges.Load(), viaBatch.sampled.Load(), viaEdge.edges.Load(), viaEdge.sampled.Load())
	}
}

// TestAuditCleanRunBatchSinks: the full auditor pipeline stays clean
// when the parallel stream takes the batch path end to end (the shard
// children implement BatchSink, so StreamEdgesParallelContext routes
// batches through them automatically).
func TestAuditCleanRunBatchSinks(t *testing.T) {
	for name, p := range products(t) {
		t.Run(name, func(t *testing.T) {
			a := New(p, Options{SampleEvery: 3})
			sinks := make([]exec.Sink, 0, 4)
			err := p.StreamEdgesParallelContext(context.Background(), 4, func(shard int) exec.Sink {
				s := a.Stream().ForShard()
				sinks = append(sinks, s)
				return s
			})
			if err != nil {
				t.Fatal(err)
			}
			for _, s := range sinks {
				if err := exec.Finish(s); err != nil {
					t.Fatal(err)
				}
			}
			if r := a.Finalize(); !r.OK() {
				t.Fatalf("batch-path audit reported violations: %v", r.Violations)
			}
		})
	}
}
