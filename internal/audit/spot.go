package audit

import (
	"fmt"

	"kronbip/internal/core"
)

// spotCheckVertices brute-forces s_v at a deterministic stride-sample
// of product vertices and compares against the Thm. 3/4 closed form.
// The brute force is assembled from raw factor adjacency lists only —
// it never touches the derived D/W2/S/Sq statistics the closed form is
// built from, so agreement really is two independent routes meeting.
func spotCheckVertices(p *core.Product, count int, budget int64, r *Report) {
	n := p.N()
	if n == 0 {
		return
	}
	if count > n {
		count = n
	}
	checked, skipped := 0, 0
	var firstBad string
	ok := true
	for j := 0; j < count; j++ {
		// Stride sampling: deterministic, spread across both factor
		// coordinates (vertex order is i·n_B + k, so a stride of ~n/count
		// walks i and k together).
		v := int(int64(j) * int64(n) / int64(count))
		want := p.VertexFourCyclesAt(v)
		got, inBudget := bruteForceFourCyclesAt(p, v, budget)
		if !inBudget {
			skipped++
			continue
		}
		checked++
		mSpot.Inc()
		if got != want {
			ok = false
			if firstBad == "" {
				firstBad = fmt.Sprintf("vertex %d: Thm. 3/4 says s_v=%d, brute force counts %d", v, want, got)
			}
		}
	}
	if firstBad == "" {
		firstBad = fmt.Sprintf("checked=%d skipped=%d (over budget)", checked, skipped)
	}
	r.record("spot.vertex_cycles", ok, firstBad)
}

// bruteForceFourCyclesAt counts the 4-cycles through product vertex v
// directly: enumerate v's product neighborhood from the factor
// adjacency lists, tally 2-paths v–a–w per opposite corner w, and sum
// C(paths_w, 2).  Work is exactly the number of 2-walks leaving v, so
// the TwoWalksAt closed form prices the call before it runs; vertices
// over budget report inBudget = false.
func bruteForceFourCyclesAt(p *core.Product, v int, budget int64) (count int64, inBudget bool) {
	if p.TwoWalksAt(v) > budget {
		return 0, false
	}
	paths := map[int]int64{}
	for _, a := range productNeighbors(p, v) {
		for _, w := range productNeighbors(p, a) {
			if w != v {
				paths[w]++
			}
		}
	}
	for _, c := range paths {
		count += c * (c - 1) / 2
	}
	return count, true
}

// productNeighbors enumerates N_{C_K}(v) straight from the factor
// adjacency lists, one chain level at a time: for v = (p, k) with p a
// C_{t-1} vertex and k a B_t digit,
//
//	N_{C_t}(p,k) = N_{M_t}(p) × N_{B_t}(k),
//
// where M_1 = A (mode i) or A+I (mode ii), and M_t = C_{t-1}+I for
// t ≥ 2, so the prefix neighborhood is N_{C_{t-1}}(p) ∪ {p}.
func productNeighbors(p *core.Product, v int) []int {
	return chainNeighbors(p, len(p.Factors())-1, v)
}

// chainNeighbors returns N_{C_t}(v) for the length-t prefix chain
// C_t = M₀ ⊗ B_1 ⊗ … ⊗ B_t (t ≥ 1), with vertices numbered in that
// prefix's own mixed radix.
func chainNeighbors(p *core.Product, t, v int) []int {
	fs := p.Factors()
	b := fs[t]
	pv, k := v/b.N(), v%b.N()
	var jp []int
	if t == 1 {
		jp = fs[0].G.Neighbors(pv)
		if p.Mode() == core.ModeSelfLoopFactor {
			jp = append(append(make([]int, 0, len(jp)+1), jp...), pv)
		}
	} else {
		jp = append(chainNeighbors(p, t-1, pv), pv)
	}
	lb := b.G.Neighbors(k)
	out := make([]int, 0, len(jp)*len(lb))
	for _, j := range jp {
		for _, l := range lb {
			out = append(out, j*b.N()+l)
		}
	}
	return out
}
