package audit

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"

	"kronbip/internal/core"
	"kronbip/internal/dist"
	"kronbip/internal/exec"
	"kronbip/internal/gen"
	"kronbip/internal/obs/timeline"
)

func products(t *testing.T) map[string]*core.Product {
	t.Helper()
	p1, err := core.New(gen.Petersen(), gen.Crown(3).Graph, core.ModeNonBipartiteFactor)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := core.New(gen.Hypercube(3), gen.CompleteBipartite(2, 3).Graph, core.ModeSelfLoopFactor)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*core.Product{"mode1": p1, "mode2": p2}
}

// streamInto feeds every product edge of p through the auditor's shard
// sinks, exactly as the generator would.
func streamInto(t *testing.T, p *core.Product, a *Auditor, nshards int) {
	t.Helper()
	sinks := make([]exec.Sink, 0, nshards)
	err := p.StreamEdgesParallelContext(context.Background(), nshards, func(shard int) exec.Sink {
		s := a.Stream().ForShard()
		sinks = append(sinks, s)
		return s
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range sinks {
		if err := exec.Finish(s); err != nil {
			t.Fatal(err)
		}
	}
}

func TestAuditCleanRun(t *testing.T) {
	for name, p := range products(t) {
		t.Run(name, func(t *testing.T) {
			a := New(p, Options{SampleEvery: 1}) // membership-check every edge
			streamInto(t, p, a, 4)
			r := a.Finalize()
			if !r.OK() {
				t.Fatalf("clean run reported violations: %v", r.Violations)
			}
			if err := r.Err(); err != nil {
				t.Fatalf("Err() = %v on clean run", err)
			}
			// mode1: degree_sum, four_dual, stream.count, stream.membership,
			// spot; mode2 adds the four community checks.
			wantChecks := 5
			if p.Mode() == core.ModeSelfLoopFactor {
				wantChecks = 9
			}
			if r.Checks != wantChecks {
				t.Errorf("Checks = %d, want %d", r.Checks, wantChecks)
			}
			var buf bytes.Buffer
			if err := r.WriteSummary(&buf); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(buf.String(), "violations=0") {
				t.Errorf("summary = %q", buf.String())
			}
		})
	}
}

// chainProducts builds k >= 2 factor chains in both modes, so the audit
// suite exercises the folded degree-sum identity and the digit-based
// neighborhood enumeration rather than the two-factor special case.
func chainProducts(t *testing.T) map[string]*core.Product {
	t.Helper()
	p1, err := core.NewChain(gen.Petersen(), core.ModeNonBipartiteFactor,
		gen.Crown(3).Graph, gen.Path(3))
	if err != nil {
		t.Fatal(err)
	}
	p2, err := core.NewChain(gen.Crown(3).Graph, core.ModeSelfLoopFactor,
		gen.Crown(3).Graph, gen.Path(2), gen.Cycle(4))
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*core.Product{"mode1_k2": p1, "mode2_k3": p2}
}

func TestAuditChainCleanRun(t *testing.T) {
	for name, p := range chainProducts(t) {
		t.Run(name, func(t *testing.T) {
			a := New(p, Options{SampleEvery: 1})
			streamInto(t, p, a, 3)
			r := a.Finalize()
			if !r.OK() {
				t.Fatalf("clean chain run reported violations: %v", r.Violations)
			}
			// degree_sum, four_dual, stream.count, stream.membership, spot —
			// and nothing else: the Thm. 7 community checks are two-factor
			// only and must be skipped for chains, even in mode (ii).
			if r.Checks != 5 {
				t.Errorf("Checks = %d, want 5 (community checks must not run on a chain)", r.Checks)
			}
		})
	}
}

func TestChainBruteForceMatchesTheorem(t *testing.T) {
	for name, p := range chainProducts(t) {
		t.Run(name, func(t *testing.T) {
			for v := 0; v < p.N(); v++ {
				got, inBudget := bruteForceFourCyclesAt(p, v, 1<<22)
				if !inBudget {
					continue
				}
				if want := p.VertexFourCyclesAt(v); got != want {
					t.Fatalf("vertex %d: brute force %d, Thm. 3/4 fold %d", v, got, want)
				}
			}
		})
	}
}

func TestAuditDetectsDroppedEdges(t *testing.T) {
	p := products(t)["mode1"]
	a := New(p, Options{})
	streamInto(t, p, a, 2)
	a.Stream().InjectDrop(3)
	r := a.Finalize()
	if r.OK() {
		t.Fatal("auditor missed 3 dropped edges")
	}
	err := r.Err()
	if !errors.Is(err, ErrViolation) {
		t.Fatalf("Err() = %v, want ErrViolation", err)
	}
	if !strings.Contains(err.Error(), "stream.count") {
		t.Errorf("Err() = %v, want a stream.count violation", err)
	}
}

func TestAuditDetectsForeignEdges(t *testing.T) {
	p := products(t)["mode2"]
	a := New(p, Options{SampleEvery: 1})
	s := a.Stream()
	// Stream the real edges, then append fabricated ones: a same-side
	// non-edge pair and an out-of-range vertex.
	streamInto(t, p, a, 1)
	if err := s.Edge(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Edge(-1, p.N()+7); err != nil {
		t.Fatal(err)
	}
	s.InjectDrop(2) // keep the count check clean; membership must fail alone
	r := a.Finalize()
	found := false
	for _, v := range r.Violations {
		if v.Check == "stream.membership" {
			found = true
		}
		if v.Check == "stream.count" {
			t.Errorf("count check failed unexpectedly: %s", v)
		}
	}
	if !found {
		t.Fatalf("membership violation not reported: %v", r.Violations)
	}
}

func TestBruteForceMatchesTheorem(t *testing.T) {
	for name, p := range products(t) {
		t.Run(name, func(t *testing.T) {
			for v := 0; v < p.N(); v++ {
				got, inBudget := bruteForceFourCyclesAt(p, v, 1<<20)
				if !inBudget {
					t.Fatalf("vertex %d over budget on a toy product", v)
				}
				if want := p.VertexFourCyclesAt(v); got != want {
					t.Fatalf("vertex %d: brute force %d, Thm. 3/4 %d", v, got, want)
				}
			}
		})
	}
}

func TestSpotCheckBudget(t *testing.T) {
	p := products(t)["mode1"]
	if _, inBudget := bruteForceFourCyclesAt(p, 0, 1); inBudget {
		t.Fatal("budget 1 must skip every vertex")
	}
	r := &Report{}
	spotCheckVertices(p, 4, 1, r)
	// All skipped is still a pass (nothing checked, nothing wrong).
	if !r.OK() {
		t.Fatalf("over-budget spot check reported violations: %v", r.Violations)
	}
	if r.Checks != 1 {
		t.Errorf("Checks = %d, want 1", r.Checks)
	}
}

func TestCheckDistResult(t *testing.T) {
	p := products(t)["mode2"]
	res, err := dist.Generate(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	r := &Report{}
	CheckDistResult(p, res, r)
	if !r.OK() {
		t.Fatalf("clean dist result flagged: %v", r.Violations)
	}
	if r.Checks != 4 {
		t.Errorf("Checks = %d, want 4", r.Checks)
	}

	// Corrupt the reduction: the audit must notice each class.
	bad := *res
	bad.TotalEdges += 5
	bad.GlobalFourE += 1
	r = &Report{}
	CheckDistResult(p, &bad, r)
	got := map[string]bool{}
	for _, v := range r.Violations {
		got[v.Check] = true
	}
	if !got["dist.edges"] || !got["dist.four_dual"] {
		t.Fatalf("violations = %v, want dist.edges and dist.four_dual", r.Violations)
	}
}

func TestAuditEmitsTimelineEvents(t *testing.T) {
	p := products(t)["mode1"]
	rec := timeline.Default
	rec.Reset()
	timeline.SetEnabled(true)
	defer func() {
		timeline.SetEnabled(false)
		rec.Reset()
	}()
	a := New(p, Options{})
	streamInto(t, p, a, 1)
	a.Stream().InjectDrop(1)
	r := a.Finalize()
	if r.OK() {
		t.Fatal("expected a violation")
	}
	events, _ := rec.Snapshot()
	var auditEvents, failed int
	for _, ev := range events {
		if ev.Cat == timeline.CatAudit {
			auditEvents++
			if !ev.OK {
				failed++
			}
		}
	}
	if auditEvents != r.Checks {
		t.Errorf("timeline has %d audit events, report ran %d checks", auditEvents, r.Checks)
	}
	if failed != len(r.Violations) {
		t.Errorf("timeline has %d failed audit events, report has %d violations", failed, len(r.Violations))
	}
}

func TestCommunityAuditRunsOnModeII(t *testing.T) {
	p := products(t)["mode2"]
	r := &Report{}
	checkCommunity(p, 2, r)
	if !r.OK() {
		t.Fatalf("community audit flagged a clean product: %v", r.Violations)
	}
	if r.Checks != 4 {
		t.Errorf("Checks = %d, want 4 (m_in, m_out, cor1, cor2)", r.Checks)
	}
}
