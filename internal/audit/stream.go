package audit

import (
	"fmt"
	"sync"
	"sync/atomic"

	"kronbip/internal/core"
	"kronbip/internal/exec"
)

// StreamAuditor is an exec.Sink that audits the edge stream itself:
// it counts every edge (the total must land exactly on NumEdges()) and
// membership-checks every sampleEvery-th edge against the factors —
// HasEdge (O(log d), no materialization) plus the bipartition crossing.
//
// The top-level auditor is safe for concurrent writers (atomic
// counters); for sharded streams prefer one ForShard child per shard,
// which accumulates locally and merges on Flush — the same batching
// contract the obs per-shard counters follow.
type StreamAuditor struct {
	p           *core.Product
	sampleEvery int64

	edges   atomic.Int64
	sampled atomic.Int64
	bad     atomic.Int64
	dropped atomic.Int64 // InjectDrop corruption (tests, -audit negative paths)

	mu       sync.Mutex
	firstBad string
}

// NewStream builds a stream auditor for p checking every sampleEvery-th
// edge (<= 0 selects the Options default of 1024).
func NewStream(p *core.Product, sampleEvery int) *StreamAuditor {
	if sampleEvery <= 0 {
		sampleEvery = Options{}.withDefaults().SampleEvery
	}
	return &StreamAuditor{p: p, sampleEvery: int64(sampleEvery)}
}

// Edge audits one streamed edge.  It never returns an error: a bad edge
// is a finding to report at Finalize, not a reason to abort the stream
// mid-run.
func (s *StreamAuditor) Edge(v, w int) error {
	n := s.edges.Add(1)
	if n%s.sampleEvery == 0 {
		s.sampled.Add(1)
		mSampled.Inc()
		s.checkEdge(v, w)
	}
	return nil
}

// EdgeBatch audits a whole batch: one atomic add for the count, then
// membership checks only at the sampled ordinals inside the batch —
// the same every-sampleEvery-th-edge cadence as per-edge delivery.
func (s *StreamAuditor) EdgeBatch(batch []exec.Edge) error {
	n := int64(len(batch))
	hi := s.edges.Add(n)
	base := hi - n // edges seen before this batch
	var sampled int64
	// First in-batch index (0-based) whose 1-based global ordinal is a
	// multiple of sampleEvery.
	for i := int(s.sampleEvery - base%s.sampleEvery - 1); i < len(batch); i += int(s.sampleEvery) {
		sampled++
		s.checkEdge(batch[i].V, batch[i].W)
	}
	if sampled > 0 {
		s.sampled.Add(sampled)
		mSampled.Add(sampled)
	}
	return nil
}

// Edges returns the number of edges seen so far (before InjectDrop
// adjustment).
func (s *StreamAuditor) Edges() int64 { return s.edges.Load() }

// Partial returns the stream-level tallies so far — membership checks
// run and violations among them — without the end-of-stream checks a
// Finalize would add.  This is what an aborted audited stream can still
// report honestly: the count invariant is unjudgeable mid-stream, the
// per-edge membership verdicts are not.
func (s *StreamAuditor) Partial() (checks, violations int64) {
	return s.sampled.Load(), s.bad.Load()
}

// InjectDrop makes the auditor behave as if n streamed edges had been
// lost — the corruption hook behind the negative tests and the CLI's
// -audit-inject-drop flag.  The count check must then fail.
func (s *StreamAuditor) InjectDrop(n int64) { s.dropped.Add(n) }

// checkEdge verifies one edge is a real product edge crossing the
// bipartition, recording the first offender verbatim.
func (s *StreamAuditor) checkEdge(v, w int) {
	ok := v >= 0 && w >= 0 && v < s.p.N() && w < s.p.N() &&
		s.p.HasEdge(v, w) && s.p.SideOf(v) != s.p.SideOf(w)
	if ok {
		return
	}
	s.bad.Add(1)
	s.mu.Lock()
	if s.firstBad == "" {
		s.firstBad = fmt.Sprintf("edge {%d,%d} is not a bipartition-crossing product edge", v, w)
	}
	s.mu.Unlock()
}

// ForShard returns a per-shard child sink accumulating locally; its
// Flush merges into the parent.  Aborted shards may skip Flush, which
// under-counts — exactly what the count check should then report.
func (s *StreamAuditor) ForShard() exec.Sink { return &shardAuditor{parent: s} }

// finalize books the stream checks into r.
func (s *StreamAuditor) finalize(r *Report) {
	seen := s.edges.Load() - s.dropped.Load()
	want := s.p.NumEdges()
	r.record("stream.count", seen == want,
		fmt.Sprintf("streamed %d edges, closed form says %d", seen, want))
	detail := s.firstBad
	if detail == "" {
		detail = "no offender recorded"
	}
	r.record("stream.membership", s.bad.Load() == 0,
		fmt.Sprintf("%d of %d sampled edges failed membership; first: %s",
			s.bad.Load(), s.sampled.Load(), detail))
}

// shardAuditor is the per-shard child: local counters, merge on Flush.
type shardAuditor struct {
	parent   *StreamAuditor
	edges    int64
	sampled  int64
	bad      int64
	firstBad string
}

// Edge audits one edge with shard-local accounting.
func (s *shardAuditor) Edge(v, w int) error {
	s.edges++
	if s.edges%s.parent.sampleEvery == 0 {
		s.sampled++
		s.checkEdge(v, w)
	}
	return nil
}

// EdgeBatch audits a whole batch with shard-local accounting: count the
// batch in one add, membership-check only the sampled ordinals — the
// identical cadence to per-edge delivery on the same shard stream.
func (s *shardAuditor) EdgeBatch(batch []exec.Edge) error {
	se := s.parent.sampleEvery
	for i := int(se - s.edges%se - 1); i < len(batch); i += int(se) {
		s.sampled++
		s.checkEdge(batch[i].V, batch[i].W)
	}
	s.edges += int64(len(batch))
	return nil
}

// checkEdge is the shard-local membership probe.
func (s *shardAuditor) checkEdge(v, w int) {
	p := s.parent.p
	if !(v >= 0 && w >= 0 && v < p.N() && w < p.N() &&
		p.HasEdge(v, w) && p.SideOf(v) != p.SideOf(w)) {
		s.bad++
		if s.firstBad == "" {
			s.firstBad = fmt.Sprintf("edge {%d,%d} is not a bipartition-crossing product edge", v, w)
		}
	}
}

// Flush merges the shard's tallies into the parent.
func (s *shardAuditor) Flush() error {
	s.parent.edges.Add(s.edges)
	s.parent.sampled.Add(s.sampled)
	mSampled.Add(s.sampled)
	if s.bad > 0 {
		s.parent.bad.Add(s.bad)
		s.parent.mu.Lock()
		if s.parent.firstBad == "" {
			s.parent.firstBad = s.firstBad
		}
		s.parent.mu.Unlock()
	}
	s.edges, s.sampled, s.bad = 0, 0, 0
	return nil
}
