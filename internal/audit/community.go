package audit

import (
	"fmt"
	"sort"

	"kronbip/internal/community"
	"kronbip/internal/core"
	"kronbip/internal/graph"
)

// checkCommunity audits the Thm. 7 / Cor. 1–2 community machinery on a
// mode (ii) product.  It seeds factor communities from the top-degree
// vertices of each side, cross-checks the Thm. 7 m_in/m_out closed
// forms against direct pair counting over the (small) product
// community, and asserts the corollary density bounds.
func checkCommunity(p *core.Product, top int, r *Report) {
	bA, err := graph.AsBipartite(p.FactorA().G)
	if err != nil {
		// Mode (ii) construction already verified A bipartite; a failure
		// here is itself a finding.
		r.record("community.setup", false, fmt.Sprintf("factor A: %v", err))
		return
	}
	bB := bipartiteFromProduct(p)

	sa, err := community.NewSet(bA, topDegreeMembers(bA, top))
	if err == nil {
		var sb *community.Set
		if sb, err = community.NewSet(bB, topDegreeMembers(bB, top)); err == nil {
			var pc *community.ProductCommunity
			if pc, err = community.NewProductCommunity(p, sa, sb); err == nil {
				auditProductCommunity(p, pc, r)
				return
			}
		}
	}
	r.record("community.setup", false, err.Error())
}

// auditProductCommunity books the formula and bound checks for one
// product community.
func auditProductCommunity(p *core.Product, pc *community.ProductCommunity, r *Report) {
	// Thm. 7 exact formulas vs direct counting.  The community has
	// |S_A|·|S_B| members — a handful of top-degree vertices per side —
	// so the quadratic pair scan over HasEdge is cheap, and DegreeAt
	// turns the boundary count into Σ deg − 2·m_in.
	members := pc.Members()
	var mIn, degSum int64
	for x, v := range members {
		degSum += p.DegreeAt(v)
		for _, w := range members[x+1:] {
			if p.HasEdge(v, w) {
				mIn++
			}
		}
	}
	mOut := degSum - 2*mIn
	r.record("community.thm7_m_in", pc.InternalEdges() == mIn,
		fmt.Sprintf("Thm. 7 m_in=%d vs direct count %d over %d members", pc.InternalEdges(), mIn, len(members)))
	r.record("community.thm7_m_out", pc.ExternalEdges() == mOut,
		fmt.Sprintf("Thm. 7 m_out=%d vs direct count %d", pc.ExternalEdges(), mOut))

	// Cor. 1 lower bound on internal density (tight 2θ form) and Cor. 2
	// upper bound on external density (+Inf when degenerate).
	_, thetaB := pc.Cor1Bound()
	rhoIn, rhoOut := pc.InternalDensity(), pc.ExternalDensity()
	r.record("community.cor1", fgeq(rhoIn, thetaB),
		fmt.Sprintf("ρ_in=%.6g below Cor. 1 bound %.6g", rhoIn, thetaB))
	cor2 := pc.Cor2Bound()
	r.record("community.cor2", fleq(rhoOut, cor2),
		fmt.Sprintf("ρ_out=%.6g above Cor. 2 bound %.6g", rhoOut, cor2))
}

// bipartiteFromProduct rebuilds B's bipartition exactly as the product
// sees it (SideOf), so the community premise check on declared-vs-fresh
// colorings cannot trip for disconnected factors.
func bipartiteFromProduct(p *core.Product) *graph.Bipartite {
	g := p.FactorB().G
	part := graph.Bipartition{Color: make([]graph.Side, g.N())}
	for k := 0; k < g.N(); k++ {
		side := p.SideOf(p.IndexOf(0, k))
		part.Color[k] = side
		if side == graph.SideU {
			part.U = append(part.U, k)
		} else {
			part.W = append(part.W, k)
		}
	}
	return &graph.Bipartite{Graph: g, Part: part}
}

// topDegreeMembers picks up to `top` highest-degree vertices from each
// side of b (ties broken by vertex id for determinism).
func topDegreeMembers(b *graph.Bipartite, top int) []int {
	pick := func(side []int) []int {
		s := append([]int(nil), side...)
		sort.SliceStable(s, func(x, y int) bool {
			dx, dy := b.Degree(s[x]), b.Degree(s[y])
			if dx != dy {
				return dx > dy
			}
			return s[x] < s[y]
		})
		if len(s) > top {
			s = s[:top]
		}
		return s
	}
	return append(pick(b.Part.U), pick(b.Part.W)...)
}
