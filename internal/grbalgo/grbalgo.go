// Package grbalgo implements classic graph algorithms in the GraphBLAS
// formulation — level-synchronous BFS as masked matrix–vector products
// over the OrAnd semiring, connected components by frontier expansion, and
// bipartiteness via the double cover — mirroring the paper's position that
// "linear algebraic ground truth formulas lend themselves nicely to an
// implementation using GraphBLAS".  Each algorithm is cross-validated in
// tests against the direct queue-based implementations in package graph.
package grbalgo

import (
	"fmt"

	"kronbip/internal/graph"
	"kronbip/internal/grb"
)

// BFSLevels returns the BFS level (hop distance) of every vertex from src,
// with graph.Unreached for other components, computed as repeated
// y = Aᵗ·x over the OrAnd semiring with a "visited" complement mask.
func BFSLevels(g *graph.Graph, src int) ([]int, error) {
	n := g.N()
	if src < 0 || src >= n {
		return nil, fmt.Errorf("grbalgo: source %d out of range [0,%d)", src, n)
	}
	a := g.Adjacency() // symmetric: Aᵗ = A
	levels := make([]int, n)
	for i := range levels {
		levels[i] = graph.Unreached
	}
	frontier := make([]int64, n)
	frontier[src] = 1
	levels[src] = 0
	for depth := 1; depth <= n; depth++ {
		next, err := grb.MxVSemiring(grb.OrAnd[int64](), a, frontier)
		if err != nil {
			return nil, err
		}
		// Complement mask: keep only unvisited vertices.
		any := false
		for v := range next {
			if next[v] != 0 && levels[v] == graph.Unreached {
				levels[v] = depth
				any = true
			} else {
				next[v] = 0
			}
		}
		if !any {
			break
		}
		frontier = next
	}
	return levels, nil
}

// ConnectedComponents labels vertices by repeated BFSLevels sweeps from
// the lowest unlabeled vertex, entirely over the semiring kernel.
func ConnectedComponents(g *graph.Graph) ([]int, int, error) {
	n := g.N()
	label := make([]int, n)
	for i := range label {
		label[i] = graph.Unreached
	}
	count := 0
	for src := 0; src < n; src++ {
		if label[src] != graph.Unreached {
			continue
		}
		levels, err := BFSLevels(g, src)
		if err != nil {
			return nil, 0, err
		}
		for v, d := range levels {
			if d != graph.Unreached {
				label[v] = count
			}
		}
		count++
	}
	return label, count, nil
}

// IsBipartite tests 2-colorability by running BFSLevels on the bipartite
// double cover: G is bipartite iff no vertex v has both cover copies
// (v, even) and (v, odd) reachable from the same source copy.  The double
// cover adjacency is built with the Kronecker product
//
//	cover = A ⊗ [[0,1],[1,0]],
//
// which is itself the paper's machinery turned inward: vertex 2v+p is
// copy p of v.
func IsBipartite(g *graph.Graph) (bool, error) {
	swap, err := grb.FromDense([][]int64{{0, 1}, {1, 0}})
	if err != nil {
		return false, err
	}
	coverAdj, err := grb.Kron(g.Adjacency(), swap)
	if err != nil {
		return false, err
	}
	cover, err := graph.FromAdjacency(coverAdj)
	if err != nil {
		return false, err
	}
	seen := make([]bool, g.N())
	for src := 0; src < g.N(); src++ {
		if seen[src] {
			continue
		}
		levels, err := BFSLevels(cover, 2*src)
		if err != nil {
			return false, err
		}
		for v := 0; v < g.N(); v++ {
			even := levels[2*v] != graph.Unreached
			odd := levels[2*v+1] != graph.Unreached
			if even || odd {
				seen[v] = true
			}
			if even && odd {
				return false, nil // odd closed walk through v
			}
		}
	}
	return true, nil
}

// Eccentricity returns the BFS eccentricity of v over the semiring kernel.
func Eccentricity(g *graph.Graph, v int) (int, error) {
	levels, err := BFSLevels(g, v)
	if err != nil {
		return 0, err
	}
	ecc := 0
	for _, d := range levels {
		if d > ecc {
			ecc = d
		}
	}
	return ecc, nil
}
