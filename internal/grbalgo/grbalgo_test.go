package grbalgo

import (
	"math/rand"
	"testing"
	"testing/quick"

	"kronbip/internal/gen"
	"kronbip/internal/graph"
)

func randomGraph(rng *rand.Rand, n int, density float64) *graph.Graph {
	var edges []graph.Edge
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < density {
				edges = append(edges, graph.Edge{U: i, V: j})
			}
		}
	}
	return graph.MustNew(n, edges)
}

func TestBFSLevelsMatchesQueueBFS(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 3+rng.Intn(12), 0.25)
		for src := 0; src < g.N(); src++ {
			want := g.BFS(src)
			got, err := BFSLevels(g, src)
			if err != nil {
				return false
			}
			for v := range want {
				if got[v] != want[v] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestBFSLevelsValidation(t *testing.T) {
	g := gen.Path(3)
	if _, err := BFSLevels(g, -1); err == nil {
		t.Fatal("accepted negative source")
	}
	if _, err := BFSLevels(g, 3); err == nil {
		t.Fatal("accepted out-of-range source")
	}
}

func TestConnectedComponentsMatchesQueue(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 3+rng.Intn(12), 0.15)
		wantLabel, wantCount := g.ConnectedComponents()
		gotLabel, gotCount, err := ConnectedComponents(g)
		if err != nil || gotCount != wantCount {
			return false
		}
		// Labels must induce the same partition (both label by first-seen
		// vertex order, so they should be identical).
		for v := range wantLabel {
			if gotLabel[v] != wantLabel[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestIsBipartiteMatchesColoring(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 3+rng.Intn(10), 0.3)
		want := g.IsBipartite()
		got, err := IsBipartite(g)
		return err == nil && got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestIsBipartiteKnown(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		want bool
	}{
		{"C6", gen.Cycle(6), true},
		{"C5", gen.Cycle(5), false},
		{"K33", gen.CompleteBipartite(3, 3).Graph, true},
		{"petersen", gen.Petersen(), false},
		{"tree", gen.BinaryTree(4), true},
	}
	for _, tc := range cases {
		got, err := IsBipartite(tc.g)
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.want {
			t.Fatalf("%s: IsBipartite = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestEccentricityMatches(t *testing.T) {
	g := gen.Grid(3, 5)
	for v := 0; v < g.N(); v++ {
		want := g.Eccentricity(v)
		got, err := Eccentricity(g, v)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("Eccentricity(%d) = %d, want %d", v, got, want)
		}
	}
}
