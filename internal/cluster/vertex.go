package cluster

import (
	"fmt"

	"kronbip/internal/count"
	"kronbip/internal/graph"
)

// Vertex-level bipartite clustering coefficients.  The paper's §III-B3
// surveys several proposals (Robins–Alexander, Zhang et al., Opsahl); two
// standard ones are implemented here.  Both consume local 4-cycle and
// wedge statistics, so Kronecker ground truth grades their implementations
// the same way it grades counters.

// VertexCoefficientZhang returns the Zhang et al. pairwise coefficient of
// vertex v: the mean, over unordered pairs {a,b} of distinct neighbors of
// second-neighbors... concretely the standard simplification
//
//	C_v = Σ_{w ∈ N²(v)} C(c_vw, 2) / Σ_{w ∈ N²(v)} C(max(d_v, d_w) ... )
//
// has many variants in the literature; we implement the widely used
// closure form: the fraction of wedges centered on v's neighbors that
// close into a 4-cycle through v,
//
//	C_v = (2·s_v) / Σ_{u ∈ N(v)} (d_u − 1) · (d_v − 1),
//
// where the denominator counts "potential closures": each neighbor u
// offers (d_u − 1) wedges v–u–x, each of which could close with each of
// v's other (d_v − 1) edges.  C_v ∈ [0, 1]; vertices with no potential
// closure report 0.
func VertexCoefficientZhang(g *graph.Graph, v int) (float64, error) {
	if v < 0 || v >= g.N() {
		return 0, fmt.Errorf("cluster: vertex %d out of range [0,%d)", v, g.N())
	}
	dv := int64(g.Degree(v))
	if dv < 2 {
		return 0, nil
	}
	var potential int64
	for _, u := range g.Neighbors(v) {
		potential += int64(g.Degree(u)-1) * (dv - 1)
	}
	if potential == 0 {
		return 0, nil
	}
	s := count.VertexButterfliesAt(g, v)
	return 2 * float64(s) / float64(potential), nil
}

// VertexCoefficientOpsahl returns Opsahl's local 4-path closure
// coefficient of v: the fraction of 3-paths centered at v (x–v... here,
// paths x–u–v–w... following the two-mode formulation, the 4-paths with v
// as an end's second hop) that sit on a closed 4-cycle.  We use the
// tractable equivalent on bipartite graphs: the fraction of wedges
// (v; a, b), a ≠ b ∈ N(v), whose endpoints have a second common neighbor,
//
//	C_v = #{{a,b} ⊂ N(v) : |N(a) ∩ N(b)| ≥ 2} / C(d_v, 2).
//
// This is the "closed wedge" notion of triadic closure lifted to 4-cycles
// (a wedge closes iff it participates in at least one butterfly).
func VertexCoefficientOpsahl(g *graph.Graph, v int) (float64, error) {
	if v < 0 || v >= g.N() {
		return 0, fmt.Errorf("cluster: vertex %d out of range [0,%d)", v, g.N())
	}
	nbrs := g.Neighbors(v)
	if len(nbrs) < 2 {
		return 0, nil
	}
	closed := 0
	total := 0
	for i := 0; i < len(nbrs); i++ {
		for j := i + 1; j < len(nbrs); j++ {
			total++
			if commonNeighborCount(g, nbrs[i], nbrs[j]) >= 2 {
				closed++
			}
		}
	}
	return float64(closed) / float64(total), nil
}

func commonNeighborCount(g *graph.Graph, a, b int) int {
	na, nb := g.Neighbors(a), g.Neighbors(b)
	c, i, j := 0, 0, 0
	for i < len(na) && j < len(nb) {
		switch {
		case na[i] < nb[j]:
			i++
		case nb[j] < na[i]:
			j++
		default:
			c++
			i++
			j++
		}
	}
	return c
}

// AllVertexCoefficientsZhang computes the Zhang coefficient for every
// vertex from a single butterfly pass.
func AllVertexCoefficientsZhang(g *graph.Graph) ([]float64, error) {
	s, err := count.VertexButterflies(g)
	if err != nil {
		return nil, err
	}
	out := make([]float64, g.N())
	for v := 0; v < g.N(); v++ {
		dv := int64(g.Degree(v))
		if dv < 2 {
			continue
		}
		var potential int64
		for _, u := range g.Neighbors(v) {
			potential += int64(g.Degree(u)-1) * (dv - 1)
		}
		if potential > 0 {
			out[v] = 2 * float64(s[v]) / float64(potential)
		}
	}
	return out, nil
}
