package cluster

import (
	"math"
	"testing"

	"kronbip/internal/gen"
)

func TestVertexCoefficientZhangKnown(t *testing.T) {
	// Bicliques saturate at 1.
	for _, ab := range [][2]int{{2, 2}, {3, 3}, {2, 4}} {
		g := gen.CompleteBipartite(ab[0], ab[1]).Graph
		for v := 0; v < g.N(); v++ {
			got, err := VertexCoefficientZhang(g, v)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-1) > 1e-12 {
				t.Fatalf("K_{%d,%d} vertex %d: Zhang = %g, want 1", ab[0], ab[1], v, got)
			}
		}
	}
	// Trees and long cycles: 0.
	for v := 0; v < 6; v++ {
		got, _ := VertexCoefficientZhang(gen.Cycle(6), v)
		if got != 0 {
			t.Fatalf("C6 Zhang = %g, want 0", got)
		}
	}
	// Degree-1 vertices report 0.
	got, _ := VertexCoefficientZhang(gen.Star(5), 1)
	if got != 0 {
		t.Fatal("leaf Zhang should be 0")
	}
	if _, err := VertexCoefficientZhang(gen.Star(5), 99); err == nil {
		t.Fatal("accepted out-of-range vertex")
	}
}

func TestVertexCoefficientZhangInUnitInterval(t *testing.T) {
	g := gen.BipartiteScaleFree(30, 50, 160, 3).Graph
	all, err := AllVertexCoefficientsZhang(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != g.N() {
		t.Fatal("wrong length")
	}
	for v, c := range all {
		if c < 0 || c > 1+1e-12 {
			t.Fatalf("vertex %d: Zhang = %g outside [0,1]", v, c)
		}
		point, err := VertexCoefficientZhang(g, v)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(point-c) > 1e-12 {
			t.Fatalf("vertex %d: pointwise %g != batch %g", v, point, c)
		}
	}
}

func TestVertexCoefficientOpsahlKnown(t *testing.T) {
	// Bicliques: every wedge closes.
	g := gen.CompleteBipartite(3, 4).Graph
	for v := 0; v < g.N(); v++ {
		got, err := VertexCoefficientOpsahl(g, v)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-1) > 1e-12 {
			t.Fatalf("biclique Opsahl(%d) = %g, want 1", v, got)
		}
	}
	// C6: no wedge closes.
	for v := 0; v < 6; v++ {
		got, _ := VertexCoefficientOpsahl(gen.Cycle(6), v)
		if got != 0 {
			t.Fatalf("C6 Opsahl = %g, want 0", got)
		}
	}
	// Leaves: 0 (no wedges).
	got, _ := VertexCoefficientOpsahl(gen.Star(4), 1)
	if got != 0 {
		t.Fatal("leaf Opsahl should be 0")
	}
	if _, err := VertexCoefficientOpsahl(g, -1); err == nil {
		t.Fatal("accepted negative vertex")
	}
}

func TestVertexCoefficientsOrdering(t *testing.T) {
	// On a crown (biclique minus matching) both coefficients are strictly
	// between 0 and 1 — wedges exist, and not all of them close.
	g := gen.Crown(4).Graph
	for v := 0; v < g.N(); v++ {
		z, _ := VertexCoefficientZhang(g, v)
		o, _ := VertexCoefficientOpsahl(g, v)
		if z <= 0 || z >= 1 {
			t.Fatalf("crown Zhang(%d) = %g, want in (0,1)", v, z)
		}
		if o <= 0 || o > 1 {
			t.Fatalf("crown Opsahl(%d) = %g, want in (0,1]", v, o)
		}
	}
}
