package cluster

import (
	"math"
	"math/rand"
	"testing"

	"kronbip/internal/gen"
	"kronbip/internal/graph"
)

func TestEdgeCoefficientKnown(t *testing.T) {
	// Bicliques saturate: every possible 4-cycle exists, Γ = 1.
	g := gen.CompleteBipartite(3, 3).Graph
	gamma, err := EdgeCoefficient(g, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if gamma != 1 {
		t.Fatalf("K33 Γ = %g, want 1", gamma)
	}
	// C6 has no 4-cycles.
	gamma, err = EdgeCoefficient(gen.Cycle(6), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if gamma != 0 {
		t.Fatalf("C6 Γ = %g, want 0", gamma)
	}
	// Degree-1 endpoint → 0 by convention.
	gamma, err = EdgeCoefficient(gen.Star(4), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if gamma != 0 {
		t.Fatalf("star Γ = %g, want 0", gamma)
	}
	if _, err := EdgeCoefficient(g, 0, 1); err == nil {
		t.Fatal("EdgeCoefficient accepted non-edge")
	}
}

func TestAllEdgeCoefficientsMatchPointwise(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	var pairs [][2]int
	for u := 0; u < 6; u++ {
		for w := 0; w < 7; w++ {
			if rng.Float64() < 0.4 {
				pairs = append(pairs, [2]int{u, w})
			}
		}
	}
	b, err := graph.NewBipartite(6, 7, pairs)
	if err != nil {
		t.Fatal(err)
	}
	all, err := AllEdgeCoefficients(b.Graph)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != b.NumEdges() {
		t.Fatalf("coefficient map has %d edges, graph has %d", len(all), b.NumEdges())
	}
	for e, gamma := range all {
		point, err := EdgeCoefficient(b.Graph, e.U, e.V)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(gamma-point) > 1e-12 {
			t.Fatalf("edge %v: map %g, pointwise %g", e, gamma, point)
		}
		if gamma < 0 || gamma > 1 {
			t.Fatalf("Γ out of [0,1]: %g", gamma)
		}
	}
}

func TestThreePaths(t *testing.T) {
	got, err := ThreePaths(gen.Path(4))
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("P4 three-paths = %d, want 1", got)
	}
	got, _ = ThreePaths(gen.Cycle(4))
	if got != 4 {
		t.Fatalf("C4 three-paths = %d, want 4", got)
	}
	if _, err := ThreePaths(gen.Complete(3)); err == nil {
		t.Fatal("ThreePaths accepted non-bipartite graph")
	}
}

func TestGlobalRobinsAlexander(t *testing.T) {
	// Bicliques: coefficient exactly 1.
	for _, ab := range [][2]int{{2, 2}, {3, 4}, {5, 3}} {
		g := gen.CompleteBipartite(ab[0], ab[1]).Graph
		got, err := GlobalRobinsAlexander(g)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-1) > 1e-12 {
			t.Fatalf("K_{%d,%d} RA coefficient = %g, want 1", ab[0], ab[1], got)
		}
	}
	// Trees: no 4-cycles → 0.
	got, err := GlobalRobinsAlexander(gen.BinaryTree(4))
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatalf("tree RA coefficient = %g, want 0", got)
	}
	// No 3-paths at all (single edge) → 0 without dividing by zero.
	got, _ = GlobalRobinsAlexander(gen.Path(2))
	if got != 0 {
		t.Fatal("single edge RA coefficient should be 0")
	}
}

func TestDegreeBinnedCoefficients(t *testing.T) {
	g := gen.CompleteBipartite(4, 6).Graph
	bins, err := DegreeBinnedCoefficients(g)
	if err != nil {
		t.Fatal(err)
	}
	// Min endpoint degree is 4 or 6 → bin [4,7]; all Γ = 1.
	if len(bins) != 1 {
		t.Fatalf("bins = %+v, want a single [4,7] bin", bins)
	}
	if bins[0].MinDegree != 4 || bins[0].MaxDegree != 7 {
		t.Fatalf("bin bounds [%d,%d], want [4,7]", bins[0].MinDegree, bins[0].MaxDegree)
	}
	if bins[0].Edges != 24 || math.Abs(bins[0].MeanGamma-1) > 1e-12 {
		t.Fatalf("bin = %+v", bins[0])
	}
}
