// Package cluster implements bipartite clustering coefficients on explicit
// graphs: the per-edge coefficient of Def. 10 (the "metamorphosis
// coefficient" of Aksoy–Kolda–Pinar), the global Robins–Alexander
// coefficient, and degree-binned averages used when comparing against
// stochastic baseline generators.
package cluster

import (
	"fmt"
	"sort"

	"kronbip/internal/count"
	"kronbip/internal/graph"
)

// EdgeCoefficient returns Γ(u,v) = ◊_uv / ((d_u−1)(d_v−1)) for an edge of
// g (Def. 10).  Edges with a degree-1 endpoint have no possible 4-cycles
// and report 0.
func EdgeCoefficient(g *graph.Graph, u, v int) (float64, error) {
	sq, err := count.EdgeButterfliesAt(g, u, v)
	if err != nil {
		return 0, err
	}
	du, dv := int64(g.Degree(u)), int64(g.Degree(v))
	if du <= 1 || dv <= 1 {
		return 0, nil
	}
	return float64(sq) / float64((du-1)*(dv-1)), nil
}

// AllEdgeCoefficients returns Γ for every undirected edge, computed from a
// single edge-butterfly pass.
func AllEdgeCoefficients(g *graph.Graph) (map[graph.Edge]float64, error) {
	sqs, err := count.EdgeButterflies(g)
	if err != nil {
		return nil, err
	}
	out := make(map[graph.Edge]float64, len(sqs))
	for e, sq := range sqs {
		du, dv := int64(g.Degree(e.U)), int64(g.Degree(e.V))
		if du <= 1 || dv <= 1 {
			out[e] = 0
			continue
		}
		out[e] = float64(sq) / float64((du-1)*(dv-1))
	}
	return out, nil
}

// ThreePaths returns the number of 3-edge paths (P₄ subgraphs) in a
// bipartite graph: Σ_{(u,v)∈E} (d_u−1)(d_v−1).  The formula requires a
// triangle-free graph — in a bipartite graph the two end vertices of the
// path are forced onto different sides and cannot coincide.
func ThreePaths(g *graph.Graph) (int64, error) {
	if !g.IsBipartite() {
		return 0, fmt.Errorf("cluster: ThreePaths formula requires a bipartite graph")
	}
	var total int64
	g.EachEdge(func(u, v int) bool {
		total += int64(g.Degree(u)-1) * int64(g.Degree(v)-1)
		return true
	})
	return total, nil
}

// GlobalRobinsAlexander returns the global bipartite clustering coefficient
// of Robins–Alexander: 4·□(G) / L₃, the fraction of 3-paths that close into
// a 4-cycle.  Graphs with no 3-paths report 0.
func GlobalRobinsAlexander(g *graph.Graph) (float64, error) {
	l3, err := ThreePaths(g)
	if err != nil {
		return 0, err
	}
	if l3 == 0 {
		return 0, nil
	}
	c4, err := count.GlobalButterflies(g)
	if err != nil {
		return 0, err
	}
	return 4 * float64(c4) / float64(l3), nil
}

// DegreeBin is one row of a degree-binned coefficient profile.
type DegreeBin struct {
	MinDegree, MaxDegree int     // inclusive bin bounds (powers of two)
	Edges                int     // edges whose min endpoint degree lands here
	MeanGamma            float64 // average Γ over those edges
}

// DegreeBinnedCoefficients groups edges by the smaller endpoint degree into
// power-of-two bins and averages Γ per bin — the profile bipartite BTER is
// designed to match, reproduced here for the §I baseline comparison.
func DegreeBinnedCoefficients(g *graph.Graph) ([]DegreeBin, error) {
	gammas, err := AllEdgeCoefficients(g)
	if err != nil {
		return nil, err
	}
	type acc struct {
		n   int
		sum float64
	}
	bins := map[int]*acc{}
	for e, gamma := range gammas {
		d := g.Degree(e.U)
		if dv := g.Degree(e.V); dv < d {
			d = dv
		}
		b := 0
		for 1<<(b+1) <= d {
			b++
		}
		if bins[b] == nil {
			bins[b] = &acc{}
		}
		bins[b].n++
		bins[b].sum += gamma
	}
	keys := make([]int, 0, len(bins))
	for k := range bins {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	out := make([]DegreeBin, 0, len(keys))
	for _, k := range keys {
		out = append(out, DegreeBin{
			MinDegree: 1 << k,
			MaxDegree: 1<<(k+1) - 1,
			Edges:     bins[k].n,
			MeanGamma: bins[k].sum / float64(bins[k].n),
		})
	}
	return out, nil
}
