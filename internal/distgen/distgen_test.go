package distgen

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"kronbip/internal/serve"
	"kronbip/internal/spec"
)

// testSpec is the standard fleet-test product: a 2-chain small enough
// for exhaustive local comparison, large enough for a multi-block grid.
var testSpec = spec.Spec{Factors: []string{"crown3", "path3"}, Mode: "selfloop"}

// newFleet starts n serve replicas behind httptest and returns their
// base URLs.  wrap, when non-nil, decorates each replica's handler
// (fault injection).
func newFleet(t *testing.T, n int, wrap func(i int, h http.Handler) http.Handler) []string {
	t.Helper()
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		s := serve.New(serve.Config{Workers: 1})
		h := s.Handler()
		if wrap != nil {
			h = wrap(i, h)
		}
		ts := httptest.NewServer(h)
		t.Cleanup(func() {
			ts.Close()
			_ = s.Shutdown(5 * time.Second)
		})
		urls[i] = ts.URL
	}
	return urls
}

// localEdgeSet streams the spec locally and returns the canonical edge
// multiset keys.
func localEdgeSet(t *testing.T, sp spec.Spec) (map[string]bool, int64) {
	t.Helper()
	p, err := sp.WithDefaults().Build()
	if err != nil {
		t.Fatal(err)
	}
	set := map[string]bool{}
	p.EachEdge(func(v, w int) bool {
		set[fmt.Sprintf("%d\t%d", v, w)] = true
		return true
	})
	return set, p.NumEdges()
}

// parseTSVSet splits a merged tsv payload into its edge-line set,
// failing on duplicates.
func parseTSVSet(t *testing.T, buf []byte) map[string]bool {
	t.Helper()
	set := map[string]bool{}
	for _, line := range bytes.Split(bytes.TrimSuffix(buf, []byte("\n")), []byte("\n")) {
		if len(line) == 0 {
			continue
		}
		if set[string(line)] {
			t.Fatalf("merged stream carries edge %q twice", line)
		}
		set[string(line)] = true
	}
	return set
}

// TestRunHappyPath: three healthy replicas, explicit grid, audit on —
// the merged stream is exactly the local edge set, the totals match the
// closed form, the audit is clean, and the byte stream is deterministic
// across runs.
func TestRunHappyPath(t *testing.T) {
	urls := newFleet(t, 3, nil)
	want, total := localEdgeSet(t, testSpec)
	opts := Options{Workers: urls, Rows: 3, Cols: 2, Audit: true, RequestID: "test-run-happy"}

	var out1 bytes.Buffer
	res, err := Run(context.Background(), testSpec, &out1, opts)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Edges != total {
		t.Fatalf("merged %d edges, closed form %d", res.Edges, total)
	}
	if res.Blocks != 6 || res.Rows != 3 || res.Cols != 2 {
		t.Fatalf("grid %dx%d (%d blocks), want 3x2", res.Rows, res.Cols, res.Blocks)
	}
	if res.AuditChecks == 0 || res.AuditViolations != 0 {
		t.Fatalf("audit checks=%d violations=%d", res.AuditChecks, res.AuditViolations)
	}
	got := parseTSVSet(t, out1.Bytes())
	if len(got) != len(want) {
		t.Fatalf("merged %d distinct edges, local stream has %d", len(got), len(want))
	}
	for l := range want {
		if !got[l] {
			t.Fatalf("edge %q missing from merged stream", l)
		}
	}
	var leases int
	for _, w := range res.Workers {
		leases += w.Leases
	}
	if leases == 0 {
		t.Fatal("no worker recorded an accepted lease")
	}

	// Determinism: a second run over the same fleet produces the
	// identical merged byte stream — block-major order is a fixed
	// permutation, not a race outcome.
	var out2 bytes.Buffer
	if _, err := Run(context.Background(), testSpec, &out2, opts); err != nil {
		t.Fatalf("second Run: %v", err)
	}
	if !bytes.Equal(out1.Bytes(), out2.Bytes()) {
		t.Fatal("two runs over the same fleet produced different merged byte streams")
	}
}

// killerHandler simulates a replica dying mid-lease: the first lease
// response is cut off after a few bytes reach the wire, and every
// request after that has its connection dropped immediately.
type killerHandler struct {
	h      http.Handler
	killed atomic.Bool
}

func (k *killerHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/v1/leases" {
		k.h.ServeHTTP(w, r)
		return
	}
	if k.killed.Load() {
		hijackClose(w)
		return
	}
	k.h.ServeHTTP(&killWriter{ResponseWriter: w, k: k}, r)
}

// hijackClose takes over the connection and closes it — the client sees
// a dropped connection, exactly like a crashed process.
func hijackClose(w http.ResponseWriter) {
	if hj, ok := w.(http.Hijacker); ok {
		if conn, _, err := hj.Hijack(); err == nil {
			conn.Close()
		}
	}
}

// killWriter crashes the replica on its first body write: half the bytes
// reach the wire, then the connection drops and every later write errors
// — a lease truncated mid-payload.
type killWriter struct {
	http.ResponseWriter
	k *killerHandler
}

func (kw *killWriter) Write(b []byte) (int, error) {
	if kw.k.killed.Load() {
		return 0, net.ErrClosed
	}
	if n := len(b) / 2; n > 0 {
		kw.ResponseWriter.Write(b[:n])
		if f, ok := kw.ResponseWriter.(http.Flusher); ok {
			f.Flush()
		}
	}
	kw.k.killed.Store(true)
	hijackClose(kw.ResponseWriter)
	return 0, net.ErrClosed
}

func (kw *killWriter) Flush() {
	if kw.k.killed.Load() {
		return
	}
	if f, ok := kw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// TestRunWorkerKilledMidLease is the fault-injection acceptance test:
// one of three workers dies mid-lease (partial payload on the wire, then
// connection drops forever).  The coordinator re-issues its leases to
// the surviving replicas, the run completes, the reassembled total
// equals the closed-form |E_C|, and the online audit (degree sums + dual
// 4-cycle routes + membership) reports clean on the merged stream.
func TestRunWorkerKilledMidLease(t *testing.T) {
	var killer *killerHandler
	urls := newFleet(t, 3, func(i int, h http.Handler) http.Handler {
		if i == 1 {
			killer = &killerHandler{h: h}
			return killer
		}
		return h
	})
	want, total := localEdgeSet(t, testSpec)

	var out bytes.Buffer
	res, err := Run(context.Background(), testSpec, &out, Options{
		Workers:   urls,
		Rows:      4,
		Cols:      2,
		Audit:     true,
		RequestID: "test-run-killed",
	})
	if err != nil {
		t.Fatalf("Run with a killed worker: %v", err)
	}
	if !killer.killed.Load() {
		t.Fatal("fault injection never fired: the doomed worker was not asked for a lease")
	}
	if res.Edges != total {
		t.Fatalf("merged %d edges, closed form %d", res.Edges, total)
	}
	if res.AuditChecks == 0 || res.AuditViolations != 0 {
		t.Fatalf("audit checks=%d violations=%d", res.AuditChecks, res.AuditViolations)
	}
	got := parseTSVSet(t, out.Bytes())
	if len(got) != len(want) {
		t.Fatalf("merged %d distinct edges, local stream has %d", len(got), len(want))
	}
	var killedStats WorkerStats
	for _, w := range res.Workers {
		if w.URL == urls[1] {
			killedStats = w
		}
	}
	if killedStats.Failures == 0 {
		t.Fatalf("killed worker recorded no failures: %+v", res.Workers)
	}
	if res.Retries == 0 {
		t.Fatal("no lease was re-issued despite a killed worker")
	}
}

// saturatedHandler answers every lease 429 + Retry-After, tracking how
// many times it was asked.
type saturatedHandler struct {
	h    http.Handler
	hits atomic.Int64
}

func (s *saturatedHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/v1/leases" {
		s.h.ServeHTTP(w, r)
		return
	}
	s.hits.Add(1)
	w.Header().Set("Retry-After", "1")
	w.WriteHeader(http.StatusTooManyRequests)
}

// TestRunHonors429Backoff: a permanently-saturated replica is parked for
// its full Retry-After instead of being hammered; the healthy replicas
// complete the run, and the saturation never counts against any block's
// attempt budget.
func TestRunHonors429Backoff(t *testing.T) {
	var sat *saturatedHandler
	urls := newFleet(t, 3, func(i int, h http.Handler) http.Handler {
		if i == 0 {
			sat = &saturatedHandler{h: h}
			return sat
		}
		return h
	})
	_, total := localEdgeSet(t, testSpec)
	var out bytes.Buffer
	res, err := Run(context.Background(), testSpec, &out, Options{
		Workers:   urls,
		Rows:      4,
		Cols:      2,
		RequestID: "test-run-backoff",
	})
	if err != nil {
		t.Fatalf("Run with a saturated worker: %v", err)
	}
	if res.Edges != total {
		t.Fatalf("merged %d edges, closed form %d", res.Edges, total)
	}
	var satStats WorkerStats
	for _, w := range res.Workers {
		if w.URL == urls[0] {
			satStats = w
		}
	}
	if sat.hits.Load() > 0 {
		// The worker was tried; after the 429 it must be parked for the
		// whole Retry-After second — far longer than the healthy replicas
		// need for this tiny grid — so it gets at most one retry window's
		// worth of requests, not a hammering loop.
		if n := sat.hits.Load(); n > 2 {
			t.Fatalf("saturated worker was asked %d times; backoff not honored", n)
		}
		if satStats.Backoffs == 0 {
			t.Fatalf("saturated worker stats recorded no backoffs: %+v", satStats)
		}
		if satStats.Failures != 0 {
			t.Fatalf("429 was charged as a failure: %+v", satStats)
		}
	}
	if satStats.Leases != 0 {
		t.Fatalf("saturated worker somehow completed a lease: %+v", satStats)
	}
}

// TestRunRequestIDPropagation: every worker sees the coordinator's
// request id and one run-wide trace id on each lease request.
func TestRunRequestIDPropagation(t *testing.T) {
	var mu sync.Mutex
	ids, traces := map[string]bool{}, map[string]bool{}
	var seen atomic.Int64
	urls := newFleet(t, 2, func(i int, h http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/v1/leases" {
				seen.Add(1)
				// Header values are recorded pre-middleware, exactly as the
				// coordinator sent them.  A malformed traceparent shows up as
				// a distinct "malformed:" entry and fails the count below.
				id := r.Header.Get(serve.HeaderRequestID)
				tp := r.Header.Get(serve.HeaderTraceparent)
				tid, ok := cutTraceID(tp)
				if !ok {
					tid = "malformed:" + tp
				}
				mu.Lock()
				ids[id] = true
				traces[tid] = true
				mu.Unlock()
			}
			h.ServeHTTP(w, r)
		})
	})
	var out bytes.Buffer
	res, err := Run(context.Background(), testSpec, &out, Options{
		Workers:   urls,
		Rows:      2,
		Cols:      2,
		RequestID: "corr-test-run",
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.RequestID != "corr-test-run" {
		t.Fatalf("result request id %q", res.RequestID)
	}
	if seen.Load() == 0 {
		t.Fatal("no lease requests observed")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(ids) != 1 || !ids["corr-test-run"] {
		t.Fatalf("lease request ids %v, want exactly {corr-test-run}", ids)
	}
	if len(traces) != 1 {
		t.Fatalf("leases carried %v (%d distinct trace ids), want one run-wide id", traces, len(traces))
	}
}

// cutTraceID extracts the trace-id field of a traceparent header.
func cutTraceID(tp string) (string, bool) {
	parts := bytes.Split([]byte(tp), []byte("-"))
	if len(parts) != 4 || len(parts[1]) != 32 {
		return "", false
	}
	return string(parts[1]), true
}

// TestRunAllWorkersDead: every lease fails; the run must abort with
// ErrExhausted instead of spinning forever.
func TestRunAllWorkersDead(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hijackClose(w)
	}))
	t.Cleanup(ts.Close)
	var out bytes.Buffer
	_, err := Run(context.Background(), testSpec, &out, Options{
		Workers:     []string{ts.URL},
		Rows:        1,
		Cols:        1,
		MaxAttempts: 2,
	})
	if !errors.Is(err, ErrExhausted) {
		t.Fatalf("err = %v, want ErrExhausted", err)
	}
}

// TestRunContextCancel: cancelling the run context stops the coordinator
// promptly with ctx.Err.
func TestRunContextCancel(t *testing.T) {
	block := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-block // a lease that never completes
	}))
	t.Cleanup(func() { close(block); ts.Close() })
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	var out bytes.Buffer
	_, err := Run(ctx, testSpec, &out, Options{Workers: []string{ts.URL}, Rows: 1, Cols: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestRunCountMismatchRejected: a worker returning a well-formed stream
// with the wrong edge count is caught by the closed-form check and never
// merged; with one worker and MaxAttempts small, the run aborts.
func TestRunCountMismatchRejected(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Trailer", serve.TrailerStatus+", "+serve.TrailerEdges)
		w.WriteHeader(http.StatusOK)
		fmt.Fprintf(w, "0\t1\n") // one edge, whatever the block wanted
		w.Header().Set(serve.TrailerStatus, "complete")
		w.Header().Set(serve.TrailerEdges, "1")
	}))
	t.Cleanup(ts.Close)
	var out bytes.Buffer
	_, err := Run(context.Background(), testSpec, &out, Options{
		Workers:     []string{ts.URL},
		Rows:        1,
		Cols:        1,
		MaxAttempts: 1,
	})
	if !errors.Is(err, ErrExhausted) {
		t.Fatalf("err = %v, want ErrExhausted (count mismatch must be a lease failure)", err)
	}
	if out.Len() != 0 {
		t.Fatalf("unverified payload reached the merged output: %q", out.String())
	}
}

// TestPlanAutoSizing: the auto planner honors explicit dims, produces a
// grid covering at least one block, and caps cols at the last factor's
// edge count.
func TestPlanAutoSizing(t *testing.T) {
	p, err := testSpec.WithDefaults().Build()
	if err != nil {
		t.Fatal(err)
	}
	if r, c := plan(p, Options{Workers: []string{"a"}, Rows: 5, Cols: 7}); r != 5 || c != 7 {
		t.Fatalf("explicit grid ignored: %dx%d", r, c)
	}
	r, c := plan(p, Options{Workers: []string{"a", "b", "c"}, TargetBlockEdges: 1})
	if r < 1 || c < 1 {
		t.Fatalf("degenerate auto grid %dx%d", r, c)
	}
	if last := p.FactorB().G.NumEdges(); c > last {
		t.Fatalf("auto cols %d exceeds last-factor edges %d", c, last)
	}
	if int64(r*c) < 6 { // 2 blocks per worker minimum
		t.Fatalf("auto grid %dx%d smaller than 2 blocks per worker", r, c)
	}
	// A huge target still yields a valid grid.
	r, c = plan(p, Options{Workers: []string{"a"}, TargetBlockEdges: 1 << 40})
	if r < 1 || c < 1 {
		t.Fatalf("degenerate grid %dx%d for huge target", r, c)
	}
}

// BenchmarkDistGenMerge measures the coordinator's merge path — payload
// parse + verification + ordered flush — over pre-rendered block
// payloads, no network.  This is the per-byte cost a dist-gen run adds
// on top of worker generation.
func BenchmarkDistGenMerge(b *testing.B) {
	sp := spec.Spec{Factors: []string{"crown4", "path3"}, Mode: "selfloop"}.WithDefaults()
	p, err := sp.Build()
	if err != nil {
		b.Fatal(err)
	}
	const rows, cols = 4, 2
	type block struct {
		payload []byte
		want    int64
	}
	var blocks []block
	var totalBytes int64
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			var buf bytes.Buffer
			if err := p.EachEdgeBlock(r, rows, c, cols, func(v, w int) bool {
				buf.WriteString(strconv.Itoa(v))
				buf.WriteByte('\t')
				buf.WriteString(strconv.Itoa(w))
				buf.WriteByte('\n')
				return true
			}); err != nil {
				b.Fatal(err)
			}
			want, err := p.BlockEdgeCount(r, rows, c, cols)
			if err != nil {
				b.Fatal(err)
			}
			blocks = append(blocks, block{payload: buf.Bytes(), want: want})
			totalBytes += int64(buf.Len())
		}
	}
	b.SetBytes(totalBytes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := newCoordinator(p, sp, discardWriter{}, rows, cols, Options{
			Workers: []string{"bench"}, Format: "tsv", MaxAttempts: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		w := c.workers[0]
		for bi, blk := range blocks {
			n, err := parseEdges(blk.payload, "tsv", nil)
			if err != nil {
				b.Fatal(err)
			}
			if n != blk.want {
				b.Fatalf("block %d parsed %d edges, want %d", bi, n, blk.want)
			}
			c.complete(w, bi, false, &leaseResult{buf: blk.payload, edges: n}, nil)
		}
		if c.merged != p.NumEdges() {
			b.Fatalf("merged %d, want %d", c.merged, p.NumEdges())
		}
	}
}

// discardWriter is io.Discard without the interface-conversion noise in
// the benchmark loop.
type discardWriter struct{}

func (discardWriter) Write(b []byte) (int, error) { return len(b), nil }
