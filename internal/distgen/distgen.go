// Package distgen coordinates distributed 2D-blocked generation over a
// fleet of `kronbip serve` replicas — the paper's "millions of users"
// scale-out story made concrete by its closed forms.
//
// The coordinator partitions a factor-chain spec's canonical edge order
// into a rows×cols grid of blocks (core.EachEdgeBlock: rows stripe the
// stream's row space, cols stripe the last factor's edge list) and
// leases each block to a replica over POST /v1/leases.  Three properties
// of the paper's construction make the distribution trivial to verify
// and safe to retry:
//
//   - determinism: any replica produces byte-identical output for a
//     given block, so a lease lost to a crash or deadline is simply
//     re-issued elsewhere — at-least-once delivery with exact replays
//     (and, with Format "bin", re-issued from the last complete wire
//     frame the dying replica managed to deliver, not from scratch);
//   - closed-form counts: core.BlockEdgeCount prices every block in
//     O(K) before any generation, so the coordinator sizes a balanced
//     grid up front and verifies every returned stream (and the
//     reassembled total against |E_C|) without trusting any worker;
//   - order independence of the audit invariants: degree sums, the dual
//     4-cycle routes and sampled membership do not care which replica
//     produced which edge, so the online auditor runs on the merged
//     stream exactly as it would on a local run.
//
// Delivery is at-least-once with first-completion-wins dedup: duplicate
// results for a block (speculative re-issue, a slow worker finishing
// after its replacement) are discarded before they reach the output or
// the auditor, so the merged stream carries each block exactly once, in
// deterministic (row, col)-major block order.
//
// Scheduling is pull-based: each replica's loop takes the next pending
// block when it is free, so fast workers naturally take more of the
// grid (the rebalancing the straggler stats motivate), a 429 +
// Retry-After parks only the saturated replica, and when the pending
// queue drains, idle workers speculatively duplicate the longest-running
// outstanding lease once it exceeds a multiple of the observed EWMA
// lease duration.
package distgen

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"time"

	"kronbip/internal/core"
	"kronbip/internal/obs"
	"kronbip/internal/spec"
)

// Coordinator metrics, published on obs.Default.  All are per-lease or
// per-block (never per edge); per-worker detail lives in Result rather
// than labeled series, because worker URLs are unbounded across runs and
// the registry's name set must stay deterministic.
var (
	mLeasesIssued   = obs.Default.Counter("distgen.leases.issued")
	mLeasesRetried  = obs.Default.Counter("distgen.leases.retried")
	mLeasesSpec     = obs.Default.Counter("distgen.leases.speculative")
	mLeasesBackoff  = obs.Default.Counter("distgen.leases.backoff") // 429 deferrals
	mLeasesFailed   = obs.Default.Counter("distgen.leases.failed")
	mLeasesResumed  = obs.Default.Counter("distgen.leases.resumed") // banked-frame resumes issued
	mBlocksDone     = obs.Default.Counter("distgen.blocks.done")
	mEdgesMerged    = obs.Default.Counter("distgen.edges.merged")
	gWorkersBusy    = obs.Default.Gauge("distgen.workers.busy")
	mDuplicatesDrop = obs.Default.Counter("distgen.duplicates.dropped")
)

// ErrExhausted wraps a block that failed more than MaxAttempts leases.
var ErrExhausted = errors.New("distgen: block exhausted its lease attempts")

// DefaultTargetBlockEdges sizes auto-planned blocks: big enough to
// amortize one HTTP round trip, small enough that a lost lease re-does
// little work.
const DefaultTargetBlockEdges = int64(1) << 20

// Options configures one distributed run.
type Options struct {
	// Workers lists the serve replicas' base URLs (e.g.
	// "http://127.0.0.1:8080"); at least one is required.
	Workers []string
	// Rows, Cols fix the blocking grid.  Zero auto-sizes from the
	// closed-form |E_C| and TargetBlockEdges (see plan).
	Rows, Cols int
	// TargetBlockEdges is the auto-sizing per-block edge target
	// (default DefaultTargetBlockEdges).
	TargetBlockEdges int64
	// LeaseTimeout is the per-lease deadline; a lease still running past
	// it is abandoned and the block re-issued (default 2m).
	LeaseTimeout time.Duration
	// MaxAttempts bounds failed leases per block before the run aborts
	// with ErrExhausted (default 2 + number of workers — every replica
	// gets a chance plus slack for transient failures).
	MaxAttempts int
	// Audit runs the online ground-truth auditor over the merged stream:
	// degree sums, dual-route 4-cycles, exact count, sampled membership.
	Audit bool
	// AuditSample is the auditor's membership sampling stride (0 = the
	// audit package default).
	AuditSample int
	// Format selects the merged output rendering, forwarded to workers:
	// "tsv" (default), "ndjson" or "bin" (the binary wire format, which
	// additionally lets a dropped lease resume from its last complete
	// frame instead of regenerating the whole block).
	Format string
	// RequestID correlates the run across every replica's access log,
	// timeline and flight recorder; generated when empty.  Propagated as
	// X-Kronbip-Request-Id on every lease, alongside a W3C traceparent
	// sharing one run-wide trace id.
	RequestID string
	// Client issues the lease requests (default http.DefaultClient).
	Client *http.Client
	// backoffFloor raises the minimum 429 park duration in tests; the
	// Retry-After header still wins when it asks for longer.
	backoffFloor time.Duration
}

func (o Options) withDefaults() (Options, error) {
	if len(o.Workers) == 0 {
		return o, errors.New("distgen: at least one worker URL is required")
	}
	if o.TargetBlockEdges <= 0 {
		o.TargetBlockEdges = DefaultTargetBlockEdges
	}
	if o.LeaseTimeout <= 0 {
		o.LeaseTimeout = 2 * time.Minute
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 2 + len(o.Workers)
	}
	switch o.Format {
	case "":
		o.Format = "tsv"
	case "tsv", "ndjson", "bin":
	default:
		return o, fmt.Errorf("distgen: bad format %q (want tsv, ndjson or bin)", o.Format)
	}
	if o.RequestID == "" {
		o.RequestID = "distgen-" + randHex(8)
	}
	if o.Client == nil {
		o.Client = http.DefaultClient
	}
	return o, nil
}

// randHex returns n random bytes hex-encoded (2n characters).
func randHex(n int) string {
	b := make([]byte, n)
	if _, err := rand.Read(b); err != nil {
		return "00000000000000000000000000000000"[:2*n]
	}
	return hex.EncodeToString(b)
}

// WorkerStats is one replica's share of the run.
type WorkerStats struct {
	URL         string  `json:"url"`
	Leases      int     `json:"leases"`       // accepted results
	Failures    int     `json:"failures"`     // errored/timed-out leases
	Backoffs    int     `json:"backoffs"`     // 429 deferrals honored
	EWMASeconds float64 `json:"ewma_seconds"` // smoothed lease duration
}

// Result summarizes a completed run.
type Result struct {
	Edges   int64         `json:"edges"`  // merged total, verified == |E_C|
	Blocks  int           `json:"blocks"` // rows × cols
	Rows    int           `json:"rows"`
	Cols    int           `json:"cols"`
	Retries int           `json:"retries"` // re-issued + speculative leases
	Workers []WorkerStats `json:"workers"`
	// Audit is the merged-stream report when Options.Audit was set.
	AuditChecks     int    `json:"audit_checks,omitempty"`
	AuditViolations int    `json:"audit_violations,omitempty"`
	RequestID       string `json:"request_id"`
}

// plan sizes the blocking grid: honor explicit rows/cols, otherwise
// split |E_C| into ~TargetBlockEdges blocks, at least two per worker for
// balance, shaped near-square, with cols capped at the last factor's
// edge count (the column dimension's extent — wider is all-empty
// stripes).
func plan(p *core.Product, o Options) (rows, cols int) {
	rows, cols = o.Rows, o.Cols
	if rows > 0 && cols > 0 {
		return rows, cols
	}
	nblocks := int64(1)
	if t := o.TargetBlockEdges; p.NumEdges() > t {
		nblocks = (p.NumEdges() + t - 1) / t
	}
	if min := int64(2 * len(o.Workers)); nblocks < min {
		nblocks = min
	}
	if nblocks > 4096 {
		nblocks = 4096
	}
	cols = int(math.Ceil(math.Sqrt(float64(nblocks))))
	if last := p.FactorB().G.NumEdges(); cols > last {
		cols = last
	}
	if cols < 1 {
		cols = 1
	}
	rows = int((nblocks + int64(cols) - 1) / int64(cols))
	if rows < 1 {
		rows = 1
	}
	return rows, cols
}

// Run generates sp's product across the worker fleet and writes the
// merged edge stream to out in (row, col)-major block order — a
// deterministic permutation of the canonical order (identical to it
// when the grid is 1×1).  The spec is built locally too: the coordinator
// needs only the O(|E_C|^(1/2)) factor state to price, verify and audit
// everything the fleet produces.
func Run(ctx context.Context, sp spec.Spec, out io.Writer, opts Options) (*Result, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	sp = sp.WithDefaults()
	p, err := sp.Build()
	if err != nil {
		return nil, err
	}
	rows, cols := plan(p, opts)
	c, err := newCoordinator(p, sp, out, rows, cols, opts)
	if err != nil {
		return nil, err
	}
	return c.run(ctx)
}
