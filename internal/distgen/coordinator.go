package distgen

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"kronbip/internal/audit"
	"kronbip/internal/core"
	"kronbip/internal/exec"
	"kronbip/internal/obs"
	"kronbip/internal/serve"
	"kronbip/internal/spec"
)

// pollInterval paces the scheduler's idle re-checks (backoff expiry,
// straggler detection); completions are noticed immediately through the
// shared mutex, this only bounds how stale a *timer*-driven decision can
// be.
const pollInterval = 20 * time.Millisecond

// speculativeFactor: an outstanding lease older than this multiple of
// the EWMA lease duration is a straggler an idle worker may duplicate.
const speculativeFactor = 2.0

// Failure backoff: a replica whose lease just errored is parked before
// it may pull again, doubling per consecutive failure.  Without this, a
// crashed replica fails leases near-instantly and can cycle the pending
// queue, burning every block's attempt budget faster than the healthy
// replicas can drain it.
const (
	failureBackoffBase = 100 * time.Millisecond
	failureBackoffMax  = 2 * time.Second
)

func failureBackoff(consec int) time.Duration {
	shift := consec - 1
	if shift > 4 {
		shift = 4
	}
	if d := failureBackoffBase << uint(shift); d < failureBackoffMax {
		return d
	}
	return failureBackoffMax
}

// blockState tracks one grid cell through the lease lifecycle.
type blockState struct {
	row, col int
	want     int64  // closed-form edge count
	buf      []byte // accepted payload, held until merged in order
	done     bool
	merged   bool
	inflight int       // outstanding leases (1 normally, 2 with a speculative duplicate)
	attempts int       // failed leases so far, judged against MaxAttempts
	issued   time.Time // earliest outstanding issue time (straggler clock)
	// Banked resume state (bin format only): the complete-frame bytes
	// salvaged from failed leases of this block.  The next lease resumes
	// at partEdges instead of regenerating the whole block, and the
	// accepted payload is the bank plus the resumed tail.
	part      []byte
	partEdges int64
}

// workerState is one replica's scheduling view.
type workerState struct {
	url          string
	stats        WorkerStats
	backoffUntil time.Time // honored 429 Retry-After, or failure backoff
	consecFails  int       // consecutive failed leases (failure backoff input)
	ewma         float64   // smoothed lease seconds (0 until first success)
}

// leaseResult is one finished lease attempt before acceptance.
type leaseResult struct {
	buf     []byte
	edges   int64
	dur     time.Duration
	auditCh exec.Sink // unflushed per-block audit child; flushed only on acceptance
	// Partial-lease salvage (bin format only): a failed lease may still
	// carry the complete frames that reached the coordinator.  complete()
	// banks them — guarded by base matching the block's banked offset —
	// so the next attempt resumes from the frame boundary.
	base         int64  // block-local offset this lease was issued at
	partial      []byte // complete-frame bytes salvaged from a failed lease
	partialEdges int64  // edges carried by partial
}

type coordinator struct {
	p       *core.Product
	sp      spec.Spec
	out     io.Writer
	opts    Options
	rows    int
	cols    int
	traceID string
	spanSeq atomic.Uint64

	auditor *audit.Auditor
	// auditStream is materialized once here: Auditor.Stream()'s lazy init
	// is not safe under the concurrent worker loops.
	auditStream *audit.StreamAuditor

	mu        sync.Mutex
	blocks    []*blockState
	pending   []int // block indices awaiting (re-)issue, FIFO
	workers   []*workerState
	doneCount int
	nextWrite int // next block index the ordered merge will emit
	merged    int64
	retries   int
	failed    error // first fatal error; stops the run
}

func newCoordinator(p *core.Product, sp spec.Spec, out io.Writer, rows, cols int, opts Options) (*coordinator, error) {
	c := &coordinator{
		p:       p,
		sp:      sp,
		out:     out,
		opts:    opts,
		rows:    rows,
		cols:    cols,
		traceID: randHex(16),
	}
	if opts.Audit {
		c.auditor = audit.New(p, audit.Options{SampleEvery: opts.AuditSample})
		c.auditStream = c.auditor.Stream()
	}
	c.blocks = make([]*blockState, 0, rows*cols)
	for r := 0; r < rows; r++ {
		for col := 0; col < cols; col++ {
			want, err := p.BlockEdgeCount(r, rows, col, cols)
			if err != nil {
				return nil, fmt.Errorf("distgen: plan block (%d,%d): %w", r, col, err)
			}
			b := &blockState{row: r, col: col, want: want}
			if want == 0 {
				// Empty stripes (cols beyond the last factor's edge count,
				// rows beyond the stream rows) complete without a lease.
				b.done = true
				c.doneCount++
			}
			c.blocks = append(c.blocks, b)
			if !b.done {
				c.pending = append(c.pending, len(c.blocks)-1)
			}
		}
	}
	c.workers = make([]*workerState, len(opts.Workers))
	for i, u := range opts.Workers {
		c.workers[i] = &workerState{url: strings.TrimRight(u, "/")}
	}
	return c, nil
}

// run drives the worker loops to completion and assembles the Result.
func (c *coordinator) run(ctx context.Context) (*Result, error) {
	// Nothing pending at all (every block empty, e.g. an all-empty grid)
	// still flushes the zero-length ordered merge below.
	var wg sync.WaitGroup
	for _, w := range c.workers {
		wg.Add(1)
		go func(w *workerState) {
			defer wg.Done()
			c.workerLoop(ctx, w)
		}(w)
	}
	wg.Wait()

	c.mu.Lock()
	err := c.failed
	if err == nil {
		err = ctx.Err()
	}
	res := &Result{
		Edges:     c.merged,
		Blocks:    len(c.blocks),
		Rows:      c.rows,
		Cols:      c.cols,
		Retries:   c.retries,
		RequestID: c.opts.RequestID,
	}
	for _, w := range c.workers {
		st := w.stats
		st.URL = w.url
		st.EWMASeconds = w.ewma
		res.Workers = append(res.Workers, st)
	}
	c.mu.Unlock()
	if err != nil {
		return res, err
	}
	// Reassembled total against the closed form: the per-block checks
	// make a mismatch here unreachable, which is exactly why it is
	// checked — it would mean the merge itself lost or duplicated a
	// block.
	if res.Edges != c.p.NumEdges() {
		return res, fmt.Errorf("distgen: merged %d edges, closed form says %d", res.Edges, c.p.NumEdges())
	}
	if c.auditor != nil {
		report := c.auditor.Finalize()
		res.AuditChecks = report.Checks
		res.AuditViolations = len(report.Violations)
		if aerr := report.Err(); aerr != nil {
			return res, aerr
		}
	}
	return res, nil
}

// workerLoop pulls blocks for one replica until the run completes or
// fails.  Pull-based dispatch is the rebalancing: a fast replica returns
// for its next block sooner, so remaining leases flow toward it without
// any explicit weighting.
func (c *coordinator) workerLoop(ctx context.Context, w *workerState) {
	for {
		bi, speculative, ok := c.next(ctx, w)
		if !ok {
			return
		}
		b := c.blocks[bi]
		// Snapshot the banked resume state at issue time: the lease asks
		// the worker for the block's tail from `base`, and acceptance
		// re-checks the bank against the same snapshot.
		c.mu.Lock()
		base, banked := b.partEdges, b.part
		c.mu.Unlock()
		if base > 0 {
			mLeasesResumed.Inc()
		}
		gWorkersBusy.Add(1)
		res, err := c.lease(ctx, w, b, base, banked)
		gWorkersBusy.Add(-1)
		c.complete(w, bi, speculative, res, err)
	}
}

// next blocks until there is work for w (or the run is over): a pending
// block, or — with the queue drained — a straggling outstanding lease
// worth duplicating.  Workers parked by 429 wait out their backoff here
// without consuming a block.
func (c *coordinator) next(ctx context.Context, w *workerState) (bi int, speculative bool, ok bool) {
	for {
		c.mu.Lock()
		if c.failed != nil || c.doneCount == len(c.blocks) || ctx.Err() != nil {
			c.mu.Unlock()
			return 0, false, false
		}
		now := time.Now()
		if now.After(w.backoffUntil) {
			if len(c.pending) > 0 {
				bi = c.pending[0]
				c.pending = c.pending[1:]
				b := c.blocks[bi]
				b.inflight++
				b.issued = now
				c.mu.Unlock()
				return bi, false, true
			}
			if bi, ok = c.stragglerLocked(now); ok {
				c.blocks[bi].inflight++
				c.retries++
				c.mu.Unlock()
				mLeasesSpec.Inc()
				obs.Flight.RecordNote(obs.FlightInfo, "distgen", "speculative lease",
					int64(bi), 0, c.opts.RequestID)
				return bi, true, true
			}
		}
		c.mu.Unlock()
		select {
		case <-ctx.Done():
			return 0, false, false
		case <-time.After(pollInterval):
		}
	}
}

// stragglerLocked picks the oldest outstanding lease that has exceeded
// speculativeFactor × the EWMA lease duration, if any; only single-
// inflight blocks qualify (one speculative duplicate at a time).
// Caller holds c.mu.
func (c *coordinator) stragglerLocked(now time.Time) (int, bool) {
	ewma := 0.0
	for _, w := range c.workers {
		if w.ewma > ewma {
			ewma = w.ewma
		}
	}
	if ewma == 0 {
		return 0, false // no completed lease yet: no straggler baseline
	}
	threshold := time.Duration(speculativeFactor * ewma * float64(time.Second))
	best, bestAge := -1, time.Duration(0)
	for i, b := range c.blocks {
		if b.done || b.inflight != 1 {
			continue
		}
		if age := now.Sub(b.issued); age > threshold && age > bestAge {
			best, bestAge = i, age
		}
	}
	if best < 0 {
		return 0, false
	}
	return best, true
}

// backoffError marks a 429 so complete can park the worker instead of
// charging the block an attempt.
type backoffError struct {
	until time.Time
}

func (e *backoffError) Error() string {
	return "distgen: worker saturated until " + e.until.Format(time.RFC3339)
}

// parseRetryAfter parses a Retry-After header in either RFC 9110 form —
// delta-seconds or HTTP-date — clamping to a minimum of one second
// (which also covers absent, malformed or already-elapsed values).
func parseRetryAfter(h string, now time.Time) time.Duration {
	var d time.Duration
	if secs, err := strconv.Atoi(h); err == nil {
		d = time.Duration(secs) * time.Second
	} else if t, err := http.ParseTime(h); err == nil {
		d = t.Sub(now)
	}
	if d < time.Second {
		d = time.Second
	}
	return d
}

// lease executes one POST /v1/leases round trip for block b against w:
// issue with the run's correlation identity, read the full payload,
// verify the trailer and the closed-form count, and parse every edge
// (feeding the un-merged audit child when auditing).  Any discrepancy is
// an error — the worker is not trusted, the closed forms are.
//
// base/banked are the block's resume snapshot (bin format only, both
// zero otherwise): the worker is asked for the tail from block-local
// offset base, and the accepted payload is banked + tail — which the
// offset-deterministic framing makes byte-identical to an uninterrupted
// lease.  A failed bin lease returns its salvageable complete-frame
// prefix alongside the error.
func (c *coordinator) lease(ctx context.Context, w *workerState, b *blockState, base int64, banked []byte) (*leaseResult, error) {
	mLeasesIssued.Inc()
	lctx, cancel := context.WithTimeout(ctx, c.opts.LeaseTimeout)
	defer cancel()
	body := fmt.Sprintf(
		`{"factors":%s,"mode":%q,"seed":%d,"row":%d,"rows":%d,"col":%d,"cols":%d,"format":%q,"offset":%d}`,
		factorsJSON(c.sp.Factors), c.sp.Mode, c.sp.Seed, b.row, c.rows, b.col, c.cols, c.opts.Format, base)
	req, err := http.NewRequestWithContext(lctx, http.MethodPost, w.url+"/v1/leases", strings.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	// Satellite contract: one dist-gen run correlates across every
	// replica — same request id, same trace id, fresh span per lease.
	req.Header.Set(serve.HeaderRequestID, c.opts.RequestID)
	req.Header.Set(serve.HeaderTraceparent,
		fmt.Sprintf("00-%s-%016x-01", c.traceID, c.spanSeq.Add(1)))
	start := time.Now()
	resp, err := c.opts.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusTooManyRequests:
		io.Copy(io.Discard, resp.Body)
		now := time.Now()
		d := parseRetryAfter(resp.Header.Get("Retry-After"), now)
		// The floor only raises the park; a server asking for longer is
		// honored (it knows its own saturation better than our default).
		if f := c.opts.backoffFloor; d < f {
			d = f
		}
		return nil, &backoffError{until: now.Add(d)}
	default:
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("distgen: worker %s: lease (%d,%d): status %d: %s",
			w.url, b.row, b.col, resp.StatusCode, bytes.TrimSpace(msg))
	}
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		return c.salvage(base, payload),
			fmt.Errorf("distgen: worker %s: lease (%d,%d): read: %w", w.url, b.row, b.col, err)
	}
	if st := resp.Trailer.Get(serve.TrailerStatus); st != "complete" {
		return c.salvage(base, payload),
			fmt.Errorf("distgen: worker %s: lease (%d,%d): trailer status %q", w.url, b.row, b.col, st)
	}
	res := &leaseResult{buf: payload, dur: time.Since(start), base: base}
	if base > 0 {
		// Reassemble the whole block: banked complete frames + resumed
		// tail.  Frame boundaries are a pure function of the offset, so
		// this is the byte stream an uninterrupted lease would have sent,
		// and the full-payload parse below re-verifies every frame of it
		// (bank included) before acceptance.
		assembled := make([]byte, 0, len(banked)+len(payload))
		assembled = append(assembled, banked...)
		assembled = append(assembled, payload...)
		res.buf = assembled
	}
	if c.auditStream != nil {
		res.auditCh = c.auditStream.ForShard()
	}
	res.edges, err = parseEdges(res.buf, c.opts.Format, res.auditCh)
	if err != nil {
		return nil, fmt.Errorf("distgen: worker %s: lease (%d,%d): %w", w.url, b.row, b.col, err)
	}
	if res.edges != b.want {
		return nil, fmt.Errorf("distgen: worker %s: lease (%d,%d): streamed %d edges, closed form says %d",
			w.url, b.row, b.col, res.edges, b.want)
	}
	return res, nil
}

// salvage extracts the complete-frame prefix of a failed bin lease's
// payload.  Text renderings are never salvaged (a truncated line is
// unframed), and a payload whose framing does not decode cleanly from
// the issued offset is dropped wholesale — resume only trusts bytes the
// wire format can vouch for.
func (c *coordinator) salvage(base int64, payload []byte) *leaseResult {
	if c.opts.Format != "bin" || len(payload) == 0 {
		return nil
	}
	edges, _, trailing, err := serve.DecodeWire(payload, base, nil)
	if err != nil || edges == 0 {
		return nil
	}
	return &leaseResult{base: base, partial: payload[:len(payload)-trailing], partialEdges: edges}
}

// factorsJSON renders a factor list as a JSON string array (factor specs
// use a charset with no JSON metacharacters, but quote defensively).
func factorsJSON(fs []string) string {
	var sb strings.Builder
	sb.WriteByte('[')
	for i, f := range fs {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(strconv.Quote(f))
	}
	sb.WriteByte(']')
	return sb.String()
}

// parseEdges walks a lease payload in the given format ("tsv", "ndjson"
// or "bin"), validating shape, counting edges and feeding each to the
// audit child when one is supplied.
func parseEdges(payload []byte, format string, auditCh exec.Sink) (int64, error) {
	if format == "bin" {
		// A whole-block payload frames from block-local offset 0; the
		// decoder enforces contiguity, and a truncated tail — tolerated
		// on the salvage path — is a hard error here.
		var yield func(v, w int)
		if auditCh != nil {
			yield = func(v, w int) { _ = auditCh.Edge(v, w) }
		}
		n, _, trailing, err := serve.DecodeWire(payload, 0, yield)
		if err != nil {
			return n, err
		}
		if trailing != 0 {
			return n, fmt.Errorf("truncated payload: %d trailing bytes after the last complete frame", trailing)
		}
		return n, nil
	}
	ndjson := format == "ndjson"
	var n int64
	for len(payload) > 0 {
		nl := bytes.IndexByte(payload, '\n')
		if nl < 0 {
			return n, fmt.Errorf("truncated payload: unterminated final line")
		}
		line := payload[:nl]
		payload = payload[nl+1:]
		var v, w int
		var err error
		if ndjson {
			v, w, err = parseNDJSONEdge(line)
		} else {
			v, w, err = parseTSVEdge(line)
		}
		if err != nil {
			return n, err
		}
		n++
		if auditCh != nil {
			_ = auditCh.Edge(v, w) // StreamAuditor children never error
		}
	}
	return n, nil
}

// parseTSVEdge parses "v\tw".
func parseTSVEdge(line []byte) (int, int, error) {
	tab := bytes.IndexByte(line, '\t')
	if tab < 0 {
		return 0, 0, fmt.Errorf("bad tsv line %q", line)
	}
	v, err1 := strconv.Atoi(string(line[:tab]))
	w, err2 := strconv.Atoi(string(line[tab+1:]))
	if err1 != nil || err2 != nil {
		return 0, 0, fmt.Errorf("bad tsv line %q", line)
	}
	return v, w, nil
}

// parseNDJSONEdge parses the serve stream's fixed rendering
// {"v":N,"w":M} positionally — the worker is ours, and a shape change
// should fail loudly here rather than be absorbed.
func parseNDJSONEdge(line []byte) (int, int, error) {
	rest, ok := bytes.CutPrefix(line, []byte(`{"v":`))
	if !ok {
		return 0, 0, fmt.Errorf("bad ndjson line %q", line)
	}
	comma := bytes.Index(rest, []byte(`,"w":`))
	if comma < 0 || !bytes.HasSuffix(rest, []byte("}")) {
		return 0, 0, fmt.Errorf("bad ndjson line %q", line)
	}
	v, err1 := strconv.Atoi(string(rest[:comma]))
	w, err2 := strconv.Atoi(string(rest[comma+5 : len(rest)-1]))
	if err1 != nil || err2 != nil {
		return 0, 0, fmt.Errorf("bad ndjson line %q", line)
	}
	return v, w, nil
}

// complete books one lease outcome: accept the first result for a block
// (dedup — later duplicates are dropped before output or audit), merge
// accepted blocks in (row, col)-major order, re-queue failed blocks, and
// park 429'd workers.
func (c *coordinator) complete(w *workerState, bi int, speculative bool, res *leaseResult, err error) {
	c.mu.Lock()
	b := c.blocks[bi]
	b.inflight--
	switch {
	case err == nil && !b.done:
		b.done = true
		b.buf = res.buf
		b.part, b.partEdges = nil, 0 // the bank is folded into buf
		c.doneCount++
		w.stats.Leases++
		w.consecFails = 0
		d := res.dur.Seconds()
		if w.ewma == 0 {
			w.ewma = d
		} else {
			w.ewma = 0.7*w.ewma + 0.3*d
		}
		mBlocksDone.Inc()
		// Audit merge happens only on acceptance: the child sink carries
		// this attempt's tallies and a Flush folds them in exactly once.
		if res.auditCh != nil {
			_ = exec.Finish(res.auditCh)
		}
		c.flushLocked()
	case err == nil && b.done:
		// A duplicate (speculative or post-timeout) finishing second:
		// verified fine, but its twin already delivered the block.
		w.consecFails = 0
		mDuplicatesDrop.Inc()
	default:
		var be *backoffError
		if errors.As(err, &be) {
			w.stats.Backoffs++
			w.backoffUntil = be.until
			mLeasesBackoff.Inc()
			// A 429 never reached generation: re-queue without charging
			// the block an attempt.
			c.requeueLocked(bi)
		} else {
			if res != nil && res.partialEdges > 0 && !b.done && b.partEdges == res.base {
				// Bank the failed lease's complete frames.  The base guard
				// keeps the bank contiguous: a speculative twin that banked
				// (or delivered) first makes this salvage stale, and stale
				// partials are simply dropped.
				b.part = append(b.part, res.partial...)
				b.partEdges += res.partialEdges
			}
			w.stats.Failures++
			w.consecFails++
			w.backoffUntil = time.Now().Add(failureBackoff(w.consecFails))
			b.attempts++
			mLeasesFailed.Inc()
			obs.Flight.RecordNote(obs.FlightWarn, "distgen", "lease failed",
				int64(bi), int64(b.attempts), err.Error())
			if b.attempts >= c.opts.MaxAttempts {
				if c.failed == nil {
					c.failed = fmt.Errorf("%w: block (%d,%d) after %d attempts, last: %v",
						ErrExhausted, b.row, b.col, b.attempts, err)
				}
			} else {
				c.retries++
				mLeasesRetried.Inc()
				c.requeueLocked(bi)
			}
		}
	}
	c.mu.Unlock()
}

// requeueLocked puts a block back on the pending queue unless it is done
// or another lease for it is still outstanding (that lease's completion
// will re-queue if it also fails).  Caller holds c.mu.
func (c *coordinator) requeueLocked(bi int) {
	b := c.blocks[bi]
	if b.done || b.inflight > 0 {
		return
	}
	c.pending = append(c.pending, bi)
}

// flushLocked advances the ordered merge: every done-but-unmerged block
// at the write frontier streams to out and releases its buffer.  Caller
// holds c.mu.
func (c *coordinator) flushLocked() {
	for c.nextWrite < len(c.blocks) {
		b := c.blocks[c.nextWrite]
		if !b.done {
			return
		}
		if len(b.buf) > 0 {
			if _, err := c.out.Write(b.buf); err != nil && c.failed == nil {
				c.failed = fmt.Errorf("distgen: write merged output: %w", err)
			}
		}
		c.merged += b.want
		mEdgesMerged.Add(b.want)
		b.buf = nil
		b.merged = true
		c.nextWrite++
	}
}
