package distgen

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"kronbip/internal/serve"
)

// --- Retry-After parsing (satellite: coordinator backoff fix) ---------

func TestParseRetryAfter(t *testing.T) {
	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	cases := []struct {
		name string
		h    string
		want time.Duration
	}{
		{"delta seconds", "7", 7 * time.Second},
		{"zero clamps up", "0", time.Second},
		{"negative clamps up", "-3", time.Second},
		{"http date", now.Add(90 * time.Second).Format(http.TimeFormat), 90 * time.Second},
		{"past date clamps up", now.Add(-time.Minute).Format(http.TimeFormat), time.Second},
		{"garbage", "soon-ish", time.Second},
		{"empty", "", time.Second},
	}
	for _, tc := range cases {
		got := parseRetryAfter(tc.h, now)
		// HTTP dates have one-second resolution; allow that much slack.
		if got < tc.want-time.Second || got > tc.want+time.Second {
			t.Errorf("%s: parseRetryAfter(%q) = %v, want ~%v", tc.name, tc.h, got, tc.want)
		}
	}
}

// TestBackoffFloorVsHeader: the park duration is the max of the floor
// and the header, never the floor overriding a longer server ask.
func TestBackoffFloorVsHeader(t *testing.T) {
	for _, tc := range []struct {
		name   string
		header string
		floor  time.Duration
		min    time.Duration // park must be at least this much
	}{
		{"header wins over small floor", "2", 10 * time.Millisecond, 1900 * time.Millisecond},
		{"floor wins over short header", "1", 3 * time.Second, 2900 * time.Millisecond},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				w.Header().Set("Retry-After", tc.header)
				w.WriteHeader(http.StatusTooManyRequests)
			}))
			t.Cleanup(ts.Close)
			p, err := testSpec.WithDefaults().Build()
			if err != nil {
				t.Fatal(err)
			}
			opts, err := Options{Workers: []string{ts.URL}, backoffFloor: tc.floor}.withDefaults()
			if err != nil {
				t.Fatal(err)
			}
			c, err := newCoordinator(p, testSpec.WithDefaults(), &bytes.Buffer{}, 1, 1, opts)
			if err != nil {
				t.Fatal(err)
			}
			before := time.Now()
			_, err = c.lease(context.Background(), c.workers[0], c.blocks[0], 0, nil)
			var be *backoffError
			if !asBackoff(err, &be) {
				t.Fatalf("lease err = %v, want backoffError", err)
			}
			if park := be.until.Sub(before); park < tc.min {
				t.Fatalf("parked %v, want at least %v (header %q, floor %v)",
					park, tc.min, tc.header, tc.floor)
			}
		})
	}
}

func asBackoff(err error, be **backoffError) bool {
	for err != nil {
		if b, ok := err.(*backoffError); ok {
			*be = b
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// --- Binary wire format end to end ------------------------------------

// decodeBinSet decodes a single-block bin payload into its edge set.
func decodeBinSet(t *testing.T, buf []byte) (map[string]bool, int64) {
	t.Helper()
	set := map[string]bool{}
	n, _, trailing, err := serve.DecodeWire(buf, 0, func(v, w int) {
		set[fmt.Sprintf("%d\t%d", v, w)] = true
	})
	if err != nil || trailing != 0 {
		t.Fatalf("decode merged bin stream: n=%d trailing=%d err=%v", n, trailing, err)
	}
	return set, n
}

// TestRunBinFormat: a 1x1-grid bin run produces a stream DecodeWire
// fully accepts, carrying exactly the local edge set; the online audit
// runs over the decoded edges; and a multi-block bin run still verifies
// per block, matches the closed-form total, and is deterministic.
func TestRunBinFormat(t *testing.T) {
	urls := newFleet(t, 2, nil)
	want, total := localEdgeSet(t, testSpec)

	// 1x1: the merged output is one block-local stream, decodable whole.
	var one bytes.Buffer
	res, err := Run(context.Background(), testSpec, &one, Options{
		Workers: urls, Rows: 1, Cols: 1, Format: "bin", Audit: true,
		RequestID: "test-bin-1x1",
	})
	if err != nil {
		t.Fatalf("1x1 bin run: %v", err)
	}
	if res.Edges != total {
		t.Fatalf("merged %d edges, closed form %d", res.Edges, total)
	}
	if res.AuditChecks == 0 || res.AuditViolations != 0 {
		t.Fatalf("audit checks=%d violations=%d", res.AuditChecks, res.AuditViolations)
	}
	got, n := decodeBinSet(t, one.Bytes())
	if n != total || len(got) != len(want) {
		t.Fatalf("decoded %d edges (%d distinct), want %d (%d distinct)",
			n, len(got), total, len(want))
	}
	for l := range want {
		if !got[l] {
			t.Fatalf("edge %q missing from decoded bin stream", l)
		}
	}

	// Multi-block: each block restarts framing at its local offset 0, so
	// the merged file is a block-wise concatenation — verified per block
	// by the coordinator and in total by the closed form; two runs are
	// byte-identical.
	var m1, m2 bytes.Buffer
	opts := Options{Workers: urls, Rows: 3, Cols: 2, Format: "bin", RequestID: "test-bin-grid"}
	r1, err := Run(context.Background(), testSpec, &m1, opts)
	if err != nil {
		t.Fatalf("3x2 bin run: %v", err)
	}
	if r1.Edges != total {
		t.Fatalf("3x2 merged %d edges, closed form %d", r1.Edges, total)
	}
	if _, err := Run(context.Background(), testSpec, &m2, opts); err != nil {
		t.Fatalf("second 3x2 bin run: %v", err)
	}
	if !bytes.Equal(m1.Bytes(), m2.Bytes()) {
		t.Fatal("two bin runs produced different merged byte streams")
	}
}

// --- Resume from banked frames (tentpole: distgen side) ---------------

// frameLen returns the byte length of the wire frame at the head of b,
// or 0 when b does not hold one complete frame.
func frameLen(b []byte) int {
	off := 0
	uv := func() (uint64, bool) {
		v, n := binary.Uvarint(b[off:])
		if n <= 0 {
			return 0, false
		}
		off += n
		return v, true
	}
	count, ok := uv()
	if !ok || count == 0 {
		return 0
	}
	if _, ok := uv(); !ok { // start offset
		return 0
	}
	if _, ok := uv(); !ok { // v0
		return 0
	}
	if _, ok := uv(); !ok { // w0
		return 0
	}
	for i := uint64(1); i < count; i++ {
		for j := 0; j < 2; j++ {
			if _, n := binary.Varint(b[off:]); n <= 0 {
				return 0
			} else {
				off += n
			}
		}
	}
	return off
}

// truncatingHandler cuts its first lease response mid-frame: the first
// complete frame plus a few bytes of the second reach the wire, then
// the connection drops with no trailers.  Every lease body is recorded.
type truncatingHandler struct {
	h     http.Handler
	fired atomic.Bool
	mu    sync.Mutex
	offs  []int64 // block-local offsets of every lease request, in order
}

func (th *truncatingHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/v1/leases" {
		th.h.ServeHTTP(w, r)
		return
	}
	body, _ := io.ReadAll(r.Body)
	th.mu.Lock()
	th.offs = append(th.offs, leaseOffset(string(body)))
	th.mu.Unlock()
	r.Body = io.NopCloser(bytes.NewReader(body))
	if !th.fired.CompareAndSwap(false, true) {
		th.h.ServeHTTP(w, r)
		return
	}
	rec := httptest.NewRecorder()
	th.h.ServeHTTP(rec, r)
	payload := rec.Body.Bytes()
	cut := frameLen(payload)
	if cut == 0 || cut+5 >= len(payload) {
		// The harness depends on the block spanning at least two frames;
		// flag a bad spec choice instead of silently passing through.
		panic(fmt.Sprintf("truncation point %d of %d: test spec does not produce a multi-frame block", cut, len(payload)))
	}
	w.WriteHeader(http.StatusOK)
	w.Write(payload[:cut+5])
	if f, ok := w.(http.Flusher); ok {
		f.Flush()
	}
	hijackClose(w)
}

// leaseOffset pulls the "offset" field out of a lease request body.
func leaseOffset(body string) int64 {
	i := strings.LastIndex(body, `"offset":`)
	if i < 0 {
		return -1
	}
	rest := strings.TrimRight(body[i+len(`"offset":`):], "}")
	n, err := strconv.ParseInt(rest, 10, 64)
	if err != nil {
		return -1
	}
	return n
}

// TestRunBinResumeAfterTruncation is the tentpole acceptance test: a
// worker dies mid-lease after one complete frame reaches the wire.  The
// coordinator salvages that frame, re-issues the lease with a non-zero
// block-local offset, and the assembled bank+tail stream is verified
// and merged — byte-identical to a run that never saw the fault.
func TestRunBinResumeAfterTruncation(t *testing.T) {
	var th *truncatingHandler
	urls := newFleet(t, 1, func(i int, h http.Handler) http.Handler {
		th = &truncatingHandler{h: h}
		return th
	})
	_, total := localEdgeSet(t, testSpec)

	var faulted bytes.Buffer
	res, err := Run(context.Background(), testSpec, &faulted, Options{
		Workers: urls, Rows: 1, Cols: 1, Format: "bin", Audit: true,
		RequestID: "test-bin-resume",
	})
	if err != nil {
		t.Fatalf("run with truncated first lease: %v", err)
	}
	if !th.fired.Load() {
		t.Fatal("fault injection never fired")
	}
	if res.Edges != total {
		t.Fatalf("merged %d edges, closed form %d", res.Edges, total)
	}
	if res.AuditChecks == 0 || res.AuditViolations != 0 {
		t.Fatalf("audit checks=%d violations=%d", res.AuditChecks, res.AuditViolations)
	}

	th.mu.Lock()
	offs := append([]int64(nil), th.offs...)
	th.mu.Unlock()
	if len(offs) < 2 || offs[0] != 0 {
		t.Fatalf("lease offsets %v: want the initial lease at 0 and a retry", offs)
	}
	resumed := false
	for _, o := range offs[1:] {
		if o > 0 {
			resumed = true
		}
	}
	if !resumed {
		t.Fatalf("lease offsets %v: no resume lease was issued — the salvaged frame was not banked", offs)
	}

	// The assembled stream must be byte-identical to an uninterrupted run.
	var clean bytes.Buffer
	if _, err := Run(context.Background(), testSpec, &clean, Options{
		Workers: newFleet(t, 1, nil), Rows: 1, Cols: 1, Format: "bin",
		RequestID: "test-bin-clean",
	}); err != nil {
		t.Fatalf("clean run: %v", err)
	}
	if !bytes.Equal(faulted.Bytes(), clean.Bytes()) {
		t.Fatalf("resumed stream differs from uninterrupted stream (%d vs %d bytes)",
			faulted.Len(), clean.Len())
	}
}
