package wing

import (
	"math/rand"
	"testing"
	"testing/quick"

	"kronbip/internal/count"
	"kronbip/internal/gen"
	"kronbip/internal/graph"
)

func TestDecompositionKnown(t *testing.T) {
	// C4: the single 4-cycle gives every edge wing number 1.
	dec, err := Decomposition(gen.Cycle(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != 4 {
		t.Fatalf("C4 decomposition covers %d edges, want 4", len(dec))
	}
	for e, k := range dec {
		if k != 1 {
			t.Fatalf("C4 edge %v wing = %d, want 1", e, k)
		}
	}
	// K33: uniform support 4 peels at level 4 everywhere.
	dec, err = Decomposition(gen.CompleteBipartite(3, 3).Graph)
	if err != nil {
		t.Fatal(err)
	}
	for e, k := range dec {
		if k != 4 {
			t.Fatalf("K33 edge %v wing = %d, want 4", e, k)
		}
	}
	// Trees and stars: no butterflies, wing 0 everywhere.
	dec, err = Decomposition(gen.Star(6))
	if err != nil {
		t.Fatal(err)
	}
	for e, k := range dec {
		if k != 0 {
			t.Fatalf("star edge %v wing = %d, want 0", e, k)
		}
	}
	if _, err := Decomposition(gen.Complete(3)); err == nil {
		t.Fatal("Decomposition accepted non-bipartite graph")
	}
}

func TestMaxWing(t *testing.T) {
	m, err := MaxWing(gen.CompleteBipartite(4, 4).Graph)
	if err != nil {
		t.Fatal(err)
	}
	if m != 9 { // (4-1)(4-1)
		t.Fatalf("K44 max wing = %d, want 9", m)
	}
	m, _ = MaxWing(gen.BinaryTree(3))
	if m != 0 {
		t.Fatalf("tree max wing = %d, want 0", m)
	}
}

func TestKWingKnown(t *testing.T) {
	g := gen.CompleteBipartite(3, 3).Graph
	k4, err := KWing(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	if k4.NumEdges() != g.NumEdges() {
		t.Fatal("K33 4-wing should keep all edges")
	}
	k5, _ := KWing(g, 5)
	if k5.NumEdges() != 0 {
		t.Fatal("K33 5-wing should be empty")
	}
	if _, err := KWing(gen.Cycle(5), 1); err == nil {
		t.Fatal("KWing accepted non-bipartite graph")
	}
}

// TestDecompositionMatchesKWing is the structural cross-check: for every
// level k, the edges with wing number ≥ k must be exactly the edges of the
// independently computed k-wing subgraph.
func TestDecompositionMatchesKWing(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nu, nw := 3+rng.Intn(3), 3+rng.Intn(3)
		var pairs [][2]int
		for u := 0; u < nu; u++ {
			for w := 0; w < nw; w++ {
				if rng.Float64() < 0.6 {
					pairs = append(pairs, [2]int{u, w})
				}
			}
		}
		b, err := graph.NewBipartite(nu, nw, pairs)
		if err != nil {
			return false
		}
		dec, err := Decomposition(b.Graph)
		if err != nil {
			return false
		}
		var maxK int64
		for _, k := range dec {
			if k > maxK {
				maxK = k
			}
		}
		for k := int64(0); k <= maxK+1; k++ {
			kw, err := KWing(b.Graph, k)
			if err != nil {
				return false
			}
			inKWing := map[graph.Edge]bool{}
			for _, e := range kw.Edges() {
				inKWing[e] = true
			}
			for e, w := range dec {
				if (w >= k) != inKWing[e] {
					return false
				}
			}
			n := 0
			for _, w := range dec {
				if w >= k {
					n++
				}
			}
			if n != len(inKWing) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestWingNumberAtMostSupport: an edge's wing number never exceeds its
// butterfly support in the full graph.
func TestWingNumberAtMostSupport(t *testing.T) {
	g := gen.Crown(5).Graph
	dec, err := Decomposition(g)
	if err != nil {
		t.Fatal(err)
	}
	sup, err := count.EdgeButterflies(g)
	if err != nil {
		t.Fatal(err)
	}
	for e, k := range dec {
		if k > sup[e] {
			t.Fatalf("edge %v wing %d exceeds support %d", e, k, sup[e])
		}
	}
}
