// Package wing implements the k-wing (bitruss) decomposition of bipartite
// graphs by butterfly peeling, after Sarıyüce–Pinar ("Peeling bipartite
// networks for dense subgraph discovery") and Zou's bitruss decomposition.
//
// The k-wing of a bipartite graph is its maximal subgraph in which every
// edge participates in at least k butterflies (4-cycles) *within the
// subgraph*.  The wing number of an edge is the largest k for which the
// edge survives in the k-wing.  The paper discusses (end of §III-B1 /
// Rem. 1) that Kronecker products make ground-truth wing decompositions
// hard to engineer because products always acquire 4-cycles; this package
// provides the decomposition so that effect is measurable.
package wing

import (
	"fmt"

	"kronbip/internal/count"
	"kronbip/internal/graph"
)

// edgeID packs an undirected edge with U < V.
func edgeID(u, v int) graph.Edge {
	if u > v {
		u, v = v, u
	}
	return graph.Edge{U: u, V: v}
}

// Decomposition returns the wing number of every edge of a bipartite
// graph.  Butterfly-peeling: repeatedly remove the edge of minimum
// remaining butterfly support, propagating support decrements to the other
// three edges of each butterfly destroyed.  Complexity is dominated by
// butterfly enumeration per peeled edge.
func Decomposition(g *graph.Graph) (map[graph.Edge]int64, error) {
	if !g.IsBipartite() {
		return nil, fmt.Errorf("wing: decomposition requires a bipartite graph")
	}
	support, err := count.EdgeButterflies(g)
	if err != nil {
		return nil, err
	}

	// Mutable adjacency sets for edge removal.
	adj := make([]map[int]bool, g.N())
	for v := 0; v < g.N(); v++ {
		adj[v] = make(map[int]bool, g.Degree(v))
		for _, w := range g.Neighbors(v) {
			adj[v][w] = true
		}
	}

	// Bucket queue over remaining support values.
	var maxSup int64
	for _, s := range support {
		if s > maxSup {
			maxSup = s
		}
	}
	buckets := make([]map[graph.Edge]bool, maxSup+1)
	bucketOf := make(map[graph.Edge]int64, len(support))
	put := func(e graph.Edge, s int64) {
		if buckets[s] == nil {
			buckets[s] = make(map[graph.Edge]bool)
		}
		buckets[s][e] = true
		bucketOf[e] = s
	}
	move := func(e graph.Edge, s int64) {
		delete(buckets[bucketOf[e]], e)
		put(e, s)
	}
	for e, s := range support {
		put(e, s)
	}

	wing := make(map[graph.Edge]int64, len(support))
	var k int64
	remaining := len(support)
	cur := int64(0)
	for remaining > 0 {
		// Find the lowest non-empty bucket at or below the current level;
		// decrements never push an edge below level k, so cur only needs to
		// rewind to k.
		if cur > k {
			cur = k
		}
		for cur <= maxSup && len(buckets[cur]) == 0 {
			cur++
		}
		if cur > maxSup {
			break
		}
		var e graph.Edge
		for cand := range buckets[cur] {
			e = cand
			break
		}
		s := bucketOf[e]
		if s > k {
			k = s
		}
		wing[e] = k

		// Enumerate butterflies containing e among remaining edges and
		// decrement the other three edges of each.
		u, v := e.U, e.V
		for y := range adj[v] {
			if y == u {
				continue
			}
			for x := range adj[u] {
				if x == v || !adj[y][x] {
					continue
				}
				for _, other := range [3]graph.Edge{edgeID(v, y), edgeID(y, x), edgeID(x, u)} {
					if _, alive := bucketOf[other]; !alive {
						continue
					}
					ns := bucketOf[other] - 1
					if ns < k {
						ns = k // never below the current peeling level
					}
					if ns != bucketOf[other] {
						move(other, ns)
						if ns < cur {
							cur = ns
						}
					}
				}
			}
		}

		delete(buckets[bucketOf[e]], e)
		delete(bucketOf, e)
		delete(adj[u], v)
		delete(adj[v], u)
		remaining--
	}
	return wing, nil
}

// MaxWing returns the largest wing number in the decomposition (0 for
// 4-cycle-free graphs).
func MaxWing(g *graph.Graph) (int64, error) {
	dec, err := Decomposition(g)
	if err != nil {
		return 0, err
	}
	var m int64
	for _, k := range dec {
		if k > m {
			m = k
		}
	}
	return m, nil
}

// KWing returns the k-wing subgraph: the maximal subgraph in which every
// edge participates in at least k butterflies.  Computed by iterative
// pruning (independent of Decomposition, so the two can cross-check).
func KWing(g *graph.Graph, k int64) (*graph.Graph, error) {
	if !g.IsBipartite() {
		return nil, fmt.Errorf("wing: k-wing requires a bipartite graph")
	}
	cur := g
	for {
		support, err := count.EdgeButterflies(cur)
		if err != nil {
			return nil, err
		}
		var keep []graph.Edge
		removed := false
		for e, s := range support {
			if s >= k {
				keep = append(keep, e)
			} else {
				removed = true
			}
		}
		next, err := graph.New(g.N(), keep)
		if err != nil {
			return nil, err
		}
		if !removed {
			return next, nil
		}
		cur = next
	}
}
