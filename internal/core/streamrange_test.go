package core

import (
	"context"
	"math/rand"
	"testing"

	"kronbip/internal/exec"
	"kronbip/internal/gen"
	"kronbip/internal/graph"
)

// orderedEdges collects the canonical EachEdge stream without
// normalizing orientation — range equivalence is about order, not sets.
func orderedEdges(p *Product) []graph.Edge {
	out := make([]graph.Edge, 0, p.NumEdges())
	p.EachEdge(func(v, w int) bool {
		out = append(out, graph.Edge{U: v, V: w})
		return true
	})
	return out
}

// rangeBoundaries picks the interesting offsets for a product: the
// ends, every term start, the first row boundaries, mid-row offsets and
// a sprinkling of random positions.
func rangeBoundaries(p *Product, rng *rand.Rand) []int64 {
	n := p.NumEdges()
	ks := []int64{0, n}
	ks = append(ks, p.TermEdgeStarts()...)
	for t := 0; t < len(p.termOff)-1; t++ {
		if p.termOff[t+1] > p.termOff[t] && p.termPer[t] > 0 {
			// first row boundary and a mid-row offset of this term
			ks = append(ks, p.termPer[t], p.termPer[t]/2+1)
		}
	}
	for i := 0; i < 8; i++ {
		ks = append(ks, rng.Int63n(n+1))
	}
	out := ks[:0]
	for _, k := range ks {
		if k >= 0 && k <= n {
			out = append(out, k)
		}
	}
	return out
}

// TestEachEdgeRangeEquivalence: EachEdgeRange(lo, hi) reproduces the
// exact [lo, hi) slice of the canonical order for boundaries at terms,
// rows, mid-row offsets and random positions — the closed-form seek
// agrees with actually streaming the prefix.
func TestEachEdgeRangeEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for name, p := range blockTestProducts(t) {
		full := orderedEdges(p)
		ks := rangeBoundaries(p, rng)
		for _, lo := range ks {
			for _, hi := range ks {
				if hi < lo {
					continue
				}
				got := make([]graph.Edge, 0, hi-lo)
				if err := p.EachEdgeRange(lo, hi, func(v, w int) bool {
					got = append(got, graph.Edge{U: v, V: w})
					return true
				}); err != nil {
					t.Fatalf("%s [%d,%d): %v", name, lo, hi, err)
				}
				if int64(len(got)) != hi-lo {
					t.Fatalf("%s [%d,%d): got %d edges", name, lo, hi, len(got))
				}
				for i, e := range got {
					if e != full[lo+int64(i)] {
						t.Fatalf("%s [%d,%d): edge %d is %v, want %v", name, lo, hi, i, e, full[lo+int64(i)])
					}
				}
			}
		}
	}
}

// TestEachEdgeRangeSplitConcat: splitting the stream at any k and
// concatenating [0,k)+[k,|E|) reproduces the full canonical order —
// the resume contract serve's ?offset= relies on.
func TestEachEdgeRangeSplitConcat(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for name, p := range blockTestProducts(t) {
		full := orderedEdges(p)
		n := p.NumEdges()
		for _, k := range rangeBoundaries(p, rng) {
			var got []graph.Edge
			for _, r := range [][2]int64{{0, k}, {k, n}} {
				if err := p.EachEdgeRange(r[0], r[1], func(v, w int) bool {
					got = append(got, graph.Edge{U: v, V: w})
					return true
				}); err != nil {
					t.Fatal(err)
				}
			}
			if int64(len(got)) != n {
				t.Fatalf("%s split at %d: %d edges, want %d", name, k, len(got), n)
			}
			for i := range full {
				if got[i] != full[i] {
					t.Fatalf("%s split at %d: differs at %d", name, k, i)
				}
			}
		}
	}
}

func TestEachEdgeRangeErrors(t *testing.T) {
	for _, p := range testProducts(t) {
		n := p.NumEdges()
		for _, r := range [][2]int64{{-1, 0}, {0, n + 1}, {5, 4}, {n + 1, n + 1}} {
			if err := p.EachEdgeRange(r[0], r[1], func(_, _ int) bool { return true }); err == nil {
				t.Fatalf("range [%d,%d): expected error", r[0], r[1])
			}
		}
		// Early stop: yield returning false ends the walk without error.
		var seen int
		if err := p.EachEdgeRange(1, n, func(_, _ int) bool { seen++; return seen < 3 }); err != nil {
			t.Fatal(err)
		}
		if seen != 3 {
			t.Fatalf("early stop saw %d edges, want 3", seen)
		}
	}
}

func TestEachEdgeRangeContextCancel(t *testing.T) {
	// Needs more edges than a poll stride so the cancellation is
	// observed mid-walk rather than the stream finishing first.
	p, err := New(gen.Complete(8), gen.Cycle(48), ModeNonBipartiteFactor)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumEdges() < 2*streamPollStride {
		t.Fatalf("test product too small: %d edges", p.NumEdges())
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var seen int64
	err = p.EachEdgeRangeContext(ctx, 1, p.NumEdges(), func(_, _ int) bool {
		seen++
		if seen == 10 {
			cancel()
		}
		return true
	})
	if err != context.Canceled {
		t.Fatalf("cancelled range walk returned %v", err)
	}
	if seen < 10 || seen > 10+streamPollStride {
		t.Fatalf("cancelled after %d edges", seen)
	}
}

// TestEachEdgeBlockRangeEquivalence: the block-local range walker
// reproduces exact slices of each block's canonical-restricted order,
// including mid-row starting offsets.
func TestEachEdgeBlockRangeEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for name, p := range blockTestProducts(t) {
		for _, rc := range [][2]int{{1, 1}, {2, 3}, {3, 2}} {
			rows, cols := rc[0], rc[1]
			for r := 0; r < rows; r++ {
				for c := 0; c < cols; c++ {
					var full []graph.Edge
					if err := p.EachEdgeBlock(r, rows, c, cols, func(v, w int) bool {
						full = append(full, graph.Edge{U: v, V: w})
						return true
					}); err != nil {
						t.Fatal(err)
					}
					n := int64(len(full))
					ks := []int64{0, n, n / 2, n / 3, n/3 + 1, n - 1}
					for i := 0; i < 4; i++ {
						ks = append(ks, rng.Int63n(n+1))
					}
					for _, lo := range ks {
						if lo < 0 || lo > n {
							continue
						}
						got := make([]graph.Edge, 0, n-lo)
						if err := p.EachEdgeBlockRange(r, rows, c, cols, lo, n, func(v, w int) bool {
							got = append(got, graph.Edge{U: v, V: w})
							return true
						}); err != nil {
							t.Fatalf("%s block (%d,%d)/%dx%d [%d,%d): %v", name, r, c, rows, cols, lo, n, err)
						}
						if int64(len(got)) != n-lo {
							t.Fatalf("%s block (%d,%d)/%dx%d [%d,%d): %d edges", name, r, c, rows, cols, lo, n, len(got))
						}
						for i := range got {
							if got[i] != full[lo+int64(i)] {
								t.Fatalf("%s block (%d,%d)/%dx%d from %d: differs at %d", name, r, c, rows, cols, lo, i)
							}
						}
					}
					if err := p.EachEdgeBlockRange(r, rows, c, cols, 0, n+1, func(_, _ int) bool { return true }); err == nil {
						t.Fatalf("%s block (%d,%d): hi beyond count accepted", name, r, c)
					}
				}
			}
		}
	}
}

// TestEachEdgeBlockBatchEquivalence: the batched block walker delivers
// the same edges in the same order as the per-edge block walker, in
// batches of at most exec.BatchLen.
func TestEachEdgeBlockBatchEquivalence(t *testing.T) {
	for name, p := range blockTestProducts(t) {
		for _, rc := range [][2]int{{1, 1}, {2, 3}, {3, 1000}} {
			rows, cols := rc[0], rc[1]
			for r := 0; r < rows; r++ {
				for c := 0; c < cols; c++ {
					var want []graph.Edge
					if err := p.EachEdgeBlock(r, rows, c, cols, func(v, w int) bool {
						want = append(want, graph.Edge{U: v, V: w})
						return true
					}); err != nil {
						t.Fatal(err)
					}
					var got []graph.Edge
					err := p.EachEdgeBlockBatchContext(context.Background(), r, rows, c, cols, func(batch []exec.Edge) bool {
						if len(batch) > exec.BatchLen {
							t.Fatalf("batch of %d > BatchLen", len(batch))
						}
						for _, e := range batch {
							got = append(got, graph.Edge{U: e.V, V: e.W})
						}
						return true
					})
					if err != nil {
						t.Fatal(err)
					}
					if len(got) != len(want) {
						t.Fatalf("%s block (%d,%d)/%dx%d: batch walker %d edges, per-edge %d",
							name, r, c, rows, cols, len(got), len(want))
					}
					for i := range want {
						if got[i] != want[i] {
							t.Fatalf("%s block (%d,%d)/%dx%d: differs at %d", name, r, c, rows, cols, i)
						}
					}
				}
			}
		}
	}
}

// TestEachEdgeRangeBatch: batch delivery of a range concatenates to the
// same slice the per-edge walker yields.
func TestEachEdgeRangeBatch(t *testing.T) {
	for name, p := range blockTestProducts(t) {
		full := orderedEdges(p)
		n := p.NumEdges()
		lo, hi := n/3, n-n/4
		var got []graph.Edge
		err := p.EachEdgeRangeBatchContext(context.Background(), lo, hi, func(batch []exec.Edge) bool {
			for _, e := range batch {
				got = append(got, graph.Edge{U: e.V, V: e.W})
			}
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		if int64(len(got)) != hi-lo {
			t.Fatalf("%s: %d edges, want %d", name, len(got), hi-lo)
		}
		for i := range got {
			if got[i] != full[lo+int64(i)] {
				t.Fatalf("%s: differs at %d", name, i)
			}
		}
	}
}

// TestTermEdgeStarts: the hard-cut schedule is strictly ascending from
// 0 to NumEdges, each cut seeks to a fresh row (offset 0), and the
// block-local variant ends exactly on BlockEdgeCount.
func TestTermEdgeStarts(t *testing.T) {
	for name, p := range blockTestProducts(t) {
		cuts := p.TermEdgeStarts()
		if cuts[len(cuts)-1] != p.NumEdges() {
			t.Fatalf("%s: last cut %d, want %d", name, cuts[len(cuts)-1], p.NumEdges())
		}
		for i := 1; i < len(cuts); i++ {
			if cuts[i] <= cuts[i-1] {
				t.Fatalf("%s: cuts not ascending: %v", name, cuts)
			}
		}
		for _, cut := range cuts[:len(cuts)-1] {
			if _, _, off := p.seekEdge(cut); off != 0 {
				t.Fatalf("%s: cut %d seeks mid-row (off %d)", name, cut, off)
			}
		}
		bcuts, err := p.BlockTermEdgeStarts(1, 2, 1, 3)
		if err != nil {
			t.Fatal(err)
		}
		want, err := p.BlockEdgeCount(1, 2, 1, 3)
		if err != nil {
			t.Fatal(err)
		}
		if bcuts[len(bcuts)-1] != want {
			t.Fatalf("%s: block cuts end at %d, BlockEdgeCount says %d", name, bcuts[len(bcuts)-1], want)
		}
	}
}
