package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"kronbip/internal/exec"
	"kronbip/internal/gen"
	"kronbip/internal/graph"
)

func collectEdges(p *Product) []graph.Edge {
	var out []graph.Edge
	p.EachEdge(func(v, w int) bool {
		if v > w {
			v, w = w, v
		}
		out = append(out, graph.Edge{U: v, V: w})
		return true
	})
	sortEdges(out)
	return out
}

func sortEdges(e []graph.Edge) {
	sort.Slice(e, func(a, b int) bool {
		if e[a].U != e[b].U {
			return e[a].U < e[b].U
		}
		return e[a].V < e[b].V
	})
}

func testProducts(t *testing.T) map[string]*Product {
	t.Helper()
	p1, err := New(gen.Complete(3), gen.Cycle(6), ModeNonBipartiteFactor)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := New(gen.Star(4), gen.Crown(3).Graph, ModeSelfLoopFactor)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*Product{"mode1": p1, "mode2": p2}
}

func TestEachEdgeShardPartition(t *testing.T) {
	for name, p := range testProducts(t) {
		want := collectEdges(p)
		for _, nshards := range []int{1, 2, 3, 7, 1000} {
			var got []graph.Edge
			seen := map[graph.Edge]bool{}
			for s := 0; s < nshards; s++ {
				if err := p.EachEdgeShard(s, nshards, func(v, w int) bool {
					if v > w {
						v, w = w, v
					}
					e := graph.Edge{U: v, V: w}
					if seen[e] {
						t.Fatalf("%s nshards=%d: edge %v in two shards", name, nshards, e)
					}
					seen[e] = true
					got = append(got, e)
					return true
				}); err != nil {
					t.Fatal(err)
				}
			}
			sortEdges(got)
			if len(got) != len(want) {
				t.Fatalf("%s nshards=%d: %d edges, want %d", name, nshards, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s nshards=%d: edge sets differ at %d", name, nshards, i)
				}
			}
		}
	}
}

func TestShardEdgeCount(t *testing.T) {
	for name, p := range testProducts(t) {
		for _, nshards := range []int{1, 2, 5} {
			var total int64
			for s := 0; s < nshards; s++ {
				want, err := p.ShardEdgeCount(s, nshards)
				if err != nil {
					t.Fatal(err)
				}
				var n int64
				if err := p.EachEdgeShard(s, nshards, func(_, _ int) bool { n++; return true }); err != nil {
					t.Fatal(err)
				}
				if n != want {
					t.Fatalf("%s shard %d/%d: counted %d, ShardEdgeCount says %d", name, s, nshards, n, want)
				}
				total += n
			}
			if total != p.NumEdges() {
				t.Fatalf("%s nshards=%d: shards total %d, want %d", name, nshards, total, p.NumEdges())
			}
		}
	}
}

func TestEachEdgeShardValidation(t *testing.T) {
	p := testProducts(t)["mode1"]
	if err := p.EachEdgeShard(0, 0, func(_, _ int) bool { return true }); err == nil {
		t.Fatal("accepted nshards=0")
	}
	if err := p.EachEdgeShard(3, 3, func(_, _ int) bool { return true }); err == nil {
		t.Fatal("accepted shard out of range")
	}
	if _, err := p.ShardEdgeCount(-1, 2); err == nil {
		t.Fatal("ShardEdgeCount accepted negative shard")
	}
	if _, err := p.ShardEdgeCount(0, 0); err == nil {
		t.Fatal("ShardEdgeCount accepted nshards=0")
	}
}

func TestEachEdgeShardEarlyStop(t *testing.T) {
	p := testProducts(t)["mode2"]
	n := 0
	if err := p.EachEdgeShard(0, 1, func(_, _ int) bool {
		n++
		return n < 3
	}); err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("early stop streamed %d, want 3", n)
	}
}

func TestStreamEdgesParallel(t *testing.T) {
	for name, p := range testProducts(t) {
		const nshards = 4
		var mu sync.Mutex
		perShard := make([][]graph.Edge, nshards)
		err := p.StreamEdgesParallel(nshards, func(s int) func(v, w int) error {
			return func(v, w int) error {
				if v > w {
					v, w = w, v
				}
				mu.Lock()
				perShard[s] = append(perShard[s], graph.Edge{U: v, V: w})
				mu.Unlock()
				return nil
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		var got []graph.Edge
		for _, s := range perShard {
			got = append(got, s...)
		}
		sortEdges(got)
		want := collectEdges(p)
		if len(got) != len(want) {
			t.Fatalf("%s: parallel stream %d edges, want %d", name, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: parallel stream differs at %d", name, i)
			}
		}
	}
}

// TestEachEdgeShardContextPartitionProperty is the randomized version of
// the exactness property: for arbitrary nshards, the union of all shards
// under a live context equals the EachEdge stream exactly, with no edge in
// two shards.
func TestEachEdgeShardContextPartitionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for name, p := range testProducts(t) {
		want := collectEdges(p)
		for trial := 0; trial < 20; trial++ {
			nshards := 1 + rng.Intn(2*p.numRows())
			ctx := context.Background()
			var got []graph.Edge
			seen := map[graph.Edge]bool{}
			for s := 0; s < nshards; s++ {
				if err := p.EachEdgeShardContext(ctx, s, nshards, func(v, w int) bool {
					if v > w {
						v, w = w, v
					}
					e := graph.Edge{U: v, V: w}
					if seen[e] {
						t.Fatalf("%s nshards=%d: edge %v in two shards", name, nshards, e)
					}
					seen[e] = true
					got = append(got, e)
					return true
				}); err != nil {
					t.Fatal(err)
				}
			}
			sortEdges(got)
			if len(got) != len(want) {
				t.Fatalf("%s nshards=%d: %d edges, want %d", name, nshards, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s nshards=%d: edge sets differ at %d", name, nshards, i)
				}
			}
		}
	}
}

// bigStreamProduct builds a product whose rows are long enough that the
// in-row cancellation poller (stride streamPollStride) must fire before a
// row completes.
func bigStreamProduct(t *testing.T) *Product {
	t.Helper()
	p, err := New(gen.Star(4), gen.CompleteBipartite(40, 40).Graph, ModeSelfLoopFactor)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestEachEdgeShardContextCancelMidStream cancels from inside the yield
// and checks the contract: the stream stops within one polling stride,
// returns ctx.Err(), and never emits an edge twice.
func TestEachEdgeShardContextCancelMidStream(t *testing.T) {
	p := bigStreamProduct(t)
	const cancelAt = 10
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	emitted := 0
	seen := map[graph.Edge]bool{}
	err := p.EachEdgeShardContext(ctx, 0, 1, func(v, w int) bool {
		if v > w {
			v, w = w, v
		}
		e := graph.Edge{U: v, V: w}
		if seen[e] {
			t.Fatalf("edge %v emitted twice", e)
		}
		seen[e] = true
		emitted++
		if emitted == cancelAt {
			cancel()
		}
		return true
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if int64(emitted) >= p.NumEdges() {
		t.Fatal("cancellation did not stop the stream early")
	}
	if emitted > cancelAt+2*streamPollStride {
		t.Fatalf("stream emitted %d edges after cancellation at %d (stride %d): not prompt",
			emitted-cancelAt, cancelAt, streamPollStride)
	}
}

// TestEachEdgeShardContextPreCancelled: a dead context yields no edges at
// all.
func TestEachEdgeShardContextPreCancelled(t *testing.T) {
	p := testProducts(t)["mode1"]
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := p.EachEdgeShardContext(ctx, 0, 2, func(v, w int) bool {
		t.Fatal("yield ran under a pre-cancelled context")
		return true
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestStreamEdgesParallelContextCancel cancels mid-generation from a sink
// and requires the parallel stream to surface ctx.Err().
func TestStreamEdgesParallelContextCancel(t *testing.T) {
	p := bigStreamProduct(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var total atomic.Int64
	err := p.StreamEdgesParallelContext(ctx, 4, func(s int) exec.Sink {
		return exec.SinkFunc(func(v, w int) error {
			if total.Add(1) == 25 {
				cancel()
			}
			return nil
		})
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if total.Load() >= p.NumEdges() {
		t.Fatal("cancellation did not abort the parallel stream early")
	}
}

// TestStreamEdgesParallelContextDeadline: an already-expired deadline
// aborts before any edge is generated.
func TestStreamEdgesParallelContextDeadline(t *testing.T) {
	p := testProducts(t)["mode2"]
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Millisecond))
	defer cancel()
	err := p.StreamEdgesParallelContext(ctx, 3, func(s int) exec.Sink {
		return exec.SinkFunc(func(v, w int) error {
			t.Error("edge generated after deadline")
			return nil
		})
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestStreamEdgesParallelContextFlushes verifies shard sinks are flushed
// (exec.Finish) on normal completion.
func TestStreamEdgesParallelContextFlushes(t *testing.T) {
	p := testProducts(t)["mode2"]
	const nshards = 3
	var mu sync.Mutex
	delivered := 0
	sinks := make([]exec.Sink, nshards)
	for s := range sinks {
		sinks[s] = exec.NewBufferedSink(exec.SinkFunc(func(v, w int) error {
			mu.Lock()
			delivered++
			mu.Unlock()
			return nil
		}))
	}
	if err := p.StreamEdgesParallelContext(context.Background(), nshards, func(s int) exec.Sink {
		return sinks[s]
	}); err != nil {
		t.Fatal(err)
	}
	if int64(delivered) != p.NumEdges() {
		t.Fatalf("delivered %d edges after flush, want %d", delivered, p.NumEdges())
	}
}

func TestStreamEdgesParallelSinkError(t *testing.T) {
	p := testProducts(t)["mode1"]
	boom := fmt.Errorf("sink exploded")
	err := p.StreamEdgesParallel(3, func(s int) func(v, w int) error {
		n := 0
		return func(_, _ int) error {
			n++
			if s == 1 && n == 5 {
				return boom
			}
			return nil
		}
	})
	if err != boom {
		t.Fatalf("error = %v, want %v", err, boom)
	}
	if err := p.StreamEdgesParallel(0, nil); err == nil {
		t.Fatal("accepted nshards=0")
	}
}
