package core

import (
	"fmt"
	"sort"
	"sync"
	"testing"

	"kronbip/internal/gen"
	"kronbip/internal/graph"
)

func collectEdges(p *Product) []graph.Edge {
	var out []graph.Edge
	p.EachEdge(func(v, w int) bool {
		if v > w {
			v, w = w, v
		}
		out = append(out, graph.Edge{U: v, V: w})
		return true
	})
	sortEdges(out)
	return out
}

func sortEdges(e []graph.Edge) {
	sort.Slice(e, func(a, b int) bool {
		if e[a].U != e[b].U {
			return e[a].U < e[b].U
		}
		return e[a].V < e[b].V
	})
}

func testProducts(t *testing.T) map[string]*Product {
	t.Helper()
	p1, err := New(gen.Complete(3), gen.Cycle(6), ModeNonBipartiteFactor)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := New(gen.Star(4), gen.Crown(3).Graph, ModeSelfLoopFactor)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*Product{"mode1": p1, "mode2": p2}
}

func TestEachEdgeShardPartition(t *testing.T) {
	for name, p := range testProducts(t) {
		want := collectEdges(p)
		for _, nshards := range []int{1, 2, 3, 7, 1000} {
			var got []graph.Edge
			seen := map[graph.Edge]bool{}
			for s := 0; s < nshards; s++ {
				if err := p.EachEdgeShard(s, nshards, func(v, w int) bool {
					if v > w {
						v, w = w, v
					}
					e := graph.Edge{U: v, V: w}
					if seen[e] {
						t.Fatalf("%s nshards=%d: edge %v in two shards", name, nshards, e)
					}
					seen[e] = true
					got = append(got, e)
					return true
				}); err != nil {
					t.Fatal(err)
				}
			}
			sortEdges(got)
			if len(got) != len(want) {
				t.Fatalf("%s nshards=%d: %d edges, want %d", name, nshards, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s nshards=%d: edge sets differ at %d", name, nshards, i)
				}
			}
		}
	}
}

func TestShardEdgeCount(t *testing.T) {
	for name, p := range testProducts(t) {
		for _, nshards := range []int{1, 2, 5} {
			var total int64
			for s := 0; s < nshards; s++ {
				want, err := p.ShardEdgeCount(s, nshards)
				if err != nil {
					t.Fatal(err)
				}
				var n int64
				if err := p.EachEdgeShard(s, nshards, func(_, _ int) bool { n++; return true }); err != nil {
					t.Fatal(err)
				}
				if n != want {
					t.Fatalf("%s shard %d/%d: counted %d, ShardEdgeCount says %d", name, s, nshards, n, want)
				}
				total += n
			}
			if total != p.NumEdges() {
				t.Fatalf("%s nshards=%d: shards total %d, want %d", name, nshards, total, p.NumEdges())
			}
		}
	}
}

func TestEachEdgeShardValidation(t *testing.T) {
	p := testProducts(t)["mode1"]
	if err := p.EachEdgeShard(0, 0, func(_, _ int) bool { return true }); err == nil {
		t.Fatal("accepted nshards=0")
	}
	if err := p.EachEdgeShard(3, 3, func(_, _ int) bool { return true }); err == nil {
		t.Fatal("accepted shard out of range")
	}
	if _, err := p.ShardEdgeCount(-1, 2); err == nil {
		t.Fatal("ShardEdgeCount accepted negative shard")
	}
	if _, err := p.ShardEdgeCount(0, 0); err == nil {
		t.Fatal("ShardEdgeCount accepted nshards=0")
	}
}

func TestEachEdgeShardEarlyStop(t *testing.T) {
	p := testProducts(t)["mode2"]
	n := 0
	if err := p.EachEdgeShard(0, 1, func(_, _ int) bool {
		n++
		return n < 3
	}); err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("early stop streamed %d, want 3", n)
	}
}

func TestStreamEdgesParallel(t *testing.T) {
	for name, p := range testProducts(t) {
		const nshards = 4
		var mu sync.Mutex
		perShard := make([][]graph.Edge, nshards)
		err := p.StreamEdgesParallel(nshards, func(s int) func(v, w int) error {
			return func(v, w int) error {
				if v > w {
					v, w = w, v
				}
				mu.Lock()
				perShard[s] = append(perShard[s], graph.Edge{U: v, V: w})
				mu.Unlock()
				return nil
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		var got []graph.Edge
		for _, s := range perShard {
			got = append(got, s...)
		}
		sortEdges(got)
		want := collectEdges(p)
		if len(got) != len(want) {
			t.Fatalf("%s: parallel stream %d edges, want %d", name, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: parallel stream differs at %d", name, i)
			}
		}
	}
}

func TestStreamEdgesParallelSinkError(t *testing.T) {
	p := testProducts(t)["mode1"]
	boom := fmt.Errorf("sink exploded")
	err := p.StreamEdgesParallel(3, func(s int) func(v, w int) error {
		n := 0
		return func(_, _ int) error {
			n++
			if s == 1 && n == 5 {
				return boom
			}
			return nil
		}
	})
	if err != boom {
		t.Fatalf("error = %v, want %v", err, boom)
	}
	if err := p.StreamEdgesParallel(0, nil); err == nil {
		t.Fatal("accepted nshards=0")
	}
}
