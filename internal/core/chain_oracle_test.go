package core

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"kronbip/internal/count"
	"kronbip/internal/exec"
	"kronbip/internal/gen"
	"kronbip/internal/graph"
)

// Satellite: the non-materializing chain vs the materializing oracle.
// Materialize (the one code path that builds intermediate levels) is kept
// exactly for this purpose: every closed-form answer the chained Product
// gives must match brute-force counting on the explicitly built graph.

type chainCase struct {
	name   string
	mode   Mode
	a      *graph.Graph
	bs     []*graph.Graph
	strict bool
}

// chainOracleCases spans arities 2..5 (k = 1..4 right factors), both modes,
// strict and relaxed, structured and pseudo-random scale-free factors.
func chainOracleCases() []chainCase {
	sf := func(nu, nw, m int, seed int64) *graph.Graph {
		return gen.ConnectedBipartiteScaleFree(nu, nw, m, seed).Graph
	}
	return []chainCase{
		{"k1_mode2", ModeSelfLoopFactor, gen.Path(3), []*graph.Graph{sf(3, 4, 8, 1)}, true},
		{"k1_mode1", ModeNonBipartiteFactor, gen.Lollipop(3, 2), []*graph.Graph{gen.Crown(3).Graph}, true},
		{"k2_mode2", ModeSelfLoopFactor, gen.Star(3), []*graph.Graph{sf(2, 3, 5, 2), gen.Path(3)}, true},
		{"k2_mode1", ModeNonBipartiteFactor, gen.Petersen(), []*graph.Graph{gen.Path(2), sf(2, 2, 3, 3)}, true},
		{"k3_mode2", ModeSelfLoopFactor, gen.Path(2), []*graph.Graph{gen.CompleteBipartite(2, 2).Graph, gen.Path(3), sf(2, 2, 3, 4)}, true},
		{"k3_mode1", ModeNonBipartiteFactor, gen.Complete(3), []*graph.Graph{gen.Path(2), gen.Star(2), gen.Path(3)}, true},
		{"k4_mode2", ModeSelfLoopFactor, gen.Path(3), []*graph.Graph{gen.Path(2), gen.Path(2), gen.Star(2), gen.Path(2)}, true},
		{"k4_mode1", ModeNonBipartiteFactor, gen.Cycle(5), []*graph.Graph{gen.Path(2), gen.Path(2), gen.Path(2), gen.Path(2)}, true},
		{"k3_relaxed_disc", ModeSelfLoopFactor, gen.Path(2),
			[]*graph.Graph{gen.DisjointUnion(gen.Path(2), gen.Path(3)), gen.Path(2), gen.Star(2)}, false},
		{"k2_relaxed_mode1_bipartiteA", ModeNonBipartiteFactor, gen.Path(3),
			[]*graph.Graph{sf(2, 3, 4, 5), gen.Path(2)}, false},
	}
}

func buildChainCase(t *testing.T, c chainCase) *Product {
	t.Helper()
	mk := NewChain
	if !c.strict {
		mk = NewChainRelaxed
	}
	p, err := mk(c.a, c.mode, c.bs...)
	if err != nil {
		t.Fatalf("building chain: %v", err)
	}
	return p
}

func edgeKey(v, w int) [2]int {
	if v > w {
		v, w = w, v
	}
	return [2]int{v, w}
}

func TestChainOracleEdgeSets(t *testing.T) {
	for _, c := range chainOracleCases() {
		t.Run(c.name, func(t *testing.T) {
			p := buildChainCase(t, c)
			g, err := p.Materialize(0)
			if err != nil {
				t.Fatal(err)
			}
			if g.N() != p.N() {
				t.Fatalf("N: chain %d, oracle %d", p.N(), g.N())
			}
			if int64(g.NumEdges()) != p.NumEdges() {
				t.Fatalf("NumEdges: chain %d, oracle %d", p.NumEdges(), g.NumEdges())
			}
			want := map[[2]int]bool{}
			for _, e := range g.Edges() {
				want[edgeKey(e.U, e.V)] = true
			}
			// Per-edge stream: exact set, no duplicates.
			got := map[[2]int]bool{}
			dup := false
			p.EachEdge(func(v, w int) bool {
				k := edgeKey(v, w)
				if got[k] {
					dup = true
				}
				got[k] = true
				return true
			})
			if dup {
				t.Fatal("EachEdge emitted a duplicate edge")
			}
			if len(got) != len(want) {
				t.Fatalf("edge stream size %d, oracle %d", len(got), len(want))
			}
			for k := range got {
				if !want[k] {
					t.Fatalf("stream emitted non-edge %v", k)
				}
			}
			// HasEdge agrees with the stream on edges and a non-edge sample.
			for k := range want {
				if !p.HasEdge(k[0], k[1]) || !p.HasEdge(k[1], k[0]) {
					t.Fatalf("HasEdge(%d,%d) = false for an oracle edge", k[0], k[1])
				}
			}
			step := p.N()/17 + 1
			for v := 0; v < p.N(); v += step {
				for w := 0; w < p.N(); w += step {
					if p.HasEdge(v, w) != want[edgeKey(v, w)] {
						t.Fatalf("HasEdge(%d,%d) = %v disagrees with oracle", v, w, p.HasEdge(v, w))
					}
				}
			}
		})
	}
}

func TestChainOracleBatchAndShards(t *testing.T) {
	for _, c := range chainOracleCases() {
		t.Run(c.name, func(t *testing.T) {
			p := buildChainCase(t, c)
			g, err := p.Materialize(0)
			if err != nil {
				t.Fatal(err)
			}
			want := map[[2]int]bool{}
			for _, e := range g.Edges() {
				want[edgeKey(e.U, e.V)] = true
			}
			for _, nshards := range []int{1, 2, 3, 7} {
				got := map[[2]int]bool{}
				var streamed int64
				for s := 0; s < nshards; s++ {
					var inShard int64
					err := p.EachEdgeShardBatch(s, nshards, func(batch []exec.Edge) bool {
						for _, e := range batch {
							got[edgeKey(e.V, e.W)] = true
						}
						inShard += int64(len(batch))
						return true
					})
					if err != nil {
						t.Fatal(err)
					}
					cnt, err := p.ShardEdgeCount(s, nshards)
					if err != nil {
						t.Fatal(err)
					}
					if cnt != inShard {
						t.Fatalf("nshards=%d shard %d: ShardEdgeCount %d, streamed %d", nshards, s, cnt, inShard)
					}
					streamed += inShard
				}
				if streamed != p.NumEdges() {
					t.Fatalf("nshards=%d: streamed %d edges, want %d", nshards, streamed, p.NumEdges())
				}
				if len(got) != len(want) {
					t.Fatalf("nshards=%d: batch union %d edges, oracle %d", nshards, len(got), len(want))
				}
				for k := range got {
					if !want[k] {
						t.Fatalf("nshards=%d: batch emitted non-edge %v", nshards, k)
					}
				}
			}
		})
	}
}

func TestChainOracleDegreesAndHistogram(t *testing.T) {
	for _, c := range chainOracleCases() {
		t.Run(c.name, func(t *testing.T) {
			p := buildChainCase(t, c)
			g, err := p.Materialize(0)
			if err != nil {
				t.Fatal(err)
			}
			deg := make([]int64, g.N())
			for _, e := range g.Edges() {
				deg[e.U]++
				deg[e.V]++
			}
			degs := p.Degrees()
			for v := range deg {
				if p.DegreeAt(v) != deg[v] {
					t.Fatalf("DegreeAt(%d) = %d, oracle %d", v, p.DegreeAt(v), deg[v])
				}
				if degs[v] != deg[v] {
					t.Fatalf("Degrees()[%d] = %d, oracle %d", v, degs[v], deg[v])
				}
			}
			wantHist := map[int64]int64{}
			for _, d := range deg {
				wantHist[d]++
			}
			hist := p.DegreeHistogram()
			if len(hist) != len(wantHist) {
				t.Fatalf("histogram has %d buckets, oracle %d (%v vs %v)", len(hist), len(wantHist), hist, wantHist)
			}
			for d, n := range wantHist {
				if hist[d] != n {
					t.Fatalf("histogram[%d] = %d, oracle %d", d, hist[d], n)
				}
			}
		})
	}
}

func TestChainOracleFourCycles(t *testing.T) {
	for _, c := range chainOracleCases() {
		t.Run(c.name, func(t *testing.T) {
			p := buildChainCase(t, c)
			g, err := p.Materialize(0)
			if err != nil {
				t.Fatal(err)
			}
			brute, err := count.VertexButterflies(g)
			if err != nil {
				t.Fatal(err)
			}
			vec := p.VertexFourCycles()
			expr := p.VertexFourCyclesExpr()
			var global int64
			for v := range brute {
				if vec[v] != brute[v] {
					t.Fatalf("VertexFourCycles[%d] = %d, oracle %d", v, vec[v], brute[v])
				}
				if p.VertexFourCyclesAt(v) != brute[v] {
					t.Fatalf("VertexFourCyclesAt(%d) = %d, oracle %d", v, p.VertexFourCyclesAt(v), brute[v])
				}
				if expr.At(v) != 2*brute[v] {
					t.Fatalf("VertexFourCyclesExpr.At(%d) = %d, oracle 2·%d", v, expr.At(v), brute[v])
				}
				global += brute[v]
			}
			global /= 4
			if p.GlobalFourCycles() != global {
				t.Fatalf("GlobalFourCycles = %d, oracle %d", p.GlobalFourCycles(), global)
			}
			if expr.Sum()/8 != global {
				t.Fatalf("VertexFourCyclesExpr.Sum()/8 = %d, oracle %d", expr.Sum()/8, global)
			}
			if p.GlobalFourCyclesViaEdges() != global {
				t.Fatalf("GlobalFourCyclesViaEdges = %d, oracle %d", p.GlobalFourCyclesViaEdges(), global)
			}
			checked := 0
			p.EachEdgeFourCycle(func(v, w int, sq int64) bool {
				d, err := count.EdgeButterfliesAt(g, v, w)
				if err != nil {
					t.Fatalf("oracle EdgeButterfliesAt(%d,%d): %v", v, w, err)
				}
				if d != sq {
					t.Fatalf("EdgeFourCyclesAt(%d,%d) = %d, oracle %d", v, w, sq, d)
				}
				checked++
				return checked < 500 // bound the per-case cost
			})
		})
	}
}

func TestChainOracleDistancesAndSpectral(t *testing.T) {
	for _, c := range chainOracleCases() {
		t.Run(c.name, func(t *testing.T) {
			p := buildChainCase(t, c)
			g, err := p.Materialize(0)
			if err != nil {
				t.Fatal(err)
			}
			// Spectral radius factorizes for strict and relaxed alike.
			got, err := p.SpectralRadius(1e-12, 10000)
			if err != nil {
				t.Fatal(err)
			}
			want, err := GraphSpectralRadius(g, 1e-12, 10000)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-want) > 1e-6*(1+want) {
				t.Fatalf("SpectralRadius = %g, oracle %g", got, want)
			}
			// Distance checks on sampled sources (BFS on the oracle).
			step := p.N()/23 + 1
			diam := 0
			for v := 0; v < p.N(); v += step {
				dist := g.BFS(v)
				ecc := 0
				for w, d := range dist {
					hops, ok := p.HopsAt(v, w)
					if d == graph.Unreached {
						if ok {
							t.Fatalf("HopsAt(%d,%d) = %d, oracle unreachable", v, w, hops)
						}
						continue
					}
					if !ok || hops != d {
						t.Fatalf("HopsAt(%d,%d) = %d (ok=%v), oracle %d", v, w, hops, ok, d)
					}
					if d > ecc {
						ecc = d
					}
				}
				if c.strict {
					e, err := p.EccentricityAt(v)
					if err != nil {
						t.Fatal(err)
					}
					if e != ecc {
						t.Fatalf("EccentricityAt(%d) = %d, oracle %d", v, e, ecc)
					}
				}
				if ecc > diam {
					diam = ecc
				}
			}
			if c.strict && step == 1 {
				d, err := p.Diameter()
				if err != nil {
					t.Fatal(err)
				}
				if d != diam {
					t.Fatalf("Diameter = %d, oracle %d", d, diam)
				}
			}
		})
	}
}

// TestChainDiameterExhaustive brute-forces the diameter on chains small
// enough to BFS from every vertex, exercising the per-level eccentricity
// fold end to end (the sampled test above only covers it when step == 1).
func TestChainDiameterExhaustive(t *testing.T) {
	cases := []chainCase{
		{"k2", ModeSelfLoopFactor, gen.Path(3), []*graph.Graph{gen.Path(3), gen.Path(2)}, true},
		{"k3", ModeSelfLoopFactor, gen.Path(2), []*graph.Graph{gen.Path(2), gen.Path(3), gen.Path(2)}, true},
		{"k3_mode1", ModeNonBipartiteFactor, gen.Complete(3), []*graph.Graph{gen.Path(2), gen.Path(2), gen.Path(3)}, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p := buildChainCase(t, c)
			g, err := p.Materialize(0)
			if err != nil {
				t.Fatal(err)
			}
			diam := 0
			for v := 0; v < g.N(); v++ {
				for _, d := range g.BFS(v) {
					if d > diam {
						diam = d
					}
				}
			}
			got, err := p.Diameter()
			if err != nil {
				t.Fatal(err)
			}
			if got != diam {
				t.Fatalf("Diameter = %d, brute force %d", got, diam)
			}
		})
	}
}

// TestShardEdgeCountEmptyShards: with more shards than layout rows some
// shards hold zero rows; their closed-form count must be 0 and the
// populated shards must still partition the edge set exactly.
func TestShardEdgeCountEmptyShards(t *testing.T) {
	p, err := NewChain(gen.Path(3), ModeSelfLoopFactor, gen.Path(2), gen.Path(2))
	if err != nil {
		t.Fatal(err)
	}
	rows := p.numRows()
	for _, nshards := range []int{rows, rows + 1, 3 * rows} {
		var total int64
		empties := 0
		for s := 0; s < nshards; s++ {
			cnt, err := p.ShardEdgeCount(s, nshards)
			if err != nil {
				t.Fatal(err)
			}
			var streamed int64
			if err := p.EachEdgeShard(s, nshards, func(v, w int) bool {
				streamed++
				return true
			}); err != nil {
				t.Fatal(err)
			}
			if cnt != streamed {
				t.Fatalf("nshards=%d shard %d: count %d, streamed %d", nshards, s, cnt, streamed)
			}
			if cnt == 0 {
				empties++
			}
			total += cnt
		}
		if total != p.NumEdges() {
			t.Fatalf("nshards=%d: shard counts sum to %d, want %d", nshards, total, p.NumEdges())
		}
		if nshards > rows && empties == 0 {
			t.Fatalf("nshards=%d > rows=%d yet no empty shard", nshards, rows)
		}
	}
}

func TestRadixRoundTrip(t *testing.T) {
	cases := [][]int{{2}, {3, 2}, {2, 3, 4}, {5, 1, 3}, {2, 2, 2, 2, 3}}
	for _, sizes := range cases {
		r, err := NewRadix(sizes...)
		if err != nil {
			t.Fatal(err)
		}
		if r.K() != len(sizes) {
			t.Fatalf("K = %d, want %d", r.K(), len(sizes))
		}
		for v := 0; v < r.N(); v++ {
			digits := r.AppendDecode(nil, v)
			if len(digits) != len(sizes) {
				t.Fatalf("decode(%d) has %d digits, want %d", v, len(digits), len(sizes))
			}
			for t2, d := range digits {
				if d < 0 || d >= sizes[t2] {
					t.Fatalf("decode(%d) digit %d = %d out of radix %d", v, t2, d, sizes[t2])
				}
				if r.Digit(v, t2) != d {
					t.Fatalf("Digit(%d,%d) = %d, AppendDecode gives %d", v, t2, r.Digit(v, t2), d)
				}
			}
			if back := r.Encode(digits...); back != v {
				t.Fatalf("encode(decode(%d)) = %d", v, back)
			}
		}
	}
}

// TestChainVertexOverflow: four cycle-65536 factors push the vertex count
// to 2·65536⁴ = 2^65 > int64; construction must fail with a typed
// OverflowError before any per-vertex work happens.
func TestChainVertexOverflow(t *testing.T) {
	b := gen.Cycle(65536) // even cycle: connected, bipartite
	_, err := NewChain(gen.Path(2), ModeSelfLoopFactor, b, b, b, b)
	if err == nil {
		t.Fatal("accepted a chain with 2^65 vertices")
	}
	var oe *OverflowError
	if !errors.As(err, &oe) {
		t.Fatalf("error is %T (%v), want *OverflowError", err, err)
	}
	if oe.Quantity != "vertex count" {
		t.Fatalf("overflow quantity %q, want \"vertex count\"", oe.Quantity)
	}
}

// TestChainEdgeOverflow: six biclique-32x32 factors keep the vertex count
// at 2·64⁶ = 2^37 (fits) while the edge count passes 2^63; the layout
// computation must reject it with the typed error.
func TestChainEdgeOverflow(t *testing.T) {
	b := gen.CompleteBipartite(32, 32).Graph
	bs := make([]*graph.Graph, 6)
	for i := range bs {
		bs[i] = b
	}
	_, err := NewChain(gen.Path(2), ModeSelfLoopFactor, bs...)
	if err == nil {
		t.Fatal("accepted a chain with > 2^63 edges")
	}
	var oe *OverflowError
	if !errors.As(err, &oe) {
		t.Fatalf("error is %T (%v), want *OverflowError", err, err)
	}
	if oe.Quantity != "edge count" {
		t.Fatalf("overflow quantity %q, want \"edge count\"", oe.Quantity)
	}
	if oe.Error() == "" || fmt.Sprintf("%v", err) == "" {
		t.Fatal("overflow error must render a message")
	}
}
