package core

import (
	"fmt"

	"kronbip/internal/graph"
)

// Chain builds an iterated Kronecker product
//
//	C = ( … ((A ∘ B₁) ∘ B₂) … ∘ B_k )
//
// where ∘ is the mode-appropriate product at each level: the first level
// uses the requested mode, and every subsequent level uses the self-loop
// construction with the (bipartite) previous product as its A factor —
// the only way to keep stacking bipartite factors while preserving
// connectivity (Thm. 2 applies level by level).  This is the Graph500-style
// "small seed, huge graph" shape of the prior Kronecker ground-truth work
// the paper extends.
//
// Intermediate products are materialized (their size is the product of the
// factor sizes, so chains should use small factors), but the returned
// Product still answers every ground-truth query about the FINAL level in
// closed form from its two effective factors.
func Chain(a *graph.Graph, mode Mode, bs ...*graph.Graph) (*Product, error) {
	if len(bs) == 0 {
		return nil, fmt.Errorf("core: chain needs at least one B factor")
	}
	p, err := New(a, bs[0], mode)
	if err != nil {
		return nil, fmt.Errorf("core: chain level 1: %w", err)
	}
	for lvl, b := range bs[1:] {
		left, err := p.Materialize(0)
		if err != nil {
			return nil, fmt.Errorf("core: chain level %d materialize: %w", lvl+2, err)
		}
		p, err = New(left, b, ModeSelfLoopFactor)
		if err != nil {
			return nil, fmt.Errorf("core: chain level %d: %w", lvl+2, err)
		}
	}
	return p, nil
}

// ChainRelaxed is Chain without the connectivity premises (factors may be
// disconnected); every counting formula remains exact.
func ChainRelaxed(a *graph.Graph, mode Mode, bs ...*graph.Graph) (*Product, error) {
	if len(bs) == 0 {
		return nil, fmt.Errorf("core: chain needs at least one B factor")
	}
	p, err := NewRelaxed(a, bs[0], mode)
	if err != nil {
		return nil, fmt.Errorf("core: chain level 1: %w", err)
	}
	for lvl, b := range bs[1:] {
		left, err := p.Materialize(0)
		if err != nil {
			return nil, fmt.Errorf("core: chain level %d materialize: %w", lvl+2, err)
		}
		p, err = NewRelaxed(left, b, ModeSelfLoopFactor)
		if err != nil {
			return nil, fmt.Errorf("core: chain level %d: %w", lvl+2, err)
		}
	}
	return p, nil
}
