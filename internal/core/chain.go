package core

import (
	"kronbip/internal/graph"
)

// Chain builds an iterated Kronecker product
//
//	C = ( … ((A ∘ B₁) ∘ B₂) … ∘ B_k )
//
// where ∘ is the mode-appropriate product at each level: the first level
// uses the requested mode, and every subsequent level uses the self-loop
// construction with the (bipartite) previous product as its A factor —
// the only way to keep stacking bipartite factors while preserving
// connectivity (Thm. 2 applies level by level).  This is the Graph500-style
// "small seed, huge graph" shape of the prior Kronecker ground-truth work
// the paper extends.
//
// Nothing is materialized: the returned Product is the chained type
// itself, answering every ground-truth query about the final level in
// closed form from O(Σ factor sizes) state, and streaming the final
// level's edges directly from the mixed-radix layout.  (Materialize
// remains available as the explicit, memory-hungry validation oracle.)
//
// Chain is now an alias of NewChain, kept for its historical name.
func Chain(a *graph.Graph, mode Mode, bs ...*graph.Graph) (*Product, error) {
	return NewChain(a, mode, bs...)
}

// ChainRelaxed is Chain without the connectivity premises (factors may be
// disconnected); every counting formula remains exact.
func ChainRelaxed(a *graph.Graph, mode Mode, bs ...*graph.Graph) (*Product, error) {
	return NewChainRelaxed(a, mode, bs...)
}
