package core

import "kronbip/internal/grb"

// VertexFourCyclesExpr returns the Thm. 3/4 per-vertex 4-cycle vector as a
// lazy grb expression over the factor statistics, folded across the chain:
//
//	2·s_C = diag4_C − d_C∘d_C − w2_C + d_C,
//
// where each of the four operand vectors is built level by level — the +I
// lift is the expression rewrite
//
//	diag4 ↦ diag4 + 6d + 1,  w2 ↦ w2 + 2d + 1,  d∘d ↦ d∘d + 2d + 1,  d ↦ d + 1
//
// (ShiftExpr/ScaleExpr nodes over the running d expression) and each ⊗B_t
// step is a KronExpr with the factor's own statistic leaf.
//
// The expression is the GraphBLAS non-blocking-mode view of the same
// ground truth: At(p) samples one vertex in O(K) without materializing
// anything, and Sum()/4 reproduces GlobalFourCycles via the fused
// Σ(x⊗y) = Σx·Σy reduction (every node here — Kron, Add, Sub, Scale,
// Shift — has a sublinear Sum rule).  Note the expression yields 2·s_p;
// the halving is left to the caller because integer expressions have no
// division node (see VertexFourCyclesAt for the eager, already-halved
// form).
func (p *Product) VertexFourCyclesExpr() grb.Expr[int64] {
	// Root-level leaves, already mode-lifted: d_{M₀}, (d∘d)_{M₀}, w2_{M₀},
	// diag4_{M₀}.
	da := p.degA()
	d4a := make([]int64, p.a.N())
	w2a := make([]int64, p.a.N())
	for i := range d4a {
		d4a[i] = p.diag4A(i)
		w2a[i] = p.w2A(i)
	}
	dE := grb.LeafExpr(da)
	d2E := grb.LeafExpr(grb.HadamardVec(da, da))
	w2E := grb.LeafExpr(w2a)
	d4E := grb.LeafExpr(d4a)
	for u, f := range p.bs {
		if u > 0 {
			// The +I lift between chain levels, as expression nodes over
			// the pre-lift degree expression.  dE shifts last: the other
			// three rewrites consume the unlifted d.
			d4E = grb.AddExpr(d4E, grb.ShiftExpr(grb.ScaleExpr[int64](6, dE), 1))
			w2E = grb.AddExpr(w2E, grb.ShiftExpr(grb.ScaleExpr[int64](2, dE), 1))
			d2E = grb.AddExpr(d2E, grb.ShiftExpr(grb.ScaleExpr[int64](2, dE), 1))
			dE = grb.ShiftExpr(dE, 1)
		}
		fd4 := make([]int64, f.N())
		for x := range fd4 {
			fd4[x] = f.diag4(x)
		}
		// d_C ∘ d_C distributes over ⊗ (Prop. 2(e)), keeping the squared
		// term a Kronecker node so Sum() stays sublinear.
		d4E = grb.KronExpr(d4E, grb.LeafExpr(fd4))
		w2E = grb.KronExpr(w2E, grb.LeafExpr(f.W2))
		d2E = grb.KronExpr(d2E, grb.LeafExpr(grb.HadamardVec(f.D, f.D)))
		dE = grb.KronExpr(dE, grb.LeafExpr(f.D))
	}
	return grb.AddExpr(grb.SubExpr(grb.SubExpr(d4E, d2E), w2E), dE)
}
