package core

import "kronbip/internal/grb"

// VertexFourCyclesExpr returns the Thm. 3/4 per-vertex 4-cycle vector as a
// lazy grb expression over the factor statistics:
//
//	2·s_C = diag4_M ⊗ diag4_B − (d_M ⊗ d_B)∘(d_M ⊗ d_B) − w2_M ⊗ w2_B + d_M ⊗ d_B.
//
// The expression is the GraphBLAS non-blocking-mode view of the same
// ground truth: At(p) samples one vertex in O(1) without materializing
// anything, and Sum()/4 reproduces GlobalFourCycles via the fused
// Σ(x⊗y) = Σx·Σy reduction.  Note the expression yields 2·s_p; the halving
// is left to the caller because integer expressions have no division node
// (see VertexFourCyclesAt for the eager, already-halved form).
func (p *Product) VertexFourCyclesExpr() grb.Expr[int64] {
	d4a := make([]int64, p.a.N())
	w2a := make([]int64, p.a.N())
	for i := range d4a {
		d4a[i] = p.diag4A(i)
		w2a[i] = p.w2A(i)
	}
	d4b := make([]int64, p.b.N())
	for k := range d4b {
		d4b[k] = p.b.diag4(k)
	}
	da := p.degA()
	// d_C ∘ d_C rewrites as (d_M∘d_M) ⊗ (d_B∘d_B) by Hadamard–Kronecker
	// distributivity (Prop. 2(e)), keeping every term a Kronecker node so
	// that Sum() stays sublinear.
	dC := grb.KronExpr(grb.LeafExpr(da), grb.LeafExpr(p.b.D))
	dC2 := grb.KronExpr(
		grb.LeafExpr(grb.HadamardVec(da, da)),
		grb.LeafExpr(grb.HadamardVec(p.b.D, p.b.D)),
	)
	return grb.AddExpr(
		grb.SubExpr(
			grb.SubExpr(
				grb.KronExpr(grb.LeafExpr(d4a), grb.LeafExpr(d4b)),
				dC2,
			),
			grb.KronExpr(grb.LeafExpr(w2a), grb.LeafExpr(p.b.W2)),
		),
		dC,
	)
}
