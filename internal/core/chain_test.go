package core

import (
	"testing"

	"kronbip/internal/count"
	"kronbip/internal/gen"
	"kronbip/internal/grb"
)

func TestChainThreeFactors(t *testing.T) {
	// ((P3+I) ⊗ P2) then (· + I) ⊗ P3: 3·2·3 = 18 vertices.
	p, err := Chain(gen.Path(3), ModeSelfLoopFactor, gen.Path(2), gen.Path(3))
	if err != nil {
		t.Fatal(err)
	}
	if p.N() != 18 {
		t.Fatalf("chain n = %d, want 18", p.N())
	}
	g, err := p.Materialize(0)
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsConnected() || !g.IsBipartite() {
		t.Fatal("chained product must stay connected and bipartite (Thm. 2 per level)")
	}
	// Full ground-truth validation of the final level.
	want, err := count.VertexButterflies(g)
	if err != nil {
		t.Fatal(err)
	}
	if !grb.EqualVec(p.VertexFourCycles(), want) {
		t.Fatal("chain vertex 4-cycles disagree with brute force")
	}
	direct, _ := count.GlobalButterflies(g)
	if p.GlobalFourCycles() != direct {
		t.Fatalf("chain global = %d, brute force %d", p.GlobalFourCycles(), direct)
	}
}

func TestChainMode1First(t *testing.T) {
	// First level mode (i): K3 ⊗ P2 = C6, then (C6+I) ⊗ star3.
	p, err := Chain(gen.Complete(3), ModeNonBipartiteFactor, gen.Path(2), gen.Star(3))
	if err != nil {
		t.Fatal(err)
	}
	g, err := p.Materialize(0)
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsConnected() || !g.IsBipartite() {
		t.Fatal("mode-1-rooted chain must stay connected bipartite")
	}
	direct, _ := count.GlobalButterflies(g)
	if p.GlobalFourCycles() != direct {
		t.Fatalf("chain global = %d, brute force %d", p.GlobalFourCycles(), direct)
	}
	// Edge formulas hold on the final level too.
	ok := true
	p.EachEdgeFourCycle(func(v, w int, sq int64) bool {
		d, err := count.EdgeButterfliesAt(g, v, w)
		if err != nil || d != sq {
			ok = false
			return false
		}
		return true
	})
	if !ok {
		t.Fatal("chain edge 4-cycles disagree with brute force")
	}
}

func TestChainValidation(t *testing.T) {
	if _, err := Chain(gen.Path(3), ModeSelfLoopFactor); err == nil {
		t.Fatal("accepted empty chain")
	}
	if _, err := ChainRelaxed(gen.Path(3), ModeSelfLoopFactor); err == nil {
		t.Fatal("relaxed accepted empty chain")
	}
	// Non-bipartite later factor breaks level-2 premises.
	if _, err := Chain(gen.Path(3), ModeSelfLoopFactor, gen.Path(2), gen.Cycle(5)); err == nil {
		t.Fatal("accepted non-bipartite chained factor")
	}
}

func TestChainRelaxedDisconnectedFactor(t *testing.T) {
	disc := gen.DisjointUnion(gen.Path(2), gen.Path(2))
	p, err := ChainRelaxed(gen.Path(2), ModeSelfLoopFactor, disc, gen.Path(2))
	if err != nil {
		t.Fatal(err)
	}
	g, err := p.Materialize(0)
	if err != nil {
		t.Fatal(err)
	}
	direct, _ := count.GlobalButterflies(g)
	if p.GlobalFourCycles() != direct {
		t.Fatal("relaxed chain ground truth wrong")
	}
}
