package core

import (
	"math"
	"testing"

	"kronbip/internal/count"
	"kronbip/internal/gen"
)

func TestEdgeClusteringMatchesDirect(t *testing.T) {
	for _, mode := range []Mode{ModeNonBipartiteFactor, ModeSelfLoopFactor} {
		var p *Product
		var err error
		if mode == ModeNonBipartiteFactor {
			p, err = New(gen.Complete(4), gen.CompleteBipartite(2, 3).Graph, mode)
		} else {
			p, err = New(gen.Cycle(4), gen.CompleteBipartite(2, 3).Graph, mode)
		}
		if err != nil {
			t.Fatal(err)
		}
		g, _ := p.Materialize(0)
		p.EachEdge(func(v, w int) bool {
			gamma, err := p.EdgeClusteringAt(v, w)
			if err != nil {
				t.Fatal(err)
			}
			sq, err := count.EdgeButterfliesAt(g, v, w)
			if err != nil {
				t.Fatal(err)
			}
			dv, dw := g.Degree(v), g.Degree(w)
			var want float64
			if dv > 1 && dw > 1 {
				want = float64(sq) / float64((dv-1)*(dw-1))
			}
			if math.Abs(gamma-want) > 1e-12 {
				t.Fatalf("mode %v: Γ(%d,%d) = %g, direct %g", mode, v, w, gamma, want)
			}
			return true
		})
	}
}

// TestTheorem6ScalingLaw checks Γ_C(p,q) ≥ ψ·Γ_A·Γ_B on every edge of
// several mode-(i) products, and that ψ ∈ [1/9, 1) whenever all four factor
// degrees are ≥ 2.
func TestTheorem6ScalingLaw(t *testing.T) {
	var cases []struct {
		name string
		p    *Product
	}
	for _, spec := range mode1Pairs() {
		p, err := New(spec.a, spec.b, ModeNonBipartiteFactor)
		if err != nil {
			t.Fatal(err)
		}
		cases = append(cases, struct {
			name string
			p    *Product
		}{spec.name, p})
	}
	for _, tc := range cases {
		tc.p.EachEdge(func(v, w int) bool {
			bound, psi, err := tc.p.ClusteringLawBound(v, w)
			if err != nil {
				t.Fatal(err)
			}
			gamma, err := tc.p.EdgeClusteringAt(v, w)
			if err != nil {
				t.Fatal(err)
			}
			if gamma < bound-1e-12 {
				t.Fatalf("%s: Thm 6 violated at (%d,%d): Γ=%g < bound %g", tc.name, v, w, gamma, bound)
			}
			if psi != 0 && (psi < 1.0/9-1e-12 || psi >= 1) {
				t.Fatalf("%s: ψ = %g outside [1/9, 1)", tc.name, psi)
			}
			return true
		})
	}
}

func TestClusteringLawBoundErrors(t *testing.T) {
	p2, _ := New(gen.Path(3), gen.Cycle(4), ModeSelfLoopFactor)
	if _, _, err := p2.ClusteringLawBound(0, 1); err == nil {
		t.Fatal("Thm 6 bound accepted mode (ii) product")
	}
	p1, _ := New(gen.Complete(3), gen.Path(3), ModeNonBipartiteFactor)
	if _, _, err := p1.ClusteringLawBound(0, 0); err == nil {
		t.Fatal("Thm 6 bound accepted non-edge")
	}
}

func TestEdgeClusteringNonEdge(t *testing.T) {
	p, _ := New(gen.Complete(3), gen.Path(3), ModeNonBipartiteFactor)
	if _, err := p.EdgeClusteringAt(0, 0); err == nil {
		t.Fatal("EdgeClusteringAt accepted non-edge")
	}
}
