package core

import (
	"context"
	"fmt"
	"sync"

	"kronbip/internal/graph"
	"kronbip/internal/grb"
)

// Mode selects which of the paper's Assumption 1 constructions the product
// uses.
type Mode int

// Product construction modes.
const (
	// ModeNonBipartiteFactor is Assumption 1(i): C = A ⊗ B with A
	// non-bipartite, B bipartite, both connected and loop-free (Thm. 1).
	ModeNonBipartiteFactor Mode = iota
	// ModeSelfLoopFactor is Assumption 1(ii): C = (A + I_A) ⊗ B with A and
	// B bipartite, connected and loop-free (Thm. 2).
	ModeSelfLoopFactor
)

func (m Mode) String() string {
	switch m {
	case ModeNonBipartiteFactor:
		return "A⊗B (non-bipartite A)"
	case ModeSelfLoopFactor:
		return "(A+I)⊗B (self loops on A)"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Product is a non-stochastic Kronecker product graph described entirely by
// its two factors; the product graph itself is never stored.  Vertex p of C
// pairs factor vertices (i,k) via p = i·n_B + k.
type Product struct {
	mode   Mode
	a, b   *Factor
	colorB []graph.Side // bipartition of B (fixes the bipartition of C)
	nuB    int          // |U_B|
	nwB    int          // |W_B|

	// strict records whether the full Assumption 1 premises (connectivity,
	// and non-bipartiteness of A in mode (i)) were verified at construction.
	strict bool

	// Lazily built factor BFS tables backing the exact distance ground
	// truth (HopsAt, EccentricityAt, Diameter).  Guarded by a mutex
	// rather than sync.Once so a context-cancelled precompute can be
	// retried on the next call.
	distMu sync.Mutex
	dist   *distanceIndex
}

// New constructs a Product and verifies the full premises of Assumption 1
// and Theorems 1–2, so the result is guaranteed connected and bipartite:
//
//	mode (i):  A connected, undirected, non-bipartite; B connected bipartite.
//	mode (ii): A and B connected, undirected, bipartite.
//
// Factors must be loop-free; mode (ii) adds the self loops internally.
func New(a, b *graph.Graph, mode Mode) (*Product, error) {
	p, err := NewRelaxed(a, b, mode)
	if err != nil {
		return nil, err
	}
	if !a.IsConnected() {
		return nil, fmt.Errorf("core: factor A is disconnected; Thm. %d requires connected factors (use NewRelaxed to waive)", mode+1)
	}
	if !b.IsConnected() {
		return nil, fmt.Errorf("core: factor B is disconnected; Thm. %d requires connected factors (use NewRelaxed to waive)", mode+1)
	}
	if mode == ModeNonBipartiteFactor && a.IsBipartite() {
		return nil, fmt.Errorf("core: factor A is bipartite; Assumption 1(i) requires a non-bipartite A or the product is disconnected (use ModeSelfLoopFactor or NewRelaxed)")
	}
	p.strict = true
	return p, nil
}

// NewRelaxed constructs a Product checking only the structural requirements
// the ground-truth formulas need:
//
//   - both factors loop-free and undirected,
//   - B bipartite (so C is bipartite),
//   - mode (ii): A bipartite (the Thm. 4 expansion uses diag(A³) = 0 and
//     A² ∘ A = 0, which need A free of odd closed walks).
//
// Connectivity of the product is NOT guaranteed.  The paper's own Table I
// experiment uses a disconnected unicode factor and needs this constructor.
func NewRelaxed(a, b *graph.Graph, mode Mode) (*Product, error) {
	if mode != ModeNonBipartiteFactor && mode != ModeSelfLoopFactor {
		return nil, fmt.Errorf("core: unknown mode %d", mode)
	}
	fb, err := NewFactor(b)
	if err != nil {
		return nil, fmt.Errorf("core: factor B: %w", err)
	}
	bp, _, ok := b.Bipartition()
	if !ok {
		return nil, fmt.Errorf("core: factor B must be bipartite for the product to be bipartite")
	}
	fa, err := NewFactor(a)
	if err != nil {
		return nil, fmt.Errorf("core: factor A: %w", err)
	}
	if mode == ModeSelfLoopFactor && !a.IsBipartite() {
		return nil, fmt.Errorf("core: mode (A+I)⊗B requires a bipartite A: the Thm. 4 derivation needs diag(A³)=0 and A²∘A=0")
	}
	return &Product{
		mode:   mode,
		a:      fa,
		b:      fb,
		colorB: bp.Color,
		nuB:    len(bp.U),
		nwB:    len(bp.W),
	}, nil
}

// NewWithParts is New with B supplied as a *graph.Bipartite whose declared
// bipartition (rather than a fresh 2-coloring) fixes the product's U_C/W_C
// split.  For disconnected B the two can differ: a BFS 2-coloring picks
// arbitrary sides per component, while datasets such as the paper's unicode
// network carry a semantic side assignment.
func NewWithParts(a *graph.Graph, b *graph.Bipartite, mode Mode) (*Product, error) {
	p, err := New(a, b.Graph, mode)
	if err != nil {
		return nil, err
	}
	return p.withParts(b)
}

// NewRelaxedWithParts is NewRelaxed honoring B's declared bipartition.
func NewRelaxedWithParts(a *graph.Graph, b *graph.Bipartite, mode Mode) (*Product, error) {
	p, err := NewRelaxed(a, b.Graph, mode)
	if err != nil {
		return nil, err
	}
	return p.withParts(b)
}

func (p *Product) withParts(b *graph.Bipartite) (*Product, error) {
	if len(b.Part.Color) != p.b.N() {
		return nil, fmt.Errorf("core: bipartition covers %d vertices, factor B has %d", len(b.Part.Color), p.b.N())
	}
	// The declared coloring must 2-color every B edge.
	valid := true
	b.EachEdge(func(u, v int) bool {
		if b.Part.Color[u] == b.Part.Color[v] {
			valid = false
			return false
		}
		return true
	})
	if !valid {
		return nil, fmt.Errorf("core: declared bipartition does not 2-color factor B")
	}
	p.colorB = b.Part.Color
	p.nuB = len(b.Part.U)
	p.nwB = len(b.Part.W)
	return p, nil
}

// Mode returns the construction mode.
func (p *Product) Mode() Mode { return p.mode }

// FactorA returns the A factor statistics.
func (p *Product) FactorA() *Factor { return p.a }

// FactorB returns the B factor statistics.
func (p *Product) FactorB() *Factor { return p.b }

// N returns |V_C| = n_A · n_B.
func (p *Product) N() int { return p.a.N() * p.b.N() }

// PairOf maps a product vertex to its factor coordinates (the paper's
// α, β maps, 0-based).
func (p *Product) PairOf(v int) (i, k int) { return v / p.b.N(), v % p.b.N() }

// IndexOf maps factor coordinates to the product vertex (the γ map).
func (p *Product) IndexOf(i, k int) int { return i*p.b.N() + k }

// NumEdges returns |E_C| in closed form:
//
//	mode (i):  2·|E_A|·|E_B|        (nnz(A)·nnz(B)/2)
//	mode (ii): (2·|E_A|+n_A)·|E_B|  (nnz(A+I)·nnz(B)/2)
func (p *Product) NumEdges() int64 {
	ea := int64(p.a.G.NumEdges())
	eb := int64(p.b.G.NumEdges())
	switch p.mode {
	case ModeSelfLoopFactor:
		return (2*ea + int64(p.a.N())) * eb
	default:
		return 2 * ea * eb
	}
}

// SideOf returns which part of C's bipartition vertex v belongs to.  The
// product inherits B's bipartition: (i,k) is in U_C iff k ∈ U_B.
func (p *Product) SideOf(v int) graph.Side {
	_, k := p.PairOf(v)
	return p.colorB[k]
}

// PartSizes returns |U_C| = n_A·|U_B| and |W_C| = n_A·|W_B|.
func (p *Product) PartSizes() (nu, nw int) {
	return p.a.N() * p.nuB, p.a.N() * p.nwB
}

// ConnectedByTheorem reports whether the product is guaranteed connected by
// Thm. 1 (mode i) or Thm. 2 (mode ii).  True exactly when the strict
// premises were verified at construction.
func (p *Product) ConnectedByTheorem() bool { return p.strict }

// HasEdge reports whether {v,w} is an edge of C, answered from the factors
// in O(log d) time without materializing anything.
func (p *Product) HasEdge(v, w int) bool {
	i, k := p.PairOf(v)
	j, l := p.PairOf(w)
	aij := p.a.G.HasEdge(i, j) || (p.mode == ModeSelfLoopFactor && i == j)
	return aij && p.b.G.HasEdge(k, l)
}

// DegreeAt returns d_p in O(1):
//
//	mode (i):  d_p = d_i·d_k
//	mode (ii): d_p = (d_i+1)·d_k
func (p *Product) DegreeAt(v int) int64 {
	i, k := p.PairOf(v)
	di := p.a.D[i]
	if p.mode == ModeSelfLoopFactor {
		di++
	}
	return di * p.b.D[k]
}

// Degrees returns the full degree vector d_C = d_M ⊗ d_B.
func (p *Product) Degrees() []int64 {
	return grb.KronVec(p.degA(), p.b.D)
}

// TwoWalksAt returns w⁽²⁾_p, the number of 2-hop walks leaving p:
//
//	mode (i):  w⁽²⁾_i · w⁽²⁾_k
//	mode (ii): (w⁽²⁾_i + 2d_i + 1) · w⁽²⁾_k
func (p *Product) TwoWalksAt(v int) int64 {
	i, k := p.PairOf(v)
	return p.w2A(i) * p.b.W2[k]
}

// TwoWalks returns the full two-walk vector of C.
func (p *Product) TwoWalks() []int64 {
	wa := make([]int64, p.a.N())
	for i := range wa {
		wa[i] = p.w2A(i)
	}
	return grb.KronVec(wa, p.b.W2)
}

// degA returns the degree vector of the effective left factor M
// (A or A+I).
func (p *Product) degA() []int64 {
	if p.mode == ModeSelfLoopFactor {
		return grb.ShiftVec(p.a.D, 1)
	}
	return p.a.D
}

// w2A returns ((M²)·1)_i for the effective left factor: (A+I)²·1 =
// (A² + 2A + I)·1 = w⁽²⁾ + 2d + 1 in mode (ii).
func (p *Product) w2A(i int) int64 {
	if p.mode == ModeSelfLoopFactor {
		return p.a.W2[i] + 2*p.a.D[i] + 1
	}
	return p.a.W2[i]
}

// Materialize builds the explicit product graph via the grb Kronecker
// kernel — O(nnz(A)·nnz(B)) time and memory — for validation and testing.
// workers <= 0 selects GOMAXPROCS.
func (p *Product) Materialize(workers int) (*graph.Graph, error) {
	return p.MaterializeContext(context.Background(), workers)
}

// MaterializeContext is Materialize under a context: the Kronecker kernel
// runs on the shared exec engine, so cancellation aborts the build promptly
// with ctx.Err().
func (p *Product) MaterializeContext(ctx context.Context, workers int) (*graph.Graph, error) {
	ma := p.a.G.Adjacency()
	if p.mode == ModeSelfLoopFactor {
		ma = p.a.G.WithFullSelfLoops().Adjacency()
	}
	c, err := grb.KronParallelContext(ctx, ma, p.b.G.Adjacency(), workers)
	if err != nil {
		return nil, err
	}
	return graph.FromAdjacency(c)
}

// EachEdge streams every undirected edge {v,w} of C exactly once, in
// deterministic order, without materializing the product.  Each factor-edge
// pair ({i,j}, {k,l}) contributes two product edges (i,k)–(j,l) and
// (i,l)–(j,k); in mode (ii) each (self loop i, {k,l}) contributes
// (i,k)–(i,l).  Iteration stops early if yield returns false.
func (p *Product) EachEdge(yield func(v, w int) bool) {
	p.streamRows(0, p.numRows(), yield)
}

// String summarizes the product.
func (p *Product) String() string {
	nu, nw := p.PartSizes()
	return fmt.Sprintf("KroneckerProduct{mode=%v, n=%d (|U|=%d |W|=%d), m=%d}",
		p.mode, p.N(), nu, nw, p.NumEdges())
}
