package core

import (
	"context"
	"fmt"
	"sync"

	"kronbip/internal/graph"
	"kronbip/internal/grb"
)

// Mode selects which of the paper's Assumption 1 constructions the product
// uses.
type Mode int

// Product construction modes.
const (
	// ModeNonBipartiteFactor is Assumption 1(i): C = A ⊗ B with A
	// non-bipartite, B bipartite, both connected and loop-free (Thm. 1).
	ModeNonBipartiteFactor Mode = iota
	// ModeSelfLoopFactor is Assumption 1(ii): C = (A + I_A) ⊗ B with A and
	// B bipartite, connected and loop-free (Thm. 2).
	ModeSelfLoopFactor
)

func (m Mode) String() string {
	switch m {
	case ModeNonBipartiteFactor:
		return "A⊗B (non-bipartite A)"
	case ModeSelfLoopFactor:
		return "(A+I)⊗B (self loops on A)"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Product is a non-stochastic Kronecker factor chain
//
//	C₁ = M₀ ⊗ B₁,   C_t = (C_{t-1} + I) ⊗ B_t   (t ≥ 2),
//
// where M₀ is A (mode (i)) or A+I_A (mode (ii)), described entirely by its
// factors; no level of the chain is ever stored.  The classic two-factor
// product is the K = 1 case of this type.  Vertices are mixed-radix digit
// tuples (i, k₁, …, k_K) over the factor sizes (see Radix); for K = 1 this
// is the historical pairing p = i·n_B + k.
//
// Every ground-truth formula composes across the chain: edge counts and
// 4-cycle diagonals are per-level products (with a +I lift between levels),
// the degree histogram is a K-fold multiplicative convolution, distances
// fold as parity-rounded maxima, and the spectral radius is a product of
// factor radii.  The chain's closed-form sizes are overflow-checked at
// construction (see OverflowError), so a spec that cannot be generated is
// rejected before any work happens.
type Product struct {
	mode Mode
	a    *Factor
	bs   []*Factor // B₁ … B_K, K >= 1
	rad  Radix     // digit sizes (n_A, n_B1, …, n_BK)

	colorB []graph.Side // bipartition of the last factor (fixes C's bipartition)
	nuB    int          // |U_{B_K}|
	nwB    int          // |W_{B_K}|

	// strict records whether the full Assumption 1 premises (connectivity,
	// and non-bipartiteness of A in mode (i)) were verified at construction,
	// at every chain level.
	strict bool

	// Closed forms fixed at construction (all overflow-checked):
	nEdges int64 // |E_C|

	// Shard layout: rows of term t occupy [termOff[t], termOff[t+1]), each
	// emitting termPer[t] product edges.  Term 0 rows are A edges; term
	// t >= 1 rows are the +I self loops of the level-(t-1) prefix (term 1
	// exists only in mode (ii)).
	termOff []int
	termPer []int64

	// Vertex-statistic sums over the final level, for the sublinear global
	// 4-cycle count: Σd, Σd², Σw⁽²⁾, Σdiag(C⁴).
	sumD, sumD2, sumW2, sumDiag4 int64

	// Lazily built factor BFS tables backing the exact distance ground
	// truth (HopsAt, EccentricityAt, Diameter).  Guarded by a mutex
	// rather than sync.Once so a context-cancelled precompute can be
	// retried on the next call.
	distMu sync.Mutex
	dist   *distanceIndex
}

// New constructs a two-factor Product (the K = 1 chain) and verifies the
// full premises of Assumption 1 and Theorems 1–2, so the result is
// guaranteed connected and bipartite:
//
//	mode (i):  A connected, undirected, non-bipartite; B connected bipartite.
//	mode (ii): A and B connected, undirected, bipartite.
//
// Factors must be loop-free; mode (ii) adds the self loops internally.
func New(a, b *graph.Graph, mode Mode) (*Product, error) {
	return newChain(a, mode, []*graph.Graph{b}, true)
}

// NewRelaxed constructs a two-factor Product checking only the structural
// requirements the ground-truth formulas need:
//
//   - both factors loop-free and undirected,
//   - B bipartite (so C is bipartite),
//   - mode (ii): A bipartite (the Thm. 4 expansion uses diag(A³) = 0 and
//     A² ∘ A = 0, which need A free of odd closed walks).
//
// Connectivity of the product is NOT guaranteed.  The paper's own Table I
// experiment uses a disconnected unicode factor and needs this constructor.
func NewRelaxed(a, b *graph.Graph, mode Mode) (*Product, error) {
	return newChain(a, mode, []*graph.Graph{b}, false)
}

// NewChain constructs the K-factor chain C = A ⊗ B₁ ⊗ … ⊗ B_K (every
// level past the first uses the self-loop construction, the only way to
// keep stacking bipartite factors while preserving connectivity — Thm. 2
// applies level by level).  The strict premises are verified for every
// level: A as in New, every B_t connected and bipartite.  No intermediate
// level is ever materialized; memory stays O(Σ factor sizes).
func NewChain(a *graph.Graph, mode Mode, bs ...*graph.Graph) (*Product, error) {
	return newChain(a, mode, bs, true)
}

// NewChainRelaxed is NewChain without the connectivity premises (factors
// may be disconnected); every counting formula remains exact.
func NewChainRelaxed(a *graph.Graph, mode Mode, bs ...*graph.Graph) (*Product, error) {
	return newChain(a, mode, bs, false)
}

// NewWithParts is New with B supplied as a *graph.Bipartite whose declared
// bipartition (rather than a fresh 2-coloring) fixes the product's U_C/W_C
// split.  For disconnected B the two can differ: a BFS 2-coloring picks
// arbitrary sides per component, while datasets such as the paper's unicode
// network carry a semantic side assignment.
func NewWithParts(a *graph.Graph, b *graph.Bipartite, mode Mode) (*Product, error) {
	return NewChainWithParts(a, mode, b)
}

// NewRelaxedWithParts is NewRelaxed honoring B's declared bipartition.
func NewRelaxedWithParts(a *graph.Graph, b *graph.Bipartite, mode Mode) (*Product, error) {
	return NewChainRelaxedWithParts(a, mode, b)
}

// NewChainWithParts is NewChain with the B factors supplied as declared
// bipartite graphs.  The LAST factor's declared bipartition fixes the
// product's U_C/W_C split (the product inherits B_K's sides); earlier
// declared partitions do not influence any closed form.
func NewChainWithParts(a *graph.Graph, mode Mode, bs ...*graph.Bipartite) (*Product, error) {
	return newChainWithParts(a, mode, bs, true)
}

// NewChainRelaxedWithParts is NewChainWithParts without the connectivity
// premises.
func NewChainRelaxedWithParts(a *graph.Graph, mode Mode, bs ...*graph.Bipartite) (*Product, error) {
	return newChainWithParts(a, mode, bs, false)
}

func newChainWithParts(a *graph.Graph, mode Mode, bs []*graph.Bipartite, strict bool) (*Product, error) {
	gs := make([]*graph.Graph, len(bs))
	for t, b := range bs {
		gs[t] = b.Graph
	}
	p, err := newChain(a, mode, gs, strict)
	if err != nil {
		return nil, err
	}
	return p.withParts(bs[len(bs)-1])
}

// bName names factor B_t in error messages: "B" for a two-factor product
// (the historical wording), "B<t>" inside a longer chain.
func bName(t, k int) string {
	if k == 1 {
		return "B"
	}
	return fmt.Sprintf("B%d", t+1)
}

func newChain(a *graph.Graph, mode Mode, bs []*graph.Graph, strict bool) (*Product, error) {
	if mode != ModeNonBipartiteFactor && mode != ModeSelfLoopFactor {
		return nil, fmt.Errorf("core: unknown mode %d", mode)
	}
	if len(bs) == 0 {
		return nil, fmt.Errorf("core: chain needs at least one B factor")
	}
	k := len(bs)
	fbs := make([]*Factor, k)
	var lastPart *graph.Bipartition
	for t, b := range bs {
		fb, err := NewFactor(b)
		if err != nil {
			return nil, fmt.Errorf("core: factor %s: %w", bName(t, k), err)
		}
		// Every right factor must be bipartite: B₁ so C₁ is bipartite, and
		// each later B_t because level t is a mode-(ii) product whose left
		// operand C_{t-1}+I must stay the lazy lift of a bipartite graph.
		bp, _, ok := b.Bipartition()
		if !ok {
			return nil, fmt.Errorf("core: factor %s must be bipartite for the product to be bipartite", bName(t, k))
		}
		fbs[t] = fb
		if t == k-1 {
			lastPart = bp
		}
	}
	fa, err := NewFactor(a)
	if err != nil {
		return nil, fmt.Errorf("core: factor A: %w", err)
	}
	if mode == ModeSelfLoopFactor && !a.IsBipartite() {
		return nil, fmt.Errorf("core: mode (A+I)⊗B requires a bipartite A: the Thm. 4 derivation needs diag(A³)=0 and A²∘A=0")
	}
	if strict {
		if !a.IsConnected() {
			return nil, fmt.Errorf("core: factor A is disconnected; Thm. %d requires connected factors (use NewRelaxed to waive)", mode+1)
		}
		for t, b := range bs {
			if !b.IsConnected() {
				return nil, fmt.Errorf("core: factor %s is disconnected; Thm. %d requires connected factors (use NewRelaxed to waive)", bName(t, k), mode+1)
			}
		}
		if mode == ModeNonBipartiteFactor && a.IsBipartite() {
			return nil, fmt.Errorf("core: factor A is bipartite; Assumption 1(i) requires a non-bipartite A or the product is disconnected (use ModeSelfLoopFactor or NewRelaxed)")
		}
	}
	sizes := make([]int, 0, k+1)
	sizes = append(sizes, a.N())
	for _, b := range bs {
		sizes = append(sizes, b.N())
	}
	rad, err := NewRadix(sizes...)
	if err != nil {
		return nil, err
	}
	p := &Product{
		mode:   mode,
		a:      fa,
		bs:     fbs,
		rad:    rad,
		colorB: lastPart.Color,
		nuB:    len(lastPart.U),
		nwB:    len(lastPart.W),
		strict: strict,
	}
	if err := p.computeLayout(); err != nil {
		return nil, err
	}
	p.computeGlobalSums()
	return p, nil
}

// computeLayout fixes the chain's closed-form edge count and shard row
// layout, guarding every step against int64/int overflow.
//
// Expanding the chain recursion, C_K is a sum of K+1 Kronecker terms:
//
//	term 0:      A ⊗ B₁ ⊗ … ⊗ B_K
//	term 1:      I_{n_A} ⊗ B₁ ⊗ … ⊗ B_K          (mode (ii) only)
//	term t >= 2: I_{N_{t-1}} ⊗ B_t ⊗ … ⊗ B_K      (N_{t-1} = |V_{C_{t-1}}|)
//
// Rows of term 0 are the A edges, each emitting 2^K·∏|E_{B_u}| product
// edges; rows of term t are the prefix vertices, each emitting
// |E_{B_t}|·∏_{u>t} 2|E_{B_u}| edges.
func (p *Product) computeLayout() error {
	k := len(p.bs)
	overflow := func(q string) error {
		return &OverflowError{Quantity: q, Detail: fmt.Sprintf("mode %v, factor sizes %v", p.mode, p.factorSizes())}
	}
	// suffix[t] = ∏_{u >= t} 2·|E_{B_u}|, the edge multiplicity of the
	// both-orientation levels below t.
	suffix := make([]int64, k+2)
	suffix[k+1] = 1
	for t := k; t >= 1; t-- {
		s, ok := mulInt64(2*int64(p.bs[t-1].G.NumEdges()), suffix[t+1])
		if !ok {
			return overflow("edge count")
		}
		suffix[t] = s
	}
	rows := make([]int64, k+1)
	per := make([]int64, k+1)
	rows[0] = int64(p.a.G.NumEdges())
	per[0] = suffix[1]
	prefixN := int64(p.a.N()) // N_{t-1} while processing level t
	for t := 1; t <= k; t++ {
		v, ok := mulInt64(int64(p.bs[t-1].G.NumEdges()), suffix[t+1])
		if !ok {
			return overflow("edge count")
		}
		per[t] = v
		if t >= 2 || p.mode == ModeSelfLoopFactor {
			rows[t] = prefixN
		}
		prefixN *= int64(p.bs[t-1].N()) // bounded by rad.N(), cannot overflow
	}
	p.termOff = make([]int, k+2)
	p.termPer = per
	var totalRows, edges int64
	for t := 0; t <= k; t++ {
		var ok bool
		if totalRows, ok = addInt64(totalRows, rows[t]); !ok || totalRows > int64(maxInt) {
			return overflow("stream row count")
		}
		p.termOff[t+1] = int(totalRows)
		c, ok := mulInt64(rows[t], per[t])
		if !ok {
			return overflow("edge count")
		}
		if edges, ok = addInt64(edges, c); !ok {
			return overflow("edge count")
		}
	}
	p.nEdges = edges
	return nil
}

// computeGlobalSums folds the per-level vertex-statistic sums that make
// GlobalFourCycles sublinear: for each level the +I lift shifts the sums
// (Σd ↦ Σd + N, Σd² ↦ Σd² + 2Σd + N, Σw⁽²⁾ ↦ Σw⁽²⁾ + 2Σd + N,
// Σdiag⁴ ↦ Σdiag⁴ + 6Σd + N) and the ⊗B_t step multiplies them by the
// factor's own sums (Σ(x ⊗ y) = Σx·Σy).
func (p *Product) computeGlobalSums() {
	var sD, sD2, sW2, sD4 int64
	for i := 0; i < p.a.N(); i++ {
		d, w2, d4 := p.a.D[i], p.a.W2[i], p.a.diag4(i)
		if p.mode == ModeSelfLoopFactor {
			d4 += 6*d + 1
			w2 += 2*d + 1
			d++
		}
		sD += d
		sD2 += d * d
		sW2 += w2
		sD4 += d4
	}
	prefixN := int64(p.a.N())
	for t, f := range p.bs {
		if t > 0 {
			sD4 += 6*sD + prefixN
			sW2 += 2*sD + prefixN
			sD2 += 2*sD + prefixN
			sD += prefixN
		}
		var bD, bD2, bW2, bD4 int64
		for x := 0; x < f.N(); x++ {
			bD += f.D[x]
			bD2 += f.D[x] * f.D[x]
			bW2 += f.W2[x]
			bD4 += f.diag4(x)
		}
		sD *= bD
		sD2 *= bD2
		sW2 *= bW2
		sD4 *= bD4
		prefixN *= int64(f.N())
	}
	p.sumD, p.sumD2, p.sumW2, p.sumDiag4 = sD, sD2, sW2, sD4
}

func (p *Product) factorSizes() []int {
	sizes := make([]int, 0, len(p.bs)+1)
	sizes = append(sizes, p.a.N())
	for _, f := range p.bs {
		sizes = append(sizes, f.N())
	}
	return sizes
}

func (p *Product) withParts(b *graph.Bipartite) (*Product, error) {
	last := p.bs[len(p.bs)-1]
	if len(b.Part.Color) != last.N() {
		return nil, fmt.Errorf("core: bipartition covers %d vertices, factor %s has %d", len(b.Part.Color), bName(len(p.bs)-1, len(p.bs)), last.N())
	}
	// The declared coloring must 2-color every edge of the last factor.
	valid := true
	b.EachEdge(func(u, v int) bool {
		if b.Part.Color[u] == b.Part.Color[v] {
			valid = false
			return false
		}
		return true
	})
	if !valid {
		return nil, fmt.Errorf("core: declared bipartition does not 2-color factor %s", bName(len(p.bs)-1, len(p.bs)))
	}
	p.colorB = b.Part.Color
	p.nuB = len(b.Part.U)
	p.nwB = len(b.Part.W)
	return p, nil
}

// Mode returns the construction mode.
func (p *Product) Mode() Mode { return p.mode }

// FactorA returns the A factor statistics.
func (p *Product) FactorA() *Factor { return p.a }

// FactorB returns the LAST right-factor statistics (B for a two-factor
// product, B_K for a chain).  The product inherits this factor's
// bipartition.
func (p *Product) FactorB() *Factor { return p.bs[len(p.bs)-1] }

// Factors returns the full factor list (A, B₁, …, B_K).
func (p *Product) Factors() []*Factor {
	out := make([]*Factor, 0, len(p.bs)+1)
	out = append(out, p.a)
	return append(out, p.bs...)
}

// Arity returns the number of factors in the chain (2 for the classic
// two-factor product).
func (p *Product) Arity() int { return len(p.bs) + 1 }

// Radix returns the mixed-radix vertex layout.
func (p *Product) Radix() Radix { return p.rad }

// N returns |V_C| = n_A · ∏ n_{B_t}.
func (p *Product) N() int { return p.rad.N() }

// PairOf maps a product vertex to its top-level coordinates: the prefix
// vertex (a C_{K-1} vertex, or an A vertex for K = 1) and the last-factor
// digit.  For two-factor products this is exactly the paper's α, β maps
// (0-based).  DigitsOf exposes the full mixed-radix tuple.
func (p *Product) PairOf(v int) (i, k int) {
	n := p.FactorB().N()
	return v / n, v % n
}

// IndexOf maps top-level coordinates to the product vertex (the γ map).
func (p *Product) IndexOf(i, k int) int { return i*p.FactorB().N() + k }

// DigitsOf returns the full mixed-radix digit tuple (i, k₁, …, k_K) of a
// product vertex.
func (p *Product) DigitsOf(v int) []int {
	return p.rad.AppendDecode(make([]int, 0, p.rad.K()), v)
}

// VertexOf is the inverse of DigitsOf.
func (p *Product) VertexOf(digits ...int) int { return p.rad.Encode(digits...) }

// NumEdges returns |E_C| in closed form; for K = 1:
//
//	mode (i):  2·|E_A|·|E_B|        (nnz(A)·nnz(B)/2)
//	mode (ii): (2·|E_A|+n_A)·|E_B|  (nnz(A+I)·nnz(B)/2)
//
// and for chains the recursion |E_{C_t}| = (2·|E_{C_{t-1}}|+N_{t-1})·|E_{B_t}|,
// precomputed (and overflow-checked) at construction.
func (p *Product) NumEdges() int64 { return p.nEdges }

// SideOf returns which part of C's bipartition vertex v belongs to.  The
// product inherits the last factor's bipartition: a vertex is in U_C iff
// its last digit is in U_{B_K}.
func (p *Product) SideOf(v int) graph.Side {
	return p.colorB[v%p.FactorB().N()]
}

// PartSizes returns |U_C| and |W_C|: (N/n_{B_K})·|U_{B_K}| and
// (N/n_{B_K})·|W_{B_K}|.
func (p *Product) PartSizes() (nu, nw int) {
	pre := p.rad.N() / p.FactorB().N()
	return pre * p.nuB, pre * p.nwB
}

// ConnectedByTheorem reports whether the product is guaranteed connected by
// Thm. 1 (mode i) or Thm. 2 (mode ii), applied at every chain level.  True
// exactly when the strict premises were verified at construction.
func (p *Product) ConnectedByTheorem() bool { return p.strict }

// HasEdge reports whether {v,w} is an edge of C, answered from the factors
// in O(K·log d) without materializing anything.  In the term expansion
// (see computeLayout) only the term anchored at the first differing digit
// level can contribute: a level-0 difference needs an A edge, a level-1
// difference needs the mode-(ii) I_{n_A} term, and a level-t difference
// (t >= 2) rides the I ⊗ B_t ⊗ … term; below the anchor every level must
// hold a B edge.
func (p *Product) HasEdge(v, w int) bool {
	if v < 0 || w < 0 || v >= p.rad.N() || w >= p.rad.N() {
		return false
	}
	k := len(p.bs)
	t := 0
	for t <= k && p.rad.Digit(v, t) == p.rad.Digit(w, t) {
		t++
	}
	if t > k { // v == w: products of loop-free factors have no self loops
		return false
	}
	switch {
	case t == 0:
		if !p.a.G.HasEdge(p.rad.Digit(v, 0), p.rad.Digit(w, 0)) {
			return false
		}
		t = 1
	case t == 1 && p.mode != ModeSelfLoopFactor:
		return false
	}
	for u := t; u <= k; u++ {
		if !p.bs[u-1].G.HasEdge(p.rad.Digit(v, u), p.rad.Digit(w, u)) {
			return false
		}
	}
	return true
}

// DegreeAt returns d_v in O(K) from the digit tuple: the M₀ degree of the
// leading digit, then per level a +1 lift (the +I) followed by the factor
// degree product; for K = 1 this is the paper's d_p = d_i·d_k (mode (i))
// or (d_i+1)·d_k (mode (ii)).
func (p *Product) DegreeAt(v int) int64 {
	d := p.a.D[p.rad.Digit(v, 0)]
	lift := p.mode == ModeSelfLoopFactor
	for u, f := range p.bs {
		if lift {
			d++
		}
		d *= f.D[p.rad.Digit(v, u+1)]
		lift = true
	}
	return d
}

// vertexStats folds (d, w⁽²⁾, diag(C⁴)) at one vertex across the chain in
// O(K): the +I lift maps (d, w2, d4) to (d+1, w2+2d+1, d4+6d+1) — the
// bipartite loop-free shift identities behind Thm. 4 — and each ⊗B_t step
// multiplies componentwise by the factor's values.
func (p *Product) vertexStats(v int) (d, w2, d4 int64) {
	i := p.rad.Digit(v, 0)
	d, w2, d4 = p.a.D[i], p.a.W2[i], p.a.diag4(i)
	lift := p.mode == ModeSelfLoopFactor
	for u, f := range p.bs {
		if lift {
			d4 += 6*d + 1
			w2 += 2*d + 1
			d++
		}
		x := p.rad.Digit(v, u+1)
		d *= f.D[x]
		w2 *= f.W2[x]
		d4 *= f.diag4(x)
		lift = true
	}
	return d, w2, d4
}

// Degrees returns the full degree vector d_C, folded level by level
// (d_M ⊗ d_{B_1}, lifted and crossed with each later factor).
func (p *Product) Degrees() []int64 {
	cur := p.degA()
	for u, f := range p.bs {
		if u > 0 {
			cur = grb.ShiftVec(cur, 1)
		}
		cur = grb.KronVec(cur, f.D)
	}
	return cur
}

// TwoWalksAt returns w⁽²⁾_v, the number of 2-hop walks leaving v; for
// K = 1 this is the paper's w⁽²⁾_i·w⁽²⁾_k (mode (i)) or
// (w⁽²⁾_i + 2d_i + 1)·w⁽²⁾_k (mode (ii)).
func (p *Product) TwoWalksAt(v int) int64 {
	_, w2, _ := p.vertexStats(v)
	return w2
}

// TwoWalks returns the full two-walk vector of C.
func (p *Product) TwoWalks() []int64 {
	dv := append([]int64(nil), p.a.D...)
	wv := append([]int64(nil), p.a.W2...)
	lift := p.mode == ModeSelfLoopFactor
	for _, f := range p.bs {
		if lift {
			for i := range wv {
				wv[i] += 2*dv[i] + 1
				dv[i]++
			}
		}
		wv = grb.KronVec(wv, f.W2)
		dv = grb.KronVec(dv, f.D)
		lift = true
	}
	return wv
}

// degA returns the degree vector of the effective root factor M₀
// (A or A+I).
func (p *Product) degA() []int64 {
	if p.mode == ModeSelfLoopFactor {
		return grb.ShiftVec(p.a.D, 1)
	}
	return p.a.D
}

// w2A returns ((M₀²)·1)_i for the effective root factor: (A+I)²·1 =
// (A² + 2A + I)·1 = w⁽²⁾ + 2d + 1 in mode (ii).
func (p *Product) w2A(i int) int64 {
	if p.mode == ModeSelfLoopFactor {
		return p.a.W2[i] + 2*p.a.D[i] + 1
	}
	return p.a.W2[i]
}

// Materialize builds the explicit product graph via the grb Kronecker
// kernel, level by level — O(|E_C|) time and memory — for validation and
// testing only; it is the one code path that stores intermediate levels.
// workers <= 0 selects GOMAXPROCS.
func (p *Product) Materialize(workers int) (*graph.Graph, error) {
	return p.MaterializeContext(context.Background(), workers)
}

// MaterializeContext is Materialize under a context: the Kronecker kernels
// run on the shared exec engine, so cancellation aborts the build promptly
// with ctx.Err().
func (p *Product) MaterializeContext(ctx context.Context, workers int) (*graph.Graph, error) {
	ma := p.a.G.Adjacency()
	if p.mode == ModeSelfLoopFactor {
		ma = p.a.G.WithFullSelfLoops().Adjacency()
	}
	cur, err := grb.KronParallelContext(ctx, ma, p.bs[0].G.Adjacency(), workers)
	if err != nil {
		return nil, err
	}
	for _, f := range p.bs[1:] {
		g, err := graph.FromAdjacency(cur)
		if err != nil {
			return nil, err
		}
		cur, err = grb.KronParallelContext(ctx, g.WithFullSelfLoops().Adjacency(), f.G.Adjacency(), workers)
		if err != nil {
			return nil, err
		}
	}
	return graph.FromAdjacency(cur)
}

// EachEdge streams every undirected edge {v,w} of C exactly once, in
// deterministic order, without materializing the product.  Each factor-edge
// pair ({i,j}, {k,l}) contributes two product edges (i,k)–(j,l) and
// (i,l)–(j,k) per level; self-loop rows contribute one orientation at
// their anchor level.  Iteration stops early if yield returns false.
func (p *Product) EachEdge(yield func(v, w int) bool) {
	p.streamRows(0, p.numRows(), yield)
}

// String summarizes the product.
func (p *Product) String() string {
	nu, nw := p.PartSizes()
	return fmt.Sprintf("KroneckerProduct{mode=%v, factors=%d, n=%d (|U|=%d |W|=%d), m=%d}",
		p.mode, p.Arity(), p.N(), nu, nw, p.NumEdges())
}
