package core

import (
	"testing"

	"kronbip/internal/gen"
)

func TestVertexFourCyclesExprMatchesEager(t *testing.T) {
	for _, tc := range mode1Pairs() {
		p, err := New(tc.a, tc.b, ModeNonBipartiteFactor)
		if err != nil {
			t.Fatal(err)
		}
		checkExpr(t, "mode1 "+tc.name, p)
	}
	for _, tc := range mode2Pairs() {
		p, err := New(tc.a, tc.b, ModeSelfLoopFactor)
		if err != nil {
			t.Fatal(err)
		}
		checkExpr(t, "mode2 "+tc.name, p)
	}
}

func checkExpr(t *testing.T, name string, p *Product) {
	t.Helper()
	e := p.VertexFourCyclesExpr()
	if e.Len() != p.N() {
		t.Fatalf("%s: expr length %d, want %d", name, e.Len(), p.N())
	}
	for v := 0; v < p.N(); v++ {
		if e.At(v) != 2*p.VertexFourCyclesAt(v) {
			t.Fatalf("%s: expr At(%d) = %d, want %d", name, v, e.At(v), 2*p.VertexFourCyclesAt(v))
		}
	}
	if e.Sum() != 8*p.GlobalFourCycles() {
		t.Fatalf("%s: expr Sum = %d, want %d", name, e.Sum(), 8*p.GlobalFourCycles())
	}
}

// TestVertexFourCyclesExprSamplingScale demonstrates the paper's sampling
// claim: point-evaluating ground truth on the 753k-vertex Table I product
// without materializing any product-sized vector.
func TestVertexFourCyclesExprSamplingScale(t *testing.T) {
	a := gen.UnicodeLike(2020)
	p, err := NewRelaxedWithParts(a.Graph, a, ModeSelfLoopFactor)
	if err != nil {
		t.Fatal(err)
	}
	e := p.VertexFourCyclesExpr()
	for _, v := range []int{0, 12345, 99999, p.N() - 1} {
		if e.At(v) != 2*p.VertexFourCyclesAt(v) {
			t.Fatalf("expr sample at %d wrong", v)
		}
	}
	if e.Sum() != 8*p.GlobalFourCycles() {
		t.Fatal("fused sum disagrees with closed form")
	}
}
