package core

import "fmt"

// This file implements the paper's ground-truth formulas (Thm. 3–5) plus
// the derived mode-(ii) edge formula and sublinear global counts.
//
// Erratum note: the printed statement of Thm. 4 carries the d_C and d_C²
// terms with swapped signs relative to the paper's own proof (which expands
// s_C = ½(diag(C⁴) − d_C∘d_C − C²·1 + C·1), so the correct signs are
// −d_C∘d_C and +d_C).  Similarly the printed 13-term point-wise expansion
// of Thm. 5 omits a "+2" constant (take A=K₃, B=K₂: C=C₆ is 4-cycle-free
// and the printed expansion yields −2 per edge).  We implement the
// proof-consistent forms; the test suite validates them against three
// independent brute-force counters.

// VertexFourCyclesAt returns s_p, the number of 4-cycles through product
// vertex p, in O(1) from factor statistics (Thm. 3 / Thm. 4):
//
//	s_p = ½ ( diag(C⁴)_p − d_p² − w⁽²⁾_p + d_p ).
func (p *Product) VertexFourCyclesAt(v int) int64 {
	i, k := p.PairOf(v)
	diag4 := p.diag4A(i) * p.b.diag4(k)
	d := p.DegreeAt(v)
	w2 := p.TwoWalksAt(v)
	s2 := diag4 - d*d - w2 + d
	return s2 / 2
}

// diag4A returns diag(M⁴)_i for the effective left factor M:
//
//	mode (i):  diag(A⁴)_i  = 2s_i + d_i² + w⁽²⁾_i − d_i
//	mode (ii): diag((A+I)⁴)_i = diag(A⁴)_i + 6d_i + 1
//	                          = 2s_i + d_i² + w⁽²⁾_i + 5d_i + 1
//
// (mode (ii) uses diag(A³) = diag(A) = 0 for bipartite loop-free A).
func (p *Product) diag4A(i int) int64 {
	d4 := p.a.diag4(i)
	if p.mode == ModeSelfLoopFactor {
		d4 += 6*p.a.D[i] + 1
	}
	return d4
}

// VertexFourCycles returns the full vector s_C via the Kronecker vector
// identity of Thm. 3/4 — four vector Kronecker products, O(|V_C|) time.
func (p *Product) VertexFourCycles() []int64 {
	n := p.N()
	out := make([]int64, n)
	nb := p.b.N()
	// Precompute per-factor slots once; the inner loop is then pure
	// arithmetic (this is the linear-time local ground truth of §I).
	d4a := make([]int64, p.a.N())
	w2a := make([]int64, p.a.N())
	da := p.degA()
	for i := range d4a {
		d4a[i] = p.diag4A(i)
		w2a[i] = p.w2A(i)
	}
	d4b := make([]int64, nb)
	for k := range d4b {
		d4b[k] = p.b.diag4(k)
	}
	for i := 0; i < p.a.N(); i++ {
		base := i * nb
		for k := 0; k < nb; k++ {
			d := da[i] * p.b.D[k]
			w2 := w2a[i] * p.b.W2[k]
			out[base+k] = (d4a[i]*d4b[k] - d*d - w2 + d) / 2
		}
	}
	return out
}

// GlobalFourCycles returns the total number of distinct 4-cycles in C in
// O(n_A + n_B) time given the factor statistics: every term of Thm. 3/4 is
// a Kronecker product of factor vectors, and Σ(x ⊗ y) = Σx · Σy, so the
// sum of s_C — which is 4·□(C), each 4-cycle touching 4 vertices —
// factorizes (the paper's "global scalar quantities are computed
// sublinearly" claim).
func (p *Product) GlobalFourCycles() int64 {
	var sumD4A, sumD2A, sumW2A, sumDA int64
	da := p.degA()
	for i := 0; i < p.a.N(); i++ {
		sumD4A += p.diag4A(i)
		sumD2A += da[i] * da[i]
		sumW2A += p.w2A(i)
		sumDA += da[i]
	}
	var sumD4B, sumD2B, sumW2B, sumDB int64
	for k := 0; k < p.b.N(); k++ {
		sumD4B += p.b.diag4(k)
		sumD2B += p.b.D[k] * p.b.D[k]
		sumW2B += p.b.W2[k]
		sumDB += p.b.D[k]
	}
	twiceSum := sumD4A*sumD4B - sumD2A*sumD2B - sumW2A*sumW2B + sumDA*sumDB
	return twiceSum / 8 // ½ for s_C, then Σs_C = 4·□(C)
}

// EdgeFourCyclesAt returns ◊_pq, the number of 4-cycles through product
// edge {v,w}, in O(log d) (the factor-edge lookups).  It errors if {v,w}
// is not an edge of C.
//
// Mode (i), from the Thm. 5 proof:
//
//	◊_pq = (◊_ij + d_i + d_j − 1)(◊_kl + d_k + d_l − 1) − d_i·d_k − d_j·d_l + 1.
//
// Mode (ii) (derived; see DESIGN.md §2): with M = A+I and (M³∘M) =
// (A³∘A) + 3A + 3·Diag(d_A) + I for bipartite loop-free A,
//
//	◊_pq = m3·(◊_kl + d_k + d_l − 1) − (d_i+1)d_k − (d_j+1)d_l + 1,
//	m3   = ◊_ij + d_i + d_j + 2   (i ≠ j, an A-edge)
//	m3   = 3d_i + 1               (i = j, the self loop).
func (p *Product) EdgeFourCyclesAt(v, w int) (int64, error) {
	if !p.HasEdge(v, w) {
		return 0, fmt.Errorf("core: {%d,%d} is not an edge of the product", v, w)
	}
	i, k := p.PairOf(v)
	j, l := p.PairOf(w)
	b3 := p.b.walk3(k, l) // ◊_kl + d_k + d_l − 1
	var m3 int64
	switch {
	case i == j:
		m3 = 3*p.a.D[i] + 1
	default:
		m3 = p.a.walk3(i, j)
		if p.mode == ModeSelfLoopFactor {
			m3 += 3 // the +3A term of M³∘M
		}
	}
	return m3*b3 - p.DegreeAt(v) - p.DegreeAt(w) + 1, nil
}

// EachEdgeFourCycle streams (v, w, ◊_vw) for every undirected product edge
// exactly once — the paper's "local quantities are produced in linear time"
// path.  Stops early if yield returns false.
func (p *Product) EachEdgeFourCycle(yield func(v, w int, squares int64) bool) {
	p.EachEdge(func(v, w int) bool {
		sq, err := p.EdgeFourCyclesAt(v, w)
		if err != nil {
			panic("core: EachEdge produced a non-edge: " + err.Error())
		}
		return yield(v, w, sq)
	})
}

// DegreeHistogram returns the exact degree distribution of the product —
// degree → number of product vertices with that degree — computed from the
// factor histograms in O(distinct_A · distinct_B): d_p = d_M(i)·d_B(k), so
// the product histogram is the multiplicative convolution of the factor
// histograms.  Another "sublinear ground truth" statistic: the product's
// |V_C| never enters the computation.
func (p *Product) DegreeHistogram() map[int64]int64 {
	histA := map[int64]int64{}
	for _, d := range p.degA() {
		histA[d]++
	}
	histB := map[int64]int64{}
	for _, d := range p.b.D {
		histB[d]++
	}
	out := make(map[int64]int64, len(histA)*len(histB))
	for da, ca := range histA {
		for db, cb := range histB {
			out[da*db] += ca * cb
		}
	}
	return out
}

// GlobalFourCyclesViaEdges recomputes □(C) from the edge stream:
// Σ_{edges} ◊ = 4·□(C) since each 4-cycle has four edges.  O(|E_C|); used
// as an internal consistency check (must equal GlobalFourCycles).
func (p *Product) GlobalFourCyclesViaEdges() int64 {
	var sum int64
	p.EachEdgeFourCycle(func(_, _ int, sq int64) bool {
		sum += sq
		return true
	})
	return sum / 4
}
