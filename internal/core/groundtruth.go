package core

import "fmt"

// This file implements the paper's ground-truth formulas (Thm. 3–5) plus
// the derived mode-(ii) edge formula and sublinear global counts, composed
// across factor chains: each chain level C_t = (C_{t-1}+I) ⊗ B_t applies
// the same mode-(ii) algebra with the (never materialized) prefix as its
// left factor, so every statistic folds level by level in O(K).
//
// Erratum note: the printed statement of Thm. 4 carries the d_C and d_C²
// terms with swapped signs relative to the paper's own proof (which expands
// s_C = ½(diag(C⁴) − d_C∘d_C − C²·1 + C·1), so the correct signs are
// −d_C∘d_C and +d_C).  Similarly the printed 13-term point-wise expansion
// of Thm. 5 omits a "+2" constant (take A=K₃, B=K₂: C=C₆ is 4-cycle-free
// and the printed expansion yields −2 per edge).  We implement the
// proof-consistent forms; the test suite validates them against three
// independent brute-force counters.

// VertexFourCyclesAt returns s_v, the number of 4-cycles through product
// vertex v, in O(K) from factor statistics (Thm. 3 / Thm. 4, applied per
// chain level):
//
//	s_v = ½ ( diag(C⁴)_v − d_v² − w⁽²⁾_v + d_v ).
func (p *Product) VertexFourCyclesAt(v int) int64 {
	d, w2, d4 := p.vertexStats(v)
	return (d4 - d*d - w2 + d) / 2
}

// diag4A returns diag(M₀⁴)_i for the effective root factor M₀:
//
//	mode (i):  diag(A⁴)_i  = 2s_i + d_i² + w⁽²⁾_i − d_i
//	mode (ii): diag((A+I)⁴)_i = diag(A⁴)_i + 6d_i + 1
//	                          = 2s_i + d_i² + w⁽²⁾_i + 5d_i + 1
//
// (mode (ii) uses diag(A³) = diag(A) = 0 for bipartite loop-free A).
// The same +6d+1 shift is the per-level lift vertexStats applies between
// chain levels.
func (p *Product) diag4A(i int) int64 {
	d4 := p.a.diag4(i)
	if p.mode == ModeSelfLoopFactor {
		d4 += 6*p.a.D[i] + 1
	}
	return d4
}

// VertexFourCycles returns the full vector s_C via the Kronecker vector
// identity of Thm. 3/4 folded across the chain — O(|V_C|) time, the
// intermediate level vectors growing geometrically up to |V_C|.
func (p *Product) VertexFourCycles() []int64 {
	// Fold the (d, d², w⁽²⁾, diag⁴) vectors level by level; the final
	// combine is then pure arithmetic per vertex.
	dv := append([]int64(nil), p.a.D...)
	wv := append([]int64(nil), p.a.W2...)
	d4v := make([]int64, p.a.N())
	for i := range d4v {
		d4v[i] = p.a.diag4(i)
	}
	lift := p.mode == ModeSelfLoopFactor
	for _, f := range p.bs {
		if lift {
			for i := range dv {
				d4v[i] += 6*dv[i] + 1
				wv[i] += 2*dv[i] + 1
				dv[i]++
			}
		}
		fd4 := make([]int64, f.N())
		for x := range fd4 {
			fd4[x] = f.diag4(x)
		}
		dv = kronFold(dv, f.D)
		wv = kronFold(wv, f.W2)
		d4v = kronFold(d4v, fd4)
		lift = true
	}
	out := make([]int64, p.N())
	for v := range out {
		d := dv[v]
		out[v] = (d4v[v] - d*d - wv[v] + d) / 2
	}
	return out
}

// kronFold is the Kronecker vector product x ⊗ y written locally so the
// ground-truth folds do not depend on grb's allocation behavior.
func kronFold(x, y []int64) []int64 {
	out := make([]int64, len(x)*len(y))
	idx := 0
	for _, a := range x {
		for _, b := range y {
			out[idx] = a * b
			idx++
		}
	}
	return out
}

// GlobalFourCycles returns the total number of distinct 4-cycles in C in
// O(Σ n_t) time given the factor statistics: every term of Thm. 3/4 is a
// (chained) Kronecker product of factor vectors, and Σ(x ⊗ y) = Σx · Σy,
// so the sum of s_C — which is 4·□(C), each 4-cycle touching 4 vertices —
// factorizes level by level (the paper's "global scalar quantities are
// computed sublinearly" claim).  The folded sums are fixed at
// construction (computeGlobalSums).
func (p *Product) GlobalFourCycles() int64 {
	twiceSum := p.sumDiag4 - p.sumD2 - p.sumW2 + p.sumD
	return twiceSum / 8 // ½ for s_C, then Σs_C = 4·□(C)
}

// EdgeFourCyclesAt returns ◊_vw, the number of 4-cycles through product
// edge {v,w}, in O(K·log d) (the factor-edge lookups).  It errors if
// {v,w} is not an edge of C.
//
// Mode (i), K = 1, from the Thm. 5 proof:
//
//	◊_pq = (◊_ij + d_i + d_j − 1)(◊_kl + d_k + d_l − 1) − d_i·d_k − d_j·d_l + 1.
//
// Mode (ii) (derived; see DESIGN.md §2): with M = A+I and (M³∘M) =
// (A³∘A) + 3A + 3·Diag(d_A) + I for bipartite loop-free A,
//
//	◊_pq = m3·(◊_kl + d_k + d_l − 1) − (d_i+1)d_k − (d_j+1)d_l + 1,
//	m3   = ◊_ij + d_i + d_j + 2   (i ≠ j, an A-edge)
//	m3   = 3d_i + 1               (i = j, the self loop).
//
// Chains iterate the same step upward from the anchor level (the first
// digit where the endpoints differ): each level's ◊ and endpoint degrees
// produce the next level's 3-walk anchor m3 = ◊ + d_v + d_w − 1 + 3, the
// +3 being the 3A term of ((C+I)³ ∘ (C+I)) for bipartite loop-free C.
func (p *Product) EdgeFourCyclesAt(v, w int) (int64, error) {
	if !p.HasEdge(v, w) {
		return 0, fmt.Errorf("core: {%d,%d} is not an edge of the product", v, w)
	}
	k := len(p.bs)
	var bufV, bufW [digitBuf]int
	dv := p.rad.AppendDecode(bufV[:0], v)
	dw := p.rad.AppendDecode(bufW[:0], w)
	anchor := 0
	for dv[anchor] == dw[anchor] {
		anchor++ // HasEdge guarantees a differing digit exists
	}
	// m3 is the (M³∘M) entry at the anchor; mv/mw are the M-level degrees
	// of the two prefixes entering the first folded level.
	var m3, mv, mw int64
	start := anchor
	if anchor == 0 {
		m3 = p.a.walk3(dv[0], dw[0])
		mv, mw = p.a.D[dv[0]], p.a.D[dw[0]]
		if p.mode == ModeSelfLoopFactor {
			m3 += 3
			mv++
			mw++
		}
		start = 1
	} else {
		// Self-loop anchor: both prefixes coincide through level anchor−1.
		// Fold that prefix's chain degree, then M = prefix+I gives
		// m3 = 3d+1 and degree d+1.
		dpre := p.a.D[dv[0]]
		lift := p.mode == ModeSelfLoopFactor
		for u := 1; u < anchor; u++ {
			if lift {
				dpre++
			}
			dpre *= p.bs[u-1].D[dv[u]]
			lift = true
		}
		m3 = 3*dpre + 1
		mv, mw = dpre+1, dpre+1
	}
	var sq int64
	for u := start; u <= k; u++ {
		f := p.bs[u-1]
		if u > start {
			// Climb one level: m3 = ◊ + d_v + d_w − 1 + 3 with the
			// previous level's ◊ and raw degrees; mv/mw already carry the
			// +1 lift, so the constants cancel.
			m3 = sq + mv + mw
		}
		fv := mv * f.D[dv[u]]
		fw := mw * f.D[dw[u]]
		sq = m3*f.walk3(dv[u], dw[u]) - fv - fw + 1
		mv, mw = fv+1, fw+1
	}
	return sq, nil
}

// EachEdgeFourCycle streams (v, w, ◊_vw) for every undirected product edge
// exactly once — the paper's "local quantities are produced in linear time"
// path.  Stops early if yield returns false.
func (p *Product) EachEdgeFourCycle(yield func(v, w int, squares int64) bool) {
	p.EachEdge(func(v, w int) bool {
		sq, err := p.EdgeFourCyclesAt(v, w)
		if err != nil {
			panic("core: EachEdge produced a non-edge: " + err.Error())
		}
		return yield(v, w, sq)
	})
}

// DegreeHistogram returns the exact degree distribution of the product —
// degree → number of product vertices with that degree — as a K-fold
// multiplicative convolution of the factor histograms with a +1 key shift
// between levels (the +I lift): d_v = d_{M₀}(i)·∏(…+1)·d_{B_t}(k_t).
// Cost is ∏ distinct-degree counts; the product's |V_C| never enters the
// computation — another "sublinear ground truth" statistic.
func (p *Product) DegreeHistogram() map[int64]int64 {
	hist := map[int64]int64{}
	for _, d := range p.a.D {
		hist[d]++
	}
	lift := p.mode == ModeSelfLoopFactor
	for _, f := range p.bs {
		if lift {
			shifted := make(map[int64]int64, len(hist))
			for d, c := range hist {
				shifted[d+1] = c
			}
			hist = shifted
		}
		histB := map[int64]int64{}
		for _, d := range f.D {
			histB[d]++
		}
		next := make(map[int64]int64, len(hist)*len(histB))
		for da, ca := range hist {
			for db, cb := range histB {
				next[da*db] += ca * cb
			}
		}
		hist = next
		lift = true
	}
	return hist
}

// GlobalFourCyclesViaEdges recomputes □(C) from the edge stream:
// Σ_{edges} ◊ = 4·□(C) since each 4-cycle has four edges.  O(|E_C|); used
// as an internal consistency check (must equal GlobalFourCycles).
func (p *Product) GlobalFourCyclesViaEdges() int64 {
	var sum int64
	p.EachEdgeFourCycle(func(_, _ int, sq int64) bool {
		sum += sq
		return true
	})
	return sum / 4
}
