package core

import (
	"context"
	"fmt"

	"kronbip/internal/exec"
)

// 2D-blocked edge streaming — the distributed-generation partition.
//
// The 1D shard vocabulary (EachEdgeShard*, ShardEdgeCount) stripes the
// stream's row space; blocks refine it with a second, orthogonal
// dimension: the edge list of the LAST chain factor B_K.  Every product
// edge terminates in exactly one B_K edge (the base case of the chain
// expansion walks E_{B_K} in order, emitting one or two product edges
// per B_K edge), so
//
//	block (r, c) of R×C  =  { edges whose stream row ∈ rowStripe(r, R)
//	                          and whose B_K edge index ∈ colStripe(c, C) }
//
// partitions the edge set into R·C deterministic, disjoint blocks whose
// union is exactly the EachEdge stream.  Each block's edge count has the
// same O(K) closed form as ShardEdgeCount: every row of term t emits
// termPer[t]/|E_{B_K}| product edges per B_K edge — an exact integer by
// construction, since every term's multiplicity carries a trailing
// |E_{B_K}| factor — so a coordinator can size, balance, and verify
// block leases without generating anything (internal/distgen).
//
// Block (0, 0) of 1×1 is the whole product in canonical order.  For
// C > 1 the within-block order is the canonical order restricted to the
// block; concatenating blocks in (row, col)-major block order is a
// deterministic permutation of the canonical stream, reproduced
// identically by every replica.

// blockRanges validates (row, nrows, col, ncols) and resolves the
// block's half-open row range and last-factor edge-index range.  Column
// stripes come from exec.Stripe over |E_{B_K}|, so ncols may exceed the
// edge count — the surplus stripes are empty, never an error.
func (p *Product) blockRanges(row, nrows, col, ncols int) (rlo, rhi, clo, chi int, err error) {
	rlo, rhi, err = p.shardRange(row, nrows)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	if ncols <= 0 {
		return 0, 0, 0, 0, fmt.Errorf("core: ncols must be positive, got %d", ncols)
	}
	if col < 0 || col >= ncols {
		return 0, 0, 0, 0, fmt.Errorf("core: col %d out of range [0,%d)", col, ncols)
	}
	clo, chi = exec.Stripe(col, ncols, p.lastFactorEdges())
	return rlo, rhi, clo, chi, nil
}

// lastFactorEdges is |E_{B_K}|, the column dimension's extent.
func (p *Product) lastFactorEdges() int {
	return p.bs[len(p.bs)-1].G.NumEdges()
}

// BlockEdgeCount returns the number of edges block (row, col) of an
// nrows×ncols blocking will emit, without streaming — O(K) closed form:
// Σ_t rowOverlap(t)·(termPer[t]/|E_{B_K}|)·colSpan.  The division is
// exact (every term's per-row multiplicity is a multiple of |E_{B_K}|),
// and the arithmetic cannot wrap because termPer was overflow-checked
// against |E_C| at construction.
func (p *Product) BlockEdgeCount(row, nrows, col, ncols int) (int64, error) {
	rlo, rhi, clo, chi, err := p.blockRanges(row, nrows, col, ncols)
	if err != nil {
		return 0, err
	}
	mLast := int64(p.lastFactorEdges())
	if mLast == 0 || chi <= clo {
		return 0, nil
	}
	var total int64
	for t := 0; t < len(p.termOff)-1; t++ {
		o := min(rhi, p.termOff[t+1]) - max(rlo, p.termOff[t])
		if o > 0 {
			total += int64(o) * (p.termPer[t] / mLast) * int64(chi-clo)
		}
	}
	return total, nil
}

// EachEdgeBlock streams block (row, col) of an nrows×ncols blocking in
// canonical-restricted order.  The union over all R·C blocks is exactly
// the EachEdge stream; no edge repeats across blocks.  Iteration stops
// early if yield returns false.
func (p *Product) EachEdgeBlock(row, nrows, col, ncols int, yield func(v, w int) bool) error {
	rlo, rhi, clo, chi, err := p.blockRanges(row, nrows, col, ncols)
	if err != nil {
		return err
	}
	p.streamBlockRows(rlo, rhi, clo, chi, yield)
	return nil
}

// EachEdgeBlockContext is EachEdgeBlock under a context, with the same
// cancellation contract as EachEdgeShardContext: checked every
// streamPollStride emitted edges, the stream stops without invoking
// yield again and returns ctx.Err(), and no edge is ever emitted twice.
func (p *Product) EachEdgeBlockContext(ctx context.Context, row, nrows, col, ncols int, yield func(v, w int) bool) error {
	rlo, rhi, clo, chi, err := p.blockRanges(row, nrows, col, ncols)
	if err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if ctx.Done() == nil {
		p.streamBlockRows(rlo, rhi, clo, chi, yield)
		return nil
	}
	poll := exec.NewPoller(ctx, streamPollStride)
	cancelled := false
	p.streamBlockRows(rlo, rhi, clo, chi, func(v, w int) bool {
		if poll.Cancelled() {
			cancelled = true
			return false
		}
		return yield(v, w)
	})
	if cancelled {
		return ctx.Err()
	}
	return nil
}

// streamBlockRows walks rows [rlo, rhi) restricted to last-factor edges
// [clo, chi).  The full-width case falls through to the unrestricted
// walkers, so a 1-column blocking pays nothing over the shard path.
func (p *Product) streamBlockRows(rlo, rhi, clo, chi int, yield func(v, w int) bool) {
	if chi <= clo {
		return
	}
	if clo == 0 && chi == p.lastFactorEdges() {
		p.streamRows(rlo, rhi, yield)
		return
	}
	if len(p.bs) == 1 {
		p.streamBlockTwoFactor(rlo, rhi, clo, chi, yield)
		return
	}
	p.streamBlockChain(rlo, rhi, clo, chi, yield)
}

// streamBlockTwoFactor is the K = 1 blocked walker: the historical
// two-factor row loop over the [clo, chi) slice of the B edge list.
func (p *Product) streamBlockTwoFactor(rlo, rhi, clo, chi int, yield func(v, w int) bool) {
	ea := p.a.G.Edges()
	eb := p.bs[0].G.Edges()[clo:chi]
	nb := p.bs[0].N()
	for r := rlo; r < rhi; r++ {
		if r < len(ea) {
			au, av := ea[r].U*nb, ea[r].V*nb
			for _, be := range eb {
				if !yield(au+be.U, av+be.V) {
					return
				}
				if !yield(au+be.V, av+be.U) {
					return
				}
			}
			continue
		}
		i := (r - len(ea)) * nb // self-loop row (mode (ii) only)
		for _, be := range eb {
			if !yield(i+be.U, i+be.V) {
				return
			}
		}
	}
}

// streamBlockChain is the K >= 2 blocked walker: identical term/row
// structure to streamRowsChain, with the base level restricted to the
// column stripe.
func (p *Product) streamBlockChain(rlo, rhi, clo, chi int, yield func(v, w int) bool) {
	ea := p.a.G.Edges()
	for t := 0; t < len(p.termOff)-1; t++ {
		tlo, thi := max(rlo, p.termOff[t]), min(rhi, p.termOff[t+1])
		for r := tlo; r < thi; r++ {
			idx := r - p.termOff[t]
			if t == 0 {
				if !p.emitChainBlock(1, ea[idx].U, ea[idx].V, true, clo, chi, yield) {
					return
				}
			} else if !p.emitChainBlock(t, idx, idx, false, clo, chi, yield) {
				return
			}
		}
	}
}

// emitChainBlock is emitChain with the base (last) level iterating only
// last-factor edges [clo, chi); the inner levels expand in full — the
// column dimension slices the base level alone.
func (p *Product) emitChainBlock(u, pv, pw int, both bool, clo, chi int, yield func(v, w int) bool) bool {
	f := p.bs[u-1]
	eb := f.G.Edges()
	n := f.N()
	av, aw := pv*n, pw*n
	if u == len(p.bs) {
		for _, be := range eb[clo:chi] {
			if !yield(av+be.U, aw+be.V) {
				return false
			}
			if both && !yield(av+be.V, aw+be.U) {
				return false
			}
		}
		return true
	}
	for _, be := range eb {
		if !p.emitChainBlock(u+1, av+be.U, aw+be.V, true, clo, chi, yield) {
			return false
		}
		if both && !p.emitChainBlock(u+1, av+be.V, aw+be.U, true, clo, chi, yield) {
			return false
		}
	}
	return true
}
