package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"kronbip/internal/exec"
	"kronbip/internal/graph"
	"kronbip/internal/obs"
)

// collectBatchEdges drains one shard's batch stream into a normalized
// edge list, copying out of the reused batch slice.
func collectBatchEdges(t *testing.T, p *Product, shard, nshards int) []graph.Edge {
	t.Helper()
	var out []graph.Edge
	if err := p.EachEdgeShardBatch(shard, nshards, func(batch []exec.Edge) bool {
		for _, e := range batch {
			v, w := e.V, e.W
			if v > w {
				v, w = w, v
			}
			out = append(out, graph.Edge{U: v, V: w})
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestEachEdgeShardBatchPartition: the union of all shards' batch
// streams equals the per-edge EachEdge stream exactly, for both modes
// and shard counts from 1 up past the row count (empty upper shards).
func TestEachEdgeShardBatchPartition(t *testing.T) {
	for name, p := range testProducts(t) {
		want := collectEdges(p)
		for _, nshards := range []int{1, 2, 3, 7, 1000} {
			var got []graph.Edge
			for s := 0; s < nshards; s++ {
				got = append(got, collectBatchEdges(t, p, s, nshards)...)
			}
			sortEdges(got)
			if len(got) != len(want) {
				t.Fatalf("%s nshards=%d: %d edges, want %d", name, nshards, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s nshards=%d: edge sets differ at %d", name, nshards, i)
				}
			}
		}
	}
}

// TestEachEdgeShardBatchSizes: every batch but the last is full-sized
// whenever enough edges remain; none exceeds exec.BatchLen, none is
// empty.
func TestEachEdgeShardBatchSizes(t *testing.T) {
	p := bigStreamProduct(t)
	var sizes []int
	if err := p.EachEdgeShardBatch(0, 1, func(batch []exec.Edge) bool {
		sizes = append(sizes, len(batch))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	var total int64
	for i, n := range sizes {
		if n == 0 || n > exec.BatchLen {
			t.Fatalf("batch %d has %d edges (want 1..%d)", i, n, exec.BatchLen)
		}
		// The hot loop flushes when fewer than 2 slots remain, so any
		// non-final batch holds at least BatchLen-1 edges.
		if i < len(sizes)-1 && n < exec.BatchLen-1 {
			t.Fatalf("non-final batch %d has only %d edges", i, n)
		}
		total += int64(n)
	}
	if total != p.NumEdges() {
		t.Fatalf("batches total %d edges, want %d", total, p.NumEdges())
	}
}

func TestEachEdgeShardBatchValidationAndEarlyStop(t *testing.T) {
	p := testProducts(t)["mode1"]
	if err := p.EachEdgeShardBatch(0, 0, func([]exec.Edge) bool { return true }); err == nil {
		t.Fatal("accepted nshards=0")
	}
	if err := p.EachEdgeShardBatch(3, 3, func([]exec.Edge) bool { return true }); err == nil {
		t.Fatal("accepted shard out of range")
	}
	calls := 0
	if err := p.EachEdgeShardBatch(0, 1, func([]exec.Edge) bool {
		calls++
		return false
	}); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("yield ran %d times after returning false, want 1", calls)
	}
}

// TestEachEdgeShardBatchContextCancelAtBoundary cancels from inside a
// batch yield and checks the package contract: no batch is delivered
// after the cancellation is observed, and the error is ctx.Err().
func TestEachEdgeShardBatchContextCancelAtBoundary(t *testing.T) {
	p := bigStreamProduct(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	batches := 0
	err := p.EachEdgeShardBatchContext(ctx, 0, 1, func(batch []exec.Edge) bool {
		batches++
		cancel()
		return true
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if batches != 1 {
		t.Fatalf("%d batches delivered after cancellation in the first, want exactly 1", batches)
	}
}

func TestEachEdgeShardBatchContextPreCancelled(t *testing.T) {
	p := testProducts(t)["mode2"]
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := p.EachEdgeShardBatchContext(ctx, 0, 2, func([]exec.Edge) bool {
		t.Fatal("batch yielded under a pre-cancelled context")
		return true
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestEachEdgeBatchContextWholeStream: the single-shard convenience
// wrapper covers the full edge set in EachEdge order.
func TestEachEdgeBatchContextWholeStream(t *testing.T) {
	for name, p := range testProducts(t) {
		var got []graph.Edge
		if err := p.EachEdgeBatchContext(context.Background(), func(batch []exec.Edge) bool {
			for _, e := range batch {
				v, w := e.V, e.W
				if v > w {
					v, w = w, v
				}
				got = append(got, graph.Edge{U: v, V: w})
			}
			return true
		}); err != nil {
			t.Fatal(err)
		}
		sortEdges(got)
		want := collectEdges(p)
		if len(got) != len(want) {
			t.Fatalf("%s: %d edges, want %d", name, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: differs at %d", name, i)
			}
		}
	}
}

// shardRecorder is a per-shard Sink+BatchSink that normalizes and
// stores every edge; used from one goroutine (its own shard).
type shardRecorder struct {
	edges   []graph.Edge
	batches int
}

func (r *shardRecorder) Edge(v, w int) error {
	if v > w {
		v, w = w, v
	}
	r.edges = append(r.edges, graph.Edge{U: v, V: w})
	return nil
}

func (r *shardRecorder) EdgeBatch(batch []exec.Edge) error {
	r.batches++
	for _, e := range batch {
		if err := r.Edge(e.V, e.W); err != nil {
			return err
		}
	}
	return nil
}

// TestStreamEdgesParallelContextBatchPath: a BatchSink-capable sink
// routes through the batch shard path and still yields exactly the
// EachEdge multiset, instrumented or not.
func TestStreamEdgesParallelContextBatchPath(t *testing.T) {
	for _, instrumented := range []bool{false, true} {
		if instrumented {
			obs.SetEnabled(true)
		}
		for name, p := range testProducts(t) {
			const nshards = 4
			recs := make([]shardRecorder, nshards)
			err := p.StreamEdgesParallelContext(context.Background(), nshards, func(s int) exec.Sink {
				return &recs[s]
			})
			if err != nil {
				t.Fatal(err)
			}
			var got []graph.Edge
			batches := 0
			for s := range recs {
				got = append(got, recs[s].edges...)
				batches += recs[s].batches
			}
			if batches == 0 {
				t.Fatalf("%s: no EdgeBatch calls — batch path not taken", name)
			}
			sortEdges(got)
			want := collectEdges(p)
			if len(got) != len(want) {
				t.Fatalf("%s instrumented=%v: %d edges, want %d", name, instrumented, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s instrumented=%v: differs at %d", name, instrumented, i)
				}
			}
		}
		if instrumented {
			obs.SetEnabled(false)
		}
	}
}

// failingBatchSink errors on the nth batch.
type failingBatchSink struct {
	n    int
	boom error
}

func (f *failingBatchSink) Edge(v, w int) error { return f.EdgeBatch(nil) }

func (f *failingBatchSink) EdgeBatch([]exec.Edge) error {
	f.n--
	if f.n <= 0 {
		return f.boom
	}
	return nil
}

// TestStreamEdgesParallelContextBatchSinkError: a batch sink error
// aborts the stream and surfaces as-is, on both the plain and the
// instrumented shard paths.
func TestStreamEdgesParallelContextBatchSinkError(t *testing.T) {
	boom := fmt.Errorf("batch sink exploded")
	for _, instrumented := range []bool{false, true} {
		if instrumented {
			obs.SetEnabled(true)
		}
		p := bigStreamProduct(t)
		err := p.StreamEdgesParallelContext(context.Background(), 2, func(s int) exec.Sink {
			return &failingBatchSink{n: 2, boom: boom}
		})
		if !errors.Is(err, boom) {
			t.Fatalf("instrumented=%v: err = %v, want %v", instrumented, err, boom)
		}
		if instrumented {
			obs.SetEnabled(false)
		}
	}
}

// TestEmptyShards: with more shards than rows, the trailing shards are
// empty ranges.  Every path — per-edge, batch, their context variants,
// and the parallel stream — must treat them as clean no-ops for both
// modes.
func TestEmptyShards(t *testing.T) {
	for name, p := range testProducts(t) {
		nshards := p.numRows() + 3 // guarantees at least 3 empty shards
		perShard := make([]int, nshards)
		for s := 0; s < nshards; s++ {
			if err := p.EachEdgeShard(s, nshards, func(_, _ int) bool {
				perShard[s]++
				return true
			}); err != nil {
				t.Fatalf("%s shard %d: %v", name, s, err)
			}
			if err := p.EachEdgeShardContext(context.Background(), s, nshards, func(_, _ int) bool {
				return true
			}); err != nil {
				t.Fatalf("%s shard %d (context): %v", name, s, err)
			}
			if err := p.EachEdgeShardBatch(s, nshards, func(batch []exec.Edge) bool {
				if len(batch) == 0 {
					t.Fatalf("%s shard %d: empty batch yielded", name, s)
				}
				return true
			}); err != nil {
				t.Fatalf("%s shard %d (batch): %v", name, s, err)
			}
			if err := p.EachEdgeShardBatchContext(context.Background(), s, nshards, func(batch []exec.Edge) bool {
				return true
			}); err != nil {
				t.Fatalf("%s shard %d (batch context): %v", name, s, err)
			}
			// The closed form must agree that the shard is empty/non-empty.
			want, err := p.ShardEdgeCount(s, nshards)
			if err != nil {
				t.Fatal(err)
			}
			if (want == 0) != (perShard[s] == 0) {
				t.Fatalf("%s shard %d: streamed %d edges, ShardEdgeCount says %d", name, s, perShard[s], want)
			}
		}
		empty := 0
		var total int
		for _, n := range perShard {
			if n == 0 {
				empty++
			}
			total += n
		}
		if empty < 3 {
			t.Fatalf("%s: only %d empty shards out of %d — test not exercising empty ranges", name, empty, nshards)
		}
		if int64(total) != p.NumEdges() {
			t.Fatalf("%s: shards total %d edges, want %d", name, total, p.NumEdges())
		}

		// The parallel engine over the same oversharded split, per-edge
		// and batch sinks both.
		var mu sync.Mutex
		perEdgeTotal := 0
		if err := p.StreamEdgesParallelContext(context.Background(), nshards, func(s int) exec.Sink {
			return exec.SinkFunc(func(v, w int) error {
				mu.Lock()
				perEdgeTotal++
				mu.Unlock()
				return nil
			})
		}); err != nil {
			t.Fatalf("%s parallel per-edge: %v", name, err)
		}
		if int64(perEdgeTotal) != p.NumEdges() {
			t.Fatalf("%s parallel per-edge: %d edges, want %d", name, perEdgeTotal, p.NumEdges())
		}
		var batchTotal exec.CountingSink
		if err := p.StreamEdgesParallelContext(context.Background(), nshards, func(s int) exec.Sink {
			return &batchTotal
		}); err != nil {
			t.Fatalf("%s parallel batch: %v", name, err)
		}
		if batchTotal.Count() != p.NumEdges() {
			t.Fatalf("%s parallel batch: %d edges, want %d", name, batchTotal.Count(), p.NumEdges())
		}
	}
}

// TestShardEdgeCountProperty: the closed-form ShardEdgeCount equals the
// streamed count for arbitrary shard splits, including splits wider
// than the row count, on both modes.  (Satellite check for the O(1)
// rewrite: the old implementation walked eb-sized chunks per row.)
func TestShardEdgeCountProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for name, p := range testProducts(t) {
		for trial := 0; trial < 30; trial++ {
			nshards := 1 + rng.Intn(3*p.numRows())
			var total int64
			for s := 0; s < nshards; s++ {
				want, err := p.ShardEdgeCount(s, nshards)
				if err != nil {
					t.Fatal(err)
				}
				var n int64
				if err := p.EachEdgeShard(s, nshards, func(_, _ int) bool { n++; return true }); err != nil {
					t.Fatal(err)
				}
				if n != want {
					t.Fatalf("%s shard %d/%d: streamed %d, closed form %d", name, s, nshards, n, want)
				}
				total += n
			}
			if total != p.NumEdges() {
				t.Fatalf("%s nshards=%d: total %d, want %d", name, nshards, total, p.NumEdges())
			}
		}
	}
}
