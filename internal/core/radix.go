package core

import "fmt"

// Mixed-radix vertex addressing for factor chains.  A chained product
// C = A ⊗ B₁ ⊗ … ⊗ B_K names its vertices by digit tuples
// (i, k₁, …, k_K) over the factor sizes (n_A, n_B1, …, n_BK), packed
// most-significant-first:
//
//	v = ((i·n_B1 + k₁)·n_B2 + k₂)·… + k_K.
//
// For K = 1 this is exactly the two-factor convention p = i·n_B + k, so
// the historical layout is the one-digit special case.  The streaming
// hot loops, the ground-truth folds and the distance code all share
// this one layout through Radix, so an id means the same vertex
// everywhere.
//
// maxInt is the largest product vertex id representable: ids are ints,
// so a chain's vertex count must fit in int (and hence int64).
const maxInt = int(^uint(0) >> 1)

// OverflowError is the typed error returned when a chain's closed-form
// sizes (vertex count, edge count, or sharding row count) do not fit in
// the machine integer types the generator streams with.  Following the
// exec.Stripe idiom, the library never *computes* a wrapped value and
// then checks it — every multiplication and addition on the way up is
// guarded, so the error surfaces at construction, long before any
// generation work.
type OverflowError struct {
	Quantity string // what overflowed: "vertex count", "edge count", …
	Detail   string // the factor sizes that overflowed it
}

func (e *OverflowError) Error() string {
	return fmt.Sprintf("core: chain %s overflows int64 (%s)", e.Quantity, e.Detail)
}

// mulInt64 returns a*b, reporting overflow instead of wrapping.
// Operands are non-negative counts.
func mulInt64(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	p := a * b
	if p/b != a {
		return 0, false
	}
	return p, true
}

// addInt64 returns a+b for non-negative operands, reporting overflow.
func addInt64(a, b int64) (int64, bool) {
	s := a + b
	if s < a {
		return 0, false
	}
	return s, true
}

// Radix is a mixed-radix positional layout over digit sizes.  Digit 0
// is the most significant (the A factor); digit t > 0 addresses B_t.
type Radix struct {
	sizes   []int // digit sizes, all >= 1
	strides []int // strides[t] = ∏_{u>t} sizes[u]
	n       int   // ∏ sizes
}

// NewRadix builds the layout, rejecting non-positive digit sizes and —
// with a typed *OverflowError — products that do not fit in int.
func NewRadix(sizes ...int) (Radix, error) {
	if len(sizes) == 0 {
		return Radix{}, fmt.Errorf("core: radix needs at least one digit")
	}
	for _, s := range sizes {
		if s <= 0 {
			return Radix{}, fmt.Errorf("core: radix digit size %d must be positive", s)
		}
	}
	strides := make([]int, len(sizes))
	acc := int64(1)
	for t := len(sizes) - 1; t >= 0; t-- {
		if acc > int64(maxInt) {
			return Radix{}, &OverflowError{Quantity: "vertex count", Detail: fmt.Sprintf("factor sizes %v", sizes)}
		}
		strides[t] = int(acc)
		p, ok := mulInt64(acc, int64(sizes[t]))
		if !ok || p > int64(maxInt) {
			return Radix{}, &OverflowError{Quantity: "vertex count", Detail: fmt.Sprintf("factor sizes %v", sizes)}
		}
		acc = p
	}
	cp := make([]int, len(sizes))
	copy(cp, sizes)
	return Radix{sizes: cp, strides: strides, n: int(acc)}, nil
}

// K returns the number of digits (factors).
func (r Radix) K() int { return len(r.sizes) }

// N returns the total vertex count ∏ sizes.
func (r Radix) N() int { return r.n }

// Size returns the size of digit t.
func (r Radix) Size(t int) int { return r.sizes[t] }

// Stride returns the positional weight of digit t.
func (r Radix) Stride(t int) int { return r.strides[t] }

// Digit extracts digit t of vertex v without decoding the rest.
func (r Radix) Digit(v, t int) int { return v / r.strides[t] % r.sizes[t] }

// AppendDecode appends the digits of v, most significant first, to dst
// and returns the extended slice.  With a caller-provided backing array
// of capacity >= K the call does not allocate.
func (r Radix) AppendDecode(dst []int, v int) []int {
	for _, s := range r.strides {
		dst = append(dst, v/s)
		v %= s
	}
	return dst
}

// Encode packs digits (most significant first) into a vertex id.  It is
// the inverse of AppendDecode for in-range digits; digits are not
// range-checked.
func (r Radix) Encode(digits ...int) int {
	v := 0
	for t, d := range digits {
		v += d * r.strides[t]
	}
	return v
}

// digitBuf is the stack buffer size the hot paths use for decoded
// digits; chains deeper than this fall back to an allocation.
const digitBuf = 16
