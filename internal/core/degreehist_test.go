package core

import (
	"testing"

	"kronbip/internal/stats"
)

// TestDegreeHistogramAgainstMaterialized validates the sublinear degree
// distribution formula for both modes across the factor-pair suites.
func TestDegreeHistogramAgainstMaterialized(t *testing.T) {
	check := func(name string, p *Product) {
		t.Helper()
		g, err := p.Materialize(0)
		if err != nil {
			t.Fatal(err)
		}
		want := stats.FromValues(g.Degrees())
		got := stats.Histogram(p.DegreeHistogram())
		if !got.Equal(want) {
			t.Fatalf("%s: degree histogram mismatch\n got %v\nwant %v", name, got, want)
		}
		if got.Total() != int64(p.N()) {
			t.Fatalf("%s: histogram covers %d vertices, want %d", name, got.Total(), p.N())
		}
	}
	for _, tc := range mode1Pairs() {
		p, err := New(tc.a, tc.b, ModeNonBipartiteFactor)
		if err != nil {
			t.Fatal(err)
		}
		check("mode1 "+tc.name, p)
	}
	for _, tc := range mode2Pairs() {
		p, err := New(tc.a, tc.b, ModeSelfLoopFactor)
		if err != nil {
			t.Fatal(err)
		}
		check("mode2 "+tc.name, p)
	}
}

// TestDegreeHistogramNoPrimes spot-checks the paper's "no large prime
// degrees" peculiarity: every product degree is a factor-degree product,
// so a prime degree q can only appear if q itself (times 1) appears.
func TestDegreeHistogramNoPrimes(t *testing.T) {
	// Factor degrees in mode (ii): d_A+1 ∈ {2,3}, d_B ∈ {1,2}; products
	// {2,3,4,6} — degree 5 (prime) cannot occur.
	p, err := New(mode2Pairs()[0].a, mode2Pairs()[0].b, ModeSelfLoopFactor)
	if err != nil {
		t.Fatal(err)
	}
	hist := p.DegreeHistogram()
	if hist[5] != 0 {
		t.Fatalf("degree 5 present: %v", hist)
	}
}
