package core

import "fmt"

// EdgeClusteringAt returns the bipartite edge clustering coefficient of
// product edge {v,w} (Def. 10):
//
//	Γ_C(p,q) = ◊_pq / ((d_p − 1)(d_q − 1)),
//
// the fraction of the (d_p−1)(d_q−1) potential 4-cycles through the edge
// that exist.  Degree-1 endpoints admit no 4-cycles; Γ is defined as 0
// there.
func (p *Product) EdgeClusteringAt(v, w int) (float64, error) {
	sq, err := p.EdgeFourCyclesAt(v, w)
	if err != nil {
		return 0, err
	}
	dp, dq := p.DegreeAt(v), p.DegreeAt(w)
	if dp <= 1 || dq <= 1 {
		return 0, nil
	}
	return float64(sq) / float64((dp-1)*(dq-1)), nil
}

// ClusteringLawBound returns the Thm. 6 lower bound
//
//	ψ(i,j,k,l) · Γ_A(i,j) · Γ_B(k,l)
//
// for a mode-(i) product edge {v,w}, together with ψ itself.  Thm. 6
// requires all four factor degrees ≥ 2; the bound is reported as 0 (trivial)
// otherwise.  The theorem is stated for a single two-factor product: for
// mode-(ii) products and for chains of arity > 2 it does not apply and an
// error is returned.
func (p *Product) ClusteringLawBound(v, w int) (bound, psi float64, err error) {
	if p.mode != ModeNonBipartiteFactor {
		return 0, 0, fmt.Errorf("core: Thm. 6 is stated for C = A ⊗ B (mode (i)) only")
	}
	if p.Arity() != 2 {
		return 0, 0, fmt.Errorf("core: Thm. 6 is stated for a two-factor product; this chain has arity %d", p.Arity())
	}
	if !p.HasEdge(v, w) {
		return 0, 0, fmt.Errorf("core: {%d,%d} is not an edge of the product", v, w)
	}
	i, k := p.PairOf(v)
	j, l := p.PairOf(w)
	b := p.bs[0]
	di, dj := p.a.D[i], p.a.D[j]
	dk, dl := b.D[k], b.D[l]
	if di < 2 || dj < 2 || dk < 2 || dl < 2 {
		return 0, 0, nil
	}
	gammaA := float64(p.a.Sq.At(i, j)) / float64((di-1)*(dj-1))
	gammaB := float64(b.Sq.At(k, l)) / float64((dk-1)*(dl-1))
	psi = float64((di-1)*(dk-1)) * float64((dj-1)*(dl-1)) /
		(float64(di*dk-1) * float64(dj*dl-1))
	return psi * gammaA * gammaB, psi, nil
}
