package core

import (
	"context"
	"fmt"

	"kronbip/internal/graph"
	"kronbip/internal/obs"
)

// Distance ground truth.  The paper notes (§I, citing the prior Kronecker
// ground-truth work) that formulas for degree, diameter and eccentricity
// "carry over directly"; this file implements them exactly for both
// Assumption 1 modes, composed across factor chains.
//
// The key fact: (C^h)_{pq} = (M^h)_{ij}·(B^h)_{kl}, and a walk of length h
// and parity h mod 2 can always be padded by retracing edges (+2 hops), so
// reachability at horizon h is characterized per factor by shortest
// even/odd walk lengths:
//
//	mode (i), C = A ⊗ B:   hops_C = max( minOddEvenWalk_A(i,j; t), hops_B(k,l) ),
//	                        t = hops_B(k,l) mod 2  (B is bipartite: all k→l
//	                        walks share that parity),
//	mode (ii), C = (A+I) ⊗ B: (M^h)_{ij} > 0 ⇔ h ≥ hops_A(i,j) (laziness
//	                        erases parity), so hops_C is max(hops_A, hops_B)
//	                        rounded up to the parity of hops_B(k,l).
//
// Chain levels t >= 2 are mode-(ii) products with the previous level as A,
// so the mode-(ii) rule folds upward: the running scalar plays hops_A, the
// level's own BFS table plays hops_B.  The fold step
// h ↦ roundUp(max(h, hB), parity(hB)) is nondecreasing in h, which is what
// lets eccentricity and diameter fold the per-level maxima as scalars
// instead of enumerating the product's vertex set.
type distanceIndex struct {
	parityA []graph.ParityDistances // mode (i): even/odd walk lengths in A
	hopsA   [][]int                 // mode (ii): plain BFS distances in A
	hopsB   [][][]int               // per chain level: plain BFS distances in B_t
}

var errRelaxedDistances = fmt.Errorf("core: eccentricity/diameter ground truth requires the strict Assumption 1 premises (construct with New/NewWithParts); relaxed products may be disconnected")

func (p *Product) distances() *distanceIndex {
	idx, _ := p.distancesContext(context.Background()) // background ctx: cannot fail
	return idx
}

// distancesContext builds (or returns) the factor BFS tables, checking ctx
// between per-vertex BFS runs so a SIGINT or deadline aborts the O(Σ n·m)
// precompute promptly.  A cancelled build leaves no partial state; the next
// call rebuilds from scratch.
func (p *Product) distancesContext(ctx context.Context) (*distanceIndex, error) {
	p.distMu.Lock()
	defer p.distMu.Unlock()
	if p.dist != nil {
		return p.dist, nil
	}
	defer obs.Timed("core.distances")()
	idx := &distanceIndex{hopsB: make([][][]int, len(p.bs))}
	for t, f := range p.bs {
		idx.hopsB[t] = make([][]int, f.N())
		for k := 0; k < f.N(); k++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			idx.hopsB[t][k] = f.G.BFS(k)
		}
	}
	if p.mode == ModeNonBipartiteFactor {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		idx.parityA = p.a.G.AllParityBFS()
	} else {
		idx.hopsA = make([][]int, p.a.N())
		for i := 0; i < p.a.N(); i++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			idx.hopsA[i] = p.a.G.BFS(i)
		}
	}
	p.dist = idx
	return idx, nil
}

// checkDistanceFactors enforces the preconditions under which the
// eccentricity/diameter folds are exact: strict premises (connectivity) and
// every B_t non-trivial (a single-vertex B_t has no edges, making the whole
// product edgeless).
func (p *Product) checkDistanceFactors() error {
	if !p.strict {
		return errRelaxedDistances
	}
	for t, f := range p.bs {
		if f.N() < 2 {
			return fmt.Errorf("core: factor %s has fewer than 2 vertices; the product has no edges", bName(t, len(p.bs)))
		}
	}
	return nil
}

// HopsAt returns the exact shortest-path distance between product vertices
// v and w, computed from factor BFS tables in O(K) after an O(Σ n·m)
// per-factor precomputation.  ok is false when w is unreachable from v.
func (p *Product) HopsAt(v, w int) (hops int, ok bool) {
	hops, ok, _ = p.HopsAtContext(context.Background(), v, w)
	return hops, ok
}

// HopsAtContext is HopsAt under a context: the first call on a Product
// pays the factor BFS precompute, which checks ctx between per-vertex
// BFS runs and aborts with ctx.Err() on cancellation.
func (p *Product) HopsAtContext(ctx context.Context, v, w int) (hops int, ok bool, err error) {
	if v == w {
		return 0, true, nil
	}
	idx, err := p.distancesContext(ctx)
	if err != nil {
		return 0, false, err
	}
	var bufV, bufW [digitBuf]int
	dv := p.rad.AppendDecode(bufV[:0], v)
	dw := p.rad.AppendDecode(bufW[:0], w)
	// Level 1 is the requested mode.
	hB := idx.hopsB[0][dv[1]][dw[1]]
	if hB == graph.Unreached {
		return 0, false, nil
	}
	t := hB % 2
	var h int
	if p.mode == ModeNonBipartiteFactor {
		wA := idx.parityA[dv[0]].MinWalk(dw[0], t)
		if wA == graph.Unreached {
			return 0, false, nil
		}
		h = hB
		if wA > h {
			h = wA
		}
	} else {
		hA := idx.hopsA[dv[0]][dw[0]]
		if hA == graph.Unreached {
			return 0, false, nil
		}
		h = hB
		if hA > h {
			h = hA
		}
		if h%2 != t {
			h++
		}
	}
	// Levels u >= 2 are mode-(ii) steps with the running h as hops_A.
	for u := 2; u <= len(p.bs); u++ {
		hBu := idx.hopsB[u-1][dv[u]][dw[u]]
		if hBu == graph.Unreached {
			return 0, false, nil
		}
		if hBu > h {
			h = hBu
		} else if h%2 != hBu%2 {
			h++
		}
	}
	return h, true, nil
}

// foldLevelEcc applies one chain level (u >= 2) to a running eccentricity:
// the maximum over targets l of roundUp(max(h, hops_{B_u}(k,l)),
// parity(hops_{B_u}(k,l))).  Monotonicity of the fold step in h makes the
// scalar h — the max over all shorter-prefix targets — sufficient.
func foldLevelEcc(h int, hopsRow []int) int {
	out := 0
	for _, d := range hopsRow {
		hv := h
		if d > hv {
			hv = d
		} else if hv%2 != d%2 {
			hv++
		}
		if hv > out {
			out = hv
		}
	}
	return out
}

// EccentricityAt returns the exact eccentricity of product vertex v — the
// maximum distance to any other product vertex — from factor statistics.
// It requires the strict Assumption 1 premises (Thm. 1/2), under which the
// product is connected.
func (p *Product) EccentricityAt(v int) (int, error) {
	if err := p.checkDistanceFactors(); err != nil {
		return 0, err
	}
	idx := p.distances()
	var buf [digitBuf]int
	dv := p.rad.AppendDecode(buf[:0], v)
	i, k := dv[0], dv[1]
	ecc := 0
	for t := 0; t < 2; t++ {
		// Largest hops_B1(k,l) among l with parity t; both parities are
		// realized for every k in a connected bipartite B₁ with >= 2 vertices.
		maxB := -1
		for _, d := range idx.hopsB[0][k] {
			if d != graph.Unreached && d%2 == t && d > maxB {
				maxB = d
			}
		}
		if maxB < 0 {
			continue
		}
		var h int
		if p.mode == ModeNonBipartiteFactor {
			// max over j of the shortest parity-t walk in A; strictness
			// guarantees A is connected and non-bipartite, so finite.
			maxA := 0
			for j := 0; j < p.a.N(); j++ {
				w := idx.parityA[i].MinWalk(j, t)
				if w == graph.Unreached {
					return 0, fmt.Errorf("core: internal: parity-%d walk missing in strict mode (i)", t)
				}
				if w > maxA {
					maxA = w
				}
			}
			h = maxA
			if maxB > h {
				h = maxB
			}
		} else {
			maxA := 0
			for j := 0; j < p.a.N(); j++ {
				d := idx.hopsA[i][j]
				if d == graph.Unreached {
					return 0, fmt.Errorf("core: internal: factor A disconnected in strict mode (ii)")
				}
				if d > maxA {
					maxA = d
				}
			}
			h = maxA
			if maxB > h {
				h = maxB
			}
			if h%2 != t {
				h++
			}
		}
		if h > ecc {
			ecc = h
		}
	}
	for u := 2; u <= len(p.bs); u++ {
		ecc = foldLevelEcc(ecc, idx.hopsB[u-1][dv[u]])
	}
	return ecc, nil
}

// Diameter returns the exact diameter of the product from factor
// statistics, in O(Σ n·m) total.  Requires strict premises.
func (p *Product) Diameter() (int, error) {
	return p.DiameterContext(context.Background())
}

// DiameterContext is Diameter under a context: the factor BFS precompute
// (the dominant cost) checks ctx between per-vertex BFS runs and aborts
// with ctx.Err() on cancellation.
func (p *Product) DiameterContext(ctx context.Context) (int, error) {
	if err := p.checkDistanceFactors(); err != nil {
		return 0, err
	}
	idx, err := p.distancesContext(ctx)
	if err != nil {
		return 0, err
	}
	diam := 0
	for t := 0; t < 2; t++ {
		maxB := -1
		for k := range idx.hopsB[0] {
			for _, d := range idx.hopsB[0][k] {
				if d != graph.Unreached && d%2 == t && d > maxB {
					maxB = d
				}
			}
		}
		if maxB < 0 {
			continue
		}
		var h int
		if p.mode == ModeNonBipartiteFactor {
			maxA := 0
			for i := range idx.parityA {
				for j := 0; j < p.a.N(); j++ {
					if w := idx.parityA[i].MinWalk(j, t); w > maxA {
						maxA = w
					}
				}
			}
			h = maxA
			if maxB > h {
				h = maxB
			}
		} else {
			maxA := 0 // the diameter of A
			for i := range idx.hopsA {
				for _, d := range idx.hopsA[i] {
					if d > maxA {
						maxA = d
					}
				}
			}
			h = maxA
			if maxB > h {
				h = maxB
			}
			if h%2 != t {
				h++
			}
		}
		if h > diam {
			diam = h
		}
	}
	// Levels u >= 2: max over source digit k and target digit l of the
	// mode-(ii) fold step applied to the running diameter.
	for u := 2; u <= len(p.bs); u++ {
		level := 0
		for k := range idx.hopsB[u-1] {
			if e := foldLevelEcc(diam, idx.hopsB[u-1][k]); e > level {
				level = e
			}
		}
		diam = level
	}
	return diam, nil
}
