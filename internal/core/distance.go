package core

import (
	"context"
	"fmt"

	"kronbip/internal/graph"
	"kronbip/internal/obs"
)

// Distance ground truth.  The paper notes (§I, citing the prior Kronecker
// ground-truth work) that formulas for degree, diameter and eccentricity
// "carry over directly"; this file implements them exactly for both
// Assumption 1 modes.
//
// The key fact: (C^h)_{pq} = (M^h)_{ij}·(B^h)_{kl}, and a walk of length h
// and parity h mod 2 can always be padded by retracing edges (+2 hops), so
// reachability at horizon h is characterized per factor by shortest
// even/odd walk lengths:
//
//	mode (i), C = A ⊗ B:   hops_C = max( minOddEvenWalk_A(i,j; t), hops_B(k,l) ),
//	                        t = hops_B(k,l) mod 2  (B is bipartite: all k→l
//	                        walks share that parity),
//	mode (ii), C = (A+I) ⊗ B: (M^h)_{ij} > 0 ⇔ h ≥ hops_A(i,j) (laziness
//	                        erases parity), so hops_C is max(hops_A, hops_B)
//	                        rounded up to the parity of hops_B(k,l).
type distanceIndex struct {
	parityA []graph.ParityDistances // mode (i): even/odd walk lengths in A
	hopsA   [][]int                 // mode (ii): plain BFS distances in A
	hopsB   [][]int                 // plain BFS distances in B
}

var errRelaxedDistances = fmt.Errorf("core: eccentricity/diameter ground truth requires the strict Assumption 1 premises (construct with New/NewWithParts); relaxed products may be disconnected")

func (p *Product) distances() *distanceIndex {
	idx, _ := p.distancesContext(context.Background()) // background ctx: cannot fail
	return idx
}

// distancesContext builds (or returns) the factor BFS tables, checking ctx
// between per-vertex BFS runs so a SIGINT or deadline aborts the O(n·m)
// precompute promptly.  A cancelled build leaves no partial state; the next
// call rebuilds from scratch.
func (p *Product) distancesContext(ctx context.Context) (*distanceIndex, error) {
	p.distMu.Lock()
	defer p.distMu.Unlock()
	if p.dist != nil {
		return p.dist, nil
	}
	defer obs.Timed("core.distances")()
	idx := &distanceIndex{hopsB: make([][]int, p.b.N())}
	for k := 0; k < p.b.N(); k++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		idx.hopsB[k] = p.b.G.BFS(k)
	}
	if p.mode == ModeNonBipartiteFactor {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		idx.parityA = p.a.G.AllParityBFS()
	} else {
		idx.hopsA = make([][]int, p.a.N())
		for i := 0; i < p.a.N(); i++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			idx.hopsA[i] = p.a.G.BFS(i)
		}
	}
	p.dist = idx
	return idx, nil
}

// HopsAt returns the exact shortest-path distance between product vertices
// v and w, computed from factor BFS tables in O(1) after an O(n·m)
// per-factor precomputation.  ok is false when w is unreachable from v.
func (p *Product) HopsAt(v, w int) (hops int, ok bool) {
	hops, ok, _ = p.HopsAtContext(context.Background(), v, w)
	return hops, ok
}

// HopsAtContext is HopsAt under a context: the first call on a Product
// pays the factor BFS precompute, which checks ctx between per-vertex
// BFS runs and aborts with ctx.Err() on cancellation.
func (p *Product) HopsAtContext(ctx context.Context, v, w int) (hops int, ok bool, err error) {
	if v == w {
		return 0, true, nil
	}
	idx, err := p.distancesContext(ctx)
	if err != nil {
		return 0, false, err
	}
	i, k := p.PairOf(v)
	j, l := p.PairOf(w)
	hB := idx.hopsB[k][l]
	if hB == graph.Unreached {
		return 0, false, nil
	}
	t := hB % 2
	if p.mode == ModeNonBipartiteFactor {
		wA := idx.parityA[i].MinWalk(j, t)
		if wA == graph.Unreached {
			return 0, false, nil
		}
		if wA > hB {
			return wA, true, nil
		}
		return hB, true, nil
	}
	hA := idx.hopsA[i][j]
	if hA == graph.Unreached {
		return 0, false, nil
	}
	h := hA
	if hB > h {
		h = hB
	}
	if h%2 != t {
		h++
	}
	return h, true, nil
}

// EccentricityAt returns the exact eccentricity of product vertex v — the
// maximum distance to any other product vertex — from factor statistics.
// It requires the strict Assumption 1 premises (Thm. 1/2), under which the
// product is connected.
func (p *Product) EccentricityAt(v int) (int, error) {
	if !p.strict {
		return 0, errRelaxedDistances
	}
	if p.b.N() < 2 {
		return 0, fmt.Errorf("core: factor B has fewer than 2 vertices; the product has no edges")
	}
	idx := p.distances()
	i, k := p.PairOf(v)
	ecc := 0
	for t := 0; t < 2; t++ {
		// Largest hops_B(k,l) among l with parity t; both parities are
		// realized for every k in a connected bipartite B with >= 2 vertices.
		maxB := -1
		for _, d := range idx.hopsB[k] {
			if d != graph.Unreached && d%2 == t && d > maxB {
				maxB = d
			}
		}
		if maxB < 0 {
			continue
		}
		var h int
		if p.mode == ModeNonBipartiteFactor {
			// max over j of the shortest parity-t walk in A; strictness
			// guarantees A is connected and non-bipartite, so finite.
			maxA := 0
			for j := 0; j < p.a.N(); j++ {
				w := idx.parityA[i].MinWalk(j, t)
				if w == graph.Unreached {
					return 0, fmt.Errorf("core: internal: parity-%d walk missing in strict mode (i)", t)
				}
				if w > maxA {
					maxA = w
				}
			}
			h = maxA
			if maxB > h {
				h = maxB
			}
		} else {
			maxA := 0
			for j := 0; j < p.a.N(); j++ {
				d := idx.hopsA[i][j]
				if d == graph.Unreached {
					return 0, fmt.Errorf("core: internal: factor A disconnected in strict mode (ii)")
				}
				if d > maxA {
					maxA = d
				}
			}
			h = maxA
			if maxB > h {
				h = maxB
			}
			if h%2 != t {
				h++
			}
		}
		if h > ecc {
			ecc = h
		}
	}
	return ecc, nil
}

// Diameter returns the exact diameter of the product from factor
// statistics, in O(n_A·m_A + n_B·m_B) total.  Requires strict premises.
func (p *Product) Diameter() (int, error) {
	return p.DiameterContext(context.Background())
}

// DiameterContext is Diameter under a context: the factor BFS precompute
// (the dominant cost) checks ctx between per-vertex BFS runs and aborts
// with ctx.Err() on cancellation.
func (p *Product) DiameterContext(ctx context.Context) (int, error) {
	if !p.strict {
		return 0, errRelaxedDistances
	}
	if p.b.N() < 2 {
		return 0, fmt.Errorf("core: factor B has fewer than 2 vertices; the product has no edges")
	}
	idx, err := p.distancesContext(ctx)
	if err != nil {
		return 0, err
	}
	diam := 0
	for t := 0; t < 2; t++ {
		maxB := -1
		for k := range idx.hopsB {
			for _, d := range idx.hopsB[k] {
				if d != graph.Unreached && d%2 == t && d > maxB {
					maxB = d
				}
			}
		}
		if maxB < 0 {
			continue
		}
		var h int
		if p.mode == ModeNonBipartiteFactor {
			maxA := 0
			for i := range idx.parityA {
				for j := 0; j < p.a.N(); j++ {
					if w := idx.parityA[i].MinWalk(j, t); w > maxA {
						maxA = w
					}
				}
			}
			h = maxA
			if maxB > h {
				h = maxB
			}
		} else {
			maxA := 0 // the diameter of A
			for i := range idx.hopsA {
				for _, d := range idx.hopsA[i] {
					if d > maxA {
						maxA = d
					}
				}
			}
			h = maxA
			if maxB > h {
				h = maxB
			}
			if h%2 != t {
				h++
			}
		}
		if h > diam {
			diam = h
		}
	}
	return diam, nil
}
