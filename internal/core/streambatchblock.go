// Batched 2D-blocked streaming: the batch twin of block.go's per-edge
// walkers, so block leases (internal/serve's POST /v1/leases) ride the
// same whole-batch hot loop the sharded stream does — one sink dispatch
// per pooled buffer instead of one per edge.  In its own file, like
// streamchain.go, to leave the per-edge hot-loop code layout alone.
package core

import (
	"context"

	"kronbip/internal/exec"
)

// blockBatcher is chainBatcher with the base level restricted to
// last-factor edges [clo, chi) — the column stripe of a 2D block.
type blockBatcher struct {
	p        *Product
	buf      []exec.Edge
	emit     func(batch []exec.Edge) bool
	clo, chi int
}

// walk expands levels u..K onto the prefix pair (pv, pw), appending
// each complete edge of the column stripe and flushing full batches.
func (bb *blockBatcher) walk(u, pv, pw int, both bool) bool {
	p := bb.p
	f := p.bs[u-1]
	eb := f.G.Edges()
	n := f.N()
	av, aw := pv*n, pw*n
	if u == len(p.bs) {
		for _, be := range eb[bb.clo:bb.chi] {
			bb.buf = append(bb.buf, exec.Edge{V: av + be.U, W: aw + be.V})
			if both {
				bb.buf = append(bb.buf, exec.Edge{V: av + be.V, W: aw + be.U})
			}
			if cap(bb.buf)-len(bb.buf) < 2 {
				if !bb.emit(bb.buf) {
					return false
				}
				bb.buf = bb.buf[:0]
			}
		}
		return true
	}
	for _, be := range eb {
		if !bb.walk(u+1, av+be.U, aw+be.V, true) {
			return false
		}
		if both && !bb.walk(u+1, av+be.V, aw+be.U, true) {
			return false
		}
	}
	return true
}

// streamBlockRowsBatch walks rows [rlo, rhi) restricted to last-factor
// edges [clo, chi) in batches; buf must be empty with capacity >= 2.
// Full-width blockings fall through to the unrestricted batch walker,
// so a 1-column grid pays nothing over the shard path.
func (p *Product) streamBlockRowsBatch(rlo, rhi, clo, chi int, buf []exec.Edge, emit func(batch []exec.Edge) bool) {
	if chi <= clo {
		return
	}
	if clo == 0 && chi == p.lastFactorEdges() {
		p.streamRowsBatch(rlo, rhi, buf, emit)
		return
	}
	bb := &blockBatcher{p: p, buf: buf, emit: emit, clo: clo, chi: chi}
	ea := p.a.G.Edges()
	for t := 0; t < len(p.termOff)-1; t++ {
		tlo, thi := max(rlo, p.termOff[t]), min(rhi, p.termOff[t+1])
		for r := tlo; r < thi; r++ {
			idx := r - p.termOff[t]
			if t == 0 {
				if !bb.walk(1, ea[idx].U, ea[idx].V, true) {
					return
				}
			} else if !bb.walk(t, idx, idx, false) {
				return
			}
		}
	}
	if len(bb.buf) > 0 {
		bb.emit(bb.buf)
	}
}

// EachEdgeBlockBatch streams block (row, col) of an nrows×ncols
// blocking as batches of up to exec.BatchLen edges, in the same
// canonical-restricted order as EachEdgeBlock.  The yielded slice is
// reused between calls.  Iteration stops early if yield returns false.
func (p *Product) EachEdgeBlockBatch(row, nrows, col, ncols int, yield func(batch []exec.Edge) bool) error {
	rlo, rhi, clo, chi, err := p.blockRanges(row, nrows, col, ncols)
	if err != nil {
		return err
	}
	buf := exec.GetEdgeBuf()
	defer exec.PutEdgeBuf(buf)
	p.streamBlockRowsBatch(rlo, rhi, clo, chi, (*buf)[:0], yield)
	return nil
}

// EachEdgeBlockBatchContext is EachEdgeBlockBatch under a context,
// with the batch cancellation contract of EachEdgeShardBatchContext:
// checked before each batch is delivered, no batch is yielded after a
// cancellation is observed, and no edge is ever delivered twice.
func (p *Product) EachEdgeBlockBatchContext(ctx context.Context, row, nrows, col, ncols int, yield func(batch []exec.Edge) bool) error {
	rlo, rhi, clo, chi, err := p.blockRanges(row, nrows, col, ncols)
	if err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	buf := exec.GetEdgeBuf()
	defer exec.PutEdgeBuf(buf)
	done := ctx.Done()
	if done == nil {
		p.streamBlockRowsBatch(rlo, rhi, clo, chi, (*buf)[:0], yield)
		return nil
	}
	cancelled := false
	p.streamBlockRowsBatch(rlo, rhi, clo, chi, (*buf)[:0], func(batch []exec.Edge) bool {
		select {
		case <-done:
			cancelled = true
			return false
		default:
		}
		return yield(batch)
	})
	if cancelled {
		return ctx.Err()
	}
	return nil
}
