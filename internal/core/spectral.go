package core

import (
	"context"
	"fmt"
	"math"

	"kronbip/internal/graph"
	"kronbip/internal/grb"
	"kronbip/internal/obs"
)

// Spectral ground truth.  The paper's §I lists eigenvalues among the
// statistics whose Kronecker ground truth carries over from prior work:
// eig(A ⊗ B) = { λ·μ : λ ∈ eig(A), μ ∈ eig(B) }, so the spectral radius
// of the product factorizes,
//
//	ρ(A ⊗ B)     = ρ(A)·ρ(B),
//	ρ((A+I) ⊗ B) = (ρ(A)+1)·ρ(B),
//
// the mode-(ii) shift using eig(A+I) = eig(A)+1 and the fact that for a
// symmetric A the Perron root ρ(A) is the largest eigenvalue, so ρ(A)+1
// dominates |λ+1| for every other eigenvalue λ ≥ −ρ(A).
//
// Chains iterate the mode-(ii) identity with the (never materialized)
// previous level as A: ρ(C_t) = (ρ(C_{t-1})+1)·ρ(B_t).
//
// Factor spectral radii are computed by power iteration on the (small)
// factors; the product's radius is then exact up to the factor iteration
// tolerance — no product-sized linear algebra happens regardless of the
// chain length.

// SpectralRadius returns ρ(C) via the factorization above.  tol is the
// relative convergence tolerance of the factor power iterations (e.g.
// 1e-10); maxIter bounds the iteration count.
func (p *Product) SpectralRadius(tol float64, maxIter int) (float64, error) {
	return p.SpectralRadiusContext(context.Background(), tol, maxIter)
}

// SpectralRadiusContext is SpectralRadius under a context: the factor
// power iterations check ctx once per iteration and abort with ctx.Err()
// on cancellation.
func (p *Product) SpectralRadiusContext(ctx context.Context, tol float64, maxIter int) (float64, error) {
	defer obs.Timed("core.spectral_radius")()
	r, err := powerIteration(ctx, p.a.G.Adjacency(), tol, maxIter)
	if err != nil {
		return 0, fmt.Errorf("core: factor A power iteration: %w", err)
	}
	if p.mode == ModeSelfLoopFactor {
		r++
	}
	for t, f := range p.bs {
		if t > 0 {
			r++ // the +I lift of chain level t
		}
		rb, err := powerIteration(ctx, f.G.Adjacency(), tol, maxIter)
		if err != nil {
			return 0, fmt.Errorf("core: factor %s power iteration: %w", bName(t, len(p.bs)), err)
		}
		r *= rb
	}
	return r, nil
}

// GraphSpectralRadius estimates the spectral radius of an explicit graph's
// adjacency matrix by power iteration — the direct route the factorized
// SpectralRadius is validated against.
func GraphSpectralRadius(g *graph.Graph, tol float64, maxIter int) (float64, error) {
	return powerIteration(context.Background(), g.Adjacency(), tol, maxIter)
}

// powerIteration estimates the spectral radius of a symmetric 0/1 matrix
// by normalized power iteration with a deterministic start vector,
// checking ctx once per iteration.
func powerIteration(ctx context.Context, m *grb.Matrix[int64], tol float64, maxIter int) (float64, error) {
	n := m.NRows()
	if n == 0 {
		return 0, nil
	}
	if tol <= 0 || maxIter <= 0 {
		return 0, fmt.Errorf("core: tol and maxIter must be positive")
	}
	// Float copy of the adjacency.
	b := grb.NewBuilder[float64](n, n)
	m.Iterate(func(i, j int, v int64) bool {
		b.Add(i, j, float64(v))
		return true
	})
	a, err := b.Build()
	if err != nil {
		return 0, err
	}
	x := make([]float64, n)
	for i := range x {
		// Deterministic, component-spanning start: strictly positive.
		x[i] = 1 + float64(i%7)/7
	}
	normalize(x)
	prev := 0.0
	for iter := 0; iter < maxIter; iter++ {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		y, err := grb.MxV(a, x)
		if err != nil {
			return 0, err
		}
		lambda := norm2(y)
		if lambda == 0 {
			return 0, nil // empty graph
		}
		for i := range y {
			y[i] /= lambda
		}
		x = y
		if math.Abs(lambda-prev) <= tol*lambda {
			return lambda, nil
		}
		prev = lambda
	}
	return prev, nil
}

func norm2(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

func normalize(v []float64) {
	n := norm2(v)
	if n == 0 {
		return
	}
	for i := range v {
		v[i] /= n
	}
}
