// Chain (K >= 2) row walkers for the per-edge streaming vocabulary.
// Kept in their own file, after stream.go in compilation order: placing
// these next to streamRowsTwoFactor perturbs the code layout of the
// two-factor per-edge hot loop enough to cost ~20% on
// BenchmarkStream_ShardedEngine (indirect-call-heavy loops are layout
// sensitive).  The batched chain walker lives in streambatch.go with the
// rest of the batch vocabulary.
package core

// streamRowsChain is the general K >= 2 row walker.  A term-0 row expands
// an A edge through every level with both B-edge orientations; a term-t
// row (a prefix self loop) anchors at level t with the canonical
// orientation — the prefix halves coincide, so orientation choice at the
// anchor is the only symmetry to break — and both orientations below.
func (p *Product) streamRowsChain(lo, hi int, yield func(v, w int) bool) {
	ea := p.a.G.Edges()
	for t := 0; t < len(p.termOff)-1; t++ {
		tlo, thi := max(lo, p.termOff[t]), min(hi, p.termOff[t+1])
		for r := tlo; r < thi; r++ {
			idx := r - p.termOff[t]
			if t == 0 {
				if !p.emitChain(1, ea[idx].U, ea[idx].V, true, yield) {
					return
				}
			} else if !p.emitChain(t, idx, idx, false, yield) {
				return
			}
		}
	}
}

// emitChain recursively expands levels u..K onto the prefix pair (pv, pw),
// yielding a product edge per complete digit tuple.  both selects whether
// level u ranges over both edge orientations (all levels except a
// self-loop term's anchor).  Returns false when yield stopped the stream.
func (p *Product) emitChain(u, pv, pw int, both bool, yield func(v, w int) bool) bool {
	f := p.bs[u-1]
	eb := f.G.Edges()
	n := f.N()
	av, aw := pv*n, pw*n
	if u == len(p.bs) {
		for _, be := range eb {
			if !yield(av+be.U, aw+be.V) {
				return false
			}
			if both && !yield(av+be.V, aw+be.U) {
				return false
			}
		}
		return true
	}
	for _, be := range eb {
		if !p.emitChain(u+1, av+be.U, aw+be.V, true, yield) {
			return false
		}
		if both && !p.emitChain(u+1, av+be.V, aw+be.U, true, yield) {
			return false
		}
	}
	return true
}

