package core

import (
	"context"
	"time"

	"kronbip/internal/exec"
	"kronbip/internal/obs"
	"kronbip/internal/obs/timeline"
)

// Batched edge streaming.  The per-edge paths in stream.go pay one
// indirect call per product edge; at millions of edges per shard that
// dispatch, not the index arithmetic, is the cost.  The batch paths
// below fill a pooled []exec.Edge buffer (capacity exec.BatchLen) in a
// closure-free hot loop and yield whole batches, so downstream work —
// sink dispatch, fan-in channel sends, obs counter flushes — happens
// once per batch.  StreamEdgesParallelContext picks this path
// automatically for any sink that implements exec.BatchSink.
//
// Cancellation contract: the context is checked before every batch is
// delivered, so no batch is ever yielded after a cancellation is
// observed; at most one buffer's worth of edges (exec.BatchLen) is
// generated-and-discarded past the cancellation point.  An edge is
// never delivered twice, cancelled or not.

// streamRowsBatch walks rows [lo, hi) of the shard layout, filling buf
// and flushing full batches to emit; buf must be empty with capacity
// >= 2.  The final partial batch is emitted too.  Emitted slices are
// reused between calls — consumers must not retain them.  Two-factor
// products take the historical closure-free loop; chains walk the
// mixed-radix decomposition (streamRowsBatchChain) with the same batch
// discipline.
func (p *Product) streamRowsBatch(lo, hi int, buf []exec.Edge, emit func(batch []exec.Edge) bool) {
	if len(p.bs) > 1 {
		p.streamRowsBatchChain(lo, hi, buf, emit)
		return
	}
	ea := p.a.G.Edges()
	eb := p.bs[0].G.Edges()
	nb := p.bs[0].N()
	for r := lo; r < hi; r++ {
		if r < len(ea) {
			au, av := ea[r].U*nb, ea[r].V*nb
			for _, be := range eb {
				buf = append(buf, exec.Edge{V: au + be.U, W: av + be.V}, exec.Edge{V: au + be.V, W: av + be.U})
				if cap(buf)-len(buf) < 2 {
					if !emit(buf) {
						return
					}
					buf = buf[:0]
				}
			}
			continue
		}
		i := (r - len(ea)) * nb // self-loop row (mode (ii) only)
		for _, be := range eb {
			buf = append(buf, exec.Edge{V: i + be.U, W: i + be.V})
			if cap(buf)-len(buf) < 2 {
				if !emit(buf) {
					return
				}
				buf = buf[:0]
			}
		}
	}
	if len(buf) > 0 {
		emit(buf)
	}
}

// chainBatcher carries the pooled buffer through the recursive chain
// walk so the hot loop appends edges directly — one emit call per full
// batch, never per edge.
type chainBatcher struct {
	p    *Product
	buf  []exec.Edge
	emit func(batch []exec.Edge) bool
}

// walk is the batch twin of Product.emitChain: expand levels u..K onto
// the prefix pair (pv, pw), appending each complete edge and flushing
// full batches.  Returns false once emit stops the stream.
func (cb *chainBatcher) walk(u, pv, pw int, both bool) bool {
	p := cb.p
	f := p.bs[u-1]
	eb := f.G.Edges()
	n := f.N()
	av, aw := pv*n, pw*n
	if u == len(p.bs) {
		for _, be := range eb {
			cb.buf = append(cb.buf, exec.Edge{V: av + be.U, W: aw + be.V})
			if both {
				cb.buf = append(cb.buf, exec.Edge{V: av + be.V, W: aw + be.U})
			}
			if cap(cb.buf)-len(cb.buf) < 2 {
				if !cb.emit(cb.buf) {
					return false
				}
				cb.buf = cb.buf[:0]
			}
		}
		return true
	}
	for _, be := range eb {
		if !cb.walk(u+1, av+be.U, aw+be.V, true) {
			return false
		}
		if both && !cb.walk(u+1, av+be.V, aw+be.U, true) {
			return false
		}
	}
	return true
}

// streamRowsBatchChain is the K >= 2 batch walker: the same term/row
// layout as streamRowsChain, with edges accumulated into the pooled
// buffer by chainBatcher.
func (p *Product) streamRowsBatchChain(lo, hi int, buf []exec.Edge, emit func(batch []exec.Edge) bool) {
	cb := &chainBatcher{p: p, buf: buf, emit: emit}
	ea := p.a.G.Edges()
	for t := 0; t < len(p.termOff)-1; t++ {
		tlo, thi := max(lo, p.termOff[t]), min(hi, p.termOff[t+1])
		for r := tlo; r < thi; r++ {
			idx := r - p.termOff[t]
			if t == 0 {
				if !cb.walk(1, ea[idx].U, ea[idx].V, true) {
					return
				}
			} else if !cb.walk(t, idx, idx, false) {
				return
			}
		}
	}
	if len(cb.buf) > 0 {
		cb.emit(cb.buf)
	}
}

// EachEdgeShardBatch streams shard `shard` of `nshards` as batches of
// up to exec.BatchLen edges.  The union over all shards is exactly the
// EachEdge stream; edges never repeat across shards.  The yielded
// slice is reused between calls.  Iteration stops early if yield
// returns false.
func (p *Product) EachEdgeShardBatch(shard, nshards int, yield func(batch []exec.Edge) bool) error {
	lo, hi, err := p.shardRange(shard, nshards)
	if err != nil {
		return err
	}
	buf := exec.GetEdgeBuf()
	defer exec.PutEdgeBuf(buf)
	p.streamRowsBatch(lo, hi, (*buf)[:0], yield)
	return nil
}

// EachEdgeShardBatchContext is EachEdgeShardBatch under a context.
// The context is checked before each batch is delivered; on
// cancellation the stream stops without yielding again and returns
// ctx.Err() (see the package contract above).  A non-cancellable
// context takes the zero-overhead EachEdgeShardBatch loop.
func (p *Product) EachEdgeShardBatchContext(ctx context.Context, shard, nshards int, yield func(batch []exec.Edge) bool) error {
	lo, hi, err := p.shardRange(shard, nshards)
	if err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	buf := exec.GetEdgeBuf()
	defer exec.PutEdgeBuf(buf)
	done := ctx.Done()
	if done == nil {
		p.streamRowsBatch(lo, hi, (*buf)[:0], yield)
		return nil
	}
	cancelled := false
	p.streamRowsBatch(lo, hi, (*buf)[:0], func(batch []exec.Edge) bool {
		select {
		case <-done:
			cancelled = true
			return false
		default:
		}
		return yield(batch)
	})
	if cancelled {
		return ctx.Err()
	}
	return nil
}

// EachEdgeBatchContext streams the whole edge set (the EachEdge order)
// in batches under a context; see EachEdgeShardBatchContext for the
// cancellation contract.
func (p *Product) EachEdgeBatchContext(ctx context.Context, yield func(batch []exec.Edge) bool) error {
	return p.EachEdgeShardBatchContext(ctx, 0, 1, yield)
}

// streamShardBatch streams one shard wholesale into bs, capturing the
// first sink error; the uninstrumented half of the parallel batch path.
func (p *Product) streamShardBatch(ctx context.Context, s, nshards int, bs exec.BatchSink) error {
	var sinkErr error
	err := p.EachEdgeShardBatchContext(ctx, s, nshards, func(batch []exec.Edge) bool {
		if e := bs.EdgeBatch(batch); e != nil {
			sinkErr = e
			return false
		}
		return true
	})
	if err != nil {
		return err
	}
	return sinkErr
}

// streamShardBatchInstrumented is streamShardBatch with per-shard
// metrics.  Batching makes the obs contract free: the shared edge
// counter takes exactly one Add per batch (>= the streamObsBatch
// granularity the per-edge path had to engineer), and the labeled
// per-shard counter — pre-resolved once per process by
// shardEdgeCounter, never looked up in the epilogue — takes one.
func (p *Product) streamShardBatchInstrumented(ctx context.Context, s, nshards int, shardEdges *obs.Counter, bs exec.BatchSink) error {
	start := time.Now()
	var end timeline.Done
	if timeline.Enabled() {
		end = timeline.Begin(timeline.CatShard, "core.stream", s)
	}
	var total int64
	var sinkErr error
	err := p.EachEdgeShardBatchContext(ctx, s, nshards, func(batch []exec.Edge) bool {
		if e := bs.EdgeBatch(batch); e != nil {
			sinkErr = e
			return false
		}
		n := int64(len(batch))
		mStreamEdges.Add(n)
		total += n
		return true
	})
	if err == nil {
		err = sinkErr
	}
	shardEdges.Add(total)
	hShardSecs.Observe(time.Since(start).Seconds())
	if err == nil {
		mShardsDone.Inc()
	}
	if end != nil {
		end(err)
	}
	return err
}
