package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"kronbip/internal/count"
	"kronbip/internal/gen"
	"kronbip/internal/graph"
	"kronbip/internal/grb"
)

// mode1Pairs are (non-bipartite A, bipartite B) factor pairs for Assump 1(i).
func mode1Pairs() []struct {
	name string
	a, b *graph.Graph
} {
	return []struct {
		name string
		a, b *graph.Graph
	}{
		{"K3 x P2", gen.Complete(3), gen.Path(2)},
		{"K3 x P4", gen.Complete(3), gen.Path(4)},
		{"K4 x C4", gen.Complete(4), gen.Cycle(4)},
		{"C5 x star5", gen.Cycle(5), gen.Star(5)},
		{"lollipop x K23", gen.Lollipop(3, 2), gen.CompleteBipartite(2, 3).Graph},
		{"petersen x C6", gen.Petersen(), gen.Cycle(6)},
		{"C5 x crown3", gen.Cycle(5), gen.Crown(3).Graph},
		{"K4 x tree", gen.Complete(4), gen.BinaryTree(3)},
		{"lollipop x Q3", gen.Lollipop(5, 1), gen.Hypercube(3)},
	}
}

// mode2Pairs are (bipartite A, bipartite B) factor pairs for Assump 1(ii).
func mode2Pairs() []struct {
	name string
	a, b *graph.Graph
} {
	return []struct {
		name string
		a, b *graph.Graph
	}{
		{"P2 x P3", gen.Path(2), gen.Path(3)},
		{"P4 x P4", gen.Path(4), gen.Path(4)},
		{"C4 x C6", gen.Cycle(4), gen.Cycle(6)},
		{"star4 x K23", gen.Star(4), gen.CompleteBipartite(2, 3).Graph},
		{"K22 x K33", gen.CompleteBipartite(2, 2).Graph, gen.CompleteBipartite(3, 3).Graph},
		{"crown3 x P5", gen.Crown(3).Graph, gen.Path(5)},
		{"tree x star4", gen.BinaryTree(3), gen.Star(4)},
		{"Q3 x C4", gen.Hypercube(3), gen.Cycle(4)},
		{"doublestar x grid", gen.DoubleStar(2, 3), gen.Grid(2, 3)},
	}
}

func TestNewValidation(t *testing.T) {
	// Mode (i) rejects bipartite A under strict premises.
	if _, err := New(gen.Path(3), gen.Path(3), ModeNonBipartiteFactor); err == nil {
		t.Fatal("strict mode (i) accepted bipartite A")
	}
	// Mode (ii) rejects non-bipartite A even relaxed.
	if _, err := NewRelaxed(gen.Complete(3), gen.Path(3), ModeSelfLoopFactor); err == nil {
		t.Fatal("mode (ii) accepted non-bipartite A")
	}
	// Both modes reject non-bipartite B.
	if _, err := NewRelaxed(gen.Complete(3), gen.Cycle(5), ModeNonBipartiteFactor); err == nil {
		t.Fatal("accepted non-bipartite B")
	}
	// Disconnected factor rejected strictly, accepted relaxed.
	disc := gen.DisjointUnion(gen.Path(2), gen.Path(2))
	if _, err := New(gen.Complete(3), disc, ModeNonBipartiteFactor); err == nil {
		t.Fatal("strict mode accepted disconnected B")
	}
	if _, err := NewRelaxed(gen.Complete(3), disc, ModeNonBipartiteFactor); err != nil {
		t.Fatalf("relaxed mode rejected disconnected B: %v", err)
	}
	// Factors with self loops always rejected.
	loopy := gen.Path(3).WithFullSelfLoops()
	if _, err := NewRelaxed(loopy, gen.Path(3), ModeSelfLoopFactor); err == nil {
		t.Fatal("accepted factor with self loops")
	}
	if _, err := NewRelaxed(gen.Complete(3), loopy, ModeNonBipartiteFactor); err == nil {
		t.Fatal("accepted B factor with self loops")
	}
	// Unknown mode.
	if _, err := NewRelaxed(gen.Complete(3), gen.Path(3), Mode(99)); err == nil {
		t.Fatal("accepted unknown mode")
	}
}

func TestIndexMapsRoundTrip(t *testing.T) {
	p, err := New(gen.Complete(3), gen.Path(4), ModeNonBipartiteFactor)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < p.N(); v++ {
		i, k := p.PairOf(v)
		if p.IndexOf(i, k) != v {
			t.Fatalf("index maps do not invert at %d", v)
		}
		if i < 0 || i >= 3 || k < 0 || k >= 4 {
			t.Fatalf("PairOf(%d) = (%d,%d) out of range", v, i, k)
		}
	}
}

func TestNumEdgesClosedForm(t *testing.T) {
	for _, tc := range mode1Pairs() {
		p, err := New(tc.a, tc.b, ModeNonBipartiteFactor)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		g, err := p.Materialize(0)
		if err != nil {
			t.Fatal(err)
		}
		if int64(g.NumEdges()) != p.NumEdges() {
			t.Fatalf("%s: NumEdges formula %d, materialized %d", tc.name, p.NumEdges(), g.NumEdges())
		}
	}
	for _, tc := range mode2Pairs() {
		p, err := New(tc.a, tc.b, ModeSelfLoopFactor)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		g, err := p.Materialize(0)
		if err != nil {
			t.Fatal(err)
		}
		if int64(g.NumEdges()) != p.NumEdges() {
			t.Fatalf("%s: NumEdges formula %d, materialized %d", tc.name, p.NumEdges(), g.NumEdges())
		}
	}
}

// TestTheorem1And2Connectivity verifies the headline structural claims: the
// strict products are connected AND bipartite, while the naive
// bipartite ⊗ bipartite product (Fig. 1 top) is disconnected.
func TestTheorem1And2Connectivity(t *testing.T) {
	for _, tc := range mode1Pairs() {
		p, err := New(tc.a, tc.b, ModeNonBipartiteFactor)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if !p.ConnectedByTheorem() {
			t.Fatalf("%s: strict product not marked connected", tc.name)
		}
		g, _ := p.Materialize(0)
		if !g.IsConnected() {
			t.Fatalf("%s: Thm. 1 violated — product disconnected", tc.name)
		}
		if !g.IsBipartite() {
			t.Fatalf("%s: product not bipartite", tc.name)
		}
	}
	for _, tc := range mode2Pairs() {
		p, err := New(tc.a, tc.b, ModeSelfLoopFactor)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		g, _ := p.Materialize(0)
		if !g.IsConnected() {
			t.Fatalf("%s: Thm. 2 violated — product disconnected", tc.name)
		}
		if !g.IsBipartite() {
			t.Fatalf("%s: product not bipartite", tc.name)
		}
	}
	// Fig. 1 (top): bipartite ⊗ bipartite without self loops is disconnected.
	p, err := NewRelaxed(gen.Path(3), gen.Path(3), ModeNonBipartiteFactor)
	if err != nil {
		t.Fatal(err)
	}
	if p.ConnectedByTheorem() {
		t.Fatal("relaxed product claims theorem-backed connectivity")
	}
	g, _ := p.Materialize(0)
	if g.IsConnected() {
		t.Fatal("bipartite ⊗ bipartite product should be disconnected (Fig. 1)")
	}
}

func TestPartSizesAndSides(t *testing.T) {
	b, _ := graph.AsBipartite(gen.Path(4))
	_ = b
	p, err := New(gen.Complete(3), gen.Path(4), ModeNonBipartiteFactor)
	if err != nil {
		t.Fatal(err)
	}
	nu, nw := p.PartSizes()
	if nu+nw != p.N() {
		t.Fatalf("part sizes %d+%d != n=%d", nu, nw, p.N())
	}
	// Sides must 2-color every materialized edge.
	g, _ := p.Materialize(0)
	g.EachEdge(func(u, v int) bool {
		if p.SideOf(u) == p.SideOf(v) {
			t.Fatalf("edge (%d,%d) within one side", u, v)
		}
		return true
	})
	// Count sides.
	cu := 0
	for v := 0; v < p.N(); v++ {
		if p.SideOf(v) == graph.SideU {
			cu++
		}
	}
	if cu != nu {
		t.Fatalf("SideOf counts %d U vertices, PartSizes says %d", cu, nu)
	}
}

func TestDegreesMatchMaterialized(t *testing.T) {
	check := func(name string, p *Product) {
		g, err := p.Materialize(0)
		if err != nil {
			t.Fatal(err)
		}
		want := g.Degrees()
		got := p.Degrees()
		if !grb.EqualVec(got, want) {
			t.Fatalf("%s: degree vector mismatch", name)
		}
		for v := 0; v < p.N(); v++ {
			if p.DegreeAt(v) != want[v] {
				t.Fatalf("%s: DegreeAt(%d) = %d, want %d", name, v, p.DegreeAt(v), want[v])
			}
		}
		w2want := g.TwoWalks()
		w2got := p.TwoWalks()
		if !grb.EqualVec(w2got, w2want) {
			t.Fatalf("%s: two-walk vector mismatch", name)
		}
		for v := 0; v < p.N(); v++ {
			if p.TwoWalksAt(v) != w2want[v] {
				t.Fatalf("%s: TwoWalksAt(%d) = %d, want %d", name, v, p.TwoWalksAt(v), w2want[v])
			}
		}
	}
	for _, tc := range mode1Pairs() {
		p, err := New(tc.a, tc.b, ModeNonBipartiteFactor)
		if err != nil {
			t.Fatal(err)
		}
		check(tc.name, p)
	}
	for _, tc := range mode2Pairs() {
		p, err := New(tc.a, tc.b, ModeSelfLoopFactor)
		if err != nil {
			t.Fatal(err)
		}
		check(tc.name, p)
	}
}

// TestVertexFourCyclesAgainstBruteForce is the central Thm. 3/4 validation:
// the closed-form per-vertex 4-cycle counts must equal a brute-force count
// on the materialized product for every factor pair.
func TestVertexFourCyclesAgainstBruteForce(t *testing.T) {
	check := func(name string, p *Product) {
		g, err := p.Materialize(0)
		if err != nil {
			t.Fatal(err)
		}
		want, err := count.VertexButterflies(g)
		if err != nil {
			t.Fatal(err)
		}
		got := p.VertexFourCycles()
		if !grb.EqualVec(got, want) {
			for v := range want {
				if got[v] != want[v] {
					t.Fatalf("%s: s[%d] = %d, brute force %d", name, v, got[v], want[v])
				}
			}
		}
		// Point queries agree with the vector.
		for v := 0; v < p.N(); v++ {
			if p.VertexFourCyclesAt(v) != got[v] {
				t.Fatalf("%s: VertexFourCyclesAt(%d) disagrees with vector", name, v)
			}
		}
	}
	for _, tc := range mode1Pairs() {
		p, err := New(tc.a, tc.b, ModeNonBipartiteFactor)
		if err != nil {
			t.Fatal(err)
		}
		check("mode1 "+tc.name, p)
	}
	for _, tc := range mode2Pairs() {
		p, err := New(tc.a, tc.b, ModeSelfLoopFactor)
		if err != nil {
			t.Fatal(err)
		}
		check("mode2 "+tc.name, p)
	}
}

// TestEdgeFourCyclesAgainstBruteForce validates Thm. 5 and the derived
// mode-(ii) edge formula against the combinatorial edge counter.
func TestEdgeFourCyclesAgainstBruteForce(t *testing.T) {
	check := func(name string, p *Product) {
		g, err := p.Materialize(0)
		if err != nil {
			t.Fatal(err)
		}
		want, err := count.EdgeButterflies(g)
		if err != nil {
			t.Fatal(err)
		}
		seen := 0
		p.EachEdgeFourCycle(func(v, w int, sq int64) bool {
			seen++
			e := graph.Edge{U: v, V: w}
			if w < v {
				e = graph.Edge{U: w, V: v}
			}
			bf, ok := want[e]
			if !ok {
				t.Fatalf("%s: streamed edge %v not in materialized graph", name, e)
			}
			if sq != bf {
				t.Fatalf("%s: ◊(%d,%d) = %d, brute force %d", name, v, w, sq, bf)
			}
			return true
		})
		if int64(seen) != p.NumEdges() {
			t.Fatalf("%s: streamed %d edges, want %d", name, seen, p.NumEdges())
		}
	}
	for _, tc := range mode1Pairs() {
		p, err := New(tc.a, tc.b, ModeNonBipartiteFactor)
		if err != nil {
			t.Fatal(err)
		}
		check("mode1 "+tc.name, p)
	}
	for _, tc := range mode2Pairs() {
		p, err := New(tc.a, tc.b, ModeSelfLoopFactor)
		if err != nil {
			t.Fatal(err)
		}
		check("mode2 "+tc.name, p)
	}
}

func TestGlobalFourCyclesThreeWays(t *testing.T) {
	check := func(name string, p *Product) {
		g, err := p.Materialize(0)
		if err != nil {
			t.Fatal(err)
		}
		brute, err := count.GlobalButterflies(g)
		if err != nil {
			t.Fatal(err)
		}
		if got := p.GlobalFourCycles(); got != brute {
			t.Fatalf("%s: GlobalFourCycles = %d, brute force %d", name, got, brute)
		}
		if got := p.GlobalFourCyclesViaEdges(); got != brute {
			t.Fatalf("%s: GlobalFourCyclesViaEdges = %d, brute force %d", name, got, brute)
		}
	}
	for _, tc := range mode1Pairs() {
		p, _ := New(tc.a, tc.b, ModeNonBipartiteFactor)
		check("mode1 "+tc.name, p)
	}
	for _, tc := range mode2Pairs() {
		p, _ := New(tc.a, tc.b, ModeSelfLoopFactor)
		check("mode2 "+tc.name, p)
	}
}

// TestPropertyRandomFactors cross-validates both modes on random factors.
func TestPropertyRandomFactors(t *testing.T) {
	randBip := func(rng *rand.Rand) *graph.Graph {
		nu, nw := 2+rng.Intn(3), 2+rng.Intn(3)
		var pairs [][2]int
		for u := 0; u < nu; u++ {
			for w := 0; w < nw; w++ {
				if rng.Float64() < 0.6 {
					pairs = append(pairs, [2]int{u, w})
				}
			}
		}
		b, err := graph.NewBipartite(nu, nw, pairs)
		if err != nil {
			panic(err)
		}
		return b.Graph
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		bGraph := randBip(rng)

		// Mode (ii): bipartite A.
		p2, err := NewRelaxed(randBip(rng), bGraph, ModeSelfLoopFactor)
		if err != nil {
			return false
		}
		// Mode (i): A = odd cycle with chords.
		a := gen.Cycle(3 + 2*rng.Intn(2))
		p1, err := NewRelaxed(a, bGraph, ModeNonBipartiteFactor)
		if err != nil {
			return false
		}
		for _, p := range []*Product{p1, p2} {
			g, err := p.Materialize(0)
			if err != nil {
				return false
			}
			want, err := count.VertexButterflies(g)
			if err != nil {
				return false
			}
			if !grb.EqualVec(p.VertexFourCycles(), want) {
				return false
			}
			wantE, err := count.EdgeButterflies(g)
			if err != nil {
				return false
			}
			ok := true
			p.EachEdgeFourCycle(func(v, w int, sq int64) bool {
				e := graph.Edge{U: min(v, w), V: max(v, w)}
				if wantE[e] != sq {
					ok = false
					return false
				}
				return true
			})
			if !ok {
				return false
			}
			wantG, err := count.GlobalButterflies(g)
			if err != nil || p.GlobalFourCycles() != wantG {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestHasEdgeMatchesMaterialized(t *testing.T) {
	p, err := New(gen.Path(3), gen.Cycle(4), ModeSelfLoopFactor)
	if err != nil {
		t.Fatal(err)
	}
	g, _ := p.Materialize(0)
	for v := 0; v < p.N(); v++ {
		for w := 0; w < p.N(); w++ {
			if p.HasEdge(v, w) != g.HasEdge(v, w) {
				t.Fatalf("HasEdge(%d,%d) = %v, materialized %v", v, w, p.HasEdge(v, w), g.HasEdge(v, w))
			}
		}
	}
}

func TestEachEdgeNoDuplicates(t *testing.T) {
	p, err := New(gen.Star(4), gen.Cycle(6), ModeSelfLoopFactor)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[graph.Edge]bool{}
	p.EachEdge(func(v, w int) bool {
		e := graph.Edge{U: min(v, w), V: max(v, w)}
		if seen[e] {
			t.Fatalf("edge %v streamed twice", e)
		}
		seen[e] = true
		return true
	})
	if int64(len(seen)) != p.NumEdges() {
		t.Fatalf("streamed %d distinct edges, want %d", len(seen), p.NumEdges())
	}
	// Early stop.
	n := 0
	p.EachEdge(func(v, w int) bool {
		n++
		return n < 5
	})
	if n != 5 {
		t.Fatalf("early stop streamed %d, want 5", n)
	}
}

func TestEdgeFourCyclesAtNonEdge(t *testing.T) {
	p, _ := New(gen.Complete(3), gen.Path(3), ModeNonBipartiteFactor)
	if _, err := p.EdgeFourCyclesAt(0, 0); err == nil {
		t.Fatal("accepted self pair as edge")
	}
}

// TestRemark1ProductsAlwaysHaveFourCycles: factors with zero 4-cycles and a
// vertex of degree ≥ 2 on each side yield a product with 4-cycles.
func TestRemark1ProductsAlwaysHaveFourCycles(t *testing.T) {
	a := gen.Lollipop(3, 2) // non-bipartite, 4-cycle free
	b := gen.Star(4)        // bipartite, 4-cycle free
	fa, _ := NewFactor(a)
	fb, _ := NewFactor(b)
	if fa.Global4 != 0 || fb.Global4 != 0 {
		t.Fatal("test factors are not 4-cycle free")
	}
	p, err := New(a, b, ModeNonBipartiteFactor)
	if err != nil {
		t.Fatal(err)
	}
	if p.GlobalFourCycles() == 0 {
		t.Fatal("Remark 1 violated: product of 4-cycle-free factors has no 4-cycles")
	}
	// Mode (ii) variant.
	p2, err := New(gen.Path(3), b, ModeSelfLoopFactor)
	if err != nil {
		t.Fatal(err)
	}
	if p2.GlobalFourCycles() == 0 {
		t.Fatal("Remark 1 violated in mode (ii)")
	}
}

// TestPrintedThm4SignErratum documents the sign erratum in the printed
// Thm. 4: evaluating the published vector form verbatim (−d_C, +d_C²)
// disagrees with brute force, while the proof-consistent form (+d_C, −d_C²)
// that this package implements agrees.
func TestPrintedThm4SignErratum(t *testing.T) {
	a, b := gen.Path(2), gen.Path(3)
	p, err := New(a, b, ModeSelfLoopFactor)
	if err != nil {
		t.Fatal(err)
	}
	g, _ := p.Materialize(0)
	brute, _ := count.VertexButterflies(g)

	// Printed form: ½[ diag4 − d_C − w2_C + d_C² ].
	printed := make([]int64, p.N())
	for v := range printed {
		i, k := p.PairOf(v)
		diag4 := p.diag4A(i) * p.FactorB().diag4(k)
		d := p.DegreeAt(v)
		w2 := p.TwoWalksAt(v)
		printed[v] = (diag4 - d - w2 + d*d) / 2
	}
	if grb.EqualVec(printed, brute) {
		t.Fatal("printed Thm. 4 signs unexpectedly agree with brute force; erratum note is stale")
	}
	if !grb.EqualVec(p.VertexFourCycles(), brute) {
		t.Fatal("proof-consistent Thm. 4 disagrees with brute force")
	}
}

// TestPrintedThm5ExpansionErratum documents the missing +2 in the printed
// point-wise expansion of Thm. 5 (A=K₃, B=K₂ gives C=C₆, which is 4-cycle
// free; the printed expansion yields −2 per edge).
func TestPrintedThm5ExpansionErratum(t *testing.T) {
	p, err := New(gen.Complete(3), gen.Path(2), ModeNonBipartiteFactor)
	if err != nil {
		t.Fatal(err)
	}
	p.EachEdgeFourCycle(func(v, w int, sq int64) bool {
		if sq != 0 {
			t.Fatalf("C6 edge (%d,%d) has ◊ = %d, want 0", v, w, sq)
		}
		// Printed expansion: ◊◊ + ◊(dk+dl−1) + (di+dj−1)◊ + didl − di − dl
		// + djdk − dj − dk; with all factor ◊ = 0 and degrees (2,2,1,1) this
		// is 2−2−1+2−2−1 = −2 ≠ 0.
		i, _ := p.PairOf(v)
		j, _ := p.PairOf(w)
		di, dj := p.a.D[i], p.a.D[j]
		var dk, dl int64 = 1, 1
		printedVal := di*dl - di - dl + dj*dk - dj - dk
		if printedVal == 0 {
			t.Fatal("printed Thm. 5 expansion unexpectedly agrees; erratum note is stale")
		}
		return true
	})
}

func TestStringers(t *testing.T) {
	p, _ := New(gen.Complete(3), gen.Path(3), ModeNonBipartiteFactor)
	if p.String() == "" || p.Mode().String() == "" {
		t.Fatal("empty String")
	}
	if Mode(99).String() == "" || ModeSelfLoopFactor.String() == "" {
		t.Fatal("empty Mode String")
	}
}

func TestFactorStats(t *testing.T) {
	f, err := NewFactor(gen.CompleteBipartite(3, 3).Graph)
	if err != nil {
		t.Fatal(err)
	}
	if f.Global4 != 9 {
		t.Fatalf("K33 factor Global4 = %d, want 9", f.Global4)
	}
	if f.Triangles != 0 {
		t.Fatal("bipartite factor has triangles")
	}
	if _, err := f.SqAt(0, 1); err == nil {
		t.Fatal("SqAt accepted non-edge (same side)")
	}
	sq, err := f.SqAt(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if sq != 4 {
		t.Fatalf("K33 edge ◊ = %d, want 4", sq)
	}
	kf, _ := NewFactor(gen.Complete(4))
	if kf.Triangles != 4 {
		t.Fatalf("K4 triangles = %d, want 4", kf.Triangles)
	}
}
