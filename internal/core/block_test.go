package core

import (
	"context"
	"errors"
	"testing"

	"kronbip/internal/gen"
	"kronbip/internal/graph"
)

// blockTestProducts covers the blocked walker's three code paths: the
// K = 1 two-factor loop (both modes, self-loop rows included) and the
// K >= 2 chain recursion.
func blockTestProducts(t *testing.T) map[string]*Product {
	t.Helper()
	out := map[string]*Product{}
	for name, p := range testProducts(t) {
		out[name] = p
	}
	chain, err := Chain(gen.Path(3), ModeSelfLoopFactor, gen.Path(2), gen.Star(3))
	if err != nil {
		t.Fatal(err)
	}
	out["chain"] = chain
	chainNB, err := Chain(gen.Complete(3), ModeNonBipartiteFactor, gen.Crown(3).Graph, gen.Path(3))
	if err != nil {
		t.Fatal(err)
	}
	out["chain-nonbip"] = chainNB
	return out
}

// TestEachEdgeBlockPartition: the union over all R×C blocks is exactly
// the EachEdge set, with no edge in two blocks, and each block's
// streamed count lands exactly on the BlockEdgeCount closed form.
func TestEachEdgeBlockPartition(t *testing.T) {
	for name, p := range blockTestProducts(t) {
		want := collectEdges(p)
		for _, rc := range [][2]int{{1, 1}, {1, 3}, {2, 2}, {3, 5}, {7, 1}, {4, 1000}} {
			rows, cols := rc[0], rc[1]
			var got []graph.Edge
			seen := map[graph.Edge]bool{}
			for r := 0; r < rows; r++ {
				for c := 0; c < cols; c++ {
					expect, err := p.BlockEdgeCount(r, rows, c, cols)
					if err != nil {
						t.Fatal(err)
					}
					var n int64
					if err := p.EachEdgeBlock(r, rows, c, cols, func(v, w int) bool {
						n++
						if v > w {
							v, w = w, v
						}
						e := graph.Edge{U: v, V: w}
						if seen[e] {
							t.Fatalf("%s %dx%d: edge %v in two blocks", name, rows, cols, e)
						}
						seen[e] = true
						got = append(got, e)
						return true
					}); err != nil {
						t.Fatal(err)
					}
					if n != expect {
						t.Fatalf("%s block (%d,%d) of %dx%d: streamed %d, BlockEdgeCount says %d",
							name, r, c, rows, cols, n, expect)
					}
				}
			}
			sortEdges(got)
			if len(got) != len(want) {
				t.Fatalf("%s %dx%d: %d edges, want %d", name, rows, cols, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s %dx%d: edge sets differ at %d", name, rows, cols, i)
				}
			}
		}
	}
}

// TestBlockEdgeCountFoldsToShard: summing a row band's blocks over every
// column reproduces the 1D ShardEdgeCount closed form, and a 1×1
// blocking is the whole product.
func TestBlockEdgeCountFoldsToShard(t *testing.T) {
	for name, p := range blockTestProducts(t) {
		for _, rows := range []int{1, 2, 5} {
			for _, cols := range []int{1, 2, 4} {
				for r := 0; r < rows; r++ {
					shardWant, err := p.ShardEdgeCount(r, rows)
					if err != nil {
						t.Fatal(err)
					}
					var sum int64
					for c := 0; c < cols; c++ {
						n, err := p.BlockEdgeCount(r, rows, c, cols)
						if err != nil {
							t.Fatal(err)
						}
						sum += n
					}
					if sum != shardWant {
						t.Fatalf("%s row %d/%d over %d cols: blocks sum to %d, shard closed form %d",
							name, r, rows, cols, sum, shardWant)
					}
				}
			}
		}
		if n, err := p.BlockEdgeCount(0, 1, 0, 1); err != nil || n != p.NumEdges() {
			t.Fatalf("%s: 1x1 block count = %d (%v), want |E_C|=%d", name, n, err, p.NumEdges())
		}
	}
}

// TestEachEdgeBlockCanonicalOrder: block (0,0) of 1×1 reproduces the
// canonical EachEdge sequence edge for edge, and a full-width block
// equals the corresponding 1D shard sequence.
func TestEachEdgeBlockCanonicalOrder(t *testing.T) {
	for name, p := range blockTestProducts(t) {
		var canon [][2]int
		p.EachEdge(func(v, w int) bool { canon = append(canon, [2]int{v, w}); return true })
		var blocked [][2]int
		if err := p.EachEdgeBlock(0, 1, 0, 1, func(v, w int) bool {
			blocked = append(blocked, [2]int{v, w})
			return true
		}); err != nil {
			t.Fatal(err)
		}
		if len(blocked) != len(canon) {
			t.Fatalf("%s: 1x1 block streamed %d edges, canonical %d", name, len(blocked), len(canon))
		}
		for i := range canon {
			if blocked[i] != canon[i] {
				t.Fatalf("%s: 1x1 block order diverges from canonical at %d: %v vs %v",
					name, i, blocked[i], canon[i])
			}
		}
		// Full-width column == the 1D shard stream, for every row band.
		for r := 0; r < 3; r++ {
			var shard, block [][2]int
			if err := p.EachEdgeShard(r, 3, func(v, w int) bool {
				shard = append(shard, [2]int{v, w})
				return true
			}); err != nil {
				t.Fatal(err)
			}
			if err := p.EachEdgeBlock(r, 3, 0, 1, func(v, w int) bool {
				block = append(block, [2]int{v, w})
				return true
			}); err != nil {
				t.Fatal(err)
			}
			if len(shard) != len(block) {
				t.Fatalf("%s row %d: full-width block %d edges vs shard %d", name, r, len(block), len(shard))
			}
			for i := range shard {
				if shard[i] != block[i] {
					t.Fatalf("%s row %d: full-width block diverges from shard at %d", name, r, i)
				}
			}
		}
	}
}

func TestEachEdgeBlockValidation(t *testing.T) {
	p := blockTestProducts(t)["chain"]
	cases := []struct{ row, rows, col, cols int }{
		{0, 0, 0, 1},  // nrows = 0
		{2, 2, 0, 1},  // row out of range
		{0, 1, 0, 0},  // ncols = 0
		{0, 1, 1, 1},  // col out of range
		{0, 1, -1, 2}, // negative col
	}
	for _, c := range cases {
		if _, err := p.BlockEdgeCount(c.row, c.rows, c.col, c.cols); err == nil {
			t.Errorf("BlockEdgeCount accepted (%d,%d,%d,%d)", c.row, c.rows, c.col, c.cols)
		}
		if err := p.EachEdgeBlock(c.row, c.rows, c.col, c.cols, func(_, _ int) bool { return true }); err == nil {
			t.Errorf("EachEdgeBlock accepted (%d,%d,%d,%d)", c.row, c.rows, c.col, c.cols)
		}
	}
}

func TestEachEdgeBlockEarlyStop(t *testing.T) {
	p := blockTestProducts(t)["chain"]
	n := 0
	if err := p.EachEdgeBlock(0, 1, 0, 2, func(_, _ int) bool {
		n++
		return n < 5
	}); err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("early stop streamed %d, want 5", n)
	}
}

func TestEachEdgeBlockContextCancel(t *testing.T) {
	p := blockTestProducts(t)["mode2"]
	// Pre-cancelled: no edges, ctx.Err back.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	n := 0
	err := p.EachEdgeBlockContext(ctx, 0, 1, 0, 2, func(_, _ int) bool { n++; return true })
	if !errors.Is(err, context.Canceled) || n != 0 {
		t.Fatalf("pre-cancelled block streamed %d edges, err=%v", n, err)
	}
	// Mid-stream: cancel from inside yield; the walker must stop within a
	// poll stride and surface ctx.Err.  Needs a product big enough that the
	// poller fires before the block runs dry.
	big := bigStreamProduct(t)
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	n = 0
	err = big.EachEdgeBlockContext(ctx2, 0, 1, 0, 2, func(_, _ int) bool {
		n++
		if n == 10 {
			cancel2()
		}
		return true
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-stream cancel: err=%v, want context.Canceled", err)
	}
	if int64(n) >= big.NumEdges() {
		t.Fatalf("cancelled block streamed the whole product (%d edges)", n)
	}
	if n > 10+2*streamPollStride {
		t.Fatalf("block emitted %d edges after cancellation at 10 (stride %d): not prompt",
			n-10, streamPollStride)
	}
	// Background context takes the zero-overhead path and completes.
	var total int64
	if err := p.EachEdgeBlockContext(context.Background(), 0, 2, 1, 3, func(_, _ int) bool {
		total++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	want, err := p.BlockEdgeCount(0, 2, 1, 3)
	if err != nil || total != want {
		t.Fatalf("background block streamed %d, want %d (%v)", total, want, err)
	}
}
