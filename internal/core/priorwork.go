package core

import (
	"fmt"

	"kronbip/internal/graph"
)

// Prior-work triangle ground truth.  The paper extends Sanders et al.
// (IPDPSW 2018) and Steil et al. (IPDPSW 2019), whose headline formulas
// give exact triangle counts for general (not necessarily bipartite)
// Kronecker products of loop-free factors:
//
//	diag(C³) = diag(A³) ⊗ diag(B³)   ⇒  t_C(p) = 2·t_A(i)·t_B(k),
//	C² ∘ C   = (A²∘A) ⊗ (B²∘B)       ⇒  Δ_C(pq) = Δ_A(ij)·Δ_B(kl),
//
// with t the per-vertex and Δ the per-edge triangle counts.  They are
// reproduced here both for completeness and because they furnish the
// paper's §III claim that bipartite products are triangle-free: any
// bipartite factor zeroes every term.

// TriangleGroundTruth bundles exact triangle statistics of C = A ⊗ B for
// loop-free undirected factors.
type TriangleGroundTruth struct {
	a, b *Factor
	// Per-edge triangle counts of the factors (Δ = A²∘A values at edges).
	wedgeA, wedgeB map[graph.Edge]int64
	triA, triB     []int64 // per-vertex triangle counts
}

// NewTriangleGroundTruth precomputes factor triangle statistics.  Unlike
// Product it accepts any pair of loop-free undirected factors, bipartite
// or not (triangles need no bipartite structure).
func NewTriangleGroundTruth(a, b *graph.Graph) (*TriangleGroundTruth, error) {
	fa, err := NewFactor(a)
	if err != nil {
		return nil, fmt.Errorf("core: factor A: %w", err)
	}
	fb, err := NewFactor(b)
	if err != nil {
		return nil, fmt.Errorf("core: factor B: %w", err)
	}
	t := &TriangleGroundTruth{a: fa, b: fb}
	t.triA, t.wedgeA = triangleStats(a)
	t.triB, t.wedgeB = triangleStats(b)
	return t, nil
}

// triangleStats computes per-vertex triangle counts and per-edge triangle
// counts (Δ_uv = |N(u) ∩ N(v)| at edges) combinatorially.
func triangleStats(g *graph.Graph) ([]int64, map[graph.Edge]int64) {
	n := g.N()
	tri := make([]int64, n)
	edge := make(map[graph.Edge]int64, g.NumEdges())
	mark := make([]bool, n)
	for u := 0; u < n; u++ {
		for _, x := range g.Neighbors(u) {
			mark[x] = true
		}
		for _, v := range g.Neighbors(u) {
			if v < u {
				continue
			}
			var common int64
			for _, y := range g.Neighbors(v) {
				if mark[y] {
					common++
				}
			}
			edge[graph.Edge{U: u, V: v}] = common
		}
		for _, x := range g.Neighbors(u) {
			mark[x] = false
		}
	}
	// t_v = ½ Σ_{u ∈ N(v)} Δ_vu (each triangle at v spans 2 incident edges).
	for e, c := range edge {
		tri[e.U] += c
		tri[e.V] += c
	}
	for v := range tri {
		tri[v] /= 2
	}
	return tri, edge
}

// N returns |V_C|.
func (t *TriangleGroundTruth) N() int { return t.a.N() * t.b.N() }

// VertexTrianglesAt returns t_C(p) = 2·t_A(i)·t_B(k) for product vertex
// p = i·n_B + k.
func (t *TriangleGroundTruth) VertexTrianglesAt(p int) int64 {
	i, k := p/t.b.N(), p%t.b.N()
	return 2 * t.triA[i] * t.triB[k]
}

// EdgeTrianglesAt returns Δ_C(pq) = Δ_A(ij)·Δ_B(kl) for a product edge;
// errors if {p,q} is not an edge of A ⊗ B.
func (t *TriangleGroundTruth) EdgeTrianglesAt(p, q int) (int64, error) {
	i, k := p/t.b.N(), p%t.b.N()
	j, l := q/t.b.N(), q%t.b.N()
	if !t.a.G.HasEdge(i, j) || !t.b.G.HasEdge(k, l) {
		return 0, fmt.Errorf("core: {%d,%d} is not an edge of the product", p, q)
	}
	ea := graph.Edge{U: min(i, j), V: max(i, j)}
	eb := graph.Edge{U: min(k, l), V: max(k, l)}
	return t.wedgeA[ea] * t.wedgeB[eb], nil
}

// GlobalTriangles returns the exact number of distinct triangles in the
// product.  Σ_p t_C(p) = 2·(Σ t_A)(Σ t_B) counts each triangle three times
// (once per corner), so the total is 2·(Σ t_A)(Σ t_B)/3 — sublinear, like
// the 4-cycle global count.
func (t *TriangleGroundTruth) GlobalTriangles() int64 {
	var sa, sb int64
	for _, v := range t.triA {
		sa += v
	}
	for _, v := range t.triB {
		sb += v
	}
	return 2 * sa * sb / 3
}
