package core

import (
	"testing"

	"kronbip/internal/gen"
)

// TestHopsAgainstBFS validates the closed-form product distances against
// all-pairs BFS on the materialized product, for every strict factor pair
// in both modes.
func TestHopsAgainstBFS(t *testing.T) {
	check := func(name string, p *Product) {
		t.Helper()
		g, err := p.Materialize(0)
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < p.N(); v++ {
			dist := g.BFS(v)
			for w := 0; w < p.N(); w++ {
				hops, ok := p.HopsAt(v, w)
				if !ok {
					if dist[w] != -1 {
						t.Fatalf("%s: HopsAt(%d,%d) unreachable, BFS says %d", name, v, w, dist[w])
					}
					continue
				}
				if dist[w] != hops {
					t.Fatalf("%s: HopsAt(%d,%d) = %d, BFS says %d", name, v, w, hops, dist[w])
				}
			}
		}
	}
	for _, tc := range mode1Pairs() {
		p, err := New(tc.a, tc.b, ModeNonBipartiteFactor)
		if err != nil {
			t.Fatal(err)
		}
		check("mode1 "+tc.name, p)
	}
	for _, tc := range mode2Pairs() {
		p, err := New(tc.a, tc.b, ModeSelfLoopFactor)
		if err != nil {
			t.Fatal(err)
		}
		check("mode2 "+tc.name, p)
	}
}

// TestHopsRelaxedDisconnected checks unreachability reporting on the
// classic disconnected bipartite ⊗ bipartite product.
func TestHopsRelaxedDisconnected(t *testing.T) {
	p, err := NewRelaxed(gen.Path(3), gen.Path(3), ModeNonBipartiteFactor)
	if err != nil {
		t.Fatal(err)
	}
	g, _ := p.Materialize(0)
	label, comps := g.ConnectedComponents()
	if comps < 2 {
		t.Fatal("test premise wrong: product should be disconnected")
	}
	for v := 0; v < p.N(); v++ {
		for w := 0; w < p.N(); w++ {
			_, ok := p.HopsAt(v, w)
			sameComp := label[v] == label[w]
			if ok != sameComp {
				t.Fatalf("HopsAt(%d,%d) ok=%v, components say %v", v, w, ok, sameComp)
			}
		}
	}
}

func TestEccentricityAgainstBFS(t *testing.T) {
	check := func(name string, p *Product) {
		t.Helper()
		g, err := p.Materialize(0)
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < p.N(); v++ {
			want := g.Eccentricity(v)
			got, err := p.EccentricityAt(v)
			if err != nil {
				t.Fatalf("%s: EccentricityAt(%d): %v", name, v, err)
			}
			if got != want {
				t.Fatalf("%s: EccentricityAt(%d) = %d, BFS says %d", name, v, got, want)
			}
		}
	}
	for _, tc := range mode1Pairs() {
		p, err := New(tc.a, tc.b, ModeNonBipartiteFactor)
		if err != nil {
			t.Fatal(err)
		}
		check("mode1 "+tc.name, p)
	}
	for _, tc := range mode2Pairs() {
		p, err := New(tc.a, tc.b, ModeSelfLoopFactor)
		if err != nil {
			t.Fatal(err)
		}
		check("mode2 "+tc.name, p)
	}
}

func TestDiameterAgainstBFS(t *testing.T) {
	check := func(name string, p *Product) {
		t.Helper()
		g, err := p.Materialize(0)
		if err != nil {
			t.Fatal(err)
		}
		want := g.Diameter()
		got, err := p.Diameter()
		if err != nil {
			t.Fatalf("%s: Diameter: %v", name, err)
		}
		if got != want {
			t.Fatalf("%s: Diameter = %d, BFS says %d", name, got, want)
		}
	}
	for _, tc := range mode1Pairs() {
		p, err := New(tc.a, tc.b, ModeNonBipartiteFactor)
		if err != nil {
			t.Fatal(err)
		}
		check("mode1 "+tc.name, p)
	}
	for _, tc := range mode2Pairs() {
		p, err := New(tc.a, tc.b, ModeSelfLoopFactor)
		if err != nil {
			t.Fatal(err)
		}
		check("mode2 "+tc.name, p)
	}
}

func TestDistanceGroundTruthRequiresStrict(t *testing.T) {
	p, err := NewRelaxed(gen.Complete(3), gen.DisjointUnion(gen.Path(2), gen.Path(2)), ModeNonBipartiteFactor)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.EccentricityAt(0); err == nil {
		t.Fatal("EccentricityAt accepted relaxed product")
	}
	if _, err := p.Diameter(); err == nil {
		t.Fatal("Diameter accepted relaxed product")
	}
}

func TestHopsSelfPair(t *testing.T) {
	p, _ := New(gen.Complete(3), gen.Path(3), ModeNonBipartiteFactor)
	h, ok := p.HopsAt(4, 4)
	if !ok || h != 0 {
		t.Fatalf("HopsAt(v,v) = %d,%v; want 0,true", h, ok)
	}
}
