package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"kronbip/internal/count"
	"kronbip/internal/gen"
	"kronbip/internal/graph"
	"kronbip/internal/grb"
)

func materializeGeneral(t *testing.T, a, b *graph.Graph) *graph.Graph {
	t.Helper()
	c, err := grb.Kron(a.Adjacency(), b.Adjacency())
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.FromAdjacency(c)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestTriangleGroundTruthAgainstBrute(t *testing.T) {
	cases := []struct {
		name string
		a, b *graph.Graph
	}{
		{"K3 x K3", gen.Complete(3), gen.Complete(3)},
		{"K4 x C5", gen.Complete(4), gen.Cycle(5)},
		{"lollipop x K4", gen.Lollipop(3, 2), gen.Complete(4)},
		{"petersen x K3", gen.Petersen(), gen.Complete(3)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			gt, err := NewTriangleGroundTruth(tc.a, tc.b)
			if err != nil {
				t.Fatal(err)
			}
			g := materializeGeneral(t, tc.a, tc.b)
			want, err := count.Triangles(g)
			if err != nil {
				t.Fatal(err)
			}
			for p := 0; p < gt.N(); p++ {
				if gt.VertexTrianglesAt(p) != want[p] {
					t.Fatalf("t_C(%d) = %d, brute force %d", p, gt.VertexTrianglesAt(p), want[p])
				}
			}
			global, err := count.GlobalTriangles(g)
			if err != nil {
				t.Fatal(err)
			}
			if gt.GlobalTriangles() != global {
				t.Fatalf("global = %d, brute force %d", gt.GlobalTriangles(), global)
			}
		})
	}
}

func TestEdgeTrianglesAgainstBrute(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func() *graph.Graph {
			n := 3 + rng.Intn(4)
			var edges []graph.Edge
			for i := 0; i < n; i++ {
				for j := i + 1; j < n; j++ {
					if rng.Float64() < 0.6 {
						edges = append(edges, graph.Edge{U: i, V: j})
					}
				}
			}
			return graph.MustNew(n, edges)
		}
		a, b := mk(), mk()
		gt, err := NewTriangleGroundTruth(a, b)
		if err != nil {
			return false
		}
		cAdj, err := grb.Kron(a.Adjacency(), b.Adjacency())
		if err != nil {
			return false
		}
		g, err := graph.FromAdjacency(cAdj)
		if err != nil {
			return false
		}
		// Brute per-edge triangles on the product.
		ok := true
		g.EachEdge(func(u, v int) bool {
			var common int64
			for _, x := range g.Neighbors(u) {
				if g.HasEdge(v, x) {
					common++
				}
			}
			got, err := gt.EdgeTrianglesAt(u, v)
			if err != nil || got != common {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestTriangleGroundTruthBipartiteIsZero(t *testing.T) {
	// Any bipartite factor zeroes the product's triangles — the §III claim.
	gt, err := NewTriangleGroundTruth(gen.Complete(4), gen.Cycle(6))
	if err != nil {
		t.Fatal(err)
	}
	if gt.GlobalTriangles() != 0 {
		t.Fatal("bipartite B should kill all triangles")
	}
	for p := 0; p < gt.N(); p++ {
		if gt.VertexTrianglesAt(p) != 0 {
			t.Fatal("nonzero vertex triangles with bipartite factor")
		}
	}
}

func TestTriangleGroundTruthErrors(t *testing.T) {
	loopy := gen.Path(3).WithFullSelfLoops()
	if _, err := NewTriangleGroundTruth(loopy, gen.Path(3)); err == nil {
		t.Fatal("accepted factor with self loops")
	}
	gt, _ := NewTriangleGroundTruth(gen.Complete(3), gen.Complete(3))
	if _, err := gt.EdgeTrianglesAt(0, 0); err == nil {
		t.Fatal("accepted non-edge")
	}
}
