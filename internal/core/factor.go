// Package core implements the paper's contribution: non-stochastic
// bipartite Kronecker product graphs C = A ⊗ B (Assumption 1(i)) and
// C = (A+I_A) ⊗ B (Assumption 1(ii)) with exact ground truth for degrees,
// two-walk counts, per-vertex and per-edge 4-cycle (butterfly) counts,
// global 4-cycle counts, bipartite edge clustering coefficients, and
// connectivity/bipartiteness guarantees (Theorems 1–6).
//
// All ground truth is computed from the factors alone: O(|V_A|+|V_B|)
// state answers point queries in O(1) and global counts in sublinear time,
// while the product itself — which may have millions of edges — is only
// ever streamed or optionally materialized for validation.
//
// Index convention: the paper's 1-based maps α, β, γ become 0-based here:
// product vertex p = i·n_B + k pairs factor vertices (i, k), with
// i = p / n_B and k = p % n_B.
package core

import (
	"fmt"

	"kronbip/internal/count"
	"kronbip/internal/graph"
	"kronbip/internal/grb"
)

// Factor bundles a factor graph with the per-vertex and per-edge statistics
// every Kronecker ground-truth formula consumes.  It is the paper's
// O(|E_C|^{1/2})-sized data structure: all product-level ground truth
// derives from two of these.
type Factor struct {
	G *graph.Graph

	D  []int64 // degree vector d = A·1
	W2 []int64 // two-walk vector w⁽²⁾ = A²·1
	S  []int64 // per-vertex 4-cycle counts s (Def. 8)

	// Sq stores ◊_ij (Def. 9) at every stored edge of A, symmetric.
	Sq *grb.Matrix[int64]

	Global4   int64 // number of distinct 4-cycles in the factor
	Triangles int64 // number of distinct 3-cycles (0 for bipartite factors)
}

// NewFactor validates that g is a simple undirected graph (no self loops)
// and precomputes its statistics.
func NewFactor(g *graph.Graph) (*Factor, error) {
	if g.NumSelfLoops() > 0 {
		return nil, fmt.Errorf("core: factor has self loops; Kronecker formulas require loop-free factors (self loops are added by the product mode, not the factor)")
	}
	s, err := count.VertexButterfliesAlgebraic(g)
	if err != nil {
		return nil, fmt.Errorf("core: factor vertex 4-cycles: %w", err)
	}
	sq, err := count.EdgeButterfliesAlgebraic(g)
	if err != nil {
		return nil, fmt.Errorf("core: factor edge 4-cycles: %w", err)
	}
	tri, err := count.GlobalTriangles(g)
	if err != nil {
		return nil, fmt.Errorf("core: factor triangles: %w", err)
	}
	sum := grb.SumVec(s)
	f := &Factor{
		G:         g,
		D:         g.Degrees(),
		W2:        g.TwoWalks(),
		S:         s,
		Sq:        sq,
		Global4:   sum / 4,
		Triangles: tri,
	}
	return f, nil
}

// N returns the number of factor vertices.
func (f *Factor) N() int { return f.G.N() }

// SqAt returns ◊_ij for a factor edge, or an error for a non-edge.
func (f *Factor) SqAt(i, j int) (int64, error) {
	if !f.G.HasEdge(i, j) {
		return 0, fmt.Errorf("core: (%d,%d) is not a factor edge", i, j)
	}
	return f.Sq.At(i, j), nil
}

// diag4 returns diag(A⁴)_i = 2s_i + d_i² + w⁽²⁾_i − d_i (Fig. 2).
func (f *Factor) diag4(i int) int64 {
	return 2*f.S[i] + f.D[i]*f.D[i] + f.W2[i] - f.D[i]
}

// diag4Vec returns diag(A⁴) as a vector.
func (f *Factor) diag4Vec() []int64 {
	out := make([]int64, f.N())
	for i := range out {
		out[i] = f.diag4(i)
	}
	return out
}

// walk3 returns W^(3)(i,j) = (A³)_ij at a factor edge:
// ◊_ij + d_i + d_j − 1 (Fig. 4).  Callers must pass an edge.
func (f *Factor) walk3(i, j int) int64 {
	return f.Sq.At(i, j) + f.D[i] + f.D[j] - 1
}
