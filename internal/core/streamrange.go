// Resumable range streaming over the canonical edge order.
//
// Generation is deterministic, so the edge at any global stream offset
// is derivable from the factor state alone: the term layout gives the
// row in O(K) (the same termOff/termPer prefix math ShardEdgeCount and
// BlockEdgeCount use), and the within-row offset decomposes into the
// mixed-radix digit tuple of the chain expansion — level u contributes
// a factor-edge index and (where both orientations are emitted) an
// orientation bit, with the last level least significant.  EachEdgeRange
// therefore seeks to [lo, hi) in O(K) and re-generates exactly hi-lo
// edges: a dropped consumer resumes mid-stream with zero re-generation
// of the prefix (serve's ?offset=/?limit= and distgen's lease resume).
//
// Kept in its own file for the same reason as streamchain.go: the
// per-edge hot loops are code-layout sensitive, and the resume walkers
// must not perturb them.
package core

import (
	"context"
	"fmt"

	"kronbip/internal/exec"
)

// rangeDigit is one level's coordinate inside a row's chain expansion:
// the factor-edge index at that level and the orientation (0 canonical,
// 1 flipped; always 0 at a self-loop term's anchor level).
type rangeDigit struct {
	e, o int
}

// checkRange validates a half-open edge range against a total.
func checkRange(lo, hi, total int64) error {
	if lo < 0 || hi < lo || hi > total {
		return fmt.Errorf("core: edge range [%d,%d) out of bounds [0,%d)", lo, hi, total)
	}
	return nil
}

// seekEdge locates global edge offset k: the term and row containing it
// and the remaining within-row offset.  O(K): every row of term t emits
// exactly termPer[t] edges.  k must be in [0, NumEdges()).
func (p *Product) seekEdge(k int64) (t, row int, off int64) {
	for t := 0; t < len(p.termOff)-1; t++ {
		rows := int64(p.termOff[t+1] - p.termOff[t])
		termEdges := rows * p.termPer[t]
		if k < termEdges {
			return t, p.termOff[t] + int(k/p.termPer[t]), k % p.termPer[t]
		}
		k -= termEdges
	}
	// Unreachable for k < NumEdges(); return one-past-the-end defensively.
	return len(p.termOff) - 2, p.numRows(), 0
}

// seekBlockEdge is seekEdge in block-local coordinates: offset k of the
// canonical-restricted order of rows [rlo, rhi) × last-factor edges
// [clo, chi).  Every row of term t contributes termPer[t]/|E_{B_K}| ·
// (chi-clo) block edges (the BlockEdgeCount closed form, per row).
func (p *Product) seekBlockEdge(rlo, rhi, clo, chi int, k int64) (t, row int, off int64) {
	mLast := int64(p.lastFactorEdges())
	span := int64(chi - clo)
	for t := 0; t < len(p.termOff)-1; t++ {
		rows := int64(min(rhi, p.termOff[t+1]) - max(rlo, p.termOff[t]))
		if rows <= 0 {
			continue
		}
		per := (p.termPer[t] / mLast) * span
		if k < rows*per {
			return t, max(rlo, p.termOff[t]) + int(k/per), k % per
		}
		k -= rows * per
	}
	return len(p.termOff) - 2, rhi, 0
}

// rowDigits decomposes a within-row offset of a term-t row into the
// per-level (edge, orientation) coordinates of the chain expansion.
// span is the base level's edge extent: |E_{B_K}| for full-width walks,
// chi-clo when the base level is restricted to a column stripe.  The
// returned slice is indexed by level (1-based); levels above the
// term's anchor are unused.
func (p *Product) rowDigits(t int, off int64, span int) []rangeDigit {
	k := len(p.bs)
	anchor := t
	if t == 0 {
		anchor = 1
	}
	digits := make([]rangeDigit, k+1)
	for u := k; u >= anchor; u-- {
		m := int64(p.bs[u-1].G.NumEdges())
		if u == k {
			m = int64(span)
		}
		both := t == 0 || u > t
		r := m
		if both {
			r *= 2
		}
		d := off % r
		off /= r
		if both {
			digits[u] = rangeDigit{e: int(d / 2), o: int(d % 2)}
		} else {
			digits[u] = rangeDigit{e: int(d), o: 0}
		}
	}
	return digits
}

// emitChainFrom resumes the expansion of levels u..K at the digit tuple
// a seek produced, then continues in canonical order to the end of the
// subtree.  The base level iterates last-factor edges [clo, chi) (the
// block column stripe; 0..|E_{B_K}| for full-width walks), and the base
// digit indexes into that slice.  Returns false when yield stopped it.
func (p *Product) emitChainFrom(u, pv, pw int, both bool, digits []rangeDigit, clo, chi int, yield func(v, w int) bool) bool {
	f := p.bs[u-1]
	eb := f.G.Edges()
	n := f.N()
	av, aw := pv*n, pw*n
	d := digits[u]
	if u == len(p.bs) {
		sl := eb[clo:chi]
		for i := d.e; i < len(sl); i++ {
			be := sl[i]
			if i > d.e || d.o == 0 {
				if !yield(av+be.U, aw+be.V) {
					return false
				}
			}
			if both && !yield(av+be.V, aw+be.U) {
				return false
			}
		}
		return true
	}
	// Resume inside the d.e-th subtree at the recorded orientation, then
	// walk the remaining subtrees of this level in full.
	be := eb[d.e]
	if d.o == 0 {
		if !p.emitChainFrom(u+1, av+be.U, aw+be.V, true, digits, clo, chi, yield) {
			return false
		}
		if both && !p.emitChainBlock(u+1, av+be.V, aw+be.U, true, clo, chi, yield) {
			return false
		}
	} else if !p.emitChainFrom(u+1, av+be.V, aw+be.U, true, digits, clo, chi, yield) {
		return false
	}
	for i := d.e + 1; i < len(eb); i++ {
		be := eb[i]
		if !p.emitChainBlock(u+1, av+be.U, aw+be.V, true, clo, chi, yield) {
			return false
		}
		if both && !p.emitChainBlock(u+1, av+be.V, aw+be.U, true, clo, chi, yield) {
			return false
		}
	}
	return true
}

// streamRowFrom walks the tail of one row: term-t row `row`, starting
// at the digit tuple, base level restricted to [clo, chi).
func (p *Product) streamRowFrom(t, row int, digits []rangeDigit, clo, chi int, yield func(v, w int) bool) bool {
	idx := row - p.termOff[t]
	if t == 0 {
		ea := p.a.G.Edges()
		return p.emitChainFrom(1, ea[idx].U, ea[idx].V, true, digits, clo, chi, yield)
	}
	return p.emitChainFrom(t, idx, idx, false, digits, clo, chi, yield)
}

// EachEdgeRange streams edges [lo, hi) of the canonical EachEdge order:
// an O(K) closed-form seek to lo, then exactly hi-lo edges re-generated
// — no prefix work, no spooling.  Iteration stops early if yield
// returns false.
func (p *Product) EachEdgeRange(lo, hi int64, yield func(v, w int) bool) error {
	if err := checkRange(lo, hi, p.NumEdges()); err != nil {
		return err
	}
	if lo == hi {
		return nil
	}
	remaining := hi - lo
	bounded := func(v, w int) bool {
		if !yield(v, w) {
			return false
		}
		remaining--
		return remaining > 0
	}
	t, row, off := p.seekEdge(lo)
	if off == 0 {
		p.streamRows(row, p.numRows(), bounded)
		return nil
	}
	digits := p.rowDigits(t, off, p.lastFactorEdges())
	if p.streamRowFrom(t, row, digits, 0, p.lastFactorEdges(), bounded) {
		p.streamRows(row+1, p.numRows(), bounded)
	}
	return nil
}

// EachEdgeRangeContext is EachEdgeRange under a context, with the same
// cancellation contract as EachEdgeShardContext: checked every
// streamPollStride emitted edges, the stream stops without invoking
// yield again and returns ctx.Err().
func (p *Product) EachEdgeRangeContext(ctx context.Context, lo, hi int64, yield func(v, w int) bool) error {
	if err := checkRange(lo, hi, p.NumEdges()); err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if ctx.Done() == nil {
		return p.EachEdgeRange(lo, hi, yield)
	}
	poll := exec.NewPoller(ctx, streamPollStride)
	cancelled := false
	err := p.EachEdgeRange(lo, hi, func(v, w int) bool {
		if poll.Cancelled() {
			cancelled = true
			return false
		}
		return yield(v, w)
	})
	if err != nil {
		return err
	}
	if cancelled {
		return ctx.Err()
	}
	return nil
}

// EachEdgeRangeBatchContext is EachEdgeRangeContext with batch
// delivery: edges arrive in pooled slices of up to exec.BatchLen, the
// final one partial.  The yielded slice is reused between calls.
//
// Only the partial first and last rows walk the per-edge resume
// machinery; every whole row in between takes the same closure-free
// batch loops the parallel engine runs, so a range walk costs what a
// full stream costs per edge.  The cancellation contract is the batch
// one (EachEdgeShardBatchContext): checked before each batch, no batch
// yielded after a cancellation is observed.
func (p *Product) EachEdgeRangeBatchContext(ctx context.Context, lo, hi int64, yield func(batch []exec.Edge) bool) error {
	if err := checkRange(lo, hi, p.NumEdges()); err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if lo == hi {
		return nil
	}
	bufp := exec.GetEdgeBuf()
	defer exec.PutEdgeBuf(bufp)
	rb := &rangeBatcher{buf: (*bufp)[:0], yield: yield, done: ctx.Done()}

	t, row, off := p.seekEdge(lo)
	first := row
	if off != 0 {
		head := p.termPer[t] - off
		if rem := hi - lo; head > rem {
			head = rem
		}
		var n int64
		digits := p.rowDigits(t, off, p.lastFactorEdges())
		p.streamRowFrom(t, row, digits, 0, p.lastFactorEdges(), func(v, w int) bool {
			if !rb.edge(v, w) {
				return false
			}
			n++
			return n < head
		})
		if rb.halted() {
			return rb.err(ctx)
		}
		first = row + 1
		// Hand whole rows to the batch walker with an empty buffer.
		if !rb.flushPartial() {
			return rb.err(ctx)
		}
	}
	_, last, tailOff := p.seekEdge(hi)
	if first < last {
		p.streamRowsBatch(first, last, rb.buf, rb.emit)
		if rb.halted() {
			return rb.err(ctx)
		}
		rb.buf = rb.buf[:0] // the batch walker flushed everything it buffered
	}
	if tailOff != 0 && last >= first {
		var n int64
		p.streamRows(last, last+1, func(v, w int) bool {
			if !rb.edge(v, w) {
				return false
			}
			n++
			return n < tailOff
		})
		if rb.halted() {
			return rb.err(ctx)
		}
	}
	rb.flushPartial()
	return rb.err(ctx)
}

// EachEdgeBlockRange streams edges [lo, hi) of block (row, col)'s
// canonical-restricted order (block-local offsets; the block's total is
// BlockEdgeCount).  The same O(K) seek as EachEdgeRange, restricted to
// the block's rows and column stripe.
func (p *Product) EachEdgeBlockRange(row, nrows, col, ncols int, lo, hi int64, yield func(v, w int) bool) error {
	rlo, rhi, clo, chi, err := p.blockRanges(row, nrows, col, ncols)
	if err != nil {
		return err
	}
	total, err := p.BlockEdgeCount(row, nrows, col, ncols)
	if err != nil {
		return err
	}
	if err := checkRange(lo, hi, total); err != nil {
		return err
	}
	if lo == hi {
		return nil
	}
	remaining := hi - lo
	bounded := func(v, w int) bool {
		if !yield(v, w) {
			return false
		}
		remaining--
		return remaining > 0
	}
	t, prow, off := p.seekBlockEdge(rlo, rhi, clo, chi, lo)
	if off == 0 {
		p.streamBlockRows(prow, rhi, clo, chi, bounded)
		return nil
	}
	digits := p.rowDigits(t, off, chi-clo)
	if p.streamRowFrom(t, prow, digits, clo, chi, bounded) {
		p.streamBlockRows(prow+1, rhi, clo, chi, bounded)
	}
	return nil
}

// EachEdgeBlockRangeContext is EachEdgeBlockRange under a context; see
// EachEdgeRangeContext for the cancellation contract.
func (p *Product) EachEdgeBlockRangeContext(ctx context.Context, row, nrows, col, ncols int, lo, hi int64, yield func(v, w int) bool) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if ctx.Done() == nil {
		return p.EachEdgeBlockRange(row, nrows, col, ncols, lo, hi, yield)
	}
	poll := exec.NewPoller(ctx, streamPollStride)
	cancelled := false
	err := p.EachEdgeBlockRange(row, nrows, col, ncols, lo, hi, func(v, w int) bool {
		if poll.Cancelled() {
			cancelled = true
			return false
		}
		return yield(v, w)
	})
	if err != nil {
		return err
	}
	if cancelled {
		return ctx.Err()
	}
	return nil
}

// EachEdgeBlockRangeBatchContext is EachEdgeBlockRangeContext with
// batch delivery (pooled slices of up to exec.BatchLen, reused between
// calls).  Structured exactly like EachEdgeRangeBatchContext: per-edge
// resume walks for the partial boundary rows, the closure-free block
// batch walker for every whole row between them, context checked once
// per batch.
func (p *Product) EachEdgeBlockRangeBatchContext(ctx context.Context, row, nrows, col, ncols int, lo, hi int64, yield func(batch []exec.Edge) bool) error {
	rlo, rhi, clo, chi, err := p.blockRanges(row, nrows, col, ncols)
	if err != nil {
		return err
	}
	total, err := p.BlockEdgeCount(row, nrows, col, ncols)
	if err != nil {
		return err
	}
	if err := checkRange(lo, hi, total); err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if lo == hi {
		return nil
	}
	bufp := exec.GetEdgeBuf()
	defer exec.PutEdgeBuf(bufp)
	rb := &rangeBatcher{buf: (*bufp)[:0], yield: yield, done: ctx.Done()}
	mLast := int64(p.lastFactorEdges())
	span := int64(chi - clo)

	t, prow, off := p.seekBlockEdge(rlo, rhi, clo, chi, lo)
	first := prow
	if off != 0 {
		head := (p.termPer[t]/mLast)*span - off
		if rem := hi - lo; head > rem {
			head = rem
		}
		var n int64
		digits := p.rowDigits(t, off, chi-clo)
		p.streamRowFrom(t, prow, digits, clo, chi, func(v, w int) bool {
			if !rb.edge(v, w) {
				return false
			}
			n++
			return n < head
		})
		if rb.halted() {
			return rb.err(ctx)
		}
		first = prow + 1
		if !rb.flushPartial() {
			return rb.err(ctx)
		}
	}
	_, last, tailOff := p.seekBlockEdge(rlo, rhi, clo, chi, hi)
	if first < last {
		p.streamBlockRowsBatch(first, last, clo, chi, rb.buf, rb.emit)
		if rb.halted() {
			return rb.err(ctx)
		}
		rb.buf = rb.buf[:0]
	}
	if tailOff != 0 && last >= first {
		var n int64
		p.streamBlockRows(last, last+1, clo, chi, func(v, w int) bool {
			if !rb.edge(v, w) {
				return false
			}
			n++
			return n < tailOff
		})
		if rb.halted() {
			return rb.err(ctx)
		}
	}
	rb.flushPartial()
	return rb.err(ctx)
}

// rangeBatcher carries the pooled batch buffer across the three stages
// of a range walk (partial head row, whole middle rows, partial tail
// row), checking the context once per delivered batch.
type rangeBatcher struct {
	buf       []exec.Edge
	yield     func(batch []exec.Edge) bool
	done      <-chan struct{}
	cancelled bool
	stopped   bool
}

// emit delivers one batch, honoring the batch cancellation contract.
func (rb *rangeBatcher) emit(batch []exec.Edge) bool {
	if rb.done != nil {
		select {
		case <-rb.done:
			rb.cancelled = true
			return false
		default:
		}
	}
	if !rb.yield(batch) {
		rb.stopped = true
		return false
	}
	return true
}

// edge appends one boundary-row edge, flushing full batches.
func (rb *rangeBatcher) edge(v, w int) bool {
	rb.buf = append(rb.buf, exec.Edge{V: v, W: w})
	if len(rb.buf) == cap(rb.buf) {
		if !rb.emit(rb.buf) {
			return false
		}
		rb.buf = rb.buf[:0]
	}
	return true
}

// flushPartial drains a partial batch so the next stage starts empty.
func (rb *rangeBatcher) flushPartial() bool {
	if len(rb.buf) == 0 {
		return true
	}
	ok := rb.emit(rb.buf)
	rb.buf = rb.buf[:0]
	return ok
}

func (rb *rangeBatcher) halted() bool { return rb.cancelled || rb.stopped }

// err maps the walk's end state to the contract's return: ctx.Err() on
// cancellation, nil for a completed or yield-stopped stream.
func (rb *rangeBatcher) err(ctx context.Context) error {
	if rb.cancelled {
		return ctx.Err()
	}
	return nil
}

// TermEdgeStarts returns the ascending global edge offsets at which
// each (non-empty) term's rows begin, with NumEdges() appended — the
// hard-cut schedule for the binary wire format's frame alignment: a
// frame never spans a term boundary, so resuming at any term start (or
// any aligned frame boundary within a term) reproduces the canonical
// framing byte for byte.
func (p *Product) TermEdgeStarts() []int64 {
	cuts := make([]int64, 0, len(p.termOff))
	var acc int64
	for t := 0; t < len(p.termOff)-1; t++ {
		rows := int64(p.termOff[t+1] - p.termOff[t])
		if n := rows * p.termPer[t]; n > 0 {
			cuts = append(cuts, acc)
			acc += n
		}
	}
	return append(cuts, acc)
}

// BlockTermEdgeStarts is TermEdgeStarts in block-local offsets: the
// term-start offsets of block (row, col)'s canonical-restricted order,
// with the block's BlockEdgeCount appended.
func (p *Product) BlockTermEdgeStarts(row, nrows, col, ncols int) ([]int64, error) {
	rlo, rhi, clo, chi, err := p.blockRanges(row, nrows, col, ncols)
	if err != nil {
		return nil, err
	}
	mLast := int64(p.lastFactorEdges())
	cuts := make([]int64, 0, len(p.termOff))
	var acc int64
	if mLast == 0 || chi <= clo {
		return append(cuts, 0), nil
	}
	for t := 0; t < len(p.termOff)-1; t++ {
		rows := int64(min(rhi, p.termOff[t+1]) - max(rlo, p.termOff[t]))
		if rows <= 0 {
			continue
		}
		if n := rows * (p.termPer[t] / mLast) * int64(chi-clo); n > 0 {
			cuts = append(cuts, acc)
			acc += n
		}
	}
	return append(cuts, acc), nil
}
