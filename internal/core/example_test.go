package core_test

import (
	"fmt"

	"kronbip/internal/core"
	"kronbip/internal/gen"
)

// ExampleNew builds the paper's Assumption 1(ii) product and reads its
// headline ground truth.
func ExampleNew() {
	a := gen.Crown(4).Graph // bipartite: K44 minus a perfect matching
	b := gen.Cycle(6)
	p, err := core.New(a, b, core.ModeSelfLoopFactor)
	if err != nil {
		panic(err)
	}
	fmt.Println("vertices:", p.N())
	fmt.Println("edges:", p.NumEdges())
	fmt.Println("global 4-cycles:", p.GlobalFourCycles())
	fmt.Println("connected by Thm 2:", p.ConnectedByTheorem())
	// Output:
	// vertices: 48
	// edges: 192
	// global 4-cycles: 720
	// connected by Thm 2: true
}

// ExampleProduct_VertexFourCyclesAt shows O(1) point queries.
func ExampleProduct_VertexFourCyclesAt() {
	p, _ := core.New(gen.Complete(3), gen.CompleteBipartite(2, 2).Graph, core.ModeNonBipartiteFactor)
	v := p.IndexOf(1, 2) // product vertex pairing A-vertex 1 with B-vertex 2
	fmt.Println("degree:", p.DegreeAt(v))
	fmt.Println("4-cycles:", p.VertexFourCyclesAt(v))
	// Output:
	// degree: 4
	// 4-cycles: 10
}

// ExampleProduct_EachEdge streams edges without materializing the product.
func ExampleProduct_EachEdge() {
	p, _ := core.New(gen.Complete(3), gen.Path(2), core.ModeNonBipartiteFactor)
	n := 0
	p.EachEdge(func(v, w int) bool {
		n++
		return true
	})
	fmt.Println("streamed edges:", n)
	// Output:
	// streamed edges: 6
}

// ExampleProduct_HopsAt shows exact product distances from factor BFS.
func ExampleProduct_HopsAt() {
	p, _ := core.New(gen.Complete(3), gen.Path(4), core.ModeNonBipartiteFactor)
	d, ok := p.HopsAt(p.IndexOf(0, 0), p.IndexOf(2, 3))
	fmt.Println(d, ok)
	diam, _ := p.Diameter()
	fmt.Println("diameter:", diam)
	// Output:
	// 3 true
	// diameter: 3
}
