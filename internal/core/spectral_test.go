package core

import (
	"context"
	"math"
	"testing"

	"kronbip/internal/gen"
	"kronbip/internal/grb"
)

const specTol = 1e-9

func TestPowerIterationKnown(t *testing.T) {
	cases := []struct {
		name string
		m    *grb.Matrix[int64]
		want float64
	}{
		{"K5", gen.Complete(5).Adjacency(), 4},                                           // K_n: n-1
		{"C8", gen.Cycle(8).Adjacency(), 2},                                              // cycles: 2
		{"K34", gen.CompleteBipartite(3, 4).Adjacency(), math.Sqrt(12)},                  // K_{a,b}: √(ab)
		{"star5", gen.Star(5).Adjacency(), 2},                                            // K_{1,4}: √4
		{"petersen", gen.Petersen().Adjacency(), 3},                                      // 3-regular
		{"empty", grb.Zero[int64](4, 4), 0},                                              //
		{"disconnected", gen.DisjointUnion(gen.Complete(4), gen.Path(2)).Adjacency(), 3}, // max component
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := powerIteration(context.Background(), tc.m, specTol, 10000)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-tc.want) > 1e-6 {
				t.Fatalf("ρ = %.9f, want %.9f", got, tc.want)
			}
		})
	}
}

func TestSpectralRadiusMatchesMaterialized(t *testing.T) {
	check := func(name string, p *Product) {
		t.Helper()
		truth, err := p.SpectralRadius(specTol, 10000)
		if err != nil {
			t.Fatal(err)
		}
		g, err := p.Materialize(0)
		if err != nil {
			t.Fatal(err)
		}
		direct, err := powerIteration(context.Background(), g.Adjacency(), specTol, 10000)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(truth-direct) > 1e-5*(1+direct) {
			t.Fatalf("%s: formula ρ = %.9f, direct %.9f", name, truth, direct)
		}
	}
	for _, tc := range mode1Pairs() {
		p, err := New(tc.a, tc.b, ModeNonBipartiteFactor)
		if err != nil {
			t.Fatal(err)
		}
		check("mode1 "+tc.name, p)
	}
	for _, tc := range mode2Pairs() {
		p, err := New(tc.a, tc.b, ModeSelfLoopFactor)
		if err != nil {
			t.Fatal(err)
		}
		check("mode2 "+tc.name, p)
	}
}

func TestSpectralRadiusValidation(t *testing.T) {
	p, _ := New(gen.Complete(3), gen.Path(3), ModeNonBipartiteFactor)
	if _, err := p.SpectralRadius(0, 100); err == nil {
		t.Fatal("accepted zero tolerance")
	}
	if _, err := p.SpectralRadius(1e-8, 0); err == nil {
		t.Fatal("accepted zero iterations")
	}
}
