package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"kronbip/internal/exec"
	"kronbip/internal/obs"
	"kronbip/internal/obs/timeline"
)

// Sharded, parallel edge streaming.  Generation is embarrassingly parallel
// in the factor-edge pairs — the property the paper's distributed-GraphBLAS
// future work relies on — so the undirected edge set of C is split into
// nshards deterministic, disjoint slices that can be produced concurrently
// and written to independent sinks.  All scheduling runs on the shared
// engine in internal/exec, so streams are cancellable: cancelling the
// context (deadline, Ctrl-C) aborts mid-generation within one polling
// stride and surfaces ctx.Err(), leaving whatever edges were already
// delivered as discardable partial work.
//
// Work layout: "rows" are the |E_A| factor edges followed (mode (ii)) by
// the n_A self loops; each row crosses all |E_B| factor edges, a factor
// edge row emitting two product edges per pair and a self-loop row one.

// streamPollStride bounds how many product edges may be emitted after a
// cancellation before the stream notices it.
const streamPollStride = 1024

// streamObsBatch is how many edges a shard accumulates locally before
// flushing them to the shared edge counter — the "counters batched per
// shard" half of the obs overhead contract: one atomic add per 1024
// edges while enabled, zero per-edge work while disabled.
const streamObsBatch = 1024

// Metric names produced by the streaming generator, exported so the CLI
// can wire its progress reporter to them.  Per-shard totals additionally
// appear as obs.Labeled(MetricStreamEdges, "shard", s) counters.
const (
	MetricStreamEdges      = "core.stream.edges"       // product edges delivered to sinks
	MetricStreamShardsDone = "core.stream.shards.done" // shards fully streamed
)

var (
	mStreamEdges = obs.Default.Counter(MetricStreamEdges)
	mShardsDone  = obs.Default.Counter(MetricStreamShardsDone)
	hShardSecs   = obs.Default.Histogram("core.stream.shard_seconds")
)

// Labeled per-shard edge counters, resolved once per process per shard
// index and cached in an atomically-published table.  The shard
// epilogue used to call obs.Default.Counter(obs.Labeled(...)) on every
// shard completion of every stream — a registry map lookup plus a
// label-formatting allocation on the hot path's tail, multiplied by
// shards × streams under the serve workload.  Now a completed stream
// reads the table lock-free; the mutex is only taken the first time a
// larger shard count than ever before is requested.
var (
	shardCounterMu  sync.Mutex
	shardCounterTab atomic.Pointer[[]*obs.Counter]
)

// shardEdgeCounters returns the labeled per-shard stream-edge counters
// for shards [0, n), growing the cached table copy-on-write if needed.
func shardEdgeCounters(n int) []*obs.Counter {
	if tab := shardCounterTab.Load(); tab != nil && len(*tab) >= n {
		return (*tab)[:n]
	}
	shardCounterMu.Lock()
	defer shardCounterMu.Unlock()
	var old []*obs.Counter
	if tab := shardCounterTab.Load(); tab != nil {
		old = *tab
	}
	if len(old) >= n {
		return old[:n]
	}
	grown := make([]*obs.Counter, n)
	copy(grown, old)
	for i := len(old); i < n; i++ {
		grown[i] = obs.Default.Counter(obs.Labeled(MetricStreamEdges, "shard", i))
	}
	shardCounterTab.Store(&grown)
	return grown
}

// numRows returns the sharding row count: every term's rows, fixed (and
// overflow-checked) at construction by computeLayout.  For K = 1 this is
// |E_A| (+ n_A in mode (ii)), the historical layout.
func (p *Product) numRows() int {
	return p.termOff[len(p.termOff)-1]
}

// shardRange validates (shard, nshards) and returns the shard's half-open
// row range.  Bounds come from exec.Stripe, which never forms shard*rows,
// so huge factor edge counts with many shards cannot overflow.
func (p *Product) shardRange(shard, nshards int) (lo, hi int, err error) {
	if nshards <= 0 {
		return 0, 0, fmt.Errorf("core: nshards must be positive, got %d", nshards)
	}
	if shard < 0 || shard >= nshards {
		return 0, 0, fmt.Errorf("core: shard %d out of range [0,%d)", shard, nshards)
	}
	lo, hi = exec.Stripe(shard, nshards, p.numRows())
	return lo, hi, nil
}

// EachEdgeShard streams shard `shard` of `nshards` disjoint slices of the
// product's undirected edge set.  The union over all shards is exactly the
// EachEdge stream; edges never repeat across shards.  Iteration stops
// early if yield returns false.
func (p *Product) EachEdgeShard(shard, nshards int, yield func(v, w int) bool) error {
	lo, hi, err := p.shardRange(shard, nshards)
	if err != nil {
		return err
	}
	p.streamRows(lo, hi, yield)
	return nil
}

// EachEdgeShardContext is EachEdgeShard under a context.  Cancellation is
// checked at every row boundary and every streamPollStride emitted edges;
// on cancellation the stream stops without invoking yield again and
// returns ctx.Err().  An edge is never emitted twice, cancelled or not.
// A non-cancellable context (context.Background) takes the zero-overhead
// EachEdgeShard loop.
func (p *Product) EachEdgeShardContext(ctx context.Context, shard, nshards int, yield func(v, w int) bool) error {
	lo, hi, err := p.shardRange(shard, nshards)
	if err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if ctx.Done() == nil {
		p.streamRows(lo, hi, yield)
		return nil
	}
	poll := exec.NewPoller(ctx, streamPollStride)
	cancelled := false
	p.streamRows(lo, hi, func(v, w int) bool {
		if poll.Cancelled() {
			cancelled = true
			return false
		}
		return yield(v, w)
	})
	if cancelled {
		return ctx.Err()
	}
	return nil
}

// streamRows walks rows [lo, hi) of the shard layout, yielding each product
// edge; this is the allocation-free hot loop every streaming path shares.
// Two-factor products (K = 1) take the historical specialized loop —
// vertex arithmetic is IndexOf with n_B hoisted out — and chains walk the
// mixed-radix decomposition recursively.  Both produce the same order for
// K = 1.
func (p *Product) streamRows(lo, hi int, yield func(v, w int) bool) {
	if len(p.bs) == 1 {
		p.streamRowsTwoFactor(lo, hi, yield)
		return
	}
	p.streamRowsChain(lo, hi, yield)
}

func (p *Product) streamRowsTwoFactor(lo, hi int, yield func(v, w int) bool) {
	ea := p.a.G.Edges()
	eb := p.bs[0].G.Edges()
	nb := p.bs[0].N()
	for r := lo; r < hi; r++ {
		if r < len(ea) {
			au, av := ea[r].U*nb, ea[r].V*nb
			for _, be := range eb {
				if !yield(au+be.U, av+be.V) {
					return
				}
				if !yield(au+be.V, av+be.U) {
					return
				}
			}
			continue
		}
		i := (r - len(ea)) * nb // self-loop row (mode (ii) only)
		for _, be := range eb {
			if !yield(i+be.U, i+be.V) {
				return
			}
		}
	}
}

// EachEdgeContext streams the whole edge set (the EachEdge order) under a
// context; see EachEdgeShardContext for the cancellation contract.
func (p *Product) EachEdgeContext(ctx context.Context, yield func(v, w int) bool) error {
	return p.EachEdgeShardContext(ctx, 0, 1, yield)
}

// ShardEdgeCount returns the number of undirected edges shard `shard` of
// `nshards` will emit, without streaming.  Closed form on the row range:
// every row of term t emits exactly termPer[t] product edges, so the
// count is Σ_t overlap(shard, term t)·termPer[t] — O(K) terms and no
// per-edge or per-row work at any chain length.  For K = 1 this is the
// historical (2·edgeRows + selfRows)·|E_B|.  Row counts and per-row
// multiplicities were overflow-checked against |E_C| at construction, so
// the arithmetic here cannot wrap.
func (p *Product) ShardEdgeCount(shard, nshards int) (int64, error) {
	lo, hi, err := p.shardRange(shard, nshards)
	if err != nil {
		return 0, err
	}
	var total int64
	for t := 0; t < len(p.termOff)-1; t++ {
		o := min(hi, p.termOff[t+1]) - max(lo, p.termOff[t])
		if o > 0 {
			total += int64(o) * p.termPer[t]
		}
	}
	return total, nil
}

// StreamEdgesParallel streams all shards concurrently, delivering each
// shard to the sink returned by sinkFor(shard).  Sinks are used from
// exactly one goroutine each; a non-nil error from any sink aborts the
// remaining shards and is returned (first error wins).
//
// Deprecated-style compatibility wrapper: new callers should use
// StreamEdgesParallelContext, which adds cancellation and the exec.Sink
// vocabulary.
func (p *Product) StreamEdgesParallel(nshards int, sinkFor func(shard int) func(v, w int) error) error {
	return p.StreamEdgesParallelContext(context.Background(), nshards, func(shard int) exec.Sink {
		return exec.SinkFunc(sinkFor(shard))
	})
}

// StreamEdgesParallelContext streams all shards on the exec engine's
// bounded worker pool.  Each shard's edges go to the sink returned by
// sinkFor(shard); a sink is used from one goroutine at a time and is
// flushed (exec.Finish) when its shard completes.  A sink that also
// implements exec.BatchSink is fed through the batched hot loop —
// whole pooled buffers per call instead of one dynamic dispatch per
// edge; prefer that for any throughput-sensitive consumer.  The first
// sink or generation error cancels the remaining shards and is
// returned; if ctx is cancelled mid-generation the stream aborts
// promptly with ctx.Err() and already-written sink output is partial
// work for the caller to discard.
func (p *Product) StreamEdgesParallelContext(ctx context.Context, nshards int, sinkFor func(shard int) exec.Sink) error {
	if nshards <= 0 {
		return fmt.Errorf("core: nshards must be positive, got %d", nshards)
	}
	// One Enabled read decides the whole stream's code path: disabled
	// runs take the exact pre-instrumentation per-edge loop.  The
	// labeled per-shard counters are resolved here, once per stream
	// from a process-wide cache, never in the shard epilogue.
	instr := obs.Enabled()
	var spanDone func()
	var counters []*obs.Counter
	if instr {
		ctx, spanDone = obs.Span(ctx, "core.stream")
		defer spanDone()
		counters = shardEdgeCounters(nshards)
	}
	return exec.Sharded(ctx, nshards, func(ctx context.Context, s int) error {
		sink := sinkFor(s)
		var c *obs.Counter
		if instr {
			c = counters[s]
		}
		if bs, ok := sink.(exec.BatchSink); ok {
			var err error
			if instr {
				err = p.streamShardBatchInstrumented(ctx, s, nshards, c, bs)
			} else {
				err = p.streamShardBatch(ctx, s, nshards, bs)
			}
			if err != nil {
				return err
			}
			return exec.Finish(sink)
		}
		return p.streamShardPerEdge(ctx, s, nshards, instr, c, sink)
	})
}

// streamShardPerEdge runs one shard through the per-edge vocabulary.
// Kept as its own function — not inlined into the dispatch closure
// above — so the yield closure's enclosing frame stays small; folding
// it next to the batch branch measurably slows the per-edge loop.
func (p *Product) streamShardPerEdge(ctx context.Context, s, nshards int, instr bool, shardEdges *obs.Counter, sink exec.Sink) error {
	edge := sink.Edge
	if f, ok := sink.(exec.SinkFunc); ok {
		edge = f // skip the interface dispatch in the per-edge hot path
	}
	var sinkErr error
	yield := func(v, w int) bool {
		if e := edge(v, w); e != nil {
			sinkErr = e
			return false
		}
		return true
	}
	var err error
	if instr {
		err = p.streamShardInstrumented(ctx, s, nshards, shardEdges, yield)
	} else {
		err = p.EachEdgeShardContext(ctx, s, nshards, yield)
	}
	switch {
	case err != nil:
		return err
	case sinkErr != nil:
		return sinkErr
	}
	return exec.Finish(sink)
}

// streamShardInstrumented streams one shard with per-shard metrics:
// edges flush to the shared counter every streamObsBatch, and shard
// completion records a labeled per-shard total (through the
// pre-resolved counter handle — no registry lookup here), the done
// count, and the shard's wall time.  Partial counts from aborted
// shards still flush, so the progress reporter and final snapshot
// agree with what sinks saw.
func (p *Product) streamShardInstrumented(ctx context.Context, s, nshards int, shardEdges *obs.Counter, yield func(v, w int) bool) error {
	start := time.Now()
	var end timeline.Done
	if timeline.Enabled() {
		end = timeline.Begin(timeline.CatShard, "core.stream", s)
	}
	var batch, total int64
	err := p.EachEdgeShardContext(ctx, s, nshards, func(v, w int) bool {
		ok := yield(v, w)
		if ok {
			batch++
			if batch == streamObsBatch {
				mStreamEdges.Add(batch)
				total += batch
				batch = 0
			}
		}
		return ok
	})
	mStreamEdges.Add(batch)
	total += batch
	shardEdges.Add(total)
	hShardSecs.Observe(time.Since(start).Seconds())
	if err == nil {
		mShardsDone.Inc()
	}
	if end != nil {
		end(err)
	}
	return err
}
