package core

import (
	"fmt"
	"sync"
)

// Sharded, parallel edge streaming.  Generation is embarrassingly parallel
// in the factor-edge pairs — the property the paper's distributed-GraphBLAS
// future work relies on — so the undirected edge set of C is split into
// nshards deterministic, disjoint slices that can be produced concurrently
// and written to independent sinks.
//
// Work layout: "rows" are the |E_A| factor edges followed (mode (ii)) by
// the n_A self loops; each row crosses all |E_B| factor edges, a factor
// edge row emitting two product edges per pair and a self-loop row one.

// numRows returns the sharding row count.
func (p *Product) numRows() int {
	rows := p.a.G.NumEdges()
	if p.mode == ModeSelfLoopFactor {
		rows += p.a.N()
	}
	return rows
}

// EachEdgeShard streams shard `shard` of `nshards` disjoint slices of the
// product's undirected edge set.  The union over all shards is exactly the
// EachEdge stream; edges never repeat across shards.  Iteration stops
// early if yield returns false.
func (p *Product) EachEdgeShard(shard, nshards int, yield func(v, w int) bool) error {
	if nshards <= 0 {
		return fmt.Errorf("core: nshards must be positive, got %d", nshards)
	}
	if shard < 0 || shard >= nshards {
		return fmt.Errorf("core: shard %d out of range [0,%d)", shard, nshards)
	}
	rows := p.numRows()
	lo := shard * rows / nshards
	hi := (shard + 1) * rows / nshards
	if lo >= hi {
		return nil
	}
	ea := p.a.G.Edges()
	eb := p.b.G.Edges()
	for r := lo; r < hi; r++ {
		if r < len(ea) {
			ae := ea[r]
			for _, be := range eb {
				if !yield(p.IndexOf(ae.U, be.U), p.IndexOf(ae.V, be.V)) {
					return nil
				}
				if !yield(p.IndexOf(ae.U, be.V), p.IndexOf(ae.V, be.U)) {
					return nil
				}
			}
			continue
		}
		i := r - len(ea) // self-loop row (mode (ii) only)
		for _, be := range eb {
			if !yield(p.IndexOf(i, be.U), p.IndexOf(i, be.V)) {
				return nil
			}
		}
	}
	return nil
}

// ShardEdgeCount returns the number of undirected edges shard `shard` of
// `nshards` will emit, without streaming.
func (p *Product) ShardEdgeCount(shard, nshards int) (int64, error) {
	if nshards <= 0 {
		return 0, fmt.Errorf("core: nshards must be positive, got %d", nshards)
	}
	if shard < 0 || shard >= nshards {
		return 0, fmt.Errorf("core: shard %d out of range [0,%d)", shard, nshards)
	}
	rows := p.numRows()
	lo := shard * rows / nshards
	hi := (shard + 1) * rows / nshards
	nea := p.a.G.NumEdges()
	eb := int64(p.b.G.NumEdges())
	var n int64
	for r := lo; r < hi; r++ {
		if r < nea {
			n += 2 * eb
		} else {
			n += eb
		}
	}
	return n, nil
}

// StreamEdgesParallel streams all shards concurrently, one goroutine per
// shard, delivering each shard to the sink returned by sinkFor(shard).
// Sinks are used from exactly one goroutine each; a non-nil error from any
// sink aborts that shard and is returned (first error wins).
func (p *Product) StreamEdgesParallel(nshards int, sinkFor func(shard int) func(v, w int) error) error {
	if nshards <= 0 {
		return fmt.Errorf("core: nshards must be positive, got %d", nshards)
	}
	errs := make([]error, nshards)
	var wg sync.WaitGroup
	for s := 0; s < nshards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			sink := sinkFor(s)
			var sinkErr error
			argErr := p.EachEdgeShard(s, nshards, func(v, w int) bool {
				if err := sink(v, w); err != nil {
					sinkErr = err
					return false
				}
				return true
			})
			if argErr != nil {
				errs[s] = argErr
			} else {
				errs[s] = sinkErr
			}
		}(s)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
