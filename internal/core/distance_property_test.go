package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"kronbip/internal/gen"
	"kronbip/internal/graph"
)

// randConnectedBipartite builds a small random connected bipartite graph:
// a random spanning-tree-ish chain plus random cross edges.
func randConnectedBipartite(rng *rand.Rand) *graph.Graph {
	nu, nw := 2+rng.Intn(3), 2+rng.Intn(3)
	var pairs [][2]int
	// Chain u0-w0-u1-w1-… covers min(nu,nw) of each side; leftovers hang
	// off the first vertex of the opposite side, guaranteeing connectivity.
	m := nu
	if nw < m {
		m = nw
	}
	for i := 0; i < m; i++ {
		pairs = append(pairs, [2]int{i, i})
		if i+1 < m {
			pairs = append(pairs, [2]int{i + 1, i})
		}
	}
	for w := m; w < nw; w++ {
		pairs = append(pairs, [2]int{0, w})
	}
	for u := m; u < nu; u++ {
		pairs = append(pairs, [2]int{u, 0})
	}
	for u := 0; u < nu; u++ {
		for w := 0; w < nw; w++ {
			if rng.Float64() < 0.3 {
				pairs = append(pairs, [2]int{u, w})
			}
		}
	}
	b, err := graph.NewBipartite(nu, nw, pairs)
	if err != nil {
		panic(err)
	}
	return b.Graph
}

// randConnectedNonBipartite adds an odd cycle and random chords to a path.
func randConnectedNonBipartite(rng *rand.Rand) *graph.Graph {
	n := 4 + rng.Intn(5)
	var edges []graph.Edge
	for i := 0; i+1 < n; i++ {
		edges = append(edges, graph.Edge{U: i, V: i + 1})
	}
	edges = append(edges, graph.Edge{U: 0, V: 2}) // triangle 0-1-2
	for i := 0; i < n; i++ {
		for j := i + 2; j < n; j++ {
			if rng.Float64() < 0.2 {
				edges = append(edges, graph.Edge{U: i, V: j})
			}
		}
	}
	return graph.MustNew(n, edges)
}

// TestDistancePropertyRandomFactors cross-validates the closed-form
// distances against BFS on random strict factor pairs in both modes.
func TestDistancePropertyRandomFactors(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := randConnectedBipartite(rng)

		p1, err := New(randConnectedNonBipartite(rng), b, ModeNonBipartiteFactor)
		if err != nil {
			return false
		}
		p2, err := New(randConnectedBipartite(rng), b, ModeSelfLoopFactor)
		if err != nil {
			return false
		}
		for _, p := range []*Product{p1, p2} {
			g, err := p.Materialize(0)
			if err != nil {
				return false
			}
			for v := 0; v < p.N(); v++ {
				dist := g.BFS(v)
				for w := 0; w < p.N(); w++ {
					h, ok := p.HopsAt(v, w)
					if !ok || h != dist[w] {
						return false
					}
				}
				ecc, err := p.EccentricityAt(v)
				if err != nil || ecc != g.Eccentricity(v) {
					return false
				}
			}
			diam, err := p.Diameter()
			if err != nil || diam != g.Diameter() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestDegreeHistogramProperty also rides the random factors: the closed
// form must match materialization for arbitrary strict pairs.
func TestDegreeHistogramProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p, err := New(randConnectedBipartite(rng), randConnectedBipartite(rng), ModeSelfLoopFactor)
		if err != nil {
			return false
		}
		g, err := p.Materialize(0)
		if err != nil {
			return false
		}
		hist := p.DegreeHistogram()
		got := map[int64]int64{}
		for _, d := range g.Degrees() {
			got[d]++
		}
		if len(hist) != len(got) {
			return false
		}
		for d, c := range hist {
			if got[d] != c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Guard: the helper generators really produce the advertised shapes.
func TestRandFactorHelpers(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 30; i++ {
		b := randConnectedBipartite(rng)
		if !b.IsConnected() || !b.IsBipartite() {
			t.Fatal("randConnectedBipartite produced wrong shape")
		}
		nb := randConnectedNonBipartite(rng)
		if !nb.IsConnected() || nb.IsBipartite() {
			t.Fatal("randConnectedNonBipartite produced wrong shape")
		}
	}
	_ = gen.Path // keep gen imported for symmetry with sibling tests
}
