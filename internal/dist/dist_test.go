package dist

import (
	"testing"

	"kronbip/internal/core"
	"kronbip/internal/count"
	"kronbip/internal/gen"
)

func products(t *testing.T) map[string]*core.Product {
	t.Helper()
	p1, err := core.New(gen.Petersen(), gen.Crown(3).Graph, core.ModeNonBipartiteFactor)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := core.New(gen.Hypercube(3), gen.CompleteBipartite(2, 3).Graph, core.ModeSelfLoopFactor)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*core.Product{"mode1": p1, "mode2": p2}
}

func TestGenerateMatchesCore(t *testing.T) {
	for name, p := range products(t) {
		for _, ranks := range []int{1, 2, 3, 8} {
			res, err := Generate(p, ranks)
			if err != nil {
				t.Fatalf("%s ranks=%d: %v", name, ranks, err)
			}
			if res.TotalEdges != p.NumEdges() {
				t.Fatalf("%s ranks=%d: edges %d, want %d", name, ranks, res.TotalEdges, p.NumEdges())
			}
			if res.GlobalFour != p.GlobalFourCycles() {
				t.Fatalf("%s ranks=%d: □ %d, want %d", name, ranks, res.GlobalFour, p.GlobalFourCycles())
			}
			if res.GlobalFour != res.GlobalFourE {
				t.Fatalf("%s ranks=%d: vertex route %d != edge route %d", name, ranks, res.GlobalFour, res.GlobalFourE)
			}
			if res.TotalDegree != 2*p.NumEdges() {
				t.Fatalf("%s ranks=%d: Σdeg %d, want %d", name, ranks, res.TotalDegree, 2*p.NumEdges())
			}
		}
	}
}

func TestGenerateMatchesBruteForce(t *testing.T) {
	p := products(t)["mode2"]
	res, err := Generate(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	g, err := p.Materialize(0)
	if err != nil {
		t.Fatal(err)
	}
	brute, err := count.GlobalButterflies(g)
	if err != nil {
		t.Fatal(err)
	}
	if res.GlobalFour != brute {
		t.Fatalf("distributed □ = %d, brute force %d", res.GlobalFour, brute)
	}
}

func TestShardPartition(t *testing.T) {
	p := products(t)["mode1"]
	res, err := Generate(p, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Shards) != 5 {
		t.Fatalf("shards = %d, want 5", len(res.Shards))
	}
	// Vertex ranges tile [0, n) in rank order without gaps.
	prev := 0
	for _, s := range res.Shards {
		if s.VertexLo != prev {
			t.Fatalf("rank %d starts at %d, want %d", s.Rank, s.VertexLo, prev)
		}
		prev = s.VertexHi
	}
	if prev != p.N() {
		t.Fatalf("ranges end at %d, want %d", prev, p.N())
	}
}

func TestGenerateRanksClampAndErrors(t *testing.T) {
	p := products(t)["mode1"]
	if _, err := Generate(p, 0); err == nil {
		t.Fatal("accepted zero ranks")
	}
	// More ranks than vertices clamps rather than spawning empty workers.
	res, err := Generate(p, p.N()+100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ranks != p.N() {
		t.Fatalf("ranks = %d, want clamp to %d", res.Ranks, p.N())
	}
	if res.GlobalFour != p.GlobalFourCycles() {
		t.Fatal("clamped run wrong")
	}
}

func TestGenerateDeterministicAcrossRankCounts(t *testing.T) {
	p := products(t)["mode2"]
	r1, err := Generate(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	r7, err := Generate(p, 7)
	if err != nil {
		t.Fatal(err)
	}
	if r1.GlobalFour != r7.GlobalFour || r1.TotalEdges != r7.TotalEdges || r1.MaxVertexFour != r7.MaxVertexFour {
		t.Fatal("reductions differ across rank counts")
	}
}
