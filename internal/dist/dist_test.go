package dist

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"kronbip/internal/core"
	"kronbip/internal/count"
	"kronbip/internal/gen"
	"kronbip/internal/graph"
	"kronbip/internal/obs/timeline"
)

func products(t *testing.T) map[string]*core.Product {
	t.Helper()
	p1, err := core.New(gen.Petersen(), gen.Crown(3).Graph, core.ModeNonBipartiteFactor)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := core.New(gen.Hypercube(3), gen.CompleteBipartite(2, 3).Graph, core.ModeSelfLoopFactor)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*core.Product{"mode1": p1, "mode2": p2}
}

func TestGenerateMatchesCore(t *testing.T) {
	for name, p := range products(t) {
		for _, ranks := range []int{1, 2, 3, 8} {
			res, err := Generate(p, ranks)
			if err != nil {
				t.Fatalf("%s ranks=%d: %v", name, ranks, err)
			}
			if res.TotalEdges != p.NumEdges() {
				t.Fatalf("%s ranks=%d: edges %d, want %d", name, ranks, res.TotalEdges, p.NumEdges())
			}
			if res.GlobalFour != p.GlobalFourCycles() {
				t.Fatalf("%s ranks=%d: □ %d, want %d", name, ranks, res.GlobalFour, p.GlobalFourCycles())
			}
			if res.GlobalFour != res.GlobalFourE {
				t.Fatalf("%s ranks=%d: vertex route %d != edge route %d", name, ranks, res.GlobalFour, res.GlobalFourE)
			}
			if res.TotalDegree != 2*p.NumEdges() {
				t.Fatalf("%s ranks=%d: Σdeg %d, want %d", name, ranks, res.TotalDegree, 2*p.NumEdges())
			}
		}
	}
}

func TestGenerateMatchesBruteForce(t *testing.T) {
	p := products(t)["mode2"]
	res, err := Generate(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	g, err := p.Materialize(0)
	if err != nil {
		t.Fatal(err)
	}
	brute, err := count.GlobalButterflies(g)
	if err != nil {
		t.Fatal(err)
	}
	if res.GlobalFour != brute {
		t.Fatalf("distributed □ = %d, brute force %d", res.GlobalFour, brute)
	}
}

func TestShardPartition(t *testing.T) {
	p := products(t)["mode1"]
	res, err := Generate(p, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Shards) != 5 {
		t.Fatalf("shards = %d, want 5", len(res.Shards))
	}
	// Vertex ranges tile [0, n) in rank order without gaps.
	prev := 0
	for _, s := range res.Shards {
		if s.VertexLo != prev {
			t.Fatalf("rank %d starts at %d, want %d", s.Rank, s.VertexLo, prev)
		}
		prev = s.VertexHi
	}
	if prev != p.N() {
		t.Fatalf("ranges end at %d, want %d", prev, p.N())
	}
}

func TestGenerateRanksClampAndErrors(t *testing.T) {
	p := products(t)["mode1"]
	if _, err := Generate(p, 0); err == nil {
		t.Fatal("accepted zero ranks")
	}
	// More ranks than vertices clamps rather than spawning empty workers.
	res, err := Generate(p, p.N()+100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ranks != p.N() {
		t.Fatalf("ranks = %d, want clamp to %d", res.Ranks, p.N())
	}
	if res.GlobalFour != p.GlobalFourCycles() {
		t.Fatal("clamped run wrong")
	}
}

func TestGenerateDeterministicAcrossRankCounts(t *testing.T) {
	p := products(t)["mode2"]
	r1, err := Generate(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	r7, err := Generate(p, 7)
	if err != nil {
		t.Fatal(err)
	}
	if r1.GlobalFour != r7.GlobalFour || r1.TotalEdges != r7.TotalEdges || r1.MaxVertexFour != r7.MaxVertexFour {
		t.Fatal("reductions differ across rank counts")
	}
}

// TestGlobalFourRoutesAgree cross-checks the two independent ground-truth
// routes (Σ s_v / 4 vs Σ ◊_e / 4) against the analytic product total on a
// table of factor pairs spanning both product modes.
func TestGlobalFourRoutesAgree(t *testing.T) {
	cases := []struct {
		name string
		a    *graph.Graph
		b    *graph.Graph
		mode core.Mode
	}{
		{"petersen_crown3_mode1", gen.Petersen(), gen.Crown(3).Graph, core.ModeNonBipartiteFactor},
		{"c5_kb23_mode1", gen.Cycle(5), gen.CompleteBipartite(2, 3).Graph, core.ModeNonBipartiteFactor},
		{"k4_crown4_mode1", gen.Complete(4), gen.Crown(4).Graph, core.ModeNonBipartiteFactor},
		{"lollipop_kb22_mode1", gen.Lollipop(3, 2), gen.CompleteBipartite(2, 2).Graph, core.ModeNonBipartiteFactor},
		{"path4_kb22_mode2", gen.Path(4), gen.CompleteBipartite(2, 2).Graph, core.ModeSelfLoopFactor},
		{"hypercube3_kb23_mode2", gen.Hypercube(3), gen.CompleteBipartite(2, 3).Graph, core.ModeSelfLoopFactor},
		{"grid33_crown3_mode2", gen.Grid(3, 3), gen.Crown(3).Graph, core.ModeSelfLoopFactor},
		{"star5_kb33_mode2", gen.Star(5), gen.CompleteBipartite(3, 3).Graph, core.ModeSelfLoopFactor},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p, err := core.New(tc.a, tc.b, tc.mode)
			if err != nil {
				t.Fatal(err)
			}
			res, err := Generate(p, 4)
			if err != nil {
				t.Fatal(err)
			}
			if res.GlobalFour != res.GlobalFourE {
				t.Fatalf("vertex route %d != edge route %d", res.GlobalFour, res.GlobalFourE)
			}
			if res.GlobalFour != p.GlobalFourCycles() {
				t.Fatalf("distributed □ = %d, analytic %d", res.GlobalFour, p.GlobalFourCycles())
			}
		})
	}
}

// TestCancellationNoPartialCompleteInTimeline cancels a run mid-flight and
// asserts the event timeline never marks a shard complete (OK=true) that the
// cancelled run did not actually finish: the count of OK rank events is
// strictly below the rank total, and no rank appears OK more than once.
func TestCancellationNoPartialCompleteInTimeline(t *testing.T) {
	// Large product + one rank per vertex so the run comprises thousands of
	// pool tasks; cancellation after the first completed rank then lands
	// mid-run with overwhelming probability.  Retry guards the (harmless)
	// race where the whole run beats the cancel.
	p, err := core.New(gen.Hypercube(10), gen.CompleteBipartite(5, 5).Graph, core.ModeSelfLoopFactor)
	if err != nil {
		t.Fatal(err)
	}
	ranks := p.N()

	timeline.SetEnabled(true)
	t.Cleanup(func() {
		timeline.SetEnabled(false)
		timeline.Default.Reset()
	})

	for attempt := 0; attempt < 3; attempt++ {
		timeline.Default.Reset()
		ctx, cancel := context.WithCancel(context.Background())
		errCh := make(chan error, 1)
		go func() {
			_, err := GenerateContext(ctx, p, ranks)
			errCh <- err
		}()
		// Wait for the first recorded event (a rank finished), then cancel.
		deadline := time.Now().Add(10 * time.Second)
		for timeline.Default.Len() == 0 && time.Now().Before(deadline) {
			runtime.Gosched()
		}
		cancel()
		err := <-errCh
		if err == nil {
			continue // run won the race against cancel; try again
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled run returned %v, want context.Canceled", err)
		}
		events, _ := timeline.Default.Snapshot()
		okRanks := map[int]int{}
		ok := 0
		for _, ev := range events {
			if ev.Cat != timeline.CatRank || ev.Name != "dist.generate" {
				continue
			}
			if ev.ID < 0 || ev.ID >= ranks {
				t.Fatalf("rank event id %d outside [0,%d)", ev.ID, ranks)
			}
			if ev.OK {
				ok++
				if okRanks[ev.ID]++; okRanks[ev.ID] > 1 {
					t.Fatalf("rank %d marked complete twice", ev.ID)
				}
			}
		}
		if ok >= ranks {
			t.Fatalf("timeline marks %d of %d ranks complete after cancellation", ok, ranks)
		}
		return
	}
	t.Skip("run completed before cancellation propagated on every attempt")
}
