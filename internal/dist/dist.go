// Package dist simulates the paper's §V future work — "implement this
// style of generator in a distributed version of GraphBLAS, including
// using the ground truth formulas derived here to compute ground truth
// values during generation" — as an in-process cluster of rank workers
// communicating only by channels (share memory by communicating).
//
// The product's vertex space [0, n_A·n_B) is 1D block-partitioned across
// ranks.  Each rank independently:
//
//  1. receives the (small) factors from the coordinator,
//  2. generates its local slice of product edges {v,w} with owner(v) = rank
//     (each undirected edge is owned by its lower-ID endpoint's rank),
//  3. computes the ground-truth degree, 4-cycle and edge-4-cycle values for
//     its slice *during generation* from factor statistics alone, and
//  4. streams a summary back for a tree-free (coordinator) reduction.
//
// Nothing global is ever materialized; the coordinator ends up with the
// exact global edge and 4-cycle counts plus per-rank tallies, which the
// tests cross-validate against package core and brute force.
package dist

import (
	"context"
	"fmt"

	"kronbip/internal/core"
	"kronbip/internal/exec"
	"kronbip/internal/obs"
	"kronbip/internal/obs/timeline"
)

// Cluster metrics: one flush per completed run (never per edge), so the
// enabled overhead is a few atomic adds after the reduction.
var (
	mDistRuns  = obs.Default.Counter("dist.generate.runs")
	mDistRanks = obs.Default.Counter("dist.generate.ranks")
	mDistEdges = obs.Default.Counter("dist.generate.edges")
)

// Shard is one rank's generation result summary.
type Shard struct {
	Rank      int
	VertexLo  int   // owned vertex range [VertexLo, VertexHi)
	VertexHi  int   //
	Edges     int64 // undirected edges owned by this rank
	SumDegree int64 // Σ d_v over owned vertices
	SumVertex int64 // Σ s_v over owned vertices (4·□ when summed globally)
	SumEdgeSq int64 // Σ ◊_e over owned edges
	MaxVertex int64 // max s_v over owned vertices
}

// Result is the coordinator's reduction of all shards.
type Result struct {
	Ranks         int
	Shards        []Shard
	TotalEdges    int64
	GlobalFour    int64 // from Σ s_v / 4
	GlobalFourE   int64 // from Σ ◊_e / 4 (independent route; must agree)
	TotalDegree   int64
	MaxVertexFour int64
}

// Generate runs the simulated cluster; see GenerateContext.
func Generate(p *core.Product, ranks int) (*Result, error) {
	return GenerateContext(context.Background(), p, ranks)
}

// GenerateContext runs the simulated cluster on the shared exec engine.
// Each rank runs as a cancellable shard on the bounded worker pool; the
// only shared state is the Product descriptor (immutable) and the
// rank-indexed shard slice each worker writes exactly once.  Cancelling
// ctx aborts every in-flight rank promptly and returns ctx.Err().
func GenerateContext(ctx context.Context, p *core.Product, ranks int) (*Result, error) {
	if ranks <= 0 {
		return nil, fmt.Errorf("dist: ranks must be positive, got %d", ranks)
	}
	n := p.N()
	if ranks > n {
		ranks = n
	}
	instr := obs.Enabled()
	if instr {
		var done func()
		ctx, done = obs.Span(ctx, "dist.generate")
		defer done()
	}
	// One timeline read for the whole run: each rank then records one
	// begin/end event, so a straggling or cancelled rank is visible as a
	// long or not-OK "dist.generate" lane in the trace.
	tl := timeline.Enabled()
	shards := make([]Shard, ranks)
	err := exec.Sharded(ctx, ranks, func(ctx context.Context, rank int) error {
		var end timeline.Done
		if tl {
			end = timeline.Begin(timeline.CatRank, "dist.generate", rank)
		}
		shard, err := generateRank(ctx, p, rank, ranks)
		if end != nil {
			end(err)
		}
		if err != nil {
			return err
		}
		shards[rank] = shard
		return nil
	})
	if err != nil {
		return nil, err
	}
	res := &Result{Ranks: ranks, Shards: shards}
	for _, s := range res.Shards {
		res.TotalEdges += s.Edges
		res.TotalDegree += s.SumDegree
		res.GlobalFour += s.SumVertex
		res.GlobalFourE += s.SumEdgeSq
		if s.MaxVertex > res.MaxVertexFour {
			res.MaxVertexFour = s.MaxVertex
		}
	}
	if res.GlobalFour%4 != 0 || res.GlobalFourE%4 != 0 {
		return nil, fmt.Errorf("dist: reduction sums not divisible by 4 (%d, %d)", res.GlobalFour, res.GlobalFourE)
	}
	res.GlobalFour /= 4
	res.GlobalFourE /= 4
	if instr {
		mDistRuns.Inc()
		mDistRanks.Add(int64(ranks))
		mDistEdges.Add(res.TotalEdges)
	}
	return res, nil
}

// generateRank is one worker: owned vertex range plus owned-edge streaming
// with ground truth computed inline.
func generateRank(ctx context.Context, p *core.Product, rank, ranks int) (Shard, error) {
	n := p.N()
	lo, hi := exec.Stripe(rank, ranks, n)
	s := Shard{Rank: rank, VertexLo: lo, VertexHi: hi}

	// Vertex-side ground truth for the owned range, straight from factor
	// statistics (no communication).
	poll := exec.NewPoller(ctx, 4096)
	for v := lo; v < hi; v++ {
		if poll.Cancelled() {
			return Shard{}, poll.Err()
		}
		s.SumDegree += p.DegreeAt(v)
		sv := p.VertexFourCyclesAt(v)
		s.SumVertex += sv
		if sv > s.MaxVertex {
			s.MaxVertex = sv
		}
	}

	// Edge generation: stream every product edge in batches, keep those
	// owned here (owner = rank of the lower endpoint), and evaluate ◊
	// inline.  The batch path means each rank pays stream dispatch once
	// per exec.BatchLen edges while scanning for its slice.  A real
	// distributed generator would enumerate only local factor-edge pairs;
	// the ownership rule makes the partition exact either way, and the
	// cost model (each rank scans the factor pair space) matches the
	// paper's O(|E_C|^{1/2})-memory workers.
	var streamErr error
	err := p.EachEdgeBatchContext(ctx, func(batch []exec.Edge) bool {
		for _, e := range batch {
			low := e.V
			if e.W < low {
				low = e.W
			}
			if low < lo || low >= hi {
				continue
			}
			sq, err := p.EdgeFourCyclesAt(e.V, e.W)
			if err != nil {
				streamErr = err
				return false
			}
			s.Edges++
			s.SumEdgeSq += sq
		}
		return true
	})
	if err != nil {
		return Shard{}, err
	}
	if streamErr != nil {
		return Shard{}, streamErr
	}
	return s, nil
}
