package dist

import (
	"context"
	"errors"
	"testing"

	"kronbip/internal/core"
	"kronbip/internal/gen"
)

func ctxTestProduct(t *testing.T) *core.Product {
	t.Helper()
	p, err := core.New(gen.Crown(4).Graph, gen.Crown(4).Graph, core.ModeSelfLoopFactor)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestGenerateContextCancelled(t *testing.T) {
	p := ctxTestProduct(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := GenerateContext(ctx, p, 4); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestGenerateContextMatchesWrapper(t *testing.T) {
	p := ctxTestProduct(t)
	want, err := Generate(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	got, err := GenerateContext(context.Background(), p, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got.TotalEdges != want.TotalEdges || got.GlobalFour != want.GlobalFour ||
		got.GlobalFourE != want.GlobalFourE || got.TotalDegree != want.TotalDegree {
		t.Fatalf("context run %+v differs from wrapper %+v", got, want)
	}
	if len(got.Shards) != len(want.Shards) {
		t.Fatalf("shard counts differ: %d vs %d", len(got.Shards), len(want.Shards))
	}
	for i := range got.Shards {
		if got.Shards[i] != want.Shards[i] {
			t.Fatalf("shard %d differs: %+v vs %+v", i, got.Shards[i], want.Shards[i])
		}
	}
}
