package gen

import (
	"testing"

	"kronbip/internal/graph"
)

func TestPath(t *testing.T) {
	g := Path(5)
	if g.N() != 5 || g.NumEdges() != 4 {
		t.Fatalf("Path(5): n=%d m=%d", g.N(), g.NumEdges())
	}
	if !g.IsConnected() || !g.IsBipartite() {
		t.Fatal("Path(5) must be connected and bipartite")
	}
	if Path(1).NumEdges() != 0 {
		t.Fatal("Path(1) should have no edges")
	}
}

func TestCycleParity(t *testing.T) {
	for _, n := range []int{3, 5, 7} {
		if Cycle(n).IsBipartite() {
			t.Fatalf("odd cycle C_%d reported bipartite", n)
		}
	}
	for _, n := range []int{4, 6, 8} {
		g := Cycle(n)
		if !g.IsBipartite() || !g.IsConnected() || g.NumEdges() != n {
			t.Fatalf("even cycle C_%d wrong", n)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Cycle(2) did not panic")
		}
	}()
	Cycle(2)
}

func TestStar(t *testing.T) {
	g := Star(6)
	if g.Degree(0) != 5 || g.NumEdges() != 5 {
		t.Fatal("Star(6) wrong shape")
	}
	if !g.IsBipartite() || !g.IsConnected() {
		t.Fatal("star must be bipartite and connected")
	}
}

func TestComplete(t *testing.T) {
	g := Complete(5)
	if g.NumEdges() != 10 {
		t.Fatalf("K_5 edges = %d, want 10", g.NumEdges())
	}
	if g.IsBipartite() {
		t.Fatal("K_5 reported bipartite")
	}
}

func TestCompleteBipartite(t *testing.T) {
	b := CompleteBipartite(3, 4)
	if b.NumEdges() != 12 || b.NU() != 3 || b.NW() != 4 {
		t.Fatal("K_{3,4} wrong shape")
	}
	if !b.IsConnected() {
		t.Fatal("biclique must be connected")
	}
}

func TestCrown(t *testing.T) {
	b := Crown(4)
	if b.NumEdges() != 12 { // 16 - 4 matching edges
		t.Fatalf("Crown(4) edges = %d, want 12", b.NumEdges())
	}
	for u := 0; u < 4; u++ {
		if b.HasEdge(u, 4+u) {
			t.Fatal("crown contains matching edge")
		}
	}
	if !b.IsConnected() || !b.IsBipartite() {
		t.Fatal("Crown(4) must be connected bipartite")
	}
}

func TestGrid(t *testing.T) {
	g := Grid(3, 4)
	if g.N() != 12 || g.NumEdges() != 3*3+2*4 {
		t.Fatalf("Grid(3,4): n=%d m=%d", g.N(), g.NumEdges())
	}
	if !g.IsBipartite() || !g.IsConnected() {
		t.Fatal("grid must be bipartite and connected")
	}
}

func TestBinaryTree(t *testing.T) {
	g := BinaryTree(4)
	if g.N() != 15 || g.NumEdges() != 14 {
		t.Fatal("BinaryTree(4) wrong shape")
	}
	if !g.IsConnected() || !g.IsBipartite() {
		t.Fatal("tree must be connected and bipartite")
	}
}

func TestPetersen(t *testing.T) {
	g := Petersen()
	if g.N() != 10 || g.NumEdges() != 15 {
		t.Fatalf("Petersen: n=%d m=%d", g.N(), g.NumEdges())
	}
	if g.IsBipartite() {
		t.Fatal("Petersen reported bipartite")
	}
	if !g.IsConnected() {
		t.Fatal("Petersen reported disconnected")
	}
	for v := 0; v < 10; v++ {
		if g.Degree(v) != 3 {
			t.Fatal("Petersen is 3-regular")
		}
	}
}

func TestLollipop(t *testing.T) {
	g := Lollipop(5, 3)
	if g.N() != 8 || g.NumEdges() != 8 {
		t.Fatal("Lollipop(5,3) wrong shape")
	}
	if g.IsBipartite() {
		t.Fatal("odd lollipop reported bipartite")
	}
	if !g.IsConnected() {
		t.Fatal("lollipop must be connected")
	}
}

func TestDisjointUnion(t *testing.T) {
	g := DisjointUnion(Path(3), Cycle(4))
	if g.N() != 7 || g.NumEdges() != 6 {
		t.Fatal("DisjointUnion wrong shape")
	}
	if g.IsConnected() {
		t.Fatal("disjoint union reported connected")
	}
	_, count := g.ConnectedComponents()
	if count != 2 {
		t.Fatalf("components = %d, want 2", count)
	}
}

func TestDoubleStar(t *testing.T) {
	g := DoubleStar(3, 4)
	if g.N() != 9 || g.NumEdges() != 8 {
		t.Fatal("DoubleStar wrong shape")
	}
	if !g.IsConnected() || !g.IsBipartite() {
		t.Fatal("double star must be connected bipartite")
	}
	if g.Degree(0) != 4 || g.Degree(1) != 5 {
		t.Fatalf("double star centers have degrees %d,%d", g.Degree(0), g.Degree(1))
	}
}

func TestHypercube(t *testing.T) {
	g := Hypercube(4)
	if g.N() != 16 || g.NumEdges() != 32 {
		t.Fatal("Q_4 wrong shape")
	}
	if !g.IsBipartite() || !g.IsConnected() {
		t.Fatal("hypercube must be bipartite connected")
	}
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) != 4 {
			t.Fatal("Q_4 is 4-regular")
		}
	}
}

func TestScaleFreeShape(t *testing.T) {
	g := ScaleFree(100, 2, 42)
	if g.N() != 100 {
		t.Fatalf("n = %d", g.N())
	}
	if !g.IsConnected() {
		t.Fatal("scale-free factor must be connected")
	}
	if g.IsBipartite() {
		t.Fatal("scale-free factor must be non-bipartite (Assump 1(i))")
	}
	// Heavy tail: max degree well above the mean.
	mean := float64(2*g.NumEdges()) / float64(g.N())
	if float64(g.MaxDegree()) < 2*mean {
		t.Fatalf("max degree %d not heavy-tailed (mean %.1f)", g.MaxDegree(), mean)
	}
}

func TestScaleFreeDeterministic(t *testing.T) {
	a := ScaleFree(60, 2, 7)
	b := ScaleFree(60, 2, 7)
	ea, eb := a.Edges(), b.Edges()
	if len(ea) != len(eb) {
		t.Fatal("same seed produced different edge counts")
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatal("same seed produced different edges")
		}
	}
	c := ScaleFree(60, 2, 8)
	if len(c.Edges()) == len(ea) {
		same := true
		for i, e := range c.Edges() {
			if e != ea[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical graphs")
		}
	}
}

func TestScaleFreeM1NonBipartite(t *testing.T) {
	g := ScaleFree(30, 1, 3)
	if g.IsBipartite() {
		t.Fatal("ScaleFree with m=1 must still contain a triangle")
	}
	if !g.IsConnected() {
		t.Fatal("ScaleFree with m=1 must be connected")
	}
}

func TestScaleFreePanics(t *testing.T) {
	for _, fn := range []func(){
		func() { ScaleFree(10, 0, 1) },
		func() { ScaleFree(3, 2, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("invalid ScaleFree args did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestBipartiteScaleFree(t *testing.T) {
	b := BipartiteScaleFree(50, 80, 200, 11)
	if b.NU() != 50 || b.NW() != 80 {
		t.Fatal("part sizes wrong")
	}
	if b.NumEdges() != 200 {
		t.Fatalf("edges = %d, want 200", b.NumEdges())
	}
	if !b.IsBipartite() {
		t.Fatal("bipartite generator produced odd cycle")
	}
}

func TestConnectedBipartiteScaleFree(t *testing.T) {
	b := ConnectedBipartiteScaleFree(40, 60, 90, 5)
	if !b.IsConnected() {
		t.Fatal("ConnectedBipartiteScaleFree produced disconnected graph")
	}
	if !b.IsBipartite() {
		t.Fatal("stitching broke bipartiteness")
	}
}

func TestUnicodeLike(t *testing.T) {
	a := UnicodeLike(2020)
	if a.NU() != UnicodeNU || a.NW() != UnicodeNW {
		t.Fatalf("parts %d/%d, want %d/%d", a.NU(), a.NW(), UnicodeNU, UnicodeNW)
	}
	if a.NumEdges() != UnicodeEdges {
		t.Fatalf("edges = %d, want %d", a.NumEdges(), UnicodeEdges)
	}
	if !a.IsBipartite() {
		t.Fatal("unicode-like factor not bipartite")
	}
	// The real unicode network is disconnected; the stand-in should be too
	// (isolated territories exist because edges < vertices).
	if a.IsConnected() {
		t.Fatal("unicode-like factor unexpectedly connected")
	}
	// Heavy tail on the language side.
	deg := a.Degrees()
	var max int64
	for _, d := range deg {
		if d > max {
			max = d
		}
	}
	if max < 20 {
		t.Fatalf("max degree %d too small for a heavy-tail profile", max)
	}
	// Deterministic for a fixed seed.
	b := UnicodeLike(2020)
	if b.NumEdges() != a.NumEdges() || !sameEdges(a.Graph, b.Graph) {
		t.Fatal("UnicodeLike not deterministic")
	}
}

func sameEdges(a, b *graph.Graph) bool {
	ea, eb := a.Edges(), b.Edges()
	if len(ea) != len(eb) {
		return false
	}
	for i := range ea {
		if ea[i] != eb[i] {
			return false
		}
	}
	return true
}
