package gen

import "kronbip/internal/graph"

// Paper Table I dimensions of the Konect `unicode` language network.
const (
	UnicodeNU    = 254  // |U_A|: languages
	UnicodeNW    = 614  // |W_A|: territories
	UnicodeEdges = 1256 // |E_A|
)

// UnicodeLike returns a synthetic stand-in for the Konect `unicode`
// language–territory network the paper uses in §IV (Table I, Fig. 5).
//
// The real dataset is not redistributable here, so we substitute a seeded
// bipartite preferential-attachment graph with the same part sizes
// (|U|=254, |W|=614) and edge count (1,256), a heavy-tail degree profile,
// and — like the original — several disconnected stragglers.  Every formula
// in the paper consumes only the factor's adjacency structure, so the
// substitution preserves the experiment end to end; absolute counts
// (e.g. Table I's 1,662 global 4-cycles) differ and are reported as
// measured in EXPERIMENTS.md.
func UnicodeLike(seed int64) *graph.Bipartite {
	return BipartiteScaleFree(UnicodeNU, UnicodeNW, UnicodeEdges, seed)
}
