package gen

import (
	"math/rand"

	"kronbip/internal/graph"
)

// ScaleFree returns a connected non-bipartite graph on n vertices built by
// Barabási–Albert preferential attachment with m edges per arriving vertex.
// The seed makes generation deterministic.  The initial clique K_{m+1}
// guarantees triangles, so the result is non-bipartite — the shape the
// paper's Assumption 1(i) requires of factor A.
func ScaleFree(n, m int, seed int64) *graph.Graph {
	if m < 1 {
		panic("gen: ScaleFree requires m >= 1")
	}
	if n < m+2 {
		panic("gen: ScaleFree requires n >= m+2")
	}
	if m == 1 {
		// Force a triangle so the factor is non-bipartite even with m=1.
		return scaleFreeFrom(n, m, seed, Complete(3))
	}
	return scaleFreeFrom(n, m, seed, Complete(m+1))
}

func scaleFreeFrom(n, m int, seed int64, core *graph.Graph) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	edges := core.Edges()
	// repeated holds each endpoint once per incident edge; sampling from it
	// is sampling proportionally to degree.
	var repeated []int
	for _, e := range edges {
		repeated = append(repeated, e.U, e.V)
	}
	for v := core.N(); v < n; v++ {
		seen := map[int]bool{}
		chosen := make([]int, 0, m) // ordered: map iteration would break seed determinism
		for len(chosen) < m {
			t := repeated[rng.Intn(len(repeated))]
			if !seen[t] {
				seen[t] = true
				chosen = append(chosen, t)
			}
		}
		for _, t := range chosen {
			edges = append(edges, graph.Edge{U: v, V: t})
			repeated = append(repeated, v, t)
		}
	}
	return graph.MustNew(n, edges)
}

// BipartiteScaleFree returns a bipartite graph with nu left and nw right
// vertices and approximately targetEdges edges, grown by bipartite
// preferential attachment: each new edge picks its endpoints proportionally
// to (degree + 1) on each side, which produces the heavy-tail degree
// profile typical of term–document and user–item data.  The graph may be
// disconnected (as the paper's unicode factor is); isolated vertices are
// possible on either side.
func BipartiteScaleFree(nu, nw, targetEdges int, seed int64) *graph.Bipartite {
	rng := rand.New(rand.NewSource(seed))
	degU := make([]int, nu)
	degW := make([]int, nw)
	seen := map[[2]int]bool{}
	var pairs [][2]int

	// Weighted sampling by (deg+1) via cumulative inverse transform on the
	// fly: total weight = sum(deg) + n.
	sample := func(deg []int, totalDeg int) int {
		t := rng.Intn(totalDeg + len(deg))
		for i, d := range deg {
			t -= d + 1
			if t < 0 {
				return i
			}
		}
		return len(deg) - 1
	}

	totalU, totalW := 0, 0
	attempts := 0
	for len(pairs) < targetEdges && attempts < 50*targetEdges {
		attempts++
		u := sample(degU, totalU)
		w := sample(degW, totalW)
		if seen[[2]int{u, w}] {
			continue
		}
		seen[[2]int{u, w}] = true
		pairs = append(pairs, [2]int{u, w})
		degU[u]++
		degW[w]++
		totalU++
		totalW++
	}
	b, err := graph.NewBipartite(nu, nw, pairs)
	if err != nil {
		panic(err) // pairs are in range by construction
	}
	return b
}

// ConnectedBipartiteScaleFree is BipartiteScaleFree followed by a stitching
// pass that connects every component to the largest one with a single extra
// edge, yielding a connected bipartite factor (the shape Assumption 1
// requires of factor B).
func ConnectedBipartiteScaleFree(nu, nw, targetEdges int, seed int64) *graph.Bipartite {
	b := BipartiteScaleFree(nu, nw, targetEdges, seed)
	label, count := b.ConnectedComponents()
	if count == 1 {
		return b
	}
	// Representative U- and W-side vertices per component.
	repU := make([]int, count)
	repW := make([]int, count)
	for i := range repU {
		repU[i], repW[i] = -1, -1
	}
	size := make([]int, count)
	for v, c := range label {
		size[c]++
		if b.Part.Color[v] == graph.SideU && repU[c] == -1 {
			repU[c] = v
		}
		if b.Part.Color[v] == graph.SideW && repW[c] == -1 {
			repW[c] = v
		}
	}
	largest := 0
	for c, s := range size {
		if s > size[largest] {
			largest = c
		}
	}
	pairs := make([][2]int, 0, b.NumEdges()+count)
	for _, e := range b.Edges() {
		u, w := e.U, e.V
		if b.Part.Color[u] == graph.SideW {
			u, w = w, u
		}
		pairs = append(pairs, [2]int{u, w - b.NU()})
	}
	for c := 0; c < count; c++ {
		if c == largest {
			continue
		}
		// Connect a U vertex of c to a W vertex of the largest component,
		// or vice versa; at least one side of each component is non-empty.
		switch {
		case repU[c] != -1 && repW[largest] != -1:
			pairs = append(pairs, [2]int{repU[c], repW[largest] - b.NU()})
		case repW[c] != -1 && repU[largest] != -1:
			pairs = append(pairs, [2]int{repU[largest], repW[c] - b.NU()})
		}
	}
	nb, err := graph.NewBipartite(b.NU(), b.NW(), pairs)
	if err != nil {
		panic(err)
	}
	return nb
}
