// Package gen constructs the small factor graphs that feed the Kronecker
// generator: deterministic families (paths, cycles, stars, bicliques,
// crowns, grids, trees), seeded scale-free factors with heavy-tail degree
// distributions, and UnicodeLike, the synthetic stand-in for the Konect
// `unicode` dataset used in the paper's §IV experiment.
package gen

import (
	"fmt"

	"kronbip/internal/graph"
)

// Path returns the path graph P_n (bipartite, connected for n >= 1).
func Path(n int) *graph.Graph {
	edges := make([]graph.Edge, 0, n-1)
	for i := 0; i+1 < n; i++ {
		edges = append(edges, graph.Edge{U: i, V: i + 1})
	}
	return graph.MustNew(n, edges)
}

// Cycle returns the cycle graph C_n; bipartite iff n is even.  n >= 3.
func Cycle(n int) *graph.Graph {
	if n < 3 {
		panic(fmt.Sprintf("gen: Cycle(%d): need n >= 3", n))
	}
	edges := make([]graph.Edge, 0, n)
	for i := 0; i < n; i++ {
		edges = append(edges, graph.Edge{U: i, V: (i + 1) % n})
	}
	return graph.MustNew(n, edges)
}

// Star returns the star K_{1,n-1} with center 0 (bipartite, connected).
func Star(n int) *graph.Graph {
	edges := make([]graph.Edge, 0, n-1)
	for i := 1; i < n; i++ {
		edges = append(edges, graph.Edge{U: 0, V: i})
	}
	return graph.MustNew(n, edges)
}

// Complete returns the complete graph K_n (non-bipartite for n >= 3).
func Complete(n int) *graph.Graph {
	var edges []graph.Edge
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			edges = append(edges, graph.Edge{U: i, V: j})
		}
	}
	return graph.MustNew(n, edges)
}

// CompleteBipartite returns the biclique K_{nu,nw} with U = [0,nu).
func CompleteBipartite(nu, nw int) *graph.Bipartite {
	pairs := make([][2]int, 0, nu*nw)
	for u := 0; u < nu; u++ {
		for w := 0; w < nw; w++ {
			pairs = append(pairs, [2]int{u, w})
		}
	}
	b, err := graph.NewBipartite(nu, nw, pairs)
	if err != nil {
		panic(err)
	}
	return b
}

// Crown returns the crown graph S_n^0: K_{n,n} minus a perfect matching
// (bipartite, connected for n >= 3, 4-cycle rich).
func Crown(n int) *graph.Bipartite {
	var pairs [][2]int
	for u := 0; u < n; u++ {
		for w := 0; w < n; w++ {
			if u != w {
				pairs = append(pairs, [2]int{u, w})
			}
		}
	}
	b, err := graph.NewBipartite(n, n, pairs)
	if err != nil {
		panic(err)
	}
	return b
}

// Grid returns the r-by-c grid graph (bipartite, connected).
func Grid(r, c int) *graph.Graph {
	var edges []graph.Edge
	id := func(i, j int) int { return i*c + j }
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			if j+1 < c {
				edges = append(edges, graph.Edge{U: id(i, j), V: id(i, j+1)})
			}
			if i+1 < r {
				edges = append(edges, graph.Edge{U: id(i, j), V: id(i+1, j)})
			}
		}
	}
	return graph.MustNew(r*c, edges)
}

// BinaryTree returns the complete binary tree with the given number of
// levels (bipartite, connected, 4-cycle free).
func BinaryTree(levels int) *graph.Graph {
	n := (1 << levels) - 1
	var edges []graph.Edge
	for v := 1; v < n; v++ {
		edges = append(edges, graph.Edge{U: (v - 1) / 2, V: v})
	}
	return graph.MustNew(n, edges)
}

// Petersen returns the Petersen graph (non-bipartite, connected, girth 5 —
// triangle- and 4-cycle-free, a useful Thm 3 "A" factor).
func Petersen() *graph.Graph {
	var edges []graph.Edge
	for i := 0; i < 5; i++ {
		edges = append(edges,
			graph.Edge{U: i, V: (i + 1) % 5},     // outer cycle
			graph.Edge{U: i, V: i + 5},           // spokes
			graph.Edge{U: i + 5, V: (i+2)%5 + 5}, // inner pentagram
		)
	}
	return graph.MustNew(10, edges)
}

// Lollipop returns a cycle C_c with a path of p extra vertices attached at
// vertex 0.  With odd c it is a small connected non-bipartite factor.
func Lollipop(c, p int) *graph.Graph {
	g := make([]graph.Edge, 0, c+p)
	for i := 0; i < c; i++ {
		g = append(g, graph.Edge{U: i, V: (i + 1) % c})
	}
	prev := 0
	for i := 0; i < p; i++ {
		g = append(g, graph.Edge{U: prev, V: c + i})
		prev = c + i
	}
	return graph.MustNew(c+p, g)
}

// DisjointUnion returns the disjoint union of two graphs, with the second
// graph's vertices shifted by g1.N().
func DisjointUnion(g1, g2 *graph.Graph) *graph.Graph {
	n1 := g1.N()
	edges := g1.Edges()
	for _, e := range g2.Edges() {
		edges = append(edges, graph.Edge{U: e.U + n1, V: e.V + n1})
	}
	return graph.MustNew(n1+g2.N(), edges)
}

// DoubleStar returns two stars of sizes a and b joined by an edge between
// their centers (bipartite, connected, 4-cycle free).
func DoubleStar(a, b int) *graph.Graph {
	var edges []graph.Edge
	for i := 1; i <= a; i++ {
		edges = append(edges, graph.Edge{U: 0, V: 1 + i})
	}
	for i := 1; i <= b; i++ {
		edges = append(edges, graph.Edge{U: 1, V: 1 + a + i})
	}
	edges = append(edges, graph.Edge{U: 0, V: 1})
	return graph.MustNew(2+a+b, edges)
}

// Hypercube returns the d-dimensional hypercube graph Q_d (bipartite,
// connected, vertex-transitive, 4-cycle rich).
func Hypercube(d int) *graph.Graph {
	n := 1 << d
	var edges []graph.Edge
	for v := 0; v < n; v++ {
		for bit := 0; bit < d; bit++ {
			w := v ^ (1 << bit)
			if v < w {
				edges = append(edges, graph.Edge{U: v, V: w})
			}
		}
	}
	return graph.MustNew(n, edges)
}
