package biclique

import (
	"math/rand"
	"testing"

	"kronbip/internal/gen"
	"kronbip/internal/graph"
)

func TestEnumerateBicliqueItself(t *testing.T) {
	b := gen.CompleteBipartite(3, 4)
	all, err := Enumerate(b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 1 {
		t.Fatalf("K_{3,4} has %d maximal bicliques, want 1: %v", len(all), all)
	}
	if all[0].Edges() != 12 {
		t.Fatalf("maximal biclique has %d edges, want 12", all[0].Edges())
	}
	if !Verify(b, all[0]) {
		t.Fatal("reported biclique fails verification")
	}
}

func TestEnumerateCrown(t *testing.T) {
	// Crown(3) ≅ C6: maximal bicliques are the paths P3 (one vertex on one
	// side, its two neighbors) and the single edges are not maximal.
	b := gen.Crown(3)
	all, err := Enumerate(b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, bi := range all {
		if !Verify(b, bi) {
			t.Fatalf("invalid biclique %v", bi)
		}
		if bi.Edges() != 2 {
			t.Fatalf("C6 maximal biclique with %d edges, want 2 (a path)", bi.Edges())
		}
	}
	// C6 has 6 maximal P3s: one centered at each vertex.
	if len(all) != 6 {
		t.Fatalf("C6 has %d maximal bicliques, want 6", len(all))
	}
}

func TestMaximumPlantedRecovery(t *testing.T) {
	// Plant a K_{4,5} inside a sparse random bipartite background; the
	// maximum biclique must recover it exactly.
	rng := rand.New(rand.NewSource(8))
	nu, nw := 20, 22
	var pairs [][2]int
	for u := 0; u < 4; u++ {
		for w := 0; w < 5; w++ {
			pairs = append(pairs, [2]int{u, w})
		}
	}
	for u := 0; u < nu; u++ {
		for w := 0; w < nw; w++ {
			if (u >= 4 || w >= 5) && rng.Float64() < 0.08 {
				pairs = append(pairs, [2]int{u, w})
			}
		}
	}
	b, err := graph.NewBipartite(nu, nw, pairs)
	if err != nil {
		t.Fatal(err)
	}
	best, err := Maximum(b, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if best.Edges() < 20 {
		t.Fatalf("maximum biclique has %d edges; planted K_{4,5} (20) not found", best.Edges())
	}
	if !Verify(b, best) {
		t.Fatal("maximum biclique fails verification")
	}
	// The planted block must be inside the best U side (its vertices all
	// see W{0..4}).
	inBest := map[int]bool{}
	for _, u := range best.U {
		inBest[u] = true
	}
	for u := 0; u < 4; u++ {
		if !inBest[u] {
			t.Fatalf("planted U vertex %d missing from maximum biclique %v", u, best)
		}
	}
}

func TestEnumerateMinimaAndEmpty(t *testing.T) {
	b := gen.CompleteBipartite(2, 3)
	all, err := Enumerate(b, Options{MinU: 3, MinW: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 0 {
		t.Fatal("MinU filter ignored")
	}
	if _, err := Maximum(b, 3, 3); err == nil {
		t.Fatal("Maximum found an impossible biclique")
	}
	// Star: the single maximal biclique is the whole star.
	star, _ := graph.NewBipartite(1, 4, [][2]int{{0, 0}, {0, 1}, {0, 2}, {0, 3}})
	all, err = Enumerate(star, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 1 || all[0].Edges() != 4 {
		t.Fatalf("star bicliques = %v", all)
	}
}

func TestEnumerateBudget(t *testing.T) {
	// A graph engineered to have many closed sets trips the budget.
	rng := rand.New(rand.NewSource(3))
	var pairs [][2]int
	for u := 0; u < 14; u++ {
		for w := 0; w < 14; w++ {
			if rng.Float64() < 0.5 {
				pairs = append(pairs, [2]int{u, w})
			}
		}
	}
	b, _ := graph.NewBipartite(14, 14, pairs)
	if _, err := Enumerate(b, Options{MaxResults: 5}); err == nil {
		t.Fatal("budget not enforced")
	}
}

// TestAllMaximalAreClosed property-checks the Galois condition on random
// graphs: for every reported biclique, U is exactly the common
// neighborhood of W and vice versa (so nothing can be added to either side).
func TestAllMaximalAreClosed(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 20; trial++ {
		nu, nw := 4+rng.Intn(4), 4+rng.Intn(4)
		var pairs [][2]int
		for u := 0; u < nu; u++ {
			for w := 0; w < nw; w++ {
				if rng.Float64() < 0.45 {
					pairs = append(pairs, [2]int{u, w})
				}
			}
		}
		b, err := graph.NewBipartite(nu, nw, pairs)
		if err != nil {
			t.Fatal(err)
		}
		all, err := Enumerate(b, Options{MaxResults: 100000})
		if err != nil {
			t.Fatal(err)
		}
		for _, bi := range all {
			if !Verify(b, bi) {
				t.Fatalf("trial %d: invalid biclique %v", trial, bi)
			}
			if !equalInts(commonNeighbors(b, bi.U), bi.W) {
				t.Fatalf("trial %d: W side not closed for %v", trial, bi)
			}
			if !equalInts(commonNeighbors(b, bi.W), bi.U) {
				t.Fatalf("trial %d: U side not closed for %v", trial, bi)
			}
		}
	}
}
