package grb

import (
	"context"
	"fmt"
	"sort"

	"kronbip/internal/exec"
	"kronbip/internal/obs"
	"kronbip/internal/obs/timeline"
)

// kernelPollStride bounds how many output rows a kernel worker may compute
// after a cancellation before it notices and aborts.
const kernelPollStride = 256

// Kernel metrics.  Flop counts are derived from the sparsity structure
// outside the inner loops (one O(nnz) pass per call while enabled), so
// the Gustavson hot loops carry no instrumentation at all.
var (
	mMxMFlops  = obs.Default.Counter("grb.mxm.flops")
	mMxVFlops  = obs.Default.Counter("grb.mxv.flops")
	mKronNNZ   = obs.Default.Counter("grb.kron.entries")
	mMxMCalls  = obs.Default.Counter("grb.mxm.calls")
	mMxVCalls  = obs.Default.Counter("grb.mxv.calls")
	mKronCalls = obs.Default.Counter("grb.kron.calls")
)

// mxmFlops counts the multiply-add pairs of C = A·B: for every stored
// A(i,k), one per stored entry of B's row k.
func mxmFlops[T Number](a, b *Matrix[T]) int64 {
	var flops int64
	for _, col := range a.colIdx {
		flops += int64(b.rowPtr[col+1] - b.rowPtr[col])
	}
	return flops
}

// MxM computes C = A·B over the conventional (+,*) semiring using
// Gustavson's row-wise algorithm with a dense accumulator.
func MxM[T Number](a, b *Matrix[T]) (*Matrix[T], error) {
	return MxMSemiring(PlusTimes[T](), a, b)
}

// MxMSemiring computes C = A·B over an arbitrary semiring.  The additive
// identity plays the role of the implicit zero: accumulated entries equal to
// it are still stored (value-based pruning is a separate concern; see Prune).
func MxMSemiring[T Number](sr Semiring[T], a, b *Matrix[T]) (*Matrix[T], error) {
	if a.nc != b.nr {
		return nil, fmt.Errorf("grb: MxM dimension mismatch: %dx%d times %dx%d", a.nr, a.nc, b.nr, b.nc)
	}
	rowPtr := make([]int, a.nr+1)
	var colIdx []int
	var val []T
	acc := make([]T, b.nc)
	mark := make([]int, b.nc) // mark[j] == i+1 means column j touched for row i
	touched := make([]int, 0, 64)
	for i := 0; i < a.nr; i++ {
		touched = touched[:0]
		for ka := a.rowPtr[i]; ka < a.rowPtr[i+1]; ka++ {
			col := a.colIdx[ka]
			av := a.val[ka]
			for kb := b.rowPtr[col]; kb < b.rowPtr[col+1]; kb++ {
				j := b.colIdx[kb]
				p := sr.Mul(av, b.val[kb])
				if mark[j] != i+1 {
					mark[j] = i + 1
					acc[j] = sr.Add.Op(sr.Add.Identity, p)
					touched = append(touched, j)
				} else {
					acc[j] = sr.Add.Op(acc[j], p)
				}
			}
		}
		sortInts(touched)
		for _, j := range touched {
			colIdx = append(colIdx, j)
			val = append(val, acc[j])
		}
		rowPtr[i+1] = len(colIdx)
	}
	return &Matrix[T]{nr: a.nr, nc: b.nc, rowPtr: rowPtr, colIdx: colIdx, val: val}, nil
}

// MxMParallel computes C = A·B over (+,*) with rows partitioned across
// workers.  It runs a symbolic pass to size each stripe, then a numeric pass
// that writes rows directly into their final positions; no per-worker
// buffers are stitched afterwards.  workers <= 0 selects GOMAXPROCS.
func MxMParallel[T Number](a, b *Matrix[T], workers int) (*Matrix[T], error) {
	return MxMParallelContext(context.Background(), a, b, workers)
}

// MxMParallelContext is MxMParallel on the shared exec engine: both the
// symbolic and numeric passes run as cancellable row-stripe workers with
// pooled marker scratch, aborting with ctx.Err() within kernelPollStride
// rows of a cancellation.
func MxMParallelContext[T Number](ctx context.Context, a, b *Matrix[T], workers int) (*Matrix[T], error) {
	if a.nc != b.nr {
		return nil, fmt.Errorf("grb: MxM dimension mismatch: %dx%d times %dx%d", a.nr, a.nc, b.nr, b.nc)
	}
	if obs.Enabled() {
		var done func()
		ctx, done = obs.Span(ctx, "grb.mxm")
		defer done()
		mMxMCalls.Inc()
		mMxMFlops.Add(mxmFlops(a, b))
	}
	if timeline.Enabled() {
		// Kernel events are duration-only (always OK): errors surface on
		// the caller's shard/rank event, not per kernel call.
		defer timeline.Begin(timeline.CatKernel, "grb.mxm", 0)(nil)
	}
	if exec.Workers(workers, a.nr) <= 1 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return MxM(a, b)
	}

	// Symbolic pass: per-row output nnz.
	rowNNZ := make([]int, a.nr)
	err := exec.Ranges(ctx, a.nr, workers, func(ctx context.Context, _, lo, hi int) error {
		poll := exec.NewPoller(ctx, kernelPollStride)
		mark := exec.GetInts(b.nc)
		defer exec.PutInts(mark)
		for i := lo; i < hi; i++ {
			if poll.Cancelled() {
				return poll.Err()
			}
			cnt := 0
			for ka := a.rowPtr[i]; ka < a.rowPtr[i+1]; ka++ {
				col := a.colIdx[ka]
				for kb := b.rowPtr[col]; kb < b.rowPtr[col+1]; kb++ {
					j := b.colIdx[kb]
					if mark[j] != i+1 {
						mark[j] = i + 1
						cnt++
					}
				}
			}
			rowNNZ[i] = cnt
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	rowPtr := make([]int, a.nr+1)
	for i, n := range rowNNZ {
		rowPtr[i+1] = rowPtr[i] + n
	}
	nnz := rowPtr[a.nr]
	colIdx := make([]int, nnz)
	val := make([]T, nnz)

	// Numeric pass.
	err = exec.Ranges(ctx, a.nr, workers, func(ctx context.Context, _, lo, hi int) error {
		poll := exec.NewPoller(ctx, kernelPollStride)
		acc := make([]T, b.nc)
		mark := exec.GetInts(b.nc)
		defer exec.PutInts(mark)
		touched := make([]int, 0, 64)
		for i := lo; i < hi; i++ {
			if poll.Cancelled() {
				return poll.Err()
			}
			touched = touched[:0]
			for ka := a.rowPtr[i]; ka < a.rowPtr[i+1]; ka++ {
				col := a.colIdx[ka]
				av := a.val[ka]
				for kb := b.rowPtr[col]; kb < b.rowPtr[col+1]; kb++ {
					j := b.colIdx[kb]
					p := av * b.val[kb]
					if mark[j] != i+1 {
						mark[j] = i + 1
						acc[j] = p
						touched = append(touched, j)
					} else {
						acc[j] += p
					}
				}
			}
			sortInts(touched)
			base := rowPtr[i]
			for t, j := range touched {
				colIdx[base+t] = j
				val[base+t] = acc[j]
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &Matrix[T]{nr: a.nr, nc: b.nc, rowPtr: rowPtr, colIdx: colIdx, val: val}, nil
}

// MxVParallel computes y = A·x over (+,*) with rows partitioned across
// workers.  workers <= 0 selects GOMAXPROCS.
func MxVParallel[T Number](a *Matrix[T], x []T, workers int) ([]T, error) {
	return MxVParallelContext(context.Background(), a, x, workers)
}

// MxVParallelContext is MxVParallel on the shared exec engine.
func MxVParallelContext[T Number](ctx context.Context, a *Matrix[T], x []T, workers int) ([]T, error) {
	if len(x) != a.nc {
		return nil, fmt.Errorf("grb: MxV dimension mismatch: matrix %dx%d, vector %d", a.nr, a.nc, len(x))
	}
	if obs.Enabled() {
		var done func()
		ctx, done = obs.Span(ctx, "grb.mxv")
		defer done()
		mMxVCalls.Inc()
		mMxVFlops.Add(int64(a.NNZ()))
	}
	if timeline.Enabled() {
		defer timeline.Begin(timeline.CatKernel, "grb.mxv", 0)(nil)
	}
	y := make([]T, a.nr)
	if a.nr == 0 {
		return y, ctx.Err()
	}
	err := exec.Ranges(ctx, a.nr, workers, func(ctx context.Context, _, lo, hi int) error {
		poll := exec.NewPoller(ctx, kernelPollStride)
		for i := lo; i < hi; i++ {
			if poll.Cancelled() {
				return poll.Err()
			}
			var acc T
			for k := a.rowPtr[i]; k < a.rowPtr[i+1]; k++ {
				acc += a.val[k] * x[a.colIdx[k]]
			}
			y[i] = acc
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return y, nil
}

// sortInts is an insertion sort for the short "touched columns" lists that
// arise in Gustavson accumulation; it beats sort.Ints below ~100 elements
// and avoids the interface overhead in the hot loop.
func sortInts(s []int) {
	if len(s) > 64 {
		sort.Ints(s)
		return
	}
	for i := 1; i < len(s); i++ {
		v := s[i]
		j := i - 1
		for j >= 0 && s[j] > v {
			s[j+1] = s[j]
			j--
		}
		s[j+1] = v
	}
}
