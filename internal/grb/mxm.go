package grb

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
)

// MxM computes C = A·B over the conventional (+,*) semiring using
// Gustavson's row-wise algorithm with a dense accumulator.
func MxM[T Number](a, b *Matrix[T]) (*Matrix[T], error) {
	return MxMSemiring(PlusTimes[T](), a, b)
}

// MxMSemiring computes C = A·B over an arbitrary semiring.  The additive
// identity plays the role of the implicit zero: accumulated entries equal to
// it are still stored (value-based pruning is a separate concern; see Prune).
func MxMSemiring[T Number](sr Semiring[T], a, b *Matrix[T]) (*Matrix[T], error) {
	if a.nc != b.nr {
		return nil, fmt.Errorf("grb: MxM dimension mismatch: %dx%d times %dx%d", a.nr, a.nc, b.nr, b.nc)
	}
	rowPtr := make([]int, a.nr+1)
	var colIdx []int
	var val []T
	acc := make([]T, b.nc)
	mark := make([]int, b.nc) // mark[j] == i+1 means column j touched for row i
	touched := make([]int, 0, 64)
	for i := 0; i < a.nr; i++ {
		touched = touched[:0]
		for ka := a.rowPtr[i]; ka < a.rowPtr[i+1]; ka++ {
			col := a.colIdx[ka]
			av := a.val[ka]
			for kb := b.rowPtr[col]; kb < b.rowPtr[col+1]; kb++ {
				j := b.colIdx[kb]
				p := sr.Mul(av, b.val[kb])
				if mark[j] != i+1 {
					mark[j] = i + 1
					acc[j] = sr.Add.Op(sr.Add.Identity, p)
					touched = append(touched, j)
				} else {
					acc[j] = sr.Add.Op(acc[j], p)
				}
			}
		}
		sortInts(touched)
		for _, j := range touched {
			colIdx = append(colIdx, j)
			val = append(val, acc[j])
		}
		rowPtr[i+1] = len(colIdx)
	}
	return &Matrix[T]{nr: a.nr, nc: b.nc, rowPtr: rowPtr, colIdx: colIdx, val: val}, nil
}

// MxMParallel computes C = A·B over (+,*) with rows partitioned across
// workers.  It runs a symbolic pass to size each stripe, then a numeric pass
// that writes rows directly into their final positions; no per-worker
// buffers are stitched afterwards.  workers <= 0 selects GOMAXPROCS.
func MxMParallel[T Number](a, b *Matrix[T], workers int) (*Matrix[T], error) {
	if a.nc != b.nr {
		return nil, fmt.Errorf("grb: MxM dimension mismatch: %dx%d times %dx%d", a.nr, a.nc, b.nr, b.nc)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > a.nr {
		workers = a.nr
	}
	if workers <= 1 {
		return MxM(a, b)
	}

	// Symbolic pass: per-row output nnz.
	rowNNZ := make([]int, a.nr)
	parallelRows(a.nr, workers, func(w, lo, hi int) {
		mark := make([]int, b.nc)
		for i := lo; i < hi; i++ {
			cnt := 0
			for ka := a.rowPtr[i]; ka < a.rowPtr[i+1]; ka++ {
				col := a.colIdx[ka]
				for kb := b.rowPtr[col]; kb < b.rowPtr[col+1]; kb++ {
					j := b.colIdx[kb]
					if mark[j] != i+1 {
						mark[j] = i + 1
						cnt++
					}
				}
			}
			rowNNZ[i] = cnt
		}
	})

	rowPtr := make([]int, a.nr+1)
	for i, n := range rowNNZ {
		rowPtr[i+1] = rowPtr[i] + n
	}
	nnz := rowPtr[a.nr]
	colIdx := make([]int, nnz)
	val := make([]T, nnz)

	// Numeric pass.
	parallelRows(a.nr, workers, func(w, lo, hi int) {
		acc := make([]T, b.nc)
		mark := make([]int, b.nc)
		touched := make([]int, 0, 64)
		for i := lo; i < hi; i++ {
			touched = touched[:0]
			for ka := a.rowPtr[i]; ka < a.rowPtr[i+1]; ka++ {
				col := a.colIdx[ka]
				av := a.val[ka]
				for kb := b.rowPtr[col]; kb < b.rowPtr[col+1]; kb++ {
					j := b.colIdx[kb]
					p := av * b.val[kb]
					if mark[j] != i+1 {
						mark[j] = i + 1
						acc[j] = p
						touched = append(touched, j)
					} else {
						acc[j] += p
					}
				}
			}
			sortInts(touched)
			base := rowPtr[i]
			for t, j := range touched {
				colIdx[base+t] = j
				val[base+t] = acc[j]
			}
		}
	})
	return &Matrix[T]{nr: a.nr, nc: b.nc, rowPtr: rowPtr, colIdx: colIdx, val: val}, nil
}

// MxVParallel computes y = A·x over (+,*) with rows partitioned across
// workers.  workers <= 0 selects GOMAXPROCS.
func MxVParallel[T Number](a *Matrix[T], x []T, workers int) ([]T, error) {
	if len(x) != a.nc {
		return nil, fmt.Errorf("grb: MxV dimension mismatch: matrix %dx%d, vector %d", a.nr, a.nc, len(x))
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > a.nr {
		workers = a.nr
	}
	y := make([]T, a.nr)
	parallelRows(a.nr, workers, func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			var acc T
			for k := a.rowPtr[i]; k < a.rowPtr[i+1]; k++ {
				acc += a.val[k] * x[a.colIdx[k]]
			}
			y[i] = acc
		}
	})
	return y, nil
}

// parallelRows splits [0,n) into `workers` contiguous stripes and runs fn on
// each in its own goroutine, blocking until all complete.
func parallelRows(n, workers int, fn func(worker, lo, hi int)) {
	if workers <= 1 || n <= 1 {
		fn(0, 0, n)
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * n / workers
		hi := (w + 1) * n / workers
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			fn(w, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
}

// sortInts is an insertion sort for the short "touched columns" lists that
// arise in Gustavson accumulation; it beats sort.Ints below ~100 elements
// and avoids the interface overhead in the hot loop.
func sortInts(s []int) {
	if len(s) > 64 {
		sort.Ints(s)
		return
	}
	for i := 1; i < len(s); i++ {
		v := s[i]
		j := i - 1
		for j >= 0 && s[j] > v {
			s[j+1] = s[j]
			j--
		}
		s[j+1] = v
	}
}
