package grb

import "fmt"

// Lazy vector expressions.  The GraphBLAS C API's non-blocking execution
// mode lets an implementation defer evaluation, fuse operations and skip
// temporaries; the paper leans on this ("a relatively simple GraphBLAS
// code could be used to sample 4-cycle counts at edges and vertices
// without materializing the full Kronecker products").  Expr reproduces
// that behaviour for the vector algebra the ground-truth formulas use:
//
//   - At(i) evaluates a single slot of the expression tree in O(depth),
//     never allocating the full vector — the sampling path;
//   - Sum() reduces algebraically, exploiting Σ(x ⊗ y) = Σx·Σy so that
//     global reductions of Kronecker expressions cost O(|x|+|y|) instead
//     of O(|x|·|y|) — the sublinear-global-count path;
//   - Materialize() forces the whole vector when a caller really wants it.
type Expr[T Number] interface {
	// Len returns the logical vector length.
	Len() int
	// At evaluates slot i without materializing the expression.
	At(i int) T
	// Sum reduces the expression, factorizing across Kronecker nodes.
	Sum() T
}

// MaterializeExpr forces an expression into a dense vector.
func MaterializeExpr[T Number](e Expr[T]) []T {
	out := make([]T, e.Len())
	for i := range out {
		out[i] = e.At(i)
	}
	return out
}

type leafExpr[T Number] struct{ v []T }

// LeafExpr wraps a dense vector as an expression leaf (not copied).
func LeafExpr[T Number](v []T) Expr[T] { return leafExpr[T]{v} }

func (l leafExpr[T]) Len() int   { return len(l.v) }
func (l leafExpr[T]) At(i int) T { return l.v[i] }
func (l leafExpr[T]) Sum() T     { return SumVec(l.v) }

type kronExpr[T Number] struct{ x, y Expr[T] }

// KronExpr is the lazy Kronecker product of two vector expressions:
// (x ⊗ y)[i·len(y)+k] = x[i]·y[k].
func KronExpr[T Number](x, y Expr[T]) Expr[T] { return kronExpr[T]{x, y} }

func (e kronExpr[T]) Len() int { return e.x.Len() * e.y.Len() }
func (e kronExpr[T]) At(i int) T {
	ny := e.y.Len()
	return e.x.At(i/ny) * e.y.At(i%ny)
}
func (e kronExpr[T]) Sum() T { return e.x.Sum() * e.y.Sum() }

type binExpr[T Number] struct {
	a, b Expr[T]
	op   func(T, T) T
	// sumRule, when non-nil, reduces from the operand sums (valid for
	// linear ops); otherwise Sum falls back to element-wise evaluation.
	sumRule func(sa, sb T) T
}

func newBin[T Number](a, b Expr[T], op func(T, T) T, sumRule func(T, T) T) Expr[T] {
	if a.Len() != b.Len() {
		panic(fmt.Sprintf("grb: expression length mismatch %d vs %d", a.Len(), b.Len()))
	}
	return binExpr[T]{a, b, op, sumRule}
}

// AddExpr is the lazy element-wise sum.
func AddExpr[T Number](a, b Expr[T]) Expr[T] {
	return newBin(a, b, func(x, y T) T { return x + y }, func(sa, sb T) T { return sa + sb })
}

// SubExpr is the lazy element-wise difference.
func SubExpr[T Number](a, b Expr[T]) Expr[T] {
	return newBin(a, b, func(x, y T) T { return x - y }, func(sa, sb T) T { return sa - sb })
}

// HadamardExpr is the lazy element-wise product.  Its Sum has no algebraic
// shortcut and evaluates element-wise.
func HadamardExpr[T Number](a, b Expr[T]) Expr[T] {
	return newBin(a, b, func(x, y T) T { return x * y }, nil)
}

func (e binExpr[T]) Len() int   { return e.a.Len() }
func (e binExpr[T]) At(i int) T { return e.op(e.a.At(i), e.b.At(i)) }
func (e binExpr[T]) Sum() T {
	if e.sumRule != nil {
		return e.sumRule(e.a.Sum(), e.b.Sum())
	}
	var s T
	for i, n := 0, e.Len(); i < n; i++ {
		s += e.At(i)
	}
	return s
}

type scaleExpr[T Number] struct {
	c T
	a Expr[T]
}

// ScaleExpr is the lazy scalar multiple c·a.
func ScaleExpr[T Number](c T, a Expr[T]) Expr[T] { return scaleExpr[T]{c, a} }

func (e scaleExpr[T]) Len() int   { return e.a.Len() }
func (e scaleExpr[T]) At(i int) T { return e.c * e.a.At(i) }
func (e scaleExpr[T]) Sum() T     { return e.c * e.a.Sum() }

type shiftExpr[T Number] struct {
	c T
	a Expr[T]
}

// ShiftExpr is the lazy shift a + c·1.
func ShiftExpr[T Number](a Expr[T], c T) Expr[T] { return shiftExpr[T]{c, a} }

func (e shiftExpr[T]) Len() int   { return e.a.Len() }
func (e shiftExpr[T]) At(i int) T { return e.a.At(i) + e.c }
func (e shiftExpr[T]) Sum() T     { return e.a.Sum() + e.c*T(e.a.Len()) }
