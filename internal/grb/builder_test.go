package grb

import (
	"math/rand"
	"testing"
)

func TestBuilderDuplicatesSum(t *testing.T) {
	b := NewBuilder[int64](2, 2)
	b.Add(0, 1, 3)
	b.Add(0, 1, 4)
	b.Add(1, 0, 1)
	m := b.MustBuild()
	if m.At(0, 1) != 7 {
		t.Fatalf("duplicate sum: got %d, want 7", m.At(0, 1))
	}
	if m.NNZ() != 2 {
		t.Fatalf("nnz = %d, want 2", m.NNZ())
	}
}

func TestBuilderOutOfRange(t *testing.T) {
	cases := []struct{ i, j int }{{-1, 0}, {0, -1}, {2, 0}, {0, 2}}
	for _, tc := range cases {
		b := NewBuilder[int64](2, 2)
		b.Add(tc.i, tc.j, 1)
		if _, err := b.Build(); err == nil {
			t.Fatalf("Build accepted out-of-range entry (%d,%d)", tc.i, tc.j)
		}
	}
}

func TestBuilderAddSym(t *testing.T) {
	b := NewBuilder[int64](3, 3)
	b.AddSym(0, 1, 1)
	b.AddSym(2, 2, 5)
	m := b.MustBuild()
	if m.At(0, 1) != 1 || m.At(1, 0) != 1 {
		t.Fatal("AddSym did not mirror off-diagonal entry")
	}
	if m.At(2, 2) != 5 {
		t.Fatalf("AddSym doubled diagonal entry: got %d, want 5", m.At(2, 2))
	}
	if !IsSymmetric(m) {
		t.Fatal("AddSym result not symmetric")
	}
}

func TestBuilderEmpty(t *testing.T) {
	m := NewBuilder[int64](4, 5).MustBuild()
	if m.NRows() != 4 || m.NCols() != 5 || m.NNZ() != 0 {
		t.Fatal("empty build has wrong shape")
	}
}

func TestBuilderReusable(t *testing.T) {
	b := NewBuilder[int64](2, 2)
	b.Add(0, 0, 1)
	m1 := b.MustBuild()
	b.Add(1, 1, 2)
	m2 := b.MustBuild()
	if m1.NNZ() != 1 {
		t.Fatal("first build changed after reuse")
	}
	if m2.NNZ() != 2 || m2.At(1, 1) != 2 {
		t.Fatal("second build missing accumulated entry")
	}
}

func TestBuilderUnsortedInput(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	// Insert a fixed entry set in random order; result must be canonical.
	type coord struct{ i, j int }
	want := map[coord]int64{}
	var coords []coord
	for i := 0; i < 10; i++ {
		for j := 0; j < 10; j++ {
			if rng.Float64() < 0.3 {
				c := coord{i, j}
				want[c] = int64(rng.Intn(9) + 1)
				coords = append(coords, c)
			}
		}
	}
	rng.Shuffle(len(coords), func(a, b int) { coords[a], coords[b] = coords[b], coords[a] })
	b := NewBuilder[int64](10, 10)
	for _, c := range coords {
		b.Add(c.i, c.j, want[c])
	}
	m := b.MustBuild()
	if m.NNZ() != len(want) {
		t.Fatalf("nnz = %d, want %d", m.NNZ(), len(want))
	}
	m.Iterate(func(i, j int, v int64) bool {
		if want[coord{i, j}] != v {
			t.Fatalf("entry (%d,%d) = %d, want %d", i, j, v, want[coord{i, j}])
		}
		return true
	})
}
