package grb

import (
	"math/rand"
	"testing"
)

func TestMxMAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	for trial := 0; trial < 40; trial++ {
		a := randomMatrix(rng, 6, 7, 0.3)
		b := randomMatrix(rng, 7, 5, 0.3)
		c, err := MxM(a, b)
		if err != nil {
			t.Fatal(err)
		}
		want := denseMul(a.Dense(), b.Dense())
		if !denseEqual(c.Dense(), want) {
			t.Fatalf("trial %d: MxM mismatch\n got %v\nwant %v", trial, c.Dense(), want)
		}
	}
}

func TestMxMDimensionMismatch(t *testing.T) {
	if _, err := MxM(Zero[int64](2, 3), Zero[int64](4, 2)); err == nil {
		t.Fatal("MxM accepted mismatched inner dimensions")
	}
	if _, err := MxMParallel(Zero[int64](2, 3), Zero[int64](4, 2), 2); err == nil {
		t.Fatal("MxMParallel accepted mismatched inner dimensions")
	}
}

func TestMxMIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	a := randomMatrix(rng, 9, 9, 0.3)
	id := Identity[int64](9)
	left, _ := MxM(id, a)
	right, _ := MxM(a, id)
	if !Equal(left, a) || !Equal(right, a) {
		t.Fatal("identity is not neutral under MxM")
	}
}

func TestMxMParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for _, workers := range []int{1, 2, 3, 8, 100} {
		a := randomMatrix(rng, 40, 30, 0.15)
		b := randomMatrix(rng, 30, 50, 0.15)
		serial, err := MxM(a, b)
		if err != nil {
			t.Fatal(err)
		}
		par, err := MxMParallel(a, b, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !Equal(serial, par) {
			t.Fatalf("workers=%d: parallel MxM differs from serial", workers)
		}
	}
}

func TestMxMParallelDefaultWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	a := randomMatrix(rng, 16, 16, 0.2)
	serial, _ := MxM(a, a)
	par, err := MxMParallel(a, a, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(serial, par) {
		t.Fatal("default-worker parallel MxM differs from serial")
	}
}

func TestMxVParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	a := randomMatrix(rng, 64, 48, 0.2)
	x := make([]int64, 48)
	for i := range x {
		x[i] = int64(rng.Intn(10) - 5)
	}
	serial, _ := MxV(a, x)
	for _, workers := range []int{1, 2, 7, 0} {
		par, err := MxVParallel(a, x, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !EqualVec(serial, par) {
			t.Fatalf("workers=%d: parallel MxV differs from serial", workers)
		}
	}
	if _, err := MxVParallel(a, x[:3], 2); err == nil {
		t.Fatal("MxVParallel accepted mismatched vector")
	}
}

func TestMxMSemiringMinPlusAPSPStep(t *testing.T) {
	// Distances on a 4-cycle via (min,+) matrix powers.
	const inf = int64(1) << 60
	b := NewBuilder[int64](4, 4)
	for i := 0; i < 4; i++ {
		b.AddSym(i, (i+1)%4, 1)
		b.Add(i, i, 0) // zero-length self distances keep closure monotone
	}
	w := b.MustBuild()
	d, err := MxMSemiring(MinPlus(inf), w, w)
	if err != nil {
		t.Fatal(err)
	}
	// After one squaring, opposite corners are at distance 2.
	if d.At(0, 2) != 2 || d.At(1, 3) != 2 || d.At(0, 1) != 1 || d.At(0, 0) != 0 {
		t.Fatalf("MinPlus square wrong: %v", d.Dense())
	}
}

func TestMxMAssociativity(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	a := randomMatrix(rng, 5, 6, 0.4)
	b := randomMatrix(rng, 6, 4, 0.4)
	c := randomMatrix(rng, 4, 7, 0.4)
	ab, _ := MxM(a, b)
	abc1, _ := MxM(ab, c)
	bc, _ := MxM(b, c)
	abc2, _ := MxM(a, bc)
	if !Equal(abc1, abc2) {
		t.Fatal("MxM not associative")
	}
}

func TestSortIntsLargeAndSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	for _, n := range []int{0, 1, 2, 10, 64, 65, 500} {
		s := make([]int, n)
		for i := range s {
			s[i] = rng.Intn(1000)
		}
		sortInts(s)
		for i := 1; i < n; i++ {
			if s[i-1] > s[i] {
				t.Fatalf("n=%d: not sorted at %d", n, i)
			}
		}
	}
}
