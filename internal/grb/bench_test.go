package grb

import (
	"math/rand"
	"testing"
)

// Micro-benchmarks of the sparse kernels at factor-like sizes.

func benchMatrix(n int, density float64) *Matrix[int64] {
	rng := rand.New(rand.NewSource(7))
	b := NewBuilder[int64](n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if rng.Float64() < density {
				b.Add(i, j, 1)
			}
		}
	}
	return b.MustBuild()
}

func BenchmarkMxM256(b *testing.B) {
	m := benchMatrix(256, 0.05)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MxM(m, m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMxMParallel256(b *testing.B) {
	m := benchMatrix(256, 0.05)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MxMParallel(m, m, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKron64x64(b *testing.B) {
	m := benchMatrix(64, 0.08)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Kron(m, m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEWiseAdd(b *testing.B) {
	x := benchMatrix(512, 0.03)
	y := benchMatrix(512, 0.03)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Add(x, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHadamard(b *testing.B) {
	x := benchMatrix(512, 0.03)
	y := benchMatrix(512, 0.03)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Hadamard(x, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTranspose(b *testing.B) {
	m := benchMatrix(512, 0.03)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Transpose(m)
	}
}

func BenchmarkMxV(b *testing.B) {
	m := benchMatrix(1024, 0.01)
	x := make([]int64, 1024)
	for i := range x {
		x[i] = int64(i % 7)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MxV(m, x); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMxMMasked(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	sym := randomSymmetric(rng, 256, 0.05)
	sq, err := MxM(sym, sym)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MxMMasked(sq, sym, sym); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKronVec(b *testing.B) {
	x := make([]int64, 1024)
	for i := range x {
		x[i] = int64(i % 5)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = KronVec(x, x)
	}
}

func BenchmarkExprSumFused(b *testing.B) {
	x := make([]int64, 1<<16)
	for i := range x {
		x[i] = int64(i % 5)
	}
	e := KronExpr(LeafExpr(x), LeafExpr(x))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = e.Sum()
	}
}
