package grb

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randVec(rng *rand.Rand, n int) []int64 {
	v := make([]int64, n)
	for i := range v {
		v[i] = int64(rng.Intn(9) - 4)
	}
	return v
}

// randExpr builds a random expression tree and an eagerly computed oracle
// vector side by side.
func randExpr(rng *rand.Rand, depth int) (Expr[int64], []int64) {
	if depth == 0 || rng.Float64() < 0.3 {
		v := randVec(rng, 1+rng.Intn(5))
		return LeafExpr(v), v
	}
	switch rng.Intn(5) {
	case 0:
		a, va := randExpr(rng, depth-1)
		b, vb := randExpr(rng, depth-1)
		// Force equal lengths by regenerating b as a leaf of a's length.
		if len(vb) != len(va) {
			vb = randVec(rng, len(va))
			b = LeafExpr(vb)
		}
		return AddExpr(a, b), AddVec(va, vb)
	case 1:
		a, va := randExpr(rng, depth-1)
		b, vb := randExpr(rng, depth-1)
		if len(vb) != len(va) {
			vb = randVec(rng, len(va))
			b = LeafExpr(vb)
		}
		return SubExpr(a, b), SubVec(va, vb)
	case 2:
		a, va := randExpr(rng, depth-1)
		b, vb := randExpr(rng, depth-1)
		if len(vb) != len(va) {
			vb = randVec(rng, len(va))
			b = LeafExpr(vb)
		}
		return HadamardExpr(a, b), HadamardVec(va, vb)
	case 3:
		a, va := randExpr(rng, depth-1)
		c := int64(rng.Intn(5) - 2)
		return ScaleExpr(c, a), ScaleVec(c, va)
	default:
		a, va := randExpr(rng, depth-1)
		b, vb := randExpr(rng, depth-1)
		return KronExpr(a, b), KronVec(va, vb)
	}
}

func TestExprMatchesEager(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e, want := randExpr(rng, 4)
		if e.Len() != len(want) {
			return false
		}
		got := MaterializeExpr(e)
		if !EqualVec(got, want) {
			return false
		}
		for i := range want {
			if e.At(i) != want[i] {
				return false
			}
		}
		return e.Sum() == SumVec(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestExprShift(t *testing.T) {
	e := ShiftExpr(LeafExpr([]int64{1, 2, 3}), 10)
	if !EqualVec(MaterializeExpr(e), []int64{11, 12, 13}) {
		t.Fatal("ShiftExpr wrong")
	}
	if e.Sum() != 36 {
		t.Fatalf("ShiftExpr Sum = %d, want 36", e.Sum())
	}
}

// TestExprKronSumIsSublinear verifies the fusion rule: summing a Kronecker
// expression never touches the product space.  We build a kron of two
// vectors whose product length would be ~10^12 slots and reduce it
// instantly — the paper's sublinear global-count trick in expression form.
func TestExprKronSumIsSublinear(t *testing.T) {
	big1 := make([]int64, 1<<20)
	big2 := make([]int64, 1<<20)
	for i := range big1 {
		big1[i] = int64(i % 7)
		big2[i] = int64(i % 5)
	}
	e := KronExpr(LeafExpr(big1), LeafExpr(big2))
	want := SumVec(big1) * SumVec(big2)
	if got := e.Sum(); got != want {
		t.Fatalf("kron Sum = %d, want %d", got, want)
	}
	// Point evaluation works at astronomical indices.
	idx := (1<<20)*12345 + 678
	if e.At(idx) != big1[12345]*big2[678] {
		t.Fatal("kron At wrong at large index")
	}
}

// TestExprThm3Shape assembles the Thm. 3 vertex-4-cycle expression
//
//	s_C = ½[ d4A ⊗ d4B − d²A ⊗ d²B − w2A ⊗ w2B + dA ⊗ dB ]
//
// lazily and checks point sampling and the fused global sum against eager
// evaluation.
func TestExprThm3Shape(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n1, n2 := 40, 30
	d4A, d4B := randVec(rng, n1), randVec(rng, n2)
	d2A, d2B := randVec(rng, n1), randVec(rng, n2)
	w2A, w2B := randVec(rng, n1), randVec(rng, n2)
	dA, dB := randVec(rng, n1), randVec(rng, n2)

	expr := AddExpr(
		SubExpr(
			SubExpr(KronExpr(LeafExpr(d4A), LeafExpr(d4B)), KronExpr(LeafExpr(d2A), LeafExpr(d2B))),
			KronExpr(LeafExpr(w2A), LeafExpr(w2B)),
		),
		KronExpr(LeafExpr(dA), LeafExpr(dB)),
	)
	eager := AddVec(
		SubVec(
			SubVec(KronVec(d4A, d4B), KronVec(d2A, d2B)),
			KronVec(w2A, w2B)),
		KronVec(dA, dB))
	for trial := 0; trial < 200; trial++ {
		i := rng.Intn(n1 * n2)
		if expr.At(i) != eager[i] {
			t.Fatalf("expr.At(%d) = %d, eager %d", i, expr.At(i), eager[i])
		}
	}
	if expr.Sum() != SumVec(eager) {
		t.Fatal("fused Sum disagrees with eager sum")
	}
}

func TestExprLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AddExpr did not panic on length mismatch")
		}
	}()
	AddExpr(LeafExpr([]int64{1}), LeafExpr([]int64{1, 2}))
}
