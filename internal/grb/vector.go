package grb

import "fmt"

// Dense-vector helpers.  The per-vertex ground-truth formulas (Thm. 3–4)
// are linear combinations of Kronecker products of small per-factor vectors
// (degree d, two-walk counts w², squares s); these helpers keep that algebra
// readable at the call site.

// Ones returns the length-n all-ones vector (the paper's 1_A).
func Ones[T Number](n int) []T {
	v := make([]T, n)
	for i := range v {
		v[i] = 1
	}
	return v
}

// Fill returns a length-n vector with every slot set to c.
func Fill[T Number](n int, c T) []T {
	v := make([]T, n)
	for i := range v {
		v[i] = c
	}
	return v
}

// AddVec returns x + y element-wise.
func AddVec[T Number](x, y []T) []T {
	mustSameLen("AddVec", len(x), len(y))
	out := make([]T, len(x))
	for i := range x {
		out[i] = x[i] + y[i]
	}
	return out
}

// SubVec returns x - y element-wise.
func SubVec[T Number](x, y []T) []T {
	mustSameLen("SubVec", len(x), len(y))
	out := make([]T, len(x))
	for i := range x {
		out[i] = x[i] - y[i]
	}
	return out
}

// HadamardVec returns x ∘ y element-wise.
func HadamardVec[T Number](x, y []T) []T {
	mustSameLen("HadamardVec", len(x), len(y))
	out := make([]T, len(x))
	for i := range x {
		out[i] = x[i] * y[i]
	}
	return out
}

// ScaleVec returns c·x.
func ScaleVec[T Number](c T, x []T) []T {
	out := make([]T, len(x))
	for i := range x {
		out[i] = c * x[i]
	}
	return out
}

// ShiftVec returns x + c·1.
func ShiftVec[T Number](x []T, c T) []T {
	out := make([]T, len(x))
	for i := range x {
		out[i] = x[i] + c
	}
	return out
}

// SumVec returns the sum of the entries of x.
func SumVec[T Number](x []T) T {
	var s T
	for _, v := range x {
		s += v
	}
	return s
}

// DotVec returns xᵗy.
func DotVec[T Number](x, y []T) T {
	mustSameLen("DotVec", len(x), len(y))
	var s T
	for i := range x {
		s += x[i] * y[i]
	}
	return s
}

// MinVec returns the minimum entry of a non-empty vector.
func MinVec[T Number](x []T) T {
	m := x[0]
	for _, v := range x[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// MaxVec returns the maximum entry of a non-empty vector.
func MaxVec[T Number](x []T) T {
	m := x[0]
	for _, v := range x[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// EqualVec reports element-wise equality.
func EqualVec[T Number](x, y []T) bool {
	if len(x) != len(y) {
		return false
	}
	for i := range x {
		if x[i] != y[i] {
			return false
		}
	}
	return true
}

func mustSameLen(op string, a, b int) {
	if a != b {
		panic(fmt.Sprintf("grb: %s length mismatch %d vs %d", op, a, b))
	}
}
