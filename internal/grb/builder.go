package grb

import (
	"fmt"
	"sort"
)

// Builder accumulates coordinate-format (COO) entries and converts them to a
// CSR Matrix.  Duplicate coordinates are combined with addition, matching
// the GraphBLAS GrB_Matrix_build default of GrB_PLUS.
type Builder[T Number] struct {
	nr, nc int
	ent    []entry[T]
}

type entry[T Number] struct {
	i, j int
	v    T
}

// NewBuilder returns an empty builder for an nr-by-nc matrix.
func NewBuilder[T Number](nr, nc int) *Builder[T] {
	return &Builder[T]{nr: nr, nc: nc}
}

// Add appends one coordinate entry.  Out-of-range coordinates are reported
// at Build time so that callers can batch without per-call error handling.
func (b *Builder[T]) Add(i, j int, v T) {
	b.ent = append(b.ent, entry[T]{i, j, v})
}

// AddSym appends both (i,j) and (j,i); convenient for undirected graphs.
// A diagonal coordinate (i == j) is added only once.
func (b *Builder[T]) AddSym(i, j int, v T) {
	b.Add(i, j, v)
	if i != j {
		b.Add(j, i, v)
	}
}

// Len returns the number of accumulated (pre-deduplication) entries.
func (b *Builder[T]) Len() int { return len(b.ent) }

// Build sorts, range-checks and duplicate-sums the accumulated entries and
// returns the CSR matrix.  The builder may be reused afterwards; it keeps
// its entries.
func (b *Builder[T]) Build() (*Matrix[T], error) {
	for _, e := range b.ent {
		if e.i < 0 || e.i >= b.nr || e.j < 0 || e.j >= b.nc {
			return nil, fmt.Errorf("grb: entry (%d,%d) out of range for %dx%d matrix", e.i, e.j, b.nr, b.nc)
		}
	}
	ent := append([]entry[T](nil), b.ent...)
	sort.Slice(ent, func(x, y int) bool {
		if ent[x].i != ent[y].i {
			return ent[x].i < ent[y].i
		}
		return ent[x].j < ent[y].j
	})
	// Combine duplicates with addition.
	w := 0
	for r := 0; r < len(ent); r++ {
		if w > 0 && ent[w-1].i == ent[r].i && ent[w-1].j == ent[r].j {
			ent[w-1].v += ent[r].v
		} else {
			ent[w] = ent[r]
			w++
		}
	}
	ent = ent[:w]

	rowPtr := make([]int, b.nr+1)
	colIdx := make([]int, len(ent))
	val := make([]T, len(ent))
	for _, e := range ent {
		rowPtr[e.i+1]++
	}
	for i := 0; i < b.nr; i++ {
		rowPtr[i+1] += rowPtr[i]
	}
	for k, e := range ent {
		colIdx[k] = e.j
		val[k] = e.v
	}
	return &Matrix[T]{nr: b.nr, nc: b.nc, rowPtr: rowPtr, colIdx: colIdx, val: val}, nil
}

// MustBuild is Build that panics on error; for use with statically correct
// coordinates (generators, tests).
func (b *Builder[T]) MustBuild() *Matrix[T] {
	m, err := b.Build()
	if err != nil {
		panic(err)
	}
	return m
}
