package grb

import (
	"math/rand"
	"testing"
)

// randomMatrix returns a random nr-by-nc int64 matrix with approximately
// density*nr*nc entries drawn from [1, 5].
func randomMatrix(rng *rand.Rand, nr, nc int, density float64) *Matrix[int64] {
	b := NewBuilder[int64](nr, nc)
	for i := 0; i < nr; i++ {
		for j := 0; j < nc; j++ {
			if rng.Float64() < density {
				b.Add(i, j, int64(rng.Intn(5)+1))
			}
		}
	}
	return b.MustBuild()
}

// randomSymmetric returns a random symmetric loop-free 0/1 matrix.
func randomSymmetric(rng *rand.Rand, n int, density float64) *Matrix[int64] {
	b := NewBuilder[int64](n, n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < density {
				b.AddSym(i, j, 1)
			}
		}
	}
	return b.MustBuild()
}

// denseMul multiplies dense matrices; brute-force oracle for MxM.
func denseMul(a, b [][]int64) [][]int64 {
	nr, inner, nc := len(a), len(b), len(b[0])
	out := make([][]int64, nr)
	for i := range out {
		out[i] = make([]int64, nc)
		for k := 0; k < inner; k++ {
			if a[i][k] == 0 {
				continue
			}
			for j := 0; j < nc; j++ {
				out[i][j] += a[i][k] * b[k][j]
			}
		}
	}
	return out
}

func denseEqual(a, b [][]int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

func TestNewCSRValidation(t *testing.T) {
	cases := []struct {
		name   string
		nr, nc int
		rowPtr []int
		colIdx []int
		val    []int64
		ok     bool
	}{
		{"empty", 0, 0, []int{0}, nil, nil, true},
		{"valid", 2, 2, []int{0, 1, 2}, []int{0, 1}, []int64{1, 1}, true},
		{"negative dim", -1, 2, []int{0}, nil, nil, false},
		{"short rowPtr", 2, 2, []int{0, 1}, []int{0}, []int64{1}, false},
		{"rowPtr not zero", 1, 1, []int{1, 1}, nil, nil, false},
		{"rowPtr decreasing", 2, 2, []int{0, 2, 1}, []int{0, 1}, []int64{1, 1}, false},
		{"col out of range", 1, 2, []int{0, 1}, []int{2}, []int64{1}, false},
		{"col negative", 1, 2, []int{0, 1}, []int{-1}, []int64{1}, false},
		{"cols not increasing", 1, 3, []int{0, 2}, []int{1, 1}, []int64{1, 1}, false},
		{"val length mismatch", 1, 2, []int{0, 1}, []int{0}, []int64{1, 2}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewCSR(tc.nr, tc.nc, tc.rowPtr, tc.colIdx, tc.val)
			if (err == nil) != tc.ok {
				t.Fatalf("NewCSR: got err=%v, want ok=%v", err, tc.ok)
			}
		})
	}
}

func TestZeroAndIdentity(t *testing.T) {
	z := Zero[int64](3, 4)
	if z.NRows() != 3 || z.NCols() != 4 || z.NNZ() != 0 {
		t.Fatalf("Zero: got %dx%d nnz=%d", z.NRows(), z.NCols(), z.NNZ())
	}
	id := Identity[int64](4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := int64(0)
			if i == j {
				want = 1
			}
			if got := id.At(i, j); got != want {
				t.Fatalf("Identity At(%d,%d) = %d, want %d", i, j, got, want)
			}
		}
	}
}

func TestDiagonalMatrixSkipsZeros(t *testing.T) {
	d := DiagonalMatrix([]int64{2, 0, -1})
	if d.NNZ() != 2 {
		t.Fatalf("DiagonalMatrix nnz = %d, want 2", d.NNZ())
	}
	if d.At(0, 0) != 2 || d.At(1, 1) != 0 || d.At(2, 2) != -1 {
		t.Fatalf("DiagonalMatrix wrong values: %v", d.Dense())
	}
}

func TestFromDenseRoundTrip(t *testing.T) {
	in := [][]int64{{0, 3, 0}, {1, 0, 0}, {0, 0, 7}}
	m, err := FromDense(in)
	if err != nil {
		t.Fatal(err)
	}
	if !denseEqual(m.Dense(), in) {
		t.Fatalf("round trip mismatch: %v vs %v", m.Dense(), in)
	}
	if m.NNZ() != 3 {
		t.Fatalf("nnz = %d, want 3", m.NNZ())
	}
}

func TestFromDenseRagged(t *testing.T) {
	if _, err := FromDense([][]int64{{1, 2}, {3}}); err == nil {
		t.Fatal("FromDense accepted ragged input")
	}
}

func TestAtAndHas(t *testing.T) {
	m := NewBuilder[int64](2, 3)
	m.Add(0, 2, 5)
	m.Add(1, 0, -2)
	a := m.MustBuild()
	if a.At(0, 2) != 5 || a.At(1, 0) != -2 || a.At(0, 0) != 0 {
		t.Fatal("At returned wrong values")
	}
	if !a.Has(0, 2) || a.Has(0, 1) {
		t.Fatal("Has returned wrong results")
	}
}

func TestIterateOrderAndEarlyStop(t *testing.T) {
	a := randomMatrix(rand.New(rand.NewSource(1)), 8, 8, 0.4)
	var prevI, prevJ = -1, -1
	count := 0
	a.Iterate(func(i, j int, v int64) bool {
		if i < prevI || (i == prevI && j <= prevJ) {
			t.Fatalf("iterate out of order: (%d,%d) after (%d,%d)", i, j, prevI, prevJ)
		}
		prevI, prevJ = i, j
		count++
		return true
	})
	if count != a.NNZ() {
		t.Fatalf("iterated %d entries, want %d", count, a.NNZ())
	}
	count = 0
	a.Iterate(func(i, j int, v int64) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Fatalf("early stop iterated %d entries, want 3", count)
	}
}

func TestCloneIsDeep(t *testing.T) {
	a := randomMatrix(rand.New(rand.NewSource(2)), 5, 5, 0.5)
	c := a.Clone()
	if !Equal(a, c) {
		t.Fatal("clone not equal to original")
	}
	c.val[0]++
	if Equal(a, c) {
		t.Fatal("mutating clone affected original comparison")
	}
}

func TestEqualTreatsExplicitZeros(t *testing.T) {
	// a stores an explicit zero at (0,1); b does not store it.
	a, err := NewCSR(1, 2, []int{0, 2}, []int{0, 1}, []int64{3, 0})
	if err != nil {
		t.Fatal(err)
	}
	b := NewBuilder[int64](1, 2)
	b.Add(0, 0, 3)
	if !Equal(a, b.MustBuild()) {
		t.Fatal("explicit zero should equal absent entry")
	}
}

func TestEqualShapes(t *testing.T) {
	if Equal(Zero[int64](2, 3), Zero[int64](3, 2)) {
		t.Fatal("matrices of different shape compared equal")
	}
}

func TestRowAccessors(t *testing.T) {
	a := randomMatrix(rand.New(rand.NewSource(3)), 6, 9, 0.3)
	total := 0
	for i := 0; i < a.NRows(); i++ {
		cols, vals := a.Row(i)
		if len(cols) != len(vals) || len(cols) != a.RowNNZ(i) {
			t.Fatalf("row %d accessor length mismatch", i)
		}
		total += len(cols)
	}
	if total != a.NNZ() {
		t.Fatalf("rows sum to %d entries, want %d", total, a.NNZ())
	}
}

func TestStringSmallAndLarge(t *testing.T) {
	small := Identity[int64](2)
	if s := small.String(); len(s) == 0 {
		t.Fatal("empty String for small matrix")
	}
	large := Zero[int64](100, 100)
	if s := large.String(); len(s) == 0 {
		t.Fatal("empty String for large matrix")
	}
}
