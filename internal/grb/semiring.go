package grb

// Monoid is a commutative, associative binary operator with an identity,
// used for reductions and as the additive component of a semiring.
type Monoid[T Number] struct {
	Identity T
	Op       func(T, T) T
}

// Semiring pairs an additive monoid with a multiplicative operator, per the
// GraphBLAS mathematical specification.  MxM/MxV over a semiring compute
//
//	c_ij = Add_k ( Mul(a_ik, b_kj) )
//
// where the Add reduction starts from the monoid identity and only stored
// entries participate (the implicit zero is the monoid identity, as in
// GraphBLAS).
type Semiring[T Number] struct {
	Add Monoid[T]
	Mul func(T, T) T
}

// PlusMonoid is ordinary addition with identity 0.
func PlusMonoid[T Number]() Monoid[T] {
	return Monoid[T]{Identity: 0, Op: func(a, b T) T { return a + b }}
}

// MinMonoid is minimum with identity +inf (the maximum representable value
// is used for integer instantiations; callers treat it as "unreached").
func MinMonoid[T Number](inf T) Monoid[T] {
	return Monoid[T]{Identity: inf, Op: func(a, b T) T {
		if a < b {
			return a
		}
		return b
	}}
}

// MaxMonoid is maximum with the supplied identity (typically the minimum
// representable value or 0 for non-negative data).
func MaxMonoid[T Number](neginf T) Monoid[T] {
	return Monoid[T]{Identity: neginf, Op: func(a, b T) T {
		if a > b {
			return a
		}
		return b
	}}
}

// OrMonoid is logical OR over {0,1}-valued scalars, with identity 0.
func OrMonoid[T Number]() Monoid[T] {
	return Monoid[T]{Identity: 0, Op: func(a, b T) T {
		if a != 0 || b != 0 {
			return 1
		}
		return 0
	}}
}

// PlusTimes is the conventional arithmetic semiring (+, *); walk counting
// over adjacency matrices uses this.
func PlusTimes[T Number]() Semiring[T] {
	return Semiring[T]{Add: PlusMonoid[T](), Mul: func(a, b T) T { return a * b }}
}

// MinPlus is the tropical shortest-path semiring with the supplied +inf.
func MinPlus[T Number](inf T) Semiring[T] {
	return Semiring[T]{Add: MinMonoid(inf), Mul: func(a, b T) T {
		if a == inf || b == inf {
			return inf
		}
		return a + b
	}}
}

// OrAnd is the boolean reachability semiring over {0,1}-valued scalars.
func OrAnd[T Number]() Semiring[T] {
	return Semiring[T]{Add: OrMonoid[T](), Mul: func(a, b T) T {
		if a != 0 && b != 0 {
			return 1
		}
		return 0
	}}
}
