package grb

import "fmt"

// This file rounds out the GraphBLAS op set: submatrix extraction and
// assignment (GrB_extract / GrB_assign), value- and coordinate-based
// selection (GrB_select), and structurally masked matrix multiply.  The
// Kronecker ground-truth formulas do not strictly need these, but induced
// subgraphs (communities), pattern masks (A³ ∘ A without forming A³) and
// factor surgery all map onto them, and they keep the kernel an honest
// GraphBLAS subset.

// Extract returns the submatrix A(rows, cols) with the output coordinate
// (r, c) taken from rows[r], cols[c] — GrB_Matrix_extract semantics.
// Indices may repeat and appear in any order.
func Extract[T Number](a *Matrix[T], rows, cols []int) (*Matrix[T], error) {
	for _, i := range rows {
		if i < 0 || i >= a.nr {
			return nil, fmt.Errorf("grb: extract row %d out of range [0,%d)", i, a.nr)
		}
	}
	colPos := make(map[int][]int) // original column -> output positions
	for c, j := range cols {
		if j < 0 || j >= a.nc {
			return nil, fmt.Errorf("grb: extract column %d out of range [0,%d)", j, a.nc)
		}
		colPos[j] = append(colPos[j], c)
	}
	b := NewBuilder[T](len(rows), len(cols))
	for r, i := range rows {
		ci, vi := a.Row(i)
		for k, j := range ci {
			for _, c := range colPos[j] {
				b.Add(r, c, vi[k])
			}
		}
	}
	return b.Build()
}

// Assign returns a copy of a with the submatrix at (rows × cols) replaced
// by sub — GrB_assign with GrB_REPLACE on the target region: entries of a
// inside the region that sub does not cover are deleted.  rows and cols
// must be duplicate-free.
func Assign[T Number](a *Matrix[T], rows, cols []int, sub *Matrix[T]) (*Matrix[T], error) {
	if sub.nr != len(rows) || sub.nc != len(cols) {
		return nil, fmt.Errorf("grb: assign shape %dx%d does not match index sets %dx%d", sub.nr, sub.nc, len(rows), len(cols))
	}
	rowOf := make(map[int]int, len(rows))
	for r, i := range rows {
		if i < 0 || i >= a.nr {
			return nil, fmt.Errorf("grb: assign row %d out of range [0,%d)", i, a.nr)
		}
		if _, dup := rowOf[i]; dup {
			return nil, fmt.Errorf("grb: assign row %d duplicated", i)
		}
		rowOf[i] = r
	}
	colOf := make(map[int]int, len(cols))
	for c, j := range cols {
		if j < 0 || j >= a.nc {
			return nil, fmt.Errorf("grb: assign column %d out of range [0,%d)", j, a.nc)
		}
		if _, dup := colOf[j]; dup {
			return nil, fmt.Errorf("grb: assign column %d duplicated", j)
		}
		colOf[j] = c
	}
	b := NewBuilder[T](a.nr, a.nc)
	a.Iterate(func(i, j int, v T) bool {
		_, inR := rowOf[i]
		_, inC := colOf[j]
		if inR && inC {
			return true // region is replaced wholesale
		}
		b.Add(i, j, v)
		return true
	})
	sub.Iterate(func(r, c int, v T) bool {
		b.Add(rows[r], cols[c], v)
		return true
	})
	return b.Build()
}

// Select returns the entries of a for which keep is true, preserving the
// matrix shape — GrB_select with an arbitrary index/value predicate.
// (Alias of Prune with GraphBLAS naming, kept for API symmetry.)
func Select[T Number](a *Matrix[T], keep func(i, j int, v T) bool) *Matrix[T] {
	return Prune(a, keep)
}

// MxMMasked computes C = (A·B) ∘ mask-pattern: only output coordinates
// stored in mask are computed, each by a sorted-merge dot product — the
// GraphBLAS masked-mxm idiom that evaluates A³ ∘ A without materializing
// A³ (the paper's Def. 9 workhorse).  B must equal Bᵗ so that column j of
// B can be gathered as row j; adjacency matrices satisfy this.
func MxMMasked[T Number](a, b, mask *Matrix[T]) (*Matrix[T], error) {
	if a.nc != b.nr {
		return nil, fmt.Errorf("grb: masked MxM dimension mismatch: %dx%d times %dx%d", a.nr, a.nc, b.nr, b.nc)
	}
	if mask.nr != a.nr || mask.nc != b.nc {
		return nil, fmt.Errorf("grb: mask shape %dx%d, want %dx%d", mask.nr, mask.nc, a.nr, b.nc)
	}
	if !IsSymmetric(b) {
		return nil, fmt.Errorf("grb: masked MxM requires symmetric B (column gather reuses rows)")
	}
	out := NewBuilder[T](mask.nr, mask.nc)
	mask.Iterate(func(i, j int, _ T) bool {
		ac, av := a.Row(i)
		bc, bv := b.Row(j)
		var acc T
		p, q := 0, 0
		for p < len(ac) && q < len(bc) {
			switch {
			case ac[p] < bc[q]:
				p++
			case bc[q] < ac[p]:
				q++
			default:
				acc += av[p] * bv[q]
				p++
				q++
			}
		}
		out.Add(i, j, acc)
		return true
	})
	return out.Build()
}
