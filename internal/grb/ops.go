package grb

import "fmt"

// Add returns the element-wise sum a + b (GraphBLAS eWiseAdd with PLUS):
// the result pattern is the union of the operand patterns.
func Add[T Number](a, b *Matrix[T]) (*Matrix[T], error) {
	return EWiseAdd(PlusMonoid[T]().Op, a, b)
}

// Sub returns the element-wise difference a - b (pattern union).
func Sub[T Number](a, b *Matrix[T]) (*Matrix[T], error) {
	nb, err := Apply(b, func(v T) T { return -v })
	if err != nil {
		return nil, err
	}
	return Add(a, nb)
}

// EWiseAdd merges a and b with op applied where both are present; where only
// one operand is present its value passes through unchanged, matching
// GraphBLAS eWiseAdd semantics.
func EWiseAdd[T Number](op func(T, T) T, a, b *Matrix[T]) (*Matrix[T], error) {
	if a.nr != b.nr || a.nc != b.nc {
		return nil, fmt.Errorf("grb: eWiseAdd shape mismatch %dx%d vs %dx%d", a.nr, a.nc, b.nr, b.nc)
	}
	rowPtr := make([]int, a.nr+1)
	colIdx := make([]int, 0, a.NNZ()+b.NNZ())
	val := make([]T, 0, a.NNZ()+b.NNZ())
	for i := 0; i < a.nr; i++ {
		ca, va := a.Row(i)
		cb, vb := b.Row(i)
		pa, pb := 0, 0
		for pa < len(ca) || pb < len(cb) {
			switch {
			case pb >= len(cb) || (pa < len(ca) && ca[pa] < cb[pb]):
				colIdx = append(colIdx, ca[pa])
				val = append(val, va[pa])
				pa++
			case pa >= len(ca) || cb[pb] < ca[pa]:
				colIdx = append(colIdx, cb[pb])
				val = append(val, vb[pb])
				pb++
			default:
				colIdx = append(colIdx, ca[pa])
				val = append(val, op(va[pa], vb[pb]))
				pa++
				pb++
			}
		}
		rowPtr[i+1] = len(colIdx)
	}
	return &Matrix[T]{nr: a.nr, nc: a.nc, rowPtr: rowPtr, colIdx: colIdx, val: val}, nil
}

// Hadamard returns the element-wise product a ∘ b (GraphBLAS eWiseMult with
// TIMES): the result pattern is the intersection of the operand patterns.
func Hadamard[T Number](a, b *Matrix[T]) (*Matrix[T], error) {
	return EWiseMult(func(x, y T) T { return x * y }, a, b)
}

// EWiseMult intersects a and b, applying op where both store an entry.
func EWiseMult[T Number](op func(T, T) T, a, b *Matrix[T]) (*Matrix[T], error) {
	if a.nr != b.nr || a.nc != b.nc {
		return nil, fmt.Errorf("grb: eWiseMult shape mismatch %dx%d vs %dx%d", a.nr, a.nc, b.nr, b.nc)
	}
	rowPtr := make([]int, a.nr+1)
	var colIdx []int
	var val []T
	for i := 0; i < a.nr; i++ {
		ca, va := a.Row(i)
		cb, vb := b.Row(i)
		pa, pb := 0, 0
		for pa < len(ca) && pb < len(cb) {
			switch {
			case ca[pa] < cb[pb]:
				pa++
			case cb[pb] < ca[pa]:
				pb++
			default:
				colIdx = append(colIdx, ca[pa])
				val = append(val, op(va[pa], vb[pb]))
				pa++
				pb++
			}
		}
		rowPtr[i+1] = len(colIdx)
	}
	return &Matrix[T]{nr: a.nr, nc: a.nc, rowPtr: rowPtr, colIdx: colIdx, val: val}, nil
}

// ScalarMul returns c * a.
func ScalarMul[T Number](c T, a *Matrix[T]) *Matrix[T] {
	m, _ := Apply(a, func(v T) T { return c * v })
	return m
}

// Apply maps f over every stored value of a.  Entries mapped to zero remain
// stored (GraphBLAS keeps the pattern under GrB_apply).
func Apply[T Number](a *Matrix[T], f func(T) T) (*Matrix[T], error) {
	val := make([]T, len(a.val))
	for k, v := range a.val {
		val[k] = f(v)
	}
	return &Matrix[T]{
		nr:     a.nr,
		nc:     a.nc,
		rowPtr: append([]int(nil), a.rowPtr...),
		colIdx: append([]int(nil), a.colIdx...),
		val:    val,
	}, nil
}

// Prune returns a copy of a without entries for which keep returns false.
func Prune[T Number](a *Matrix[T], keep func(i, j int, v T) bool) *Matrix[T] {
	rowPtr := make([]int, a.nr+1)
	var colIdx []int
	var val []T
	for i := 0; i < a.nr; i++ {
		for k := a.rowPtr[i]; k < a.rowPtr[i+1]; k++ {
			if keep(i, a.colIdx[k], a.val[k]) {
				colIdx = append(colIdx, a.colIdx[k])
				val = append(val, a.val[k])
			}
		}
		rowPtr[i+1] = len(colIdx)
	}
	return &Matrix[T]{nr: a.nr, nc: a.nc, rowPtr: rowPtr, colIdx: colIdx, val: val}
}

// Transpose returns aᵗ using a two-pass counting transpose.
func Transpose[T Number](a *Matrix[T]) *Matrix[T] {
	rowPtr := make([]int, a.nc+1)
	for _, j := range a.colIdx {
		rowPtr[j+1]++
	}
	for j := 0; j < a.nc; j++ {
		rowPtr[j+1] += rowPtr[j]
	}
	colIdx := make([]int, len(a.colIdx))
	val := make([]T, len(a.val))
	next := append([]int(nil), rowPtr[:a.nc]...)
	for i := 0; i < a.nr; i++ {
		for k := a.rowPtr[i]; k < a.rowPtr[i+1]; k++ {
			j := a.colIdx[k]
			colIdx[next[j]] = i
			val[next[j]] = a.val[k]
			next[j]++
		}
	}
	return &Matrix[T]{nr: a.nc, nc: a.nr, rowPtr: rowPtr, colIdx: colIdx, val: val}
}

// IsSymmetric reports whether a equals its transpose.
func IsSymmetric[T Number](a *Matrix[T]) bool {
	if a.nr != a.nc {
		return false
	}
	return Equal(a, Transpose(a))
}

// Diag extracts the main diagonal of a square matrix as a dense vector
// (diag(A) in the paper's Def. 6).
func Diag[T Number](a *Matrix[T]) ([]T, error) {
	if a.nr != a.nc {
		return nil, fmt.Errorf("grb: diag of non-square %dx%d matrix", a.nr, a.nc)
	}
	d := make([]T, a.nr)
	for i := 0; i < a.nr; i++ {
		d[i] = a.At(i, i)
	}
	return d, nil
}

// OffDiagonal returns a copy of a with all diagonal entries removed
// (the paper's C - C∘I_C self-loop removal).
func OffDiagonal[T Number](a *Matrix[T]) *Matrix[T] {
	return Prune(a, func(i, j int, _ T) bool { return i != j })
}

// PlusDiag returns a + c·I for square a (the paper's A + I_A when c = 1).
func PlusDiag[T Number](a *Matrix[T], c T) (*Matrix[T], error) {
	if a.nr != a.nc {
		return nil, fmt.Errorf("grb: PlusDiag on non-square %dx%d matrix", a.nr, a.nc)
	}
	d := make([]T, a.nr)
	for i := range d {
		d[i] = c
	}
	return Add(a, DiagonalMatrix(d))
}

// Reduce folds all stored values of a with the monoid.
func Reduce[T Number](m Monoid[T], a *Matrix[T]) T {
	acc := m.Identity
	for _, v := range a.val {
		acc = m.Op(acc, v)
	}
	return acc
}

// ReduceRows folds each row with the monoid, returning a dense vector;
// with PlusMonoid on an adjacency matrix this is the degree vector A·1.
func ReduceRows[T Number](m Monoid[T], a *Matrix[T]) []T {
	out := make([]T, a.nr)
	for i := 0; i < a.nr; i++ {
		acc := m.Identity
		for k := a.rowPtr[i]; k < a.rowPtr[i+1]; k++ {
			acc = m.Op(acc, a.val[k])
		}
		out[i] = acc
	}
	return out
}

// MxV computes y = A·x over the conventional (+,*) semiring.
func MxV[T Number](a *Matrix[T], x []T) ([]T, error) {
	return MxVSemiring(PlusTimes[T](), a, x)
}

// MxVSemiring computes y = A·x over an arbitrary semiring.  Only stored
// entries of A participate; absent entries act as the additive identity.
func MxVSemiring[T Number](sr Semiring[T], a *Matrix[T], x []T) ([]T, error) {
	if len(x) != a.nc {
		return nil, fmt.Errorf("grb: MxV dimension mismatch: matrix %dx%d, vector %d", a.nr, a.nc, len(x))
	}
	y := make([]T, a.nr)
	for i := 0; i < a.nr; i++ {
		acc := sr.Add.Identity
		for k := a.rowPtr[i]; k < a.rowPtr[i+1]; k++ {
			acc = sr.Add.Op(acc, sr.Mul(a.val[k], x[a.colIdx[k]]))
		}
		y[i] = acc
	}
	return y, nil
}

// VxM computes yᵗ = xᵗ·A over the conventional semiring.
func VxM[T Number](x []T, a *Matrix[T]) ([]T, error) {
	if len(x) != a.nr {
		return nil, fmt.Errorf("grb: VxM dimension mismatch: vector %d, matrix %dx%d", len(x), a.nr, a.nc)
	}
	y := make([]T, a.nc)
	for i := 0; i < a.nr; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		for k := a.rowPtr[i]; k < a.rowPtr[i+1]; k++ {
			y[a.colIdx[k]] += xi * a.val[k]
		}
	}
	return y, nil
}
