package grb

import (
	"context"
	"errors"
	"testing"
)

// denseRandomish builds a small deterministic matrix with enough rows to
// exercise the parallel kernels.
func denseRandomish(nr, nc int) *Matrix[int64] {
	b := NewBuilder[int64](nr, nc)
	for i := 0; i < nr; i++ {
		for j := 0; j < nc; j++ {
			if (i*31+j*17)%3 == 0 {
				b.Add(i, j, int64(1+(i+j)%5))
			}
		}
	}
	return b.MustBuild()
}

func TestMxMParallelContextCancelled(t *testing.T) {
	m := denseRandomish(64, 64)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := MxMParallelContext(ctx, m, m, 4); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if _, err := MxMParallelContext(ctx, m, m, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("serial path err = %v, want context.Canceled", err)
	}
}

func TestKronParallelContextCancelled(t *testing.T) {
	m := denseRandomish(16, 16)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := KronParallelContext(ctx, m, m, 4); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestMxVParallelContextCancelled(t *testing.T) {
	m := denseRandomish(64, 64)
	x := make([]int64, 64)
	for i := range x {
		x[i] = int64(i)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := MxVParallelContext(ctx, m, x, 4); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestParallelContextMatchesSerial(t *testing.T) {
	a := denseRandomish(40, 30)
	b := denseRandomish(30, 50)
	want, err := MxM(a, b)
	if err != nil {
		t.Fatal(err)
	}
	got, err := MxMParallelContext(context.Background(), a, b, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(want, got) {
		t.Fatal("MxMParallelContext differs from MxM")
	}
	wantK, err := Kron(a, b)
	if err != nil {
		t.Fatal(err)
	}
	gotK, err := KronParallelContext(context.Background(), a, b, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(wantK, gotK) {
		t.Fatal("KronParallelContext differs from Kron")
	}
}
