// Package grb implements a small, stdlib-only subset of the GraphBLAS
// operation set over compressed-sparse-row matrices and dense vectors.
//
// The ground-truth formulas of Steil et al. (IPDPSW 2020) are expressed in
// the language of linear algebra over adjacency matrices: Kronecker products,
// Hadamard (element-wise) products, matrix powers, diagonal extraction and
// reductions.  This package provides exactly that op set, generic over the
// scalar type, together with row-parallel variants of the expensive kernels.
//
// Matrices are immutable after construction; every operation returns a new
// matrix.  Indices are 0-based throughout (the paper uses 1-based indices;
// the translation is confined to doc comments in package core).
package grb

import (
	"fmt"
	"sort"
)

// Number is the scalar constraint for all grb containers.  Signed integer
// instantiations are used for exact combinatorial ground truth; float64 is
// used for densities and clustering coefficients.
type Number interface {
	~int | ~int8 | ~int16 | ~int32 | ~int64 | ~float32 | ~float64
}

// Matrix is an immutable sparse matrix in CSR (compressed sparse row) form.
// Within each row, column indices are strictly increasing and free of
// duplicates; explicit zeros are permitted (GraphBLAS "structural" zeros are
// a storage concern, not a value concern).
type Matrix[T Number] struct {
	nr, nc int
	rowPtr []int // len nr+1
	colIdx []int // len nnz
	val    []T   // len nnz
}

// NewCSR wraps pre-built CSR arrays in a Matrix after validating the
// invariants (monotone rowPtr, in-range strictly increasing columns per row).
// The slices are retained, not copied.
func NewCSR[T Number](nr, nc int, rowPtr, colIdx []int, val []T) (*Matrix[T], error) {
	if nr < 0 || nc < 0 {
		return nil, fmt.Errorf("grb: negative dimension %dx%d", nr, nc)
	}
	if len(rowPtr) != nr+1 {
		return nil, fmt.Errorf("grb: rowPtr length %d, want %d", len(rowPtr), nr+1)
	}
	if rowPtr[0] != 0 {
		return nil, fmt.Errorf("grb: rowPtr[0] = %d, want 0", rowPtr[0])
	}
	nnz := rowPtr[nr]
	if len(colIdx) != nnz || len(val) != nnz {
		return nil, fmt.Errorf("grb: colIdx/val length %d/%d, want %d", len(colIdx), len(val), nnz)
	}
	for i := 0; i < nr; i++ {
		if rowPtr[i] > rowPtr[i+1] {
			return nil, fmt.Errorf("grb: rowPtr not monotone at row %d", i)
		}
		for k := rowPtr[i]; k < rowPtr[i+1]; k++ {
			if colIdx[k] < 0 || colIdx[k] >= nc {
				return nil, fmt.Errorf("grb: column %d out of range [0,%d) in row %d", colIdx[k], nc, i)
			}
			if k > rowPtr[i] && colIdx[k] <= colIdx[k-1] {
				return nil, fmt.Errorf("grb: columns not strictly increasing in row %d", i)
			}
		}
	}
	return &Matrix[T]{nr: nr, nc: nc, rowPtr: rowPtr, colIdx: colIdx, val: val}, nil
}

// Zero returns the nr-by-nc matrix with no stored entries.
func Zero[T Number](nr, nc int) *Matrix[T] {
	return &Matrix[T]{nr: nr, nc: nc, rowPtr: make([]int, nr+1)}
}

// Identity returns the n-by-n identity matrix.
func Identity[T Number](n int) *Matrix[T] {
	rowPtr := make([]int, n+1)
	colIdx := make([]int, n)
	val := make([]T, n)
	for i := 0; i < n; i++ {
		rowPtr[i+1] = i + 1
		colIdx[i] = i
		val[i] = 1
	}
	return &Matrix[T]{nr: n, nc: n, rowPtr: rowPtr, colIdx: colIdx, val: val}
}

// DiagonalMatrix returns the square matrix with d on its diagonal.  Zero
// entries of d are not stored.
func DiagonalMatrix[T Number](d []T) *Matrix[T] {
	n := len(d)
	rowPtr := make([]int, n+1)
	colIdx := make([]int, 0, n)
	val := make([]T, 0, n)
	for i, v := range d {
		if v != 0 {
			colIdx = append(colIdx, i)
			val = append(val, v)
		}
		rowPtr[i+1] = len(colIdx)
	}
	return &Matrix[T]{nr: n, nc: n, rowPtr: rowPtr, colIdx: colIdx, val: val}
}

// FromDense builds a sparse matrix from a dense row-major representation,
// skipping zeros.  Intended for tests and tiny examples.
func FromDense[T Number](rows [][]T) (*Matrix[T], error) {
	nr := len(rows)
	nc := 0
	if nr > 0 {
		nc = len(rows[0])
	}
	b := NewBuilder[T](nr, nc)
	for i, r := range rows {
		if len(r) != nc {
			return nil, fmt.Errorf("grb: ragged dense input: row %d has %d columns, want %d", i, len(r), nc)
		}
		for j, v := range r {
			if v != 0 {
				b.Add(i, j, v)
			}
		}
	}
	return b.Build()
}

// Dense returns a dense row-major copy of m.  Intended for tests and tiny
// examples only; it allocates nr*nc scalars.
func (m *Matrix[T]) Dense() [][]T {
	out := make([][]T, m.nr)
	for i := range out {
		out[i] = make([]T, m.nc)
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			out[i][m.colIdx[k]] = m.val[k]
		}
	}
	return out
}

// NRows returns the number of rows.
func (m *Matrix[T]) NRows() int { return m.nr }

// NCols returns the number of columns.
func (m *Matrix[T]) NCols() int { return m.nc }

// NNZ returns the number of stored entries.
func (m *Matrix[T]) NNZ() int { return len(m.colIdx) }

// Row returns the column indices and values of row i.  The returned slices
// alias internal storage and must not be modified.
func (m *Matrix[T]) Row(i int) (cols []int, vals []T) {
	lo, hi := m.rowPtr[i], m.rowPtr[i+1]
	return m.colIdx[lo:hi], m.val[lo:hi]
}

// RowNNZ returns the number of stored entries in row i.
func (m *Matrix[T]) RowNNZ(i int) int { return m.rowPtr[i+1] - m.rowPtr[i] }

// At returns the (i,j) entry, or zero if it is not stored.  Binary search
// within the row; O(log nnz(row)).
func (m *Matrix[T]) At(i, j int) T {
	lo, hi := m.rowPtr[i], m.rowPtr[i+1]
	row := m.colIdx[lo:hi]
	k := sort.SearchInts(row, j)
	if k < len(row) && row[k] == j {
		return m.val[lo+k]
	}
	return 0
}

// Has reports whether entry (i,j) is stored (even if its value is zero).
func (m *Matrix[T]) Has(i, j int) bool {
	lo, hi := m.rowPtr[i], m.rowPtr[i+1]
	row := m.colIdx[lo:hi]
	k := sort.SearchInts(row, j)
	return k < len(row) && row[k] == j
}

// Iterate calls fn for every stored entry in row-major order.  Iteration
// stops early if fn returns false.
func (m *Matrix[T]) Iterate(fn func(i, j int, v T) bool) {
	for i := 0; i < m.nr; i++ {
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			if !fn(i, m.colIdx[k], m.val[k]) {
				return
			}
		}
	}
}

// Clone returns a deep copy of m.
func (m *Matrix[T]) Clone() *Matrix[T] {
	c := &Matrix[T]{
		nr:     m.nr,
		nc:     m.nc,
		rowPtr: append([]int(nil), m.rowPtr...),
		colIdx: append([]int(nil), m.colIdx...),
		val:    append([]T(nil), m.val...),
	}
	return c
}

// Equal reports whether a and b have identical dimensions and identical
// stored values at every coordinate.  Entries stored as explicit zeros
// compare equal to absent entries.
func Equal[T Number](a, b *Matrix[T]) bool {
	if a.nr != b.nr || a.nc != b.nc {
		return false
	}
	for i := 0; i < a.nr; i++ {
		ca, va := a.Row(i)
		cb, vb := b.Row(i)
		pa, pb := 0, 0
		for pa < len(ca) || pb < len(cb) {
			switch {
			case pb >= len(cb) || (pa < len(ca) && ca[pa] < cb[pb]):
				if va[pa] != 0 {
					return false
				}
				pa++
			case pa >= len(ca) || cb[pb] < ca[pa]:
				if vb[pb] != 0 {
					return false
				}
				pb++
			default:
				if va[pa] != vb[pb] {
					return false
				}
				pa++
				pb++
			}
		}
	}
	return true
}

// String renders small matrices densely for debugging; large matrices are
// summarized by shape and nnz.
func (m *Matrix[T]) String() string {
	if m.nr*m.nc > 400 {
		return fmt.Sprintf("Matrix(%dx%d, nnz=%d)", m.nr, m.nc, m.NNZ())
	}
	s := fmt.Sprintf("Matrix(%dx%d):\n", m.nr, m.nc)
	for _, row := range m.Dense() {
		s += fmt.Sprintf("  %v\n", row)
	}
	return s
}
