package grb

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// denseKron is the brute-force oracle straight from the paper's Def. 4.
func denseKron(a, b [][]int64) [][]int64 {
	ma, mb := len(a), len(b)
	na, nb := 0, 0
	if ma > 0 {
		na = len(a[0])
	}
	if mb > 0 {
		nb = len(b[0])
	}
	out := make([][]int64, ma*mb)
	for p := range out {
		out[p] = make([]int64, na*nb)
		i, k := p/mb, p%mb
		for q := range out[p] {
			j, l := q/nb, q%nb
			out[p][q] = a[i][j] * b[k][l]
		}
	}
	return out
}

func TestKronAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	for trial := 0; trial < 40; trial++ {
		a := randomMatrix(rng, 3+rng.Intn(3), 2+rng.Intn(4), 0.4)
		b := randomMatrix(rng, 2+rng.Intn(4), 3+rng.Intn(3), 0.4)
		c, err := Kron(a, b)
		if err != nil {
			t.Fatal(err)
		}
		want := denseKron(a.Dense(), b.Dense())
		if !denseEqual(c.Dense(), want) {
			t.Fatalf("trial %d: Kron mismatch", trial)
		}
	}
}

func TestKronParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	a := randomMatrix(rng, 12, 9, 0.3)
	b := randomMatrix(rng, 8, 11, 0.3)
	serial, err := Kron(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 5, 0, 1000} {
		par, err := KronParallel(a, b, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !Equal(serial, par) {
			t.Fatalf("workers=%d: parallel Kron differs", workers)
		}
	}
}

func TestKronNNZ(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	a := randomMatrix(rng, 5, 5, 0.4)
	b := randomMatrix(rng, 6, 6, 0.4)
	c, err := Kron(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if c.NNZ() != a.NNZ()*b.NNZ() {
		t.Fatalf("Kron nnz = %d, want %d", c.NNZ(), a.NNZ()*b.NNZ())
	}
}

func TestKronEmptyFactors(t *testing.T) {
	a := Zero[int64](3, 3)
	b := Identity[int64](2)
	c, err := Kron(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if c.NRows() != 6 || c.NCols() != 6 || c.NNZ() != 0 {
		t.Fatal("Kron with zero factor wrong")
	}
}

// --- Property-based tests of the paper's Appendix A identities ---

// smallPair generates two random square factors from a quick seed.
func smallPair(seed int64) (*Matrix[int64], *Matrix[int64], *Matrix[int64], *Matrix[int64]) {
	rng := rand.New(rand.NewSource(seed))
	n1 := 2 + rng.Intn(3)
	n2 := 2 + rng.Intn(3)
	a1 := randomMatrix(rng, n1, n1, 0.5)
	a2 := randomMatrix(rng, n2, n2, 0.5)
	a3 := randomMatrix(rng, n1, n1, 0.5)
	a4 := randomMatrix(rng, n2, n2, 0.5)
	return a1, a2, a3, a4
}

// Prop 1(b): (A1 + A2) ⊗ A3 = (A1 ⊗ A3) + (A2 ⊗ A3).
func TestPropKronDistributivity(t *testing.T) {
	f := func(seed int64) bool {
		a1, a2, a3, _ := smallPair(seed)
		sum, _ := Add(a1, a3) // a1, a3 share shape
		lhs, _ := Kron(sum, a2)
		k1, _ := Kron(a1, a2)
		k2, _ := Kron(a3, a2)
		rhs, _ := Add(k1, k2)
		return Equal(lhs, rhs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Prop 1(c): (A1 ⊗ A2)ᵗ = A1ᵗ ⊗ A2ᵗ.
func TestPropKronTranspose(t *testing.T) {
	f := func(seed int64) bool {
		a1, a2, _, _ := smallPair(seed)
		k, _ := Kron(a1, a2)
		lhs := Transpose(k)
		rhs, _ := Kron(Transpose(a1), Transpose(a2))
		return Equal(lhs, rhs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Prop 1(d): (A1 ⊗ A2)(A3 ⊗ A4) = (A1·A3) ⊗ (A2·A4).
func TestPropKronMixedProduct(t *testing.T) {
	f := func(seed int64) bool {
		a1, a2, a3, a4 := smallPair(seed)
		k1, _ := Kron(a1, a2)
		k2, _ := Kron(a3, a4)
		lhs, _ := MxM(k1, k2)
		m1, _ := MxM(a1, a3)
		m2, _ := MxM(a2, a4)
		rhs, _ := Kron(m1, m2)
		return Equal(lhs, rhs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Prop 2(e): (A1 ⊗ A2) ∘ (A3 ⊗ A4) = (A1 ∘ A3) ⊗ (A2 ∘ A4).
func TestPropHadamardKronDistributivity(t *testing.T) {
	f := func(seed int64) bool {
		a1, a2, a3, a4 := smallPair(seed)
		k1, _ := Kron(a1, a2)
		k2, _ := Kron(a3, a4)
		lhs, _ := Hadamard(k1, k2)
		h1, _ := Hadamard(a1, a3)
		h2, _ := Hadamard(a2, a4)
		rhs, _ := Kron(h1, h2)
		return Equal(lhs, rhs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Prop 2(f): diag(A1 ⊗ A2) = diag(A1) ⊗ diag(A2).
func TestPropDiagKronDistributivity(t *testing.T) {
	f := func(seed int64) bool {
		a1, a2, _, _ := smallPair(seed)
		k, _ := Kron(a1, a2)
		lhs, _ := Diag(k)
		d1, _ := Diag(a1)
		d2, _ := Diag(a2)
		rhs := KronVec(d1, d2)
		return EqualVec(lhs, rhs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Prop 1(a): scalar multiplication moves across the product.
func TestPropKronScalar(t *testing.T) {
	f := func(seed int64) bool {
		a1, a2, _, _ := smallPair(seed)
		k, _ := Kron(ScalarMul(int64(2), a1), ScalarMul(int64(3), a2))
		k0, _ := Kron(a1, a2)
		return Equal(k, ScalarMul(int64(6), k0))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestKronVec(t *testing.T) {
	x := []int64{1, 2}
	y := []int64{3, 0, 5}
	got := KronVec(x, y)
	want := []int64{3, 0, 5, 6, 0, 10}
	if !EqualVec(got, want) {
		t.Fatalf("KronVec = %v, want %v", got, want)
	}
	// Sum factorizes: sum(x⊗y) = sum(x)·sum(y).
	if SumVec(got) != SumVec(x)*SumVec(y) {
		t.Fatal("KronVec sum does not factorize")
	}
}
