package grb

import "testing"

func TestVectorConstructors(t *testing.T) {
	if !EqualVec(Ones[int64](3), []int64{1, 1, 1}) {
		t.Fatal("Ones wrong")
	}
	if !EqualVec(Fill(2, int64(7)), []int64{7, 7}) {
		t.Fatal("Fill wrong")
	}
	if len(Ones[int64](0)) != 0 {
		t.Fatal("Ones(0) not empty")
	}
}

func TestVectorArithmetic(t *testing.T) {
	x := []int64{1, 2, 3}
	y := []int64{4, 5, 6}
	if !EqualVec(AddVec(x, y), []int64{5, 7, 9}) {
		t.Fatal("AddVec wrong")
	}
	if !EqualVec(SubVec(y, x), []int64{3, 3, 3}) {
		t.Fatal("SubVec wrong")
	}
	if !EqualVec(HadamardVec(x, y), []int64{4, 10, 18}) {
		t.Fatal("HadamardVec wrong")
	}
	if !EqualVec(ScaleVec(int64(-2), x), []int64{-2, -4, -6}) {
		t.Fatal("ScaleVec wrong")
	}
	if !EqualVec(ShiftVec(x, int64(10)), []int64{11, 12, 13}) {
		t.Fatal("ShiftVec wrong")
	}
	if SumVec(x) != 6 || DotVec(x, y) != 32 {
		t.Fatal("SumVec/DotVec wrong")
	}
	if MinVec(y) != 4 || MaxVec(y) != 6 {
		t.Fatal("MinVec/MaxVec wrong")
	}
}

func TestVectorLengthMismatchPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"AddVec":      func() { AddVec([]int64{1}, []int64{1, 2}) },
		"SubVec":      func() { SubVec([]int64{1}, []int64{1, 2}) },
		"HadamardVec": func() { HadamardVec([]int64{1}, []int64{1, 2}) },
		"DotVec":      func() { DotVec([]int64{1}, []int64{1, 2}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic on length mismatch", name)
				}
			}()
			fn()
		}()
	}
}

func TestEqualVecLengths(t *testing.T) {
	if EqualVec([]int64{1}, []int64{1, 2}) {
		t.Fatal("EqualVec accepted mismatched lengths")
	}
	if !EqualVec([]int64{}, []int64{}) {
		t.Fatal("EqualVec rejected two empties")
	}
}

func TestFloatInstantiation(t *testing.T) {
	x := []float64{0.5, 1.5}
	y := []float64{2, 4}
	if got := DotVec(x, y); got != 7 {
		t.Fatalf("float DotVec = %v, want 7", got)
	}
	m, _ := FromDense([][]float64{{0.5, 0}, {0, 0.25}})
	if m.At(1, 1) != 0.25 {
		t.Fatal("float matrix At wrong")
	}
	v, err := MxV(m, []float64{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if !EqualVec(v, []float64{1, 1}) {
		t.Fatalf("float MxV = %v", v)
	}
}
