package grb_test

import (
	"fmt"

	"kronbip/internal/grb"
)

// ExampleKron demonstrates the paper's Def. 4 on a 2×2 pair.
func ExampleKron() {
	a, _ := grb.FromDense([][]int64{
		{0, 1},
		{1, 0},
	})
	b, _ := grb.FromDense([][]int64{
		{1, 0},
		{0, 2},
	})
	c, _ := grb.Kron(a, b)
	for _, row := range c.Dense() {
		fmt.Println(row)
	}
	// Output:
	// [0 0 1 0]
	// [0 0 0 2]
	// [1 0 0 0]
	// [0 2 0 0]
}

// ExampleMxMSemiring runs one tropical (min,+) relaxation step.
func ExampleMxMSemiring() {
	const inf = int64(1) << 60
	w, _ := grb.FromDense([][]int64{
		{0, 3, 0},
		{3, 0, 4},
		{0, 4, 0},
	})
	// Remove the explicit zeros that FromDense dropped already; distances
	// via one squaring over (min,+).
	d, _ := grb.MxMSemiring(grb.MinPlus(inf), w, w)
	fmt.Println(d.At(0, 2)) // 0→1→2 costs 3+4
	// Output:
	// 7
}

// ExampleKronExpr shows the fused sublinear reduction Σ(x⊗y) = Σx·Σy.
func ExampleKronExpr() {
	x := grb.LeafExpr([]int64{1, 2, 3})
	y := grb.LeafExpr([]int64{10, 20})
	e := grb.KronExpr(x, y)
	fmt.Println(e.Len(), e.At(3), e.Sum()) // slot 3 = x[1]*y[1]
	// Output:
	// 6 40 180
}
