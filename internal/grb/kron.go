package grb

import (
	"context"
	"fmt"

	"kronbip/internal/exec"
	"kronbip/internal/obs"
	"kronbip/internal/obs/timeline"
)

// Kron computes the Kronecker product C = A ⊗ B (the paper's Def. 4, the
// GrB_kronecker operation of the GraphBLAS 1.3 C API) with 0-based block
// index maps
//
//	C[i·mB + k, j·nB + l] = A[i,j] · B[k,l].
//
// The result has nnz(A)·nnz(B) stored entries; callers materializing large
// products should prefer KronParallel or the streaming generator in package
// core, which never forms C at all.
func Kron[T Number](a, b *Matrix[T]) (*Matrix[T], error) {
	return KronParallel(a, b, 1)
}

// KronParallel computes A ⊗ B with the output rows partitioned across
// workers.  Row i·mB+k of C is row i of A "zoomed" by row k of B, so every
// output row is computed independently and written into its exact final
// position.  workers <= 0 selects GOMAXPROCS.
func KronParallel[T Number](a, b *Matrix[T], workers int) (*Matrix[T], error) {
	return KronParallelContext(context.Background(), a, b, workers)
}

// KronParallelContext is KronParallel on the shared exec engine: output-row
// stripes run as cancellable workers, aborting with ctx.Err() within
// kernelPollStride rows of a cancellation.
func KronParallelContext[T Number](ctx context.Context, a, b *Matrix[T], workers int) (*Matrix[T], error) {
	nr := a.nr * b.nr
	nc := a.nc * b.nc
	nnzA, nnzB := a.NNZ(), b.NNZ()
	if nnzA > 0 && nnzB > (1<<62)/nnzA {
		return nil, fmt.Errorf("grb: kron nnz overflow: %d * %d", nnzA, nnzB)
	}
	nnz := nnzA * nnzB
	if obs.Enabled() {
		var done func()
		ctx, done = obs.Span(ctx, "grb.kron")
		defer done()
		mKronCalls.Inc()
		mKronNNZ.Add(int64(nnz))
	}
	if timeline.Enabled() {
		defer timeline.Begin(timeline.CatKernel, "grb.kron", 0)(nil)
	}
	rowPtr := make([]int, nr+1)
	colIdx := make([]int, nnz)
	val := make([]T, nnz)

	// Row p = i*mB + k of C has RowNNZ(A,i)*RowNNZ(B,k) entries; the row
	// pointer is a prefix product structure we can fill directly.
	for i := 0; i < a.nr; i++ {
		na := a.rowPtr[i+1] - a.rowPtr[i]
		for k := 0; k < b.nr; k++ {
			p := i*b.nr + k
			rowPtr[p+1] = na * (b.rowPtr[k+1] - b.rowPtr[k])
		}
	}
	for p := 0; p < nr; p++ {
		rowPtr[p+1] += rowPtr[p]
	}

	if nr == 0 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return &Matrix[T]{nr: nr, nc: nc, rowPtr: rowPtr, colIdx: colIdx, val: val}, nil
	}
	err := exec.Ranges(ctx, nr, workers, func(ctx context.Context, _, lo, hi int) error {
		poll := exec.NewPoller(ctx, kernelPollStride)
		for p := lo; p < hi; p++ {
			if poll.Cancelled() {
				return poll.Err()
			}
			i, k := p/b.nr, p%b.nr
			pos := rowPtr[p]
			for ka := a.rowPtr[i]; ka < a.rowPtr[i+1]; ka++ {
				jBase := a.colIdx[ka] * b.nc
				av := a.val[ka]
				for kb := b.rowPtr[k]; kb < b.rowPtr[k+1]; kb++ {
					colIdx[pos] = jBase + b.colIdx[kb]
					val[pos] = av * b.val[kb]
					pos++
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &Matrix[T]{nr: nr, nc: nc, rowPtr: rowPtr, colIdx: colIdx, val: val}, nil
}

// KronVec computes the Kronecker product of two dense vectors,
// (x ⊗ y)[i·len(y)+k] = x[i]·y[k].  The ground-truth formulas of Thm. 3–4
// are sums of such products.
func KronVec[T Number](x, y []T) []T {
	out := make([]T, len(x)*len(y))
	for i, xv := range x {
		base := i * len(y)
		if xv == 0 {
			continue
		}
		for k, yv := range y {
			out[base+k] = xv * yv
		}
	}
	return out
}
