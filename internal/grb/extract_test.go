package grb

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestExtractBasic(t *testing.T) {
	a, _ := FromDense([][]int64{
		{1, 2, 3},
		{4, 5, 6},
		{7, 8, 9},
	})
	sub, err := Extract(a, []int{2, 0}, []int{1, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int64{{8, 8, 9}, {2, 2, 3}}
	if !denseEqual(sub.Dense(), want) {
		t.Fatalf("Extract = %v, want %v", sub.Dense(), want)
	}
}

func TestExtractOutOfRange(t *testing.T) {
	a := Identity[int64](3)
	if _, err := Extract(a, []int{3}, []int{0}); err == nil {
		t.Fatal("accepted row out of range")
	}
	if _, err := Extract(a, []int{0}, []int{-1}); err == nil {
		t.Fatal("accepted column out of range")
	}
}

func TestExtractMatchesDense(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomMatrix(rng, 6, 7, 0.4)
		nr, nc := 1+rng.Intn(5), 1+rng.Intn(5)
		rows := make([]int, nr)
		cols := make([]int, nc)
		for i := range rows {
			rows[i] = rng.Intn(6)
		}
		for j := range cols {
			cols[j] = rng.Intn(7)
		}
		sub, err := Extract(a, rows, cols)
		if err != nil {
			return false
		}
		da := a.Dense()
		for r := range rows {
			for c := range cols {
				if sub.At(r, c) != da[rows[r]][cols[c]] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestAssignReplacesRegion(t *testing.T) {
	a, _ := FromDense([][]int64{
		{1, 1, 1},
		{1, 1, 1},
		{1, 1, 1},
	})
	sub, _ := FromDense([][]int64{{9, 0}, {0, 8}})
	out, err := Assign(a, []int{0, 2}, []int{1, 2}, sub)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int64{
		{1, 9, 0},
		{1, 1, 1},
		{1, 0, 8},
	}
	if !denseEqual(out.Dense(), want) {
		t.Fatalf("Assign = %v, want %v", out.Dense(), want)
	}
	// Original untouched.
	if a.At(0, 1) != 1 {
		t.Fatal("Assign mutated its input")
	}
}

func TestAssignValidation(t *testing.T) {
	a := Identity[int64](3)
	sub := Identity[int64](2)
	if _, err := Assign(a, []int{0}, []int{0, 1}, sub); err == nil {
		t.Fatal("accepted shape mismatch")
	}
	if _, err := Assign(a, []int{0, 3}, []int{0, 1}, sub); err == nil {
		t.Fatal("accepted row out of range")
	}
	if _, err := Assign(a, []int{0, 0}, []int{0, 1}, sub); err == nil {
		t.Fatal("accepted duplicate row")
	}
	if _, err := Assign(a, []int{0, 1}, []int{1, 1}, sub); err == nil {
		t.Fatal("accepted duplicate column")
	}
}

func TestAssignExtractRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomMatrix(rng, 7, 7, 0.4)
		// Distinct index sets.
		rows := rng.Perm(7)[:3]
		cols := rng.Perm(7)[:4]
		sub, err := Extract(a, rows, cols)
		if err != nil {
			return false
		}
		// Assigning a region's own extraction back must be the identity.
		back, err := Assign(a, rows, cols, sub)
		if err != nil {
			return false
		}
		return Equal(a, back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSelect(t *testing.T) {
	a, _ := FromDense([][]int64{{1, -2}, {3, -4}})
	pos := Select(a, func(_, _ int, v int64) bool { return v > 0 })
	if pos.NNZ() != 2 || pos.At(0, 0) != 1 || pos.At(1, 0) != 3 {
		t.Fatalf("Select = %v", pos.Dense())
	}
	diag := Select(a, func(i, j int, _ int64) bool { return i == j })
	if diag.NNZ() != 2 || diag.At(0, 0) != 1 || diag.At(1, 1) != -4 {
		t.Fatalf("coordinate Select = %v", diag.Dense())
	}
}

func TestMxMMaskedMatchesHadamard(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sym := randomSymmetric(rng, 8, 0.4)
		a := randomMatrix(rng, 8, 8, 0.4)
		mask := randomMatrix(rng, 8, 8, 0.3)
		masked, err := MxMMasked(a, sym, mask)
		if err != nil {
			return false
		}
		full, err := MxM(a, sym)
		if err != nil {
			return false
		}
		// Every mask coordinate must carry the full product's value.
		ok := true
		mask.Iterate(func(i, j int, _ int64) bool {
			if masked.At(i, j) != full.At(i, j) {
				ok = false
				return false
			}
			return true
		})
		return ok && masked.NNZ() == mask.NNZ()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestMxMMaskedValidation(t *testing.T) {
	a := Zero[int64](2, 3)
	b := Zero[int64](4, 4)
	if _, err := MxMMasked(a, b, Zero[int64](2, 4)); err == nil {
		t.Fatal("accepted inner dimension mismatch")
	}
	sym := Identity[int64](3)
	if _, err := MxMMasked(a, sym, Zero[int64](9, 9)); err == nil {
		t.Fatal("accepted mask shape mismatch")
	}
	asym, _ := FromDense([][]int64{{0, 1, 0}, {0, 0, 0}, {0, 0, 0}})
	if _, err := MxMMasked(a, asym, Zero[int64](2, 3)); err == nil {
		t.Fatal("accepted asymmetric B")
	}
}

// TestDef9ViaMaskedMxM recomputes A³∘A with the masked kernel and checks it
// against the full-product route — the GraphBLAS idiom behind Def. 9.
func TestDef9ViaMaskedMxM(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	a := randomSymmetric(rng, 10, 0.4)
	a2, err := MxM(a, a)
	if err != nil {
		t.Fatal(err)
	}
	masked, err := MxMMasked(a2, a, a) // (A²·A) ∘ pattern(A)
	if err != nil {
		t.Fatal(err)
	}
	a3, err := MxM(a2, a)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Hadamard(a3, applyOnes(a))
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(masked, want) {
		t.Fatal("masked A³∘A differs from full-product route")
	}
}

func applyOnes(a *Matrix[int64]) *Matrix[int64] {
	m, _ := Apply(a, func(int64) int64 { return 1 })
	return m
}
