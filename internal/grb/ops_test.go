package grb

import (
	"math/rand"
	"testing"
)

func TestAddAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 50; trial++ {
		a := randomMatrix(rng, 7, 5, 0.3)
		b := randomMatrix(rng, 7, 5, 0.3)
		c, err := Add(a, b)
		if err != nil {
			t.Fatal(err)
		}
		da, db, dc := a.Dense(), b.Dense(), c.Dense()
		for i := range dc {
			for j := range dc[i] {
				if dc[i][j] != da[i][j]+db[i][j] {
					t.Fatalf("trial %d: Add(%d,%d) = %d, want %d", trial, i, j, dc[i][j], da[i][j]+db[i][j])
				}
			}
		}
	}
}

func TestSubAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := randomMatrix(rng, 6, 6, 0.4)
	b := randomMatrix(rng, 6, 6, 0.4)
	c, err := Sub(a, b)
	if err != nil {
		t.Fatal(err)
	}
	da, db, dc := a.Dense(), b.Dense(), c.Dense()
	for i := range dc {
		for j := range dc[i] {
			if dc[i][j] != da[i][j]-db[i][j] {
				t.Fatalf("Sub(%d,%d) = %d, want %d", i, j, dc[i][j], da[i][j]-db[i][j])
			}
		}
	}
}

func TestHadamardAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 50; trial++ {
		a := randomMatrix(rng, 8, 4, 0.35)
		b := randomMatrix(rng, 8, 4, 0.35)
		c, err := Hadamard(a, b)
		if err != nil {
			t.Fatal(err)
		}
		da, db, dc := a.Dense(), b.Dense(), c.Dense()
		for i := range dc {
			for j := range dc[i] {
				if dc[i][j] != da[i][j]*db[i][j] {
					t.Fatalf("Hadamard(%d,%d) = %d, want %d", i, j, dc[i][j], da[i][j]*db[i][j])
				}
			}
		}
	}
}

func TestHadamardPatternIsIntersection(t *testing.T) {
	a, _ := FromDense([][]int64{{1, 2, 0}})
	b, _ := FromDense([][]int64{{0, 5, 7}})
	c, err := Hadamard(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if c.NNZ() != 1 || c.At(0, 1) != 10 {
		t.Fatalf("Hadamard pattern wrong: nnz=%d dense=%v", c.NNZ(), c.Dense())
	}
}

func TestShapeMismatchErrors(t *testing.T) {
	a := Zero[int64](2, 3)
	b := Zero[int64](3, 2)
	if _, err := Add(a, b); err == nil {
		t.Fatal("Add accepted mismatched shapes")
	}
	if _, err := Hadamard(a, b); err == nil {
		t.Fatal("Hadamard accepted mismatched shapes")
	}
	if _, err := MxV(a, []int64{1, 2}); err == nil {
		t.Fatal("MxV accepted mismatched vector")
	}
	if _, err := VxM([]int64{1}, a); err == nil {
		t.Fatal("VxM accepted mismatched vector")
	}
}

func TestScalarMulAndApply(t *testing.T) {
	a, _ := FromDense([][]int64{{1, -2}, {0, 3}})
	c := ScalarMul(int64(-3), a)
	want := [][]int64{{-3, 6}, {0, -9}}
	if !denseEqual(c.Dense(), want) {
		t.Fatalf("ScalarMul = %v, want %v", c.Dense(), want)
	}
	sq, err := Apply(a, func(v int64) int64 { return v * v })
	if err != nil {
		t.Fatal(err)
	}
	if sq.At(0, 1) != 4 || sq.At(1, 1) != 9 {
		t.Fatalf("Apply square wrong: %v", sq.Dense())
	}
	// Apply keeps the pattern even when mapping to zero.
	z, _ := Apply(a, func(int64) int64 { return 0 })
	if z.NNZ() != a.NNZ() {
		t.Fatalf("Apply dropped entries: nnz %d, want %d", z.NNZ(), a.NNZ())
	}
}

func TestPrune(t *testing.T) {
	a, _ := FromDense([][]int64{{1, 2}, {3, 4}})
	odd := Prune(a, func(i, j int, v int64) bool { return v%2 == 1 })
	if odd.NNZ() != 2 || odd.At(0, 0) != 1 || odd.At(1, 0) != 3 {
		t.Fatalf("Prune kept wrong entries: %v", odd.Dense())
	}
}

func TestTransposeAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 30; trial++ {
		a := randomMatrix(rng, 5, 9, 0.3)
		at := Transpose(a)
		if at.NRows() != a.NCols() || at.NCols() != a.NRows() {
			t.Fatal("transpose shape wrong")
		}
		da, dat := a.Dense(), at.Dense()
		for i := range da {
			for j := range da[i] {
				if da[i][j] != dat[j][i] {
					t.Fatalf("transpose (%d,%d) mismatch", i, j)
				}
			}
		}
		if !Equal(a, Transpose(at)) {
			t.Fatal("double transpose differs from original")
		}
	}
}

func TestIsSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	s := randomSymmetric(rng, 12, 0.3)
	if !IsSymmetric(s) {
		t.Fatal("randomSymmetric result reported asymmetric")
	}
	a, _ := FromDense([][]int64{{0, 1}, {0, 0}})
	if IsSymmetric(a) {
		t.Fatal("asymmetric matrix reported symmetric")
	}
	if IsSymmetric(Zero[int64](2, 3)) {
		t.Fatal("rectangular matrix reported symmetric")
	}
}

func TestDiagAndOffDiagonal(t *testing.T) {
	a, _ := FromDense([][]int64{{5, 1, 0}, {0, 0, 2}, {3, 0, 7}})
	d, err := Diag(a)
	if err != nil {
		t.Fatal(err)
	}
	if !EqualVec(d, []int64{5, 0, 7}) {
		t.Fatalf("Diag = %v", d)
	}
	od := OffDiagonal(a)
	if od.At(0, 0) != 0 || od.At(2, 2) != 0 || od.At(0, 1) != 1 || od.At(2, 0) != 3 {
		t.Fatalf("OffDiagonal wrong: %v", od.Dense())
	}
	if _, err := Diag(Zero[int64](2, 3)); err == nil {
		t.Fatal("Diag accepted rectangular matrix")
	}
}

func TestPlusDiag(t *testing.T) {
	a, _ := FromDense([][]int64{{0, 1}, {1, 0}})
	m, err := PlusDiag(a, int64(1))
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int64{{1, 1}, {1, 1}}
	if !denseEqual(m.Dense(), want) {
		t.Fatalf("PlusDiag = %v, want %v", m.Dense(), want)
	}
	if _, err := PlusDiag(Zero[int64](2, 3), int64(1)); err == nil {
		t.Fatal("PlusDiag accepted rectangular matrix")
	}
}

func TestReduceAndReduceRows(t *testing.T) {
	a, _ := FromDense([][]int64{{1, 2, 0}, {0, 0, 4}})
	if got := Reduce(PlusMonoid[int64](), a); got != 7 {
		t.Fatalf("Reduce = %d, want 7", got)
	}
	rows := ReduceRows(PlusMonoid[int64](), a)
	if !EqualVec(rows, []int64{3, 4}) {
		t.Fatalf("ReduceRows = %v", rows)
	}
	if got := Reduce(MaxMonoid(int64(-1)), a); got != 4 {
		t.Fatalf("Reduce max = %d, want 4", got)
	}
}

func TestMxVAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	for trial := 0; trial < 30; trial++ {
		a := randomMatrix(rng, 6, 8, 0.4)
		x := make([]int64, 8)
		for i := range x {
			x[i] = int64(rng.Intn(7) - 3)
		}
		y, err := MxV(a, x)
		if err != nil {
			t.Fatal(err)
		}
		da := a.Dense()
		for i := range y {
			var want int64
			for j := range x {
				want += da[i][j] * x[j]
			}
			if y[i] != want {
				t.Fatalf("MxV[%d] = %d, want %d", i, y[i], want)
			}
		}
	}
}

func TestVxMMatchesTransposeMxV(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	a := randomMatrix(rng, 7, 5, 0.4)
	x := make([]int64, 7)
	for i := range x {
		x[i] = int64(rng.Intn(5))
	}
	got, err := VxM(x, a)
	if err != nil {
		t.Fatal(err)
	}
	want, err := MxV(Transpose(a), x)
	if err != nil {
		t.Fatal(err)
	}
	if !EqualVec(got, want) {
		t.Fatalf("VxM = %v, want %v", got, want)
	}
}

func TestMxVSemiringMinPlus(t *testing.T) {
	// One step of tropical relaxation on a 3-path 0-1-2 with unit weights.
	const inf = int64(1) << 60
	b := NewBuilder[int64](3, 3)
	b.AddSym(0, 1, 1)
	b.AddSym(1, 2, 1)
	a := b.MustBuild()
	x := []int64{0, inf, inf}
	y, err := MxVSemiring(MinPlus(inf), a, x)
	if err != nil {
		t.Fatal(err)
	}
	if y[1] != 1 || y[2] != inf {
		t.Fatalf("MinPlus step = %v", y)
	}
	y2, _ := MxVSemiring(MinPlus(inf), a, y)
	if y2[2] != 2 {
		t.Fatalf("two MinPlus steps: dist to 2 = %d, want 2", y2[2])
	}
}

func TestOrAndReachability(t *testing.T) {
	b := NewBuilder[int64](3, 3)
	b.Add(0, 1, 1)
	b.Add(1, 2, 1)
	a := b.MustBuild()
	x := []int64{1, 0, 0}
	y, err := MxVSemiring(OrAnd[int64](), Transpose(a), x)
	if err != nil {
		t.Fatal(err)
	}
	if !EqualVec(y, []int64{0, 1, 0}) {
		t.Fatalf("OrAnd frontier = %v", y)
	}
}
