package cli

import (
	"strings"
	"testing"
)

func TestBuildNeverEmpty(t *testing.T) {
	b := Build()
	if b.Version == "" {
		t.Error("Version is empty")
	}
	if !strings.HasPrefix(b.Go, "go") {
		t.Errorf("Go = %q, want a go release string", b.Go)
	}
}

func TestBuildInfoString(t *testing.T) {
	b := BuildInfo{Version: "v1.2.3", Go: "go1.22.0"}
	if got := b.String(); got != "v1.2.3 go1.22.0" {
		t.Errorf("String() = %q", got)
	}
	b.Revision = "0123456789abcdef0123"
	b.Dirty = true
	if got := b.String(); got != "v1.2.3 go1.22.0 rev=0123456789ab-dirty" {
		t.Errorf("String() with rev = %q", got)
	}
	if got := b.ServerToken(); got != "kronbip/v1.2.3" {
		t.Errorf("ServerToken() = %q", got)
	}
}

// The live String must parse as "<version> <goversion>[ rev=...]" so
// log scrapers and the smoke script can rely on the shape.
func TestLiveStringShape(t *testing.T) {
	fields := strings.Fields(Build().String())
	if len(fields) < 2 {
		t.Fatalf("String() = %q, want at least two fields", Build().String())
	}
	if !strings.HasPrefix(fields[1], "go") {
		t.Errorf("second field %q is not a go version", fields[1])
	}
}
