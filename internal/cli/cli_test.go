package cli

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"strings"
	"testing"
)

func TestExitCode(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{nil, ExitOK},
		{errors.New("boom"), ExitError},
		{context.Canceled, ExitCancelled},
		{context.DeadlineExceeded, ExitCancelled},
		{fmt.Errorf("wrapped: %w", context.Canceled), ExitCancelled},
		{flag.ErrHelp, ExitUsage},
	}
	for _, tc := range cases {
		if got := ExitCode(tc.err); got != tc.want {
			t.Errorf("ExitCode(%v) = %d, want %d", tc.err, got, tc.want)
		}
	}
}

func TestFailFormatting(t *testing.T) {
	var buf bytes.Buffer
	if code := failTo(&buf, "kronbip generate", errors.New("boom")); code != ExitError {
		t.Fatalf("code = %d", code)
	}
	if got := buf.String(); got != "kronbip generate: boom\n" {
		t.Fatalf("output = %q", got)
	}

	buf.Reset()
	if code := failTo(&buf, "kronbip generate", context.Canceled); code != ExitCancelled {
		t.Fatalf("code = %d", code)
	}
	if !strings.Contains(buf.String(), "aborted") || !strings.Contains(buf.String(), "partial") {
		t.Fatalf("cancellation output = %q", buf.String())
	}

	buf.Reset()
	if code := failTo(&buf, "x", nil); code != ExitOK || buf.Len() != 0 {
		t.Fatalf("nil err: code=%d output=%q", code, buf.String())
	}
}

func TestVerbosityGating(t *testing.T) {
	run := func(args ...string) (string, *Verbosity) {
		fs := flag.NewFlagSet("t", flag.ContinueOnError)
		v := RegisterVerbosity(fs)
		if err := fs.Parse(args); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		v.Err = &buf
		v.Summaryf("summary\n")
		v.Debugf("debug\n")
		return buf.String(), v
	}

	if got, _ := run(); got != "summary\n" {
		t.Fatalf("default: %q", got)
	}
	if got, _ := run("-quiet"); got != "" {
		t.Fatalf("-quiet: %q", got)
	}
	if got, _ := run("-v"); got != "summary\ndebug\n" {
		t.Fatalf("-v: %q", got)
	}
	// -v overrides -quiet.
	if got, v := run("-quiet", "-v"); got != "summary\ndebug\n" || v.Quiet() {
		t.Fatalf("-quiet -v: %q quiet=%v", got, v.Quiet())
	}
}
