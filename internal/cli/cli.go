// Package cli holds the small pieces shared by the kronbip and
// experiments command-line front ends, so the two binaries report
// errors, pick exit codes and gate their stderr chatter identically.
package cli

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
)

// Conventional exit codes shared by both binaries.
const (
	ExitOK        = 0   // success
	ExitError     = 1   // any ordinary failure
	ExitUsage     = 2   // bad flags / unknown subcommand
	ExitCancelled = 130 // SIGINT / timeout, the shell convention for interrupted work
)

// ExitCode maps an error to the process exit code Fail would use.
func ExitCode(err error) int {
	switch {
	case err == nil:
		return ExitOK
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return ExitCancelled
	case errors.Is(err, flag.ErrHelp):
		return ExitUsage
	default:
		return ExitError
	}
}

// usageError is a bad-invocation error that maps to ExitUsage (it
// matches flag.ErrHelp under errors.Is) while printing its own message.
type usageError struct{ msg string }

func (e *usageError) Error() string        { return e.msg }
func (e *usageError) Is(target error) bool { return target == flag.ErrHelp }

// UsageErrorf builds an error that Fail reports normally but ExitCode
// maps to ExitUsage — for bad arguments discovered after flag parsing.
func UsageErrorf(format string, args ...any) error {
	return &usageError{msg: fmt.Sprintf(format, args...)}
}

// Fail reports err on stderr in the canonical "<cmd>: <error>" shape —
// cancellation is flagged as partial output — and returns the exit code
// for the caller to pass to os.Exit.  A nil err prints nothing and
// returns 0.
func Fail(cmd string, err error) int {
	return failTo(os.Stderr, cmd, err)
}

// failTo is Fail with an explicit writer, for tests.
func failTo(w io.Writer, cmd string, err error) int {
	code := ExitCode(err)
	switch code {
	case ExitOK:
	case ExitCancelled:
		fmt.Fprintf(w, "%s: aborted (%v); output is partial\n", cmd, err)
	default:
		fmt.Fprintf(w, "%s: %v\n", cmd, err)
	}
	return code
}

// Verbosity is the -quiet/-v pair gating stderr chatter.  Summaries
// (the one-per-run result lines) print unless -quiet; Debugf detail
// prints only under -v.  When both flags are set, -v wins.
type Verbosity struct {
	quiet   *bool
	verbose *bool
	// Err receives the gated output; nil selects os.Stderr.  Set in
	// tests to capture.
	Err io.Writer
}

// RegisterVerbosity binds -quiet and -v onto fs.
func RegisterVerbosity(fs *flag.FlagSet) *Verbosity {
	v := &Verbosity{}
	v.quiet = fs.Bool("quiet", false, "suppress the stderr summary lines")
	v.verbose = fs.Bool("v", false, "extra stderr detail (overrides -quiet)")
	return v
}

// Quiet reports whether summaries are suppressed.
func (v *Verbosity) Quiet() bool { return *v.quiet && !*v.verbose }

// Verbose reports whether debug detail is requested.
func (v *Verbosity) Verbose() bool { return *v.verbose }

func (v *Verbosity) out() io.Writer {
	if v.Err != nil {
		return v.Err
	}
	return os.Stderr
}

// Summaryf prints a result summary line unless -quiet.
func (v *Verbosity) Summaryf(format string, args ...any) {
	if !v.Quiet() {
		fmt.Fprintf(v.out(), format, args...)
	}
}

// Debugf prints extra detail only under -v.
func (v *Verbosity) Debugf(format string, args ...any) {
	if v.Verbose() {
		fmt.Fprintf(v.out(), format, args...)
	}
}
