package cli

import (
	"fmt"
	"io"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"

	"kronbip/internal/obs"
)

// Flight-recorder dump plumbing shared by both binaries: a SIGQUIT
// handler that writes the post-mortem dump and keeps the process
// running (in-flight work is untouched — this replaces Go's default
// kill-with-stack-dump for SIGQUIT), and a panic hook that dumps before
// re-raising so a crashing process leaves its last events behind.

// flightDumpPath, when set, receives each dump in addition to stderr;
// the file is rewritten per dump so it always holds the newest state.
var flightDumpPath atomic.Pointer[string]

// SetFlightDumpPath routes subsequent flight dumps (SIGQUIT, panic,
// FlushFlightDump) to path as well as stderr.  Empty clears it.
func SetFlightDumpPath(path string) {
	flightDumpPath.Store(&path)
}

// writeFlightDump emits the dump to stderr and, when configured, to the
// dump file (rewritten, so the file holds exactly one — the latest —
// dump).
func writeFlightDump(trigger string) {
	fmt.Fprintf(os.Stderr, "flightrec: dump (%s) follows\n", trigger)
	_ = obs.DumpFlight(os.Stderr)
	if p := flightDumpPath.Load(); p != nil && *p != "" {
		f, err := os.Create(*p)
		if err != nil {
			fmt.Fprintf(os.Stderr, "flightrec: %s: %v\n", *p, err)
			return
		}
		werr := obs.DumpFlight(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintf(os.Stderr, "flightrec: %s: %v\n", *p, werr)
			return
		}
		fmt.Fprintf(os.Stderr, "flightrec: dump written to %s\n", *p)
	}
}

// StartFlightDumpOnQuit installs the SIGQUIT handler: each SIGQUIT
// writes a flight-recorder dump and the process keeps serving.  The
// returned stop function uninstalls the handler (restoring the default
// SIGQUIT behaviour) and is safe to call more than once.
func StartFlightDumpOnQuit() (stop func()) {
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGQUIT)
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			case <-sigc:
				obs.Flight.Record(obs.FlightInfo, "signal", "SIGQUIT flight dump", 0, 0)
				writeFlightDump("SIGQUIT")
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			signal.Stop(sigc)
			close(done)
			wg.Wait()
		})
	}
}

// FlushFlightDump writes a final dump to the configured dump file (if
// any), for the drain path: a stopped replica leaves its post-mortem
// record on disk without needing a signal.  No-op without a path.
func FlushFlightDump() error {
	p := flightDumpPath.Load()
	if p == nil || *p == "" {
		return nil
	}
	f, err := os.Create(*p)
	if err != nil {
		return fmt.Errorf("flightrec: %s: %w", *p, err)
	}
	werr := obs.DumpFlight(f)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return fmt.Errorf("flightrec: %s: %w", *p, werr)
	}
	return nil
}

// FlightDumpOnPanic is a deferred panic hook for main(): a panic
// unwinding past it writes the flight dump (the last thing the process
// does before dying is explain itself), then re-raises so the exit
// path — nonzero status, goroutine stacks — is unchanged.
func FlightDumpOnPanic() {
	if p := recover(); p != nil {
		obs.Flight.Record(obs.FlightError, "signal", "panic flight dump", 0, 0)
		writeFlightDump("panic")
		panic(p)
	}
}

// flightDumpTo is the test seam: like writeFlightDump but to one
// writer.
func flightDumpTo(w io.Writer) error { return obs.DumpFlight(w) }
