package cli

import (
	"runtime"
	"runtime/debug"
)

// BuildInfo identifies the running binary: the main module's version as
// stamped by the Go toolchain, the Go release it was built with, and
// the VCS revision when the build embedded one.  Both binaries print it
// from `version`/-version, and the serve layer reports it in its Server
// header and /healthz payload so a fleet's deployed versions are
// observable.
type BuildInfo struct {
	Version  string // main module version; "(devel)" for in-tree builds
	Go       string // runtime.Version(), e.g. "go1.22.0"
	Revision string // VCS revision, empty when not stamped
	Dirty    bool   // VCS working tree had local modifications
}

// Build reads the binary's build information.  It never fails: fields
// the toolchain did not stamp are left at their zero values, with
// Version falling back to "unknown".
func Build() BuildInfo {
	b := BuildInfo{Version: "unknown", Go: runtime.Version()}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return b
	}
	if bi.Main.Version != "" {
		b.Version = bi.Main.Version
	}
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			b.Revision = s.Value
		case "vcs.modified":
			b.Dirty = s.Value == "true"
		}
	}
	return b
}

// String renders the build info on one line, e.g.
// "(devel) go1.22.0 rev=1a2b3c4d5e6f-dirty".
func (b BuildInfo) String() string {
	s := b.Version + " " + b.Go
	if b.Revision != "" {
		rev := b.Revision
		if len(rev) > 12 {
			rev = rev[:12]
		}
		s += " rev=" + rev
		if b.Dirty {
			s += "-dirty"
		}
	}
	return s
}

// ServerToken renders the info as an HTTP Server-header product token,
// e.g. "kronbip/(devel)".
func (b BuildInfo) ServerToken() string { return "kronbip/" + b.Version }
