package spec

import (
	"testing"

	"kronbip/internal/core"
)

func TestParseFactorSpecs(t *testing.T) {
	cases := []struct {
		spec   string
		nu, nw int
		edges  int
	}{
		{"crown4", 4, 4, 12},
		{"biclique3x5", 3, 5, 15},
		{"cycle6", 3, 3, 6},
		{"path5", 3, 2, 4},
		{"star4", 1, 3, 3},
		{"hypercube3", 4, 4, 12},
		{"unicode", 254, 614, 1256},
	}
	for _, tc := range cases {
		t.Run(tc.spec, func(t *testing.T) {
			b, err := ParseFactor(tc.spec, 2020)
			if err != nil {
				t.Fatal(err)
			}
			if b.NU() != tc.nu || b.NW() != tc.nw {
				t.Fatalf("parts %d/%d, want %d/%d", b.NU(), b.NW(), tc.nu, tc.nw)
			}
			if b.NumEdges() != tc.edges {
				t.Fatalf("edges = %d, want %d", b.NumEdges(), tc.edges)
			}
		})
	}
	// Scale-free spec shape.
	sf, err := ParseFactor("sf20x30x50", 1)
	if err != nil {
		t.Fatal(err)
	}
	if sf.NU() != 20 || sf.NW() != 30 {
		t.Fatal("sf parts wrong")
	}
}

func TestParseFactorErrors(t *testing.T) {
	bad := []string{
		"nope", "crown2", "crownx", "biclique3", "biclique3x", "bicliqueAxB",
		"cycle5", "cycle3", "cyclex", "path1", "star1", "hypercube0",
		"hypercube99", "sf3x4", "sfAxBxC",
	}
	for _, s := range bad {
		if _, err := ParseFactor(s, 1); err == nil {
			t.Fatalf("accepted bad spec %q", s)
		}
	}
}

func TestBuildModes(t *testing.T) {
	p, err := Spec{Factor: "crown4", Mode: ModeSelfLoop, Seed: 1}.Build()
	if err != nil {
		t.Fatalf("Build selfloop: %v", err)
	}
	if p.Mode() != core.ModeSelfLoopFactor {
		t.Errorf("mode = %v, want self-loop", p.Mode())
	}
	p, err = Spec{Factor: "crown4", Mode: ModeNonBip, Seed: 1}.Build()
	if err != nil {
		t.Fatalf("Build nonbip: %v", err)
	}
	if p.Mode() != core.ModeNonBipartiteFactor {
		t.Errorf("mode = %v, want non-bipartite", p.Mode())
	}
	if _, err := (Spec{Factor: "crown4", Mode: "bogus", Seed: 1}).Build(); err == nil {
		t.Error("bogus mode: want error")
	}
	if _, err := (Spec{Factor: "nope", Mode: ModeSelfLoop, Seed: 1}).Build(); err == nil {
		t.Error("bogus factor: want error")
	}
}

func TestCanonicalRoundTrip(t *testing.T) {
	specs := []Spec{
		{},
		{Factor: "crown4"},
		{Factor: "unicode", Mode: ModeSelfLoop, Seed: 2020},
		{Factor: "sf20x30x50", Mode: ModeNonBip, Seed: -7},
		{Factor: "biclique3x5", Mode: ModeSelfLoop, Seed: 0},
	}
	for _, s := range specs {
		got, err := Parse(s.Canonical())
		if err != nil {
			t.Fatalf("Parse(%q): %v", s.Canonical(), err)
		}
		// Round-tripping is defined up to defaulting: the canonical
		// form always spells out every field.
		if got != s.WithDefaults() {
			t.Errorf("Parse(Canonical(%+v)) = %+v, want %+v", s, got, s.WithDefaults())
		}
		if got.Canonical() != s.Canonical() {
			t.Errorf("canonical not stable: %q vs %q", got.Canonical(), s.Canonical())
		}
	}
}

func TestParseDefaultsAndOrder(t *testing.T) {
	got, err := Parse("seed=7 factor=crown4")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	want := Spec{Factor: "crown4", Mode: ModeSelfLoop, Seed: 7}
	if got != want {
		t.Errorf("got %+v, want %+v", got, want)
	}
	got, err = Parse("")
	if err != nil {
		t.Fatalf("Parse(empty): %v", err)
	}
	if got != (Spec{Factor: DefaultFactor, Mode: DefaultMode, Seed: DefaultSeed}) {
		t.Errorf("empty spec did not default: %+v", got)
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{"factor", "factor=a factor=b", "seed=xyz", "color=blue"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q): want error", bad)
		}
	}
}

// TestCLIAndWireAgree is the anti-drift check the refactor exists for:
// the same triple resolved through the canonical string (the serve
// cache-key path) and directly (the CLI path) must name identical
// products.
func TestCLIAndWireAgree(t *testing.T) {
	direct := Spec{Factor: "crown5", Mode: ModeSelfLoop, Seed: 11}
	viaWire, err := Parse(direct.Canonical())
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	pd, err := direct.Build()
	if err != nil {
		t.Fatalf("Build(direct): %v", err)
	}
	pw, err := viaWire.Build()
	if err != nil {
		t.Fatalf("Build(wire): %v", err)
	}
	if pd.N() != pw.N() || pd.NumEdges() != pw.NumEdges() || pd.GlobalFourCycles() != pw.GlobalFourCycles() {
		t.Errorf("products differ: (%d,%d,%d) vs (%d,%d,%d)",
			pd.N(), pd.NumEdges(), pd.GlobalFourCycles(),
			pw.N(), pw.NumEdges(), pw.GlobalFourCycles())
	}
}
