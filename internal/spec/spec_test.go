package spec

import (
	"reflect"
	"strings"
	"testing"

	"kronbip/internal/core"
)

func TestParseFactorSpecs(t *testing.T) {
	cases := []struct {
		spec   string
		nu, nw int
		edges  int
	}{
		{"crown4", 4, 4, 12},
		{"biclique3x5", 3, 5, 15},
		{"cycle6", 3, 3, 6},
		{"path5", 3, 2, 4},
		{"star4", 1, 3, 3},
		{"hypercube3", 4, 4, 12},
		{"unicode", 254, 614, 1256},
	}
	for _, tc := range cases {
		t.Run(tc.spec, func(t *testing.T) {
			b, err := ParseFactor(tc.spec, 2020)
			if err != nil {
				t.Fatal(err)
			}
			if b.NU() != tc.nu || b.NW() != tc.nw {
				t.Fatalf("parts %d/%d, want %d/%d", b.NU(), b.NW(), tc.nu, tc.nw)
			}
			if b.NumEdges() != tc.edges {
				t.Fatalf("edges = %d, want %d", b.NumEdges(), tc.edges)
			}
		})
	}
	// Scale-free spec shape.
	sf, err := ParseFactor("sf20x30x50", 1)
	if err != nil {
		t.Fatal(err)
	}
	if sf.NU() != 20 || sf.NW() != 30 {
		t.Fatal("sf parts wrong")
	}
}

func TestParseFactorErrors(t *testing.T) {
	bad := []string{
		"nope", "crown2", "crownx", "biclique3", "biclique3x", "bicliqueAxB",
		"cycle5", "cycle3", "cyclex", "path1", "star1", "hypercube0",
		"hypercube99", "sf3x4", "sfAxBxC",
		"product()", "product(crown4)", "product(crown4,)", "product(,path2)",
		"product(crown4,nope)", "product(nope,path2)", "product(crown4,path2,path3)",
	}
	for _, s := range bad {
		if _, err := ParseFactor(s, 1); err == nil {
			t.Fatalf("accepted bad spec %q", s)
		}
	}
}

// TestProductFactorComposite: product(<F1>,<F2>) materializes the
// self-loop product of its operands, so used as the first factor of a
// chain it is exactly the "(A⊗B1)⊗B2 grouped eagerly" spelling.
func TestProductFactorComposite(t *testing.T) {
	b, err := ParseFactor("product(crown4,path2)", 1)
	if err != nil {
		t.Fatal(err)
	}
	// The composite must equal the chain's own level: (crown4+I) ⊗ path2.
	inner, err := Spec{Factors: []string{"crown4", "path2"}, Mode: ModeSelfLoop, Seed: 1}.Build()
	if err != nil {
		t.Fatal(err)
	}
	// The spec chain for ["crown4","path2"] is ((crown4+I)⊗crown4 +I)⊗path2;
	// the composite is one level: (crown4+I)⊗path2.  Compare against the
	// direct core build instead.
	f1, _ := ParseFactor("crown4", 1)
	f2, _ := ParseFactor("path2", 1)
	direct, err := core.NewChainWithParts(f1.Graph, core.ModeSelfLoopFactor, f2)
	if err != nil {
		t.Fatal(err)
	}
	if b.N() != direct.N() || int64(b.NumEdges()) != direct.NumEdges() {
		t.Fatalf("composite shape (%d,%d), direct product (%d,%d)",
			b.N(), b.NumEdges(), direct.N(), direct.NumEdges())
	}
	if b.NU()+b.NW() != b.N() {
		t.Fatal("composite bipartition does not cover the graph")
	}
	_ = inner
	// Nested composites parse too.
	if _, err := ParseFactor("product(product(crown4,path2),path3)", 1); err != nil {
		t.Fatalf("nested product: %v", err)
	}
}

// TestGroupingChangesSpec: the regrouped chain and the flat chain are
// different objects with different canonical strings (the serve cache
// must never conflate them).
func TestGroupingChangesSpec(t *testing.T) {
	flat := Spec{Factors: []string{"crown4", "path2", "path3"}, Mode: ModeSelfLoop, Seed: 1}
	grouped := Spec{Factors: []string{"product(crown4,path2)", "path3"}, Mode: ModeSelfLoop, Seed: 1}
	if flat.Canonical() == grouped.Canonical() {
		t.Fatalf("flat and grouped chains share a canonical form %q", flat.Canonical())
	}
	pf, err := flat.Build()
	if err != nil {
		t.Fatal(err)
	}
	pg, err := grouped.Build()
	if err != nil {
		t.Fatal(err)
	}
	if pf.N() == pg.N() && pf.NumEdges() == pg.NumEdges() {
		t.Fatal("flat and grouped chains built indistinguishable products; grouping should matter")
	}
}

func TestBuildModes(t *testing.T) {
	p, err := Spec{Factors: []string{"crown4"}, Mode: ModeSelfLoop, Seed: 1}.Build()
	if err != nil {
		t.Fatalf("Build selfloop: %v", err)
	}
	if p.Mode() != core.ModeSelfLoopFactor {
		t.Errorf("mode = %v, want self-loop", p.Mode())
	}
	p, err = Spec{Factors: []string{"crown4"}, Mode: ModeNonBip, Seed: 1}.Build()
	if err != nil {
		t.Fatalf("Build nonbip: %v", err)
	}
	if p.Mode() != core.ModeNonBipartiteFactor {
		t.Errorf("mode = %v, want non-bipartite", p.Mode())
	}
	if _, err := (Spec{Factors: []string{"crown4"}, Mode: "bogus", Seed: 1}).Build(); err == nil {
		t.Error("bogus mode: want error")
	}
	if _, err := (Spec{Factors: []string{"nope"}, Mode: ModeSelfLoop, Seed: 1}).Build(); err == nil {
		t.Error("bogus factor: want error")
	}
}

func TestBuildChainArity(t *testing.T) {
	p, err := Spec{Factors: []string{"crown4", "path3", "path2"}, Mode: ModeSelfLoop, Seed: 1}.Build()
	if err != nil {
		t.Fatal(err)
	}
	// Self-loop chains pair the first factor with itself, then chain the
	// rest: arity = len(Factors) + 1.
	if p.Arity() != 4 {
		t.Fatalf("arity = %d, want 4", p.Arity())
	}
	if p.N() != 8*8*3*2 {
		t.Fatalf("N = %d, want %d", p.N(), 8*8*3*2)
	}
	p, err = Spec{Factors: []string{"crown4", "path3"}, Mode: ModeNonBip, Seed: 1}.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.Arity() != 3 {
		t.Fatalf("nonbip chain arity = %d, want 3", p.Arity())
	}
}

func TestCanonicalRoundTrip(t *testing.T) {
	specs := []Spec{
		{},
		{Factors: []string{"crown4"}},
		{Factors: []string{"unicode"}, Mode: ModeSelfLoop, Seed: 2020},
		{Factors: []string{"sf20x30x50"}, Mode: ModeNonBip, Seed: -7},
		{Factors: []string{"biclique3x5"}, Mode: ModeSelfLoop, Seed: 0},
		{Factors: []string{"crown4", "path3"}, Mode: ModeSelfLoop, Seed: 5},
		{Factors: []string{"crown4", "path3", "star4", "cycle6"}, Mode: ModeNonBip, Seed: 9},
		{Factors: []string{"product(crown4,path2)", "path3"}, Mode: ModeSelfLoop, Seed: 1},
	}
	for _, s := range specs {
		got, err := Parse(s.Canonical())
		if err != nil {
			t.Fatalf("Parse(%q): %v", s.Canonical(), err)
		}
		// Round-tripping is defined up to defaulting: the canonical
		// form always spells out every field.
		if !reflect.DeepEqual(got, s.WithDefaults()) {
			t.Errorf("Parse(Canonical(%+v)) = %+v, want %+v", s, got, s.WithDefaults())
		}
		if got.Canonical() != s.Canonical() {
			t.Errorf("canonical not stable: %q vs %q", got.Canonical(), s.Canonical())
		}
	}
}

// TestFactorOrderSignificant: factor clauses are a chain, not a set —
// reordering them names a different product and a different key.
func TestFactorOrderSignificant(t *testing.T) {
	ab := Spec{Factors: []string{"crown4", "path3"}, Mode: ModeSelfLoop, Seed: 1}
	ba := Spec{Factors: []string{"path3", "crown4"}, Mode: ModeSelfLoop, Seed: 1}
	if ab.Canonical() == ba.Canonical() {
		t.Fatal("factor order lost in canonical form")
	}
	pab, err := ab.Build()
	if err != nil {
		t.Fatal(err)
	}
	pba, err := ba.Build()
	if err != nil {
		t.Fatal(err)
	}
	if pab.NumEdges() == pba.NumEdges() {
		t.Fatal("reordered chains built products with identical edge counts; expected different graphs")
	}
}

func TestParseDefaultsAndOrder(t *testing.T) {
	got, err := Parse("seed=7 factor=crown4")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	want := Spec{Factors: []string{"crown4"}, Mode: ModeSelfLoop, Seed: 7}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %+v, want %+v", got, want)
	}
	got, err = Parse("")
	if err != nil {
		t.Fatalf("Parse(empty): %v", err)
	}
	if !reflect.DeepEqual(got, Spec{Factors: []string{DefaultFactor}, Mode: DefaultMode, Seed: DefaultSeed}) {
		t.Errorf("empty spec did not default: %+v", got)
	}
	// Repeated factor clauses accumulate in order.
	got, err = Parse("factor=a factor=b factor=c")
	if err != nil {
		t.Fatalf("Parse(chain): %v", err)
	}
	if !reflect.DeepEqual(got.Factors, []string{"a", "b", "c"}) {
		t.Errorf("chain factors = %v", got.Factors)
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{"factor", "seed=xyz", "color=blue", "mode=a mode=b", "seed=1 seed=2"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q): want error", bad)
		}
	}
}

// TestCLIAndWireAgree is the anti-drift check the refactor exists for:
// the same spec resolved through the canonical string (the serve
// cache-key path) and directly (the CLI path) must name identical
// products — including chained ones.
func TestCLIAndWireAgree(t *testing.T) {
	for _, direct := range []Spec{
		{Factors: []string{"crown5"}, Mode: ModeSelfLoop, Seed: 11},
		{Factors: []string{"crown4", "path3", "path2"}, Mode: ModeSelfLoop, Seed: 11},
	} {
		viaWire, err := Parse(direct.Canonical())
		if err != nil {
			t.Fatalf("Parse: %v", err)
		}
		pd, err := direct.Build()
		if err != nil {
			t.Fatalf("Build(direct): %v", err)
		}
		pw, err := viaWire.Build()
		if err != nil {
			t.Fatalf("Build(wire): %v", err)
		}
		if pd.N() != pw.N() || pd.NumEdges() != pw.NumEdges() || pd.GlobalFourCycles() != pw.GlobalFourCycles() {
			t.Errorf("products differ: (%d,%d,%d) vs (%d,%d,%d)",
				pd.N(), pd.NumEdges(), pd.GlobalFourCycles(),
				pw.N(), pw.NumEdges(), pw.GlobalFourCycles())
		}
	}
}

// FuzzParseRoundTrip: for any input Parse accepts, Canonical must be a
// fixed point — parse(canonical(parse(x))) == parse(x) — and factor
// clauses must survive verbatim and in order.  The seed corpus spans
// every grammar feature (defaults, chains, composites, negative seeds).
func FuzzParseRoundTrip(f *testing.F) {
	seeds := []string{
		"",
		"factor=crown4",
		"factor=unicode mode=selfloop seed=2020",
		"factor=crown4 factor=path3 mode=nonbip seed=-7",
		"factor=crown4 factor=path3 factor=star4 factor=cycle6 mode=selfloop seed=9",
		"factor=product(crown4,path2) factor=path3 mode=selfloop seed=1",
		"factor=product(product(crown4,path2),path3) mode=selfloop seed=0",
		"seed=7 factor=crown4",
		"mode=nonbip",
		"factor=sf20x30x50 seed=123456789",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		s1, err := Parse(text)
		if err != nil {
			return // rejected inputs are out of scope
		}
		c1 := s1.Canonical()
		s2, err := Parse(c1)
		if err != nil {
			t.Fatalf("canonical form %q of accepted input %q does not re-parse: %v", c1, text, err)
		}
		if !reflect.DeepEqual(s1, s2) {
			t.Fatalf("round trip drifted: %+v vs %+v", s1, s2)
		}
		if c2 := s2.Canonical(); c1 != c2 {
			t.Fatalf("canonical not a fixed point: %q vs %q", c1, c2)
		}
		// Each input factor clause must appear in the canonical form.
		for _, fc := range s1.Factors {
			if !strings.Contains(c1, "factor="+fc+" ") {
				t.Fatalf("factor %q lost from canonical %q", fc, c1)
			}
		}
	})
}
