// Package spec is the canonical product-specification vocabulary shared
// by the command-line front ends and the HTTP service: a (factor, mode,
// seed) triple that deterministically names one Kronecker product.  Both
// the CLI flag surface and the serve request decoder resolve specs
// through this package, so the two paths cannot drift, and the canonical
// string form doubles as the factor-spec cache key in internal/serve.
package spec

import (
	"fmt"
	"strconv"
	"strings"

	"kronbip/internal/core"
	"kronbip/internal/gen"
	"kronbip/internal/graph"
)

// Product construction modes, as spelled on the CLI and the wire.
const (
	ModeSelfLoop = "selfloop" // Assumption 1(ii): (A+I_A) ⊗ B with A = B
	ModeNonBip   = "nonbip"   // Assumption 1(i): A ⊗ B with A a 5-cycle
)

// Defaults applied by WithDefaults (and by the serve decoder for absent
// request fields).  They match the historical CLI flag defaults.
const (
	DefaultFactor = "unicode"
	DefaultMode   = ModeSelfLoop
	DefaultSeed   = int64(2020)
)

// Spec names one product: a bipartite factor spec, a construction mode
// and the seed consumed by the randomized factors (unicode, sf).
type Spec struct {
	Factor string
	Mode   string
	Seed   int64
}

// WithDefaults fills empty Factor/Mode fields with the package defaults.
// Seed is kept as-is (zero is a legitimate seed); callers that decode
// from a wire format substitute DefaultSeed for an absent field.
func (s Spec) WithDefaults() Spec {
	if s.Factor == "" {
		s.Factor = DefaultFactor
	}
	if s.Mode == "" {
		s.Mode = DefaultMode
	}
	return s
}

// Canonical renders the spec (after defaulting) in its canonical string
// form, e.g. "factor=crown4 mode=selfloop seed=2020".  Equal products
// have equal canonical forms, so the string is a valid cache/dedupe key;
// Parse inverts it.
func (s Spec) Canonical() string {
	s = s.WithDefaults()
	return fmt.Sprintf("factor=%s mode=%s seed=%d", s.Factor, s.Mode, s.Seed)
}

// String returns the canonical form.
func (s Spec) String() string { return s.Canonical() }

// Parse inverts Canonical: it accepts space-separated key=value fields
// in any order (absent fields take the defaults) and rejects unknown
// keys, so Parse(s.Canonical()) round-trips every valid spec.
func Parse(text string) (Spec, error) {
	var s Spec
	seen := map[string]bool{}
	for _, field := range strings.Fields(text) {
		key, value, ok := strings.Cut(field, "=")
		if !ok {
			return Spec{}, fmt.Errorf("spec: bad field %q (want key=value)", field)
		}
		if seen[key] {
			return Spec{}, fmt.Errorf("spec: duplicate field %q", key)
		}
		seen[key] = true
		switch key {
		case "factor":
			s.Factor = value
		case "mode":
			s.Mode = value
		case "seed":
			seed, err := strconv.ParseInt(value, 10, 64)
			if err != nil {
				return Spec{}, fmt.Errorf("spec: bad seed %q", value)
			}
			s.Seed = seed
		default:
			return Spec{}, fmt.Errorf("spec: unknown field %q", key)
		}
	}
	if !seen["seed"] {
		s.Seed = DefaultSeed
	}
	return s.WithDefaults(), nil
}

// ParseFactor resolves a factor spec string into a bipartite factor
// graph.  Recognized specs: unicode, crown<N>, biclique<NU>x<NW>,
// cycle<N>, path<N>, star<N>, hypercube<D>, sf<NU>x<NW>x<EDGES>.
func ParseFactor(factorSpec string, seed int64) (*graph.Bipartite, error) {
	num := func(s string) (int, error) { return strconv.Atoi(s) }
	switch {
	case factorSpec == "unicode":
		return gen.UnicodeLike(seed), nil
	case strings.HasPrefix(factorSpec, "crown"):
		n, err := num(factorSpec[len("crown"):])
		if err != nil || n < 3 {
			return nil, fmt.Errorf("bad crown spec %q (want crown<N>, N>=3)", factorSpec)
		}
		return gen.Crown(n), nil
	case strings.HasPrefix(factorSpec, "biclique"):
		parts := strings.Split(factorSpec[len("biclique"):], "x")
		if len(parts) != 2 {
			return nil, fmt.Errorf("bad biclique spec %q (want biclique<NU>x<NW>)", factorSpec)
		}
		nu, err1 := num(parts[0])
		nw, err2 := num(parts[1])
		if err1 != nil || err2 != nil || nu < 1 || nw < 1 {
			return nil, fmt.Errorf("bad biclique spec %q", factorSpec)
		}
		return gen.CompleteBipartite(nu, nw), nil
	case strings.HasPrefix(factorSpec, "sf"):
		parts := strings.Split(factorSpec[len("sf"):], "x")
		if len(parts) != 3 {
			return nil, fmt.Errorf("bad scale-free spec %q (want sf<NU>x<NW>x<EDGES>)", factorSpec)
		}
		nu, err1 := num(parts[0])
		nw, err2 := num(parts[1])
		m, err3 := num(parts[2])
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("bad scale-free spec %q", factorSpec)
		}
		return gen.ConnectedBipartiteScaleFree(nu, nw, m, seed), nil
	case strings.HasPrefix(factorSpec, "cycle"):
		n, err := num(factorSpec[len("cycle"):])
		if err != nil || n < 4 || n%2 != 0 {
			return nil, fmt.Errorf("bad cycle spec %q (need even N >= 4 for a bipartite cycle)", factorSpec)
		}
		return graph.AsBipartite(gen.Cycle(n))
	case strings.HasPrefix(factorSpec, "path"):
		n, err := num(factorSpec[len("path"):])
		if err != nil || n < 2 {
			return nil, fmt.Errorf("bad path spec %q", factorSpec)
		}
		return graph.AsBipartite(gen.Path(n))
	case strings.HasPrefix(factorSpec, "star"):
		n, err := num(factorSpec[len("star"):])
		if err != nil || n < 2 {
			return nil, fmt.Errorf("bad star spec %q", factorSpec)
		}
		return graph.AsBipartite(gen.Star(n))
	case strings.HasPrefix(factorSpec, "hypercube"):
		d, err := num(factorSpec[len("hypercube"):])
		if err != nil || d < 1 || d > 16 {
			return nil, fmt.Errorf("bad hypercube spec %q", factorSpec)
		}
		return graph.AsBipartite(gen.Hypercube(d))
	default:
		return nil, fmt.Errorf("unknown factor %q", factorSpec)
	}
}

// Build assembles the product the spec names, preferring the strict
// constructor (which certifies Thm. 1/2 connectivity and unlocks the
// distance ground truth) and falling back to the relaxed one for
// disconnected factors like the unicode network.
func (s Spec) Build() (*core.Product, error) {
	s = s.WithDefaults()
	b, err := ParseFactor(s.Factor, s.Seed)
	if err != nil {
		return nil, err
	}
	var a *graph.Graph
	var m core.Mode
	switch s.Mode {
	case ModeSelfLoop:
		a, m = b.Graph, core.ModeSelfLoopFactor
	case ModeNonBip:
		a, m = gen.Cycle(5), core.ModeNonBipartiteFactor
	default:
		return nil, fmt.Errorf("unknown mode %q (want %s or %s)", s.Mode, ModeSelfLoop, ModeNonBip)
	}
	if p, err := core.NewWithParts(a, b, m); err == nil {
		return p, nil
	}
	return core.NewRelaxedWithParts(a, b, m)
}
