// Package spec is the canonical product-specification vocabulary shared
// by the command-line front ends and the HTTP service: a (factor chain,
// mode, seed) triple that deterministically names one Kronecker product.
// Both the CLI flag surface and the serve request decoder resolve specs
// through this package, so the two paths cannot drift, and the canonical
// string form doubles as the factor-spec cache key in internal/serve.
package spec

import (
	"fmt"
	"strconv"
	"strings"

	"kronbip/internal/core"
	"kronbip/internal/gen"
	"kronbip/internal/graph"
)

// Product construction modes, as spelled on the CLI and the wire.
const (
	ModeSelfLoop = "selfloop" // Assumption 1(ii): (A+I_A) ⊗ B₁ with A = B₁
	ModeNonBip   = "nonbip"   // Assumption 1(i): A ⊗ B₁ with A a 5-cycle
)

// Defaults applied by WithDefaults (and by the serve decoder for absent
// request fields).  They match the historical CLI flag defaults.
const (
	DefaultFactor = "unicode"
	DefaultMode   = ModeSelfLoop
	DefaultSeed   = int64(2020)
)

// Spec names one product: an ordered chain of bipartite factor specs, a
// construction mode and the seed consumed by the randomized factors
// (unicode, sf).  One factor is the historical two-factor product; each
// additional factor chains one more Kronecker level onto it,
//
//	C₁ = M₀ ⊗ B₁,   C_t = (C_{t-1} + I) ⊗ B_t,
//
// with M₀ = B₁+I (selfloop mode) or a 5-cycle (nonbip mode).
type Spec struct {
	Factors []string
	Mode    string
	Seed    int64
}

// WithDefaults fills an empty factor chain / mode with the package
// defaults.  Seed is kept as-is (zero is a legitimate seed); callers that
// decode from a wire format substitute DefaultSeed for an absent field.
func (s Spec) WithDefaults() Spec {
	if len(s.Factors) == 0 {
		s.Factors = []string{DefaultFactor}
	}
	if s.Mode == "" {
		s.Mode = DefaultMode
	}
	return s
}

// Canonical renders the spec (after defaulting) in its canonical string
// form — one factor= clause per chain level, in chain order, e.g.
// "factor=crown4 factor=path3 mode=selfloop seed=2020".  Equal products
// have equal canonical forms, so the string is a valid cache/dedupe key;
// Parse inverts it.  Note the factor list is ordered, not a set: chained
// Kronecker products do not commute, and a regrouped chain (a product(…)
// composite factor) canonicalizes differently from the flat chain with
// the same leaves.
func (s Spec) Canonical() string {
	s = s.WithDefaults()
	var b strings.Builder
	for _, f := range s.Factors {
		fmt.Fprintf(&b, "factor=%s ", f)
	}
	fmt.Fprintf(&b, "mode=%s seed=%d", s.Mode, s.Seed)
	return b.String()
}

// String returns the canonical form.
func (s Spec) String() string { return s.Canonical() }

// Parse inverts Canonical: it accepts space-separated key=value fields
// with any number of factor= clauses (order significant; absent fields
// take the defaults) and rejects unknown or non-repeatable duplicate
// keys, so Parse(s.Canonical()) round-trips every valid spec.
func Parse(text string) (Spec, error) {
	var s Spec
	seen := map[string]bool{}
	for _, field := range strings.Fields(text) {
		key, value, ok := strings.Cut(field, "=")
		if !ok {
			return Spec{}, fmt.Errorf("spec: bad field %q (want key=value)", field)
		}
		switch key {
		case "factor":
			// Repeatable: each occurrence appends one chain level.
			s.Factors = append(s.Factors, value)
			continue
		case "mode":
			s.Mode = value
		case "seed":
			seed, err := strconv.ParseInt(value, 10, 64)
			if err != nil {
				return Spec{}, fmt.Errorf("spec: bad seed %q", value)
			}
			s.Seed = seed
		default:
			return Spec{}, fmt.Errorf("spec: unknown field %q", key)
		}
		if seen[key] {
			return Spec{}, fmt.Errorf("spec: duplicate field %q", key)
		}
		seen[key] = true
	}
	if !seen["seed"] {
		s.Seed = DefaultSeed
	}
	return s.WithDefaults(), nil
}

// ParseFactor resolves a factor spec string into a bipartite factor
// graph.  Recognized specs: unicode, crown<N>, biclique<NU>x<NW>,
// cycle<N>, path<N>, star<N>, hypercube<D>, sf<NU>x<NW>x<EDGES>, and the
// composite product(<F1>,<F2>) — the materialized self-loop product of
// two factor specs, usable anywhere a leaf factor is.  The composite is
// how a regrouped chain is spelled: "factor=product(crown4,path2)
// factor=path3" names ((crown4 ∘ path2) ∘ path3) with the inner product
// built eagerly, which is a different object — and a different canonical
// string — than the flat three-level chain.
func ParseFactor(factorSpec string, seed int64) (*graph.Bipartite, error) {
	num := func(s string) (int, error) { return strconv.Atoi(s) }
	switch {
	case factorSpec == "unicode":
		return gen.UnicodeLike(seed), nil
	case strings.HasPrefix(factorSpec, "product(") && strings.HasSuffix(factorSpec, ")"):
		return parseProductFactor(factorSpec, seed)
	case strings.HasPrefix(factorSpec, "crown"):
		n, err := num(factorSpec[len("crown"):])
		if err != nil || n < 3 {
			return nil, fmt.Errorf("bad crown spec %q (want crown<N>, N>=3)", factorSpec)
		}
		return gen.Crown(n), nil
	case strings.HasPrefix(factorSpec, "biclique"):
		parts := strings.Split(factorSpec[len("biclique"):], "x")
		if len(parts) != 2 {
			return nil, fmt.Errorf("bad biclique spec %q (want biclique<NU>x<NW>)", factorSpec)
		}
		nu, err1 := num(parts[0])
		nw, err2 := num(parts[1])
		if err1 != nil || err2 != nil || nu < 1 || nw < 1 {
			return nil, fmt.Errorf("bad biclique spec %q", factorSpec)
		}
		return gen.CompleteBipartite(nu, nw), nil
	case strings.HasPrefix(factorSpec, "sf"):
		parts := strings.Split(factorSpec[len("sf"):], "x")
		if len(parts) != 3 {
			return nil, fmt.Errorf("bad scale-free spec %q (want sf<NU>x<NW>x<EDGES>)", factorSpec)
		}
		nu, err1 := num(parts[0])
		nw, err2 := num(parts[1])
		m, err3 := num(parts[2])
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("bad scale-free spec %q", factorSpec)
		}
		return gen.ConnectedBipartiteScaleFree(nu, nw, m, seed), nil
	case strings.HasPrefix(factorSpec, "cycle"):
		n, err := num(factorSpec[len("cycle"):])
		if err != nil || n < 4 || n%2 != 0 {
			return nil, fmt.Errorf("bad cycle spec %q (need even N >= 4 for a bipartite cycle)", factorSpec)
		}
		return graph.AsBipartite(gen.Cycle(n))
	case strings.HasPrefix(factorSpec, "path"):
		n, err := num(factorSpec[len("path"):])
		if err != nil || n < 2 {
			return nil, fmt.Errorf("bad path spec %q", factorSpec)
		}
		return graph.AsBipartite(gen.Path(n))
	case strings.HasPrefix(factorSpec, "star"):
		n, err := num(factorSpec[len("star"):])
		if err != nil || n < 2 {
			return nil, fmt.Errorf("bad star spec %q", factorSpec)
		}
		return graph.AsBipartite(gen.Star(n))
	case strings.HasPrefix(factorSpec, "hypercube"):
		d, err := num(factorSpec[len("hypercube"):])
		if err != nil || d < 1 || d > 16 {
			return nil, fmt.Errorf("bad hypercube spec %q", factorSpec)
		}
		return graph.AsBipartite(gen.Hypercube(d))
	default:
		return nil, fmt.Errorf("unknown factor %q", factorSpec)
	}
}

// splitTopLevel splits s on commas that are not nested inside
// parentheses, so product(product(a,b),c) resolves its own two operands.
func splitTopLevel(s string) []string {
	var parts []string
	depth, start := 0, 0
	for i, r := range s {
		switch r {
		case '(':
			depth++
		case ')':
			depth--
		case ',':
			if depth == 0 {
				parts = append(parts, s[start:i])
				start = i + 1
			}
		}
	}
	return append(parts, s[start:])
}

// parseProductFactor materializes product(<F1>,<F2>): the self-loop-mode
// product of the two (recursively parsed) operand factors, returned as an
// explicit bipartite graph whose sides come from the product's own
// ground-truth bipartition.  Strict construction is preferred; relaxed is
// the fallback for disconnected operands.
func parseProductFactor(factorSpec string, seed int64) (*graph.Bipartite, error) {
	inner := factorSpec[len("product(") : len(factorSpec)-1]
	ops := splitTopLevel(inner)
	if len(ops) != 2 || ops[0] == "" || ops[1] == "" {
		return nil, fmt.Errorf("bad product spec %q (want product(<F1>,<F2>))", factorSpec)
	}
	f1, err := ParseFactor(strings.TrimSpace(ops[0]), seed)
	if err != nil {
		return nil, fmt.Errorf("product operand 1: %w", err)
	}
	f2, err := ParseFactor(strings.TrimSpace(ops[1]), seed)
	if err != nil {
		return nil, fmt.Errorf("product operand 2: %w", err)
	}
	p, err := core.NewChainWithParts(f1.Graph, core.ModeSelfLoopFactor, f2)
	if err != nil {
		p, err = core.NewChainRelaxedWithParts(f1.Graph, core.ModeSelfLoopFactor, f2)
		if err != nil {
			return nil, fmt.Errorf("bad product spec %q: %w", factorSpec, err)
		}
	}
	g, err := p.Materialize(0)
	if err != nil {
		return nil, fmt.Errorf("materializing product factor %q: %w", factorSpec, err)
	}
	part := graph.Bipartition{Color: make([]graph.Side, p.N())}
	for v := 0; v < p.N(); v++ {
		side := p.SideOf(v)
		part.Color[v] = side
		if side == graph.SideU {
			part.U = append(part.U, v)
		} else {
			part.W = append(part.W, v)
		}
	}
	return &graph.Bipartite{Graph: g, Part: part}, nil
}

// BuildFactors resolves every factor clause of the (defaulted) spec, in
// chain order.  Exposed so front ends can report per-level factor shapes.
func (s Spec) BuildFactors() ([]*graph.Bipartite, error) {
	s = s.WithDefaults()
	bs := make([]*graph.Bipartite, len(s.Factors))
	for i, f := range s.Factors {
		b, err := ParseFactor(f, s.Seed)
		if err != nil {
			return nil, err
		}
		bs[i] = b
	}
	return bs, nil
}

// Build assembles the chained product the spec names, preferring the
// strict constructor (which certifies Thm. 1/2 connectivity per level and
// unlocks the distance ground truth) and falling back to the relaxed one
// for disconnected factors like the unicode network.
func (s Spec) Build() (*core.Product, error) {
	s = s.WithDefaults()
	bs, err := s.BuildFactors()
	if err != nil {
		return nil, err
	}
	var a *graph.Graph
	var m core.Mode
	switch s.Mode {
	case ModeSelfLoop:
		a, m = bs[0].Graph, core.ModeSelfLoopFactor
	case ModeNonBip:
		a, m = gen.Cycle(5), core.ModeNonBipartiteFactor
	default:
		return nil, fmt.Errorf("unknown mode %q (want %s or %s)", s.Mode, ModeSelfLoop, ModeNonBip)
	}
	if p, err := core.NewChainWithParts(a, m, bs...); err == nil {
		return p, nil
	}
	return core.NewChainRelaxedWithParts(a, m, bs...)
}
