package mmio

import (
	"bytes"
	"strings"
	"testing"

	"kronbip/internal/grb"
)

// FuzzReadMatrixMarket asserts the parser never panics and that anything it
// accepts round-trips through the writer.
func FuzzReadMatrixMarket(f *testing.F) {
	f.Add("%%MatrixMarket matrix coordinate integer general\n2 2 1\n1 2 7\n")
	f.Add("%%MatrixMarket matrix coordinate pattern symmetric\n3 3 2\n2 1\n3 1\n")
	f.Add("%%MatrixMarket matrix coordinate real general\n1 1 1\n1 1 3.5\n")
	f.Add("")
	f.Add("%%MatrixMarket matrix coordinate integer general\n-1 0 0\n")
	f.Add("%%MatrixMarket matrix coordinate integer general\n1 1 2\n1 1 1\n1 1 1\n")
	f.Fuzz(func(t *testing.T, in string) {
		m, err := ReadMatrixMarket(strings.NewReader(in))
		if err != nil {
			return // rejection is fine; panics are not
		}
		var buf bytes.Buffer
		if err := WriteMatrixMarket(&buf, m, false); err != nil {
			t.Fatalf("accepted matrix failed to write: %v", err)
		}
		back, err := ReadMatrixMarket(&buf)
		if err != nil {
			t.Fatalf("writer output rejected: %v", err)
		}
		if !grb.Equal(m, back) {
			t.Fatal("accepted matrix does not round-trip")
		}
	})
}

// FuzzReadEdgeList asserts the edge-list parser never panics.
func FuzzReadEdgeList(f *testing.F) {
	f.Add("0 1\n1 2\n", 3)
	f.Add("# c\n0\t1\n", 2)
	f.Add("0 0\n", 1)
	f.Add("x y\n", 2)
	f.Fuzz(func(t *testing.T, in string, n int) {
		if n < 0 || n > 1000 {
			return
		}
		g, err := ReadEdgeList(strings.NewReader(in), n)
		if err != nil {
			return
		}
		if g.N() != n {
			t.Fatalf("accepted graph has %d vertices, want %d", g.N(), n)
		}
	})
}
