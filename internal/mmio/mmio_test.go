package mmio

import (
	"bytes"
	"strings"
	"testing"

	"kronbip/internal/gen"
	"kronbip/internal/grb"
)

func TestMatrixMarketRoundTripInteger(t *testing.T) {
	m, _ := grb.FromDense([][]int64{{0, 3, 0}, {1, 0, 2}, {0, 0, 7}})
	var buf bytes.Buffer
	if err := WriteMatrixMarket(&buf, m, false); err != nil {
		t.Fatal(err)
	}
	back, err := ReadMatrixMarket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !grb.Equal(m, back) {
		t.Fatal("integer round trip mismatch")
	}
}

func TestMatrixMarketRoundTripPattern(t *testing.T) {
	g := gen.Petersen()
	var buf bytes.Buffer
	if err := WriteMatrixMarket(&buf, g.Adjacency(), true); err != nil {
		t.Fatal(err)
	}
	back, err := ReadMatrixMarket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !grb.Equal(g.Adjacency(), back) {
		t.Fatal("pattern round trip mismatch")
	}
}

func TestMatrixMarketSymmetric(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate integer symmetric
% lower triangle only
3 3 2
2 1 5
3 2 4
`
	m, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 1) != 5 || m.At(1, 0) != 5 || m.At(2, 1) != 4 || m.At(1, 2) != 4 {
		t.Fatalf("symmetric mirror failed: %v", m.Dense())
	}
}

func TestMatrixMarketRealTruncates(t *testing.T) {
	in := "%%MatrixMarket matrix coordinate real general\n1 1 1\n1 1 2.9\n"
	m, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 0) != 2 {
		t.Fatalf("real truncation: got %d, want 2", m.At(0, 0))
	}
}

func TestMatrixMarketMalformed(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"empty", ""},
		{"bad header", "%%NotMatrixMarket\n1 1 0\n"},
		{"array format", "%%MatrixMarket matrix array integer general\n1 1\n"},
		{"bad field", "%%MatrixMarket matrix coordinate complex general\n1 1 0\n"},
		{"bad symmetry", "%%MatrixMarket matrix coordinate integer hermitian\n1 1 0\n"},
		{"missing size", "%%MatrixMarket matrix coordinate integer general\n"},
		{"short size", "%%MatrixMarket matrix coordinate integer general\n2 2\n"},
		{"bad size token", "%%MatrixMarket matrix coordinate integer general\nx 2 0\n"},
		{"negative size", "%%MatrixMarket matrix coordinate integer general\n-1 2 0\n"},
		{"short entry", "%%MatrixMarket matrix coordinate integer general\n2 2 1\n1\n"},
		{"bad row", "%%MatrixMarket matrix coordinate integer general\n2 2 1\nx 1 1\n"},
		{"bad col", "%%MatrixMarket matrix coordinate integer general\n2 2 1\n1 x 1\n"},
		{"bad value", "%%MatrixMarket matrix coordinate integer general\n2 2 1\n1 1 x\n"},
		{"row out of range", "%%MatrixMarket matrix coordinate integer general\n2 2 1\n3 1 1\n"},
		{"zero index", "%%MatrixMarket matrix coordinate integer general\n2 2 1\n0 1 1\n"},
		{"nnz mismatch", "%%MatrixMarket matrix coordinate integer general\n2 2 2\n1 1 1\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadMatrixMarket(strings.NewReader(tc.in)); err == nil {
				t.Fatalf("accepted malformed input %q", tc.in)
			}
		})
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := gen.Cycle(8)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadEdgeList(&buf, 8)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumEdges() != g.NumEdges() {
		t.Fatalf("edge count %d, want %d", back.NumEdges(), g.NumEdges())
	}
	for _, e := range g.Edges() {
		if !back.HasEdge(e.U, e.V) {
			t.Fatalf("edge %v lost in round trip", e)
		}
	}
}

func TestEdgeListCommentsAndErrors(t *testing.T) {
	in := "# comment\n% other comment\n0 1\n\n1 2\n"
	g, err := ReadEdgeList(strings.NewReader(in), 3)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Fatalf("edges = %d, want 2", g.NumEdges())
	}
	for _, bad := range []string{"0\n", "x 1\n", "0 y\n", "0 99\n"} {
		if _, err := ReadEdgeList(strings.NewReader(bad), 3); err == nil {
			t.Fatalf("accepted malformed edge list %q", bad)
		}
	}
}

func TestReadKonectBipartite(t *testing.T) {
	in := `% bip unweighted
% 4 3 5
1 1
1 2
2 5 3 1234567
3 4
`
	b, err := ReadKonectBipartite(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if b.NU() != 3 || b.NW() != 5 {
		t.Fatalf("parts %d/%d, want 3/5 from the size header", b.NU(), b.NW())
	}
	if b.NumEdges() != 4 {
		t.Fatalf("edges = %d, want 4", b.NumEdges())
	}
	if !b.HasEdge(0, 3) || !b.HasEdge(1, 3+4) {
		t.Fatal("edges not at bipartite block offsets")
	}
}

func TestReadKonectBipartiteNoHeader(t *testing.T) {
	// Without a size header, part sizes come from the max ids; duplicates
	// collapse.
	in := "2 3\n2 3\n1 1\n"
	b, err := ReadKonectBipartite(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if b.NU() != 2 || b.NW() != 3 || b.NumEdges() != 2 {
		t.Fatalf("got |U|=%d |W|=%d m=%d", b.NU(), b.NW(), b.NumEdges())
	}
}

func TestReadKonectBipartiteMalformed(t *testing.T) {
	cases := []string{
		"",               // no edges
		"1\n",            // too few fields
		"x 1\n",          // bad id
		"1 y\n",          // bad id
		"0 1\n",          // zero-based id
		"-1 2\n",         // negative id
		"% 1 1 1\n2 1\n", // size header smaller than data
	}
	for _, in := range cases {
		if _, err := ReadKonectBipartite(strings.NewReader(in)); err == nil {
			t.Fatalf("accepted malformed konect input %q", in)
		}
	}
}

func TestWriteSeriesTSV(t *testing.T) {
	var buf bytes.Buffer
	err := WriteSeriesTSV(&buf,
		Series{Name: "deg", Values: []float64{1, 2, 3}},
		Series{Name: "squares", Values: []float64{0.5, 4}},
	)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines, want 4:\n%s", len(lines), buf.String())
	}
	if lines[0] != "deg\tsquares" {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[1] != "1\t0.5" || lines[3] != "3\t" {
		t.Fatalf("rows wrong:\n%s", buf.String())
	}
}
