// Package mmio reads and writes MatrixMarket coordinate files, plain TSV
// edge lists, and the TSV series files the experiment harness emits for
// the paper's figures.  MatrixMarket is the lingua franca of the sparse
// collections (SuiteSparse, Konect) the paper draws factors from.
package mmio

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"kronbip/internal/graph"
	"kronbip/internal/grb"
)

// WriteMatrixMarket writes m in MatrixMarket coordinate format with 1-based
// indices.  With pattern=true only coordinates are written (all values
// taken as 1); otherwise integer values are included.  Symmetry is not
// exploited: the general format is always used, which round-trips every
// grb.Matrix faithfully.
func WriteMatrixMarket(w io.Writer, m *grb.Matrix[int64], pattern bool) error {
	bw := bufio.NewWriter(w)
	field := "integer"
	if pattern {
		field = "pattern"
	}
	if _, err := fmt.Fprintf(bw, "%%%%MatrixMarket matrix coordinate %s general\n", field); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(bw, "%d %d %d\n", m.NRows(), m.NCols(), m.NNZ()); err != nil {
		return err
	}
	var werr error
	m.Iterate(func(i, j int, v int64) bool {
		if pattern {
			_, werr = fmt.Fprintf(bw, "%d %d\n", i+1, j+1)
		} else {
			_, werr = fmt.Fprintf(bw, "%d %d %d\n", i+1, j+1, v)
		}
		return werr == nil
	})
	if werr != nil {
		return werr
	}
	return bw.Flush()
}

// ReadMatrixMarket parses a MatrixMarket coordinate file.  Supported
// qualifiers: integer/pattern/real fields (real values are truncated to
// int64), general/symmetric symmetry.  Symmetric entries are mirrored.
func ReadMatrixMarket(r io.Reader) (*grb.Matrix[int64], error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	if !sc.Scan() {
		return nil, fmt.Errorf("mmio: empty input")
	}
	header := strings.Fields(strings.ToLower(sc.Text()))
	if len(header) < 5 || header[0] != "%%matrixmarket" || header[1] != "matrix" || header[2] != "coordinate" {
		return nil, fmt.Errorf("mmio: unsupported header %q", sc.Text())
	}
	field, symmetry := header[3], header[4]
	switch field {
	case "integer", "pattern", "real":
	default:
		return nil, fmt.Errorf("mmio: unsupported field type %q", field)
	}
	switch symmetry {
	case "general", "symmetric":
	default:
		return nil, fmt.Errorf("mmio: unsupported symmetry %q", symmetry)
	}

	// Skip comments, find the size line.
	var sizeLine string
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		sizeLine = line
		break
	}
	if sizeLine == "" {
		return nil, fmt.Errorf("mmio: missing size line")
	}
	dims := strings.Fields(sizeLine)
	if len(dims) != 3 {
		return nil, fmt.Errorf("mmio: malformed size line %q", sizeLine)
	}
	nr, err := strconv.Atoi(dims[0])
	if err != nil {
		return nil, fmt.Errorf("mmio: bad row count: %w", err)
	}
	nc, err := strconv.Atoi(dims[1])
	if err != nil {
		return nil, fmt.Errorf("mmio: bad column count: %w", err)
	}
	nnz, err := strconv.Atoi(dims[2])
	if err != nil {
		return nil, fmt.Errorf("mmio: bad nnz count: %w", err)
	}
	if nr < 0 || nc < 0 || nnz < 0 {
		return nil, fmt.Errorf("mmio: negative dimensions in size line %q", sizeLine)
	}

	b := grb.NewBuilder[int64](nr, nc)
	read := 0
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		f := strings.Fields(line)
		wantFields := 3
		if field == "pattern" {
			wantFields = 2
		}
		if len(f) < wantFields {
			return nil, fmt.Errorf("mmio: entry %d: malformed line %q", read+1, line)
		}
		i, err := strconv.Atoi(f[0])
		if err != nil {
			return nil, fmt.Errorf("mmio: entry %d: bad row index: %w", read+1, err)
		}
		j, err := strconv.Atoi(f[1])
		if err != nil {
			return nil, fmt.Errorf("mmio: entry %d: bad column index: %w", read+1, err)
		}
		if i < 1 || i > nr || j < 1 || j > nc {
			return nil, fmt.Errorf("mmio: entry %d: index (%d,%d) outside %dx%d", read+1, i, j, nr, nc)
		}
		v := int64(1)
		if field != "pattern" {
			fv, err := strconv.ParseFloat(f[2], 64)
			if err != nil {
				return nil, fmt.Errorf("mmio: entry %d: bad value: %w", read+1, err)
			}
			v = int64(fv)
		}
		b.Add(i-1, j-1, v)
		if symmetry == "symmetric" && i != j {
			b.Add(j-1, i-1, v)
		}
		read++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if read != nnz {
		return nil, fmt.Errorf("mmio: size line promised %d entries, found %d", nnz, read)
	}
	return b.Build()
}

// WriteEdgeList writes one "u<TAB>v" line per undirected edge (u <= v).
func WriteEdgeList(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriter(w)
	var werr error
	g.EachEdge(func(u, v int) bool {
		_, werr = fmt.Fprintf(bw, "%d\t%d\n", u, v)
		return werr == nil
	})
	if werr != nil {
		return werr
	}
	return bw.Flush()
}

// ReadEdgeList parses whitespace-separated vertex pairs into a graph on n
// vertices.  Lines starting with '#' or '%' are comments.
func ReadEdgeList(r io.Reader, n int) (*graph.Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var edges []graph.Edge
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "%") {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 2 {
			return nil, fmt.Errorf("mmio: line %d: want two vertex ids, got %q", lineNo, line)
		}
		u, err := strconv.Atoi(f[0])
		if err != nil {
			return nil, fmt.Errorf("mmio: line %d: %w", lineNo, err)
		}
		v, err := strconv.Atoi(f[1])
		if err != nil {
			return nil, fmt.Errorf("mmio: line %d: %w", lineNo, err)
		}
		edges = append(edges, graph.Edge{U: u, V: v})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return graph.New(n, edges)
}

// Series is a named column of numbers destined for a figure.
type Series struct {
	Name   string
	Values []float64
}

// WriteSeriesTSV writes aligned columns with a header row; shorter columns
// are padded with empty cells.  This is the data-exchange format for the
// Fig. 5 scatter reproduction.
func WriteSeriesTSV(w io.Writer, series ...Series) error {
	bw := bufio.NewWriter(w)
	maxLen := 0
	for i, s := range series {
		if i > 0 {
			if _, err := fmt.Fprint(bw, "\t"); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprint(bw, s.Name); err != nil {
			return err
		}
		if len(s.Values) > maxLen {
			maxLen = len(s.Values)
		}
	}
	if _, err := fmt.Fprintln(bw); err != nil {
		return err
	}
	for row := 0; row < maxLen; row++ {
		for i, s := range series {
			if i > 0 {
				if _, err := fmt.Fprint(bw, "\t"); err != nil {
					return err
				}
			}
			if row < len(s.Values) {
				if _, err := fmt.Fprintf(bw, "%g", s.Values[row]); err != nil {
					return err
				}
			}
		}
		if _, err := fmt.Fprintln(bw); err != nil {
			return err
		}
	}
	return bw.Flush()
}
