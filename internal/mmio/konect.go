package mmio

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"kronbip/internal/graph"
)

// ReadKonectBipartite parses a Konect `out.*` bipartite edge file — the
// format the paper's unicode language network ships in.  Lines starting
// with '%' are headers/comments; data lines are
//
//	<u> <w> [weight [timestamp]]
//
// with 1-based vertex ids numbered independently per side.  Weights and
// timestamps are ignored (the paper treats the network as an unweighted
// undirected bipartite graph); duplicate pairs collapse.  Part sizes are
// taken from the maximum ids unless the Konect size header
// "% <edges> <nu> <nw>" is present, in which case it wins (and is
// validated against the data).
func ReadKonectBipartite(r io.Reader) (*graph.Bipartite, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var pairs [][2]int
	maxU, maxW := 0, 0
	declaredNU, declaredNW := 0, 0
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "%") {
			// Optional size header: "% <m> <nu> <nw>".
			f := strings.Fields(strings.TrimLeft(line, "% "))
			if len(f) == 3 {
				if _, err := strconv.Atoi(f[0]); err == nil {
					nu, err1 := strconv.Atoi(f[1])
					nw, err2 := strconv.Atoi(f[2])
					if err1 == nil && err2 == nil {
						declaredNU, declaredNW = nu, nw
					}
				}
			}
			continue
		}
		f := strings.Fields(line)
		if len(f) < 2 {
			return nil, fmt.Errorf("mmio: konect line %d: want at least two ids, got %q", lineNo, line)
		}
		u, err := strconv.Atoi(f[0])
		if err != nil {
			return nil, fmt.Errorf("mmio: konect line %d: %w", lineNo, err)
		}
		w, err := strconv.Atoi(f[1])
		if err != nil {
			return nil, fmt.Errorf("mmio: konect line %d: %w", lineNo, err)
		}
		if u < 1 || w < 1 {
			return nil, fmt.Errorf("mmio: konect line %d: ids must be 1-based positive, got (%d,%d)", lineNo, u, w)
		}
		if u > maxU {
			maxU = u
		}
		if w > maxW {
			maxW = w
		}
		pairs = append(pairs, [2]int{u - 1, w - 1})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(pairs) == 0 {
		return nil, fmt.Errorf("mmio: konect input has no edges")
	}
	nu, nw := maxU, maxW
	if declaredNU > 0 {
		if declaredNU < maxU || declaredNW < maxW {
			return nil, fmt.Errorf("mmio: konect size header (%d,%d) smaller than observed ids (%d,%d)", declaredNU, declaredNW, maxU, maxW)
		}
		nu, nw = declaredNU, declaredNW
	}
	return graph.NewBipartite(nu, nw, pairs)
}
