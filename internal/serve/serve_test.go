package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"kronbip/internal/spec"
)

// testServer builds a Server + httptest wrapper with fast test defaults.
func testServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Workers == 0 {
		cfg.Workers = 2
	}
	if cfg.JobTimeout == 0 {
		cfg.JobTimeout = time.Minute
	}
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		_ = s.Shutdown(5 * time.Second)
	})
	return s, ts
}

func getJSON(t *testing.T, url string, v any) *http.Response {
	t.Helper()
	res, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer res.Body.Close()
	if v != nil {
		if err := json.NewDecoder(res.Body).Decode(v); err != nil {
			t.Fatalf("GET %s: decode: %v", url, err)
		}
	}
	return res
}

func submitJob(t *testing.T, baseURL, body string) (JobStatus, *http.Response) {
	t.Helper()
	res, err := http.Post(baseURL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/jobs: %v", err)
	}
	defer res.Body.Close()
	var st JobStatus
	if res.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(res.Body).Decode(&st); err != nil {
			t.Fatalf("decode job status: %v", err)
		}
	}
	return st, res
}

func waitState(t *testing.T, baseURL, id, want string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		var st JobStatus
		getJSON(t, baseURL+"/v1/jobs/"+id, &st)
		if st.State == want {
			return st
		}
		if st.State == "failed" && want != "failed" {
			t.Fatalf("job %s failed: %s", id, st.Error)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached state %q", id, want)
	return JobStatus{}
}

// TestHappyPath is the full walkthrough: submit → poll → stream → truth,
// with the streamed edge count matching the closed form.
func TestHappyPath(t *testing.T) {
	_, ts := testServer(t, Config{})
	st, res := submitJob(t, ts.URL, `{"factor":"crown4","mode":"selfloop","seed":1,"audit":true}`)
	if res.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", res.StatusCode)
	}
	if res.Header.Get("Location") != "/v1/jobs/"+st.ID {
		t.Errorf("Location = %q", res.Header.Get("Location"))
	}
	if res.Header.Get("Server") == "" {
		t.Error("no Server header")
	}

	final := waitState(t, ts.URL, st.ID, "done")
	if final.EdgesStreamed != final.NumEdges {
		t.Errorf("job streamed %d edges, closed form says %d", final.EdgesStreamed, final.NumEdges)
	}
	if final.AuditChecks == 0 || final.AuditViolations != 0 {
		t.Errorf("audit checks=%d violations=%d", final.AuditChecks, final.AuditViolations)
	}

	// Stream the edge list as TSV and count lines.
	res2, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/edges?format=tsv&audit=1")
	if err != nil {
		t.Fatal(err)
	}
	defer res2.Body.Close()
	lines := 0
	sc := bufio.NewScanner(res2.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if !strings.Contains(sc.Text(), "\t") {
			t.Fatalf("bad TSV line %q", sc.Text())
		}
		lines++
	}
	if sc.Err() != nil {
		t.Fatal(sc.Err())
	}
	if int64(lines) != final.NumEdges {
		t.Errorf("streamed %d lines, want %d", lines, final.NumEdges)
	}
	if got := res2.Trailer.Get(TrailerStatus); got != "complete" {
		t.Errorf("trailer status = %q", got)
	}
	if got := res2.Trailer.Get(TrailerEdges); got != fmt.Sprint(final.NumEdges) {
		t.Errorf("trailer edges = %q, want %d", got, final.NumEdges)
	}
	if got := res2.Trailer.Get(TrailerAuditViolations); got != "0" {
		t.Errorf("trailer audit violations = %q", got)
	}

	// /v1/truth must agree with the job's closed form.
	var truth struct {
		NumEdges         int64 `json:"num_edges"`
		GlobalFourCycles int64 `json:"global_four_cycles"`
	}
	getJSON(t, ts.URL+"/v1/truth?factor=crown4&mode=selfloop&seed=1", &truth)
	if truth.NumEdges != final.NumEdges {
		t.Errorf("truth num_edges=%d, job says %d", truth.NumEdges, final.NumEdges)
	}
	if truth.GlobalFourCycles != final.GlobalFourCycles {
		t.Errorf("truth four_cycles=%d, job says %d", truth.GlobalFourCycles, final.GlobalFourCycles)
	}
}

func TestNDJSONStreamAndVertexTruth(t *testing.T) {
	_, ts := testServer(t, Config{})
	st, res := submitJob(t, ts.URL, `{"factor":"biclique3x5","seed":3}`)
	if res.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", res.StatusCode)
	}
	waitState(t, ts.URL, st.ID, "done")
	res2, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/edges")
	if err != nil {
		t.Fatal(err)
	}
	defer res2.Body.Close()
	if ct := res2.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}
	var n int64
	var ev, ew int
	sc := bufio.NewScanner(res2.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var e struct{ V, W *int }
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil || e.V == nil || e.W == nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if n == 0 {
			ev, ew = *e.V, *e.W
		}
		n++
	}
	if n != st.NumEdges {
		t.Errorf("streamed %d NDJSON edges, want %d", n, st.NumEdges)
	}

	// Point-query truth for a vertex and for a real edge off the stream.
	var truth struct {
		Vertex *struct {
			Degree     int64 `json:"degree"`
			FourCycles int64 `json:"four_cycles"`
		} `json:"vertex"`
		Edge *struct {
			FourCycles int64 `json:"four_cycles"`
		} `json:"edge"`
	}
	url := fmt.Sprintf("%s/v1/truth?factor=biclique3x5&seed=3&vertex=%d&edge=%d,%d", ts.URL, ev, ev, ew)
	getJSON(t, url, &truth)
	if truth.Vertex == nil || truth.Vertex.Degree <= 0 {
		t.Errorf("vertex truth missing or degenerate: %+v", truth.Vertex)
	}
	if truth.Edge == nil {
		t.Error("edge truth missing for a streamed edge")
	}
}

func TestSaturationReturns429(t *testing.T) {
	block := make(chan struct{})
	s, ts := testServer(t, Config{Workers: 1, QueueDepth: 1})
	s.mgr.runHook = func(ctx context.Context, j *Job) error {
		select {
		case <-block:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	defer close(block)

	// First job occupies the single worker, second fills the queue.
	first, res := submitJob(t, ts.URL, `{"factor":"crown4"}`)
	if res.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit = %d", res.StatusCode)
	}
	waitState(t, ts.URL, first.ID, "running")
	if _, res = submitJob(t, ts.URL, `{"factor":"crown4"}`); res.StatusCode != http.StatusAccepted {
		t.Fatalf("second submit = %d", res.StatusCode)
	}
	// Third must bounce with backpressure.
	_, res = submitJob(t, ts.URL, `{"factor":"crown4"}`)
	if res.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated submit = %d, want 429", res.StatusCode)
	}
	if res.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
}

// TestRetryAfterSeconds pins the header arithmetic: round up to whole
// seconds, and never render 0 — a zero RetryAfter config (the zero
// value before defaults, or an explicit "no wait") must still tell
// clients to back off for at least a second.
func TestRetryAfterSeconds(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 1},
		{-time.Second, 1},
		{time.Millisecond, 1},
		{999 * time.Millisecond, 1},
		{time.Second, 1},
		{1001 * time.Millisecond, 2},
		{1500 * time.Millisecond, 2},
		{2 * time.Second, 2},
		{10 * time.Second, 10},
	}
	for _, c := range cases {
		if got := retryAfterSeconds(c.d); got != c.want {
			t.Errorf("retryAfterSeconds(%v) = %d, want %d", c.d, got, c.want)
		}
	}
}

// TestSaturated429NeverAdvertisesZeroWait: end to end, a server whose
// RetryAfter rounds to zero still sends Retry-After >= 1.
func TestSaturated429NeverAdvertisesZeroWait(t *testing.T) {
	block := make(chan struct{})
	s, ts := testServer(t, Config{Workers: 1, QueueDepth: 1, RetryAfter: time.Millisecond})
	s.mgr.runHook = func(ctx context.Context, j *Job) error {
		select {
		case <-block:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	defer close(block)
	first, res := submitJob(t, ts.URL, `{"factor":"crown4"}`)
	if res.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit = %d", res.StatusCode)
	}
	waitState(t, ts.URL, first.ID, "running")
	if _, res = submitJob(t, ts.URL, `{"factor":"crown4"}`); res.StatusCode != http.StatusAccepted {
		t.Fatalf("second submit = %d", res.StatusCode)
	}
	_, res = submitJob(t, ts.URL, `{"factor":"crown4"}`)
	if res.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated submit = %d, want 429", res.StatusCode)
	}
	secs, err := strconv.Atoi(res.Header.Get("Retry-After"))
	if err != nil || secs < 1 {
		t.Fatalf("Retry-After = %q, want an integer >= 1", res.Header.Get("Retry-After"))
	}
}

func TestOversizedSpecReturns413(t *testing.T) {
	_, ts := testServer(t, Config{MaxEdges: 100})
	_, res := submitJob(t, ts.URL, `{"factor":"unicode"}`) // |E_C| ≈ 4.8M >> 100
	if res.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized submit = %d, want 413", res.StatusCode)
	}
	// The admission estimate must not have queued anything.
	var list struct {
		Jobs []JobStatus `json:"jobs"`
	}
	getJSON(t, ts.URL+"/v1/jobs", &list)
	if len(list.Jobs) != 0 {
		t.Errorf("rejected job was retained: %+v", list.Jobs)
	}
}

// TestOversizedChainRejectedBeforeGeneration: admission control prices a
// k = 4 chain from the closed-form |E_C| recursion alone — the 413 must
// land without a single generation step running.
func TestOversizedChainRejectedBeforeGeneration(t *testing.T) {
	s, ts := testServer(t, Config{MaxEdges: 1000})
	s.mgr.runHook = func(ctx context.Context, j *Job) error {
		t.Error("generation started for an over-budget chain")
		return nil
	}
	// (crown4+I)⊗crown4 alone has 384 edges; each extra level multiplies
	// by ≈ 2·|E_B|, so the 4-factor chain is far past the 1000 budget.
	_, res := submitJob(t, ts.URL, `{"factors":["crown4","crown4","crown4","crown4"]}`)
	if res.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized chain submit = %d, want 413", res.StatusCode)
	}
	var list struct {
		Jobs []JobStatus `json:"jobs"`
	}
	getJSON(t, ts.URL+"/v1/jobs", &list)
	if len(list.Jobs) != 0 {
		t.Errorf("rejected chain job was retained: %+v", list.Jobs)
	}
}

// TestChainJobHappyPath: a chained spec end to end through the service —
// submit with "factors", audit online, stream, and cross-check against
// the /v1/truth chained query (repeated factor= params).
func TestChainJobHappyPath(t *testing.T) {
	_, ts := testServer(t, Config{})
	st, res := submitJob(t, ts.URL, `{"factors":["crown4","path3"],"mode":"selfloop","seed":1,"audit":true}`)
	if res.StatusCode != http.StatusAccepted {
		t.Fatalf("chain submit = %d", res.StatusCode)
	}
	final := waitState(t, ts.URL, st.ID, "done")
	if final.EdgesStreamed != final.NumEdges {
		t.Errorf("chain job streamed %d edges, closed form says %d", final.EdgesStreamed, final.NumEdges)
	}
	if final.AuditChecks == 0 || final.AuditViolations != 0 {
		t.Errorf("chain audit checks=%d violations=%d", final.AuditChecks, final.AuditViolations)
	}
	var truth struct {
		NumEdges int64 `json:"num_edges"`
		Vertex   *struct {
			Digits []int `json:"digits"`
		} `json:"vertex"`
	}
	getJSON(t, ts.URL+"/v1/truth?factor=crown4&factor=path3&mode=selfloop&seed=1&vertex=7", &truth)
	if truth.NumEdges != final.NumEdges {
		t.Errorf("chained truth num_edges=%d, job says %d", truth.NumEdges, final.NumEdges)
	}
	if truth.Vertex == nil || len(truth.Vertex.Digits) != 3 {
		t.Errorf("vertex truth digits = %+v, want a 3-digit tuple", truth.Vertex)
	}
}

func TestFactorAndFactorsMutuallyExclusive(t *testing.T) {
	_, ts := testServer(t, Config{})
	_, res := submitJob(t, ts.URL, `{"factor":"crown4","factors":["path3"]}`)
	if res.StatusCode != http.StatusBadRequest {
		t.Fatalf("submit with both factor and factors = %d, want 400", res.StatusCode)
	}
}

// TestCacheDistinguishesGroupings: chained Kronecker products do not
// reassociate — (A∘B₁)∘B₂ built eagerly via a product(…) composite is a
// different graph than the flat chain over the same leaves, and the
// spec-keyed cache must keep both as distinct entries.
func TestCacheDistinguishesGroupings(t *testing.T) {
	s, _ := testServer(t, Config{})
	flat := spec.Spec{Factors: []string{"crown4", "path2", "path3"}, Mode: "selfloop", Seed: 1}
	grouped := spec.Spec{Factors: []string{"product(crown4,path2)", "path3"}, Mode: "selfloop", Seed: 1}
	pf, err := s.cache.get(flat)
	if err != nil {
		t.Fatal(err)
	}
	pg, err := s.cache.get(grouped)
	if err != nil {
		t.Fatal(err)
	}
	if s.cache.len() != 2 {
		t.Fatalf("cache holds %d entries for flat vs grouped chain, want 2", s.cache.len())
	}
	if pf == pg {
		t.Fatal("cache returned one product for two groupings")
	}
	if pf.N() == pg.N() && pf.NumEdges() == pg.NumEdges() {
		t.Errorf("flat (%d,%d) and grouped (%d,%d) chains look identical; grouping must matter",
			pf.N(), pf.NumEdges(), pg.N(), pg.NumEdges())
	}
	// A repeat fetch of either is a hit, not a rebuild.
	if p2, err := s.cache.get(flat); err != nil || p2 != pf {
		t.Errorf("flat-chain refetch missed the cache (err=%v)", err)
	}
}

func TestCancelMidStream(t *testing.T) {
	release := make(chan struct{})
	s, ts := testServer(t, Config{})
	// Hold the job in its run hook so it is still running when the
	// DELETE lands — batched generation finishes real jobs faster than
	// the request round-trips, which would leave the job "done" (and
	// only the stream aborted) instead of exercising the
	// cancelled-while-running transition.
	s.mgr.runHook = func(ctx context.Context, j *Job) error {
		select {
		case <-release:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	defer close(release)
	// A sizeable spec so the stream is still in flight when we cancel:
	// sf factor squared ⇒ millions of edges.
	st, res := submitJob(t, ts.URL, `{"factor":"sf100x100x2000","seed":5}`)
	if res.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d", res.StatusCode)
	}
	res2, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/edges?format=tsv")
	if err != nil {
		t.Fatal(err)
	}
	defer res2.Body.Close()
	// Read a first chunk, then cancel the job mid-stream.
	buf := make([]byte, 4096)
	if _, err := io.ReadFull(res2.Body, buf); err != nil {
		t.Fatalf("first chunk: %v", err)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+st.ID, nil)
	if res3, err := http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	} else {
		res3.Body.Close()
	}
	// The stream must terminate without delivering the full edge set.
	n, _ := io.Copy(io.Discard, res2.Body)
	total := int64(len(buf)) + n
	if got := res2.Trailer.Get(TrailerStatus); got != "aborted" {
		// The race is legal: the stream may have finished before the
		// DELETE landed.  Only a completed stream may claim "complete".
		if got != "complete" {
			t.Errorf("trailer status = %q", got)
		}
		t.Skipf("stream finished before cancellation (%d bytes)", total)
	}
	waitState(t, ts.URL, st.ID, "cancelled")
}

func TestShutdownDrainsRunningJobs(t *testing.T) {
	release := make(chan struct{})
	s, ts := testServer(t, Config{Workers: 1, QueueDepth: 4})
	s.mgr.runHook = func(ctx context.Context, j *Job) error {
		select {
		case <-release:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	running, res := submitJob(t, ts.URL, `{"factor":"crown4"}`)
	if res.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d", res.StatusCode)
	}
	waitState(t, ts.URL, running.ID, "running")
	queued, res := submitJob(t, ts.URL, `{"factor":"crown4"}`)
	if res.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d", res.StatusCode)
	}

	// Release the hook shortly after shutdown begins, as a real
	// finishing job would.
	go func() {
		time.Sleep(50 * time.Millisecond)
		close(release)
	}()
	if err := s.Shutdown(5 * time.Second); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	// The running job drained to completion; the queued one was
	// cancelled without running.
	if st := running.ID; true {
		j, ok := s.mgr.get(st)
		if !ok {
			t.Fatal("running job evicted")
		}
		if got := j.Status().State; got != "done" {
			t.Errorf("running job state after drain = %q, want done", got)
		}
	}
	if j, ok := s.mgr.get(queued.ID); ok {
		if got := j.Status().State; got != "cancelled" {
			t.Errorf("queued job state after drain = %q, want cancelled", got)
		}
	}

	// Post-shutdown submissions are refused.
	_, res = submitJob(t, ts.URL, `{"factor":"crown4"}`)
	if res.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("post-shutdown submit = %d, want 503", res.StatusCode)
	}
}

func TestHealthzAndVersion(t *testing.T) {
	_, ts := testServer(t, Config{})
	var hz struct {
		Status  string `json:"status"`
		Version struct {
			Version string `json:"Version"`
			Go      string `json:"Go"`
		} `json:"version"`
	}
	res := getJSON(t, ts.URL+"/healthz", &hz)
	if hz.Status != "ok" {
		t.Errorf("status = %q", hz.Status)
	}
	if hz.Version.Version == "" || !strings.HasPrefix(hz.Version.Go, "go") {
		t.Errorf("version payload = %+v", hz.Version)
	}
	if got := res.Header.Get("Server"); !strings.HasPrefix(got, "kronbip/") {
		t.Errorf("Server header = %q", got)
	}
}

func TestMetricsExposed(t *testing.T) {
	_, ts := testServer(t, Config{})
	getJSON(t, ts.URL+"/healthz", nil)
	res, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	body, _ := io.ReadAll(res.Body)
	for _, want := range []string{"serve_http_requests", "serve_jobs_queue_depth"} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := testServer(t, Config{})
	cases := []struct {
		method, path, body string
		want               int
	}{
		{"GET", "/v1/truth?factor=wat", "", http.StatusBadRequest},
		{"GET", "/v1/truth?factor=crown4&vertex=99999999", "", http.StatusBadRequest},
		{"GET", "/v1/truth?factor=crown4&edge=zz", "", http.StatusBadRequest},
		{"GET", "/v1/stats?seed=abc", "", http.StatusBadRequest},
		{"GET", "/v1/jobs/nope", "", http.StatusNotFound},
		{"DELETE", "/v1/jobs/nope", "", http.StatusNotFound},
		{"GET", "/v1/jobs/nope/edges", "", http.StatusNotFound},
		{"POST", "/v1/jobs", `{"factor":`, http.StatusBadRequest},
		{"POST", "/v1/jobs", `{"mode":"bogus"}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		req, _ := http.NewRequest(tc.method, ts.URL+tc.path, strings.NewReader(tc.body))
		res, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("%s %s: %v", tc.method, tc.path, err)
		}
		res.Body.Close()
		if res.StatusCode != tc.want {
			t.Errorf("%s %s = %d, want %d", tc.method, tc.path, res.StatusCode, tc.want)
		}
	}
}

func TestCancelledJobEdgesConflict(t *testing.T) {
	block := make(chan struct{})
	s, ts := testServer(t, Config{Workers: 1})
	s.mgr.runHook = func(ctx context.Context, j *Job) error {
		select {
		case <-block:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	defer close(block)
	st, _ := submitJob(t, ts.URL, `{"factor":"crown4"}`)
	waitState(t, ts.URL, st.ID, "running")
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+st.ID, nil)
	res, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	waitState(t, ts.URL, st.ID, "cancelled")
	res2, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/edges")
	if err != nil {
		t.Fatal(err)
	}
	res2.Body.Close()
	if res2.StatusCode != http.StatusConflict {
		t.Errorf("edges of cancelled job = %d, want 409", res2.StatusCode)
	}
}
