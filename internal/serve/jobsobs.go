package serve

import (
	"net/http"
	"time"

	"kronbip/internal/obs/timeline"
)

// GET /v1/jobs/{id}/obs — the per-job observability view: the job's
// correlation identity, its throughput (edges per second over the run),
// and — when timeline recording is on — the job-lane events plus a
// straggler summary of the generation shards that ran inside the job's
// [started, finished] window.
//
// Shard attribution is by time window: core shard events carry no job
// identity (the generation engine is job-agnostic), so with concurrent
// jobs the shard summary can include a neighbour's shards.  The
// job-lane events and identity fields are always exact.

// jobObsResponse is the endpoint payload.
type jobObsResponse struct {
	ID              string  `json:"id"`
	State           string  `json:"state"`
	RequestID       string  `json:"request_id,omitempty"`
	TraceID         string  `json:"trace_id,omitempty"`
	EdgesStreamed   int64   `json:"edges_streamed"`
	RunSeconds      float64 `json:"run_seconds,omitempty"`
	EdgesPerSecond  float64 `json:"edges_per_second,omitempty"`
	TimelineEnabled bool    `json:"timeline_enabled"`

	Resources *jobObsResources `json:"resources,omitempty"`
	JobEvents []jobObsEvent    `json:"job_events,omitempty"`
	Shards    *jobObsShards    `json:"shards,omitempty"`
}

// jobObsResources is the per-job attribution snapshot — the exact
// per-job view behind the serve.job.* histograms.  CPU seconds and pool
// tasks are exact sums over the job's own shards (exec.Meter); the
// alloc deltas are process-wide brackets around the run, so concurrent
// jobs inflate each other's — AllocsApproximate flags that.
type jobObsResources struct {
	CPUSeconds        float64 `json:"cpu_seconds"`
	PoolTasks         int64   `json:"pool_tasks"`
	AllocBytes        int64   `json:"alloc_bytes"`
	Allocs            int64   `json:"allocs"`
	AllocsApproximate bool    `json:"allocs_approximate"`
}

// jobObsEvent is one event from the job's timeline lane.
type jobObsEvent struct {
	Name       string  `json:"name"`
	OK         bool    `json:"ok"`
	Start      string  `json:"start"`
	DurationMS float64 `json:"duration_ms"`
	Note       string  `json:"note,omitempty"`
}

// jobObsShards summarizes the generation shards attributed to the job.
type jobObsShards struct {
	Count          int     `json:"count"`
	Failed         int     `json:"failed"`
	P50MS          float64 `json:"p50_ms"`
	P99MS          float64 `json:"p99_ms"`
	MaxMS          float64 `json:"max_ms"`
	MeanMS         float64 `json:"mean_ms"`
	StragglerRatio float64 `json:"straggler_ratio"`
	Approximate    bool    `json:"approximate"` // window attribution, see package comment
}

func durMS(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

func (s *Server) handleJobObs(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobFromPath(w, r)
	if !ok {
		return
	}
	st := j.Status()
	resp := jobObsResponse{
		ID:              st.ID,
		State:           st.State,
		RequestID:       st.RequestID,
		TraceID:         st.TraceID,
		EdgesStreamed:   st.EdgesStreamed,
		RunSeconds:      st.RunSeconds,
		TimelineEnabled: timeline.Enabled(),
	}
	if st.RunSeconds > 0 {
		resp.EdgesPerSecond = float64(st.EdgesStreamed) / st.RunSeconds
	}
	if st.CPUSeconds > 0 || st.PoolTasks > 0 || st.AllocBytesApprox > 0 {
		resp.Resources = &jobObsResources{
			CPUSeconds:        st.CPUSeconds,
			PoolTasks:         st.PoolTasks,
			AllocBytes:        st.AllocBytesApprox,
			Allocs:            st.AllocsApprox,
			AllocsApproximate: true,
		}
	}
	if resp.TimelineEnabled {
		events, _ := timeline.Default.Snapshot()
		j.mu.Lock()
		started, finished := j.started, j.finished
		j.mu.Unlock()
		var shardEvents []timeline.Event
		for _, ev := range events {
			switch {
			case ev.Cat == timeline.CatJob && ev.ID == j.seq:
				resp.JobEvents = append(resp.JobEvents, jobObsEvent{
					Name:       ev.Name,
					OK:         ev.OK,
					Start:      ev.Start.UTC().Format(time.RFC3339Nano),
					DurationMS: durMS(ev.Dur),
					Note:       ev.Note,
				})
			case ev.Cat == timeline.CatShard && !started.IsZero():
				// Window attribution: the shard ran inside the job's
				// lifetime (an unfinished job's window is open-ended).
				end := ev.Start.Add(ev.Dur)
				if end.Before(started) {
					continue
				}
				if !finished.IsZero() && ev.Start.After(finished) {
					continue
				}
				shardEvents = append(shardEvents, ev)
			}
		}
		if len(shardEvents) > 0 {
			for _, g := range timeline.Stats(shardEvents) {
				if g.Cat != timeline.CatShard {
					continue
				}
				resp.Shards = &jobObsShards{
					Count:          g.Count,
					Failed:         g.Failed,
					P50MS:          durMS(g.P50),
					P99MS:          durMS(g.P99),
					MaxMS:          durMS(g.Max),
					MeanMS:         durMS(g.Mean),
					StragglerRatio: g.StragglerRatio,
					Approximate:    true,
				}
				break
			}
		}
	}
	writeJSON(w, http.StatusOK, resp)
}
