package serve

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"net/http"
	"strings"
	"sync/atomic"
)

// Request identity and trace propagation.  Every request gets a request
// id (accepted from X-Kronbip-Request-Id or generated) and a W3C trace
// context (traceparent accepted or generated, always re-signed with a
// fresh span id for this hop).  Both are echoed on the response, stamped
// on every access-log line, threaded into the job a submission creates,
// and — for edge streams — repeated as a trailer so a consumer that
// piped the body somewhere can still recover the correlation key at EOF.
//
// Identity generation is deliberately cheap (DESIGN.md §6a): one
// crypto/rand read at process start seeds a 16-hex process prefix, and
// each id after that is the prefix plus an atomic counter — no
// per-request crypto, no allocation beyond the string itself.

// Correlation header names.  HeaderTraceparent is the W3C trace-context
// header (https://www.w3.org/TR/trace-context/); HeaderRequestID is the
// service's own id, honored when the client supplies one.
const (
	HeaderRequestID   = "X-Kronbip-Request-Id"
	HeaderTraceparent = "Traceparent"
	// HeaderIdempotencyKey makes POST /v1/jobs retry-safe: a resubmission
	// carrying a key already bound to a job gets that job's status back
	// (200) instead of enqueueing a duplicate — the contract a dist-gen
	// coordinator relies on after a dropped response.  Keys share the
	// request-id charset/length allowlist (they land in logs the same
	// way).
	HeaderIdempotencyKey = "X-Kronbip-Idempotency-Key"
)

// procPrefix is the process-unique 16-hex identity prefix; reqSeq
// disambiguates requests within the process.
var (
	procPrefix = func() string {
		var b [8]byte
		if _, err := rand.Read(b[:]); err != nil {
			// crypto/rand failing is a broken platform; fall back to a
			// fixed prefix rather than refusing to serve.
			return "0000000000000000"
		}
		return hex.EncodeToString(b[:])
	}()
	reqSeq atomic.Uint64
)

// newRequestID returns a fresh request id: "req-<prefix>-<n>".
func newRequestID() string {
	return fmt.Sprintf("req-%s-%d", procPrefix, reqSeq.Add(1))
}

// newTraceID returns a fresh 32-hex W3C trace id (process prefix +
// counter half), unique per process without per-request crypto.
func newTraceID() string {
	return fmt.Sprintf("%s%016x", procPrefix, reqSeq.Add(1))
}

// newSpanID returns a fresh 16-hex W3C span id.
func newSpanID() string {
	return fmt.Sprintf("%016x", reqSeq.Add(1))
}

// requestInfo is the per-request correlation identity, carried on the
// request context from the middleware down to handlers and the job
// manager.
type requestInfo struct {
	id      string // request id (client-supplied or generated)
	traceID string // 32-hex W3C trace id
	spanID  string // this hop's 16-hex span id
}

// traceparent renders the info as an outgoing W3C traceparent value.
func (ri requestInfo) traceparent() string {
	return "00-" + ri.traceID + "-" + ri.spanID + "-01"
}

type requestInfoKey struct{}

// requestFrom extracts the correlation identity installed by
// withMiddleware; the zero value outside it (direct handler tests).
func requestFrom(ctx context.Context) requestInfo {
	ri, _ := ctx.Value(requestInfoKey{}).(requestInfo)
	return ri
}

// withRequestInfo installs the identity on a context.
func withRequestInfo(ctx context.Context, ri requestInfo) context.Context {
	return context.WithValue(ctx, requestInfoKey{}, ri)
}

// isHex reports whether s is exactly n lowercase hex digits.
func isHex(s string, n int) bool {
	if len(s) != n {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// parseTraceparent validates an incoming traceparent header per the W3C
// trace-context spec (version-traceid-spanid-flags) and returns the
// trace id it carries.  Invalid values are ignored — the middleware
// starts a fresh trace rather than propagating garbage.
func parseTraceparent(v string) (traceID string, ok bool) {
	parts := strings.Split(v, "-")
	if len(parts) < 4 {
		return "", false
	}
	ver, tid, sid, flags := parts[0], parts[1], parts[2], parts[3]
	if !isHex(ver, 2) || ver == "ff" {
		return "", false
	}
	if !isHex(tid, 32) || tid == strings.Repeat("0", 32) {
		return "", false
	}
	if !isHex(sid, 16) || sid == strings.Repeat("0", 16) {
		return "", false
	}
	if !isHex(flags, 2) {
		return "", false
	}
	return tid, true
}

// isSafeRequestID reports whether a client-supplied request id is
// accepted: 1..128 bytes, every byte in [A-Za-z0-9._:-].  The id lands
// verbatim in logfmt access-log lines, response headers, and the
// timeline journal/Chrome-trace export, so this is an allowlist, not a
// denylist — control bytes (terminal escapes, log injection) and
// invalid UTF-8 (which Go's %q renders as \x.. escapes that are not
// legal JSON string escapes) must never get through.
func isSafeRequestID(id string) bool {
	if id == "" || len(id) > 128 {
		return false
	}
	for i := 0; i < len(id); i++ {
		switch c := id[i]; {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == ':', c == '-':
		default:
			return false
		}
	}
	return true
}

// resolveIdentity builds the request's correlation identity: honor a
// client-supplied request id (allowlisted charset, bounded) and
// traceparent, generate what is missing, and always mint a fresh span
// id for this hop.
func resolveIdentity(r *http.Request) requestInfo {
	ri := requestInfo{spanID: newSpanID()}
	if id := r.Header.Get(HeaderRequestID); isSafeRequestID(id) {
		ri.id = id
	} else {
		ri.id = newRequestID()
	}
	if tid, ok := parseTraceparent(r.Header.Get(HeaderTraceparent)); ok {
		ri.traceID = tid
	} else {
		ri.traceID = newTraceID()
	}
	return ri
}

// routeLabel maps a request to its bounded metric label — the RED series
// cardinality contract.  Path parameters collapse (every job id is
// "jobs.get") and unknown paths collapse to "other", so a scanner
// spraying random URLs cannot grow the registry.
func routeLabel(r *http.Request) string {
	p := r.URL.Path
	switch {
	case p == "/healthz":
		return "healthz"
	case p == "/readyz":
		return "readyz"
	case p == "/metrics":
		return "metrics"
	case p == "/metrics.json":
		return "metrics.json"
	case p == "/debug/flightrecorder":
		return "debug.flight"
	case p == "/v1/stats":
		return "stats"
	case p == "/v1/truth":
		return "truth"
	case p == "/v1/leases":
		return "leases"
	case p == "/v1/jobs":
		if r.Method == http.MethodPost {
			return "jobs.submit"
		}
		return "jobs.list"
	case strings.HasPrefix(p, "/v1/jobs/"):
		// Match the full /v1/jobs/{id}[/edges|/obs] shape by segment
		// count, not by suffix: a job id literally named "edges" is a
		// jobs.get, and /v1/jobs/{id}/edges/extra (a 404) must not be
		// attributed to the jobs.edges series — suffix matching would
		// let such requests escape the SLO latency exclusion or borrow
		// a route they never reached.
		seg := strings.Split(p[len("/v1/jobs/"):], "/")
		switch {
		case len(seg) == 1 && seg[0] != "":
			if r.Method == http.MethodDelete {
				return "jobs.cancel"
			}
			return "jobs.get"
		case len(seg) == 2 && seg[0] != "" && seg[1] == "edges":
			return "jobs.edges"
		case len(seg) == 2 && seg[0] != "" && seg[1] == "obs":
			return "jobs.obs"
		default:
			return "other"
		}
	default:
		return "other"
	}
}

// isProbeRoute reports whether a route label is operational probe
// traffic — readiness/liveness polls and metrics scrapes.  Probe routes
// are excluded from the SLO's request/error/latency inputs: /readyz
// answers 503 during a burn, and feeding those 503s back into the
// windowed error rate would latch readiness down forever once a load
// balancer pulls real traffic (the window would hold nothing but
// failing probes).
func isProbeRoute(route string) bool {
	switch route {
	case "healthz", "readyz", "metrics", "metrics.json", "debug.flight":
		return true
	}
	return false
}

// routeLabels is the full route-label set, pre-resolved at server
// construction so the RED table never grows on the request path and the
// exported metric-name table is deterministic from the first scrape.
var routeLabels = []string{
	"healthz", "readyz", "metrics", "metrics.json", "debug.flight",
	"stats", "truth", "jobs.submit", "jobs.list", "jobs.get",
	"jobs.cancel", "jobs.edges", "jobs.obs", "leases", "other",
}
