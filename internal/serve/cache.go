package serve

import (
	"container/list"
	"sync"

	"kronbip/internal/core"
	"kronbip/internal/spec"
)

// productCache is an LRU of built products keyed by canonical factor
// spec.  A Product is exactly the paper's O(|E_C|^(1/2)) resident state
// — two tiny factors plus derived degree/two-walk vectors — so caching
// a few hundred of them is megabytes, yet a hit turns every /v1/truth
// and /v1/stats answer (and the admission-control edge estimate) into
// pure arithmetic with no factor construction.
//
// Products are immutable after construction apart from the internally
// synchronized lazy distance index, so one cached *core.Product is safe
// to share across concurrent requests and jobs.
type productCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used; values are *cacheEntry
	items map[string]*list.Element
}

type cacheEntry struct {
	key string
	p   *core.Product
}

func newProductCache(capacity int) *productCache {
	if capacity <= 0 {
		capacity = 128
	}
	return &productCache{cap: capacity, ll: list.New(), items: make(map[string]*list.Element)}
}

// get returns the product for sp, building and inserting it on a miss.
// The build runs outside the lock so a slow factor construction never
// blocks hits for other specs; two racing misses on the same key both
// build and the later insert wins, which is harmless because builds are
// deterministic.
func (c *productCache) get(sp spec.Spec) (*core.Product, error) {
	key := sp.Canonical()
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.mu.Unlock()
		mCacheHits.Inc()
		return el.Value.(*cacheEntry).p, nil
	}
	c.mu.Unlock()
	mCacheMisses.Inc()

	p, err := sp.Build()
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok { // racing miss inserted first
		c.ll.MoveToFront(el)
		return el.Value.(*cacheEntry).p, nil
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, p: p})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
	gCacheSize.Set(int64(c.ll.Len()))
	return p, nil
}

// len reports the resident entry count (tests).
func (c *productCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
