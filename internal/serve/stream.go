package serve

import (
	"bufio"
	"context"
	"net/http"
	"strconv"

	"kronbip/internal/audit"
	"kronbip/internal/exec"
)

// Streaming output: GET /v1/jobs/{id}/edges re-derives the job's edge
// list from the cached factor state — generation is deterministic, so
// the server never spools edges to disk; the O(|E_C|^(1/2)) product
// descriptor IS the stored result, and every stream request replays it.
//
// The response is chunked and flushed every streamFlushEdges edges so a
// consumer sees steady progress on multi-minute streams; trailers carry
// the completion status, the exact edge count and (with ?audit=1) the
// online auditor's verdict, because none of those are known when the
// header goes out.

// streamFlushEdges is the flush-on-batch interval: large enough to
// amortize the chunked-encoding and syscall cost, small enough that a
// slow consumer sees progress every few hundred KB.
const streamFlushEdges = 16384

// Trailer names for the streaming endpoint.
const (
	TrailerStatus          = "X-Kronbip-Status" // "complete" or "aborted"
	TrailerEdges           = "X-Kronbip-Edges"  // edges actually sent
	TrailerAuditChecks     = "X-Kronbip-Audit-Checks"
	TrailerAuditViolations = "X-Kronbip-Audit-Violations"
)

// streamSink writes edges in the chosen rendering through a buffered
// writer, flushing the HTTP chunk every streamFlushEdges edges.  It is
// used from a single goroutine (the stream runs one shard, because an
// HTTP response is one ordered byte stream).
type streamSink struct {
	bw      *bufio.Writer
	flusher http.Flusher
	ndjson  bool
	scratch []byte
	n       int64 // edges written
	batch   int64
}

func newStreamSink(w http.ResponseWriter, ndjson bool) *streamSink {
	s := &streamSink{bw: bufio.NewWriterSize(w, 1<<16), ndjson: ndjson, scratch: make([]byte, 0, 64)}
	if f, ok := w.(http.Flusher); ok {
		s.flusher = f
	}
	return s
}

func (s *streamSink) Edge(v, w int) error {
	b := s.scratch[:0]
	if s.ndjson {
		b = append(b, `{"v":`...)
		b = strconv.AppendInt(b, int64(v), 10)
		b = append(b, `,"w":`...)
		b = strconv.AppendInt(b, int64(w), 10)
		b = append(b, '}', '\n')
	} else {
		b = strconv.AppendInt(b, int64(v), 10)
		b = append(b, '\t')
		b = strconv.AppendInt(b, int64(w), 10)
		b = append(b, '\n')
	}
	s.scratch = b
	if _, err := s.bw.Write(b); err != nil {
		return err
	}
	s.n++
	s.batch++
	if s.batch >= streamFlushEdges {
		s.batch = 0
		mStreamEdges.Add(streamFlushEdges)
		if err := s.bw.Flush(); err != nil {
			return err
		}
		if s.flusher != nil {
			s.flusher.Flush()
		}
	}
	return nil
}

// streamChunk bounds how many rendered bytes EdgeBatch accumulates in
// the scratch buffer before handing them to the buffered writer.
const streamChunk = 32 << 10

// EdgeBatch renders a whole batch into the scratch buffer, paying the
// writer call once per chunk instead of once per edge.  The HTTP flush
// cadence is unchanged: the chunk still goes out (and the edge counter
// still advances) every streamFlushEdges edges, wherever those fall
// inside a batch.
func (s *streamSink) EdgeBatch(edges []exec.Edge) error {
	b := s.scratch[:0]
	for _, e := range edges {
		if s.ndjson {
			b = append(b, `{"v":`...)
			b = strconv.AppendInt(b, int64(e.V), 10)
			b = append(b, `,"w":`...)
			b = strconv.AppendInt(b, int64(e.W), 10)
			b = append(b, '}', '\n')
		} else {
			b = strconv.AppendInt(b, int64(e.V), 10)
			b = append(b, '\t')
			b = strconv.AppendInt(b, int64(e.W), 10)
			b = append(b, '\n')
		}
		s.n++
		s.batch++
		if s.batch >= streamFlushEdges || len(b) >= streamChunk {
			if _, err := s.bw.Write(b); err != nil {
				s.scratch = b[:0]
				return err
			}
			b = b[:0]
			if s.batch >= streamFlushEdges {
				s.batch = 0
				mStreamEdges.Add(streamFlushEdges)
				if err := s.bw.Flush(); err != nil {
					s.scratch = b
					return err
				}
				if s.flusher != nil {
					s.flusher.Flush()
				}
			}
		}
	}
	s.scratch = b
	if len(b) == 0 {
		return nil
	}
	_, err := s.bw.Write(b)
	return err
}

func (s *streamSink) Flush() error {
	mStreamEdges.Add(s.batch)
	s.batch = 0
	return s.bw.Flush()
}

func (s *Server) handleJobEdges(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobFromPath(w, r)
	if !ok {
		return
	}
	if j.ctx.Err() != nil {
		writeError(w, http.StatusConflict, "job %s is cancelled", j.id)
		return
	}
	q := r.URL.Query()
	ndjson := true
	switch q.Get("format") {
	case "", "ndjson":
	case "tsv":
		ndjson = false
	default:
		writeError(w, http.StatusBadRequest, "bad format %q (want ndjson or tsv)", q.Get("format"))
		return
	}
	auditOn := q.Get("audit") == "1" || q.Get("audit") == "true"

	// The stream runs under the request context AND the job context:
	// client disconnects and DELETE /v1/jobs/{id} both abort it
	// mid-flight through the exec engine's cancellation contract.
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	stop := context.AfterFunc(j.ctx, cancel)
	defer stop()

	if ndjson {
		w.Header().Set("Content-Type", "application/x-ndjson")
	} else {
		w.Header().Set("Content-Type", "text/tab-separated-values; charset=utf-8")
	}
	w.Header().Set("Trailer", TrailerStatus+", "+TrailerEdges+", "+TrailerAuditChecks+", "+TrailerAuditViolations)
	w.WriteHeader(http.StatusOK)

	var auditor *audit.Auditor
	out := newStreamSink(w, ndjson)
	sink := exec.Sink(out)
	if auditOn {
		auditor = audit.New(j.product, audit.Options{SampleEvery: s.cfg.AuditSample})
		sink = exec.MultiSink{out, auditor.Stream().ForShard()}
	}
	err := j.product.StreamEdgesParallelContext(ctx, 1, func(int) exec.Sink { return sink })
	_ = out.Flush() // deliver the tail even on an aborted stream

	status := "complete"
	if err != nil {
		status = "aborted"
		mStreamAborts.Inc()
	}
	if auditor != nil && err == nil {
		report := auditor.Finalize()
		w.Header().Set(TrailerAuditChecks, strconv.Itoa(report.Checks))
		w.Header().Set(TrailerAuditViolations, strconv.Itoa(len(report.Violations)))
		if !report.OK() {
			status = "audit-violation"
		}
	}
	w.Header().Set(TrailerStatus, status)
	w.Header().Set(TrailerEdges, strconv.FormatInt(out.n, 10))
	// Repeat the request id as an unannounced trailer (TrailerPrefix):
	// it already went out as a response header, but a consumer that
	// piped the multi-GB body elsewhere sees the correlation key again
	// at EOF next to the audit verdict.
	if ri := requestFrom(r.Context()); ri.id != "" {
		w.Header().Set(http.TrailerPrefix+HeaderRequestID, ri.id)
	}
}
