package serve

import (
	"bufio"
	"context"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"strings"

	"kronbip/internal/audit"
	"kronbip/internal/exec"
)

// Streaming output: GET /v1/jobs/{id}/edges re-derives the job's edge
// list from the cached factor state — generation is deterministic, so
// the server never spools edges to disk; the O(|E_C|^(1/2)) product
// descriptor IS the stored result, and every stream request replays it.
//
// The response is chunked and flushed every streamFlushEdges edges so a
// consumer sees steady progress on multi-minute streams; trailers carry
// the completion status, the exact edge count and (with ?audit=1) the
// online auditor's verdict, because none of those are known when the
// header goes out.

// streamFlushEdges is the flush-on-batch interval: large enough to
// amortize the chunked-encoding and syscall cost, small enough that a
// slow consumer sees progress every few hundred KB.
const streamFlushEdges = 16384

// Trailer names for the streaming endpoint.  The Trailer header
// announces exactly the set that will be sent: status and edge count
// always, the audit pair only on audited streams (an aborted audited
// stream still gets its partial tallies).
const (
	TrailerStatus          = "X-Kronbip-Status" // "complete" or "aborted"
	TrailerEdges           = "X-Kronbip-Edges"  // edges actually sent
	TrailerAuditChecks     = "X-Kronbip-Audit-Checks"
	TrailerAuditViolations = "X-Kronbip-Audit-Violations"
)

// Range-streaming response headers: the closed-form stream total and
// the granted starting offset, sent before the first edge so a client
// that loses the connection knows how to size and resume its request.
const (
	HeaderStreamTotal  = "X-Kronbip-Stream-Total"
	HeaderStreamOffset = "X-Kronbip-Stream-Offset"
)

// streamSink writes edges in the chosen rendering through a buffered
// writer, flushing the HTTP chunk every streamFlushEdges edges.  It is
// used from a single goroutine (the stream runs one shard, because an
// HTTP response is one ordered byte stream).
type streamSink struct {
	bw      *bufio.Writer
	flusher http.Flusher
	ndjson  bool
	scratch []byte
	n       int64 // edges written
	batch   int64
}

func newStreamSink(w http.ResponseWriter, ndjson bool) *streamSink {
	s := &streamSink{bw: bufio.NewWriterSize(w, 1<<16), ndjson: ndjson, scratch: make([]byte, 0, 64)}
	if f, ok := w.(http.Flusher); ok {
		s.flusher = f
	}
	return s
}

func (s *streamSink) Edge(v, w int) error {
	b := s.scratch[:0]
	if s.ndjson {
		b = append(b, `{"v":`...)
		b = strconv.AppendInt(b, int64(v), 10)
		b = append(b, `,"w":`...)
		b = strconv.AppendInt(b, int64(w), 10)
		b = append(b, '}', '\n')
	} else {
		b = strconv.AppendInt(b, int64(v), 10)
		b = append(b, '\t')
		b = strconv.AppendInt(b, int64(w), 10)
		b = append(b, '\n')
	}
	s.scratch = b
	if _, err := s.bw.Write(b); err != nil {
		return err
	}
	s.n++
	s.batch++
	if s.batch >= streamFlushEdges {
		s.batch = 0
		mStreamEdges.Add(streamFlushEdges)
		if err := s.bw.Flush(); err != nil {
			return err
		}
		if s.flusher != nil {
			s.flusher.Flush()
		}
	}
	return nil
}

// streamChunk bounds how many rendered bytes EdgeBatch accumulates in
// the scratch buffer before handing them to the buffered writer.
const streamChunk = 32 << 10

// EdgeBatch renders a whole batch into the scratch buffer, paying the
// writer call once per chunk instead of once per edge.  The HTTP flush
// cadence is unchanged: the chunk still goes out (and the edge counter
// still advances) every streamFlushEdges edges, wherever those fall
// inside a batch.
func (s *streamSink) EdgeBatch(edges []exec.Edge) error {
	b := s.scratch[:0]
	for _, e := range edges {
		if s.ndjson {
			b = append(b, `{"v":`...)
			b = strconv.AppendInt(b, int64(e.V), 10)
			b = append(b, `,"w":`...)
			b = strconv.AppendInt(b, int64(e.W), 10)
			b = append(b, '}', '\n')
		} else {
			b = strconv.AppendInt(b, int64(e.V), 10)
			b = append(b, '\t')
			b = strconv.AppendInt(b, int64(e.W), 10)
			b = append(b, '\n')
		}
		s.n++
		s.batch++
		if s.batch >= streamFlushEdges || len(b) >= streamChunk {
			if _, err := s.bw.Write(b); err != nil {
				s.scratch = b[:0]
				return err
			}
			b = b[:0]
			if s.batch >= streamFlushEdges {
				s.batch = 0
				mStreamEdges.Add(streamFlushEdges)
				if err := s.bw.Flush(); err != nil {
					s.scratch = b
					return err
				}
				if s.flusher != nil {
					s.flusher.Flush()
				}
			}
		}
	}
	s.scratch = b
	if len(b) == 0 {
		return nil
	}
	_, err := s.bw.Write(b)
	return err
}

func (s *streamSink) Flush() error {
	mStreamEdges.Add(s.batch)
	s.batch = 0
	return s.bw.Flush()
}

func (s *streamSink) count() int64 { return s.n }

// edgeStreamSink is what the streaming handlers need from a rendering:
// the batched sink vocabulary, a flush, and the sent-edge count for the
// trailers.  streamSink (ndjson/tsv) and binSink (bin) implement it.
type edgeStreamSink interface {
	exec.Sink
	EdgeBatch(edges []exec.Edge) error
	Flush() error
	count() int64
}

// parseStreamFormat resolves the requested rendering: the explicit
// format parameter wins, else an Accept header naming the binary media
// type selects "bin", else ndjson.
func parseStreamFormat(explicit, accept string) (string, error) {
	switch explicit {
	case "":
		if strings.Contains(accept, ContentTypeBin) {
			return "bin", nil
		}
		return "ndjson", nil
	case "ndjson", "tsv", "bin":
		return explicit, nil
	}
	return "", fmt.Errorf("bad format %q (want ndjson, tsv or bin)", explicit)
}

// contentTypeFor maps a resolved stream format to its media type.
func contentTypeFor(format string) string {
	switch format {
	case "tsv":
		return "text/tab-separated-values; charset=utf-8"
	case "bin":
		return ContentTypeBin
	}
	return "application/x-ndjson"
}

// streamTrailers returns the Trailer announcement for a stream:
// exactly the trailers that will be sent.
func streamTrailers(auditOn bool) string {
	t := TrailerStatus + ", " + TrailerEdges
	if auditOn {
		t += ", " + TrailerAuditChecks + ", " + TrailerAuditViolations
	}
	return t
}

// parseEdgeRange resolves ?offset=/?limit= against the closed-form
// stream total, writing the error response (400 on malformed values,
// 416 with the total when offset points past the end) itself.
func parseEdgeRange(w http.ResponseWriter, q url.Values, total int64) (lo, hi int64, ok bool) {
	lo, hi = 0, total
	if v := q.Get("offset"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, "bad offset %q (want a non-negative edge index)", v)
			return 0, 0, false
		}
		if n > total {
			w.Header().Set(HeaderStreamTotal, strconv.FormatInt(total, 10))
			writeError(w, http.StatusRequestedRangeNotSatisfiable,
				"offset %d beyond stream end (%d edges)", n, total)
			return 0, 0, false
		}
		lo = n
	}
	if v := q.Get("limit"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, "bad limit %q (want a non-negative edge count)", v)
			return 0, 0, false
		}
		if lo+n < hi {
			hi = lo + n
		}
	}
	return lo, hi, true
}

func (s *Server) handleJobEdges(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobFromPath(w, r)
	if !ok {
		return
	}
	if j.ctx.Err() != nil {
		writeError(w, http.StatusConflict, "job %s is cancelled", j.id)
		return
	}
	q := r.URL.Query()
	format, err := parseStreamFormat(q.Get("format"), r.Header.Get("Accept"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	auditOn := q.Get("audit") == "1" || q.Get("audit") == "true"
	total := j.product.NumEdges()
	lo, hi, ok := parseEdgeRange(w, q, total)
	if !ok {
		return
	}
	ranged := lo != 0 || hi != total
	if auditOn && ranged {
		// The audit invariants (exact count, degree sums) are whole-
		// stream properties; a partial range can only fail them.
		writeError(w, http.StatusBadRequest, "audit requires the full stream; drop offset/limit")
		return
	}

	// The stream runs under the request context AND the job context:
	// client disconnects and DELETE /v1/jobs/{id} both abort it
	// mid-flight through the exec engine's cancellation contract.
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	stop := context.AfterFunc(j.ctx, cancel)
	defer stop()

	w.Header().Set("Content-Type", contentTypeFor(format))
	w.Header().Set(HeaderStreamTotal, strconv.FormatInt(total, 10))
	w.Header().Set(HeaderStreamOffset, strconv.FormatInt(lo, 10))
	w.Header().Set("Trailer", streamTrailers(auditOn))
	w.WriteHeader(http.StatusOK)

	var auditor *audit.Auditor
	var auditCh exec.Sink
	var sent int64
	switch {
	case format == "bin" && !auditOn:
		// Binary streams (full or ranged) take the parallel span encoder:
		// framing is offset-deterministic, so spans encode concurrently
		// and concatenate into the exact serial byte stream.
		sent, err = streamBinParallel(ctx, w, j.product, lo, hi, s.cfg.Workers)
	default:
		var out edgeStreamSink
		if format == "bin" {
			out = newBinSink(w, j.product.TermEdgeStarts(), lo)
		} else {
			out = newStreamSink(w, format == "ndjson")
		}
		if ranged {
			// Range streams take the closed-form seek: no prefix work, no
			// audit (rejected above), one ordered walk of [lo, hi).
			var sinkErr error
			err = j.product.EachEdgeRangeBatchContext(ctx, lo, hi, func(batch []exec.Edge) bool {
				if e := out.EdgeBatch(batch); e != nil {
					sinkErr = e
					return false
				}
				return true
			})
			if err == nil {
				err = sinkErr
			}
		} else {
			sink := exec.Sink(out)
			if auditOn {
				auditor = audit.New(j.product, audit.Options{SampleEvery: s.cfg.AuditSample})
				auditCh = auditor.Stream().ForShard()
				sink = exec.MultiSink{out, auditCh}
			}
			err = j.product.StreamEdgesParallelContext(ctx, 1, func(int) exec.Sink { return sink })
		}
		_ = out.Flush() // deliver the tail even on an aborted stream
		sent = out.count()
	}

	status := "complete"
	if err != nil {
		status = "aborted"
		mStreamAborts.Inc()
	}
	if auditor != nil {
		if err == nil {
			report := auditor.Finalize()
			w.Header().Set(TrailerAuditChecks, strconv.Itoa(report.Checks))
			w.Header().Set(TrailerAuditViolations, strconv.Itoa(len(report.Violations)))
			if !report.OK() {
				status = "audit-violation"
			}
		} else {
			// Aborted audited stream: fold the shard child's tallies and
			// report the partial membership verdicts — announced
			// trailers always arrive.
			_ = exec.Finish(auditCh)
			checks, violations := auditor.Stream().Partial()
			w.Header().Set(TrailerAuditChecks, strconv.FormatInt(checks, 10))
			w.Header().Set(TrailerAuditViolations, strconv.FormatInt(violations, 10))
		}
	}
	w.Header().Set(TrailerStatus, status)
	w.Header().Set(TrailerEdges, strconv.FormatInt(sent, 10))
	// Repeat the request id as an unannounced trailer (TrailerPrefix):
	// it already went out as a response header, but a consumer that
	// piped the multi-GB body elsewhere sees the correlation key again
	// at EOF next to the audit verdict.
	if ri := requestFrom(r.Context()); ri.id != "" {
		w.Header().Set(http.TrailerPrefix+HeaderRequestID, ri.id)
	}
}
