package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"kronbip/internal/obs"
	"kronbip/internal/obs/timeline"
)

// Tests for the observability layer: request identity, RED recording,
// the SLO-driven /readyz, the per-job obs endpoint, and the exported
// metric-name contract.

func TestStatusWriterCountsBytes(t *testing.T) {
	rec := httptest.NewRecorder()
	sw := &statusWriter{ResponseWriter: rec, code: http.StatusOK}
	sw.WriteHeader(http.StatusTeapot)
	if _, err := sw.Write([]byte("hello ")); err != nil {
		t.Fatal(err)
	}
	if _, err := sw.Write([]byte("world")); err != nil {
		t.Fatal(err)
	}
	if sw.bytes != 11 {
		t.Errorf("bytes = %d, want 11", sw.bytes)
	}
	if sw.code != http.StatusTeapot {
		t.Errorf("code = %d, want 418", sw.code)
	}
}

func TestRouteLabelTable(t *testing.T) {
	cases := []struct {
		method, path, want string
	}{
		{"GET", "/healthz", "healthz"},
		{"GET", "/readyz", "readyz"},
		{"GET", "/metrics", "metrics"},
		{"GET", "/metrics.json", "metrics.json"},
		{"GET", "/v1/stats", "stats"},
		{"GET", "/v1/truth", "truth"},
		{"POST", "/v1/jobs", "jobs.submit"},
		{"GET", "/v1/jobs", "jobs.list"},
		{"GET", "/v1/jobs/j17", "jobs.get"},
		{"DELETE", "/v1/jobs/j17", "jobs.cancel"},
		{"GET", "/v1/jobs/j17/edges", "jobs.edges"},
		{"GET", "/v1/jobs/j17/obs", "jobs.obs"},
		// A job id literally named "edges"/"obs" is a jobs.get (the mux
		// answers it from the {id} handler), and deeper paths are 404s —
		// neither may borrow the jobs.edges/jobs.obs series.
		{"GET", "/v1/jobs/edges", "jobs.get"},
		{"GET", "/v1/jobs/obs", "jobs.get"},
		{"DELETE", "/v1/jobs/edges", "jobs.cancel"},
		{"GET", "/v1/jobs/j17/edges/extra", "other"},
		{"GET", "/v1/jobs/j17/unknown", "other"},
		{"GET", "/v1/jobs//edges", "other"},
		{"GET", "/favicon.ico", "other"},
		{"GET", "/v1/unknown", "other"},
	}
	seen := map[string]bool{}
	for _, c := range cases {
		r := httptest.NewRequest(c.method, c.path, nil)
		if got := routeLabel(r); got != c.want {
			t.Errorf("routeLabel(%s %s) = %q, want %q", c.method, c.path, got, c.want)
		}
		seen[c.want] = true
	}
	// Every label the table can produce is pre-resolved at startup, so
	// the RED map never grows on the request path.
	warm := map[string]bool{}
	for _, l := range routeLabels {
		warm[l] = true
	}
	for label := range seen {
		if !warm[label] {
			t.Errorf("route label %q is reachable but not pre-warmed in routeLabels", label)
		}
	}
}

func TestParseTraceparent(t *testing.T) {
	valid := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	if tid, ok := parseTraceparent(valid); !ok || tid != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Errorf("valid traceparent rejected: %q %v", tid, ok)
	}
	invalid := []string{
		"",
		"garbage",
		"00-zzzz2f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", // non-hex trace id
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01", // all-zero trace id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01", // all-zero span id
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", // forbidden version
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7",    // missing flags
	}
	for _, v := range invalid {
		if _, ok := parseTraceparent(v); ok {
			t.Errorf("parseTraceparent(%q) accepted, want rejected", v)
		}
	}
}

// TestSafeRequestID: the client-supplied id charset is an allowlist —
// anything that could carry a terminal escape, split a logfmt line, or
// produce a non-JSON %q escape in the trace export is replaced.
func TestSafeRequestID(t *testing.T) {
	good := []string{"a", "req-0123abcd-42", "A.b:C_d-9", strings.Repeat("x", 128)}
	for _, id := range good {
		if !isSafeRequestID(id) {
			t.Errorf("isSafeRequestID(%q) = false, want accepted", id)
		}
	}
	bad := []string{
		"",
		strings.Repeat("x", 129),
		"has space",
		"tab\there",
		"newline\n",
		`quo"te`,
		"esc\x1b[31mred",  // terminal escape
		"nul\x00byte",     // control byte
		"caf\xc3\xa9",     // valid UTF-8, bytes outside the allowlist
		"invalid\xffutf8", // invalid UTF-8
		"slash/path",
		"eq=uals",
	}
	for _, id := range bad {
		if isSafeRequestID(id) {
			t.Errorf("isSafeRequestID(%q) = true, want rejected", id)
		}
	}
}

// TestRequestIdentityEcho: the middleware honors supplied correlation
// headers and mints what is missing; every response carries both.
func TestRequestIdentityEcho(t *testing.T) {
	_, ts := testServer(t, Config{})

	// No headers supplied: both are generated.
	res, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	rid := res.Header.Get(HeaderRequestID)
	if !strings.HasPrefix(rid, "req-") {
		t.Errorf("generated request id = %q, want req-... form", rid)
	}
	tp := res.Header.Get(HeaderTraceparent)
	if _, ok := parseTraceparent(tp); !ok {
		t.Errorf("generated traceparent %q does not parse", tp)
	}

	// Supplied: the request id echoes verbatim, the trace id propagates
	// with a fresh span id for this hop.
	req, _ := http.NewRequest("GET", ts.URL+"/healthz", nil)
	req.Header.Set(HeaderRequestID, "client-req-7")
	req.Header.Set(HeaderTraceparent, "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	res, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if got := res.Header.Get(HeaderRequestID); got != "client-req-7" {
		t.Errorf("request id = %q, want the supplied client-req-7", got)
	}
	tp = res.Header.Get(HeaderTraceparent)
	if !strings.HasPrefix(tp, "00-4bf92f3577b34da6a3ce929d0e0e4736-") {
		t.Errorf("traceparent = %q, want the supplied trace id", tp)
	}
	if strings.Contains(tp, "00f067aa0ba902b7") {
		t.Errorf("traceparent = %q reuses the caller's span id, want a fresh hop span", tp)
	}

	// A garbage request id is replaced, not echoed (header injection).
	req, _ = http.NewRequest("GET", ts.URL+"/healthz", nil)
	req.Header.Set(HeaderRequestID, `evil" injected`)
	res, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if got := res.Header.Get(HeaderRequestID); !strings.HasPrefix(got, "req-") {
		t.Errorf("request id = %q, want the garbage id replaced", got)
	}

	// A control byte the Go client would refuse to send can still arrive
	// from a raw socket; resolveIdentity must mint a replacement.
	raw := httptest.NewRequest("GET", "/healthz", nil)
	raw.Header.Set(HeaderRequestID, "esc\x1b[2Jwipe")
	if ri := resolveIdentity(raw); !strings.HasPrefix(ri.id, "req-") {
		t.Errorf("request id for escape-byte header = %q, want minted", ri.id)
	}
}

// TestPanicRecoveryRecordsREDError: a handler panic surfaces as a 500
// in the per-route RED error counter even though the panic, not the
// handler, decided the status.
func TestPanicRecoveryRecordsREDError(t *testing.T) {
	obs.SetEnabled(true)
	defer obs.SetEnabled(false)
	s := New(Config{Workers: 1})
	defer s.Shutdown(time.Second)
	ts := httptest.NewServer(s.withMiddleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("boom")
	})))
	defer ts.Close()

	errBefore := obs.Default.Counter(obs.Labeled("serve.http.errors", "route", "truth")).Value()
	reqBefore := obs.Default.Counter(obs.Labeled("serve.http.requests", "route", "truth")).Value()
	res, err := http.Get(ts.URL + "/v1/truth")
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusInternalServerError {
		t.Errorf("status = %d, want 500", res.StatusCode)
	}
	if got := obs.Default.Counter(obs.Labeled("serve.http.errors", "route", "truth")).Value(); got != errBefore+1 {
		t.Errorf("RED error counter advanced by %d, want 1", got-errBefore)
	}
	if got := obs.Default.Counter(obs.Labeled("serve.http.requests", "route", "truth")).Value(); got != reqBefore+1 {
		t.Errorf("RED request counter advanced by %d, want 1", got-reqBefore)
	}
}

// TestPanicAfterHeaderStillCountsError: a panic after a committed 200
// header still reaches the error counters — the client sees a broken
// body, and the metrics must agree something went wrong.
func TestPanicAfterHeaderStillCountsError(t *testing.T) {
	obs.SetEnabled(true)
	defer obs.SetEnabled(false)
	s := New(Config{Workers: 1})
	defer s.Shutdown(time.Second)
	ts := httptest.NewServer(s.withMiddleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		w.Write([]byte("partial"))
		panic("late boom")
	})))
	defer ts.Close()

	before := obs.Default.Counter(obs.Labeled("serve.http.errors", "route", "healthz")).Value()
	res, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if got := obs.Default.Counter(obs.Labeled("serve.http.errors", "route", "healthz")).Value(); got != before+1 {
		t.Errorf("RED error counter advanced by %d, want 1 (late panic lost)", got-before)
	}
}

// syncBuffer is a mutex-guarded buffer for access-log assertions.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestAccessLogCarriesIdentity: every access-log line is logfmt with the
// route label, status, and the request/trace ids.
func TestAccessLogCarriesIdentity(t *testing.T) {
	logBuf := &syncBuffer{}
	_, ts := testServer(t, Config{AccessLog: logBuf})
	req, _ := http.NewRequest("GET", ts.URL+"/v1/truth?factor=crown4", nil)
	req.Header.Set(HeaderRequestID, "log-req-1")
	req.Header.Set(HeaderTraceparent, "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	res, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()

	// The log line lands after the handler returns; poll briefly.
	deadline := time.Now().Add(2 * time.Second)
	var line string
	for time.Now().Before(deadline) {
		if s := logBuf.String(); strings.Contains(s, "log-req-1") {
			line = s
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	for _, want := range []string{
		"access t=", "method=GET", "route=truth", "status=200",
		"req_id=log-req-1", "trace_id=4bf92f3577b34da6a3ce929d0e0e4736",
	} {
		if !strings.Contains(line, want) {
			t.Errorf("access log line missing %q:\n%s", want, line)
		}
	}
}

// TestHealthzStaysUpWhileReadyzDrains: during a shutdown drain the
// process is still alive (healthz 200, jobs finishing) but must leave
// the load balancer rotation (readyz 503).
func TestHealthzStaysUpWhileReadyzDrains(t *testing.T) {
	release := make(chan struct{})
	s, ts := testServer(t, Config{Workers: 1, QueueDepth: 4})
	s.mgr.runHook = func(ctx context.Context, j *Job) error {
		select {
		case <-release:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}

	// Before the drain both report healthy.
	res := getJSON(t, ts.URL+"/readyz", nil)
	if res.StatusCode != http.StatusOK {
		t.Fatalf("pre-drain readyz = %d, want 200", res.StatusCode)
	}

	st, res := submitJob(t, ts.URL, `{"factor":"crown4"}`)
	if res.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d", res.StatusCode)
	}
	waitState(t, ts.URL, st.ID, "running")

	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- s.Shutdown(5 * time.Second) }()

	// Wait for the drain flag to take effect.
	deadline := time.Now().Add(2 * time.Second)
	ready := -1
	for time.Now().Before(deadline) {
		res := getJSON(t, ts.URL+"/readyz", nil)
		ready = res.StatusCode
		if ready == http.StatusServiceUnavailable {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if ready != http.StatusServiceUnavailable {
		t.Errorf("readyz during drain = %d, want 503", ready)
	}
	var hz struct {
		Status string `json:"status"`
	}
	if res := getJSON(t, ts.URL+"/healthz", &hz); res.StatusCode != http.StatusOK || hz.Status != "ok" {
		t.Errorf("healthz during drain = %d %q, want 200 ok", res.StatusCode, hz.Status)
	}

	close(release)
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}

// TestReadyzFlipsOnSLOBurn: a latency burn in the rolling window turns
// /readyz into a 503 with the burning objective named, and the healthy
// gauge drops to 0.
func TestReadyzFlipsOnSLOBurn(t *testing.T) {
	s, ts := testServer(t, Config{})

	if res := getJSON(t, ts.URL+"/readyz", nil); res.StatusCode != http.StatusOK {
		t.Fatalf("baseline readyz = %d, want 200", res.StatusCode)
	}

	// Burn: a pile of 10s observations lands far past the 1s default
	// p99 objective.  Tick directly (tests own the clock); the readyz
	// poll inside MinInterval then reads the cached burn status.
	for i := 0; i < 100; i++ {
		s.sloHist.Observe(10)
	}
	if st := s.slo.Tick(time.Now()); st.Healthy {
		t.Fatalf("tick after burn still healthy: %+v", st)
	}

	var body struct {
		Status string `json:"status"`
		SLO    struct {
			Healthy bool   `json:"healthy"`
			Reason  string `json:"reason"`
		} `json:"slo"`
	}
	res := getJSON(t, ts.URL+"/readyz", &body)
	if res.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz during burn = %d, want 503", res.StatusCode)
	}
	if body.Status != "slo-burn" || body.SLO.Healthy || !strings.Contains(body.SLO.Reason, "p99") {
		t.Errorf("burn payload = %+v, want slo-burn with a p99 reason", body)
	}
	if got := obs.Default.Gauge("serve.slo.healthy").Value(); got != 0 {
		t.Errorf("serve.slo.healthy = %d, want 0 during burn", got)
	}
}

// TestProbeRoutesExcludedFromSLO: probe traffic (readyz/healthz/metrics
// polls) never advances the SLO's request/error counters or latency
// histogram — otherwise /readyz answering 503 during a burn would feed
// the windowed error rate it is judged by, and readiness would latch
// down after a load balancer pulls real traffic (the reviewer's
// feedback-loop scenario).
func TestProbeRoutesExcludedFromSLO(t *testing.T) {
	obs.SetEnabled(true)
	defer obs.SetEnabled(false)
	s := New(Config{Workers: 1})
	defer s.Shutdown(time.Second)
	// Every route answers 503 — the shape probe polls take while the
	// server is draining or burning.
	ts := httptest.NewServer(s.withMiddleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeError(w, http.StatusServiceUnavailable, "burning")
	})))
	defer ts.Close()

	reqBefore, errBefore := mSLORequests.Value(), mSLOErrors.Value()
	for _, p := range []string{"/readyz", "/healthz", "/metrics", "/metrics.json"} {
		res, err := http.Get(ts.URL + p)
		if err != nil {
			t.Fatal(err)
		}
		res.Body.Close()
		if res.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("GET %s = %d, want 503", p, res.StatusCode)
		}
	}
	if got := mSLORequests.Value(); got != reqBefore {
		t.Errorf("probe polls advanced serve.slo.requests by %d, want 0", got-reqBefore)
	}
	if got := mSLOErrors.Value(); got != errBefore {
		t.Errorf("probe 503s advanced serve.slo.errors by %d, want 0", got-errBefore)
	}

	// Real traffic still reaches the SLO inputs: one 503 on a non-probe
	// route advances both counters.
	res, err := http.Get(ts.URL + "/v1/truth")
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if got := mSLORequests.Value(); got != reqBefore+1 {
		t.Errorf("serve.slo.requests advanced by %d for real traffic, want 1", got-reqBefore)
	}
	if got := mSLOErrors.Value(); got != errBefore+1 {
		t.Errorf("serve.slo.errors advanced by %d for a real 503, want 1", got-errBefore)
	}
}

// TestZeroToleranceErrorObjective: a library caller can express the
// zero-tolerance error objective (SLOOptions' 0) through serve.Config —
// a single windowed 5xx on real traffic burns the SLO.
func TestZeroToleranceErrorObjective(t *testing.T) {
	zero := 0.0
	s := New(Config{Workers: 1, SLOErrorRate: &zero})
	defer s.Shutdown(time.Second)
	ts := httptest.NewServer(s.withMiddleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeError(w, http.StatusInternalServerError, "boom")
	})))
	defer ts.Close()

	res, err := http.Get(ts.URL + "/v1/truth")
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	st := s.slo.Tick(time.Now())
	if st.Errors == 0 {
		t.Fatalf("window saw no errors: %+v", st)
	}
	if st.Healthy || !strings.Contains(st.Reason, "error rate") {
		t.Errorf("zero-tolerance objective did not burn on a 5xx: %+v", st)
	}
}

// TestJobObsEndpoint: the per-job observability view carries the
// submitting request's identity, the throughput figure, and — with
// timeline recording on — the job-lane events annotated with that
// identity (the acceptance check that a supplied traceparent reaches
// the job's timeline lane).
func TestJobObsEndpoint(t *testing.T) {
	timeline.Default.Reset()
	timeline.SetEnabled(true)
	t.Cleanup(func() {
		timeline.SetEnabled(false)
		timeline.Default.Reset()
	})
	_, ts := testServer(t, Config{Workers: 1})

	const traceID = "4bf92f3577b34da6a3ce929d0e0e4736"
	req, _ := http.NewRequest("POST", ts.URL+"/v1/jobs",
		strings.NewReader(`{"factor":"crown4","mode":"selfloop","seed":1}`))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(HeaderRequestID, "obs-req-1")
	req.Header.Set(HeaderTraceparent, "00-"+traceID+"-00f067aa0ba902b7-01")
	res, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var st JobStatus
	if err := json.NewDecoder(res.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if st.RequestID != "obs-req-1" || st.TraceID != traceID {
		t.Fatalf("job status identity = %q/%q, want the submitted pair", st.RequestID, st.TraceID)
	}
	waitState(t, ts.URL, st.ID, "done")

	var ob jobObsResponse
	if res := getJSON(t, ts.URL+"/v1/jobs/"+st.ID+"/obs", &ob); res.StatusCode != http.StatusOK {
		t.Fatalf("obs endpoint = %d, want 200", res.StatusCode)
	}
	if !ob.TimelineEnabled {
		t.Error("timeline_enabled = false, want true")
	}
	if ob.RequestID != "obs-req-1" || ob.TraceID != traceID {
		t.Errorf("obs identity = %q/%q, want the submitted pair", ob.RequestID, ob.TraceID)
	}
	if ob.EdgesStreamed <= 0 || ob.EdgesPerSecond <= 0 {
		t.Errorf("throughput = %d edges, %v edges/s, want positive", ob.EdgesStreamed, ob.EdgesPerSecond)
	}
	if len(ob.JobEvents) == 0 {
		t.Fatal("job_events empty, want the serve.job lane event")
	}
	ev := ob.JobEvents[0]
	if ev.Name != "serve.job" || !ev.OK {
		t.Errorf("job event = %+v, want ok serve.job", ev)
	}
	if !strings.Contains(ev.Note, "req_id=obs-req-1") || !strings.Contains(ev.Note, "trace_id="+traceID) {
		t.Errorf("job event note = %q, want the request identity", ev.Note)
	}

	// The same identity greps out of the journal export.
	events, dropped := timeline.Default.Snapshot()
	var journal bytes.Buffer
	if err := timeline.WriteJournal(&journal, events, dropped); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(journal.String(), "trace_id="+traceID) {
		t.Errorf("journal lacks the trace id:\n%s", journal.String())
	}

	// Unknown job still 404s.
	if res := getJSON(t, ts.URL+"/v1/jobs/nope/obs", nil); res.StatusCode != http.StatusNotFound {
		t.Errorf("obs for unknown job = %d, want 404", res.StatusCode)
	}
}

var updateMetricNames = flag.Bool("update-metric-names", false, "rewrite the exported metric-name golden")

// TestMetricNameTableGolden pins the full exported serve.* metric-name
// set: every name the server registers at construction, including each
// pre-warmed RED route series and the SLO gauges.  A new or renamed
// metric must update the golden — dashboards and the smoke harness key
// on these names.
func TestMetricNameTableGolden(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Shutdown(time.Second)

	snap := obs.Default.Snapshot()
	var names []string
	for name := range snap.Counters {
		names = append(names, "counter "+name)
	}
	for name := range snap.Gauges {
		names = append(names, "gauge "+name)
	}
	for name := range snap.Histograms {
		names = append(names, "histogram "+name)
	}
	var serveNames []string
	for _, n := range names {
		if strings.Contains(n, " serve.") {
			serveNames = append(serveNames, n)
		}
	}
	sort.Strings(serveNames)
	got := strings.Join(serveNames, "\n") + "\n"

	golden := filepath.Join("testdata", "metric_names.golden")
	if *updateMetricNames {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update-metric-names to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("exported serve.* metric names drifted from golden.\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// nopResponseWriter is the cheapest possible sink for middleware
// benchmarks: no recorder allocations, no body retention.
type nopResponseWriter struct{ h http.Header }

func (w nopResponseWriter) Header() http.Header         { return w.h }
func (w nopResponseWriter) WriteHeader(int)             {}
func (w nopResponseWriter) Write(b []byte) (int, error) { return len(b), nil }

// BenchmarkServeMiddleware measures the middleware's per-request cost
// over a no-op handler, obs disabled vs enabled — the DESIGN.md §6a
// check that the observability layer is one atomic load away from free
// when off.
func BenchmarkServeMiddleware(b *testing.B) {
	s := New(Config{Workers: 1})
	defer s.Shutdown(time.Second)
	h := s.withMiddleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok"))
	}))
	run := func(b *testing.B) {
		req := httptest.NewRequest("GET", "/healthz", nil)
		w := nopResponseWriter{h: make(http.Header)}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h.ServeHTTP(w, req)
		}
	}
	b.Run("disabled", func(b *testing.B) {
		obs.SetEnabled(false)
		run(b)
	})
	b.Run("enabled", func(b *testing.B) {
		obs.SetEnabled(true)
		defer obs.SetEnabled(false)
		run(b)
	})
}
