package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"kronbip/internal/audit"
	"kronbip/internal/core"
	"kronbip/internal/exec"
	"kronbip/internal/obs"
	"kronbip/internal/obs/timeline"
	"kronbip/internal/spec"
)

// Admission-control sentinels, mapped to HTTP statuses by the submit
// handler.
var (
	// ErrSaturated: the queue is full — 429 with Retry-After.
	ErrSaturated = errors.New("serve: job queue is full")
	// ErrTooLarge: closed-form |E_C| exceeds the per-job budget — 413.
	ErrTooLarge = errors.New("serve: spec exceeds the per-job edge budget")
	// ErrDraining: the server is shutting down — 503.
	ErrDraining = errors.New("serve: server is shutting down")
)

// JobState is a job's position in its lifecycle.
type JobState int32

// Job lifecycle states.
const (
	StateQueued JobState = iota
	StateRunning
	StateDone
	StateFailed
	StateCancelled
)

func (s JobState) String() string {
	switch s {
	case StateQueued:
		return "queued"
	case StateRunning:
		return "running"
	case StateDone:
		return "done"
	case StateFailed:
		return "failed"
	case StateCancelled:
		return "cancelled"
	default:
		return fmt.Sprintf("JobState(%d)", int32(s))
	}
}

func (s JobState) terminal() bool { return s >= StateDone }

// Job is one submitted generation run.  The product descriptor and the
// identity fields are immutable after submission; the mutable lifecycle
// fields are guarded by mu.
type Job struct {
	id      string
	seq     int // numeric id, the job's timeline lane
	spec    spec.Spec
	product *core.Product
	auditOn bool
	// Correlation identity of the submitting request: echoed in job
	// status and stamped on the job's timeline-lane events, so a
	// distributed trace reaching POST /v1/jobs can be followed into the
	// generation run it started.
	reqID   string
	traceID string
	// idemKey is the client's idempotency key, when one was supplied at
	// submission; the manager's idem index maps it back to this job until
	// eviction.
	idemKey string
	// ctx is cancelled by DELETE, eviction or manager close — NOT by
	// normal completion, so edge-stream requests for a finished job
	// keep working until the job is evicted.
	ctx    context.Context
	cancel context.CancelFunc

	// meter receives the job's pool attribution: while instrumentation
	// is enabled, every generation shard the exec engine runs for this
	// job adds its busy wall-time here (exec.WithMeter), which is the
	// job's CPU time under the one-core-per-shard model.  Atomic
	// internally; read without mu.
	meter exec.Meter

	mu              sync.Mutex
	state           JobState
	errMsg          string
	created         time.Time
	started         time.Time
	finished        time.Time
	edges           int64 // edges streamed by the generation run
	allocBytes      int64 // heap bytes allocated during the run (process-wide delta)
	allocObjects    int64 // heap objects allocated during the run (process-wide delta)
	auditChecks     int
	auditViolations int
	done            chan struct{} // closed on entering a terminal state
}

// JobStatus is the wire rendering of a job.
type JobStatus struct {
	ID               string  `json:"id"`
	Spec             string  `json:"spec"`
	State            string  `json:"state"`
	Error            string  `json:"error,omitempty"`
	NumEdges         int64   `json:"num_edges"` // closed-form |E_C|
	EdgesStreamed    int64   `json:"edges_streamed"`
	GlobalFourCycles int64   `json:"global_four_cycles"`
	Audit            bool    `json:"audit"`
	AuditChecks      int     `json:"audit_checks,omitempty"`
	AuditViolations  int     `json:"audit_violations,omitempty"`
	Created          string  `json:"created"`
	RunSeconds       float64 `json:"run_seconds,omitempty"`
	// Resource attribution (zero until the run starts; alloc fields are
	// process-wide deltas, so concurrent jobs inflate each other's —
	// approximate by construction, unlike cpu_seconds/pool_tasks which
	// are exact per-job sums).
	CPUSeconds       float64 `json:"cpu_seconds,omitempty"`
	PoolTasks        int64   `json:"pool_tasks,omitempty"`
	AllocBytesApprox int64   `json:"alloc_bytes_approx,omitempty"`
	AllocsApprox     int64   `json:"allocs_approx,omitempty"`
	RequestID        string  `json:"request_id,omitempty"` // submitting request
	TraceID          string  `json:"trace_id,omitempty"`
}

// Status snapshots the job for the API.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:               j.id,
		Spec:             j.spec.Canonical(),
		State:            j.state.String(),
		Error:            j.errMsg,
		NumEdges:         j.product.NumEdges(),
		EdgesStreamed:    j.edges,
		GlobalFourCycles: j.product.GlobalFourCycles(),
		Audit:            j.auditOn,
		AuditChecks:      j.auditChecks,
		AuditViolations:  j.auditViolations,
		Created:          j.created.UTC().Format(time.RFC3339Nano),
		CPUSeconds:       j.meter.BusySeconds(),
		PoolTasks:        j.meter.Tasks(),
		AllocBytesApprox: j.allocBytes,
		AllocsApprox:     j.allocObjects,
		RequestID:        j.reqID,
		TraceID:          j.traceID,
	}
	if !j.started.IsZero() {
		end := j.finished
		if end.IsZero() {
			end = time.Now()
		}
		st.RunSeconds = end.Sub(j.started).Seconds()
	}
	return st
}

// claim moves the job queued → running; false if it was cancelled while
// waiting in the queue.
func (j *Job) claim() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateRunning
	j.started = time.Now()
	return true
}

// finish records the run outcome and closes done.
func (j *Job) finish(err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch {
	case err == nil:
		j.state = StateDone
		mJobsDone.Inc()
		obs.Flight.RecordNote(obs.FlightInfo, "job", "job done", int64(j.seq), j.edges, j.reqID)
	case errors.Is(err, context.Canceled):
		j.state = StateCancelled
		j.errMsg = "cancelled"
		mJobsCancel.Inc()
		obs.Flight.RecordNote(obs.FlightInfo, "job", "job cancelled", int64(j.seq), j.edges, j.reqID)
	default:
		j.state = StateFailed
		j.errMsg = err.Error()
		mJobsFailed.Inc()
		obs.Flight.RecordNote(obs.FlightError, "job", "job failed", int64(j.seq), j.edges, j.errMsg)
	}
	j.finished = time.Now()
	close(j.done)
}

// cancelIfQueued retires a still-queued job without touching a running
// one; used by DELETE and by shutdown's queued-job sweep.
func (j *Job) cancelIfQueued() bool {
	j.mu.Lock()
	if j.state != StateQueued {
		j.mu.Unlock()
		return false
	}
	j.state = StateCancelled
	j.errMsg = "cancelled"
	j.finished = time.Now()
	close(j.done)
	j.mu.Unlock()
	mJobsCancel.Inc()
	obs.Flight.RecordNote(obs.FlightInfo, "job", "job cancelled queued", int64(j.seq), 0, j.reqID)
	j.cancel()
	return true
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// manager owns the job lifecycle: a bounded queue, a fixed worker pool,
// the job index and the retention policy.
type manager struct {
	cfg        Config
	baseCtx    context.Context
	baseCancel context.CancelFunc
	queue      chan *Job
	wg         sync.WaitGroup

	mu     sync.Mutex
	jobs   map[string]*Job
	idem   map[string]*Job // idempotency key → the job it admitted
	order  []*Job          // submission order, scanned for retention eviction
	nextID int
	closed bool

	// runHook, when non-nil, runs at the start of every job before
	// generation — the test seam for making jobs slow or fail on demand.
	runHook func(ctx context.Context, j *Job) error
}

func newManager(cfg Config) *manager {
	ctx, cancel := context.WithCancel(context.Background())
	m := &manager{
		cfg:        cfg,
		baseCtx:    ctx,
		baseCancel: cancel,
		queue:      make(chan *Job, cfg.QueueDepth),
		jobs:       make(map[string]*Job),
		idem:       make(map[string]*Job),
	}
	m.wg.Add(cfg.Workers)
	for w := 0; w < cfg.Workers; w++ {
		go m.worker()
	}
	return m
}

// submit admits a job or rejects it: ErrTooLarge when the closed-form
// edge count busts the budget (checked from factor stats alone, before
// any generation), ErrSaturated when the queue is full, ErrDraining
// during shutdown.  A non-empty idemKey already bound to a retained job
// short-circuits to that job with existing=true — the at-most-once half
// of the coordinator's retry contract: a resubmission after a dropped
// response must not enqueue the work twice.  Keys bind only on
// successful admission (a 429/413 retry is a fresh attempt) and unbind
// when the job is evicted.
func (m *manager) submit(sp spec.Spec, p *core.Product, auditOn bool, idemKey string, ri requestInfo) (j *Job, existing bool, err error) {
	if m.cfg.MaxEdges > 0 && p.NumEdges() > m.cfg.MaxEdges {
		mRejected.Inc()
		obs.Flight.RecordNote(obs.FlightWarn, "job", "reject too-large", p.NumEdges(), m.cfg.MaxEdges, ri.id)
		return nil, false, fmt.Errorf("%w: |E_C|=%d > budget %d", ErrTooLarge, p.NumEdges(), m.cfg.MaxEdges)
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		mRejected.Inc()
		obs.Flight.RecordNote(obs.FlightWarn, "job", "reject draining", 0, 0, ri.id)
		return nil, false, ErrDraining
	}
	if idemKey != "" {
		if prior, ok := m.idem[idemKey]; ok {
			m.mu.Unlock()
			mIdemReplays.Inc()
			obs.Flight.RecordNote(obs.FlightInfo, "job", "idem replay", int64(prior.seq), 0, ri.id)
			return prior, true, nil
		}
	}
	jctx, jcancel := context.WithCancel(m.baseCtx)
	j = &Job{
		id:      fmt.Sprintf("j%d", m.nextID+1),
		seq:     m.nextID + 1,
		spec:    sp,
		product: p,
		auditOn: auditOn,
		reqID:   ri.id,
		traceID: ri.traceID,
		idemKey: idemKey,
		ctx:     jctx,
		cancel:  jcancel,
		state:   StateQueued,
		created: time.Now(),
		done:    make(chan struct{}),
	}
	select {
	case m.queue <- j:
		m.nextID++
		m.jobs[j.id] = j
		if idemKey != "" {
			m.idem[idemKey] = j
		}
		m.order = append(m.order, j)
		m.evictLocked()
		gQueueDepth.Set(int64(len(m.queue)))
		m.mu.Unlock()
		mSubmitted.Inc()
		obs.Flight.RecordNote(obs.FlightInfo, "job", "job submitted", int64(j.seq), p.NumEdges(), ri.id)
		return j, false, nil
	default:
		m.mu.Unlock()
		jcancel()
		mRejected.Inc()
		obs.Flight.RecordNote(obs.FlightWarn, "job", "reject saturated", int64(m.cfg.QueueDepth), 0, ri.id)
		return nil, false, ErrSaturated
	}
}

// evictLocked drops the oldest terminal jobs beyond the retention cap,
// releasing their contexts.  Live (queued/running) jobs are never
// evicted.  Caller holds m.mu.
func (m *manager) evictLocked() {
	for len(m.order) > m.cfg.Retention {
		evicted := false
		for i, j := range m.order {
			j.mu.Lock()
			terminal := j.state.terminal()
			j.mu.Unlock()
			if terminal {
				m.order = append(m.order[:i], m.order[i+1:]...)
				delete(m.jobs, j.id)
				if j.idemKey != "" {
					delete(m.idem, j.idemKey)
				}
				j.cancel()
				evicted = true
				break
			}
		}
		if !evicted {
			return // everything retained is still live
		}
	}
}

// get looks a job up by id.
func (m *manager) get(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// list snapshots every retained job, newest first.
func (m *manager) list() []JobStatus {
	m.mu.Lock()
	jobs := make([]*Job, len(m.order))
	copy(jobs, m.order)
	m.mu.Unlock()
	out := make([]JobStatus, 0, len(jobs))
	for i := len(jobs) - 1; i >= 0; i-- {
		out = append(out, jobs[i].Status())
	}
	return out
}

// cancelJob cancels a job wherever it is: queued jobs retire without
// running, running jobs unwind through the exec engine's cancellation
// contract, and any in-flight edge stream tied to the job aborts.
func (m *manager) cancelJob(j *Job) {
	if j.cancelIfQueued() {
		return
	}
	j.cancel()
}

// counts reports (queued, running) for the health payload.
func (m *manager) counts() (queued, running int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, j := range m.order {
		j.mu.Lock()
		switch j.state {
		case StateQueued:
			queued++
		case StateRunning:
			running++
		}
		j.mu.Unlock()
	}
	return queued, running
}

// drain stops admissions, cancels still-queued jobs and waits for the
// running ones to finish; when ctx expires first, the remaining jobs
// are cancelled hard and the ctx error returned.
func (m *manager) drain(ctx context.Context) error {
	m.mu.Lock()
	if !m.closed {
		m.closed = true
		close(m.queue)
	}
	queued := make([]*Job, len(m.order))
	copy(queued, m.order)
	m.mu.Unlock()
	obs.Flight.Record(obs.FlightInfo, "serve", "drain begin", int64(len(queued)), 0)
	for _, j := range queued {
		j.cancelIfQueued()
	}
	done := make(chan struct{})
	go func() { m.wg.Wait(); close(done) }()
	select {
	case <-done:
		obs.Flight.Record(obs.FlightInfo, "serve", "drain done", 0, 0)
		return nil
	case <-ctx.Done():
		m.baseCancel()
		<-done
		obs.Flight.Record(obs.FlightError, "serve", "drain timeout", 0, 0)
		return fmt.Errorf("serve: drain timeout: %w", ctx.Err())
	}
}

// close force-stops the manager; idempotent, used after drain and on
// listener failure.
func (m *manager) close() {
	m.mu.Lock()
	if !m.closed {
		m.closed = true
		close(m.queue)
	}
	m.mu.Unlock()
	m.baseCancel()
	m.wg.Wait()
}

func (m *manager) worker() {
	defer m.wg.Done()
	for j := range m.queue {
		gQueueDepth.Set(int64(len(m.queue)))
		m.run(j)
	}
}

// run executes one job under its per-job context plus the configured
// deadline, recording the outcome and a per-job timeline group.
func (m *manager) run(j *Job) {
	if !j.claim() {
		return // cancelled while queued
	}
	obs.Flight.RecordNote(obs.FlightInfo, "job", "job running", int64(j.seq), j.product.NumEdges(), j.reqID)
	gJobsRunning.Add(1)
	defer gJobsRunning.Add(-1)
	ctx := j.ctx
	if m.cfg.JobTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, m.cfg.JobTimeout)
		defer cancel()
	}
	var end timeline.Done
	if timeline.Enabled() {
		// The submitting request's identity rides on the job-lane event,
		// so a trace id seen at POST /v1/jobs can be grepped out of the
		// journal or read in the Chrome trace args pane.
		end = timeline.BeginNote(timeline.CatJob, "serve.job", j.seq,
			"req_id="+j.reqID+" trace_id="+j.traceID)
	}
	err := m.generate(ctx, j)
	if end != nil {
		end(err)
	}
	j.finish(err)
	// Attribution roll-up, once per job at the batch boundary: the
	// meter's shard sums become one histogram observation per family.
	if obs.Enabled() {
		hJobCPUSecs.Observe(j.meter.BusySeconds())
		j.mu.Lock()
		ab, ao := j.allocBytes, j.allocObjects
		j.mu.Unlock()
		hJobAllocBytes.Observe(float64(ab))
		hJobAllocs.Observe(float64(ao))
	}
}

// generate performs the job's generation run on the exec engine: the
// full sharded stream into a counting sink (and the online auditor when
// requested).  The streamed count is the job's result — the edge list
// itself is never stored; /v1/jobs/{id}/edges re-derives it on demand,
// which is the paper's whole point.
func (m *manager) generate(ctx context.Context, j *Job) error {
	// Resource attribution, gated on the usual one atomic load: the
	// job's meter rides the context into the exec pool (per-shard busy
	// time), and the run is bracketed by cumulative-alloc snapshots.
	// The alloc delta is process-wide — concurrent jobs bleed into each
	// other — so it is surfaced with an _approx suffix, while the meter
	// sums are exact per-job.
	if obs.Enabled() {
		ctx = exec.WithMeter(ctx, &j.meter)
		b0, o0 := obs.AllocSnapshot()
		defer func() {
			b1, o1 := obs.AllocSnapshot()
			j.mu.Lock()
			j.allocBytes, j.allocObjects = b1-b0, o1-o0
			j.mu.Unlock()
		}()
	}
	if m.runHook != nil {
		if err := m.runHook(ctx, j); err != nil {
			return err
		}
	}
	p := j.product
	var auditor *audit.Auditor
	if j.auditOn {
		auditor = audit.New(p, audit.Options{SampleEvery: m.cfg.AuditSample})
	}
	var cnt exec.CountingSink
	err := p.StreamEdgesParallelContext(ctx, m.cfg.Shards, func(int) exec.Sink {
		if auditor != nil {
			return exec.MultiSink{&cnt, auditor.Stream().ForShard()}
		}
		return &cnt
	})
	j.mu.Lock()
	j.edges = cnt.Count()
	j.mu.Unlock()
	if err != nil {
		return err
	}
	if auditor != nil {
		report := auditor.Finalize()
		j.mu.Lock()
		j.auditChecks = report.Checks
		j.auditViolations = len(report.Violations)
		j.mu.Unlock()
		return report.Err()
	}
	return nil
}
