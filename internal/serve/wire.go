package serve

import (
	"encoding/binary"
	"fmt"
	"io"

	"kronbip/internal/exec"
)

// Binary wire format ("bin").  Text rendering dominates the edge
// stream's cost, so the binary encoding trades strconv for varints:
// edges travel in self-contained frames of at most WireFrameEdges
// (v, w) pairs, delta-encoded within the frame.
//
// Frame layout (all integers are encoding/binary varints):
//
//	uvarint  count       edges in this frame (1..WireFrameEdges)
//	uvarint  start       stream offset of the frame's first edge
//	uvarint  v0, w0      first edge, absolute
//	varint   Δv, Δw      each later edge, zigzag delta from its
//	                     predecessor (count-1 pairs)
//
// Deltas reset at every frame, so any frame decodes alone — a consumer
// that kept the complete frames of a dropped response resumes from
// `start+count` of the last one with zero waste (distgen does exactly
// this).  Frame boundaries are a pure function of the stream offset:
// a frame never spans a term boundary of the canonical order (the
// TermEdgeStarts hard cuts) and otherwise closes every WireFrameEdges
// edges from the last hard cut.  Resuming at any such cut therefore
// reproduces the uninterrupted byte stream exactly; resuming elsewhere
// still decodes, the first frame is just shorter.
const (
	// ContentTypeBin is the negotiated media type for the binary edge
	// stream (?format=bin, or Accept: application/vnd.kronbip.edges).
	ContentTypeBin = "application/vnd.kronbip.edges"
	// WireFrameEdges is the frame capacity, matched to exec.BatchLen so
	// one generator batch renders into (at most) one frame.
	WireFrameEdges = exec.BatchLen
)

// binSink renders edges into binary wire frames, with the same
// flush-every-streamFlushEdges cadence as the text streamSink.  It
// implements exec.Sink and exec.BatchSink, so it rides the batched
// generation hot path wherever streamSink does.  Frames accumulate in
// the sink's own scratch and reach the writer in wireWriteTarget-sized
// writes — the encoder is its own buffered writer, so no byte is
// copied twice on the way to the socket.
type binSink struct {
	w       io.Writer
	flusher httpFlusher
	frame   []exec.Edge // open frame, emitted when it reaches `end`
	start   int64       // stream offset of frame[0]
	end     int64       // target exclusive end of the open frame
	cuts    []int64     // ascending hard cuts; last is the stream total
	ci      int         // cuts index: cuts[ci] is the next cut > start
	scratch []byte      // encode accumulator; frames append at off
	off     int         // bytes of scratch holding encoded frames
	n       int64       // edges written (trailer)
	batch   int64       // flush cadence counter
}

// wireWriteTarget is the accumulation high-water mark: once this many
// encoded bytes are pending, they go to the writer in one Write.
const wireWriteTarget = 1 << 17

// httpFlusher is http.Flusher without the net/http dependency — the
// encoder also writes into plain buffers (parallel span encoding, the
// distgen consumer's tests), where no flusher exists.
type httpFlusher interface{ Flush() }

// newBinSink builds the encoder for a stream starting at offset start
// of the space the hard-cut schedule describes (TermEdgeStarts for the
// canonical order, BlockTermEdgeStarts for a block lease).
func newBinSink(w io.Writer, cuts []int64, start int64) *binSink {
	s := &binSink{
		w:     w,
		frame: make([]exec.Edge, 0, WireFrameEdges),
		start: start,
		cuts:  cuts,
		// Headroom past the high-water mark for one worst-case frame (4
		// maximal uvarints of header, 2 ten-byte varints per delta pair),
		// so the encode loop never grows or bounds-trips mid-frame.
		scratch: make([]byte, wireWriteTarget+4*binary.MaxVarintLen64+2*binary.MaxVarintLen64*WireFrameEdges),
	}
	if f, ok := w.(httpFlusher); ok {
		s.flusher = f
	}
	s.end = s.frameEnd(start)
	return s
}

// frameEnd returns the exclusive end of the frame opening at `at`: the
// next aligned boundary (hard cut, or WireFrameEdges past the previous
// hard cut's grid), so framing is a deterministic function of the
// offset alone.
func (s *binSink) frameEnd(at int64) int64 {
	for s.ci < len(s.cuts) && s.cuts[s.ci] <= at {
		s.ci++
	}
	prev := int64(0)
	if s.ci > 0 {
		prev = s.cuts[s.ci-1]
	}
	end := prev + ((at-prev)/WireFrameEdges+1)*WireFrameEdges
	if s.ci < len(s.cuts) && s.cuts[s.ci] < end {
		end = s.cuts[s.ci]
	}
	return end
}

func (s *binSink) Edge(v, w int) error {
	s.frame = append(s.frame, exec.Edge{V: v, W: w})
	if s.start+int64(len(s.frame)) == s.end {
		return s.emitFrame()
	}
	return nil
}

func (s *binSink) EdgeBatch(edges []exec.Edge) error {
	// Fast path: with no partial frame open, whole frames encode straight
	// out of the caller's batch — no copy into s.frame at all.
	for len(s.frame) == 0 {
		take := s.end - s.start
		if int64(len(edges)) < take {
			break
		}
		if err := s.writeFrame(edges[:take]); err != nil {
			return err
		}
		edges = edges[take:]
		if len(edges) == 0 {
			return nil
		}
	}
	for len(edges) > 0 {
		room := s.end - (s.start + int64(len(s.frame)))
		take := int64(len(edges))
		if take > room {
			take = room
		}
		s.frame = append(s.frame, edges[:take]...)
		edges = edges[take:]
		if s.start+int64(len(s.frame)) == s.end {
			if err := s.emitFrame(); err != nil {
				return err
			}
		}
	}
	return nil
}

// emitFrame serializes and writes the open frame, then opens the next.
func (s *binSink) emitFrame() error {
	if len(s.frame) == 0 {
		return nil
	}
	err := s.writeFrame(s.frame)
	s.frame = s.frame[:0]
	return err
}

// writeFrame serializes one complete frame (frame[0] sits at stream
// offset s.start) and advances the framing state past it.
func (s *binSink) writeFrame(frame []exec.Edge) error {
	count := len(frame)
	b := s.scratch
	i := s.off
	i += binary.PutUvarint(b[i:], uint64(count))
	i += binary.PutUvarint(b[i:], uint64(s.start))
	i += binary.PutUvarint(b[i:], uint64(frame[0].V))
	i += binary.PutUvarint(b[i:], uint64(frame[0].W))
	pv, pw := frame[0].V, frame[0].W
	for _, e := range frame[1:] {
		// Zigzag the deltas by hand: neighboring canonical edges differ by
		// small steps almost always, so both fit one byte and the encode
		// loop is two stores; the slow path matches binary.PutVarint.
		dv, dw := int64(e.V-pv), int64(e.W-pw)
		uv := uint64(dv<<1) ^ uint64(dv>>63)
		uw := uint64(dw<<1) ^ uint64(dw>>63)
		if uv|uw < 0x80 {
			b[i] = byte(uv)
			b[i+1] = byte(uw)
			i += 2
		} else {
			i += binary.PutUvarint(b[i:], uv)
			i += binary.PutUvarint(b[i:], uw)
		}
		pv, pw = e.V, e.W
	}
	s.off = i
	s.start += int64(count)
	s.end = s.frameEnd(s.start)
	s.n += int64(count)
	s.batch += int64(count)
	if s.off >= wireWriteTarget {
		if err := s.drain(); err != nil {
			return err
		}
	}
	if s.batch >= streamFlushEdges {
		mStreamEdges.Add(s.batch)
		s.batch = 0
		if err := s.drain(); err != nil {
			return err
		}
		if s.flusher != nil {
			s.flusher.Flush()
		}
	}
	return nil
}

// drain hands the accumulated frame bytes to the writer.
func (s *binSink) drain() error {
	if s.off == 0 {
		return nil
	}
	_, err := s.w.Write(s.scratch[:s.off])
	s.off = 0
	return err
}

// Flush emits the final (possibly short) frame — an aborted stream or a
// ?limit= that ends off the frame grid still delivers every edge — and
// drains the buffered writer.
func (s *binSink) Flush() error {
	if len(s.frame) > 0 {
		// Close the open frame wherever it stands.
		s.end = s.start + int64(len(s.frame))
		if err := s.emitFrame(); err != nil {
			return err
		}
	}
	mStreamEdges.Add(s.batch)
	s.batch = 0
	return s.drain()
}

func (s *binSink) count() int64 { return s.n }

// DecodeWire walks a binary wire payload frame by frame, calling yield
// (when non-nil) for every edge of every complete frame.  start is the
// expected offset of the first frame (-1 skips that check); frames must
// be contiguous regardless.  It returns the edges decoded from complete
// frames, the stream offset after the last complete frame, and how many
// trailing bytes did not form a complete frame — a truncated tail is
// NOT an error, so a consumer of a dropped connection can keep the
// complete prefix and resume from `next`.  Malformed framing (overlong
// varints, out-of-range counts, negative vertices, a contiguity break)
// is an error.
func DecodeWire(payload []byte, start int64, yield func(v, w int)) (edges, next int64, trailing int, err error) {
	next = start
	rest := payload
	var buf [WireFrameEdges]exec.Edge
	for len(rest) > 0 {
		frame := rest
		count, n, ok, err := wireUvarint(frame)
		if err != nil {
			return edges, next, len(rest), err
		}
		if !ok {
			return edges, next, len(rest), nil
		}
		frame = frame[n:]
		if count < 1 || count > WireFrameEdges {
			return edges, next, len(rest), fmt.Errorf("serve: bad wire frame: count %d out of range [1,%d]", count, WireFrameEdges)
		}
		fstart, n, ok, err := wireUvarint(frame)
		if err != nil {
			return edges, next, len(rest), err
		}
		if !ok {
			return edges, next, len(rest), nil
		}
		frame = frame[n:]
		if next >= 0 && int64(fstart) != next {
			return edges, next, len(rest), fmt.Errorf("serve: bad wire frame: starts at %d, expected %d", fstart, next)
		}
		// Decode the whole frame before yielding anything: a frame cut
		// off mid-edge contributes nothing, so the caller's "complete
		// prefix" is exactly the edges yielded.
		var v, w int64
		complete := true
		for i := uint64(0); i < count; i++ {
			var nv, nw int
			if i == 0 {
				var uv, uw uint64
				var okv, okw bool
				uv, nv, okv, err = wireUvarint(frame)
				if err == nil && okv {
					uw, nw, okw, err = wireUvarint(frame[nv:])
				}
				if err != nil {
					return edges, next, len(rest), err
				}
				if !okv || !okw {
					complete = false
					break
				}
				v, w = int64(uv), int64(uw)
			} else {
				var dv, dw int64
				var okv, okw bool
				dv, nv, okv, err = wireVarint(frame)
				if err == nil && okv {
					dw, nw, okw, err = wireVarint(frame[nv:])
				}
				if err != nil {
					return edges, next, len(rest), err
				}
				if !okv || !okw {
					complete = false
					break
				}
				v += dv
				w += dw
			}
			frame = frame[nv+nw:]
			if v < 0 || w < 0 {
				return edges, next, len(rest), fmt.Errorf("serve: bad wire frame: negative vertex (%d,%d)", v, w)
			}
			buf[i] = exec.Edge{V: int(v), W: int(w)}
		}
		if !complete {
			return edges, next, len(rest), nil
		}
		if yield != nil {
			for _, e := range buf[:count] {
				yield(e.V, e.W)
			}
		}
		edges += int64(count)
		next = int64(fstart) + int64(count)
		rest = frame
	}
	return edges, next, 0, nil
}

// wireUvarint reads one uvarint: ok=false means the buffer ran out
// (truncation), err means the encoding itself is invalid.
func wireUvarint(b []byte) (v uint64, n int, ok bool, err error) {
	v, n = binary.Uvarint(b)
	if n > 0 {
		return v, n, true, nil
	}
	if n == 0 {
		return 0, 0, false, nil
	}
	return 0, 0, false, fmt.Errorf("serve: bad wire frame: uvarint overflow")
}

// wireVarint is wireUvarint for zigzag varints.
func wireVarint(b []byte) (v int64, n int, ok bool, err error) {
	v, n = binary.Varint(b)
	if n > 0 {
		return v, n, true, nil
	}
	if n == 0 {
		return 0, 0, false, nil
	}
	return 0, 0, false, fmt.Errorf("serve: bad wire frame: varint overflow")
}
