package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"strconv"

	"kronbip/internal/exec"
	"kronbip/internal/obs"
	"kronbip/internal/spec"
)

// Block leases: POST /v1/leases is the worker half of distributed
// generation (internal/distgen).  A coordinator partitions a spec's
// canonical edge order into rows×cols blocks and asks one replica to
// stream one block; determinism means any replica can serve any block,
// a retried lease reproduces the identical bytes, and the closed-form
// core.BlockEdgeCount lets both sides verify the stream without trust.
//
// Unlike jobs, a lease is synchronous: the response IS the work.  There
// is no queue — admission is a concurrency cap (Config.MaxLeases) and a
// full server answers 429 + Retry-After so the coordinator backs off
// and routes the block to another replica.  Per-block audit is not
// offered: degree sums and 4-cycle identities are whole-product
// invariants, so the coordinator audits the merged stream instead and
// verifies each block against its closed-form count.

// HeaderBlockEdges carries the closed-form edge count of the leased
// block, sent as a response header before the first edge so the
// consumer knows the expected total up front (the exact streamed count
// is repeated in the TrailerEdges trailer at EOF).
const HeaderBlockEdges = "X-Kronbip-Block-Edges"

// Lease metrics (request/latency/error series come from the shared RED
// "leases" route; these cover the lease-specific lifecycle).
var (
	gLeasesActive = obs.Default.Gauge("serve.leases.active")
	mLeasesDone   = obs.Default.Counter("serve.leases.completed")
	mLeaseRejects = obs.Default.Counter("serve.leases.rejected") // 429 + 413 + 503
	mLeaseAborts  = obs.Default.Counter("serve.leases.aborts")
)

// leaseRequest is the POST /v1/leases body.  The spec fields follow the
// submitRequest vocabulary; the block coordinates follow
// core.EachEdgeBlock: (row, col) of a rows×cols blocking of the
// canonical edge order.
type leaseRequest struct {
	Factor  string   `json:"factor"`
	Factors []string `json:"factors"`
	Mode    string   `json:"mode"`
	Seed    *int64   `json:"seed"`
	Row     int      `json:"row"`
	Rows    int      `json:"rows"`
	Col     int      `json:"col"`
	Cols    int      `json:"cols"`
	Format  string   `json:"format"` // "ndjson" (default), "tsv" or "bin"
	// Offset skips the first N block-local edges — a coordinator that
	// banked the complete frames of a dropped lease resumes from the
	// last frame boundary instead of re-leasing the whole block.
	Offset int64 `json:"offset"`
}

func (s *Server) handleLease(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		mLeaseRejects.Inc()
		writeError(w, http.StatusServiceUnavailable, "%v", ErrDraining)
		return
	}
	var req leaseRequest
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad JSON body: %v", err)
		return
	}
	if req.Factor != "" && len(req.Factors) > 0 {
		writeError(w, http.StatusBadRequest, `use either "factor" or "factors", not both`)
		return
	}
	format, err := parseStreamFormat(req.Format, r.Header.Get("Accept"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	factors := req.Factors
	if req.Factor != "" {
		factors = []string{req.Factor}
	}
	sp := spec.Spec{Factors: factors, Mode: req.Mode, Seed: spec.DefaultSeed}
	if req.Seed != nil {
		sp.Seed = *req.Seed
	}
	sp = sp.WithDefaults()
	p, err := s.cache.get(sp)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	want, err := p.BlockEdgeCount(req.Row, req.Rows, req.Col, req.Cols)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if req.Offset < 0 {
		writeError(w, http.StatusBadRequest, "bad offset %d (want a non-negative block-local edge index)", req.Offset)
		return
	}
	if req.Offset > want {
		w.Header().Set(HeaderBlockEdges, strconv.FormatInt(want, 10))
		writeError(w, http.StatusRequestedRangeNotSatisfiable,
			"offset %d beyond block end (%d edges)", req.Offset, want)
		return
	}
	// The budget guards one lease's worth of generation, exactly as
	// MaxEdges guards one job's: the closed form rejects before any work.
	if s.cfg.MaxEdges > 0 && want > s.cfg.MaxEdges {
		mLeaseRejects.Inc()
		obs.Flight.RecordNote(obs.FlightWarn, "lease", "reject too-large", want, s.cfg.MaxEdges, requestFrom(r.Context()).id)
		writeError(w, http.StatusRequestEntityTooLarge,
			"%v: block carries %d edges > budget %d", ErrTooLarge, want, s.cfg.MaxEdges)
		return
	}
	// Concurrency cap in place of a queue: a lease is synchronous, so
	// "queued" would just hold the coordinator's connection open while
	// another replica sits idle.  429 tells it to go elsewhere.
	select {
	case s.leaseSem <- struct{}{}:
		defer func() { <-s.leaseSem; gLeasesActive.Add(-1) }()
		gLeasesActive.Add(1)
	default:
		mLeaseRejects.Inc()
		obs.Flight.RecordNote(obs.FlightWarn, "lease", "reject saturated", int64(s.cfg.MaxLeases), 0, requestFrom(r.Context()).id)
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(s.cfg.RetryAfter)))
		writeError(w, http.StatusTooManyRequests, "serve: lease capacity is full")
		return
	}

	ri := requestFrom(r.Context())
	obs.Flight.RecordNote(obs.FlightInfo, "lease", "lease start", int64(req.Row*req.Cols+req.Col), want, ri.id)

	w.Header().Set("Content-Type", contentTypeFor(format))
	w.Header().Set(HeaderBlockEdges, strconv.FormatInt(want, 10))
	w.Header().Set(HeaderStreamOffset, strconv.FormatInt(req.Offset, 10))
	w.Header().Set("Trailer", streamTrailers(false))
	w.WriteHeader(http.StatusOK)

	var out edgeStreamSink
	if format == "bin" {
		cuts, cerr := p.BlockTermEdgeStarts(req.Row, req.Rows, req.Col, req.Cols)
		if cerr != nil {
			// Unreachable: the coordinates validated above.
			cuts = []int64{want}
		}
		out = newBinSink(w, cuts, req.Offset)
	} else {
		out = newStreamSink(w, format == "ndjson")
	}
	// The whole-block lease rides the closure-free batch walker (the
	// same ~20% hot-loop win the sharded stream got in the batch-native
	// rework); a resumed lease seeks to the offset in closed form and
	// batches the tail.
	var sinkErr error
	deliver := func(batch []exec.Edge) bool {
		if e := out.EdgeBatch(batch); e != nil {
			sinkErr = e
			return false
		}
		return true
	}
	if req.Offset == 0 {
		err = p.EachEdgeBlockBatchContext(r.Context(), req.Row, req.Rows, req.Col, req.Cols, deliver)
	} else {
		err = p.EachEdgeBlockRangeBatchContext(r.Context(), req.Row, req.Rows, req.Col, req.Cols, req.Offset, want, deliver)
	}
	if err == nil {
		err = sinkErr
	}
	if ferr := out.Flush(); err == nil && ferr != nil {
		err = ferr
	}

	status := "complete"
	if err != nil {
		status = "aborted"
		mLeaseAborts.Inc()
		mStreamAborts.Inc()
		obs.Flight.RecordNote(obs.FlightWarn, "lease", "lease aborted", out.count(), want, ri.id)
	} else {
		mLeasesDone.Inc()
		obs.Flight.RecordNote(obs.FlightInfo, "lease", "lease done", out.count(), want, ri.id)
	}
	w.Header().Set(TrailerStatus, status)
	w.Header().Set(TrailerEdges, strconv.FormatInt(out.count(), 10))
	if ri.id != "" {
		w.Header().Set(http.TrailerPrefix+HeaderRequestID, ri.id)
	}
}
