package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"

	"kronbip/internal/spec"
)

// postLease issues one lease request and returns the response (body
// unread) for the caller to consume.
func postLease(t *testing.T, baseURL, body string) *http.Response {
	t.Helper()
	res, err := http.Post(baseURL+"/v1/leases", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/leases: %v", err)
	}
	return res
}

// TestLeaseBlocksReassemble: streaming every block of a 2×3 blocking and
// concatenating yields exactly |E_C| edges, each block matching both the
// X-Kronbip-Block-Edges header and the TrailerEdges trailer, with the
// edge set equal to a 1×1 lease of the same spec.
func TestLeaseBlocksReassemble(t *testing.T) {
	_, ts := testServer(t, Config{})
	const specBody = `"factors":["crown3","path3"],"mode":"selfloop"`

	whole := map[string]bool{}
	res := postLease(t, ts.URL, `{`+specBody+`,"row":0,"rows":1,"col":0,"cols":1}`)
	if res.StatusCode != http.StatusOK {
		t.Fatalf("1x1 lease: status %d", res.StatusCode)
	}
	wholeLines := readLeaseEdges(t, res)
	for _, l := range wholeLines {
		whole[l] = true
	}

	var total int64
	got := map[string]bool{}
	for r := 0; r < 2; r++ {
		for c := 0; c < 3; c++ {
			res := postLease(t, ts.URL,
				fmt.Sprintf(`{%s,"row":%d,"rows":2,"col":%d,"cols":3}`, specBody, r, c))
			if res.StatusCode != http.StatusOK {
				t.Fatalf("lease (%d,%d): status %d", r, c, res.StatusCode)
			}
			want, err := strconv.ParseInt(res.Header.Get(HeaderBlockEdges), 10, 64)
			if err != nil {
				t.Fatalf("lease (%d,%d): bad %s header: %v", r, c, HeaderBlockEdges, err)
			}
			lines := readLeaseEdges(t, res)
			if int64(len(lines)) != want {
				t.Fatalf("lease (%d,%d): streamed %d edges, header promised %d", r, c, len(lines), want)
			}
			if tr := res.Trailer.Get(TrailerEdges); tr != strconv.Itoa(len(lines)) {
				t.Fatalf("lease (%d,%d): trailer edges %q, streamed %d", r, c, tr, len(lines))
			}
			if st := res.Trailer.Get(TrailerStatus); st != "complete" {
				t.Fatalf("lease (%d,%d): trailer status %q", r, c, st)
			}
			for _, l := range lines {
				if got[l] {
					t.Fatalf("lease (%d,%d): duplicate edge %s across blocks", r, c, l)
				}
				got[l] = true
			}
			total += int64(len(lines))
		}
	}
	if total != int64(len(whole)) {
		t.Fatalf("blocks total %d edges, whole product %d", total, len(whole))
	}
	for l := range whole {
		if !got[l] {
			t.Fatalf("edge %s missing from the reassembled blocks", l)
		}
	}
}

// readLeaseEdges consumes an NDJSON lease body, returning one canonical
// "v,w" string per edge (res.Trailer is populated after the read).
func readLeaseEdges(t *testing.T, res *http.Response) []string {
	t.Helper()
	defer res.Body.Close()
	dec := json.NewDecoder(res.Body)
	var out []string
	for {
		var e struct{ V, W int }
		if err := dec.Decode(&e); err != nil {
			if err == io.EOF {
				break
			}
			t.Fatalf("decode lease edge: %v", err)
		}
		out = append(out, fmt.Sprintf("%d,%d", e.V, e.W))
	}
	return out
}

func TestLeaseValidation(t *testing.T) {
	_, ts := testServer(t, Config{})
	for _, tc := range []struct {
		name, body string
		wantCode   int
	}{
		{"bad json", `{`, http.StatusBadRequest},
		{"both factor fields", `{"factor":"crown3","factors":["crown3"],"rows":1,"cols":1}`, http.StatusBadRequest},
		{"bad factor", `{"factor":"nope","rows":1,"cols":1}`, http.StatusBadRequest},
		{"bad format", `{"factor":"crown3","rows":1,"cols":1,"format":"csv"}`, http.StatusBadRequest},
		{"row out of range", `{"factor":"crown3","row":2,"rows":2,"col":0,"cols":1}`, http.StatusBadRequest},
		{"zero rows", `{"factor":"crown3","row":0,"rows":0,"col":0,"cols":1}`, http.StatusBadRequest},
		{"col out of range", `{"factor":"crown3","row":0,"rows":1,"col":5,"cols":2}`, http.StatusBadRequest},
	} {
		res := postLease(t, ts.URL, tc.body)
		io.Copy(io.Discard, res.Body)
		res.Body.Close()
		if res.StatusCode != tc.wantCode {
			t.Errorf("%s: status %d, want %d", tc.name, res.StatusCode, tc.wantCode)
		}
	}
}

// TestLeaseTooLarge: a block whose closed-form count exceeds MaxEdges is
// refused 413 before any generation.
func TestLeaseTooLarge(t *testing.T) {
	_, ts := testServer(t, Config{MaxEdges: 4})
	res := postLease(t, ts.URL, `{"factor":"crown4","row":0,"rows":1,"col":0,"cols":1}`)
	io.Copy(io.Discard, res.Body)
	res.Body.Close()
	if res.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", res.StatusCode)
	}
}

// TestLeaseSaturated: with the lease semaphore full, a lease is answered
// 429 with a Retry-After of at least one second.
func TestLeaseSaturated(t *testing.T) {
	s, ts := testServer(t, Config{MaxLeases: 1})
	s.leaseSem <- struct{}{} // occupy the only slot
	defer func() { <-s.leaseSem }()
	res := postLease(t, ts.URL, `{"factor":"crown3","row":0,"rows":1,"col":0,"cols":1}`)
	io.Copy(io.Discard, res.Body)
	res.Body.Close()
	if res.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", res.StatusCode)
	}
	if ra, err := strconv.Atoi(res.Header.Get("Retry-After")); err != nil || ra < 1 {
		t.Fatalf("Retry-After %q, want an integer >= 1", res.Header.Get("Retry-After"))
	}
}

// TestLeaseDraining: a draining server refuses leases with 503.
func TestLeaseDraining(t *testing.T) {
	s, ts := testServer(t, Config{})
	s.draining.Store(true)
	res := postLease(t, ts.URL, `{"factor":"crown3","row":0,"rows":1,"col":0,"cols":1}`)
	io.Copy(io.Discard, res.Body)
	res.Body.Close()
	if res.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", res.StatusCode)
	}
}

// TestLeaseTSVFormat: the tsv rendering matches the ndjson edge list.
func TestLeaseTSVFormat(t *testing.T) {
	_, ts := testServer(t, Config{})
	res := postLease(t, ts.URL, `{"factor":"crown3","row":0,"rows":1,"col":0,"cols":2,"format":"tsv"}`)
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("status %d", res.StatusCode)
	}
	if ct := res.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/tab-separated-values") {
		t.Fatalf("content type %q", ct)
	}
	body, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(string(body), "\n"), "\n")
	want := res.Header.Get(HeaderBlockEdges)
	if strconv.Itoa(len(lines)) != want {
		t.Fatalf("tsv lease streamed %d lines, header promised %s", len(lines), want)
	}
	for _, l := range lines {
		if !strings.Contains(l, "\t") {
			t.Fatalf("tsv line %q has no tab", l)
		}
	}
}

// TestSubmitIdempotency: resubmitting with the same idempotency key
// returns the existing job (200, same id); a different key admits a new
// job; a malformed key is a 400.
func TestSubmitIdempotency(t *testing.T) {
	_, ts := testServer(t, Config{})
	body := `{"factor":"crown3"}`
	post := func(key string) (*http.Response, JobStatus) {
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		if key != "" {
			req.Header.Set(HeaderIdempotencyKey, key)
		}
		res, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer res.Body.Close()
		var st JobStatus
		_ = json.NewDecoder(res.Body).Decode(&st)
		return res, st
	}

	res1, st1 := post("dist-run-1:block-0")
	if res1.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: status %d, want 202", res1.StatusCode)
	}
	res2, st2 := post("dist-run-1:block-0")
	if res2.StatusCode != http.StatusOK {
		t.Fatalf("replayed submit: status %d, want 200", res2.StatusCode)
	}
	if st2.ID != st1.ID {
		t.Fatalf("replayed submit returned job %s, original was %s", st2.ID, st1.ID)
	}
	if loc := res2.Header.Get("Location"); loc != "/v1/jobs/"+st1.ID {
		t.Fatalf("replayed submit Location %q", loc)
	}
	res3, st3 := post("dist-run-1:block-1")
	if res3.StatusCode != http.StatusAccepted || st3.ID == st1.ID {
		t.Fatalf("different key: status %d job %s (original %s)", res3.StatusCode, st3.ID, st1.ID)
	}
	res4, _ := post(strings.Repeat("x", 129))
	if res4.StatusCode != http.StatusBadRequest {
		t.Fatalf("overlong key: status %d, want 400", res4.StatusCode)
	}
	res5, _ := post("bad key with spaces")
	if res5.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed key: status %d, want 400", res5.StatusCode)
	}
}

// TestIdempotencyKeyReleasedOnEviction: once the keyed job is evicted by
// retention, the key admits a fresh job again instead of pointing at a
// dead one.
func TestIdempotencyKeyReleasedOnEviction(t *testing.T) {
	s, _ := testServer(t, Config{Retention: 1})
	sp := spec.Spec{Factors: []string{"crown3"}}.WithDefaults()
	p, err := s.cache.get(sp)
	if err != nil {
		t.Fatal(err)
	}
	j1, existing, err := s.mgr.submit(sp, p, false, "evict-key", requestInfo{})
	if err != nil || existing {
		t.Fatalf("first submit: existing=%v err=%v", existing, err)
	}
	<-j1.Done()
	// Push enough unkeyed jobs through to evict j1 (Retention=1).
	for i := 0; i < 3; i++ {
		j, _, err := s.mgr.submit(sp, p, false, "", requestInfo{})
		if err != nil {
			t.Fatal(err)
		}
		<-j.Done()
	}
	j2, existing, err := s.mgr.submit(sp, p, false, "evict-key", requestInfo{})
	if err != nil {
		t.Fatal(err)
	}
	if existing || j2.id == j1.id {
		t.Fatalf("evicted key replayed old job: existing=%v id=%s (old %s)", existing, j2.id, j1.id)
	}
}
