package serve

import (
	"bytes"
	"context"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"

	"kronbip/internal/core"
	"kronbip/internal/exec"
)

// Parallel binary streaming.  Framing is a pure function of the stream
// offset (binSink.frameEnd), so disjoint spans of the canonical order
// encode to exactly the bytes the serial encoder would produce — as
// long as every span boundary lands on the frame grid.  The edges
// endpoint exploits that: spans are generated (closed-form range seek)
// and encoded concurrently, then written to the socket strictly in
// order.  The consumer cannot tell the difference; the bytes are
// identical, they just exist several cores sooner.

// wireSpanEdges is the per-span edge target of the parallel encoder —
// ~64 frames (≈1 MB encoded) amortizes scheduling without inflating
// the ordered fan-in's buffered window.  A variable so tests can lower
// it to force multi-span streams on small products; it must stay at
// least WireFrameEdges.
var wireSpanEdges = int64(64 * WireFrameEdges)

// alignFrameDown returns the largest frame-grid boundary ≤ x: a hard
// cut, or a WireFrameEdges multiple past the preceding hard cut.
func alignFrameDown(cuts []int64, x int64) int64 {
	prev := int64(0)
	if i := sort.Search(len(cuts), func(i int) bool { return cuts[i] > x }) - 1; i >= 0 {
		prev = cuts[i]
	}
	return prev + (x-prev)/WireFrameEdges*WireFrameEdges
}

// wireSpans splits [lo,hi) into frame-aligned spans of about
// wireSpanEdges edges, returning the ascending boundary list (first
// element lo, last hi).  lo itself need not be aligned: the first
// frame from an unaligned offset is short, exactly as the serial
// encoder would cut it, and every later boundary is on the grid.
func wireSpans(cuts []int64, lo, hi int64) []int64 {
	bounds := []int64{lo}
	for at := lo; at < hi; {
		b := hi
		if at+wireSpanEdges < hi {
			if a := alignFrameDown(cuts, at+wireSpanEdges); a > at {
				b = a
			}
		}
		bounds = append(bounds, b)
		at = b
	}
	return bounds
}

// binSpanResult is one encoded span awaiting its ordered turn on the
// socket.
type binSpanResult struct {
	buf   []byte
	edges int64
	tok   bool // span holds a window token; the writer releases it
	err   error
}

// streamBinParallel renders [lo,hi) of p's canonical order as binary
// wire frames through up to `workers` concurrent span encoders and
// writes the spans in order, returning the edges delivered.  With one
// worker (or one span) it degenerates to the serial encoder streaming
// straight to the socket.
func streamBinParallel(ctx context.Context, w http.ResponseWriter, p *core.Product, lo, hi int64, workers int) (int64, error) {
	cuts := p.TermEdgeStarts()
	spans := wireSpans(cuts, lo, hi)
	nspans := len(spans) - 1
	if workers > nspans {
		workers = nspans
	}
	if workers <= 1 {
		sink := newBinSink(w, cuts, lo)
		var sinkErr error
		err := p.EachEdgeRangeBatchContext(ctx, lo, hi, func(batch []exec.Edge) bool {
			if e := sink.EdgeBatch(batch); e != nil {
				sinkErr = e
				return false
			}
			return true
		})
		if err == nil {
			err = sinkErr
		}
		if ferr := sink.Flush(); err == nil {
			err = ferr
		}
		return sink.count(), err
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	ready := make([]chan binSpanResult, nspans)
	for i := range ready {
		ready[i] = make(chan binSpanResult, 1)
	}
	// The window caps completed-but-unwritten spans at 2 per worker, so
	// a slow consumer bounds buffered memory instead of inflating it.  A
	// token travels with each encoded span; the writer releases it after
	// the span drains to the socket.
	window := make(chan struct{}, 2*workers)
	var next atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= nspans {
					return
				}
				select {
				case window <- struct{}{}:
				case <-ctx.Done():
					// Still answer for the claimed span (without a token) so
					// the ordered reader never blocks on an abandoned slot.
					ready[i] <- binSpanResult{err: ctx.Err()}
					continue
				}
				var buf bytes.Buffer
				sink := newBinSink(&buf, cuts, spans[i])
				var sinkErr error
				err := p.EachEdgeRangeBatchContext(ctx, spans[i], spans[i+1], func(batch []exec.Edge) bool {
					if e := sink.EdgeBatch(batch); e != nil {
						sinkErr = e
						return false
					}
					return true
				})
				if err == nil {
					err = sinkErr
				}
				if err == nil {
					err = sink.Flush()
				}
				ready[i] <- binSpanResult{buf: buf.Bytes(), edges: sink.count(), tok: true, err: err}
			}
		}()
	}

	flusher, _ := w.(http.Flusher)
	var sent int64
	var ferr error
	for i := 0; i < nspans; i++ {
		r := <-ready[i]
		if r.tok {
			<-window
		}
		if ferr != nil {
			continue // aborted: keep draining so every worker can finish
		}
		if r.err != nil {
			ferr = r.err
			cancel()
			continue
		}
		if _, err := w.Write(r.buf); err != nil {
			ferr = err
			cancel()
			continue
		}
		sent += r.edges
		if flusher != nil {
			flusher.Flush()
		}
	}
	wg.Wait()
	return sent, ferr
}
