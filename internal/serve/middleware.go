package serve

import (
	"fmt"
	"net/http"
	"os"
	"runtime/debug"
	"time"

	"kronbip/internal/cli"
)

// statusWriter captures the response status for metrics while keeping
// http.Flusher reachable for the streaming endpoint.
type statusWriter struct {
	http.ResponseWriter
	code  int
	wrote bool
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.code = code
		w.wrote = true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(b)
}

// Flush forwards to the underlying writer so edge streams can
// flush-on-batch through the middleware wrapper.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// withMiddleware wraps the route mux with the service-wide concerns:
// request metrics, the version Server header, and panic recovery (a
// handler panic answers 500 and keeps the server up instead of killing
// the connection's goroutine with the process state unknown).
func (s *Server) withMiddleware(h http.Handler) http.Handler {
	serverToken := cli.Build().ServerToken()
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		mRequests.Inc()
		w.Header().Set("Server", serverToken)
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		defer func() {
			if p := recover(); p != nil {
				mPanics.Inc()
				mErrors.Inc()
				fmt.Fprintf(os.Stderr, "serve: panic in %s %s: %v\n%s", r.Method, r.URL.Path, p, debug.Stack())
				if !sw.wrote {
					writeError(sw, http.StatusInternalServerError, "internal error")
				}
			} else if sw.code >= 500 {
				mErrors.Inc()
			}
			hRequestSecs.Observe(time.Since(start).Seconds())
		}()
		h.ServeHTTP(sw, r)
	})
}
