package serve

import (
	"fmt"
	"net/http"
	"os"
	"runtime/debug"
	"time"

	"kronbip/internal/cli"
	"kronbip/internal/obs"
)

// statusWriter captures the response status and body byte count for
// metrics while keeping http.Flusher reachable for the streaming
// endpoint.
type statusWriter struct {
	http.ResponseWriter
	code  int
	wrote bool
	bytes int64 // body bytes written (headers and trailers excluded)
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.code = code
		w.wrote = true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	w.wrote = true
	n, err := w.ResponseWriter.Write(b)
	w.bytes += int64(n)
	return n, err
}

// Flush forwards to the underlying writer so edge streams can
// flush-on-batch through the middleware wrapper.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// withMiddleware wraps the route mux with the service-wide concerns:
// request identity (request id + W3C trace context, accepted or minted,
// echoed on every response), request metrics — the unlabeled totals, the
// SLO traffic counters (non-probe routes only, so readiness/metrics
// polls never feed the evaluator that decides /readyz), plus the
// per-route RED series and the SLO latency histogram, the latter two
// gated on one obs.Enabled load per request (DESIGN.md §6a) — the
// logfmt access log, the version Server header, and panic recovery (a handler panic
// answers 500 and keeps the server up instead of killing the
// connection's goroutine with the process state unknown; the 500 reaches
// the RED error counter even when the handler had already written a
// success header).
func (s *Server) withMiddleware(h http.Handler) http.Handler {
	serverToken := cli.Build().ServerToken()
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		enabled := obs.Enabled()
		ri := resolveIdentity(r)
		r = r.WithContext(withRequestInfo(r.Context(), ri))
		mRequests.Inc()
		hdr := w.Header()
		hdr.Set("Server", serverToken)
		hdr.Set(HeaderRequestID, ri.id)
		hdr.Set(HeaderTraceparent, ri.traceparent())
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		defer func() {
			status := sw.code
			if p := recover(); p != nil {
				// A recovered panic is a 500 for accounting even when the
				// handler already committed a success header.
				status = http.StatusInternalServerError
				mPanics.Inc()
				mErrors.Inc()
				fmt.Fprintf(os.Stderr, "serve: panic in %s %s (req_id=%s): %v\n%s",
					r.Method, r.URL.Path, ri.id, p, debug.Stack())
				if !sw.wrote {
					writeError(sw, http.StatusInternalServerError, "internal error")
				}
			} else if status >= 500 {
				mErrors.Inc()
			}
			elapsed := time.Since(start).Seconds()
			hRequestSecs.Observe(elapsed)
			route := routeLabel(r)
			probe := isProbeRoute(route)
			// SLO inputs see only real traffic: probe routes are excluded
			// so /readyz answering 503 during a burn (or /healthz and
			// /metrics polls) cannot feed the very error rate and latency
			// window the evaluator judges — otherwise a burn latches once
			// the load balancer pulls real traffic and only probes remain.
			if !probe {
				mSLORequests.Inc()
				if status >= 500 {
					mSLOErrors.Inc()
				}
			}
			if enabled {
				s.red.Route(route).Observe(status, elapsed, sw.bytes)
				// Streaming routes are excluded from the latency SLO: a
				// legitimate multi-minute edge stream or block lease is
				// not a burn.
				if !probe && route != "jobs.edges" && route != "leases" {
					s.sloHist.Observe(elapsed)
				}
			}
			// Flight trail: each non-probe request leaves one fixed-size
			// ring record — the dump's stand-in for the last N access-log
			// lines.  All fields are pre-existing (route is from the
			// static label table, ri.id was built for the response
			// header), so the append allocates nothing.  Probe routes are
			// skipped: a readiness poll every second would displace the
			// events a post-mortem actually needs.
			if !probe {
				sev := obs.FlightInfo
				if status >= 500 {
					sev = obs.FlightWarn
				}
				obs.Flight.RecordNote(sev, "http", route, int64(status), int64(elapsed*1e6), ri.id)
			}
			s.logAccess(r, ri, route, status, sw.bytes, elapsed)
		}()
		h.ServeHTTP(sw, r)
	})
}

// logAccess emits one logfmt access-log line when the server has an
// access-log writer; a nil writer costs one comparison.  The mutex keeps
// concurrent request lines whole.
func (s *Server) logAccess(r *http.Request, ri requestInfo, route string, status int, bytes int64, seconds float64) {
	if s.cfg.AccessLog == nil {
		return
	}
	s.logMu.Lock()
	defer s.logMu.Unlock()
	fmt.Fprintf(s.cfg.AccessLog,
		"access t=%s method=%s path=%q route=%s status=%d bytes=%d dur_ms=%.3f req_id=%s trace_id=%s\n",
		time.Now().UTC().Format(time.RFC3339Nano), r.Method, r.URL.RequestURI(),
		route, status, bytes, seconds*1000, ri.id, ri.traceID)
}
