package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"kronbip/internal/core"
	"kronbip/internal/exec"
	"kronbip/internal/spec"
)

// benchWireProduct builds the repo-wide benchmark product (the paper's
// unicode network squared, ~4.2M edges) — the same workload the
// BenchmarkStream_* family in the repo root measures, so the wire
// numbers are directly comparable to the in-memory stream baselines.
func benchWireProduct(b *testing.B) *core.Product {
	b.Helper()
	p, err := spec.Spec{Factors: []string{"unicode"}}.WithDefaults().Build()
	if err != nil {
		b.Fatal(err)
	}
	return p
}

// nopFlushWriter is the cheapest http.ResponseWriter that still
// satisfies the encoder's flusher probe — encode cost only, no I/O.
type nopFlushWriter struct{ h http.Header }

func (w nopFlushWriter) Header() http.Header         { return w.h }
func (w nopFlushWriter) WriteHeader(int)             {}
func (w nopFlushWriter) Write(b []byte) (int, error) { return len(b), nil }
func (w nopFlushWriter) Flush()                      {}

// BenchmarkStreamWire_BinEncode isolates the binary encoder: canonical
// edges pre-collected, batches fed straight to a binSink over a no-op
// writer.  This is the per-edge cost the format adds on top of
// generation — the number to hold against BenchmarkStream_ShardedBatch.
func BenchmarkStreamWire_BinEncode(b *testing.B) {
	p := benchWireProduct(b)
	edges := make([]exec.Edge, 0, p.NumEdges())
	p.EachEdge(func(v, w int) bool {
		edges = append(edges, exec.Edge{V: v, W: w})
		return true
	})
	cuts := p.TermEdgeStarts()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink := newBinSink(nopFlushWriter{h: make(http.Header)}, cuts, 0)
		for lo := 0; lo < len(edges); lo += exec.BatchLen {
			hi := lo + exec.BatchLen
			if hi > len(edges) {
				hi = len(edges)
			}
			if err := sink.EdgeBatch(edges[lo:hi]); err != nil {
				b.Fatal(err)
			}
		}
		if err := sink.Flush(); err != nil {
			b.Fatal(err)
		}
		if sink.count() != p.NumEdges() {
			b.Fatalf("encoded %d edges, want %d", sink.count(), p.NumEdges())
		}
	}
	b.ReportMetric(float64(p.NumEdges()), "edges/op")
}

// benchWireServer stands up a serve instance with one finished unicode
// job and returns the edges-stream URL prefix.
func benchWireServer(b *testing.B) (baseURL string) {
	b.Helper()
	s := New(Config{JobTimeout: time.Minute})
	ts := httptest.NewServer(s.Handler())
	b.Cleanup(func() {
		ts.Close()
		_ = s.Shutdown(5 * time.Second)
	})
	res, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"factor":"unicode","mode":"selfloop"}`))
	if err != nil {
		b.Fatal(err)
	}
	var st JobStatus
	if err := json.NewDecoder(res.Body).Decode(&st); err != nil {
		b.Fatal(err)
	}
	res.Body.Close()
	deadline := time.Now().Add(30 * time.Second)
	for {
		r, err := http.Get(ts.URL + "/v1/jobs/" + st.ID)
		if err != nil {
			b.Fatal(err)
		}
		var cur JobStatus
		if err := json.NewDecoder(r.Body).Decode(&cur); err != nil {
			b.Fatal(err)
		}
		r.Body.Close()
		if cur.State == "done" {
			break
		}
		if cur.State == "failed" || time.Now().After(deadline) {
			b.Fatalf("bench job state %q", cur.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
	return ts.URL + "/v1/jobs/" + st.ID + "/edges"
}

// benchWireSocket streams the job's edges once per iteration over a real
// HTTP connection, draining the body to io.Discard.
func benchWireSocket(b *testing.B, url string) {
	b.ResetTimer()
	var bytes int64
	for i := 0; i < b.N; i++ {
		res, err := http.Get(url)
		if err != nil {
			b.Fatal(err)
		}
		n, err := io.Copy(io.Discard, res.Body)
		res.Body.Close()
		if err != nil {
			b.Fatal(err)
		}
		if st := res.Trailer.Get(TrailerStatus); st != "complete" {
			b.Fatalf("trailer status %q", st)
		}
		bytes = n
	}
	b.SetBytes(bytes)
}

// BenchmarkStreamWire_BinSocket is the tentpole acceptance number: the
// full GET /edges?format=bin path — generation, binary framing, HTTP —
// which must land within ~2x of the in-memory batched stream baseline
// (BenchmarkStream_ShardedBatch); benchcheck gates the family at 1.2x
// against the recorded baseline.
func BenchmarkStreamWire_BinSocket(b *testing.B) {
	url := benchWireServer(b)
	benchWireSocket(b, url+"?format=bin")
}

// BenchmarkStreamWire_NDJSONSocket is the text-format comparator over
// the identical socket path — the rendering cost the binary format is
// buying back.
func BenchmarkStreamWire_NDJSONSocket(b *testing.B) {
	url := benchWireServer(b)
	benchWireSocket(b, url+"?format=ndjson")
}

// BenchmarkStreamWire_Decode measures the consumer side: DecodeWire over
// a fully-encoded canonical stream, yielding every edge.
func BenchmarkStreamWire_Decode(b *testing.B) {
	p := benchWireProduct(b)
	rec := httptest.NewRecorder()
	sink := newBinSink(rec, p.TermEdgeStarts(), 0)
	var batch []exec.Edge
	p.EachEdge(func(v, w int) bool {
		batch = append(batch, exec.Edge{V: v, W: w})
		if len(batch) == exec.BatchLen {
			if err := sink.EdgeBatch(batch); err != nil {
				b.Fatal(err)
			}
			batch = batch[:0]
		}
		return true
	})
	if len(batch) > 0 {
		if err := sink.EdgeBatch(batch); err != nil {
			b.Fatal(err)
		}
	}
	if err := sink.Flush(); err != nil {
		b.Fatal(err)
	}
	payload := rec.Body.Bytes()
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var n int64
		edges, _, trailing, err := DecodeWire(payload, 0, func(v, w int) { n++ })
		if err != nil || trailing != 0 {
			b.Fatalf("decode: edges=%d trailing=%d err=%v", edges, trailing, err)
		}
		if n != p.NumEdges() {
			b.Fatalf("decoded %d edges, want %d", n, p.NumEdges())
		}
	}
	b.ReportMetric(float64(p.NumEdges()), "edges/op")
}
