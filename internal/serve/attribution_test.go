package serve

import (
	"context"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"kronbip/internal/obs"
	"kronbip/internal/spec"
)

// TestJobResourceAttribution walks the attribution pipeline end to end:
// a finished job carries exact cpu/pool-task sums and approximate alloc
// deltas in its status, the jobs-obs endpoint surfaces them flagged as
// such, and the serve.job.* histograms plus the runtime.* gauges show up
// on a /metrics scrape.
func TestJobResourceAttribution(t *testing.T) {
	obs.SetEnabled(true)
	defer obs.SetEnabled(false)
	_, ts := testServer(t, Config{Shards: 2})
	st, res := submitJob(t, ts.URL, `{"factor":"crown6","seed":1}`)
	if res.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", res.StatusCode)
	}
	final := waitState(t, ts.URL, st.ID, "done")
	if final.CPUSeconds <= 0 {
		t.Errorf("cpu_seconds = %v, want > 0", final.CPUSeconds)
	}
	if final.PoolTasks <= 0 {
		t.Errorf("pool_tasks = %d, want > 0", final.PoolTasks)
	}
	if final.AllocBytesApprox <= 0 || final.AllocsApprox <= 0 {
		t.Errorf("alloc deltas = %d bytes / %d objects, want > 0",
			final.AllocBytesApprox, final.AllocsApprox)
	}

	var jo struct {
		Resources *struct {
			CPUSeconds        float64 `json:"cpu_seconds"`
			PoolTasks         int64   `json:"pool_tasks"`
			AllocBytes        int64   `json:"alloc_bytes"`
			AllocsApproximate bool    `json:"allocs_approximate"`
		} `json:"resources"`
	}
	getJSON(t, ts.URL+"/v1/jobs/"+st.ID+"/obs", &jo)
	if jo.Resources == nil {
		t.Fatal("jobs-obs payload has no resources section")
	}
	if jo.Resources.CPUSeconds != final.CPUSeconds || jo.Resources.PoolTasks != final.PoolTasks {
		t.Errorf("jobs-obs resources %+v disagree with job status (cpu=%v tasks=%d)",
			jo.Resources, final.CPUSeconds, final.PoolTasks)
	}
	if !jo.Resources.AllocsApproximate {
		t.Error("alloc deltas not flagged approximate")
	}

	body := getBody(t, ts.URL+"/metrics")
	for _, want := range []string{
		"serve_job_cpu_seconds_count", "serve_job_allocs_count",
		"serve_job_alloc_bytes_count", "runtime_heap_bytes",
		"# HELP serve_job_cpu_seconds ",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestJobAttributionDisabledIsZero locks the gate: with instrumentation
// off, the job runs unmetered — no clock reads, no alloc snapshots — and
// the status reports zeros rather than half-collected numbers.
func TestJobAttributionDisabledIsZero(t *testing.T) {
	obs.SetEnabled(false)
	_, ts := testServer(t, Config{Shards: 2})
	st, _ := submitJob(t, ts.URL, `{"factor":"crown4","seed":1}`)
	final := waitState(t, ts.URL, st.ID, "done")
	if final.CPUSeconds != 0 || final.PoolTasks != 0 || final.AllocBytesApprox != 0 {
		t.Errorf("disabled run still attributed: cpu=%v tasks=%d bytes=%d",
			final.CPUSeconds, final.PoolTasks, final.AllocBytesApprox)
	}
}

// TestFlightRecorderSeesJobLifecycle submits and finishes a job, then
// reads /debug/flightrecorder: the dump must carry the job's lifecycle
// trail and the request records that drove it.
func TestFlightRecorderSeesJobLifecycle(t *testing.T) {
	_, ts := testServer(t, Config{})
	st, _ := submitJob(t, ts.URL, `{"factor":"crown4","seed":1}`)
	waitState(t, ts.URL, st.ID, "done")
	dump := getBody(t, ts.URL+"/debug/flightrecorder")
	for _, want := range []string{
		`cat=job ev="job submitted"`,
		`cat=job ev="job running"`,
		`cat=job ev="job done"`,
		`cat=http ev="jobs.submit"`,
		"\nmetrics {",
	} {
		if !strings.Contains(dump, want) {
			t.Errorf("flight dump missing %q\n--- dump ---\n%s", want, dump)
		}
	}
}

func getBody(t *testing.T, url string) string {
	t.Helper()
	res, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer res.Body.Close()
	b, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// BenchmarkServeJobAttribution measures one generation run through the
// manager, obs disabled vs enabled — the disabled-vs-enabled contract
// for per-job attribution (meter on the context, alloc bracketing),
// policed by benchcheck under the BenchmarkServe 1.5x family bound.
func BenchmarkServeJobAttribution(b *testing.B) {
	s := New(Config{Workers: 1, Shards: 2})
	defer s.Shutdown(time.Second)
	sp := spec.Spec{Factors: []string{"crown6"}, Seed: 1}.WithDefaults()
	p, err := s.cache.get(sp)
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			j := &Job{id: "bench", spec: sp, product: p, ctx: context.Background()}
			if err := s.mgr.generate(context.Background(), j); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("disabled", func(b *testing.B) {
		obs.SetEnabled(false)
		run(b)
	})
	b.Run("enabled", func(b *testing.B) {
		obs.SetEnabled(true)
		defer obs.SetEnabled(false)
		run(b)
	})
}
