// Package serve exposes the generation pipeline as a long-running HTTP
// service — the query shape the paper's ground truth is built for: all
// of a product's global 4-cycle/degree/community statistics live in
// O(|E_C|^(1/2)) factor state, so a tiny resident server can answer
// global queries about astronomically large products and stream their
// edge lists on demand without ever materializing them.
//
// The service has four layers:
//
//   - Job manager (jobs.go): a bounded submission queue feeding a fixed
//     worker pool; each generation job runs on the internal/exec engine
//     under its own cancellable context (DELETE /v1/jobs/{id} cancels),
//     moves through queued → running → done/failed/cancelled, and a
//     bounded set of recent results is retained for polling.
//   - Admission control (jobs.go, middleware.go): a full queue answers
//     429 with Retry-After; a spec whose closed-form |E_C| exceeds the
//     per-job budget is rejected with 413 before any generation work;
//     sync endpoints run under a request timeout; every handler sits
//     behind panic recovery; shutdown drains running jobs first.
//   - Sync ground truth (handlers.go): GET /v1/truth and /v1/stats
//     answer from the factor closed forms alone, through an LRU cache
//     keyed by canonical factor spec (cache.go) so repeated queries for
//     popular factors skip factor construction entirely.
//   - Streaming output (stream.go): GET /v1/jobs/{id}/edges re-streams
//     the job's deterministic edge list as NDJSON or TSV with
//     flush-on-batch, optionally auditing the stream online
//     (internal/audit) and reporting the outcome in HTTP trailers.
//
// Everything is instrumented through internal/obs (request counters,
// queue-depth/running gauges, cache hit/miss counters, per-job timeline
// groups) and exported on /metrics and /metrics.json.
package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"kronbip/internal/obs"
)

// Service metrics, published on obs.Default.  Serve accounting is
// per-request/per-job (never per edge), so unlike the generation hot
// paths it does not gate on obs.Enabled — see DESIGN.md §6a.
var (
	mRequests    = obs.Default.Counter("serve.http.requests")
	mErrors      = obs.Default.Counter("serve.http.errors") // 5xx responses
	mPanics      = obs.Default.Counter("serve.http.panics")
	hRequestSecs = obs.Default.Histogram("serve.http.seconds")
	// SLO traffic inputs: real (non-probe) requests and their 5xx
	// responses.  The evaluator must never judge its own probe traffic —
	// if /readyz 503s fed serve.slo.errors, a burn would latch: the load
	// balancer pulls real traffic, the window fills with failing readiness
	// polls, and the error rate pins at 100% after the fault clears.  The
	// middleware advances these only for routes outside isProbeRoute.
	mSLORequests  = obs.Default.Counter("serve.slo.requests")
	mSLOErrors    = obs.Default.Counter("serve.slo.errors")
	mCacheHits    = obs.Default.Counter("serve.cache.hits")
	mCacheMisses  = obs.Default.Counter("serve.cache.misses")
	gCacheSize    = obs.Default.Gauge("serve.cache.size")
	gQueueDepth   = obs.Default.Gauge("serve.jobs.queue_depth")
	gJobsRunning  = obs.Default.Gauge("serve.jobs.running")
	mSubmitted    = obs.Default.Counter("serve.jobs.submitted")
	mIdemReplays  = obs.Default.Counter("serve.jobs.idem_replays") // resubmissions answered from the idempotency index
	mRejected     = obs.Default.Counter("serve.jobs.rejected")     // 429 + 413 + 503
	mJobsDone     = obs.Default.Counter("serve.jobs.done")
	mJobsFailed   = obs.Default.Counter("serve.jobs.failed")
	mJobsCancel   = obs.Default.Counter("serve.jobs.cancelled")
	mStreamEdges  = obs.Default.Counter("serve.stream.edges") // edges sent to clients, batched
	mStreamAborts = obs.Default.Counter("serve.stream.aborts")
	// Per-job resource attribution (DESIGN.md §6a): observed once per
	// finished job, never per edge or per shard.  These are histograms,
	// not per-job-id labeled series — job ids are unbounded, so labeling
	// by them would grow the registry without limit and break the
	// deterministic exported-name contract; the exact per-job numbers
	// live in the job status JSON and GET /v1/jobs/{id}/obs instead.
	hJobCPUSecs    = obs.Default.Histogram("serve.job.cpu_seconds")
	hJobAllocs     = obs.Default.Histogram("serve.job.allocs", 1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9)
	hJobAllocBytes = obs.Default.Histogram("serve.job.alloc_bytes", 1e6, 1e7, 1e8, 1e9, 1e10, 1e11)
)

// DefaultMaxEdges is the default per-job closed-form edge budget: large
// enough for every spec the experiment suite generates, small enough
// that a runaway sf spec cannot park a worker for hours.
const DefaultMaxEdges = int64(1) << 33

// Config tunes the service; zero values select the documented defaults.
type Config struct {
	// Workers is the number of generation jobs run concurrently
	// (default GOMAXPROCS).  This is the max-in-flight half of
	// admission control.
	Workers int
	// QueueDepth is how many submitted jobs may wait beyond the running
	// set before submissions are answered 429 (default 16).
	QueueDepth int
	// MaxEdges rejects any spec whose closed-form |E_C| exceeds it with
	// 413, before generation starts (default DefaultMaxEdges; negative
	// disables the budget).
	MaxEdges int64
	// JobTimeout bounds one job's generation run (default 10m; 0 keeps
	// the default, negative disables).
	JobTimeout time.Duration
	// RequestTimeout bounds the sync endpoints — truth, stats, submit
	// (default 30s).  Streaming responses are governed by the job
	// context instead.
	RequestTimeout time.Duration
	// RetryAfter is the backoff hint sent with 429 (default 1s).
	RetryAfter time.Duration
	// Retention is how many finished jobs stay pollable before the
	// oldest are evicted (default 64).
	Retention int
	// CacheSize is the factor-spec product cache capacity (default 128).
	CacheSize int
	// Shards is the per-job generation parallelism (default GOMAXPROCS).
	Shards int
	// MaxLeases caps concurrently-served block leases (POST /v1/leases);
	// excess requests are answered 429 + Retry-After so a dist-gen
	// coordinator routes the block to another replica instead of queueing
	// (default 2×GOMAXPROCS).
	MaxLeases int
	// Audit runs the online ground-truth auditor inside every job
	// (per-request "audit" fields override per job / per stream).
	Audit bool
	// AuditSample is the auditor's edge-membership sampling stride
	// (0 = the audit package default).
	AuditSample int
	// SLOWindow is the rolling span the SLO evaluator judges over
	// (default 60s).
	SLOWindow time.Duration
	// SLOP99 is the latency objective for the non-streaming routes:
	// windowed p99 above it flips /readyz to 503 (0 keeps the default
	// 1s; negative disables the latency objective — a zero-latency
	// objective is not expressible, matching obs.SLOOptions).
	SLOP99 time.Duration
	// SLOErrorRate is the 5xx error-rate objective as a fraction.  Nil
	// selects the default 0.05; pointing at 0 means zero tolerance
	// (any windowed 5xx burns); pointing at a negative value disables
	// the error objective — the same vocabulary as obs.SLOOptions.
	SLOErrorRate *float64
	// AccessLog, when non-nil, receives one logfmt line per request
	// carrying method, route, status, bytes, duration and the request/
	// trace ids.  Nil disables access logging entirely.
	AccessLog io.Writer
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.MaxEdges == 0 {
		c.MaxEdges = DefaultMaxEdges
	}
	if c.JobTimeout == 0 {
		c.JobTimeout = 10 * time.Minute
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.Retention <= 0 {
		c.Retention = 64
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 128
	}
	if c.Shards <= 0 {
		c.Shards = runtime.GOMAXPROCS(0)
	}
	if c.MaxLeases <= 0 {
		c.MaxLeases = 2 * runtime.GOMAXPROCS(0)
	}
	if c.SLOWindow <= 0 {
		c.SLOWindow = time.Minute
	}
	if c.SLOP99 == 0 {
		c.SLOP99 = time.Second
	}
	if c.SLOErrorRate == nil {
		rate := 0.05
		c.SLOErrorRate = &rate
	}
	return c
}

// Server is one service instance: the HTTP surface plus its job manager
// and product cache.  Construct with New, expose via Handler (tests) or
// Listen+Serve (production), stop with Shutdown.
type Server struct {
	cfg     Config
	mgr     *manager
	cache   *productCache
	handler http.Handler
	httpSrv *http.Server
	ln      net.Listener
	started time.Time

	// Observability state: the per-route RED resolver, the SLO latency
	// source (non-streaming routes only) and the rolling-window
	// evaluator behind /readyz.  draining flips readiness ahead of
	// shutdown so a load balancer stops routing before the listener
	// closes; logMu keeps concurrent access-log lines whole.
	red      *obs.RED
	sloHist  *obs.Histogram
	slo      *obs.SLO
	draining atomic.Bool
	logMu    sync.Mutex

	// leaseSem caps concurrent block leases (Config.MaxLeases): a lease
	// is synchronous generation work, so admission is a semaphore, not
	// the job queue.
	leaseSem chan struct{}
}

// New builds a Server from cfg.  The job manager's workers start
// immediately; call Shutdown to release them.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		cache:    newProductCache(cfg.CacheSize),
		mgr:      newManager(cfg),
		started:  time.Now(),
		red:      obs.NewRED(obs.Default, "serve.http"),
		sloHist:  obs.Default.Histogram("serve.slo.seconds"),
		leaseSem: make(chan struct{}, cfg.MaxLeases),
	}
	// The evaluator reads the dedicated serve.slo.* traffic counters, not
	// serve.http.*: probe routes (readyz/healthz/metrics) never reach the
	// SLO inputs, so readiness polls during a burn cannot keep the burn
	// alive after real traffic recovers.
	s.slo = obs.NewSLO(obs.Default, "serve.slo", s.sloHist, mSLORequests, mSLOErrors, obs.SLOOptions{
		Window:       cfg.SLOWindow,
		P99Max:       cfg.SLOP99,
		ErrorRateMax: *cfg.SLOErrorRate,
	})
	// HELP text for the attribution families: the numbers are models
	// (busy wall-time as CPU, process-wide alloc deltas), and a scrape
	// should say so without the reader opening DESIGN.md.
	obs.Default.SetHelp("serve.job.cpu_seconds",
		"Attributed CPU per job: busy wall-time summed over its generation shards.")
	obs.Default.SetHelp("serve.job.allocs",
		"Approximate heap objects allocated during a job's run (process-wide delta).")
	obs.Default.SetHelp("serve.job.alloc_bytes",
		"Approximate heap bytes allocated during a job's run (process-wide delta).")
	// Pre-resolve the full route-label table so the RED map never grows
	// on the request path and the exported name set is deterministic
	// from the first scrape.
	for _, route := range routeLabels {
		s.red.Route(route)
	}
	s.handler = s.withMiddleware(s.routes())
	return s
}

// Handler returns the fully-assembled HTTP handler (middleware
// included), for httptest-based exercising without a listener.
func (s *Server) Handler() http.Handler { return s.handler }

// Listen binds the server to addr (":0" picks a free port; see Addr).
func (s *Server) Listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("serve: listen %s: %w", addr, err)
	}
	s.ln = ln
	return nil
}

// Addr returns the bound listen address; empty before Listen.
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Serve accepts connections until ctx is cancelled (SIGINT in the CLI),
// then shuts down gracefully within drainTimeout: submissions are
// refused, running jobs drain to completion, in-flight HTTP responses
// (including edge streams) finish, and the listener closes.  A clean
// drain returns nil — the CLI maps that to exit 0 — and an overrun
// drain returns the drain error.
func (s *Server) Serve(ctx context.Context, drainTimeout time.Duration) error {
	if s.ln == nil {
		return errors.New("serve: Serve called before Listen")
	}
	s.httpSrv = &http.Server{Handler: s.handler, ReadHeaderTimeout: 10 * time.Second}
	errc := make(chan error, 1)
	go func() { errc <- s.httpSrv.Serve(s.ln) }()
	select {
	case err := <-errc:
		// Listener failure: force-stop the job manager, nothing to drain
		// for.
		s.mgr.close()
		return err
	case <-ctx.Done():
	}
	return s.Shutdown(drainTimeout)
}

// Shutdown drains the server: new submissions are refused (503), queued
// jobs are cancelled, running jobs finish, then in-flight HTTP exchanges
// complete — all bounded by drainTimeout, after which remaining work is
// cancelled hard.  Safe to call without Serve (httptest usage).
func (s *Server) Shutdown(drainTimeout time.Duration) error {
	s.draining.Store(true) // /readyz answers 503 for the whole drain
	dctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	err := s.mgr.drain(dctx)
	if s.httpSrv != nil {
		if herr := s.httpSrv.Shutdown(dctx); herr != nil && err == nil {
			err = herr
		}
	}
	s.mgr.close()
	return err
}
