package serve

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"kronbip/internal/core"
	"kronbip/internal/exec"
	"kronbip/internal/spec"
)

// wireTestProduct builds the standard wire-format test product: big
// enough that at least one term spans several wire frames (so the
// 4096-edge grid cuts are exercised, not just the term cuts) and that
// the streaming sinks hit their mid-stream flush cadence.
func wireTestProduct(t testing.TB) *core.Product {
	t.Helper()
	p, err := spec.Spec{Factors: []string{"biclique8x8", "path4"}, Mode: "selfloop"}.
		WithDefaults().Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.NumEdges() <= 2*streamFlushEdges {
		t.Fatalf("wire test product too small: %d edges (want > %d)", p.NumEdges(), 2*streamFlushEdges)
	}
	return p
}

// productEdges collects the canonical order as exec.Edge values.
func productEdges(p *core.Product) []exec.Edge {
	out := make([]exec.Edge, 0, p.NumEdges())
	p.EachEdge(func(v, w int) bool {
		out = append(out, exec.Edge{V: v, W: w})
		return true
	})
	return out
}

// encodeWire renders edges[lo:hi) of the canonical order through a
// binSink opened at stream offset lo with the product's hard cuts.
func encodeWire(t *testing.T, p *core.Product, edges []exec.Edge, lo, hi int64) []byte {
	t.Helper()
	rec := httptest.NewRecorder()
	sink := newBinSink(rec, p.TermEdgeStarts(), lo)
	if err := sink.EdgeBatch(edges[lo:hi]); err != nil {
		t.Fatal(err)
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	if sink.count() != hi-lo {
		t.Fatalf("encoder counted %d edges, fed %d", sink.count(), hi-lo)
	}
	return rec.Body.Bytes()
}

// TestWireRoundTrip: encoding the full canonical stream and decoding it
// back reproduces every edge in order, with no trailing bytes.
func TestWireRoundTrip(t *testing.T) {
	p := wireTestProduct(t)
	edges := productEdges(p)
	payload := encodeWire(t, p, edges, 0, p.NumEdges())

	var got []exec.Edge
	n, next, trailing, err := DecodeWire(payload, 0, func(v, w int) {
		got = append(got, exec.Edge{V: v, W: w})
	})
	if err != nil {
		t.Fatal(err)
	}
	if trailing != 0 {
		t.Fatalf("%d trailing bytes on a complete payload", trailing)
	}
	if n != p.NumEdges() || next != p.NumEdges() {
		t.Fatalf("decoded %d edges, next=%d, want %d", n, next, p.NumEdges())
	}
	for i := range edges {
		if got[i] != edges[i] {
			t.Fatalf("edge %d decoded as %v, want %v", i, got[i], edges[i])
		}
	}
	// Size sanity: the point of the format is beating text rendering.
	if int64(len(payload)) > 8*p.NumEdges() {
		t.Fatalf("wire payload %d bytes for %d edges — deltas are not compressing", len(payload), p.NumEdges())
	}
}

// TestWireBatchMatchesPerEdge: feeding the encoder per-edge and in
// arbitrary batch sizes produces identical bytes — framing depends only
// on the stream offset, not on delivery granularity.
func TestWireBatchMatchesPerEdge(t *testing.T) {
	p := wireTestProduct(t)
	edges := productEdges(p)[:10000]

	rec := httptest.NewRecorder()
	sink := newBinSink(rec, p.TermEdgeStarts(), 0)
	for _, e := range edges {
		if err := sink.Edge(e.V, e.W); err != nil {
			t.Fatal(err)
		}
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	perEdge := rec.Body.Bytes()

	rec2 := httptest.NewRecorder()
	sink2 := newBinSink(rec2, p.TermEdgeStarts(), 0)
	for lo := 0; lo < len(edges); {
		hi := lo + 1 + (lo*2879+7)%701 // deterministic ragged batch sizes
		if hi > len(edges) {
			hi = len(edges)
		}
		if err := sink2.EdgeBatch(edges[lo:hi]); err != nil {
			t.Fatal(err)
		}
		lo = hi
	}
	if err := sink2.Flush(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(perEdge, rec2.Body.Bytes()) {
		t.Fatal("batched encoding differs from per-edge encoding")
	}
}

// alignedCuts returns every frame-aligned offset of the stream: the term
// hard cuts plus the WireFrameEdges grid between them — exactly the
// offsets at which a resumed stream is byte-identical.
func alignedCuts(p *core.Product) []int64 {
	var ks []int64
	cuts := p.TermEdgeStarts()
	prev := int64(0)
	for _, c := range cuts {
		for g := prev; g < c; g += WireFrameEdges {
			ks = append(ks, g)
		}
		ks = append(ks, c)
		prev = c
	}
	return ks
}

// TestWireResumeByteIdentity: for every frame-aligned offset k —
// term boundaries and the 4096-edge grid between them — encoding [0,k)
// and [k,N) separately concatenates to the exact uninterrupted byte
// stream.  This is the contract distgen's banked-frame resume rides.
func TestWireResumeByteIdentity(t *testing.T) {
	p := wireTestProduct(t)
	edges := productEdges(p)
	n := p.NumEdges()
	full := encodeWire(t, p, edges, 0, n)

	ks := alignedCuts(p)
	gridCuts := 0
	termSet := map[int64]bool{}
	for _, c := range p.TermEdgeStarts() {
		termSet[c] = true
	}
	for _, k := range ks {
		if !termSet[k] && k != 0 {
			gridCuts++
		}
	}
	if gridCuts == 0 {
		t.Fatalf("no mid-term frame-grid cuts in %v — product too small to exercise the grid", ks)
	}

	for _, k := range ks {
		head := encodeWire(t, p, edges, 0, k)
		tail := encodeWire(t, p, edges, k, n)
		if !bytes.Equal(append(head, tail...), full) {
			t.Fatalf("resume at %d: head+tail differs from the uninterrupted stream", k)
		}
	}
}

// TestDecodeWireTruncation: cutting the payload at any byte yields the
// complete-frame prefix without error; the salvaged prefix re-decodes
// cleanly and its edges are exactly the canonical prefix.
func TestDecodeWireTruncation(t *testing.T) {
	p := wireTestProduct(t)
	edges := productEdges(p)
	payload := encodeWire(t, p, edges, 0, 9000) // a few frames

	for cut := 0; cut <= len(payload); cut += 997 {
		n, next, trailing, err := DecodeWire(payload[:cut], 0, nil)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if next != n {
			t.Fatalf("cut %d: next=%d, edges=%d (stream starts at 0)", cut, next, n)
		}
		keep := payload[:cut-trailing]
		var got []exec.Edge
		kn, _, ktrail, err := DecodeWire(keep, 0, func(v, w int) {
			got = append(got, exec.Edge{V: v, W: w})
		})
		if err != nil || ktrail != 0 || kn != n {
			t.Fatalf("cut %d: salvaged prefix re-decode: n=%d trailing=%d err=%v (want n=%d)", cut, kn, ktrail, err, n)
		}
		for i := range got {
			if got[i] != edges[i] {
				t.Fatalf("cut %d: salvaged edge %d is %v, want %v", cut, i, got[i], edges[i])
			}
		}
	}
}

// TestDecodeWireMalformed: framing violations — zero/oversized counts, a
// contiguity break, a wrong starting offset — are hard errors, not
// quietly tolerated truncation.
func TestDecodeWireMalformed(t *testing.T) {
	p := wireTestProduct(t)
	edges := productEdges(p)
	payload := encodeWire(t, p, edges, 0, 9000)

	frame := func(vals ...uint64) []byte {
		var b []byte
		for _, v := range vals {
			var tmp [10]byte
			n := 0
			for x := v; ; n++ {
				if x < 0x80 {
					tmp[n] = byte(x)
					n++
					break
				}
				tmp[n] = byte(x) | 0x80
				x >>= 7
			}
			b = append(b, tmp[:n]...)
		}
		return b
	}
	cases := map[string][]byte{
		"zero count":      frame(0, 0, 1, 2),
		"oversized count": frame(WireFrameEdges+1, 0, 1, 2),
		"wrong start":     frame(1, 5, 1, 2), // expected offset 0
	}
	for name, b := range cases {
		if _, _, _, err := DecodeWire(b, 0, nil); err == nil {
			t.Errorf("%s: no error", name)
		}
	}
	// Contiguity break across real frames: measure the first frame, then
	// skip it — the second frame's recorded start no longer matches a
	// stream that claims to begin at edge 0.
	_, firstLen := parseFrame(t, payload)
	if firstLen <= 0 || firstLen >= len(payload) {
		t.Fatalf("first frame length %d of %d", firstLen, len(payload))
	}
	if _, _, _, err := DecodeWire(payload[firstLen:], 0, nil); err == nil {
		t.Error("skipped first frame: contiguity break not detected")
	}
}

// --- Trailer contract -------------------------------------------------

// abortWriter fails every body write after `allow` bytes, simulating a
// consumer that disappears mid-stream.  Header/trailer writes (which go
// through Header()) are unaffected, so the handler's epilogue is
// observable.
type abortWriter struct {
	*httptest.ResponseRecorder
	allow int
}

func (a *abortWriter) Write(b []byte) (int, error) {
	if a.allow <= 0 {
		return 0, fmt.Errorf("injected consumer failure")
	}
	if len(b) > a.allow {
		b = b[:a.allow]
	}
	a.allow -= len(b)
	return a.ResponseRecorder.Write(b)
}

// trailerNames splits a Trailer header announcement into canonical keys.
func trailerNames(announce string) []string {
	var out []string
	for _, f := range strings.Split(announce, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, http.CanonicalHeaderKey(f))
		}
	}
	return out
}

// TestTrailerContract is the announced-equals-sent matrix: for both
// streaming endpoints, every format, complete and aborted, audited and
// not, the Trailer header announces exactly the trailers that arrive —
// no phantom audit trailers on unaudited streams (the old bug), no
// announced-but-missing trailers on aborted ones.
func TestTrailerContract(t *testing.T) {
	total := wireTestProduct(t).NumEdges()
	s, ts := testServer(t, Config{Workers: 1})
	const specBody = `"factors":["biclique8x8","path4"],"mode":"selfloop"`
	st, res := submitJob(t, ts.URL, `{`+specBody+`}`)
	if res.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", res.StatusCode)
	}
	waitState(t, ts.URL, st.ID, "done")

	type cell struct {
		name    string
		method  string
		target  string
		body    string
		abort   bool
		audited bool
	}
	var cells []cell
	for _, format := range []string{"ndjson", "tsv", "bin"} {
		for _, abort := range []bool{false, true} {
			for _, audited := range []bool{false, true} {
				q := "format=" + format
				if audited {
					q += "&audit=1"
				}
				cells = append(cells, cell{
					name:    fmt.Sprintf("edges/%s/abort=%v/audit=%v", format, abort, audited),
					method:  http.MethodGet,
					target:  "/v1/jobs/" + st.ID + "/edges?" + q,
					abort:   abort,
					audited: audited,
				})
			}
			cells = append(cells, cell{
				name:   fmt.Sprintf("leases/%s/abort=%v", format, abort),
				method: http.MethodPost,
				target: "/v1/leases",
				body:   fmt.Sprintf(`{%s,"row":0,"rows":1,"col":0,"cols":1,"format":%q}`, specBody, format),
				abort:  abort,
			})
		}
	}

	for _, c := range cells {
		t.Run(c.name, func(t *testing.T) {
			var body io.Reader
			if c.body != "" {
				body = strings.NewReader(c.body)
			}
			req := httptest.NewRequest(c.method, c.target, body)
			if c.body != "" {
				req.Header.Set("Content-Type", "application/json")
			}
			rec := httptest.NewRecorder()
			var w http.ResponseWriter = rec
			if c.abort {
				w = &abortWriter{ResponseRecorder: rec, allow: 64}
			}
			s.Handler().ServeHTTP(w, req)
			resp := rec.Result()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status %d", resp.StatusCode)
			}

			announced := trailerNames(resp.Header.Get("Trailer"))
			want := map[string]bool{
				http.CanonicalHeaderKey(TrailerStatus): true,
				http.CanonicalHeaderKey(TrailerEdges):  true,
			}
			if c.audited {
				want[http.CanonicalHeaderKey(TrailerAuditChecks)] = true
				want[http.CanonicalHeaderKey(TrailerAuditViolations)] = true
			}
			if len(announced) != len(want) {
				t.Fatalf("announced %v, want exactly %v", announced, want)
			}
			for _, name := range announced {
				if !want[name] {
					t.Fatalf("announced unexpected trailer %s", name)
				}
				if resp.Trailer.Get(name) == "" {
					t.Fatalf("trailer %s announced but never sent (sent: %v)", name, resp.Trailer)
				}
			}

			status := resp.Trailer.Get(TrailerStatus)
			sent, err := strconv.ParseInt(resp.Trailer.Get(TrailerEdges), 10, 64)
			if err != nil {
				t.Fatalf("trailer edges %q: %v", resp.Trailer.Get(TrailerEdges), err)
			}
			if c.abort {
				if status != "aborted" {
					t.Fatalf("trailer status %q, want aborted", status)
				}
			} else {
				if status != "complete" {
					t.Fatalf("trailer status %q, want complete", status)
				}
				if sent != total {
					t.Fatalf("complete stream sent %d edges, closed form says %d", sent, total)
				}
			}
		})
	}
}

// --- HTTP range streaming --------------------------------------------

// TestEdgesRangeRequests: ?offset/?limit validation — 416 past the end
// (with the closed-form total in the response header), 400 on malformed
// values and on audit+range, and an exact empty stream at offset=total.
func TestEdgesRangeRequests(t *testing.T) {
	_, ts := testServer(t, Config{})
	st, _ := submitJob(t, ts.URL, `{"factors":["crown3","path3"],"mode":"selfloop"}`)
	final := waitState(t, ts.URL, st.ID, "done")
	base := ts.URL + "/v1/jobs/" + st.ID + "/edges"

	res, err := http.Get(base + fmt.Sprintf("?offset=%d", final.NumEdges+1))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, res.Body)
	res.Body.Close()
	if res.StatusCode != http.StatusRequestedRangeNotSatisfiable {
		t.Fatalf("offset past end: status %d, want 416", res.StatusCode)
	}
	if got := res.Header.Get(HeaderStreamTotal); got != strconv.FormatInt(final.NumEdges, 10) {
		t.Fatalf("416 %s header %q, want the closed-form total %d", HeaderStreamTotal, got, final.NumEdges)
	}

	for _, q := range []string{"?offset=-1", "?offset=x", "?limit=-2", "?offset=1&audit=1"} {
		res, err := http.Get(base + q)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, res.Body)
		res.Body.Close()
		if res.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", q, res.StatusCode)
		}
	}

	res, err = http.Get(base + fmt.Sprintf("?format=tsv&offset=%d", final.NumEdges))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(res.Body)
	res.Body.Close()
	if res.StatusCode != http.StatusOK || len(body) != 0 {
		t.Fatalf("offset=total: status %d, %d body bytes (want empty 200)", res.StatusCode, len(body))
	}
	if got := res.Trailer.Get(TrailerEdges); got != "0" {
		t.Fatalf("offset=total trailer edges %q", got)
	}
}

// fetchBody GETs a URL and returns the body bytes plus trailers.
func fetchBody(t *testing.T, url string) ([]byte, http.Header) {
	t.Helper()
	res, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(res.Body)
		t.Fatalf("GET %s: status %d: %s", url, res.StatusCode, msg)
	}
	body, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	return body, res.Trailer
}

// TestEdgesRangeConcatenation: [0,k) + [k,N) over HTTP reassembles the
// uninterrupted stream — byte-identical for text at any k, and for bin
// at frame-aligned k (term cuts and the 4096-edge grid).
func TestEdgesRangeConcatenation(t *testing.T) {
	p := wireTestProduct(t)
	_, ts := testServer(t, Config{})
	st, _ := submitJob(t, ts.URL, `{"factors":["biclique8x8","path4"],"mode":"selfloop"}`)
	final := waitState(t, ts.URL, st.ID, "done")
	if final.NumEdges != p.NumEdges() {
		t.Fatalf("job total %d, local build %d", final.NumEdges, p.NumEdges())
	}
	base := ts.URL + "/v1/jobs/" + st.ID + "/edges"
	n := p.NumEdges()

	for _, format := range []string{"tsv", "bin"} {
		full, tr := fetchBody(t, base+"?format="+format)
		if st := tr.Get(TrailerStatus); st != "complete" {
			t.Fatalf("%s full stream trailer status %q", format, st)
		}
		var ks []int64
		if format == "bin" {
			ks = alignedCuts(p)
			ks = ks[:len(ks)-1] // drop N itself; covered by the empty-tail case below
		} else {
			ks = []int64{1, n / 3, n / 2, n - 1}
		}
		ks = append(ks, n)
		for _, k := range ks {
			head, _ := fetchBody(t, base+fmt.Sprintf("?format=%s&limit=%d", format, k))
			tail, _ := fetchBody(t, base+fmt.Sprintf("?format=%s&offset=%d", format, k))
			if !bytes.Equal(append(head, tail...), full) {
				t.Fatalf("%s split at %d: concatenation differs from the full stream", format, k)
			}
		}
	}
}

// TestLeaseOffsetResume: a lease resumed at a frame-aligned block-local
// offset returns exactly the bytes the uninterrupted lease carries from
// that offset — prefix + resumed tail is byte-identical — and an offset
// past the block answers 416.
func TestLeaseOffsetResume(t *testing.T) {
	p := wireTestProduct(t)
	_, ts := testServer(t, Config{})
	const specBody = `"factors":["biclique8x8","path4"],"mode":"selfloop"`
	const rows, cols = 2, 3
	leaseBody := func(r, c int, format string, offset int64) string {
		return fmt.Sprintf(`{%s,"row":%d,"rows":%d,"col":%d,"cols":%d,"format":%q,"offset":%d}`,
			specBody, r, rows, c, cols, format, offset)
	}
	fetch := func(body string) ([]byte, *http.Response) {
		res := postLease(t, ts.URL, body)
		defer res.Body.Close()
		payload, err := io.ReadAll(res.Body)
		if err != nil {
			t.Fatal(err)
		}
		return payload, res
	}

	r, c := 1, 1
	want, err := p.BlockEdgeCount(r, rows, c, cols)
	if err != nil {
		t.Fatal(err)
	}
	bcuts, err := p.BlockTermEdgeStarts(r, rows, c, cols)
	if err != nil {
		t.Fatal(err)
	}
	full, res := fetch(leaseBody(r, c, "bin", 0))
	if res.StatusCode != http.StatusOK || res.Trailer.Get(TrailerStatus) != "complete" {
		t.Fatalf("full lease: status %d trailer %q", res.StatusCode, res.Trailer.Get(TrailerStatus))
	}
	if got := res.Header.Get("Content-Type"); got != ContentTypeBin {
		t.Fatalf("bin lease content type %q", got)
	}
	n, _, trailing, err := DecodeWire(full, 0, nil)
	if err != nil || trailing != 0 || n != want {
		t.Fatalf("full lease decode: n=%d trailing=%d err=%v (closed form %d)", n, trailing, err, want)
	}

	// Resume at every block-local frame cut: term cuts plus the grid.
	var ks []int64
	prev := int64(0)
	for _, cut := range bcuts {
		for g := prev; g < cut; g += WireFrameEdges {
			ks = append(ks, g)
		}
		ks = append(ks, cut)
		prev = cut
	}
	for _, k := range ks {
		if k == 0 || k == want {
			continue
		}
		// Find the byte boundary of offset k in the full payload by
		// decoding until the frame that starts at k.
		head := splitWireAt(t, full, k)
		tail, res := fetch(leaseBody(r, c, "bin", k))
		if res.StatusCode != http.StatusOK {
			t.Fatalf("resume at %d: status %d", k, res.StatusCode)
		}
		if got := res.Header.Get(HeaderStreamOffset); got != strconv.FormatInt(k, 10) {
			t.Fatalf("resume at %d: %s header %q", k, HeaderStreamOffset, got)
		}
		if !bytes.Equal(append(head, tail...), full) {
			t.Fatalf("resume at %d: prefix+tail differs from the uninterrupted lease", k)
		}
	}

	// Past-the-end offset: 416 with the block's closed-form count.
	_, res = fetch(leaseBody(r, c, "bin", want+1))
	if res.StatusCode != http.StatusRequestedRangeNotSatisfiable {
		t.Fatalf("offset past block end: status %d, want 416", res.StatusCode)
	}
	if got := res.Header.Get(HeaderBlockEdges); got != strconv.FormatInt(want, 10) {
		t.Fatalf("416 %s header %q, want %d", HeaderBlockEdges, got, want)
	}
}

// splitWireAt returns the byte prefix of payload carrying exactly the
// frames before edge offset k (k must be frame-aligned), walking the
// frame headers directly — an independent cross-check of the layout
// DecodeWire implements.
func splitWireAt(t *testing.T, payload []byte, k int64) []byte {
	t.Helper()
	rest := payload
	var off int64
	for off < k {
		count, length := parseFrame(t, rest)
		rest = rest[length:]
		off += count
	}
	if off != k {
		t.Fatalf("split at %d landed on %d — offset is not frame-aligned", k, off)
	}
	return payload[:len(payload)-len(rest)]
}

// parseFrame reads one frame (header + body) off the front of b,
// returning its edge count and total byte length.
func parseFrame(t *testing.T, b []byte) (count int64, length int) {
	t.Helper()
	cnt, n := binary.Uvarint(b)
	if n <= 0 {
		t.Fatal("bad frame: count varint")
	}
	length = n
	if _, n = binary.Uvarint(b[length:]); n <= 0 {
		t.Fatal("bad frame: start varint")
	}
	length += n
	for i := uint64(0); i < 2*cnt; i++ {
		if i < 2 {
			_, n = binary.Uvarint(b[length:])
		} else {
			_, n = binary.Varint(b[length:])
		}
		if n <= 0 {
			t.Fatal("bad frame: edge varint")
		}
		length += n
	}
	return int64(cnt), length
}

// TestEdgesBinParallelSpans forces the multi-span parallel encoder
// (span target lowered below the product size) and checks that the
// endpoint's byte stream is identical to the serial encoder's — full,
// at an unaligned offset — and that an aborted parallel stream still
// honors the trailer contract.
func TestEdgesBinParallelSpans(t *testing.T) {
	old := wireSpanEdges
	wireSpanEdges = int64(2 * WireFrameEdges)
	t.Cleanup(func() { wireSpanEdges = old })

	p := wireTestProduct(t)
	edges := productEdges(p)
	n := p.NumEdges()

	s, ts := testServer(t, Config{Workers: 4})
	st, _ := submitJob(t, ts.URL, `{"factors":["biclique8x8","path4"],"mode":"selfloop"}`)
	waitState(t, ts.URL, st.ID, "done")
	base := ts.URL + "/v1/jobs/" + st.ID + "/edges"

	got, tr := fetchBody(t, base+"?format=bin")
	if status := tr.Get(TrailerStatus); status != "complete" {
		t.Fatalf("trailer status %q", status)
	}
	if sent := tr.Get(TrailerEdges); sent != strconv.FormatInt(n, 10) {
		t.Fatalf("trailer edges %q, want %d", sent, n)
	}
	if want := encodeWire(t, p, edges, 0, n); !bytes.Equal(got, want) {
		t.Fatalf("parallel stream differs from serial encoding (%d vs %d bytes)", len(got), len(want))
	}

	// An unaligned resume offset: the parallel path's first span starts
	// off the frame grid, later boundaries snap back onto it.
	lo := int64(5000)
	got, _ = fetchBody(t, base+fmt.Sprintf("?format=bin&offset=%d", lo))
	if want := encodeWire(t, p, edges, lo, n); !bytes.Equal(got, want) {
		t.Fatalf("parallel ranged stream from %d differs from serial encoding", lo)
	}

	// Aborting mid-stream must still deliver the announced trailers.
	req := httptest.NewRequest(http.MethodGet, "/v1/jobs/"+st.ID+"/edges?format=bin", nil)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(&abortWriter{ResponseRecorder: rec, allow: 64}, req)
	resp := rec.Result()
	if status := resp.Trailer.Get(TrailerStatus); status != "aborted" {
		t.Fatalf("aborted parallel stream trailer status %q", status)
	}
	if resp.Trailer.Get(TrailerEdges) == "" {
		t.Fatal("aborted parallel stream sent no edge-count trailer")
	}
}
