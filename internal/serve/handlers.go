package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"kronbip/internal/cli"
	"kronbip/internal/graph"
	"kronbip/internal/obs"
	"kronbip/internal/spec"
)

// routes assembles the endpoint mux (middleware is layered on by New).
func (s *Server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/truth", s.handleTruth)
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleJobList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/edges", s.handleJobEdges)
	mux.HandleFunc("GET /v1/jobs/{id}/obs", s.handleJobObs)
	mux.HandleFunc("POST /v1/leases", s.handleLease)
	mux.Handle("GET /metrics", s.sloFresh(obs.Default.MetricsHandler()))
	mux.Handle("GET /metrics.json", s.sloFresh(obs.Default.JSONHandler()))
	mux.Handle("GET /debug/flightrecorder", obs.FlightHandler(obs.Default))
	return mux
}

// sloFresh re-evaluates the SLO window (rate-limited) before a metrics
// scrape so the serve.slo.* gauges a scraper reads are at most
// MinInterval stale — the scraper and the /readyz poller are jointly
// the evaluator's clock.
func (s *Server) sloFresh(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.slo.MaybeTick(time.Now())
		h.ServeHTTP(w, r)
	})
}

// writeJSON renders v with the given status.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeError renders a JSON error body.
func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// specFromQuery decodes the shared ?factor=&mode=&seed= fields through
// the same spec vocabulary the CLI flags resolve through.  factor may
// repeat: each occurrence appends one chain level, in query order, so
// ?factor=crown4&factor=path3 names the three-level chain exactly as the
// CLI's repeated -factor flag does.
func specFromQuery(q url.Values) (spec.Spec, error) {
	sp := spec.Spec{Factors: q["factor"], Mode: q.Get("mode"), Seed: spec.DefaultSeed}
	if v := q.Get("seed"); v != "" {
		seed, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return spec.Spec{}, fmt.Errorf("bad seed %q", v)
		}
		sp.Seed = seed
	}
	return sp.WithDefaults(), nil
}

// retryAfterSeconds renders a backoff hint as whole seconds for the
// Retry-After header: round up, then clamp to a minimum of 1.  The
// round-up alone only guards fractional seconds — a zero (or negative)
// duration would still render as "Retry-After: 0", telling saturated
// clients to hammer the queue immediately.
func retryAfterSeconds(d time.Duration) int {
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

// syncContext bounds a sync (non-streaming) handler by the configured
// request timeout.
func (s *Server) syncContext(r *http.Request) (context.Context, context.CancelFunc) {
	return context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
}

// handleHealthz is liveness: it answers 200 for as long as the process
// can serve HTTP at all — including during a drain, so an orchestrator
// does not kill a server that is still finishing jobs.  Readiness (take
// me out of rotation) is /readyz.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	queued, running := s.mgr.counts()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         "ok",
		"version":        cli.Build(),
		"uptime_seconds": time.Since(s.started).Seconds(),
		"jobs": map[string]int{
			"queued":  queued,
			"running": running,
		},
	})
}

// handleReadyz is readiness: 503 while draining (shutdown started) or
// while the rolling-window SLO is burning, 200 otherwise.  Each poll
// advances the SLO evaluator (rate-limited to its MinInterval), so a
// load balancer's health checks double as the evaluation clock — no
// background goroutine needed.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	st := s.slo.MaybeTick(time.Now())
	body := map[string]any{
		"status": "ready",
		"slo": map[string]any{
			"healthy":         st.Healthy,
			"window_seconds":  st.WindowSeconds,
			"window_requests": st.Requests,
			"window_errors":   st.Errors,
			"error_rate":      st.ErrorRate,
			"p50_ms":          float64(st.P50.Microseconds()) / 1000,
			"p99_ms":          float64(st.P99.Microseconds()) / 1000,
			"reason":          st.Reason,
		},
	}
	if !st.Healthy {
		body["status"] = "slo-burn"
		writeJSON(w, http.StatusServiceUnavailable, body)
		return
	}
	writeJSON(w, http.StatusOK, body)
}

// statsResponse is the /v1/stats payload: the Table I shape, answered
// entirely from factor closed forms.
type statsResponse struct {
	Spec             string        `json:"spec"`
	Mode             string        `json:"mode"`
	Arity            int           `json:"arity"`
	FactorA          factorStats   `json:"factor_a"`
	FactorB          factorStats   `json:"factor_b"` // the last chain factor
	Factors          []factorStats `json:"factors"`  // every factor, A first
	N                int           `json:"n"`
	NU               int           `json:"n_u"`
	NW               int           `json:"n_w"`
	NumEdges         int64         `json:"num_edges"`
	GlobalFourCycles int64         `json:"global_four_cycles"`
	Connected        bool          `json:"connected_by_theorem"`
}

type factorStats struct {
	N          int   `json:"n"`
	Edges      int   `json:"edges"`
	FourCycles int64 `json:"four_cycles"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := s.syncContext(r)
	defer cancel()
	sp, err := specFromQuery(r.URL.Query())
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	p, err := s.cache.get(sp)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if err := ctx.Err(); err != nil {
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	fa, fb := p.FactorA(), p.FactorB()
	nu, nw := p.PartSizes()
	all := p.Factors()
	factors := make([]factorStats, len(all))
	for i, f := range all {
		factors[i] = factorStats{N: f.N(), Edges: f.G.NumEdges(), FourCycles: f.Global4}
	}
	writeJSON(w, http.StatusOK, statsResponse{
		Spec:             sp.Canonical(),
		Mode:             p.Mode().String(),
		Arity:            p.Arity(),
		FactorA:          factorStats{N: fa.N(), Edges: fa.G.NumEdges(), FourCycles: fa.Global4},
		FactorB:          factorStats{N: fb.N(), Edges: fb.G.NumEdges(), FourCycles: fb.Global4},
		Factors:          factors,
		N:                p.N(),
		NU:               nu,
		NW:               nw,
		NumEdges:         p.NumEdges(),
		GlobalFourCycles: p.GlobalFourCycles(),
		Connected:        p.ConnectedByTheorem(),
	})
}

// truthResponse is the /v1/truth payload: global plus optional vertex
// and edge point queries, all O(1) against factor state.
type truthResponse struct {
	Spec             string       `json:"spec"`
	N                int          `json:"n"`
	NumEdges         int64        `json:"num_edges"`
	GlobalFourCycles int64        `json:"global_four_cycles"`
	Vertex           *vertexTruth `json:"vertex,omitempty"`
	Edge             *edgeTruth   `json:"edge,omitempty"`
}

type vertexTruth struct {
	Vertex     int    `json:"vertex"`
	FactorA    int    `json:"factor_a"`
	FactorB    int    `json:"factor_b"` // digit of the last chain factor
	Digits     []int  `json:"digits"`   // full mixed-radix decomposition, A first
	Degree     int64  `json:"degree"`
	TwoWalks   int64  `json:"two_walks"`
	FourCycles int64  `json:"four_cycles"`
	Side       string `json:"side"`
}

type edgeTruth struct {
	V          int     `json:"v"`
	W          int     `json:"w"`
	FourCycles int64   `json:"four_cycles"`
	Clustering float64 `json:"clustering"`
}

func (s *Server) handleTruth(w http.ResponseWriter, r *http.Request) {
	_, cancel := s.syncContext(r)
	defer cancel()
	q := r.URL.Query()
	sp, err := specFromQuery(q)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	p, err := s.cache.get(sp)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	resp := truthResponse{
		Spec:             sp.Canonical(),
		N:                p.N(),
		NumEdges:         p.NumEdges(),
		GlobalFourCycles: p.GlobalFourCycles(),
	}
	if v := q.Get("vertex"); v != "" {
		vi, err := strconv.Atoi(v)
		if err != nil || vi < 0 || vi >= p.N() {
			writeError(w, http.StatusBadRequest, "bad vertex %q (want [0,%d))", v, p.N())
			return
		}
		digits := p.DigitsOf(vi)
		side := "U"
		if p.SideOf(vi) == graph.SideW {
			side = "W"
		}
		resp.Vertex = &vertexTruth{
			Vertex:     vi,
			FactorA:    digits[0],
			FactorB:    digits[len(digits)-1],
			Digits:     digits,
			Degree:     p.DegreeAt(vi),
			TwoWalks:   p.TwoWalksAt(vi),
			FourCycles: p.VertexFourCyclesAt(vi),
			Side:       side,
		}
	}
	if e := q.Get("edge"); e != "" {
		sv, sw, ok := strings.Cut(e, ",")
		if !ok {
			writeError(w, http.StatusBadRequest, "bad edge %q (want 'v,w')", e)
			return
		}
		v, err1 := strconv.Atoi(sv)
		wv, err2 := strconv.Atoi(sw)
		if err1 != nil || err2 != nil {
			writeError(w, http.StatusBadRequest, "bad edge %q", e)
			return
		}
		sq, err := p.EdgeFourCyclesAt(v, wv)
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		gamma, err := p.EdgeClusteringAt(v, wv)
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		resp.Edge = &edgeTruth{V: v, W: wv, FourCycles: sq, Clustering: gamma}
	}
	writeJSON(w, http.StatusOK, resp)
}

// submitRequest is the POST /v1/jobs body; every field is optional.
// "factors" lists the chain levels in order; the singular "factor" is the
// historical one-level spelling and may not be combined with it.
type submitRequest struct {
	Factor  string   `json:"factor"`
	Factors []string `json:"factors"`
	Mode    string   `json:"mode"`
	Seed    *int64   `json:"seed"`
	Audit   *bool    `json:"audit"` // overrides the server-level default
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	_, cancel := s.syncContext(r)
	defer cancel()
	var req submitRequest
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	if len(body) > 0 {
		if err := json.Unmarshal(body, &req); err != nil {
			writeError(w, http.StatusBadRequest, "bad JSON body: %v", err)
			return
		}
	}
	if req.Factor != "" && len(req.Factors) > 0 {
		writeError(w, http.StatusBadRequest, `use either "factor" or "factors", not both`)
		return
	}
	factors := req.Factors
	if req.Factor != "" {
		factors = []string{req.Factor}
	}
	sp := spec.Spec{Factors: factors, Mode: req.Mode, Seed: spec.DefaultSeed}
	if req.Seed != nil {
		sp.Seed = *req.Seed
	}
	sp = sp.WithDefaults()
	p, err := s.cache.get(sp)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	auditOn := s.cfg.Audit
	if req.Audit != nil {
		auditOn = *req.Audit
	}
	// Idempotency key: same charset/length allowlist as request ids (the
	// key lands in logs and flight records the same way).  A present but
	// malformed key is a hard 400 — silently ignoring it would turn a
	// client that thinks it has retry protection into one that double-
	// submits.
	idemKey := r.Header.Get(HeaderIdempotencyKey)
	if idemKey != "" && !isSafeRequestID(idemKey) {
		writeError(w, http.StatusBadRequest,
			"bad %s: want 1..128 bytes of [A-Za-z0-9._:-]", HeaderIdempotencyKey)
		return
	}
	j, existing, err := s.mgr.submit(sp, p, auditOn, idemKey, requestFrom(r.Context()))
	switch {
	case errors.Is(err, ErrTooLarge):
		writeError(w, http.StatusRequestEntityTooLarge, "%v", err)
		return
	case errors.Is(err, ErrSaturated):
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(s.cfg.RetryAfter)))
		writeError(w, http.StatusTooManyRequests, "%v", err)
		return
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+j.id)
	if existing {
		// Replayed idempotency key: the work was already admitted, so the
		// answer is the existing job's current status — 200, not 202,
		// because nothing was accepted for processing by THIS request.
		writeJSON(w, http.StatusOK, j.Status())
		return
	}
	writeJSON(w, http.StatusAccepted, j.Status())
}

func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.mgr.list()})
}

func (s *Server) jobFromPath(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	id := r.PathValue("id")
	j, ok := s.mgr.get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no such job %q", id)
		return nil, false
	}
	return j, true
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.jobFromPath(w, r); ok {
		writeJSON(w, http.StatusOK, j.Status())
	}
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobFromPath(w, r)
	if !ok {
		return
	}
	s.mgr.cancelJob(j)
	writeJSON(w, http.StatusOK, j.Status())
}
