package experiments

import (
	"fmt"
	"strings"
	"time"

	"kronbip/internal/bter"
	"kronbip/internal/cluster"
	"kronbip/internal/core"
	"kronbip/internal/count"
	"kronbip/internal/gen"
	"kronbip/internal/rmat"
)

// BaselineRow compares one generator on the axes the paper's §I discusses:
// generation cost, heavy-tail shape, clustering, and — decisively — whether
// exact 4-cycle ground truth is available without counting.
type BaselineRow struct {
	Name       string
	Vertices   int
	Edges      int64
	GenTime    time.Duration
	MaxDegree  int
	RACoeff    float64       // global Robins–Alexander clustering
	GlobalFour int64         //
	FourTime   time.Duration // time to OBTAIN the count (formula vs counting)
	ExactTruth bool          // true only for the non-stochastic Kronecker generator
}

// BaselineResult is the §I generator comparison.
type BaselineResult struct {
	Rows []BaselineRow
}

// RunBaselines compares bipartite R-MAT, bipartite BTER, and the
// non-stochastic Kronecker generator at comparable sizes.
func RunBaselines(seed int64) (*BaselineResult, error) {
	res := &BaselineResult{}

	// Kronecker: unicode-like factor squared, mode (ii).
	start := time.Now()
	a := gen.UnicodeLike(seed)
	p, err := core.NewRelaxedWithParts(a.Graph, a, core.ModeSelfLoopFactor)
	if err != nil {
		return nil, err
	}
	genTime := time.Since(start)
	start = time.Now()
	truth := p.GlobalFourCycles()
	fourTime := time.Since(start)
	res.Rows = append(res.Rows, BaselineRow{
		Name:     "kronecker (A+I)⊗A",
		Vertices: p.N(), Edges: p.NumEdges(),
		GenTime: genTime, MaxDegree: int(maxOf(p.Degrees())),
		RACoeff:    -1, // computing RA needs full counting; reported for samples below
		GlobalFour: truth, FourTime: fourTime, ExactTruth: true,
	})

	// R-MAT at a comparable edge count to the factor experiments.
	start = time.Now()
	rb, err := rmat.Generate(rmat.DefaultParams(10, 11, 8000, seed))
	if err != nil {
		return nil, err
	}
	rTime := time.Since(start)
	start = time.Now()
	rFour, err := count.GlobalButterflies(rb.Graph)
	if err != nil {
		return nil, err
	}
	rFourTime := time.Since(start)
	ra, err := cluster.GlobalRobinsAlexander(rb.Graph)
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, BaselineRow{
		Name:     "bipartite R-MAT",
		Vertices: rb.N(), Edges: int64(rb.NumEdges()),
		GenTime: rTime, MaxDegree: rb.MaxDegree(),
		RACoeff: ra, GlobalFour: rFour, FourTime: rFourTime, ExactTruth: false,
	})

	// BTER at a comparable size.
	start = time.Now()
	bp := bter.Params{
		DegreesU:      bter.HeavyTailDegrees(1024, 60, 2, seed),
		DegreesW:      bter.HeavyTailDegrees(2048, 40, 2, seed+1),
		BlockFraction: 0.6,
		BlockDensity:  0.8,
		Seed:          seed,
	}
	bb, err := bter.Generate(bp)
	if err != nil {
		return nil, err
	}
	bTime := time.Since(start)
	start = time.Now()
	bFour, err := count.GlobalButterflies(bb.Graph)
	if err != nil {
		return nil, err
	}
	bFourTime := time.Since(start)
	bra, err := cluster.GlobalRobinsAlexander(bb.Graph)
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, BaselineRow{
		Name:     "bipartite BTER",
		Vertices: bb.N(), Edges: int64(bb.NumEdges()),
		GenTime: bTime, MaxDegree: bb.MaxDegree(),
		RACoeff: bra, GlobalFour: bFour, FourTime: bFourTime, ExactTruth: false,
	})
	return res, nil
}

func maxOf(v []int64) int64 {
	var m int64
	for _, x := range v {
		if x > m {
			m = x
		}
	}
	return m
}

func (r *BaselineResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "§I generator comparison — stochastic baselines vs non-stochastic Kronecker\n")
	fmt.Fprintf(&b, "%-20s %9s %10s %12s %7s %8s %14s %12s %6s\n",
		"generator", "n", "edges", "gen time", "maxdeg", "RA", "□ (global)", "□ time", "truth")
	for _, row := range r.Rows {
		raStr := fmt.Sprintf("%.4f", row.RACoeff)
		if row.RACoeff < 0 {
			raStr = "n/a"
		}
		fmt.Fprintf(&b, "%-20s %9d %10d %12v %7d %8s %14d %12v %6v\n",
			row.Name, row.Vertices, row.Edges, row.GenTime, row.MaxDegree,
			raStr, row.GlobalFour, row.FourTime, row.ExactTruth)
	}
	fmt.Fprintf(&b, "note: the Kronecker □ column is exact closed-form ground truth; the baselines' □ require a full counting pass and are sample realizations only.\n")
	return b.String()
}
