package experiments

import (
	"fmt"
	"math"
	"strings"

	"kronbip/internal/community"
	"kronbip/internal/core"
	"kronbip/internal/count"
	"kronbip/internal/gen"
	"kronbip/internal/graph"
)

func directGlobalFour(g *graph.Graph) (int64, error) {
	return count.GlobalButterflies(g)
}

// FormulaCase is one factor-pair validation row for Thm. 3–5.
type FormulaCase struct {
	Name            string
	Mode            core.Mode
	ProductVertices int
	ProductEdges    int64
	GlobalFour      int64
	VerticesChecked int
	EdgesChecked    int64
	AllMatch        bool
}

// FormulaValidationResult sweeps factor pairs for both modes and verifies
// the per-vertex (Thm. 3/4) and per-edge (Thm. 5 + derived) formulas and
// the global count against brute force on the materialized product.
type FormulaValidationResult struct {
	Cases []FormulaCase
}

// RunFormulaValidation executes the sweep.
func RunFormulaValidation() (*FormulaValidationResult, error) {
	type spec struct {
		name string
		a, b *graph.Graph
		mode core.Mode
	}
	specs := []spec{
		{"K3 ⊗ C6", gen.Complete(3), gen.Cycle(6), core.ModeNonBipartiteFactor},
		{"C5 ⊗ K23", gen.Cycle(5), gen.CompleteBipartite(2, 3).Graph, core.ModeNonBipartiteFactor},
		{"Petersen ⊗ star5", gen.Petersen(), gen.Star(5), core.ModeNonBipartiteFactor},
		{"lollipop(5,2) ⊗ crown4", gen.Lollipop(5, 2), gen.Crown(4).Graph, core.ModeNonBipartiteFactor},
		{"K4 ⊗ grid(2,4)", gen.Complete(4), gen.Grid(2, 4), core.ModeNonBipartiteFactor},
		{"(P4+I) ⊗ P4", gen.Path(4), gen.Path(4), core.ModeSelfLoopFactor},
		{"(C6+I) ⊗ K33", gen.Cycle(6), gen.CompleteBipartite(3, 3).Graph, core.ModeSelfLoopFactor},
		{"(star5+I) ⊗ Q3", gen.Star(5), gen.Hypercube(3), core.ModeSelfLoopFactor},
		{"(tree+I) ⊗ crown3", gen.BinaryTree(3), gen.Crown(3).Graph, core.ModeSelfLoopFactor},
		{"(grid+I) ⊗ doublestar", gen.Grid(2, 3), gen.DoubleStar(2, 3), core.ModeSelfLoopFactor},
	}
	res := &FormulaValidationResult{}
	for _, s := range specs {
		p, err := core.New(s.a, s.b, s.mode)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", s.name, err)
		}
		g, err := p.Materialize(0)
		if err != nil {
			return nil, err
		}
		c := FormulaCase{
			Name: s.name, Mode: s.mode,
			ProductVertices: p.N(), ProductEdges: p.NumEdges(),
			GlobalFour: p.GlobalFourCycles(), AllMatch: true,
		}
		brute, err := count.VertexButterflies(g)
		if err != nil {
			return nil, err
		}
		sc := p.VertexFourCycles()
		for v := range brute {
			c.VerticesChecked++
			if sc[v] != brute[v] {
				c.AllMatch = false
			}
		}
		bruteE, err := count.EdgeButterflies(g)
		if err != nil {
			return nil, err
		}
		p.EachEdgeFourCycle(func(v, w int, sq int64) bool {
			c.EdgesChecked++
			e := graph.Edge{U: v, V: w}
			if w < v {
				e = graph.Edge{U: w, V: v}
			}
			if bruteE[e] != sq {
				c.AllMatch = false
			}
			return true
		})
		direct, err := directGlobalFour(g)
		if err != nil {
			return nil, err
		}
		if direct != c.GlobalFour {
			c.AllMatch = false
		}
		res.Cases = append(res.Cases, c)
	}
	return res, nil
}

func (r *FormulaValidationResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Thm. 3–5 validation — Kronecker formulas vs brute force on materialized products\n")
	fmt.Fprintf(&b, "%-26s %-26s %7s %8s %12s %9s %9s %6s\n", "factors", "mode", "n", "edges", "□ (truth)", "verts ok", "edges ok", "match")
	for _, c := range r.Cases {
		fmt.Fprintf(&b, "%-26s %-26s %7d %8d %12d %9d %9d %6v\n",
			c.Name, c.Mode, c.ProductVertices, c.ProductEdges, c.GlobalFour, c.VerticesChecked, c.EdgesChecked, c.AllMatch)
	}
	return b.String()
}

// Valid reports whether every case matched.
func (r *FormulaValidationResult) Valid() bool {
	for _, c := range r.Cases {
		if !c.AllMatch {
			return false
		}
	}
	return len(r.Cases) > 0
}

// ClusteringLawResult summarizes Thm. 6 over every edge of a mode-(i)
// product: the bound must hold on all edges, and the slack distribution
// shows how loose it is in practice (the paper notes ◊_pq is typically much
// greater than ◊_ij·◊_kl).
type ClusteringLawResult struct {
	Product      string
	Edges        int64
	BoundOK      bool
	NontrivialAt int64   // edges with a nonzero bound
	MinSlack     float64 // min over nontrivial edges of Γ_C − bound
	MeanGamma    float64
	MeanBound    float64
	PsiMin       float64
	PsiMax       float64
}

// RunClusteringLaw checks Thm. 6 on C = A ⊗ B with heavy-4-cycle factors.
func RunClusteringLaw(seed int64) (*ClusteringLawResult, error) {
	a := gen.Complete(5)                                  // dense non-bipartite A with many 4-cycles
	b := gen.Crown(4).Graph                               // bipartite, every edge in 4-cycles
	p, err := core.New(a, b, core.ModeNonBipartiteFactor) // seed unused: deterministic factors
	if err != nil {
		return nil, err
	}
	_ = seed
	res := &ClusteringLawResult{Product: "K5 ⊗ crown4", BoundOK: true, MinSlack: math.Inf(1), PsiMin: math.Inf(1)}
	var sumGamma, sumBound float64
	p.EachEdge(func(v, w int) bool {
		res.Edges++
		gamma, err := p.EdgeClusteringAt(v, w)
		if err != nil {
			res.BoundOK = false
			return false
		}
		bound, psi, err := p.ClusteringLawBound(v, w)
		if err != nil {
			res.BoundOK = false
			return false
		}
		sumGamma += gamma
		sumBound += bound
		if gamma < bound-1e-12 {
			res.BoundOK = false
		}
		if psi > 0 {
			res.NontrivialAt++
			if gamma-bound < res.MinSlack {
				res.MinSlack = gamma - bound
			}
			if psi < res.PsiMin {
				res.PsiMin = psi
			}
			if psi > res.PsiMax {
				res.PsiMax = psi
			}
		}
		return true
	})
	res.MeanGamma = sumGamma / float64(res.Edges)
	res.MeanBound = sumBound / float64(res.Edges)
	return res, nil
}

func (r *ClusteringLawResult) String() string {
	return fmt.Sprintf(`Thm. 6 — bipartite edge clustering scaling law on %s
edges checked:          %d (nontrivial bound at %d)
bound holds everywhere: %v
mean Γ_C:               %.4f   mean bound ψ·Γ_A·Γ_B: %.4f (looseness is expected; see §III-B3)
min slack Γ_C − bound:  %.4f
ψ range:                [%.4f, %.4f] ⊂ [1/9, 1)
`, r.Product, r.Edges, r.NontrivialAt, r.BoundOK, r.MeanGamma, r.MeanBound, r.MinSlack, r.PsiMin, r.PsiMax)
}

// CommunityResult validates Thm. 7 and Cor. 1–2 on planted communities.
type CommunityResult struct {
	FactorA, FactorB   string
	SetSizes           [2]int
	MInFormula         int64
	MInExact           int64
	MOutFormula        int64
	MOutExact          int64
	RhoInProduct       float64
	Cor1OmegaBound     float64
	Cor1ThetaBound     float64
	RhoOutProduct      float64
	Cor2Bound          float64
	FormulasExact      bool
	BoundsHold         bool
	DensityPreserved   bool // planted community stays dense in the product
	BackgroundRhoRatio float64
}

// RunCommunity plants a dense 4×4 biclique-ish community in two sparse
// 12×12 bipartite factors, forms C = (A+I)⊗B, and compares the Thm. 7
// closed forms against exact counting plus the Cor. 1–2 bounds.
func RunCommunity(seed int64) (*CommunityResult, error) {
	mk := func(s int64) (*graph.Bipartite, []int) {
		var pairs [][2]int
		// Dense planted block: U{0..3} × W{0..3} complete.
		for u := 0; u < 4; u++ {
			for w := 0; w < 4; w++ {
				pairs = append(pairs, [2]int{u, w})
			}
		}
		// Sparse background ring among the remaining vertices.
		for i := 0; i < 8; i++ {
			pairs = append(pairs, [2]int{4 + i%8, 4 + (i+1)%8})
		}
		// A couple of boundary edges tying the community in.
		pairs = append(pairs, [2]int{0, 5}, [2]int{5, 1})
		b, err := graph.NewBipartite(12, 12, pairs)
		if err != nil {
			panic(err)
		}
		members := []int{0, 1, 2, 3, 12, 13, 14, 15} // R = U{0..3}, T = W{0..3}
		return b, members
	}
	a, membersA := mk(seed)
	b, membersB := mk(seed + 1)
	p, err := core.NewRelaxedWithParts(a.Graph, b, core.ModeSelfLoopFactor)
	if err != nil {
		return nil, err
	}
	sa, err := community.NewSet(a, membersA)
	if err != nil {
		return nil, err
	}
	sb, err := community.NewSet(b, membersB)
	if err != nil {
		return nil, err
	}
	pc, err := community.NewProductCommunity(p, sa, sb)
	if err != nil {
		return nil, err
	}
	g, err := p.Materialize(0)
	if err != nil {
		return nil, err
	}
	inSet := map[int]bool{}
	for _, v := range pc.Members() {
		inSet[v] = true
	}
	var exactIn, exactOut int64
	g.EachEdge(func(u, v int) bool {
		switch {
		case inSet[u] && inSet[v]:
			exactIn++
		case inSet[u] != inSet[v]:
			exactOut++
		}
		return true
	})
	omegaB, thetaB := pc.Cor1Bound()
	res := &CommunityResult{
		FactorA: "planted(12x12)", FactorB: "planted(12x12)",
		SetSizes:       [2]int{sa.Size(), sb.Size()},
		MInFormula:     pc.InternalEdges(),
		MInExact:       exactIn,
		MOutFormula:    pc.ExternalEdges(),
		MOutExact:      exactOut,
		RhoInProduct:   pc.InternalDensity(),
		Cor1OmegaBound: omegaB,
		Cor1ThetaBound: thetaB,
		RhoOutProduct:  pc.ExternalDensity(),
		Cor2Bound:      pc.Cor2Bound(),
	}
	res.FormulasExact = res.MInFormula == exactIn && res.MOutFormula == exactOut
	res.BoundsHold = res.RhoInProduct >= thetaB-1e-12 &&
		(math.IsInf(res.Cor2Bound, 1) || res.RhoOutProduct <= res.Cor2Bound+1e-12)
	// Dense-in, sparse-out: the product community should be far denser
	// internally than its boundary.
	if res.RhoOutProduct > 0 {
		res.BackgroundRhoRatio = res.RhoInProduct / res.RhoOutProduct
	} else {
		res.BackgroundRhoRatio = math.Inf(1)
	}
	res.DensityPreserved = res.RhoInProduct > 4*res.RhoOutProduct
	return res, nil
}

func (r *CommunityResult) String() string {
	return fmt.Sprintf(`Thm. 7 / Cor. 1–2 — community structure in C = (A+I)⊗B with planted factors
|S_A| = %d, |S_B| = %d → |S_C| = %d
m_in:  formula %d, exact %d
m_out: formula %d, exact %d
ρ_in(S_C)  = %.4f ≥ 2θ·ρAρB = %.4f ≥ ω·ρAρB = %.4f   (Cor. 1; see DESIGN.md erratum note)
ρ_out(S_C) = %.4f ≤ Cor. 2 bound %.4f
formulas exact: %v; bounds hold: %v; community %-0.1fx denser inside than out: %v
`, r.SetSizes[0], r.SetSizes[1], r.SetSizes[0]*r.SetSizes[1],
		r.MInFormula, r.MInExact, r.MOutFormula, r.MOutExact,
		r.RhoInProduct, r.Cor1ThetaBound, r.Cor1OmegaBound,
		r.RhoOutProduct, r.Cor2Bound,
		r.FormulasExact, r.BoundsHold, r.BackgroundRhoRatio, r.DensityPreserved)
}
