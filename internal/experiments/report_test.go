package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunAllAndWriteMarkdown(t *testing.T) {
	if testing.Short() {
		t.Skip("full evaluation run")
	}
	r, err := RunAll(2020, 20, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Valid() {
		t.Fatal("full run reported invalid results")
	}
	var buf bytes.Buffer
	if err := r.WriteMarkdown(&buf); err != nil {
		t.Fatal(err)
	}
	md := buf.String()
	for _, want := range []string{
		"# EXPERIMENTS",
		"EXP-T1", "EXP-F1", "EXP-F5", "EXP-THM3/4/5", "EXP-THM6",
		"EXP-THM7", "EXP-REM1", "EXP-SCALE", "EXP-BASE", "EXP-ECC",
		"EXP-DEG", "EXP-DIST", "EXP-APPROX",
		"Reading the numbers against the paper",
	} {
		if !strings.Contains(md, want) {
			t.Fatalf("markdown missing %q", want)
		}
	}
	if strings.Contains(md, "✗") {
		t.Fatal("markdown contains a failure marker")
	}
}
