package experiments

import (
	"fmt"
	"strings"

	"kronbip/internal/core"
	"kronbip/internal/gen"
	"kronbip/internal/graph"
	"kronbip/internal/wing"
)

// Remark1Case is one 4-cycle-free factor pair and its product's 4-cycle
// inventory.
type Remark1Case struct {
	Name         string
	FactorAFour  int64
	FactorBFour  int64
	ProductFour  int64
	MaxWing      int64
	MinPosVertex int64 // smallest nonzero per-vertex count in the product
}

// Remark1Result demonstrates the paper's Rem. 1: non-trivial Kronecker
// products always contain 4-cycles even when both factors have none, which
// frustrates ground-truth k-wing construction — quantified here by running
// the wing decomposition on each product.
type Remark1Result struct {
	Cases []Remark1Case
}

// RunRemark1 sweeps 4-cycle-free factor pairs.
func RunRemark1() (*Remark1Result, error) {
	specs := []struct {
		name string
		a, b *graph.Graph
		mode core.Mode
	}{
		{"lollipop(3,2) ⊗ star4", gen.Lollipop(3, 2), gen.Star(4), core.ModeNonBipartiteFactor},
		{"C5 ⊗ P4", gen.Cycle(5), gen.Path(4), core.ModeNonBipartiteFactor},
		{"(P3+I) ⊗ star4", gen.Path(3), gen.Star(4), core.ModeSelfLoopFactor},
		{"(tree+I) ⊗ tree", gen.BinaryTree(3), gen.BinaryTree(3), core.ModeSelfLoopFactor},
		{"(P2+I) ⊗ doublestar", gen.Path(2), gen.DoubleStar(2, 2), core.ModeSelfLoopFactor},
	}
	res := &Remark1Result{}
	for _, s := range specs {
		p, err := core.New(s.a, s.b, s.mode)
		if err != nil {
			return nil, fmt.Errorf("rem1 %s: %w", s.name, err)
		}
		fa, fb := p.FactorA(), p.FactorB()
		if fa.Global4 != 0 || fb.Global4 != 0 {
			return nil, fmt.Errorf("rem1 %s: factors are not 4-cycle free (%d, %d)", s.name, fa.Global4, fb.Global4)
		}
		g, err := p.Materialize(0)
		if err != nil {
			return nil, err
		}
		maxWing, err := wing.MaxWing(g)
		if err != nil {
			return nil, err
		}
		c := Remark1Case{
			Name:        s.name,
			FactorAFour: fa.Global4,
			FactorBFour: fb.Global4,
			ProductFour: p.GlobalFourCycles(),
			MaxWing:     maxWing,
		}
		for _, sv := range p.VertexFourCycles() {
			if sv > 0 && (c.MinPosVertex == 0 || sv < c.MinPosVertex) {
				c.MinPosVertex = sv
			}
		}
		res.Cases = append(res.Cases, c)
	}
	return res, nil
}

func (r *Remark1Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Rem. 1 — products of 4-cycle-free factors still have 4-cycles (and nonzero wings)\n")
	fmt.Fprintf(&b, "%-26s %8s %8s %10s %9s\n", "factors", "□(A)", "□(B)", "□(C)", "max wing")
	for _, c := range r.Cases {
		fmt.Fprintf(&b, "%-26s %8d %8d %10d %9d\n", c.Name, c.FactorAFour, c.FactorBFour, c.ProductFour, c.MaxWing)
	}
	return b.String()
}

// Valid reports whether every product acquired 4-cycles as Rem. 1 predicts.
func (r *Remark1Result) Valid() bool {
	for _, c := range r.Cases {
		if c.ProductFour == 0 || c.MaxWing == 0 {
			return false
		}
	}
	return len(r.Cases) > 0
}
