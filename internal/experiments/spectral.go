package experiments

import (
	"fmt"
	"math"
	"strings"

	"kronbip/internal/core"
	"kronbip/internal/gen"
	"kronbip/internal/graph"
)

// SpectralCase is one factor pair with formula-vs-direct spectral radii.
type SpectralCase struct {
	Name    string
	Mode    core.Mode
	Formula float64
	Direct  float64 // power iteration on the materialized product
	RelErr  float64
}

// SpectralResult validates ρ(C) = ρ(M)·ρ(B) (eigenvalue carry-over, §I).
type SpectralResult struct {
	Cases []SpectralCase
}

// RunSpectral sweeps strict factor pairs in both modes.
func RunSpectral() (*SpectralResult, error) {
	specs := []struct {
		name string
		a, b *graph.Graph
		mode core.Mode
	}{
		{"K4 ⊗ K33", gen.Complete(4), gen.CompleteBipartite(3, 3).Graph, core.ModeNonBipartiteFactor},
		{"Petersen ⊗ C8", gen.Petersen(), gen.Cycle(8), core.ModeNonBipartiteFactor},
		{"C5 ⊗ crown4", gen.Cycle(5), gen.Crown(4).Graph, core.ModeNonBipartiteFactor},
		{"(crown3+I) ⊗ star6", gen.Crown(3).Graph, gen.Star(6), core.ModeSelfLoopFactor},
		{"(Q3+I) ⊗ grid(3,3)", gen.Hypercube(3), gen.Grid(3, 3), core.ModeSelfLoopFactor},
		{"(P6+I) ⊗ K24", gen.Path(6), gen.CompleteBipartite(2, 4).Graph, core.ModeSelfLoopFactor},
	}
	res := &SpectralResult{}
	for _, s := range specs {
		p, err := core.New(s.a, s.b, s.mode)
		if err != nil {
			return nil, fmt.Errorf("spectral %s: %w", s.name, err)
		}
		formula, err := p.SpectralRadius(1e-10, 20000)
		if err != nil {
			return nil, err
		}
		g, err := p.Materialize(0)
		if err != nil {
			return nil, err
		}
		direct, err := core.GraphSpectralRadius(g, 1e-10, 20000)
		if err != nil {
			return nil, err
		}
		c := SpectralCase{Name: s.name, Mode: s.mode, Formula: formula, Direct: direct}
		if direct > 0 {
			c.RelErr = math.Abs(formula-direct) / direct
		}
		res.Cases = append(res.Cases, c)
	}
	return res, nil
}

func (r *SpectralResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Spectral radius ground truth — ρ(C) = ρ(M)·ρ(B) vs power iteration on the product\n")
	fmt.Fprintf(&b, "%-22s %-26s %14s %14s %12s\n", "factors", "mode", "ρ (formula)", "ρ (direct)", "rel. err")
	for _, c := range r.Cases {
		fmt.Fprintf(&b, "%-22s %-26s %14.8f %14.8f %12.2e\n", c.Name, c.Mode, c.Formula, c.Direct, c.RelErr)
	}
	return b.String()
}

// Valid reports agreement within the iteration tolerance.
func (r *SpectralResult) Valid() bool {
	for _, c := range r.Cases {
		if c.RelErr > 1e-6 {
			return false
		}
	}
	return len(r.Cases) > 0
}
