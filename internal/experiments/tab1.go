// Package experiments reproduces every table and figure of the paper's
// evaluation, plus validation sweeps for each theorem.  Each experiment is
// a pure function returning a structured result with a formatted rendering,
// so the cmd/experiments harness, the test suite, and the benchmarks all
// drive identical code.
package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"kronbip/internal/core"
	"kronbip/internal/count"
	"kronbip/internal/gen"
	"kronbip/internal/graph"
)

// TableIRow mirrors one row of the paper's Table I.
type TableIRow struct {
	Name        string
	NU, NW      int
	Edges       int64
	GlobalFour  int64
	FromFormula bool // true when the count came from the Kronecker formula
}

// TableIResult reproduces Table I: factor statistics and product ground
// truth, with sampled brute-force validation of the product.
type TableIResult struct {
	Factor  TableIRow
	Product TableIRow

	// Paper-reported values, for the paper-vs-measured record.
	PaperFactor  TableIRow
	PaperProduct TableIRow

	// Validation evidence.
	SampledVertices   int
	SampledEdges      int
	VertexMismatches  int
	EdgeMismatches    int
	EdgeSumConsistent bool // Σ◊/8 == Σs/4 == formula global

	GroundTruthTime time.Duration // time to compute all product ground truth
	MaterializeTime time.Duration
}

// RunTableI builds the unicode-like factor A, forms C = (A+I_A) ⊗ A, and
// reports the Table I statistics.  The product's global 4-cycle count comes
// from the sublinear Kronecker formula; `samples` random vertices and edges
// of the materialized product are cross-checked against direct counting.
// workers <= 0 selects GOMAXPROCS.
func RunTableI(seed int64, samples, workers int) (*TableIResult, error) {
	return RunTableIWithFactor(gen.UnicodeLike(seed), "A (unicode-like)", seed, samples, workers)
}

// RunTableIWithFactor is RunTableI with a caller-supplied bipartite factor —
// pass the real Konect unicode network (mmio.ReadKonectBipartite) to
// reproduce Table I's absolute numbers rather than the synthetic stand-in's.
func RunTableIWithFactor(a *graph.Bipartite, name string, seed int64, samples, workers int) (*TableIResult, error) {
	fa, err := core.NewFactor(a.Graph)
	if err != nil {
		return nil, err
	}
	p, err := core.NewRelaxedWithParts(a.Graph, a, core.ModeSelfLoopFactor)
	if err != nil {
		return nil, err
	}

	start := time.Now()
	globalC := p.GlobalFourCycles()
	gtTime := time.Since(start)

	nu, nw := p.PartSizes()
	res := &TableIResult{
		Factor: TableIRow{
			Name: name, NU: a.NU(), NW: a.NW(),
			Edges: int64(a.NumEdges()), GlobalFour: fa.Global4,
		},
		Product: TableIRow{
			Name: "C = (A+I_A) ⊗ A", NU: nu, NW: nw,
			Edges: p.NumEdges(), GlobalFour: globalC, FromFormula: true,
		},
		PaperFactor: TableIRow{
			Name: "A (Konect unicode)", NU: 254, NW: 614, Edges: 1256, GlobalFour: 1662,
		},
		PaperProduct: TableIRow{
			Name: "C = (A+I_A) ⊗ A", NU: 220472, NW: 532952, Edges: 3155072, GlobalFour: 946565889,
		},
		GroundTruthTime: gtTime,
	}

	if samples > 0 {
		start = time.Now()
		g, err := p.Materialize(workers)
		if err != nil {
			return nil, err
		}
		res.MaterializeTime = time.Since(start)
		rng := rand.New(rand.NewSource(seed + 1))
		for i := 0; i < samples; i++ {
			v := rng.Intn(p.N())
			if count.VertexButterfliesAt(g, v) != p.VertexFourCyclesAt(v) {
				res.VertexMismatches++
			}
			res.SampledVertices++
		}
		// Sample edges via random vertices with neighbors.
		for res.SampledEdges < samples {
			v := rng.Intn(p.N())
			nbrs := g.Neighbors(v)
			if len(nbrs) == 0 {
				continue
			}
			w := nbrs[rng.Intn(len(nbrs))]
			direct, err := count.EdgeButterfliesAt(g, v, w)
			if err != nil {
				return nil, err
			}
			formula, err := p.EdgeFourCyclesAt(v, w)
			if err != nil {
				return nil, err
			}
			if direct != formula {
				res.EdgeMismatches++
			}
			res.SampledEdges++
		}
	}
	res.EdgeSumConsistent = p.GlobalFourCyclesViaEdges() == globalC
	return res, nil
}

func (r *TableIResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table I — graph statistics (paper dataset substituted; see DESIGN.md §5)\n")
	fmt.Fprintf(&b, "%-22s %10s %10s %12s %16s\n", "Adjacency", "|U|", "|W|", "Edges", "Global 4-Cycles")
	row := func(t TableIRow) {
		fmt.Fprintf(&b, "%-22s %10d %10d %12d %16d\n", t.Name, t.NU, t.NW, t.Edges, t.GlobalFour)
	}
	fmt.Fprintf(&b, "— measured (this repo) —\n")
	row(r.Factor)
	row(r.Product)
	fmt.Fprintf(&b, "— paper (Konect unicode) —\n")
	row(r.PaperFactor)
	row(r.PaperProduct)
	fmt.Fprintf(&b, "validation: %d/%d sampled vertices and %d/%d sampled edges match brute force; edge-sum identity holds: %v\n",
		r.SampledVertices-r.VertexMismatches, r.SampledVertices,
		r.SampledEdges-r.EdgeMismatches, r.SampledEdges, r.EdgeSumConsistent)
	fmt.Fprintf(&b, "ground truth time %v, materialize time %v\n", r.GroundTruthTime, r.MaterializeTime)
	return b.String()
}

// Valid reports whether every sampled check passed.
func (r *TableIResult) Valid() bool {
	return r.VertexMismatches == 0 && r.EdgeMismatches == 0 && r.EdgeSumConsistent
}
