// Package experiments reproduces every table and figure of the paper's
// evaluation, plus validation sweeps for each theorem.  Each experiment is
// a pure function returning a structured result with a formatted rendering,
// so the cmd/experiments harness, the test suite, and the benchmarks all
// drive identical code.
package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"sync/atomic"
	"time"

	"kronbip/internal/core"
	"kronbip/internal/count"
	"kronbip/internal/exec"
	"kronbip/internal/gen"
	"kronbip/internal/graph"
)

// TableIRow mirrors one row of the paper's Table I.
type TableIRow struct {
	Name        string
	NU, NW      int
	Edges       int64
	GlobalFour  int64
	FromFormula bool // true when the count came from the Kronecker formula
}

// TableIResult reproduces Table I: factor statistics and product ground
// truth, with sampled brute-force validation of the product.
type TableIResult struct {
	Factor  TableIRow
	Product TableIRow

	// Paper-reported values, for the paper-vs-measured record.
	PaperFactor  TableIRow
	PaperProduct TableIRow

	// Validation evidence.
	SampledVertices   int
	SampledEdges      int
	VertexMismatches  int
	EdgeMismatches    int
	EdgeSumConsistent bool // Σ◊/8 == Σs/4 == formula global

	GroundTruthTime time.Duration // time to compute all product ground truth
	MaterializeTime time.Duration
}

// RunTableI builds the unicode-like factor A, forms C = (A+I_A) ⊗ A, and
// reports the Table I statistics.  The product's global 4-cycle count comes
// from the sublinear Kronecker formula; `samples` random vertices and edges
// of the materialized product are cross-checked against direct counting.
// workers <= 0 selects GOMAXPROCS.
func RunTableI(seed int64, samples, workers int) (*TableIResult, error) {
	return RunTableIContext(context.Background(), seed, samples, workers)
}

// RunTableIContext is RunTableI under a context; materialization and the
// sampled brute-force validation run on the shared exec engine and abort
// with ctx.Err() on cancellation.
func RunTableIContext(ctx context.Context, seed int64, samples, workers int) (*TableIResult, error) {
	return RunTableIWithFactorContext(ctx, gen.UnicodeLike(seed), "A (unicode-like)", seed, samples, workers)
}

// RunTableIWithFactor is RunTableI with a caller-supplied bipartite factor —
// pass the real Konect unicode network (mmio.ReadKonectBipartite) to
// reproduce Table I's absolute numbers rather than the synthetic stand-in's.
func RunTableIWithFactor(a *graph.Bipartite, name string, seed int64, samples, workers int) (*TableIResult, error) {
	return RunTableIWithFactorContext(context.Background(), a, name, seed, samples, workers)
}

// RunTableIWithFactorContext is RunTableIWithFactor under a context.  The
// sample positions are drawn sequentially from the seeded rng (keeping the
// report deterministic for a given seed), then verified against brute force
// in parallel on the engine.
func RunTableIWithFactorContext(ctx context.Context, a *graph.Bipartite, name string, seed int64, samples, workers int) (*TableIResult, error) {
	fa, err := core.NewFactor(a.Graph)
	if err != nil {
		return nil, err
	}
	p, err := core.NewRelaxedWithParts(a.Graph, a, core.ModeSelfLoopFactor)
	if err != nil {
		return nil, err
	}

	start := time.Now()
	globalC := p.GlobalFourCycles()
	gtTime := time.Since(start)

	nu, nw := p.PartSizes()
	res := &TableIResult{
		Factor: TableIRow{
			Name: name, NU: a.NU(), NW: a.NW(),
			Edges: int64(a.NumEdges()), GlobalFour: fa.Global4,
		},
		Product: TableIRow{
			Name: "C = (A+I_A) ⊗ A", NU: nu, NW: nw,
			Edges: p.NumEdges(), GlobalFour: globalC, FromFormula: true,
		},
		PaperFactor: TableIRow{
			Name: "A (Konect unicode)", NU: 254, NW: 614, Edges: 1256, GlobalFour: 1662,
		},
		PaperProduct: TableIRow{
			Name: "C = (A+I_A) ⊗ A", NU: 220472, NW: 532952, Edges: 3155072, GlobalFour: 946565889,
		},
		GroundTruthTime: gtTime,
	}

	if samples > 0 {
		start = time.Now()
		g, err := p.MaterializeContext(ctx, workers)
		if err != nil {
			return nil, err
		}
		res.MaterializeTime = time.Since(start)

		// Draw every sample position sequentially from the seeded rng so the
		// sample set is deterministic, then verify in parallel on the engine.
		rng := rand.New(rand.NewSource(seed + 1))
		vs := make([]int, samples)
		for i := range vs {
			vs[i] = rng.Intn(p.N())
		}
		type edgeSample struct{ v, w int }
		es := make([]edgeSample, 0, samples)
		for len(es) < samples {
			v := rng.Intn(p.N())
			nbrs := g.Neighbors(v)
			if len(nbrs) == 0 {
				continue
			}
			es = append(es, edgeSample{v, nbrs[rng.Intn(len(nbrs))]})
		}

		var vertexBad atomic.Int64
		if err := exec.Ranges(ctx, len(vs), workers, func(ctx context.Context, _, lo, hi int) error {
			poll := exec.NewPoller(ctx, 64)
			var bad int64
			for i := lo; i < hi; i++ {
				if poll.Cancelled() {
					return poll.Err()
				}
				if count.VertexButterfliesAt(g, vs[i]) != p.VertexFourCyclesAt(vs[i]) {
					bad++
				}
			}
			vertexBad.Add(bad)
			return nil
		}); err != nil {
			return nil, err
		}
		res.SampledVertices = len(vs)
		res.VertexMismatches = int(vertexBad.Load())

		var edgeBad atomic.Int64
		if err := exec.Ranges(ctx, len(es), workers, func(ctx context.Context, _, lo, hi int) error {
			poll := exec.NewPoller(ctx, 64)
			var bad int64
			for i := lo; i < hi; i++ {
				if poll.Cancelled() {
					return poll.Err()
				}
				direct, err := count.EdgeButterfliesAt(g, es[i].v, es[i].w)
				if err != nil {
					return err
				}
				formula, err := p.EdgeFourCyclesAt(es[i].v, es[i].w)
				if err != nil {
					return err
				}
				if direct != formula {
					bad++
				}
			}
			edgeBad.Add(bad)
			return nil
		}); err != nil {
			return nil, err
		}
		res.SampledEdges = len(es)
		res.EdgeMismatches = int(edgeBad.Load())
	}
	res.EdgeSumConsistent = p.GlobalFourCyclesViaEdges() == globalC
	return res, nil
}

func (r *TableIResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table I — graph statistics (paper dataset substituted; see DESIGN.md §5)\n")
	fmt.Fprintf(&b, "%-22s %10s %10s %12s %16s\n", "Adjacency", "|U|", "|W|", "Edges", "Global 4-Cycles")
	row := func(t TableIRow) {
		fmt.Fprintf(&b, "%-22s %10d %10d %12d %16d\n", t.Name, t.NU, t.NW, t.Edges, t.GlobalFour)
	}
	fmt.Fprintf(&b, "— measured (this repo) —\n")
	row(r.Factor)
	row(r.Product)
	fmt.Fprintf(&b, "— paper (Konect unicode) —\n")
	row(r.PaperFactor)
	row(r.PaperProduct)
	fmt.Fprintf(&b, "validation: %d/%d sampled vertices and %d/%d sampled edges match brute force; edge-sum identity holds: %v\n",
		r.SampledVertices-r.VertexMismatches, r.SampledVertices,
		r.SampledEdges-r.EdgeMismatches, r.SampledEdges, r.EdgeSumConsistent)
	fmt.Fprintf(&b, "ground truth time %v, materialize time %v\n", r.GroundTruthTime, r.MaterializeTime)
	return b.String()
}

// Valid reports whether every sampled check passed.
func (r *TableIResult) Valid() bool {
	return r.VertexMismatches == 0 && r.EdgeMismatches == 0 && r.EdgeSumConsistent
}
