package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"kronbip/internal/approx"
	"kronbip/internal/bter"
	"kronbip/internal/core"
	"kronbip/internal/gen"
	"kronbip/internal/graph"
	"kronbip/internal/mmio"
	"kronbip/internal/rmat"
	"kronbip/internal/stats"
)

// --- EXP-ECC: distance ground truth ("degree, diameter, and eccentricity
// carry over directly from previous work", §I / abstract) ---

// DistanceCase is one factor pair with formula-vs-BFS distance results.
type DistanceCase struct {
	Name           string
	Mode           core.Mode
	ProductN       int
	DiameterTruth  int
	DiameterBFS    int
	EccMismatches  int
	HopsChecked    int
	HopsMismatches int
	TruthTime      time.Duration
	BFSTime        time.Duration
}

// DistanceResult validates hops/eccentricity/diameter formulas.
type DistanceResult struct {
	Cases []DistanceCase
}

// RunDistances sweeps strict factor pairs in both modes.
func RunDistances() (*DistanceResult, error) {
	specs := []struct {
		name string
		a, b *graph.Graph
		mode core.Mode
	}{
		{"K3 ⊗ P6", gen.Complete(3), gen.Path(6), core.ModeNonBipartiteFactor},
		{"C5 ⊗ C8", gen.Cycle(5), gen.Cycle(8), core.ModeNonBipartiteFactor},
		{"Petersen ⊗ tree", gen.Petersen(), gen.BinaryTree(4), core.ModeNonBipartiteFactor},
		{"(P5+I) ⊗ P7", gen.Path(5), gen.Path(7), core.ModeSelfLoopFactor},
		{"(C6+I) ⊗ grid(3,4)", gen.Cycle(6), gen.Grid(3, 4), core.ModeSelfLoopFactor},
		{"(star6+I) ⊗ Q4", gen.Star(6), gen.Hypercube(4), core.ModeSelfLoopFactor},
	}
	res := &DistanceResult{}
	for _, s := range specs {
		p, err := core.New(s.a, s.b, s.mode)
		if err != nil {
			return nil, fmt.Errorf("distances %s: %w", s.name, err)
		}
		c := DistanceCase{Name: s.name, Mode: s.mode, ProductN: p.N()}

		start := time.Now()
		c.DiameterTruth, err = p.Diameter()
		if err != nil {
			return nil, err
		}
		eccTruth := make([]int, p.N())
		for v := 0; v < p.N(); v++ {
			eccTruth[v], err = p.EccentricityAt(v)
			if err != nil {
				return nil, err
			}
		}
		c.TruthTime = time.Since(start)

		start = time.Now()
		g, err := p.Materialize(0)
		if err != nil {
			return nil, err
		}
		c.DiameterBFS = g.Diameter()
		for v := 0; v < p.N(); v++ {
			if g.Eccentricity(v) != eccTruth[v] {
				c.EccMismatches++
			}
			dist := g.BFS(v)
			for w := 0; w < p.N(); w++ {
				h, ok := p.HopsAt(v, w)
				c.HopsChecked++
				if !ok || h != dist[w] {
					c.HopsMismatches++
				}
			}
		}
		c.BFSTime = time.Since(start)
		res.Cases = append(res.Cases, c)
	}
	return res, nil
}

func (r *DistanceResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Distance ground truth — hops/eccentricity/diameter formulas vs all-pairs BFS\n")
	fmt.Fprintf(&b, "%-22s %-26s %6s %10s %9s %10s %10s %12s %12s\n",
		"factors", "mode", "n", "diam (gt)", "diam BFS", "ecc bad", "hops bad", "truth time", "BFS time")
	for _, c := range r.Cases {
		fmt.Fprintf(&b, "%-22s %-26s %6d %10d %9d %10d %10d %12v %12v\n",
			c.Name, c.Mode, c.ProductN, c.DiameterTruth, c.DiameterBFS, c.EccMismatches, c.HopsMismatches, c.TruthTime, c.BFSTime)
	}
	return b.String()
}

// Valid reports whether every distance statistic matched.
func (r *DistanceResult) Valid() bool {
	for _, c := range r.Cases {
		if c.DiameterTruth != c.DiameterBFS || c.EccMismatches > 0 || c.HopsMismatches > 0 {
			return false
		}
	}
	return len(r.Cases) > 0
}

// --- EXP-DEG: degree-distribution ground truth and baseline shapes ---

// DegreeRow summarizes one graph's degree distribution.
type DegreeRow struct {
	Name      string
	N         int64
	MaxDegree int64
	MeanDeg   float64
	Gini      float64
	Alpha     float64 // power-law tail MLE (0 when tail too thin)
	TailN     int64
	Exact     bool // histogram obtained in closed form (no graph touched)
}

// DegreeResult compares the product's exact degree distribution with the
// stochastic baselines' empirical ones.
type DegreeResult struct {
	Rows []DegreeRow
	// HistogramMatches records that the closed-form product histogram was
	// cross-checked against a materialized product at reduced scale.
	HistogramMatches bool
	// ProductHist and FactorHist back WriteCCDFTSV.
	ProductHist stats.Histogram
	FactorHist  stats.Histogram
}

// RunDegrees builds the Table I product's exact histogram, a reduced-scale
// cross-check, and baseline comparisons.
func RunDegrees(seed int64) (*DegreeResult, error) {
	res := &DegreeResult{}
	row := func(name string, h stats.Histogram, exact bool) DegreeRow {
		r := DegreeRow{
			Name: name, N: h.Total(), MaxDegree: h.Max(),
			MeanDeg: h.Mean(), Gini: h.Gini(), Exact: exact,
		}
		if alpha, tailN, err := h.PowerLawAlphaMLE(4); err == nil {
			r.Alpha, r.TailN = alpha, tailN
		}
		return r
	}

	// Exact product histogram, full Table I scale, closed form.
	a := gen.UnicodeLike(seed)
	p, err := core.NewRelaxedWithParts(a.Graph, a, core.ModeSelfLoopFactor)
	if err != nil {
		return nil, err
	}
	res.ProductHist = stats.Histogram(p.DegreeHistogram())
	res.FactorHist = stats.FromValues(a.Degrees())
	res.Rows = append(res.Rows, row("kronecker C (exact)", res.ProductHist, true))
	res.Rows = append(res.Rows, row("factor A", res.FactorHist, false))

	// Reduced-scale cross-check of the closed form.
	small := gen.BipartiteScaleFree(40, 80, 200, seed)
	sp, err := core.NewRelaxedWithParts(small.Graph, small, core.ModeSelfLoopFactor)
	if err != nil {
		return nil, err
	}
	sg, err := sp.Materialize(0)
	if err != nil {
		return nil, err
	}
	res.HistogramMatches = stats.Histogram(sp.DegreeHistogram()).Equal(stats.FromValues(sg.Degrees()))

	// Baselines at comparable sizes.
	rb, err := rmat.Generate(rmat.DefaultParams(10, 11, 8000, seed))
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, row("bipartite R-MAT", stats.FromValues(rb.Degrees()), false))
	bb, err := bter.Generate(bter.Params{
		DegreesU:      bter.HeavyTailDegrees(1024, 60, 2, seed),
		DegreesW:      bter.HeavyTailDegrees(2048, 40, 2, seed+1),
		BlockFraction: 0.6,
		BlockDensity:  0.8,
		Seed:          seed,
	})
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, row("bipartite BTER", stats.FromValues(bb.Degrees()), false))
	return res, nil
}

// WriteCCDFTSV emits the exact product degree CCDF (the log-log tail plot)
// alongside the factor's, for external plotting.
func (r *DegreeResult) WriteCCDFTSV(w io.Writer) error {
	mk := func(h stats.Histogram) (deg, frac []float64) {
		for _, pt := range h.CCDF() {
			deg = append(deg, float64(pt.V))
			frac = append(frac, pt.Frac)
		}
		return deg, frac
	}
	pd, pf := mk(r.ProductHist)
	fd, ff := mk(r.FactorHist)
	return mmio.WriteSeriesTSV(w,
		mmio.Series{Name: "product_degree", Values: pd},
		mmio.Series{Name: "product_ccdf", Values: pf},
		mmio.Series{Name: "factor_degree", Values: fd},
		mmio.Series{Name: "factor_ccdf", Values: ff},
	)
}

func (r *DegreeResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Degree distributions — exact Kronecker ground truth vs baselines\n")
	fmt.Fprintf(&b, "%-22s %10s %8s %8s %7s %7s %8s %6s\n", "graph", "vertices", "maxdeg", "mean", "Gini", "α", "tail n", "exact")
	for _, row := range r.Rows {
		alpha := "-"
		if row.Alpha > 0 {
			alpha = fmt.Sprintf("%.2f", row.Alpha)
		}
		fmt.Fprintf(&b, "%-22s %10d %8d %8.2f %7.3f %7s %8d %6v\n",
			row.Name, row.N, row.MaxDegree, row.MeanDeg, row.Gini, alpha, row.TailN, row.Exact)
	}
	fmt.Fprintf(&b, "closed-form histogram matches materialized product at reduced scale: %v\n", r.HistogramMatches)
	return b.String()
}

// --- EXP-APPROX: grading approximate counters against ground truth ---

// ApproxPoint is one (estimator, sample size) grading outcome, averaged
// over several seeds.
type ApproxPoint struct {
	Estimator    string
	Samples      int
	MeanRelErr   float64
	WorstRelErr  float64
	MeanEstimate float64
}

// ApproxResult grades the package approx estimators against exact
// Kronecker ground truth on a product graph — the error should shrink as
// samples grow, and the ground truth makes the grading airtight.
type ApproxResult struct {
	Truth  int64
	Graph  string
	Points []ApproxPoint
}

// RunApprox grades all three estimators at several sample sizes on a
// mid-scale product.
func RunApprox(seed int64) (*ApproxResult, error) {
	a := gen.ConnectedBipartiteScaleFree(60, 120, 300, seed)
	p, err := core.NewRelaxedWithParts(a.Graph, a, core.ModeSelfLoopFactor)
	if err != nil {
		return nil, err
	}
	g, err := p.Materialize(0)
	if err != nil {
		return nil, err
	}
	truth := p.GlobalFourCycles()
	res := &ApproxResult{Truth: truth, Graph: fmt.Sprintf("(A+I)⊗A, n=%d m=%d", p.N(), p.NumEdges())}

	estimators := []struct {
		name string
		fn   func(*graph.Graph, int, int64) (approx.Estimate, error)
	}{
		{"vertex", approx.VertexSample},
		{"edge", approx.EdgeSample},
		{"wedge", approx.WedgeSample},
	}
	const runs = 5
	for _, est := range estimators {
		for _, samples := range []int{100, 1000, 10000} {
			pt := ApproxPoint{Estimator: est.name, Samples: samples}
			for r := int64(0); r < runs; r++ {
				e, err := est.fn(g, samples, seed+r)
				if err != nil {
					return nil, err
				}
				rel := e.RelativeError(truth)
				pt.MeanRelErr += rel
				pt.MeanEstimate += e.Value
				if rel > pt.WorstRelErr {
					pt.WorstRelErr = rel
				}
			}
			pt.MeanRelErr /= runs
			pt.MeanEstimate /= runs
			res.Points = append(res.Points, pt)
		}
	}
	sort.SliceStable(res.Points, func(i, j int) bool {
		if res.Points[i].Estimator != res.Points[j].Estimator {
			return res.Points[i].Estimator < res.Points[j].Estimator
		}
		return res.Points[i].Samples < res.Points[j].Samples
	})
	return res, nil
}

func (r *ApproxResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Approximate 4-cycle counting graded against exact ground truth\n")
	fmt.Fprintf(&b, "graph: %s, □ (ground truth) = %d\n", r.Graph, r.Truth)
	fmt.Fprintf(&b, "%-10s %9s %14s %12s %12s\n", "estimator", "samples", "mean estimate", "mean relerr", "worst relerr")
	for _, pt := range r.Points {
		fmt.Fprintf(&b, "%-10s %9d %14.0f %11.2f%% %11.2f%%\n",
			pt.Estimator, pt.Samples, pt.MeanEstimate, 100*pt.MeanRelErr, 100*pt.WorstRelErr)
	}
	return b.String()
}

// Valid checks the expected shape: for every estimator the mean error at
// the largest sample size is below 20% and not worse than 2x the error at
// the smallest (sampling noise allows slight non-monotonicity).
func (r *ApproxResult) Valid() bool {
	byEst := map[string][]ApproxPoint{}
	for _, pt := range r.Points {
		byEst[pt.Estimator] = append(byEst[pt.Estimator], pt)
	}
	for _, pts := range byEst {
		first, last := pts[0], pts[len(pts)-1]
		if last.MeanRelErr > 0.20 {
			return false
		}
		if last.MeanRelErr > 2*first.MeanRelErr+0.02 {
			return false
		}
	}
	return len(byEst) == 3
}
