package experiments

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"kronbip/internal/core"
	"kronbip/internal/gen"
	"kronbip/internal/graph"
	"kronbip/internal/mmio"
)

// Fig5Point is one scatter point: vertex degree vs. its 4-cycle count.
type Fig5Point struct {
	Degree int64
	Four   int64
}

// Fig5Result reproduces Fig. 5: degree vs. per-vertex 4-cycle participation
// for the unicode-like factor A and the product C = (A+I_A) ⊗ A, on log-log
// axes with zeros mapped to 10⁻¹ (exactly as the paper plots them).
type Fig5Result struct {
	FactorPoints  []Fig5Point
	ProductPoints []Fig5Point

	// Degree-binned medians of the product scatter (power-of-two bins),
	// a compact rendering of the cloud's shape for terminal output.
	ProductBinned []Fig5Bin
	FactorBinned  []Fig5Bin
}

// Fig5Bin summarizes one power-of-two degree bin.
type Fig5Bin struct {
	MinDegree, MaxDegree int64
	Vertices             int
	MedianFour           float64
	MaxFour              int64
}

// RunFig5 computes both scatters entirely from ground truth (no product
// materialization: the product scatter is the Thm. 4 vector).
func RunFig5(seed int64) (*Fig5Result, error) {
	return RunFig5WithFactor(gen.UnicodeLike(seed))
}

// RunFig5WithFactor is RunFig5 with a caller-supplied factor (e.g. the
// real Konect unicode network).
func RunFig5WithFactor(a *graph.Bipartite) (*Fig5Result, error) {
	fa, err := core.NewFactor(a.Graph)
	if err != nil {
		return nil, err
	}
	p, err := core.NewRelaxedWithParts(a.Graph, a, core.ModeSelfLoopFactor)
	if err != nil {
		return nil, err
	}
	res := &Fig5Result{}
	for i := 0; i < fa.N(); i++ {
		res.FactorPoints = append(res.FactorPoints, Fig5Point{Degree: fa.D[i], Four: fa.S[i]})
	}
	dC := p.Degrees()
	sC := p.VertexFourCycles()
	res.ProductPoints = make([]Fig5Point, len(dC))
	for v := range dC {
		res.ProductPoints[v] = Fig5Point{Degree: dC[v], Four: sC[v]}
	}
	res.FactorBinned = binPoints(res.FactorPoints)
	res.ProductBinned = binPoints(res.ProductPoints)
	return res, nil
}

func binPoints(points []Fig5Point) []Fig5Bin {
	byBin := map[int][]int64{}
	for _, pt := range points {
		if pt.Degree == 0 {
			continue
		}
		b := 0
		for int64(1)<<(b+1) <= pt.Degree {
			b++
		}
		byBin[b] = append(byBin[b], pt.Four)
	}
	keys := make([]int, 0, len(byBin))
	for k := range byBin {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	out := make([]Fig5Bin, 0, len(keys))
	for _, k := range keys {
		vals := byBin[k]
		sort.Slice(vals, func(a, b int) bool { return vals[a] < vals[b] })
		var max int64
		for _, v := range vals {
			if v > max {
				max = v
			}
		}
		med := float64(vals[len(vals)/2])
		if len(vals)%2 == 0 {
			med = (float64(vals[len(vals)/2-1]) + float64(vals[len(vals)/2])) / 2
		}
		out = append(out, Fig5Bin{
			MinDegree:  int64(1) << k,
			MaxDegree:  int64(1)<<(k+1) - 1,
			Vertices:   len(vals),
			MedianFour: med,
			MaxFour:    max,
		})
	}
	return out
}

// WriteTSV emits the two scatters as TSV columns with the paper's zero →
// 10⁻¹ mapping applied to the 4-cycle axis.
func (r *Fig5Result) WriteTSV(w io.Writer) error {
	mk := func(points []Fig5Point) (deg, four []float64) {
		for _, pt := range points {
			deg = append(deg, float64(pt.Degree))
			f := float64(pt.Four)
			if pt.Four == 0 {
				f = 0.1 // the paper's zero mapping for log-log axes
			}
			four = append(four, f)
		}
		return deg, four
	}
	fd, ff := mk(r.FactorPoints)
	pd, pf := mk(r.ProductPoints)
	return mmio.WriteSeriesTSV(w,
		mmio.Series{Name: "factor_degree", Values: fd},
		mmio.Series{Name: "factor_4cycles", Values: ff},
		mmio.Series{Name: "product_degree", Values: pd},
		mmio.Series{Name: "product_4cycles", Values: pf},
	)
}

func (r *Fig5Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 5 — vertex degree vs 4-cycle count (log-log shape, power-of-two degree bins)\n")
	render := func(name string, bins []Fig5Bin) {
		fmt.Fprintf(&b, "%s:\n", name)
		fmt.Fprintf(&b, "  %12s %9s %14s %14s\n", "degree bin", "vertices", "median □(v)", "max □(v)")
		for _, bin := range bins {
			fmt.Fprintf(&b, "  [%5d,%5d] %9d %14.1f %14d\n", bin.MinDegree, bin.MaxDegree, bin.Vertices, bin.MedianFour, bin.MaxFour)
		}
	}
	render("factor A", r.FactorBinned)
	render("product C", r.ProductBinned)
	fmt.Fprintf(&b, "shape check: product max 4-cycle count %d vs factor max %d (heavy tail amplified %.0fx)\n",
		maxFour(r.ProductPoints), maxFour(r.FactorPoints),
		float64(maxFour(r.ProductPoints))/math.Max(1, float64(maxFour(r.FactorPoints))))
	return b.String()
}

func maxFour(points []Fig5Point) int64 {
	var m int64
	for _, p := range points {
		if p.Four > m {
			m = p.Four
		}
	}
	return m
}
