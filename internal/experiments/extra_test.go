package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunDistances(t *testing.T) {
	res, err := RunDistances()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Valid() {
		t.Fatalf("distance ground truth failed:\n%s", res)
	}
	if len(res.Cases) != 6 {
		t.Fatalf("cases = %d, want 6", len(res.Cases))
	}
	for _, c := range res.Cases {
		if c.HopsChecked != c.ProductN*c.ProductN {
			t.Fatalf("%s: checked %d pairs, want %d", c.Name, c.HopsChecked, c.ProductN*c.ProductN)
		}
	}
	if res.String() == "" {
		t.Fatal("empty String")
	}
}

func TestRunDegrees(t *testing.T) {
	res, err := RunDegrees(2020)
	if err != nil {
		t.Fatal(err)
	}
	if !res.HistogramMatches {
		t.Fatal("closed-form degree histogram disagrees with materialization")
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(res.Rows))
	}
	kron := res.Rows[0]
	if !kron.Exact {
		t.Fatal("product row should be exact")
	}
	if kron.N != 753424 {
		t.Fatalf("product vertices = %d, want 753424", kron.N)
	}
	// Product must amplify the factor's max degree multiplicatively.
	factor := res.Rows[1]
	if kron.MaxDegree < factor.MaxDegree*2 {
		t.Fatalf("product max degree %d not amplified over factor %d", kron.MaxDegree, factor.MaxDegree)
	}
	// Heavy tails everywhere: Gini well above a regular graph's 0.
	for _, row := range res.Rows {
		if row.Name == "bipartite BTER" {
			continue // BTER's degree ceiling keeps it flatter
		}
		if row.Gini < 0.2 {
			t.Fatalf("%s: Gini %.3f too uniform for a heavy-tail generator", row.Name, row.Gini)
		}
	}
	if res.String() == "" {
		t.Fatal("empty String")
	}
}

func TestDegreeCCDFTSV(t *testing.T) {
	res, err := RunDegrees(2020)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteCCDFTSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if lines[0] != "product_degree\tproduct_ccdf\tfactor_degree\tfactor_ccdf" {
		t.Fatalf("header = %q", lines[0])
	}
	if len(lines) < 10 {
		t.Fatalf("CCDF TSV too short: %d lines", len(lines))
	}
	// First CCDF fraction is 1 (every vertex has degree >= min degree).
	first := strings.Split(lines[1], "\t")
	if first[1] != "1" {
		t.Fatalf("first product CCDF fraction = %q, want 1", first[1])
	}
}

func TestRunSpectral(t *testing.T) {
	res, err := RunSpectral()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Valid() {
		t.Fatalf("spectral ground truth failed:\n%s", res)
	}
	if len(res.Cases) != 6 {
		t.Fatalf("cases = %d, want 6", len(res.Cases))
	}
	if res.String() == "" {
		t.Fatal("empty String")
	}
}

func TestRunDistributed(t *testing.T) {
	res, err := RunDistributed(4)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Valid() {
		t.Fatalf("distributed simulation failed:\n%s", res)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(res.Rows))
	}
	if res.String() == "" {
		t.Fatal("empty String")
	}
}

func TestRunApprox(t *testing.T) {
	res, err := RunApprox(9)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Valid() {
		t.Fatalf("approx grading failed:\n%s", res)
	}
	if res.Truth <= 0 {
		t.Fatal("ground truth not positive")
	}
	if len(res.Points) != 9 {
		t.Fatalf("points = %d, want 9", len(res.Points))
	}
	if res.String() == "" {
		t.Fatal("empty String")
	}
}
