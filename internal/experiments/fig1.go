package experiments

import (
	"fmt"
	"strings"

	"kronbip/internal/core"
	"kronbip/internal/gen"
	"kronbip/internal/graph"
)

// Fig1Case is one panel of the paper's Fig. 1 (and the 4-cycle inventory of
// Fig. 3): a small Kronecker product with its connectivity and
// bipartiteness outcome.
type Fig1Case struct {
	Name        string
	Mode        string
	NVertices   int
	NEdges      int64
	Components  int
	Bipartite   bool
	GlobalFour  int64 // ground truth from the Kronecker formulas
	DirectFour  int64 // brute force on the materialized product
	TheoremSays string
}

// Fig1Result reproduces Fig. 1's three constructions.
type Fig1Result struct {
	Cases []Fig1Case
}

// RunFig1 builds the paper's three small products:
//
//	(top)        P3 ⊗ P3       — two bipartite factors: bipartite but disconnected
//	(lower-left) C3 ⊗ P3       — non-bipartite A: connected and bipartite (Thm. 1)
//	(lower-rgt)  (P3+I) ⊗ P3   — self loops on A: connected and bipartite (Thm. 2)
func RunFig1() (*Fig1Result, error) {
	p3 := gen.Path(3)
	c3 := gen.Cycle(3)
	specs := []struct {
		name, claim string
		a           *graph.Graph
		mode        core.Mode
		relaxed     bool
	}{
		{"bipartite ⊗ bipartite", "disconnected (pre-Thm. discussion)", p3, core.ModeNonBipartiteFactor, true},
		{"non-bipartite ⊗ bipartite", "connected + bipartite (Thm. 1)", c3, core.ModeNonBipartiteFactor, false},
		{"self-loops ⊗ bipartite", "connected + bipartite (Thm. 2)", p3, core.ModeSelfLoopFactor, false},
	}
	res := &Fig1Result{}
	for _, s := range specs {
		var p *core.Product
		var err error
		if s.relaxed {
			p, err = core.NewRelaxed(s.a, p3, s.mode)
		} else {
			p, err = core.New(s.a, p3, s.mode)
		}
		if err != nil {
			return nil, fmt.Errorf("fig1 %s: %w", s.name, err)
		}
		g, err := p.Materialize(0)
		if err != nil {
			return nil, err
		}
		_, comps := g.ConnectedComponents()
		direct, err := directGlobalFour(g)
		if err != nil {
			return nil, err
		}
		res.Cases = append(res.Cases, Fig1Case{
			Name:        s.name,
			Mode:        p.Mode().String(),
			NVertices:   p.N(),
			NEdges:      p.NumEdges(),
			Components:  comps,
			Bipartite:   g.IsBipartite(),
			GlobalFour:  p.GlobalFourCycles(),
			DirectFour:  direct,
			TheoremSays: s.claim,
		})
	}
	return res, nil
}

func (r *Fig1Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 1 — small bipartite Kronecker products (factors: P3, C3)\n")
	fmt.Fprintf(&b, "%-28s %4s %6s %6s %10s %8s %8s  %s\n", "construction", "n", "edges", "comps", "bipartite", "□ truth", "□ direct", "expected")
	for _, c := range r.Cases {
		fmt.Fprintf(&b, "%-28s %4d %6d %6d %10v %8d %8d  %s\n",
			c.Name, c.NVertices, c.NEdges, c.Components, c.Bipartite, c.GlobalFour, c.DirectFour, c.TheoremSays)
	}
	return b.String()
}

// Valid reports whether the Fig. 1 outcomes match the paper's claims.
func (r *Fig1Result) Valid() bool {
	if len(r.Cases) != 3 {
		return false
	}
	top, left, right := r.Cases[0], r.Cases[1], r.Cases[2]
	return top.Bipartite && top.Components > 1 &&
		left.Bipartite && left.Components == 1 &&
		right.Bipartite && right.Components == 1 &&
		top.GlobalFour == top.DirectFour &&
		left.GlobalFour == left.DirectFour &&
		right.GlobalFour == right.DirectFour
}
