package experiments

import (
	"fmt"
	"strings"
	"time"

	"kronbip/internal/core"
	"kronbip/internal/count"
	"kronbip/internal/gen"
)

// ScalePoint is one size step of the cost comparison.
type ScalePoint struct {
	Scale           int   // factor size parameter
	ProductVertices int   //
	ProductEdges    int64 //
	GroundTruth     time.Duration
	GroundTruthVal  int64
	Direct          time.Duration // wedge counting on the materialized graph
	DirectVal       int64
	Materialize     time.Duration
	Speedup         float64
}

// ScaleResult quantifies the paper's §IV complexity claim: global ground
// truth from the factors is sublinear in |E_C| while direct counting is
// superlinear, so the gap widens with scale.
type ScaleResult struct {
	Points []ScalePoint
}

// RunScaling sweeps bipartite scale-free factor sizes; for each, it times
// (a) Kronecker ground truth (factor stats + closed form) against
// (b) materialization + parallel wedge counting.
func RunScaling(steps int, seed int64, workers int) (*ScaleResult, error) {
	res := &ScaleResult{}
	for s := 0; s < steps; s++ {
		nu := 20 << uint(s)
		nw := 30 << uint(s)
		edges := 60 << uint(s)
		a := gen.ConnectedBipartiteScaleFree(nu, nw, edges, seed+int64(s))

		start := time.Now()
		p, err := core.NewRelaxedWithParts(a.Graph, a, core.ModeSelfLoopFactor)
		if err != nil {
			return nil, err
		}
		truth := p.GlobalFourCycles()
		gtTime := time.Since(start)

		start = time.Now()
		g, err := p.Materialize(workers)
		if err != nil {
			return nil, err
		}
		matTime := time.Since(start)

		start = time.Now()
		sv, err := count.VertexButterfliesParallel(g, workers)
		if err != nil {
			return nil, err
		}
		var sum int64
		for _, v := range sv {
			sum += v
		}
		directTime := time.Since(start)
		if sum%4 != 0 {
			return nil, fmt.Errorf("scale: direct sum %d not divisible by 4", sum)
		}
		direct := sum / 4
		if direct != truth {
			return nil, fmt.Errorf("scale step %d: ground truth %d != direct %d", s, truth, direct)
		}
		res.Points = append(res.Points, ScalePoint{
			Scale:           s,
			ProductVertices: p.N(),
			ProductEdges:    p.NumEdges(),
			GroundTruth:     gtTime,
			GroundTruthVal:  truth,
			Direct:          directTime,
			DirectVal:       direct,
			Materialize:     matTime,
			Speedup:         float64(directTime+matTime) / float64(gtTime),
		})
	}
	return res, nil
}

func (r *ScaleResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "§IV cost claim — sublinear ground truth vs direct counting (values verified equal)\n")
	fmt.Fprintf(&b, "%5s %10s %12s %14s %14s %14s %9s\n", "step", "|V_C|", "|E_C|", "truth time", "direct time", "mat. time", "speedup")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%5d %10d %12d %14v %14v %14v %8.1fx\n",
			p.Scale, p.ProductVertices, p.ProductEdges, p.GroundTruth, p.Direct, p.Materialize, p.Speedup)
	}
	if n := len(r.Points); n >= 2 {
		first, last := r.Points[0], r.Points[n-1]
		fmt.Fprintf(&b, "shape check: speedup grows from %.1fx to %.1fx as |E_C| grows %dx\n",
			first.Speedup, last.Speedup, last.ProductEdges/max64(1, first.ProductEdges))
	}
	return b.String()
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
