package experiments

import (
	"fmt"
	"strings"
	"time"

	"kronbip/internal/core"
	"kronbip/internal/dist"
	"kronbip/internal/gen"
)

// DistRow is one rank-count row of the distributed-generation simulation.
type DistRow struct {
	Ranks       int
	Wall        time.Duration
	Edges       int64
	GlobalFour  int64
	RoutesAgree bool // vertex-sum route == edge-sum route
}

// DistResult simulates the paper's §V future work: ranks generate disjoint
// slices of the product while computing exact ground truth inline; the
// coordinator reduction must reproduce the closed-form counts for every
// rank count.
type DistResult struct {
	Product   string
	Reference int64 // closed-form global count
	Rows      []DistRow
}

// RunDistributed sweeps rank counts on a mid-scale product.
func RunDistributed(seed int64) (*DistResult, error) {
	a := gen.ConnectedBipartiteScaleFree(48, 96, 240, seed)
	p, err := core.NewRelaxedWithParts(a.Graph, a, core.ModeSelfLoopFactor)
	if err != nil {
		return nil, err
	}
	res := &DistResult{
		Product:   fmt.Sprintf("(A+I)⊗A, n=%d m=%d", p.N(), p.NumEdges()),
		Reference: p.GlobalFourCycles(),
	}
	for _, ranks := range []int{1, 2, 4, 8, 16} {
		start := time.Now()
		r, err := dist.Generate(p, ranks)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, DistRow{
			Ranks:       ranks,
			Wall:        time.Since(start),
			Edges:       r.TotalEdges,
			GlobalFour:  r.GlobalFour,
			RoutesAgree: r.GlobalFour == r.GlobalFourE,
		})
	}
	return res, nil
}

func (r *DistResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Distributed generation simulation (§V future work) on %s\n", r.Product)
	fmt.Fprintf(&b, "closed-form reference: □ = %d\n", r.Reference)
	fmt.Fprintf(&b, "%6s %12s %12s %14s %7s\n", "ranks", "wall", "edges", "□ (reduced)", "agree")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%6d %12v %12d %14d %7v\n", row.Ranks, row.Wall, row.Edges, row.GlobalFour, row.RoutesAgree)
	}
	return b.String()
}

// Valid reports whether every rank count reproduced the reference exactly.
func (r *DistResult) Valid() bool {
	for _, row := range r.Rows {
		if row.GlobalFour != r.Reference || !row.RoutesAgree {
			return false
		}
	}
	return len(r.Rows) > 0
}
