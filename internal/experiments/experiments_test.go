package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestRunTableISmallSamples(t *testing.T) {
	res, err := RunTableI(2020, 25, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Valid() {
		t.Fatalf("Table I validation failed:\n%s", res)
	}
	// Structural facts that must match the paper's construction exactly.
	if res.Factor.NU != 254 || res.Factor.NW != 614 || res.Factor.Edges != 1256 {
		t.Fatalf("factor shape wrong: %+v", res.Factor)
	}
	nA := 254 + 614
	if res.Product.NU != nA*254 || res.Product.NW != nA*614 {
		t.Fatalf("product part sizes wrong: %+v", res.Product)
	}
	wantEdges := int64(2*1256+nA) * 1256
	if res.Product.Edges != wantEdges {
		t.Fatalf("product edges %d, want %d", res.Product.Edges, wantEdges)
	}
	if res.Product.GlobalFour <= res.Factor.GlobalFour {
		t.Fatal("product should have vastly more 4-cycles than the factor")
	}
	if !strings.Contains(res.String(), "Table I") {
		t.Fatal("String() missing caption")
	}
}

func TestRunTableINoSamplesSkipsMaterialize(t *testing.T) {
	res, err := RunTableI(2020, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaterializeTime != 0 || res.SampledVertices != 0 {
		t.Fatal("samples=0 should skip materialization")
	}
	if !res.EdgeSumConsistent {
		t.Fatal("edge-sum identity must hold regardless of sampling")
	}
}

func TestRunFig5(t *testing.T) {
	res, err := RunFig5(2020)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FactorPoints) != 868 {
		t.Fatalf("factor points = %d, want 868", len(res.FactorPoints))
	}
	if len(res.ProductPoints) != 868*868 {
		t.Fatalf("product points = %d, want %d", len(res.ProductPoints), 868*868)
	}
	if len(res.ProductBinned) == 0 || len(res.FactorBinned) == 0 {
		t.Fatal("binned summaries empty")
	}
	// The product's heavy tail must dominate the factor's.
	if maxFour(res.ProductPoints) <= maxFour(res.FactorPoints) {
		t.Fatal("product tail not amplified")
	}
	// Monotone-ish shape: the top product bin should out-count the bottom.
	top := res.ProductBinned[len(res.ProductBinned)-1]
	bottom := res.ProductBinned[0]
	if top.MedianFour <= bottom.MedianFour {
		t.Fatalf("degree-4cycle correlation missing: top median %.1f <= bottom %.1f", top.MedianFour, bottom.MedianFour)
	}
	var buf bytes.Buffer
	if err := res.WriteTSV(&buf); err != nil {
		t.Fatal(err)
	}
	header := strings.SplitN(buf.String(), "\n", 2)[0]
	if header != "factor_degree\tfactor_4cycles\tproduct_degree\tproduct_4cycles" {
		t.Fatalf("TSV header = %q", header)
	}
	// Zero mapping: no literal zeros in the 4-cycle columns.
	if strings.Contains(buf.String(), "\t0\n") {
		t.Fatal("zeros not mapped to 0.1 in TSV")
	}
	if res.String() == "" {
		t.Fatal("empty String")
	}
}

func TestRunFig1(t *testing.T) {
	res, err := RunFig1()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Valid() {
		t.Fatalf("Fig. 1 outcomes wrong:\n%s", res)
	}
	if res.String() == "" {
		t.Fatal("empty String")
	}
}

func TestRunFormulaValidation(t *testing.T) {
	res, err := RunFormulaValidation()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Valid() {
		t.Fatalf("formula validation failed:\n%s", res)
	}
	if len(res.Cases) != 10 {
		t.Fatalf("cases = %d, want 10", len(res.Cases))
	}
}

func TestRunClusteringLaw(t *testing.T) {
	res, err := RunClusteringLaw(1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.BoundOK {
		t.Fatalf("Thm 6 bound violated:\n%s", res)
	}
	if res.NontrivialAt == 0 {
		t.Fatal("no nontrivial bounds exercised")
	}
	if res.PsiMin < 1.0/9-1e-12 || res.PsiMax >= 1 {
		t.Fatalf("ψ range [%g,%g] outside [1/9,1)", res.PsiMin, res.PsiMax)
	}
	if res.MinSlack < 0 {
		t.Fatal("negative slack")
	}
	if res.String() == "" {
		t.Fatal("empty String")
	}
}

func TestRunCommunity(t *testing.T) {
	res, err := RunCommunity(3)
	if err != nil {
		t.Fatal(err)
	}
	if !res.FormulasExact {
		t.Fatalf("Thm 7 formulas inexact:\n%s", res)
	}
	if !res.BoundsHold {
		t.Fatalf("Cor 1/2 bounds violated:\n%s", res)
	}
	if !res.DensityPreserved {
		t.Fatalf("planted community not preserved:\n%s", res)
	}
	if math.IsNaN(res.RhoInProduct) {
		t.Fatal("NaN density")
	}
	if res.String() == "" {
		t.Fatal("empty String")
	}
}

func TestRunRemark1(t *testing.T) {
	res, err := RunRemark1()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Valid() {
		t.Fatalf("Remark 1 demo failed:\n%s", res)
	}
	if res.String() == "" {
		t.Fatal("empty String")
	}
}

func TestRunScalingSmall(t *testing.T) {
	res, err := RunScaling(3, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3 {
		t.Fatalf("points = %d, want 3", len(res.Points))
	}
	for i, p := range res.Points {
		if p.GroundTruthVal != p.DirectVal {
			t.Fatalf("step %d: truth %d != direct %d", i, p.GroundTruthVal, p.DirectVal)
		}
	}
	// Product sizes must grow geometrically.
	if res.Points[2].ProductEdges <= res.Points[0].ProductEdges {
		t.Fatal("scaling steps did not grow")
	}
	if res.String() == "" {
		t.Fatal("empty String")
	}
}

func TestRunBaselines(t *testing.T) {
	res, err := RunBaselines(7)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(res.Rows))
	}
	if !res.Rows[0].ExactTruth || res.Rows[1].ExactTruth || res.Rows[2].ExactTruth {
		t.Fatal("exact-truth flags wrong")
	}
	// The Kronecker generator's count must be available much faster than
	// brute counting at comparable scale — it is closed form.
	if res.Rows[0].FourTime > res.Rows[1].FourTime && res.Rows[0].FourTime > res.Rows[2].FourTime {
		t.Fatalf("closed-form truth slower than both counting passes:\n%s", res)
	}
	if res.String() == "" {
		t.Fatal("empty String")
	}
}
