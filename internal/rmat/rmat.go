// Package rmat implements a bipartite R-MAT generator (Chakrabarti–Zhan–
// Faloutsos), the stochastic comparator discussed in the paper's §I: fast,
// heavy-tailed, but with graph statistics known only in expectation — the
// foil that motivates non-stochastic Kronecker generators with exact
// ground truth.
package rmat

import (
	"fmt"
	"math/rand"

	"kronbip/internal/graph"
)

// Params configures a bipartite R-MAT instance over a 2^ScaleU × 2^ScaleW
// adjacency rectangle.
type Params struct {
	ScaleU, ScaleW int // |U| = 2^ScaleU, |W| = 2^ScaleW
	Edges          int // distinct edges to emit
	// Quadrant probabilities; must be positive and sum to 1.  The classic
	// skewed setting is A=0.57, B=0.19, C=0.19, D=0.05.
	A, B, C, D float64
	Seed       int64
}

// DefaultParams returns the classic skewed R-MAT quadrant weights for the
// given shape.
func DefaultParams(scaleU, scaleW, edges int, seed int64) Params {
	return Params{ScaleU: scaleU, ScaleW: scaleW, Edges: edges,
		A: 0.57, B: 0.19, C: 0.19, D: 0.05, Seed: seed}
}

// Validate checks parameter sanity.
func (p Params) Validate() error {
	if p.ScaleU < 0 || p.ScaleW < 0 || p.ScaleU > 30 || p.ScaleW > 30 {
		return fmt.Errorf("rmat: scales (%d,%d) out of [0,30]", p.ScaleU, p.ScaleW)
	}
	if p.Edges < 0 {
		return fmt.Errorf("rmat: negative edge count %d", p.Edges)
	}
	if int64(p.Edges) > int64(1)<<(uint(p.ScaleU)+uint(p.ScaleW)) {
		return fmt.Errorf("rmat: %d edges exceed the %d available cells", p.Edges, int64(1)<<(uint(p.ScaleU)+uint(p.ScaleW)))
	}
	if p.A <= 0 || p.B <= 0 || p.C <= 0 || p.D <= 0 {
		return fmt.Errorf("rmat: quadrant probabilities must be positive")
	}
	sum := p.A + p.B + p.C + p.D
	if sum < 0.999 || sum > 1.001 {
		return fmt.Errorf("rmat: quadrant probabilities sum to %g, want 1", sum)
	}
	return nil
}

// Generate produces a bipartite graph by repeated R-MAT descent,
// deduplicating until exactly Edges distinct pairs are drawn.  Rectangular
// shapes descend the shared prefix of levels jointly; surplus row levels
// split with marginal probability A+B vs C+D, surplus column levels with
// A+C vs B+D.
func Generate(p Params) (*graph.Bipartite, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(p.Seed))
	nu, nw := 1<<uint(p.ScaleU), 1<<uint(p.ScaleW)
	seen := make(map[[2]int]bool, p.Edges)
	pairs := make([][2]int, 0, p.Edges)
	rowP := (p.A + p.B) // marginal probability of the upper row half
	colP := (p.A + p.C) // marginal probability of the left column half
	for len(pairs) < p.Edges {
		u, w := 0, 0
		joint := p.ScaleU
		if p.ScaleW < joint {
			joint = p.ScaleW
		}
		for lvl := 0; lvl < joint; lvl++ {
			r := rng.Float64()
			switch {
			case r < p.A:
				// upper-left: high bits stay 0
			case r < p.A+p.B:
				w |= 1 << uint(p.ScaleW-1-lvl)
			case r < p.A+p.B+p.C:
				u |= 1 << uint(p.ScaleU-1-lvl)
			default:
				u |= 1 << uint(p.ScaleU-1-lvl)
				w |= 1 << uint(p.ScaleW-1-lvl)
			}
		}
		for lvl := joint; lvl < p.ScaleU; lvl++ {
			if rng.Float64() >= rowP {
				u |= 1 << uint(p.ScaleU-1-lvl)
			}
		}
		for lvl := joint; lvl < p.ScaleW; lvl++ {
			if rng.Float64() >= colP {
				w |= 1 << uint(p.ScaleW-1-lvl)
			}
		}
		key := [2]int{u, w}
		if seen[key] {
			continue
		}
		seen[key] = true
		pairs = append(pairs, key)
	}
	_ = nu
	_ = nw
	return graph.NewBipartite(nu, nw, pairs)
}
