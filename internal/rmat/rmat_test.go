package rmat

import (
	"testing"

	"kronbip/internal/graph"
)

func TestValidate(t *testing.T) {
	good := DefaultParams(6, 7, 500, 1)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []Params{
		{ScaleU: -1, ScaleW: 3, Edges: 1, A: 0.25, B: 0.25, C: 0.25, D: 0.25},
		{ScaleU: 31, ScaleW: 3, Edges: 1, A: 0.25, B: 0.25, C: 0.25, D: 0.25},
		{ScaleU: 3, ScaleW: 3, Edges: -1, A: 0.25, B: 0.25, C: 0.25, D: 0.25},
		{ScaleU: 2, ScaleW: 2, Edges: 17, A: 0.25, B: 0.25, C: 0.25, D: 0.25}, // > cells
		{ScaleU: 3, ScaleW: 3, Edges: 4, A: 0.5, B: 0.5, C: 0.5, D: 0.5},      // sum 2
		{ScaleU: 3, ScaleW: 3, Edges: 4, A: 0, B: 0.5, C: 0.25, D: 0.25},      // zero quad
	}
	for i, p := range cases {
		if err := p.Validate(); err == nil {
			t.Fatalf("case %d: invalid params accepted", i)
		}
	}
}

func TestGenerateShape(t *testing.T) {
	p := DefaultParams(6, 8, 1000, 42)
	b, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if b.NU() != 64 || b.NW() != 256 {
		t.Fatalf("parts %d/%d, want 64/256", b.NU(), b.NW())
	}
	if b.NumEdges() != 1000 {
		t.Fatalf("edges = %d, want 1000", b.NumEdges())
	}
	if !b.IsBipartite() {
		t.Fatal("R-MAT output not bipartite")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := DefaultParams(5, 5, 300, 7)
	a, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	ea, eb := a.Edges(), b.Edges()
	if len(ea) != len(eb) {
		t.Fatal("same seed produced different edge counts")
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatal("same seed produced different graphs")
		}
	}
}

func TestSkewProducesHeavyTail(t *testing.T) {
	p := DefaultParams(7, 7, 2000, 3)
	b, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	mean := 2 * float64(b.NumEdges()) / float64(b.N())
	if float64(b.MaxDegree()) < 3*mean {
		t.Fatalf("max degree %d vs mean %.1f: no heavy tail from skewed quadrants", b.MaxDegree(), mean)
	}
	// Uniform quadrants should be much flatter than the skewed setting.
	flatP := Params{ScaleU: 7, ScaleW: 7, Edges: 2000, A: 0.25, B: 0.25, C: 0.25, D: 0.25, Seed: 3}
	flat, err := Generate(flatP)
	if err != nil {
		t.Fatal(err)
	}
	if flat.MaxDegree() >= b.MaxDegree() {
		t.Fatalf("uniform R-MAT max degree %d not below skewed %d", flat.MaxDegree(), b.MaxDegree())
	}
}

func TestRectangularDescent(t *testing.T) {
	// Strongly asymmetric shape exercises the surplus-level marginals.
	p := DefaultParams(3, 9, 400, 11)
	b, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if b.NU() != 8 || b.NW() != 512 {
		t.Fatal("rectangular shape wrong")
	}
	// Every U vertex must be in range; spot-check via edge list.
	for _, e := range b.Edges() {
		u, w := e.U, e.V
		if b.Part.Color[u] != graph.SideU {
			u, w = w, u
		}
		if u < 0 || u >= 8 || w < 8 || w >= 8+512 {
			t.Fatalf("edge %v out of the bipartite blocks", e)
		}
	}
}
