package count

import (
	"fmt"

	"kronbip/internal/graph"
	"kronbip/internal/grb"
)

// VertexButterfliesAlgebraic evaluates the paper's Def. 8 verbatim over the
// grb kernel:
//
//	s_A = ½ ( diag(A⁴) − d∘d − w⁽²⁾ + d ).
//
// diag(A⁴) is computed as the row-wise squared norm of A² (diag(A⁴)_i =
// Σ_j (A²)_ij² for symmetric A), avoiding the A⁴ product.
func VertexButterfliesAlgebraic(g *graph.Graph) ([]int64, error) {
	if g.NumSelfLoops() > 0 {
		return nil, fmt.Errorf("count: graph has self loops; Def. 8 requires none")
	}
	a := g.Adjacency()
	a2, err := grb.MxM(a, a)
	if err != nil {
		return nil, err
	}
	sq, err := grb.Hadamard(a2, a2)
	if err != nil {
		return nil, err
	}
	diag4 := grb.ReduceRows(grb.PlusMonoid[int64](), sq)
	d := g.Degrees()
	w2 := g.TwoWalks()
	s := grb.SubVec(diag4, grb.HadamardVec(d, d))
	s = grb.SubVec(s, w2)
	s = grb.AddVec(s, d)
	for i, v := range s {
		if v%2 != 0 || v < 0 {
			return nil, fmt.Errorf("count: Def. 8 gave invalid odd/negative count %d at vertex %d", v, i)
		}
		s[i] = v / 2
	}
	return s, nil
}

// EdgeButterfliesAlgebraic evaluates the paper's Def. 9 verbatim:
//
//	◊_A = A³∘A − (d·1ᵗ + 1·dᵗ)∘A + A,
//
// returning the symmetric sparse matrix with ◊_ij stored at every edge
// (each undirected edge appears at both (i,j) and (j,i), as in the paper).
func EdgeButterfliesAlgebraic(g *graph.Graph) (*grb.Matrix[int64], error) {
	if g.NumSelfLoops() > 0 {
		return nil, fmt.Errorf("count: graph has self loops; Def. 9 requires none")
	}
	a := g.Adjacency()
	a2, err := grb.MxM(a, a)
	if err != nil {
		return nil, err
	}
	a3a, err := hadamardWithProduct(a2, a, a) // (A²·A) ∘ A without forming all of A³
	if err != nil {
		return nil, err
	}
	d := g.Degrees()
	// (d·1ᵗ + 1·dᵗ)∘A + (−1)·A applied entry-wise on A's pattern.
	b := grb.NewBuilder[int64](a.NRows(), a.NCols())
	a.Iterate(func(i, j int, _ int64) bool {
		b.Add(i, j, -(d[i] + d[j] - 1))
		return true
	})
	corr, err := b.Build()
	if err != nil {
		return nil, err
	}
	return grb.Add(a3a, corr)
}

// hadamardWithProduct computes (X·Y) ∘ M without materializing X·Y: for
// each stored entry (i,j) of M it evaluates row i of X dotted with column j
// of Y restricted to M's pattern.  X, Y, M must be square and conformant;
// Y must equal Yᵗ for the column gather to reuse rows (true for adjacency
// matrices here).
func hadamardWithProduct(x, y, m *grb.Matrix[int64]) (*grb.Matrix[int64], error) {
	if x.NCols() != y.NRows() || x.NRows() != m.NRows() || y.NCols() != m.NCols() {
		return nil, fmt.Errorf("count: hadamardWithProduct shape mismatch")
	}
	b := grb.NewBuilder[int64](m.NRows(), m.NCols())
	m.Iterate(func(i, j int, _ int64) bool {
		// (X·Y)_ij = Σ_k X_ik Y_kj = Σ_k X_ik (Yᵗ)_jk; merge sorted rows.
		xc, xv := x.Row(i)
		yc, yv := y.Row(j) // relies on Y symmetric
		var acc int64
		p, q := 0, 0
		for p < len(xc) && q < len(yc) {
			switch {
			case xc[p] < yc[q]:
				p++
			case yc[q] < xc[p]:
				q++
			default:
				acc += xv[p] * yv[q]
				p++
				q++
			}
		}
		b.Add(i, j, acc)
		return true
	})
	return b.Build()
}

// GlobalButterfliesAlgebraic computes the global 4-cycle count from Def. 8;
// it must agree with GlobalButterflies.
func GlobalButterfliesAlgebraic(g *graph.Graph) (int64, error) {
	s, err := VertexButterfliesAlgebraic(g)
	if err != nil {
		return 0, err
	}
	sum := grb.SumVec(s)
	if sum%4 != 0 {
		return 0, fmt.Errorf("count: algebraic vertex butterfly sum %d not divisible by 4", sum)
	}
	return sum / 4, nil
}
