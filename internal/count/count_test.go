package count

import (
	"math/rand"
	"testing"
	"testing/quick"

	"kronbip/internal/gen"
	"kronbip/internal/graph"
	"kronbip/internal/grb"
)

func randomGraph(rng *rand.Rand, n int, density float64) *graph.Graph {
	var edges []graph.Edge
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < density {
				edges = append(edges, graph.Edge{U: i, V: j})
			}
		}
	}
	return graph.MustNew(n, edges)
}

func TestVertexButterfliesKnownGraphs(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		want []int64
	}{
		{"C4", gen.Cycle(4), []int64{1, 1, 1, 1}},
		{"path", gen.Path(5), []int64{0, 0, 0, 0, 0}},
		{"star", gen.Star(5), []int64{0, 0, 0, 0, 0}},
		{"K4", gen.Complete(4), []int64{3, 3, 3, 3}},
		{"K33", gen.CompleteBipartite(3, 3).Graph, []int64{6, 6, 6, 6, 6, 6}},
		{"petersen", gen.Petersen(), make([]int64, 10)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := VertexButterflies(tc.g)
			if err != nil {
				t.Fatal(err)
			}
			if !grb.EqualVec(got, tc.want) {
				t.Fatalf("VertexButterflies = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestGlobalButterfliesKnownGraphs(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		want int64
	}{
		{"C4", gen.Cycle(4), 1},
		{"C6", gen.Cycle(6), 0},
		{"K4", gen.Complete(4), 3},
		{"K33", gen.CompleteBipartite(3, 3).Graph, 9},
		{"K23", gen.CompleteBipartite(2, 3).Graph, 3},
		{"Q3", gen.Hypercube(3), 6},
		{"crown4", gen.Crown(4).Graph, 6}, // Crown(4) ≅ Q3, the 3-cube: 6 faces
		{"tree", gen.BinaryTree(4), 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := GlobalButterflies(tc.g)
			if err != nil {
				t.Fatal(err)
			}
			if got != tc.want {
				t.Fatalf("GlobalButterflies = %d, want %d", got, tc.want)
			}
		})
	}
}

func TestCrownButterfliesValue(t *testing.T) {
	// Independent check of the crown4 expectation: brute force over all
	// 4-subsets is feasible at n=8.
	g := gen.Crown(4).Graph
	var brute int64
	n := g.N()
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			for c := b + 1; c < n; c++ {
				for d := c + 1; d < n; d++ {
					brute += countC4OnQuad(g, [4]int{a, b, c, d})
				}
			}
		}
	}
	got, _ := GlobalButterflies(g)
	if got != brute {
		t.Fatalf("crown: wedge count %d, quad brute force %d", got, brute)
	}
}

// countC4OnQuad counts the 4-cycles on exactly the vertex set q (0..3
// distinct Hamiltonian cycles on 4 vertices).
func countC4OnQuad(g *graph.Graph, q [4]int) int64 {
	perms := [3][4]int{{0, 1, 2, 3}, {0, 1, 3, 2}, {0, 2, 1, 3}}
	var cnt int64
	for _, p := range perms {
		ok := true
		for i := 0; i < 4; i++ {
			if !g.HasEdge(q[p[i]], q[p[(i+1)%4]]) {
				ok = false
				break
			}
		}
		if ok {
			cnt++
		}
	}
	return cnt
}

func TestEdgeButterfliesKnownGraphs(t *testing.T) {
	// C4: every edge lies on the single 4-cycle.
	e, err := EdgeButterflies(gen.Cycle(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(e) != 4 {
		t.Fatalf("C4 has %d edges in map, want 4", len(e))
	}
	for edge, cnt := range e {
		if cnt != 1 {
			t.Fatalf("C4 edge %v count = %d, want 1", edge, cnt)
		}
	}
	// K33: every edge has (3-1)(3-1) = 4 butterflies.
	e, err = EdgeButterflies(gen.CompleteBipartite(3, 3).Graph)
	if err != nil {
		t.Fatal(err)
	}
	for edge, cnt := range e {
		if cnt != 4 {
			t.Fatalf("K33 edge %v count = %d, want 4", edge, cnt)
		}
	}
}

func TestEdgeVertexConsistency(t *testing.T) {
	// s_A = ½ ◊_A·1 (paper, after Def. 9): per-vertex counts are half the
	// sum of incident edge counts, since each 4-cycle at v uses 2 edges at v.
	rng := rand.New(rand.NewSource(50))
	for trial := 0; trial < 30; trial++ {
		g := randomGraph(rng, 10+rng.Intn(8), 0.35)
		s, err := VertexButterflies(g)
		if err != nil {
			t.Fatal(err)
		}
		edge, err := EdgeButterflies(g)
		if err != nil {
			t.Fatal(err)
		}
		halfSum := make([]int64, g.N())
		for e, cnt := range edge {
			halfSum[e.U] += cnt
			halfSum[e.V] += cnt
		}
		for v := range halfSum {
			if halfSum[v]%2 != 0 {
				t.Fatalf("incident edge sum odd at %d", v)
			}
			if halfSum[v]/2 != s[v] {
				t.Fatalf("vertex %d: ½Σ◊ = %d, s = %d", v, halfSum[v]/2, s[v])
			}
		}
	}
}

func TestThreeOraclesAgree(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 6+rng.Intn(10), 0.3)
		s1, err := VertexButterflies(g)
		if err != nil {
			return false
		}
		s2, err := VertexButterfliesAlgebraic(g)
		if err != nil {
			return false
		}
		if !grb.EqualVec(s1, s2) {
			return false
		}
		g1, err := GlobalButterflies(g)
		if err != nil {
			return false
		}
		g2, err := GlobalButterfliesBFS(g)
		if err != nil {
			return false
		}
		g3, err := GlobalButterfliesAlgebraic(g)
		if err != nil {
			return false
		}
		return g1 == g2 && g1 == g3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestEdgeAlgebraicMatchesCombinatorial(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 6+rng.Intn(8), 0.35)
		m, err := EdgeButterfliesAlgebraic(g)
		if err != nil {
			return false
		}
		comb, err := EdgeButterflies(g)
		if err != nil {
			return false
		}
		for e, cnt := range comb {
			if m.At(e.U, e.V) != cnt || m.At(e.V, e.U) != cnt {
				return false
			}
		}
		// The algebraic matrix pattern equals the adjacency pattern.
		return m.NNZ() == g.Adjacency().NNZ()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	g := randomGraph(rng, 60, 0.15)
	serial, err := VertexButterflies(g)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 5, 0, 1000} {
		par, err := VertexButterfliesParallel(g, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !grb.EqualVec(serial, par) {
			t.Fatalf("workers=%d: parallel differs from serial", workers)
		}
	}
}

func TestGlobalButterfliesBestSide(t *testing.T) {
	// Known values on asymmetric bicliques where side choice matters.
	for _, ab := range [][2]int{{2, 7}, {7, 2}, {3, 4}} {
		b := gen.CompleteBipartite(ab[0], ab[1])
		want, _ := GlobalButterflies(b.Graph)
		got, err := GlobalButterfliesBestSide(b)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("K_{%d,%d}: best-side %d, want %d", ab[0], ab[1], got, want)
		}
	}
	// Random bipartite graphs.
	rng := rand.New(rand.NewSource(54))
	for trial := 0; trial < 25; trial++ {
		nu, nw := 3+rng.Intn(6), 3+rng.Intn(6)
		var pairs [][2]int
		for u := 0; u < nu; u++ {
			for w := 0; w < nw; w++ {
				if rng.Float64() < 0.5 {
					pairs = append(pairs, [2]int{u, w})
				}
			}
		}
		b, err := graph.NewBipartite(nu, nw, pairs)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := GlobalButterflies(b.Graph)
		got, err := GlobalButterfliesBestSide(b)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("trial %d: best-side %d, want %d", trial, got, want)
		}
	}
}

func TestEdgeParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	g := randomGraph(rng, 50, 0.2)
	serial, err := EdgeButterflies(g)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 5, 0, 100} {
		par, err := EdgeButterfliesParallel(g, workers)
		if err != nil {
			t.Fatal(err)
		}
		if len(par) != len(serial) {
			t.Fatalf("workers=%d: %d edges, want %d", workers, len(par), len(serial))
		}
		for e, c := range serial {
			if par[e] != c {
				t.Fatalf("workers=%d: edge %v = %d, want %d", workers, e, par[e], c)
			}
		}
	}
	loopy := gen.Path(4).WithFullSelfLoops()
	if _, err := EdgeButterfliesParallel(loopy, 2); err == nil {
		t.Fatal("EdgeButterfliesParallel accepted self loops")
	}
}

func TestPointQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	g := randomGraph(rng, 14, 0.3)
	s, _ := VertexButterflies(g)
	for v := 0; v < g.N(); v++ {
		if got := VertexButterfliesAt(g, v); got != s[v] {
			t.Fatalf("VertexButterfliesAt(%d) = %d, want %d", v, got, s[v])
		}
	}
	edges, _ := EdgeButterflies(g)
	for e, cnt := range edges {
		got, err := EdgeButterfliesAt(g, e.U, e.V)
		if err != nil {
			t.Fatal(err)
		}
		if got != cnt {
			t.Fatalf("EdgeButterfliesAt(%v) = %d, want %d", e, got, cnt)
		}
		// Symmetric query.
		got2, _ := EdgeButterfliesAt(g, e.V, e.U)
		if got2 != cnt {
			t.Fatalf("EdgeButterfliesAt reversed (%v) = %d, want %d", e, got2, cnt)
		}
	}
	if _, err := EdgeButterfliesAt(g, 0, 0); err == nil {
		t.Fatal("EdgeButterfliesAt accepted non-edge")
	}
}

func TestSelfLoopRejection(t *testing.T) {
	g := gen.Path(4).WithFullSelfLoops()
	if _, err := VertexButterflies(g); err == nil {
		t.Fatal("VertexButterflies accepted self loops")
	}
	if _, err := VertexButterfliesParallel(g, 2); err == nil {
		t.Fatal("VertexButterfliesParallel accepted self loops")
	}
	if _, err := EdgeButterflies(g); err == nil {
		t.Fatal("EdgeButterflies accepted self loops")
	}
	if _, err := VertexButterfliesAlgebraic(g); err == nil {
		t.Fatal("VertexButterfliesAlgebraic accepted self loops")
	}
	if _, err := EdgeButterfliesAlgebraic(g); err == nil {
		t.Fatal("EdgeButterfliesAlgebraic accepted self loops")
	}
	if _, err := GlobalButterfliesBFS(g); err == nil {
		t.Fatal("GlobalButterfliesBFS accepted self loops")
	}
	if _, err := Triangles(g); err == nil {
		t.Fatal("Triangles accepted self loops")
	}
}

func TestTriangles(t *testing.T) {
	tri, err := Triangles(gen.Complete(4))
	if err != nil {
		t.Fatal(err)
	}
	if !grb.EqualVec(tri, []int64{3, 3, 3, 3}) {
		t.Fatalf("K4 triangles = %v", tri)
	}
	total, err := GlobalTriangles(gen.Complete(5))
	if err != nil {
		t.Fatal(err)
	}
	if total != 10 {
		t.Fatalf("K5 global triangles = %d, want 10", total)
	}
	// Bipartite graphs are triangle-free.
	tri, _ = Triangles(gen.CompleteBipartite(4, 4).Graph)
	for _, v := range tri {
		if v != 0 {
			t.Fatal("biclique has nonzero triangle count")
		}
	}
}

func TestTrianglesMatchDiagonal(t *testing.T) {
	// 2t_i = W^(3)(i,i) = diag(A³)_i.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 5+rng.Intn(8), 0.4)
		tri, err := Triangles(g)
		if err != nil {
			return false
		}
		a := g.Adjacency()
		a2, _ := grb.MxM(a, a)
		a3, _ := grb.MxM(a2, a)
		diag, _ := grb.Diag(a3)
		for i := range tri {
			if diag[i] != 2*tri[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestBipartiteButterfliesViaBicliqueFormula(t *testing.T) {
	// K_{a,b} has C(a,2)·C(b,2) butterflies.
	for _, ab := range [][2]int{{2, 2}, {2, 5}, {3, 4}, {4, 4}, {5, 3}} {
		g := gen.CompleteBipartite(ab[0], ab[1]).Graph
		got, err := GlobalButterflies(g)
		if err != nil {
			t.Fatal(err)
		}
		a, b := int64(ab[0]), int64(ab[1])
		want := a * (a - 1) / 2 * b * (b - 1) / 2
		if got != want {
			t.Fatalf("K_{%d,%d}: got %d, want %d", ab[0], ab[1], got, want)
		}
	}
}
