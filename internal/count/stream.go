package count

import (
	"fmt"

	"kronbip/internal/exec"
)

// Streaming consumers: sinks that accumulate validation statistics
// directly from an edge stream, so a product too large to materialize
// can still be cross-checked against its closed forms.  Both speak the
// per-edge and the batched exec vocabularies; the batch paths do their
// bookkeeping once per slice, not once per edge.

// DegreeSink tallies per-vertex degrees from a streamed undirected
// edge list.  One instance per shard (it is not safe for concurrent
// writers); Merge folds shard tallies together.  The resulting vector
// is the stream-side half of a degree ground-truth check: for a full
// stream it must equal the closed-form product degrees vertex by
// vertex.
type DegreeSink struct {
	deg []int64
}

// NewDegreeSink returns a degree tally over vertex IDs [0, n).
func NewDegreeSink(n int) *DegreeSink {
	return &DegreeSink{deg: make([]int64, n)}
}

// Edge counts one undirected edge at both endpoints.
func (d *DegreeSink) Edge(v, w int) error {
	if v < 0 || w < 0 || v >= len(d.deg) || w >= len(d.deg) {
		return fmt.Errorf("count: streamed edge {%d,%d} outside vertex range [0,%d)", v, w, len(d.deg))
	}
	d.deg[v]++
	d.deg[w]++
	return nil
}

// EdgeBatch counts a whole batch; the bounds check hoists to one
// comparison per edge on the already-loaded struct.
func (d *DegreeSink) EdgeBatch(batch []exec.Edge) error {
	n := len(d.deg)
	for _, e := range batch {
		if uint(e.V) >= uint(n) || uint(e.W) >= uint(n) {
			return fmt.Errorf("count: streamed edge {%d,%d} outside vertex range [0,%d)", e.V, e.W, n)
		}
		d.deg[e.V]++
		d.deg[e.W]++
	}
	return nil
}

// Degrees returns the tally; the slice is live until the next Edge call.
func (d *DegreeSink) Degrees() []int64 { return d.deg }

// Merge folds another shard's tally into this one.  The two must cover
// the same vertex range.
func (d *DegreeSink) Merge(other *DegreeSink) error {
	if len(other.deg) != len(d.deg) {
		return fmt.Errorf("count: merging degree sinks over %d and %d vertices", len(d.deg), len(other.deg))
	}
	for v, c := range other.deg {
		d.deg[v] += c
	}
	return nil
}
