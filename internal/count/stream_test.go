// Package count_test (external) so the degree-sink tests can stream a
// real core.Product without an import cycle (core imports count).
package count_test

import (
	"context"
	"testing"

	"kronbip/internal/core"
	"kronbip/internal/count"
	"kronbip/internal/exec"
	"kronbip/internal/gen"
)

func degreeProduct(t *testing.T) *core.Product {
	t.Helper()
	p, err := core.New(gen.Star(4), gen.Crown(3).Graph, core.ModeSelfLoopFactor)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestDegreeSinkRejectsOutOfRange(t *testing.T) {
	d := count.NewDegreeSink(4)
	if err := d.Edge(0, 4); err == nil {
		t.Fatal("accepted endpoint == n")
	}
	if err := d.Edge(-1, 2); err == nil {
		t.Fatal("accepted negative endpoint")
	}
	if err := d.EdgeBatch([]exec.Edge{{V: 1, W: 2}, {V: 3, W: 9}}); err == nil {
		t.Fatal("batch accepted out-of-range endpoint")
	}
	if err := count.NewDegreeSink(4).Merge(count.NewDegreeSink(5)); err == nil {
		t.Fatal("merged sinks over different vertex ranges")
	}
}

// TestDegreeSinkMatchesClosedForm streams the product in parallel with
// one batch-capable degree sink per shard, merges the shard tallies,
// and requires exact agreement with the closed-form degrees — the
// ground-truth check DegreeSink exists for.
func TestDegreeSinkMatchesClosedForm(t *testing.T) {
	p := degreeProduct(t)
	const nshards = 3
	sinks := make([]*count.DegreeSink, nshards)
	for s := range sinks {
		sinks[s] = count.NewDegreeSink(p.N())
	}
	if err := p.StreamEdgesParallelContext(context.Background(), nshards, func(s int) exec.Sink {
		return sinks[s]
	}); err != nil {
		t.Fatal(err)
	}
	total := count.NewDegreeSink(p.N())
	for _, s := range sinks {
		if err := total.Merge(s); err != nil {
			t.Fatal(err)
		}
	}
	for v, got := range total.Degrees() {
		if want := p.DegreeAt(v); got != want {
			t.Fatalf("vertex %d: streamed degree %d, closed form %d", v, got, want)
		}
	}
}

// TestDegreeSinkBatchMatchesPerEdge: both delivery vocabularies
// produce the identical tally.
func TestDegreeSinkBatchMatchesPerEdge(t *testing.T) {
	p := degreeProduct(t)
	perEdge := count.NewDegreeSink(p.N())
	p.EachEdge(func(v, w int) bool {
		if err := perEdge.Edge(v, w); err != nil {
			t.Fatal(err)
		}
		return true
	})
	batched := count.NewDegreeSink(p.N())
	if err := p.EachEdgeBatchContext(context.Background(), func(batch []exec.Edge) bool {
		if err := batched.EdgeBatch(batch); err != nil {
			t.Fatal(err)
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
	a, b := perEdge.Degrees(), batched.Degrees()
	for v := range a {
		if a[v] != b[v] {
			t.Fatalf("vertex %d: per-edge degree %d, batched %d", v, a[v], b[v])
		}
	}
}
