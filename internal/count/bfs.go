package count

import (
	"fmt"

	"kronbip/internal/graph"
)

// GlobalButterfliesBFS implements the "simple algorithm" sketched in the
// paper's introduction: from each vertex i, run a breadth-first search
// truncated at the second neighborhood and count, at each distance-2
// terminal vertex w, the number of distinct wedges i–v–w; two distinct
// wedges to the same w close a 4-cycle.  O(|V||E|) for bipartite graphs.
//
// It exists as a third, structurally different oracle: its only shared code
// with VertexButterflies is the Graph accessor layer.
func GlobalButterfliesBFS(g *graph.Graph) (int64, error) {
	if g.NumSelfLoops() > 0 {
		return 0, fmt.Errorf("count: graph has self loops; remove them first")
	}
	n := g.N()
	wedges := make([]int64, n)
	var total int64
	for i := 0; i < n; i++ {
		// Truncated BFS: enumerate all length-2 walks i → v → w, w ≠ i.
		var frontier []int
		for _, v := range g.Neighbors(i) {
			for _, w := range g.Neighbors(v) {
				if w == i {
					continue
				}
				if wedges[w] == 0 {
					frontier = append(frontier, w)
				}
				wedges[w]++
			}
		}
		for _, w := range frontier {
			// Each pair of wedges i–·–w closes a 4-cycle.  A 4-cycle
			// a–b–c–d is seen once from each of its 4 ordered diagonal
			// pairs (a,c), (c,a), (b,d), (d,b), so divide by 4 at the end.
			total += wedges[w] * (wedges[w] - 1) / 2
			wedges[w] = 0
		}
	}
	if total%4 != 0 {
		return 0, fmt.Errorf("count: BFS wedge total %d not divisible by 4", total)
	}
	return total / 4, nil
}

// Triangles returns per-vertex triangle counts t_i (W^(3)(i,i) = 2t_i in
// the paper's Def. 3 discussion).  Needed for the non-bipartite A factors
// of Assumption 1(i), and to verify that bipartite graphs have none.
func Triangles(g *graph.Graph) ([]int64, error) {
	if g.NumSelfLoops() > 0 {
		return nil, fmt.Errorf("count: graph has self loops; remove them first")
	}
	n := g.N()
	mark := make([]bool, n)
	t := make([]int64, n)
	for u := 0; u < n; u++ {
		for _, v := range g.Neighbors(u) {
			mark[v] = true
		}
		for _, v := range g.Neighbors(u) {
			if v <= u {
				continue
			}
			for _, w := range g.Neighbors(v) {
				if w > v && mark[w] {
					// Triangle u < v < w counted exactly once.
					t[u]++
					t[v]++
					t[w]++
				}
			}
		}
		for _, v := range g.Neighbors(u) {
			mark[v] = false
		}
	}
	return t, nil
}

// GlobalTriangles returns the number of distinct triangles, Σ t_v / 3.
func GlobalTriangles(g *graph.Graph) (int64, error) {
	t, err := Triangles(g)
	if err != nil {
		return 0, err
	}
	var sum int64
	for _, v := range t {
		sum += v
	}
	if sum%3 != 0 {
		return 0, fmt.Errorf("count: triangle sum %d not divisible by 3", sum)
	}
	return sum / 3, nil
}
