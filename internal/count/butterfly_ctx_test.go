package count

import (
	"context"
	"errors"
	"testing"

	"kronbip/internal/gen"
)

// The counters must honor the engine's cancellation contract: a dead
// context aborts with ctx.Err() and a live one changes nothing.

func TestVertexButterfliesParallelContextCancelled(t *testing.T) {
	g := gen.CompleteBipartite(20, 20).Graph
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := VertexButterfliesParallelContext(ctx, g, 4); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Serial fallback path (workers == 1) is cancellable too.
	if _, err := VertexButterfliesParallelContext(ctx, g, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("serial path err = %v, want context.Canceled", err)
	}
}

func TestEdgeButterfliesParallelContextCancelled(t *testing.T) {
	g := gen.CompleteBipartite(20, 20).Graph
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := EdgeButterfliesParallelContext(ctx, g, 4); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestParallelContextMatchesSerialUnderLiveContext(t *testing.T) {
	g := gen.CompleteBipartite(9, 13).Graph
	want, err := VertexButterflies(g)
	if err != nil {
		t.Fatal(err)
	}
	got, err := VertexButterfliesParallelContext(context.Background(), g, 3)
	if err != nil {
		t.Fatal(err)
	}
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("vertex %d: ctx-parallel %d, serial %d", v, got[v], want[v])
		}
	}
	wantE, err := EdgeButterflies(g)
	if err != nil {
		t.Fatal(err)
	}
	gotE, err := EdgeButterfliesParallelContext(context.Background(), g, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotE) != len(wantE) {
		t.Fatalf("edge map sizes: %d vs %d", len(gotE), len(wantE))
	}
	for e, c := range wantE {
		if gotE[e] != c {
			t.Fatalf("edge %v: ctx-parallel %d, serial %d", e, gotE[e], c)
		}
	}
}

// TestParallelRepeatReusesPooledScratch runs the pooled-scratch path many
// times back to back; wrong pool hygiene (dirty accumulators) would skew
// the counts on later iterations.
func TestParallelRepeatReusesPooledScratch(t *testing.T) {
	g := gen.CompleteBipartite(8, 8).Graph
	want, err := VertexButterflies(g)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 25; round++ {
		got, err := VertexButterfliesParallel(g, 4)
		if err != nil {
			t.Fatal(err)
		}
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("round %d vertex %d: %d, want %d", round, v, got[v], want[v])
			}
		}
	}
}
