// Package count implements direct (combinatorial) counting of 4-cycles
// (butterflies) and triangles.  These counters are the validation oracles
// for the closed-form Kronecker ground truth in package core: the paper's
// whole premise is that a generator with exact 4-cycle ground truth lets
// researchers validate counting implementations like these.
//
// Two independent implementations are provided for each statistic — a
// wedge-based combinatorial counter and a linear-algebraic counter over
// package grb — so the test suite can cross-check three ways
// (combinatorial vs. algebraic vs. Kronecker formula).
package count

import (
	"context"
	"fmt"

	"kronbip/internal/exec"
	"kronbip/internal/graph"
	"kronbip/internal/obs"
)

// countPollStride bounds how many source vertices a counting worker may
// process after a cancellation before it notices and aborts.
const countPollStride = 64

// Counter metrics: source vertices processed, flushed once per worker
// stripe (never per vertex), so the enabled overhead is a handful of
// atomic adds per parallel call.
var (
	mVertexSources = obs.Default.Counter("count.vertex_butterflies.vertices")
	mEdgeSources   = obs.Default.Counter("count.edge_butterflies.vertices")
)

// VertexButterflies returns, for every vertex v, the number of 4-cycles
// that contain v (the paper's s_A, Def. 8).  The graph must be simple
// (no self loops).  Wedge-based: for each vertex u it accumulates
// common-neighbor counts c(u,w) over all two-hop targets w and sums
// C(c,2); complexity O(Σ_v d_v²).
func VertexButterflies(g *graph.Graph) ([]int64, error) {
	if g.NumSelfLoops() > 0 {
		return nil, fmt.Errorf("count: graph has self loops; remove them first")
	}
	n := g.N()
	s := make([]int64, n)
	c := make([]int64, n)
	touched := make([]int, 0, 64)
	for u := 0; u < n; u++ {
		touched = touched[:0]
		for _, v := range g.Neighbors(u) {
			for _, w := range g.Neighbors(v) {
				if w == u {
					continue
				}
				if c[w] == 0 {
					touched = append(touched, w)
				}
				c[w]++
			}
		}
		var total int64
		for _, w := range touched {
			total += c[w] * (c[w] - 1) / 2
			c[w] = 0
		}
		s[u] = total
	}
	return s, nil
}

// VertexButterfliesParallel is VertexButterflies with source vertices
// partitioned across workers.  workers <= 0 selects GOMAXPROCS.
func VertexButterfliesParallel(g *graph.Graph, workers int) ([]int64, error) {
	return VertexButterfliesParallelContext(context.Background(), g, workers)
}

// VertexButterfliesParallelContext is VertexButterfliesParallel on the
// shared exec engine: workers pull disjoint source-vertex stripes, use
// pooled per-worker accumulators, and abort with ctx.Err() within
// countPollStride vertices of a cancellation.
func VertexButterfliesParallelContext(ctx context.Context, g *graph.Graph, workers int) ([]int64, error) {
	if g.NumSelfLoops() > 0 {
		return nil, fmt.Errorf("count: graph has self loops; remove them first")
	}
	n := g.N()
	if workers == 1 || n <= 1 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return VertexButterflies(g)
	}
	instr := obs.Enabled()
	ctx, spanDone := obs.Span(ctx, "count.vertex_butterflies")
	defer spanDone()
	s := make([]int64, n)
	err := exec.Ranges(ctx, n, workers, func(ctx context.Context, _, lo, hi int) error {
		if instr {
			defer mVertexSources.Add(int64(hi - lo))
		}
		poll := exec.NewPoller(ctx, countPollStride)
		c := exec.GetInt64s(n)
		defer exec.PutInt64s(c)
		touched := make([]int, 0, 64)
		for u := lo; u < hi; u++ {
			if poll.Cancelled() {
				return poll.Err()
			}
			touched = touched[:0]
			for _, v := range g.Neighbors(u) {
				for _, w := range g.Neighbors(v) {
					if w == u {
						continue
					}
					if c[w] == 0 {
						touched = append(touched, w)
					}
					c[w]++
				}
			}
			var total int64
			for _, w := range touched {
				total += c[w] * (c[w] - 1) / 2
				c[w] = 0
			}
			s[u] = total
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return s, nil
}

// VertexButterfliesAt counts the 4-cycles through a single vertex without
// touching the rest of the graph; used to spot-check individual vertices of
// products too large for a full pass.
func VertexButterfliesAt(g *graph.Graph, u int) int64 {
	c := map[int]int64{}
	for _, v := range g.Neighbors(u) {
		for _, w := range g.Neighbors(v) {
			if w != u {
				c[w]++
			}
		}
	}
	var total int64
	for _, cnt := range c {
		total += cnt * (cnt - 1) / 2
	}
	return total
}

// GlobalButterfliesBestSide counts butterflies in a bipartite graph by
// enumerating wedges from one side only — the standard work-saving choice
// (Sanei-Mehri et al.): iterating side S costs Σ_{v ∈ other} d_v², so the
// side whose *opposite* wedge mass is smaller wins.  Each butterfly has
// exactly one unordered diagonal pair on the chosen side, so the ordered
// enumeration counts it twice.
func GlobalButterfliesBestSide(b *graph.Bipartite) (int64, error) {
	if b.NumSelfLoops() > 0 {
		return 0, fmt.Errorf("count: graph has self loops; remove them first")
	}
	// Wedge mass through each side's vertices as centers.
	var massU, massW int64
	for _, v := range b.Part.U {
		d := int64(b.Degree(v))
		massU += d * d
	}
	for _, v := range b.Part.W {
		d := int64(b.Degree(v))
		massW += d * d
	}
	// Iterating side S walks wedges centered on the OTHER side.
	side := b.Part.U
	if massU < massW {
		side = b.Part.W
	}
	n := b.N()
	c := make([]int64, n)
	touched := make([]int, 0, 64)
	var total int64
	for _, u := range side {
		touched = touched[:0]
		for _, v := range b.Neighbors(u) {
			for _, w := range b.Neighbors(v) {
				if w == u {
					continue
				}
				if c[w] == 0 {
					touched = append(touched, w)
				}
				c[w]++
			}
		}
		for _, w := range touched {
			total += c[w] * (c[w] - 1) / 2
			c[w] = 0
		}
	}
	if total%2 != 0 {
		return 0, fmt.Errorf("count: one-side wedge total %d not divisible by 2", total)
	}
	return total / 2, nil
}

// GlobalButterflies returns the total number of distinct 4-cycles in g.
// Each 4-cycle contains exactly four vertices, so the total is Σ s_v / 4.
func GlobalButterflies(g *graph.Graph) (int64, error) {
	s, err := VertexButterflies(g)
	if err != nil {
		return 0, err
	}
	var sum int64
	for _, v := range s {
		sum += v
	}
	if sum%4 != 0 {
		return 0, fmt.Errorf("count: vertex butterfly sum %d not divisible by 4", sum)
	}
	return sum / 4, nil
}

// EdgeButterflies returns the number of 4-cycles through each undirected
// edge (u,v) with u < v (the paper's ◊_A, Def. 9, stored once per edge).
// For each edge it enumerates u–x, v–y neighbor pairs via a marker array:
// ◊(u,v) = Σ_{y∈N(v)\{u}} ( |N(u) ∩ N(y)| − 1 ), the −1 removing v itself.
func EdgeButterflies(g *graph.Graph) (map[graph.Edge]int64, error) {
	if g.NumSelfLoops() > 0 {
		return nil, fmt.Errorf("count: graph has self loops; remove them first")
	}
	n := g.N()
	mark := make([]bool, n)
	out := make(map[graph.Edge]int64, g.NumEdges())
	for u := 0; u < n; u++ {
		for _, x := range g.Neighbors(u) {
			mark[x] = true
		}
		for _, v := range g.Neighbors(u) {
			if v < u {
				continue // handle each undirected edge once, from its low end
			}
			var cnt int64
			for _, y := range g.Neighbors(v) {
				if y == u {
					continue
				}
				// |N(u) ∩ N(y)| − 1 (v is always a common neighbor).
				var common int64
				for _, x := range g.Neighbors(y) {
					if mark[x] {
						common++
					}
				}
				cnt += common - 1
			}
			out[graph.Edge{U: u, V: v}] = cnt
		}
		for _, x := range g.Neighbors(u) {
			mark[x] = false
		}
	}
	return out, nil
}

// EdgeButterfliesParallel is EdgeButterflies with the low-endpoint vertices
// partitioned across workers; each worker owns a disjoint slice of edges
// (those whose smaller endpoint falls in its range) and writes into its own
// map, merged at the end.  workers <= 0 selects GOMAXPROCS.
func EdgeButterfliesParallel(g *graph.Graph, workers int) (map[graph.Edge]int64, error) {
	return EdgeButterfliesParallelContext(context.Background(), g, workers)
}

// EdgeButterfliesParallelContext is EdgeButterfliesParallel on the shared
// exec engine, with pooled marker scratch and cooperative cancellation
// (ctx.Err() within countPollStride vertices).
func EdgeButterfliesParallelContext(ctx context.Context, g *graph.Graph, workers int) (map[graph.Edge]int64, error) {
	if g.NumSelfLoops() > 0 {
		return nil, fmt.Errorf("count: graph has self loops; remove them first")
	}
	n := g.N()
	if workers == 1 || n <= 1 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return EdgeButterflies(g)
	}
	// Resolve the worker count up front so parts indexing matches stripes.
	workers = exec.Workers(workers, n)
	instr := obs.Enabled()
	ctx, spanDone := obs.Span(ctx, "count.edge_butterflies")
	defer spanDone()
	parts := make([]map[graph.Edge]int64, workers)
	err := exec.Ranges(ctx, n, workers, func(ctx context.Context, w, lo, hi int) error {
		if instr {
			defer mEdgeSources.Add(int64(hi - lo))
		}
		poll := exec.NewPoller(ctx, countPollStride)
		mark := exec.GetBools(n)
		defer exec.PutBools(mark)
		out := make(map[graph.Edge]int64)
		for u := lo; u < hi; u++ {
			if poll.Cancelled() {
				return poll.Err()
			}
			for _, x := range g.Neighbors(u) {
				mark[x] = true
			}
			for _, v := range g.Neighbors(u) {
				if v < u {
					continue
				}
				var cnt int64
				for _, y := range g.Neighbors(v) {
					if y == u {
						continue
					}
					var common int64
					for _, x := range g.Neighbors(y) {
						if mark[x] {
							common++
						}
					}
					cnt += common - 1
				}
				out[graph.Edge{U: u, V: v}] = cnt
			}
			for _, x := range g.Neighbors(u) {
				mark[x] = false
			}
		}
		parts[w] = out
		return nil
	})
	if err != nil {
		return nil, err
	}
	merged := make(map[graph.Edge]int64, g.NumEdges())
	for _, part := range parts {
		for e, c := range part {
			merged[e] = c
		}
	}
	return merged, nil
}

// EdgeButterfliesAt counts 4-cycles through a single edge; returns an error
// if (u,v) is not an edge.
func EdgeButterfliesAt(g *graph.Graph, u, v int) (int64, error) {
	if !g.HasEdge(u, v) {
		return 0, fmt.Errorf("count: (%d,%d) is not an edge", u, v)
	}
	mark := map[int]bool{}
	for _, x := range g.Neighbors(u) {
		mark[x] = true
	}
	var cnt int64
	for _, y := range g.Neighbors(v) {
		if y == u {
			continue
		}
		var common int64
		for _, x := range g.Neighbors(y) {
			if mark[x] {
				common++
			}
		}
		cnt += common - 1
	}
	return cnt, nil
}
