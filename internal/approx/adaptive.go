package approx

import (
	"fmt"
	"math"
	"math/rand"

	"kronbip/internal/count"
	"kronbip/internal/graph"
)

// AdaptiveResult is the output of the adaptive estimator: the estimate, a
// normal-approximation confidence half-width (relative), and the number of
// samples it took to reach the target.
type AdaptiveResult struct {
	Estimate  float64
	RelCI     float64 // half-width of the ~95% CI divided by the estimate
	Samples   int
	Converged bool
}

// AdaptiveVertexSample draws per-vertex samples in batches until the
// estimated relative 95% confidence half-width drops below targetRelCI or
// maxSamples is exhausted.  A practical wrapper over VertexSample for the
// "how many samples do I need?" question the ground-truth grading answers
// post hoc.
func AdaptiveVertexSample(g *graph.Graph, targetRelCI float64, maxSamples int, seed int64) (AdaptiveResult, error) {
	if targetRelCI <= 0 {
		return AdaptiveResult{}, fmt.Errorf("approx: targetRelCI must be positive")
	}
	if maxSamples <= 0 {
		return AdaptiveResult{}, fmt.Errorf("approx: maxSamples must be positive")
	}
	if g.N() == 0 {
		return AdaptiveResult{}, fmt.Errorf("approx: empty graph")
	}
	rng := rand.New(rand.NewSource(seed))
	const batch = 64
	var n float64
	var mean, m2 float64 // Welford running mean/variance of s_v
	samples := 0
	for samples < maxSamples {
		for i := 0; i < batch && samples < maxSamples; i++ {
			v := rng.Intn(g.N())
			x := float64(count.VertexButterfliesAt(g, v))
			n++
			delta := x - mean
			mean += delta / n
			m2 += delta * (x - mean)
			samples++
		}
		if n >= 2*batch && mean > 0 {
			sd := math.Sqrt(m2 / (n - 1))
			half := 1.96 * sd / math.Sqrt(n)
			rel := half / mean
			if rel <= targetRelCI {
				return AdaptiveResult{
					Estimate:  mean * float64(g.N()) / 4,
					RelCI:     rel,
					Samples:   samples,
					Converged: true,
				}, nil
			}
		}
	}
	res := AdaptiveResult{Estimate: mean * float64(g.N()) / 4, Samples: samples}
	if mean > 0 && n > 1 {
		sd := math.Sqrt(m2 / (n - 1))
		res.RelCI = 1.96 * sd / math.Sqrt(n) / mean
	}
	return res, nil
}
