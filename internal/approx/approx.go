// Package approx implements sampling estimators for global 4-cycle
// (butterfly) counts.  The paper's §I motivates Kronecker ground truth
// precisely for grading such estimators: "The computational complexity
// makes graph generators that produce massive graphs with ground truth
// 4-cycle counts attractive for validating both direct and approximate
// computation techniques."  Package experiments uses these estimators as
// the graded subjects.
//
// Three standard estimators are provided, each unbiased:
//
//   - VertexSample: E[s_v] over uniform vertices; □ = n·E[s_v]/4.
//   - EdgeSample:   E[◊_e] over uniform edges;   □ = m·E[◊_e]/4.
//   - WedgeSample:  E[c−1] over uniform wedges, c the co-neighborhood size
//     of the wedge endpoints; □ = W·E[c−1]/4 with W the wedge count.
package approx

import (
	"fmt"
	"math/rand"

	"kronbip/internal/count"
	"kronbip/internal/graph"
)

// Estimate is the output of one estimator run.
type Estimate struct {
	Value   float64 // estimated global 4-cycle count
	Samples int
}

// RelativeError returns |est − truth| / truth (truth must be nonzero).
func (e Estimate) RelativeError(truth int64) float64 {
	if truth == 0 {
		return 0
	}
	diff := e.Value - float64(truth)
	if diff < 0 {
		diff = -diff
	}
	return diff / float64(truth)
}

// VertexSample estimates the global count from `samples` uniformly random
// vertices, computing the exact per-vertex count at each.
func VertexSample(g *graph.Graph, samples int, seed int64) (Estimate, error) {
	if samples <= 0 {
		return Estimate{}, fmt.Errorf("approx: samples must be positive")
	}
	if g.N() == 0 {
		return Estimate{}, fmt.Errorf("approx: empty graph")
	}
	rng := rand.New(rand.NewSource(seed))
	var sum float64
	for i := 0; i < samples; i++ {
		v := rng.Intn(g.N())
		sum += float64(count.VertexButterfliesAt(g, v))
	}
	mean := sum / float64(samples)
	return Estimate{Value: mean * float64(g.N()) / 4, Samples: samples}, nil
}

// EdgeSample estimates the global count from uniformly random edges.  The
// edge list is drawn once; O(|E|) setup, then O(samples · wedge work).
func EdgeSample(g *graph.Graph, samples int, seed int64) (Estimate, error) {
	if samples <= 0 {
		return Estimate{}, fmt.Errorf("approx: samples must be positive")
	}
	edges := g.Edges()
	if len(edges) == 0 {
		return Estimate{}, fmt.Errorf("approx: graph has no edges")
	}
	rng := rand.New(rand.NewSource(seed))
	var sum float64
	for i := 0; i < samples; i++ {
		e := edges[rng.Intn(len(edges))]
		sq, err := count.EdgeButterfliesAt(g, e.U, e.V)
		if err != nil {
			return Estimate{}, err
		}
		sum += float64(sq)
	}
	mean := sum / float64(samples)
	return Estimate{Value: mean * float64(len(edges)) / 4, Samples: samples}, nil
}

// WedgeSample estimates the global count from uniformly random wedges
// (2-paths a–u–b).  For each sampled wedge it counts the common neighbors
// of a and b; every common neighbor besides u closes a distinct 4-cycle
// through the wedge, and each 4-cycle contains exactly 4 wedges.
func WedgeSample(g *graph.Graph, samples int, seed int64) (Estimate, error) {
	if samples <= 0 {
		return Estimate{}, fmt.Errorf("approx: samples must be positive")
	}
	n := g.N()
	// Cumulative wedge weights: vertex u centers C(d_u, 2) wedges.
	cum := make([]float64, n+1)
	for v := 0; v < n; v++ {
		d := float64(g.Degree(v))
		cum[v+1] = cum[v] + d*(d-1)/2
	}
	totalWedges := cum[n]
	if totalWedges == 0 {
		return Estimate{}, fmt.Errorf("approx: graph has no wedges")
	}
	rng := rand.New(rand.NewSource(seed))
	pickCenter := func() int {
		x := rng.Float64() * totalWedges
		lo, hi := 0, n
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid+1] <= x {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return lo
	}
	var sum float64
	for i := 0; i < samples; i++ {
		u := pickCenter()
		nbrs := g.Neighbors(u)
		ai := rng.Intn(len(nbrs))
		bi := rng.Intn(len(nbrs) - 1)
		if bi >= ai {
			bi++
		}
		a, b := nbrs[ai], nbrs[bi]
		c := commonNeighbors(g, a, b)
		sum += float64(c - 1) // exclude u itself
	}
	mean := sum / float64(samples)
	return Estimate{Value: mean * totalWedges / 4, Samples: samples}, nil
}

// commonNeighbors merges the two sorted adjacency lists.
func commonNeighbors(g *graph.Graph, a, b int) int64 {
	na, nb := g.Neighbors(a), g.Neighbors(b)
	var c int64
	i, j := 0, 0
	for i < len(na) && j < len(nb) {
		switch {
		case na[i] < nb[j]:
			i++
		case nb[j] < na[i]:
			j++
		default:
			c++
			i++
			j++
		}
	}
	return c
}
