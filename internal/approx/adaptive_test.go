package approx

import (
	"testing"

	"kronbip/internal/count"
	"kronbip/internal/gen"
	"kronbip/internal/graph"
)

func TestAdaptiveVertexSampleConverges(t *testing.T) {
	g := gen.Crown(8).Graph // vertex-transitive: variance 0, converges fast
	truth, _ := count.GlobalButterflies(g)
	res, err := AdaptiveVertexSample(g, 0.05, 100000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge: %+v", res)
	}
	if res.Estimate != float64(truth) {
		t.Fatalf("transitive graph estimate %g, truth %d", res.Estimate, truth)
	}
	// Zero variance → CI collapses immediately after the warmup batches.
	if res.Samples > 200 {
		t.Fatalf("took %d samples on a zero-variance graph", res.Samples)
	}
}

func TestAdaptiveVertexSampleHeavyTail(t *testing.T) {
	g := gen.BipartiteScaleFree(60, 90, 400, 7).Graph
	truth, _ := count.GlobalButterflies(g)
	res, err := AdaptiveVertexSample(g, 0.10, 200000, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge within budget: %+v", res)
	}
	est := Estimate{Value: res.Estimate}
	// The claimed CI is approximate; allow 3x slack on the realized error.
	if relErr := est.RelativeError(truth); relErr > 3*res.RelCI+0.05 {
		t.Fatalf("realized error %.3f far outside claimed CI %.3f", relErr, res.RelCI)
	}
}

func TestAdaptiveVertexSampleBudgetExhaustion(t *testing.T) {
	g := gen.BipartiteScaleFree(60, 90, 400, 7).Graph
	res, err := AdaptiveVertexSample(g, 1e-9, 500, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Fatal("claimed convergence at an impossible precision target")
	}
	if res.Samples != 500 {
		t.Fatalf("samples = %d, want the full 500 budget", res.Samples)
	}
}

func TestAdaptiveVertexSampleValidation(t *testing.T) {
	g := gen.Path(4)
	if _, err := AdaptiveVertexSample(g, 0, 100, 1); err == nil {
		t.Fatal("accepted zero CI target")
	}
	if _, err := AdaptiveVertexSample(g, 0.1, 0, 1); err == nil {
		t.Fatal("accepted zero budget")
	}
	empty, _ := graph.New(0, nil)
	if _, err := AdaptiveVertexSample(empty, 0.1, 10, 1); err == nil {
		t.Fatal("accepted empty graph")
	}
}
