package approx

import (
	"math"
	"testing"

	"kronbip/internal/count"
	"kronbip/internal/gen"
	"kronbip/internal/graph"
)

// estimators enumerated for table-driven tests.
var estimators = []struct {
	name string
	fn   func(*graph.Graph, int, int64) (Estimate, error)
}{
	{"vertex", VertexSample},
	{"edge", EdgeSample},
	{"wedge", WedgeSample},
}

func TestEstimatorsExactOnSymmetricGraphs(t *testing.T) {
	// On vertex- and edge-transitive graphs every sample is identical, so
	// one sample already gives the exact answer.
	cases := []struct {
		name  string
		g     *graph.Graph
		truth int64
	}{
		{"K33", gen.CompleteBipartite(3, 3).Graph, 9},
		{"C4", gen.Cycle(4), 1},
		{"Q3", gen.Hypercube(3), 6},
	}
	for _, tc := range cases {
		for _, est := range estimators {
			got, err := est.fn(tc.g, 8, 1)
			if err != nil {
				t.Fatalf("%s/%s: %v", tc.name, est.name, err)
			}
			if math.Abs(got.Value-float64(tc.truth)) > 1e-9 {
				t.Fatalf("%s/%s: estimate %g, truth %d", tc.name, est.name, got.Value, tc.truth)
			}
		}
	}
}

func TestEstimatorsConvergeOnHeavyTail(t *testing.T) {
	g := gen.BipartiteScaleFree(60, 90, 400, 7).Graph
	truth, err := count.GlobalButterflies(g)
	if err != nil {
		t.Fatal(err)
	}
	if truth == 0 {
		t.Fatal("test graph has no butterflies")
	}
	for _, est := range estimators {
		// Large sample should land within 25% on this small graph.
		got, err := est.fn(g, 20000, 11)
		if err != nil {
			t.Fatalf("%s: %v", est.name, err)
		}
		if relErr := got.RelativeError(truth); relErr > 0.25 {
			t.Fatalf("%s: relative error %.3f at 20k samples (est %.0f, truth %d)", est.name, relErr, got.Value, truth)
		}
	}
}

func TestEstimatorErrorShrinksWithSamples(t *testing.T) {
	g := gen.BipartiteScaleFree(60, 90, 400, 7).Graph
	truth, _ := count.GlobalButterflies(g)
	for _, est := range estimators {
		// Average the error over several seeds at two sample sizes.
		avgErr := func(samples int) float64 {
			var s float64
			for seed := int64(0); seed < 8; seed++ {
				e, err := est.fn(g, samples, seed)
				if err != nil {
					t.Fatal(err)
				}
				s += e.RelativeError(truth)
			}
			return s / 8
		}
		small, large := avgErr(50), avgErr(5000)
		if large > small+0.02 {
			t.Fatalf("%s: error grew with samples: %.3f → %.3f", est.name, small, large)
		}
	}
}

func TestEstimatorErrors(t *testing.T) {
	g := gen.Path(4)
	for _, est := range estimators {
		if _, err := est.fn(g, 0, 1); err == nil {
			t.Fatalf("%s accepted zero samples", est.name)
		}
	}
	empty, _ := graph.New(0, nil)
	if _, err := VertexSample(empty, 5, 1); err == nil {
		t.Fatal("VertexSample accepted empty graph")
	}
	noEdges, _ := graph.New(3, nil)
	if _, err := EdgeSample(noEdges, 5, 1); err == nil {
		t.Fatal("EdgeSample accepted edgeless graph")
	}
	if _, err := WedgeSample(gen.Path(2), 5, 1); err == nil {
		t.Fatal("WedgeSample accepted wedgeless graph")
	}
}

func TestRelativeError(t *testing.T) {
	e := Estimate{Value: 110}
	if math.Abs(e.RelativeError(100)-0.1) > 1e-12 {
		t.Fatal("RelativeError wrong")
	}
	e = Estimate{Value: 90}
	if math.Abs(e.RelativeError(100)-0.1) > 1e-12 {
		t.Fatal("RelativeError not absolute")
	}
	if (Estimate{Value: 5}).RelativeError(0) != 0 {
		t.Fatal("zero-truth convention violated")
	}
}

func TestWedgeSampleUnbiasedOnAsymmetric(t *testing.T) {
	// Mean over many seeds must approach the truth (unbiasedness), even on
	// a graph where per-wedge values vary wildly.
	g := gen.Crown(5).Graph
	truth, _ := count.GlobalButterflies(g)
	var mean float64
	const runs = 60
	for seed := int64(0); seed < runs; seed++ {
		e, err := WedgeSample(g, 500, seed)
		if err != nil {
			t.Fatal(err)
		}
		mean += e.Value
	}
	mean /= runs
	if math.Abs(mean-float64(truth))/float64(truth) > 0.05 {
		t.Fatalf("wedge estimator biased: mean %.1f, truth %d", mean, truth)
	}
}
