package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestFlightRecorderOrderAndWrap(t *testing.T) {
	r := NewFlightRecorder(4)
	if events, dropped := r.Snapshot(); events != nil || dropped != 0 {
		t.Fatalf("empty recorder snapshot = %v, %d", events, dropped)
	}
	for i := int64(0); i < 6; i++ {
		r.Record(FlightInfo, "test", "ev", i, 0)
	}
	events, dropped := r.Snapshot()
	if len(events) != 4 || dropped != 2 {
		t.Fatalf("got %d events, %d dropped, want 4, 2", len(events), dropped)
	}
	// Oldest-first: the ring overwrote events 0 and 1.
	for i, ev := range events {
		if want := int64(i + 2); ev.N1 != want {
			t.Fatalf("events[%d].N1 = %d, want %d", i, ev.N1, want)
		}
		if ev.At.IsZero() {
			t.Fatalf("events[%d] has zero timestamp", i)
		}
	}
	if got := r.Len(); got != 4 {
		t.Fatalf("Len = %d, want 4", got)
	}
}

func TestFlightRecorderDumpFormat(t *testing.T) {
	r := NewFlightRecorder(8)
	r.Record(FlightInfo, "job", "job submitted", 1, 42)
	r.RecordNote(FlightWarn, "http", "jobs.submit", 429, 120, "req-abc-1")
	reg := NewRegistry()
	reg.Counter("dump.test.counter").Add(7)

	var buf bytes.Buffer
	if err := r.WriteDump(&buf, reg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("dump has %d lines, want 4:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "flightrec dump t=") || !strings.Contains(lines[0], "events=2 dropped=0") {
		t.Fatalf("bad header: %s", lines[0])
	}
	if !strings.Contains(lines[1], `sev=info cat=job ev="job submitted" n1=1 n2=42`) {
		t.Fatalf("bad event line: %s", lines[1])
	}
	if !strings.Contains(lines[2], `sev=warn cat=http ev="jobs.submit" n1=429 n2=120 note="req-abc-1"`) {
		t.Fatalf("bad note line: %s", lines[2])
	}
	// Final line: one compact JSON registry snapshot.
	jsonPart, ok := strings.CutPrefix(lines[3], "metrics ")
	if !ok {
		t.Fatalf("bad metrics line: %s", lines[3])
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(jsonPart), &snap); err != nil {
		t.Fatalf("metrics line is not JSON: %v\n%s", err, jsonPart)
	}
	if snap.Counters["dump.test.counter"] != 7 {
		t.Fatalf("snapshot counters = %v", snap.Counters)
	}

	// Nil registry: events only, no metrics line.
	buf.Reset()
	if err := r.WriteDump(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "metrics ") {
		t.Fatalf("nil-registry dump has a metrics line:\n%s", buf.String())
	}
}

func TestFlightSeverityString(t *testing.T) {
	for sev, want := range map[FlightSeverity]string{
		FlightDebug: "debug", FlightInfo: "info", FlightWarn: "warn",
		FlightError: "error", FlightSeverity(9): "sev9",
	} {
		if got := sev.String(); got != want {
			t.Fatalf("severity %d = %q, want %q", sev, got, want)
		}
	}
}

// TestFlightRecorderAppendAllocFree locks the steady-state contract:
// once the ring exists, Record allocates nothing — the recorder can
// stay always-on without adding GC pressure to the paths it records.
func TestFlightRecorderAppendAllocFree(t *testing.T) {
	r := NewFlightRecorder(64)
	r.Record(FlightInfo, "test", "warmup", 0, 0) // allocates the ring
	allocs := testing.AllocsPerRun(1000, func() {
		r.RecordNote(FlightInfo, "test", "steady", 1, 2, "note")
	})
	if allocs != 0 {
		t.Fatalf("Record allocates %.1f objects/op in steady state, want 0", allocs)
	}
}

// TestFlightRecorderAppendVsDump races concurrent appends against
// Snapshot/WriteDump; run under -race (make race) it proves the ring's
// synchronization, and the final count proves no append was lost.
func TestFlightRecorderAppendVsDump(t *testing.T) {
	r := NewFlightRecorder(128)
	const workers, iters = 8, 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for i := 0; i < 2; i++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			var sink bytes.Buffer
			for {
				select {
				case <-stop:
					return
				default:
					_, _ = r.Snapshot()
					sink.Reset()
					_ = r.WriteDump(&sink, nil)
				}
			}
		}()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				r.Record(FlightInfo, "race", "append", int64(w), int64(i))
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	readers.Wait()
	events, dropped := r.Snapshot()
	if got := uint64(len(events)) + dropped; got != workers*iters {
		t.Fatalf("recorded %d events, want %d", got, workers*iters)
	}
}

// BenchmarkFlightRecorder measures the steady-state append — the cost
// every recording site (per request, per job transition) pays.  The
// 0 allocs/op report is the always-on contract.
func BenchmarkFlightRecorder(b *testing.B) {
	r := NewFlightRecorder(DefaultFlightCapacity)
	r.Record(FlightInfo, "bench", "warmup", 0, 0)
	b.Run("record", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r.Record(FlightInfo, "bench", "steady", int64(i), 0)
		}
	})
	b.Run("record-note", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r.RecordNote(FlightWarn, "bench", "steady", int64(i), 1, "req-bench-1")
		}
	})
}
