package obs

import (
	"fmt"
	"math"
	"sync"
	"time"
)

// SLO is a rolling-window service-level evaluator over one latency
// histogram and one requests/errors counter pair.  Each Tick takes a
// cumulative snapshot (bucket counts + counter values) into a ring of
// timestamped samples; the windowed view is the delta between the
// newest sample and the oldest one still inside the window, from which
// the evaluator derives windowed p50/p99 latency (nearest-rank over
// the bucket deltas, reported as the matched bucket's upper bound) and
// the windowed 5xx error rate, compares both against the configured
// objectives, and publishes the result as gauges:
//
//	<prefix>.p50_us, <prefix>.p99_us       windowed latency (µs)
//	<prefix>.error_permille                windowed error rate ×1000
//	<prefix>.window_requests/_errors       windowed request/error counts
//	<prefix>.window_seconds                actual window span covered
//	<prefix>.healthy                       1 inside SLO, 0 burning
//	<prefix>.p99_target_us, <prefix>.error_target_permille (static)
//
// Ticking is pull-driven: callers invoke MaybeTick from their scrape or
// readiness handlers (rate-limited to MinInterval), so an idle process
// pays nothing and no background goroutine is needed — the load
// balancer polling /readyz IS the clock.  All methods are safe for
// concurrent use.
type SLO struct {
	reg      *Registry
	hist     *Histogram
	requests *Counter
	errors   *Counter
	opt      SLOOptions

	gP50, gP99, gErrPermille      *Gauge
	gReqs, gErrs, gWindow, gAlive *Gauge

	mu      sync.Mutex
	samples []sloSample // oldest first; all within opt.Window of the last tick
	status  SLOStatus
	ticked  bool
}

// SLOOptions configures the evaluator; zero values select the
// documented defaults.
type SLOOptions struct {
	// Window is the rolling evaluation span (default 60s).
	Window time.Duration
	// MinInterval rate-limits MaybeTick: ticks closer together than
	// this return the cached status (default 1s).
	MinInterval time.Duration
	// P99Max is the latency objective: windowed p99 above it burns the
	// SLO.  <= 0 disables the latency objective.
	P99Max time.Duration
	// ErrorRateMax is the error objective as a fraction in [0,1]:
	// windowed 5xx/requests above it burns the SLO.  A negative value
	// disables the error objective (0 means zero tolerance).
	ErrorRateMax float64
}

func (o SLOOptions) withDefaults() SLOOptions {
	if o.Window <= 0 {
		o.Window = time.Minute
	}
	if o.MinInterval <= 0 {
		o.MinInterval = time.Second
	}
	return o
}

// SLOStatus is one evaluation result.
type SLOStatus struct {
	At            time.Time     // tick time
	WindowSeconds float64       // span actually covered (≤ opt.Window)
	Requests      int64         // requests in the window
	Errors        int64         // 5xx in the window
	ErrorRate     float64       // Errors/Requests (0 when idle)
	P50, P99      time.Duration // bucket-quantized windowed latency
	Healthy       bool
	Reason        string // first burning objective; "" while healthy
}

// sloSample is one cumulative snapshot.
type sloSample struct {
	at       time.Time
	buckets  []int64
	requests int64
	errors   int64
}

// NewSLO builds an evaluator over hist/requests/errors, publishing its
// gauges on reg (nil selects Default) under prefix.  The construction
// instant becomes the first sample, so the first Tick already reports a
// real window (everything since construction) instead of an empty one.
func NewSLO(reg *Registry, prefix string, hist *Histogram, requests, errors *Counter, opt SLOOptions) *SLO {
	if reg == nil {
		reg = Default
	}
	s := &SLO{
		reg:      reg,
		hist:     hist,
		requests: requests,
		errors:   errors,
		opt:      opt.withDefaults(),

		gP50:         reg.Gauge(prefix + ".p50_us"),
		gP99:         reg.Gauge(prefix + ".p99_us"),
		gErrPermille: reg.Gauge(prefix + ".error_permille"),
		gReqs:        reg.Gauge(prefix + ".window_requests"),
		gErrs:        reg.Gauge(prefix + ".window_errors"),
		gWindow:      reg.Gauge(prefix + ".window_seconds"),
		gAlive:       reg.Gauge(prefix + ".healthy"),
	}
	// Static objective gauges, so a scrape shows measured-vs-target in
	// one place (and the smoke harness can assert p99 <= target).
	if s.opt.P99Max > 0 {
		reg.Gauge(prefix + ".p99_target_us").Set(s.opt.P99Max.Microseconds())
	}
	if s.opt.ErrorRateMax >= 0 {
		reg.Gauge(prefix + ".error_target_permille").Set(int64(s.opt.ErrorRateMax * 1000))
	}
	s.gAlive.Set(1) // ready until a tick proves otherwise
	s.samples = []sloSample{s.sampleNow(time.Now())}
	return s
}

// sampleNow snapshots the cumulative state.
func (s *SLO) sampleNow(now time.Time) sloSample {
	b := make([]int64, len(s.hist.buckets))
	for i := range s.hist.buckets {
		b[i] = s.hist.buckets[i].Load()
	}
	return sloSample{at: now, buckets: b, requests: s.requests.Value(), errors: s.errors.Value()}
}

// MaybeTick evaluates at most once per MinInterval: a call landing
// closer to the previous tick returns the cached status.  Clock skew
// guard: a cached status stamped in the future (tests inject times)
// also short-circuits.
func (s *SLO) MaybeTick(now time.Time) SLOStatus {
	s.mu.Lock()
	if s.ticked && now.Sub(s.status.At) < s.opt.MinInterval {
		st := s.status
		s.mu.Unlock()
		return st
	}
	s.mu.Unlock()
	return s.Tick(now)
}

// Tick takes a sample at now, evaluates the window ending there, and
// publishes the gauges.
func (s *SLO) Tick(now time.Time) SLOStatus {
	cur := s.sampleNow(now)
	s.mu.Lock()
	defer s.mu.Unlock()
	// Age out samples that fell off the window, always keeping at least
	// one as the baseline.
	for len(s.samples) > 1 && now.Sub(s.samples[0].at) > s.opt.Window {
		s.samples = s.samples[1:]
	}
	base := cur
	if len(s.samples) > 0 {
		base = s.samples[0]
	}
	s.samples = append(s.samples, cur)

	st := SLOStatus{At: now, WindowSeconds: now.Sub(base.at).Seconds(), Healthy: true}
	st.Requests = clampNonNeg(cur.requests - base.requests)
	st.Errors = clampNonNeg(cur.errors - base.errors)
	if st.Requests > 0 {
		st.ErrorRate = float64(st.Errors) / float64(st.Requests)
	}
	deltas := make([]int64, len(cur.buckets))
	for i := range deltas {
		if i < len(base.buckets) {
			deltas[i] = clampNonNeg(cur.buckets[i] - base.buckets[i])
		} else {
			deltas[i] = cur.buckets[i]
		}
	}
	st.P50 = bucketQuantile(s.hist.bounds, deltas, 0.50)
	st.P99 = bucketQuantile(s.hist.bounds, deltas, 0.99)

	if s.opt.P99Max > 0 && st.P99 > s.opt.P99Max {
		st.Healthy = false
		st.Reason = fmt.Sprintf("p99 %s exceeds objective %s", st.P99, s.opt.P99Max)
	}
	if st.Healthy && s.opt.ErrorRateMax >= 0 && st.ErrorRate > s.opt.ErrorRateMax {
		st.Healthy = false
		st.Reason = fmt.Sprintf("error rate %.4f exceeds objective %.4f", st.ErrorRate, s.opt.ErrorRateMax)
	}

	// Flight trail: every real tick at debug, health transitions at warn
	// — a post-mortem dump shows when the burn started and what the
	// evaluator saw (p99 µs, windowed requests/errors).
	wasHealthy := !s.ticked || s.status.Healthy
	if wasHealthy && !st.Healthy {
		Flight.RecordNote(FlightWarn, "slo", "slo burn", st.P99.Microseconds(), st.Errors, st.Reason)
	} else if !wasHealthy && st.Healthy {
		Flight.Record(FlightWarn, "slo", "slo recovered", st.P99.Microseconds(), st.Requests)
	}
	Flight.Record(FlightDebug, "slo", "slo tick", st.P99.Microseconds(), st.Requests)

	s.status = st
	s.ticked = true
	s.gP50.Set(st.P50.Microseconds())
	s.gP99.Set(st.P99.Microseconds())
	s.gErrPermille.Set(int64(st.ErrorRate * 1000))
	s.gReqs.Set(st.Requests)
	s.gErrs.Set(st.Errors)
	s.gWindow.Set(int64(st.WindowSeconds))
	if st.Healthy {
		s.gAlive.Set(1)
	} else {
		s.gAlive.Set(0)
	}
	return st
}

// Status returns the most recent evaluation without ticking.
func (s *SLO) Status() SLOStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.status
}

func clampNonNeg(v int64) int64 {
	if v < 0 {
		return 0
	}
	return v
}

// bucketQuantile is the nearest-rank quantile over non-cumulative
// bucket deltas: the returned value is the upper bound of the bucket
// the rank lands in — quantized, but monotone and cheap, which is what
// a threshold comparison needs.  A rank landing in the +Inf bucket
// reports the largest finite bound (already past any sane objective).
// Zero observations report zero, so an idle window is trivially within
// SLO.
func bucketQuantile(bounds []float64, deltas []int64, q float64) time.Duration {
	var total int64
	for _, d := range deltas {
		total += d
	}
	if total == 0 || len(bounds) == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, d := range deltas {
		cum += d
		if cum >= rank {
			if i < len(bounds) {
				return secondsToDuration(bounds[i])
			}
			break
		}
	}
	return secondsToDuration(bounds[len(bounds)-1])
}

func secondsToDuration(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}
