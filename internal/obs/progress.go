package obs

import (
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// Progress periodically reports streaming-generation progress as one
// structured (logfmt-style) line per interval:
//
//	progress elapsed=2s edges=8400000 edges_per_sec=4200000 pct=49.5 shards=3/8 heap_mb=85.4
//
// edges_per_sec is the instantaneous rate over the last interval, not a
// run average, so stalls are visible immediately.  The Edges and
// ShardsDone functions are sampled on each tick; baselines are recorded
// at Start so a reporter wired to cumulative process-wide counters
// reports per-run numbers.  Stopping the reporter always emits one final
// line with the run's totals, so even runs shorter than one interval
// leave a progress record.
type Progress struct {
	// Interval between report lines; <= 0 disables the reporter.
	Interval time.Duration
	// Out receives the report lines; nil selects os.Stderr.
	Out io.Writer
	// Edges returns the cumulative edge count (typically a Counter's
	// Value).  Required; a nil Edges disables the reporter.
	Edges func() int64
	// TotalEdges is the expected edge total for completion percentage;
	// 0 omits the pct field.
	TotalEdges int64
	// ShardsDone returns the cumulative completed-shard count; nil
	// omits the shards field.
	ShardsDone func() int64
	// TotalShards sizes the shards=done/total field.
	TotalShards int64
}

// Start launches the reporting goroutine and returns a stop function
// that halts it and waits for the final in-flight line to finish.  Safe
// to call stop more than once.
func (p *Progress) Start() (stop func()) {
	if p.Interval <= 0 || p.Edges == nil {
		return func() {}
	}
	out := p.Out
	if out == nil {
		out = os.Stderr
	}
	baseEdges := p.Edges()
	var baseShards int64
	if p.ShardsDone != nil {
		baseShards = p.ShardsDone()
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		ticker := time.NewTicker(p.Interval)
		defer ticker.Stop()
		start := time.Now()
		lastT, lastEdges := start, int64(0)
		report := func(now time.Time) {
			edges := p.Edges() - baseEdges
			dt := now.Sub(lastT).Seconds()
			rate := 0.0
			if dt > 0 {
				rate = float64(edges-lastEdges) / dt
			}
			lastT, lastEdges = now, edges

			line := fmt.Sprintf("progress elapsed=%s edges=%d edges_per_sec=%.0f",
				now.Sub(start).Round(time.Millisecond), edges, rate)
			if p.TotalEdges > 0 {
				line += fmt.Sprintf(" pct=%.1f", 100*float64(edges)/float64(p.TotalEdges))
			}
			if p.ShardsDone != nil && p.TotalShards > 0 {
				line += fmt.Sprintf(" shards=%d/%d", p.ShardsDone()-baseShards, p.TotalShards)
			}
			// Heap readout through the runtime collector: one rate-limited
			// runtime/metrics read instead of a stop-the-world-ish
			// ReadMemStats per tick, and the same sample feeds the
			// exported runtime.* gauges.
			line += fmt.Sprintf(" heap_mb=%.1f\n", float64(DefaultRuntime().HeapBytes(now))/(1<<20))
			io.WriteString(out, line)
		}
		for {
			select {
			case <-done:
				// Flush-on-exit: one final line with run totals, so a run
				// that finishes inside the first tick still logs them.
				report(time.Now())
				return
			case now := <-ticker.C:
				report(now)
			}
		}
	}()

	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			wg.Wait()
		})
	}
}
