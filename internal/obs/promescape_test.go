package obs

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// escapingRegistry builds the registry the escaping golden renders:
// label values exercising every character the exposition format escapes
// (backslash, double quote, newline) plus Go-%q-only escapes (tab) that
// must be normalized back to raw bytes, HELP text with its own escape
// set, and a family merging an unlabeled base with labeled series.
func escapingRegistry() *Registry {
	r := NewRegistry()
	// One merged family: base + three labeled series whose values need
	// escaping.  TYPE (and HELP) must appear exactly once for all four.
	r.Counter("esc.requests").Add(10)
	r.Counter(`esc.requests{path="C:\\jobs\\queue"}`).Add(1)
	r.Counter(Labeled("esc.requests", "path", `say "hi"`)).Add(2)
	r.Counter(Labeled("esc.requests", "path", "two\nlines")).Add(3)
	// Tab: Go %q renders it \t, which is NOT a Prometheus escape — the
	// exporter must emit the raw tab byte instead.
	r.Counter(Labeled("esc.requests", "path", "a\tb")).Add(4)
	r.SetHelp("esc.requests", "Requests by path; values may contain \\ and\nnewlines.")

	// Labeled histogram: the label body must survive into every _bucket/
	// _sum/_count line alongside the le label.
	r.Histogram(Labeled("esc.seconds", "route", `ob\s`), 0.1).Observe(0.05)
	r.SetHelp("esc.seconds", "Latency with an escaped route label.")

	// Span paths flow through the same escaping via span=%q.
	r.ObserveSpan(`gen/"quoted"`, 1e9)
	return r
}

func TestPrometheusEscapingGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := escapingRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "escaping.golden.prom")
	if *updateGolden {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update-golden to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("escaped output drifted from golden.\n--- got ---\n%s--- want ---\n%s", buf.Bytes(), want)
	}

	out := buf.String()
	// The exposition contract, asserted directly so a golden regen cannot
	// silently bless a regression: HELP and TYPE exactly once per merged
	// family, and every escape rendered per the format spec.
	for _, directive := range []string{
		"# TYPE esc_requests counter",
		"# HELP esc_requests ",
		"# TYPE esc_seconds histogram",
	} {
		if got := strings.Count(out, directive); got != 1 {
			t.Errorf("%q appears %d times, want exactly 1", directive, got)
		}
	}
	for _, line := range []string{
		`esc_requests{path="C:\\jobs\\queue"} 1`,
		`esc_requests{path="say \"hi\""} 2`,
		`esc_requests{path="two\nlines"} 3`,
		"esc_requests{path=\"a\tb\"} 4", // raw tab, not \t
		`# HELP esc_requests Requests by path; values may contain \\ and\nnewlines.`,
		`esc_seconds_bucket{route="ob\\s",le="0.1"} 1`,
		`esc_seconds_count{route="ob\\s"} 1`,
		`span_count{span="gen/\"quoted\""} 1`,
	} {
		if !strings.Contains(out, line+"\n") {
			t.Errorf("output missing line %q\n--- output ---\n%s", line, out)
		}
	}
	// No lingering Go-%q artifacts: \t and \x escapes are not legal in
	// the exposition format.
	if strings.Contains(out, `\t`) || strings.Contains(out, `\x`) {
		t.Errorf("output leaks Go-%%q escapes:\n%s", out)
	}
}

func TestPromLabelsPassthrough(t *testing.T) {
	// Bodies with no escapes take the fast path untouched; malformed
	// bodies pass through verbatim rather than corrupting the line.
	for _, labels := range []string{
		``, `route="healthz"`, `a="1",b="2"`,
		`malformed\`, `k="unterminated\`,
	} {
		want := labels
		if got := promLabels(labels); got != want {
			t.Errorf("promLabels(%q) = %q, want %q", labels, got, want)
		}
	}
	// Go-%q tab normalizes to a raw tab.
	in := `k="a\tb"`
	if got := promLabels(in); got != "k=\"a\tb\"" {
		t.Errorf("promLabels(%q) = %q", in, got)
	}
}
