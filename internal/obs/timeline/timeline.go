// Package timeline is the repository's per-unit event tracer: a
// fixed-size ring buffer of begin/end events for exec shards, dist
// ranks, grb kernel calls, experiment stages and audit checks, gated by
// one process-wide atomic like the metrics layer in internal/obs.
//
// Where internal/obs aggregates (counters, histograms, span totals),
// timeline keeps the individual completions — who ran, when, for how
// long, and whether it finished cleanly — so a sharded run can be
// replayed as a timeline.  From one snapshot the package exports
//
//   - a Chrome trace_event JSON document (WriteChromeTrace) loadable in
//     chrome://tracing or Perfetto,
//   - a logfmt run journal (WriteJournal) for grepping and diffing,
//   - per-group imbalance statistics (Stats): p50/p99/max durations and
//     the max/mean "straggler ratio", publishable as obs gauges.
//
// Overhead contract (DESIGN.md §6a): recording is off by default; each
// instrumented site reads Enabled once per unit of work (shard, rank,
// kernel call, stage — never per edge), so the disabled cost is one
// atomic load.  While enabled, one mutex-guarded ring append per unit —
// thousands of events per run, not millions — keeps the enabled cost
// far below the work each event brackets.
package timeline

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// enabled is the global recording switch, mirroring obs.SetEnabled.
var enabled atomic.Bool

// SetEnabled flips event recording on or off.  The CLIs enable it when
// -timeline-out or -journal-out is set; tests may toggle it directly.
func SetEnabled(on bool) { enabled.Store(on) }

// Enabled reports whether recording is on.  Instrumented sites read it
// once per unit of work to pick a code path.
func Enabled() bool { return enabled.Load() }

// Event categories recorded by the built-in instrumentation sites.
const (
	CatShard  = "shard"  // exec pool tasks and core streaming shards
	CatRank   = "rank"   // dist simulated-cluster ranks
	CatKernel = "kernel" // grb kernel calls (mxm, mxv, kron)
	CatStage  = "stage"  // experiment stages
	CatAudit  = "audit"  // audit invariant checks
	CatJob    = "job"    // serve-layer generation jobs (lane = job sequence number)
)

// Event is one completed unit of work.  Events are recorded at end time
// (Start and Dur bracket the work), so an aborted unit still appears —
// with OK false — while a unit that never ran leaves no event at all.
type Event struct {
	Cat   string        // one of the Cat* constants
	Name  string        // dotted site name ("core.stream", "grb.mxm")
	ID    int           // shard/rank index; 0 where there is no natural lane
	Note  string        // free-form correlation annotation ("req_id=… trace_id=…"); usually empty
	OK    bool          // completed without error (kernel events record call completion)
	Start time.Time
	Dur   time.Duration
}

// DefaultCapacity is the Default recorder's ring size.  At one event
// per shard/rank/kernel call it covers runs far beyond any realistic
// shard count; older events are overwritten (and counted as dropped)
// beyond it.
const DefaultCapacity = 1 << 16

// Recorder accumulates events in a fixed-capacity ring.  All methods
// are safe for concurrent use; the ring is allocated lazily on the
// first Record so disabled processes never pay for it.
type Recorder struct {
	mu   sync.Mutex
	cap  int
	ring []Event
	n    uint64 // total events ever recorded
}

// NewRecorder returns a recorder keeping the last `capacity` events;
// capacity <= 0 selects DefaultCapacity.
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Recorder{cap: capacity}
}

// Default is the process-wide recorder every built-in instrumentation
// site records to and the CLIs export from.
var Default = NewRecorder(0)

// Record appends one completed event, overwriting the oldest once the
// ring is full.
func (r *Recorder) Record(ev Event) {
	r.mu.Lock()
	if r.ring == nil {
		r.ring = make([]Event, r.cap)
	}
	r.ring[r.n%uint64(r.cap)] = ev
	r.n++
	r.mu.Unlock()
}

// Snapshot returns the retained events sorted by start time (ties
// broken by category, name, then ID, so exports are deterministic) and
// the number of older events the ring has dropped.
func (r *Recorder) Snapshot() (events []Event, dropped uint64) {
	r.mu.Lock()
	if r.n <= uint64(r.cap) {
		events = append(events, r.ring[:r.n]...)
	} else {
		head := r.n % uint64(r.cap)
		events = append(events, r.ring[head:]...)
		events = append(events, r.ring[:head]...)
		dropped = r.n - uint64(r.cap)
	}
	r.mu.Unlock()
	sort.SliceStable(events, func(a, b int) bool {
		ea, eb := events[a], events[b]
		if !ea.Start.Equal(eb.Start) {
			return ea.Start.Before(eb.Start)
		}
		if ea.Cat != eb.Cat {
			return ea.Cat < eb.Cat
		}
		if ea.Name != eb.Name {
			return ea.Name < eb.Name
		}
		return ea.ID < eb.ID
	})
	return events, dropped
}

// Len returns the number of events currently retained.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.n < uint64(r.cap) {
		return int(r.n)
	}
	return r.cap
}

// Reset drops every retained event.  Intended for tests and the start
// of a flag-driven run.
func (r *Recorder) Reset() {
	r.mu.Lock()
	r.ring = nil
	r.n = 0
	r.mu.Unlock()
}

// Done finishes the event opened by Begin, stamping OK from err.
type Done func(err error)

// Begin opens an event on r; call the returned Done exactly once when
// the unit of work completes (nil err marks it OK).  Callers gate on
// Enabled themselves so the disabled path costs one atomic load:
//
//	var end timeline.Done
//	if timeline.Enabled() {
//		end = timeline.Begin(timeline.CatShard, "core.stream", s)
//	}
//	...
//	if end != nil {
//		end(err)
//	}
func (r *Recorder) Begin(cat, name string, id int) Done {
	return r.BeginNote(cat, name, id, "")
}

// BeginNote is Begin with a correlation note attached to the recorded
// event — the serve layer stamps request/trace identity onto per-job
// lane events this way, so a distributed trace id can be grepped out of
// the journal or read in the Chrome trace args pane.
func (r *Recorder) BeginNote(cat, name string, id int, note string) Done {
	start := time.Now()
	return func(err error) {
		r.Record(Event{
			Cat: cat, Name: name, ID: id, Note: note, OK: err == nil,
			Start: start, Dur: time.Since(start),
		})
	}
}

// Begin opens an event on the Default recorder; see Recorder.Begin.
func Begin(cat, name string, id int) Done {
	return Default.Begin(cat, name, id)
}

// BeginNote opens an annotated event on the Default recorder; see
// Recorder.BeginNote.
func BeginNote(cat, name string, id int, note string) Done {
	return Default.BeginNote(cat, name, id, note)
}
