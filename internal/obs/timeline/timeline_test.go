package timeline

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"kronbip/internal/obs"
)

// fixedEvents builds a deterministic event set anchored at a fixed
// epoch: three shard events (one failed), one kernel call, one stage.
func fixedEvents() []Event {
	epoch := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	at := func(us int64) time.Time { return epoch.Add(time.Duration(us) * time.Microsecond) }
	return []Event{
		{Cat: CatStage, Name: "experiments.tab1", ID: 0, OK: true, Start: at(0), Dur: 5000 * time.Microsecond},
		{Cat: CatShard, Name: "core.stream", ID: 0, OK: true, Start: at(10), Dur: 1000 * time.Microsecond},
		{Cat: CatShard, Name: "core.stream", ID: 1, OK: true, Start: at(12), Dur: 3000 * time.Microsecond},
		{Cat: CatShard, Name: "core.stream", ID: 2, OK: false, Start: at(15), Dur: 500 * time.Microsecond},
		{Cat: CatKernel, Name: "grb.mxm", ID: 0, OK: true, Start: at(20), Dur: 200 * time.Microsecond},
	}
}

const goldenTrace = `{"displayTimeUnit":"ms","traceEvents":[
{"name":"experiments.tab1","cat":"stage","ph":"X","ts":0,"dur":5000,"pid":1,"tid":40000,"args":{"id":0,"ok":true}},
{"name":"core.stream","cat":"shard","ph":"X","ts":10,"dur":1000,"pid":1,"tid":10000,"args":{"id":0,"ok":true}},
{"name":"core.stream","cat":"shard","ph":"X","ts":12,"dur":3000,"pid":1,"tid":10001,"args":{"id":1,"ok":true}},
{"name":"core.stream","cat":"shard","ph":"X","ts":15,"dur":500,"pid":1,"tid":10002,"args":{"id":2,"ok":false}},
{"name":"grb.mxm","cat":"kernel","ph":"X","ts":20,"dur":200,"pid":1,"tid":30000,"args":{"id":0,"ok":true}}
],"otherData":{"events":5,"dropped":0}}
`

func TestWriteChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, fixedEvents(), 0); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != goldenTrace {
		t.Errorf("golden mismatch:\ngot:\n%s\nwant:\n%s", got, goldenTrace)
	}
	// The document must be valid JSON in the Chrome trace object shape.
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Cat  string `json:"cat"`
			Ph   string `json:"ph"`
			TS   int64  `json:"ts"`
			Dur  int64  `json:"dur"`
			PID  int    `json:"pid"`
			TID  int    `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("golden output is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != 5 {
		t.Fatalf("traceEvents = %d, want 5", len(doc.TraceEvents))
	}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			t.Errorf("event %q ph = %q, want X", ev.Name, ev.Ph)
		}
	}
}

func TestWriteJournal(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJournal(&buf, fixedEvents(), 3); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSuffix(out, "\n"), "\n")
	if len(lines) != 6 {
		t.Fatalf("journal lines = %d, want 6:\n%s", len(lines), out)
	}
	if want := "event t_us=10 dur_us=1000 cat=shard name=core.stream id=0 ok=true"; lines[1] != want {
		t.Errorf("line 1 = %q, want %q", lines[1], want)
	}
	if want := "journal events=5 dropped=3"; lines[5] != want {
		t.Errorf("trailer = %q, want %q", lines[5], want)
	}
}

// TestEventNoteRendering: an annotated event carries its note into both
// exports; unannotated events render exactly as before (the goldens
// above pin that).
func TestEventNoteRendering(t *testing.T) {
	epoch := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	evs := []Event{{
		Cat: CatJob, Name: "serve.job", ID: 3, OK: true,
		Note:  `req_id=r-1 trace_id=4bf92f3577b34da6a3ce929d0e0e4736`,
		Start: epoch, Dur: time.Millisecond,
	}}
	var trace, journal bytes.Buffer
	if err := WriteChromeTrace(&trace, evs, 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(trace.String(), `"note":"req_id=r-1 trace_id=4bf92f3577b34da6a3ce929d0e0e4736"`) {
		t.Errorf("chrome trace lacks the note:\n%s", trace.String())
	}
	var doc map[string]any
	if err := json.Unmarshal(trace.Bytes(), &doc); err != nil {
		t.Fatalf("annotated trace is not valid JSON: %v", err)
	}
	if err := WriteJournal(&journal, evs, 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(journal.String(), `note="req_id=r-1 trace_id=4bf92f3577b34da6a3ce929d0e0e4736"`) {
		t.Errorf("journal lacks the note:\n%s", journal.String())
	}
}

// TestBeginNote records the note through the Done closure.
func TestBeginNote(t *testing.T) {
	r := NewRecorder(8)
	end := r.BeginNote(CatJob, "serve.job", 1, "req_id=abc")
	end(nil)
	events, _ := r.Snapshot()
	if len(events) != 1 || events[0].Note != "req_id=abc" {
		t.Fatalf("events = %+v, want one with note req_id=abc", events)
	}
}

func TestRecorderWraparound(t *testing.T) {
	r := NewRecorder(4)
	epoch := time.Now()
	for i := 0; i < 10; i++ {
		r.Record(Event{Cat: CatShard, Name: "x", ID: i, OK: true, Start: epoch.Add(time.Duration(i) * time.Millisecond)})
	}
	events, dropped := r.Snapshot()
	if len(events) != 4 {
		t.Fatalf("retained = %d, want 4", len(events))
	}
	if dropped != 6 {
		t.Fatalf("dropped = %d, want 6", dropped)
	}
	for i, ev := range events {
		if ev.ID != 6+i {
			t.Errorf("event %d has ID %d, want %d (oldest retained must be newest 4)", i, ev.ID, 6+i)
		}
	}
	if r.Len() != 4 {
		t.Errorf("Len = %d, want 4", r.Len())
	}
	r.Reset()
	if events, dropped := r.Snapshot(); len(events) != 0 || dropped != 0 {
		t.Errorf("after Reset: %d events, %d dropped; want 0, 0", len(events), dropped)
	}
}

func TestBeginGate(t *testing.T) {
	r := NewRecorder(8)
	end := r.Begin(CatRank, "dist.generate", 3)
	end(errors.New("boom"))
	end2 := r.Begin(CatRank, "dist.generate", 4)
	end2(nil)
	events, _ := r.Snapshot()
	if len(events) != 2 {
		t.Fatalf("events = %d, want 2", len(events))
	}
	if events[0].OK || !events[1].OK {
		t.Errorf("OK flags = %v, %v; want false, true", events[0].OK, events[1].OK)
	}
	if events[0].Cat != CatRank || events[0].Name != "dist.generate" || events[0].ID != 3 {
		t.Errorf("event 0 = %+v", events[0])
	}
}

func TestStatsAndPublish(t *testing.T) {
	groups := Stats(fixedEvents())
	if len(groups) != 3 {
		t.Fatalf("groups = %d, want 3 (kernel/grb.mxm, shard/core.stream, stage/experiments.tab1)", len(groups))
	}
	// Sorted by "cat/name": kernel < shard < stage.
	if groups[0].Group() != "kernel/grb.mxm" || groups[1].Group() != "shard/core.stream" || groups[2].Group() != "stage/experiments.tab1" {
		t.Fatalf("group order = %q %q %q", groups[0].Group(), groups[1].Group(), groups[2].Group())
	}
	sh := groups[1]
	if sh.Count != 3 || sh.Failed != 1 {
		t.Errorf("shard count=%d failed=%d, want 3, 1", sh.Count, sh.Failed)
	}
	if sh.Max != 3000*time.Microsecond {
		t.Errorf("shard max = %s, want 3ms", sh.Max)
	}
	if sh.Mean != 1500*time.Microsecond {
		t.Errorf("shard mean = %s, want 1.5ms", sh.Mean)
	}
	if sh.StragglerRatio != 2.0 {
		t.Errorf("shard straggler ratio = %v, want 2.0", sh.StragglerRatio)
	}
	if sh.P50 != 1000*time.Microsecond {
		t.Errorf("shard p50 = %s, want 1ms", sh.P50)
	}

	reg := obs.NewRegistry()
	PublishStats(reg, groups, 5, 2)
	if v := reg.Gauge(`timeline.straggler_permille{group="shard/core.stream"}`).Value(); v != 2000 {
		t.Errorf("straggler gauge = %d, want 2000", v)
	}
	if v := reg.Gauge(`timeline.dur_max_us{group="shard/core.stream"}`).Value(); v != 3000 {
		t.Errorf("max gauge = %d, want 3000", v)
	}
	if v := reg.Gauge("timeline.events").Value(); v != 5 {
		t.Errorf("events gauge = %d, want 5", v)
	}
	if v := reg.Gauge("timeline.dropped").Value(); v != 2 {
		t.Errorf("dropped gauge = %d, want 2", v)
	}

	var buf bytes.Buffer
	if err := WriteSummary(&buf, groups); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "timeline shard/core.stream: n=3 fail=1") {
		t.Errorf("summary missing shard line:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "straggler=2.00x") {
		t.Errorf("summary missing straggler ratio:\n%s", buf.String())
	}
}

func TestStatsEmpty(t *testing.T) {
	if got := Stats(nil); len(got) != 0 {
		t.Errorf("Stats(nil) = %v, want empty", got)
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, nil, 0); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("empty trace is not valid JSON: %v", err)
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder(128)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				end := r.Begin(CatShard, "stress", w)
				end(nil)
			}
		}(w)
	}
	wg.Wait()
	events, dropped := r.Snapshot()
	if len(events) != 128 {
		t.Errorf("retained = %d, want 128", len(events))
	}
	if got := uint64(len(events)) + dropped; got != 800 {
		t.Errorf("retained+dropped = %d, want 800", got)
	}
}

func TestFlagsStart(t *testing.T) {
	dir := t.TempDir()
	tlPath := filepath.Join(dir, "t.json")
	jPath := filepath.Join(dir, "j.log")

	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := RegisterFlags(fs)
	if err := fs.Parse([]string{"-timeline-out", tlPath, "-journal-out", jPath}); err != nil {
		t.Fatal(err)
	}
	if !f.Active() {
		t.Fatal("Active() = false with both flags set")
	}
	var summary bytes.Buffer
	stop, err := f.Start(&summary)
	if err != nil {
		t.Fatal(err)
	}
	if !Enabled() || !obs.Enabled() {
		t.Fatal("Start must enable timeline and obs recording")
	}
	end := Begin(CatShard, "core.stream", 0)
	end(nil)
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	defer obs.SetEnabled(false)
	if Enabled() {
		t.Error("stop must disable recording")
	}

	raw, err := os.ReadFile(tlPath)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("-timeline-out is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != 1 {
		t.Errorf("traceEvents = %d, want 1", len(doc.TraceEvents))
	}
	journal, err := os.ReadFile(jPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(journal), "name=core.stream") {
		t.Errorf("journal missing event:\n%s", journal)
	}
	if !strings.Contains(summary.String(), "timeline shard/core.stream") {
		t.Errorf("summary missing group line:\n%s", summary.String())
	}
	if v := obs.Default.Gauge("timeline.events").Value(); v != 1 {
		t.Errorf("timeline.events gauge = %d, want 1", v)
	}
}

func TestFlagsInactive(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := RegisterFlags(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if f.Active() {
		t.Fatal("Active() = true with no flags set")
	}
	stop, err := f.Start(nil)
	if err != nil {
		t.Fatal(err)
	}
	if Enabled() {
		t.Error("inactive Start must not enable recording")
	}
	if err := stop(); err != nil {
		t.Error(err)
	}
}
