package timeline

import (
	"fmt"
	"io"
	"time"
)

// WriteChromeTrace renders events as a Chrome trace_event JSON document
// (the "JSON Object Format" with a traceEvents array of "ph":"X"
// complete events), loadable in chrome://tracing or Perfetto.  Each
// event becomes one slice: pid 1, tid = lane (see laneFor), ts/dur in
// microseconds relative to the earliest start, with cat, ok and the
// unit id carried in args.  Events must be Snapshot order (sorted by
// start); output is deterministic for a given event slice.
func WriteChromeTrace(w io.Writer, events []Event, dropped uint64) error {
	var epoch time.Time
	if len(events) > 0 {
		epoch = events[0].Start
	}
	if _, err := io.WriteString(w, "{\"displayTimeUnit\":\"ms\",\"traceEvents\":["); err != nil {
		return err
	}
	for i, ev := range events {
		sep := ","
		if i == 0 {
			sep = ""
		}
		note := ""
		if ev.Note != "" {
			note = fmt.Sprintf(",\"note\":%q", ev.Note)
		}
		_, err := fmt.Fprintf(w,
			"%s\n{\"name\":%q,\"cat\":%q,\"ph\":\"X\",\"ts\":%d,\"dur\":%d,\"pid\":1,\"tid\":%d,\"args\":{\"id\":%d,\"ok\":%v%s}}",
			sep, ev.Name, ev.Cat,
			ev.Start.Sub(epoch).Microseconds(), ev.Dur.Microseconds(),
			laneFor(ev), ev.ID, ev.OK, note)
		if err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "\n],\"otherData\":{\"events\":%d,\"dropped\":%d}}\n", len(events), dropped)
	return err
}

// laneFor maps an event to a Chrome trace thread id so each category
// gets its own band of lanes and units within a category do not
// overlap: shards and ranks spread by ID, kernels/stages/audit share
// one lane per category (their events nest in time, not in space).
func laneFor(ev Event) int {
	const band = 10000
	switch ev.Cat {
	case CatShard:
		return 1*band + ev.ID
	case CatRank:
		return 2*band + ev.ID
	case CatKernel:
		return 3 * band
	case CatStage:
		return 4 * band
	case CatAudit:
		return 5 * band
	default:
		return 6 * band
	}
}

// WriteJournal renders events as a logfmt run journal, one line per
// event in start order plus a trailer with totals — greppable and
// diffable where the Chrome trace is clickable:
//
//	event t_us=0 dur_us=1523 cat=shard name=core.stream id=0 ok=true
//	...
//	journal events=12 dropped=0
func WriteJournal(w io.Writer, events []Event, dropped uint64) error {
	var epoch time.Time
	if len(events) > 0 {
		epoch = events[0].Start
	}
	for _, ev := range events {
		note := ""
		if ev.Note != "" {
			note = fmt.Sprintf(" note=%q", ev.Note)
		}
		_, err := fmt.Fprintf(w, "event t_us=%d dur_us=%d cat=%s name=%s id=%d ok=%v%s\n",
			ev.Start.Sub(epoch).Microseconds(), ev.Dur.Microseconds(),
			ev.Cat, ev.Name, ev.ID, ev.OK, note)
		if err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "journal events=%d dropped=%d\n", len(events), dropped)
	return err
}
